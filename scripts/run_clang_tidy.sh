#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every library
# translation unit in src/, using a compile_commands.json export.
#
# Usage: scripts/run_clang_tidy.sh [build-dir]   (default: build)
# Needs: clang-tidy on PATH and a configured build dir with
#        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo/build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found on PATH" >&2
  exit 2
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing;" >&2
  echo "  configure with: cmake -B $build_dir -S $repo -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

mapfile -t sources < <(cd "$repo" && find src -name '*.cc' | sort)
echo "run_clang_tidy: checking ${#sources[@]} translation units"

status=0
for src in "${sources[@]}"; do
  clang-tidy -p "$build_dir" --quiet "$repo/$src" || status=1
done

if [[ $status -ne 0 ]]; then
  echo "run_clang_tidy: findings above — fix or suppress with 'NOLINT(check): reason'" >&2
fi
exit $status
