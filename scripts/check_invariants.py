#!/usr/bin/env python3
"""Project-invariant linter: enforces grouplink rules generic tools can't.

Rules (ids usable in suppressions):
  raw-thread      std::thread / std::jthread / std::async anywhere except the
                  thread_pool implementation. All parallelism must go through
                  ParallelFor / ThreadPool so determinism, cancellation, and
                  fault injection keep working.
  raw-random      rand()/srand()/time()-seeding/std::random_device/std::mt19937
                  anywhere except common/random.cc. Every random draw must come
                  from the seeded Rng, or experiments stop being reproducible.
  raw-stdio       std::cout / std::cerr / printf-to-console inside src/ outside
                  the logging implementation. Library code reports through
                  GL_LOG or returned Status values; only bench/example mains own
                  stdout.
  include-guard   Header guards must be GROUPLINK_<PATH>_H_ derived from the
                  file path (src/ stripped), e.g. src/index/minhash.h ->
                  GROUPLINK_INDEX_MINHASH_H_.
  bench-exit-code Every bench/bench_e*.cpp must end its main with
                  `return bench::ExitCode(...)` so CI sees Status failures as
                  non-zero exits.
  simd-include    <immintrin.h> (or any *intrin.h) outside the SIMD kernel and
                  dispatch implementations (simd_kernels.*, simd_dispatch.*).
                  Raw intrinsics elsewhere would dodge the runtime-dispatch /
                  bit-identical-fallback contract of DESIGN.md §10.
  raw-file-io     fopen / ::open / std::fstream outside src/storage/ and
                  src/data/record_io. Durable state must go through the
                  storage tier (PageFile/PageWriter: checksummed pages,
                  write-new-then-rename, fault-injection hooks) or the
                  record-I/O layer; ad-hoc file I/O elsewhere would dodge the
                  crash-recovery contract of DESIGN.md §12.
  raw-mutex       std::mutex / std::lock_guard / std::condition_variable and
                  friends anywhere except the common/mutex.h wrapper
                  internals. All locking must go through gl::Mutex /
                  gl::MutexLock so Clang Thread Safety Analysis sees every
                  acquire/release (DESIGN.md §14); a raw primitive is a hole
                  in the compile-time lock-discipline proof.
  lock-blocking-call  A blocking call (sleep_for, Persist*, fopen/fstream)
                  in a scope that holds a gl::MutexLock. Holding a lock
                  across a sleep or disk write stalls every thread behind
                  it; move the slow work outside the critical section, or
                  suppress with a reason when serializing the slow work is
                  exactly the lock's job.
  suppression-reason  NOLINT / gl-lint escapes must carry a reason:
                  `// NOLINT(check): why` or `// gl-lint: allow(rule) why`.

Suppressions: append `// gl-lint: allow(<rule>) <reason>` (C++) or
`# gl-lint: allow(<rule>) <reason>` (scripts) to the offending line, or put it
alone on the line above. Every suppression is counted and the total printed so
the number stays visible in CI logs.

Usage: check_invariants.py [path ...]   (default: src bench)
Exit: 0 clean, 1 findings, 2 usage error.
"""

import os
import re
import sys

CXX_EXTENSIONS = (".cc", ".h", ".cpp")
SCRIPT_EXTENSIONS = (".py", ".sh")

GL_ALLOW_RE = re.compile(r"(?://|#)\s*gl-lint:\s*allow\(([\w-]+)\)\s*(.*)")
NOLINT_RE = re.compile(r"//\s*NOLINT(?:NEXTLINE)?\(([^)]*)\)(.*)")

RAW_THREAD_RE = re.compile(r"\bstd::(thread|jthread|async)\b")
RAW_RANDOM_RE = re.compile(
    r"\bstd::(random_device|mt19937(?:_64)?|default_random_engine)\b"
    r"|(?<![\w:])(?:s?rand)\s*\("
    r"|(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)")
RAW_STDIO_RE = re.compile(
    r"\bstd::(cout|cerr)\b|(?<![\w:.])f?printf\s*\(")
SIMD_INCLUDE_RE = re.compile(r"^\s*#\s*include\s*<(\w*intrin\.h)>")
RAW_FILE_IO_RE = re.compile(
    r"\bfopen\s*\(|::open\s*\(|\bstd::(?:i|o)?fstream\b")
RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock|condition_variable|condition_variable_any)\b")
# A scoped gl lock coming into existence: `MutexLock lock(&mu);` (or the
# reader/writer variants, possibly namespace-qualified).
LOCK_DECL_RE = re.compile(
    r"\b(?:MutexLock|ReaderMutexLock|WriterMutexLock)\s+\w+\s*[({]")
BLOCKING_CALL_RE = re.compile(
    r"\bsleep_for\s*\(|\bPersist\w*\s*\(|\bfopen\s*\(|\bstd::(?:i|o)?fstream\b")
GUARD_RE = re.compile(r"^\s*#ifndef\s+(\w+)")


def strip_code(text):
    """Blanks out string/char literals and comments, preserving newlines.

    Keeps line numbers stable so findings point at real lines, and keeps
    comment text away from the code rules (comments may legitimately
    mention printf or std::thread).
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state in ("line_comment",):
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if (state == "string" and c == '"') or (state == "char" and c == "'"):
                state = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


class Report:
    def __init__(self):
        self.findings = []
        self.suppressions = []

    def add(self, path, line, rule, message):
        self.findings.append((path, line, rule, message))

    def suppress(self, path, line, rule, reason):
        self.suppressions.append((path, line, rule, reason))


def collect_allows(raw_lines, report, path):
    """Maps line number -> set of allowed rules (same line or line above).

    A missing reason is itself a finding: the convention is grepable
    *because* every escape documents why.
    """
    allows = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = GL_ALLOW_RE.search(line)
        if not m:
            continue
        rule, reason = m.group(1), m.group(2).strip()
        if not reason:
            report.add(path, idx, "suppression-reason",
                       "gl-lint allow(%s) has no reason; write "
                       "'gl-lint: allow(%s) <why>'" % (rule, rule))
            continue
        report.suppress(path, idx, rule, reason)
        targets = [idx]
        # A standalone marker (only the comment on the line) covers the
        # next line as well.
        if line.split("//")[0].split("#")[0].strip() == "":
            targets.append(idx + 1)
        for t in targets:
            allows.setdefault(t, set()).add(rule)
    return allows


def check_nolint_reasons(raw_lines, report, path):
    for idx, line in enumerate(raw_lines, start=1):
        m = NOLINT_RE.search(line)
        if not m:
            continue
        trailing = m.group(2).strip()
        if not trailing.startswith(":") or not trailing.lstrip(": ").strip():
            report.add(path, idx, "suppression-reason",
                       "NOLINT(%s) has no reason; write "
                       "'NOLINT(%s): <why>'" % (m.group(1), m.group(1)))
        else:
            report.suppress(path, idx, "NOLINT(%s)" % m.group(1),
                            trailing.lstrip(": ").strip())


def project_relative(path):
    parts = os.path.normpath(path).split(os.sep)
    # Interpret the path relative to the nearest src/bench/examples root so
    # fixture trees (tests/lint_fixtures/src/...) scope exactly like the
    # real tree.
    for root in ("src", "bench", "examples"):
        if root in parts:
            idx = len(parts) - 1 - parts[::-1].index(root)
            return root, "/".join(parts[idx + 1:])
    return None, "/".join(parts)


def expected_guard(path):
    root, rel = project_relative(path)
    rel = rel if root in (None, "src") else root + "/" + rel
    return "GROUPLINK_" + re.sub(r"[/.]", "_", rel).upper() + "_"


def basename(path):
    return os.path.basename(path)


def check_lock_blocking(code_lines, flag):
    """Flags blocking calls made in a scope that holds a gl scoped lock.

    Tracks brace depth line by line; a `MutexLock lock(...)` (or reader/
    writer variant) pushes the depth at which it was declared, and is
    popped once the enclosing block closes. A blocking call is a finding
    while any pushed lock is still alive at the call's position. Purely
    lexical — it cannot see through function calls — but the scoped-lock
    idiom is mandatory here (raw-mutex rule), so same-scope coverage is
    exactly the hole a human reviewer misses.
    """
    depth = 0
    lock_stack = []  # brace depth at each live scoped-lock declaration
    for idx, line in enumerate(code_lines, start=1):
        decl = LOCK_DECL_RE.search(line)
        blocking = BLOCKING_CALL_RE.search(line)
        if blocking:
            pos_depth = (depth
                         + line.count("{", 0, blocking.start())
                         - line.count("}", 0, blocking.start()))
            held = any(d <= pos_depth for d in lock_stack)
            if decl and decl.start() < blocking.start():
                held = True
            if held:
                flag(idx, "lock-blocking-call",
                     "blocking call while a gl::MutexLock is held in this "
                     "scope; move the slow work outside the critical "
                     "section (or suppress with a reason if serializing "
                     "it is the lock's purpose)")
        if decl:
            lock_stack.append(depth
                              + line.count("{", 0, decl.start())
                              - line.count("}", 0, decl.start()))
        depth += line.count("{") - line.count("}")
        while lock_stack and depth < lock_stack[-1]:
            lock_stack.pop()


def lint_cxx(path, report):
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.split("\n")
    allows = collect_allows(raw_lines, report, path)
    check_nolint_reasons(raw_lines, report, path)
    code_lines = strip_code(text).split("\n")
    root, rel = project_relative(path)

    def flag(idx, rule, message):
        if rule in allows.get(idx, ()):  # Suppressed with a reason.
            return
        report.add(path, idx, rule, message)

    in_thread_pool = basename(path).startswith("thread_pool.")
    in_mutex_impl = basename(path).startswith("mutex.")
    in_random = basename(path) in ("random.cc",)
    in_logging = basename(path).startswith("logging.")
    in_simd_impl = basename(path).startswith(("simd_kernels.", "simd_dispatch."))
    in_file_io_layer = root == "src" and (
        rel.startswith("storage/") or rel.startswith("data/record_io"))

    for idx, line in enumerate(code_lines, start=1):
        if not in_thread_pool and RAW_THREAD_RE.search(line):
            flag(idx, "raw-thread",
                 "raw std::%s; use ThreadPool/ParallelFor (thread_pool.h) so "
                 "determinism and cancellation hold"
                 % RAW_THREAD_RE.search(line).group(1))
        if not in_random and RAW_RANDOM_RE.search(line):
            flag(idx, "raw-random",
                 "unseeded/global randomness; draw from grouplink::Rng "
                 "(common/random.h) for reproducibility")
        if root == "src" and not in_logging and RAW_STDIO_RE.search(line):
            flag(idx, "raw-stdio",
                 "console I/O in library code; use GL_LOG or return Status")
        if not in_file_io_layer and RAW_FILE_IO_RE.search(line):
            flag(idx, "raw-file-io",
                 "raw file I/O outside src/storage/ and src/data/record_io; "
                 "go through PageFile/PageWriter or record_io so the "
                 "crash-recovery and fault-injection contracts hold")
        if not in_mutex_impl and RAW_MUTEX_RE.search(line):
            flag(idx, "raw-mutex",
                 "raw std::%s; use gl::Mutex/gl::MutexLock (common/mutex.h) "
                 "so Clang Thread Safety Analysis sees the acquire/release "
                 "(DESIGN.md §14)"
                 % RAW_MUTEX_RE.search(line).group(1))
        if not in_simd_impl and SIMD_INCLUDE_RE.search(line):
            flag(idx, "simd-include",
                 "raw <%s> outside simd_kernels.*/simd_dispatch.*; go through "
                 "text/simd_kernels.h so the runtime dispatch and the "
                 "bit-identical scalar fallback stay the only ISA boundary"
                 % SIMD_INCLUDE_RE.search(line).group(1))

    check_lock_blocking(code_lines, flag)

    if path.endswith(".h"):
        guard = None
        for line in code_lines:
            m = GUARD_RE.match(line)
            if m:
                guard = m.group(1)
                break
        want = expected_guard(path)
        if guard != want:
            report.add(path, 1, "include-guard",
                       "guard %s != expected %s" % (guard or "<missing>", want))

    if re.match(r"bench_e\w*\.cpp$", basename(path)):
        if "return bench::ExitCode(" not in text:
            report.add(path, 1, "bench-exit-code",
                       "bench main must exit via `return bench::ExitCode(...)` "
                       "so Status failures become non-zero exits")


def lint_script(path, report):
    with open(path, encoding="utf-8", errors="replace") as f:
        raw_lines = f.read().split("\n")
    collect_allows(raw_lines, report, path)  # Count + reason-check only.


def iter_files(paths):
    for p in paths:
        if os.path.isfile(p):
            yield p
            continue
        for dirpath, dirnames, filenames in os.walk(p):
            dirnames.sort()
            for name in sorted(filenames):
                yield os.path.join(dirpath, name)


def main(argv):
    paths = argv[1:] or ["src", "bench"]
    for p in paths:
        if not os.path.exists(p):
            print("check_invariants: no such path: %s" % p, file=sys.stderr)
            return 2
    report = Report()
    for path in iter_files(paths):
        if "lint_fixtures" in path and not any("lint_fixtures" in p for p in paths):
            continue  # Planted violations; linted only by their own test.
        if path.endswith(CXX_EXTENSIONS):
            lint_cxx(path, report)
        elif path.endswith(SCRIPT_EXTENSIONS):
            lint_script(path, report)
    for path, line, rule, message in report.findings:
        print("%s:%d: [%s] %s" % (path, line, rule, message))
    print("check_invariants: %d finding(s), %d suppression(s) with reasons"
          % (len(report.findings), len(report.suppressions)))
    for path, line, rule, reason in report.suppressions:
        print("  suppressed %s at %s:%d — %s" % (rule, path, line, reason))
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
