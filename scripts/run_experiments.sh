#!/usr/bin/env bash
# Rebuilds the project, runs the full test suite, and regenerates every
# experiment (E1..E16 + microbenchmarks), capturing the outputs that
# EXPERIMENTS.md is written from.
#
#   scripts/run_experiments.sh [build-dir]

set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"

ctest --test-dir "$BUILD_DIR" --output-on-failure 2>&1 | tee test_output.txt

for bench in "$BUILD_DIR"/bench/*; do
  [ -x "$bench" ] || continue
  echo "===== $bench"
  "$bench"
  echo
done 2>&1 | tee bench_output.txt
