#!/usr/bin/env bash
# Rebuilds the project, runs the full test suite, and regenerates every
# experiment (E1..E17 + microbenchmarks), capturing the outputs that
# EXPERIMENTS.md is written from.
#
#   scripts/run_experiments.sh [build-dir]
#
# THREADS controls the worker-thread count passed to the benches that
# accept --threads (E5, E14, E17); defaults to the machine's hardware
# concurrency.

set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
THREADS="${THREADS:-$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)}"

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"

ctest --test-dir "$BUILD_DIR" --output-on-failure 2>&1 | tee test_output.txt

for bench in "$BUILD_DIR"/bench/*; do
  [ -x "$bench" ] || continue
  args=()
  case "$(basename "$bench")" in
    bench_e1_measure_accuracy)
      # E1 skips the metrics report by default; the regenerated
      # BENCH_e1.json is the canonical unified-schema sample.
      args=(--metrics-json BENCH_e1.json)
      ;;
    bench_e5_scalability)
      args=(--threads "$THREADS" --metrics-json BENCH_e5.json)
      ;;
    bench_e14_sql_pipeline)
      args=(--threads "$THREADS" --metrics-json BENCH_e14.json)
      ;;
    bench_e17_streaming)
      args=(--threads "$THREADS" --metrics-json BENCH_e17.json)
      ;;
  esac
  echo "===== $bench ${args[*]}"
  "$bench" "${args[@]}"
  echo
done 2>&1 | tee bench_output.txt
