#!/usr/bin/env python3
"""Self-test for check_invariants.py against the planted fixtures.

Asserts three things:
  1. Every planted violation class in tests/lint_fixtures/ is reported,
     at the expected file.
  2. The ok/ fixtures produce zero findings (suppressions work, comments
     and strings are not scanned, correct guards pass).
  3. Exit codes follow the contract: 1 for the bad tree, 0 for the ok tree.

Registered in ctest as `lint_selftest`; runnable standalone from the repo
root: python3 scripts/check_invariants_selftest.py
"""

import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINTER = os.path.join(REPO, "scripts", "check_invariants.py")
FIXTURES = os.path.join(REPO, "tests", "lint_fixtures")

# rule id -> substring of the file it must be reported in.
EXPECTED = [
    ("raw-thread", "raw_thread.cc"),
    ("raw-random", "raw_random.cc"),
    ("raw-stdio", "raw_stdio.cc"),
    ("include-guard", "bad_guard.h"),
    ("bench-exit-code", "bench_e99_fixture.cpp"),
    ("suppression-reason", "bare_nolint.cc"),
    ("simd-include", "raw_simd_include.cc"),
    ("raw-file-io", "raw_file_io.cc"),
    ("raw-mutex", "raw_mutex.cc"),
    ("lock-blocking-call", "lock_blocking_call.cc"),
]


def run(paths):
    proc = subprocess.run(
        [sys.executable, LINTER] + paths,
        cwd=REPO, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def fail(message, output):
    print("SELFTEST FAIL: %s" % message)
    print("--- linter output ---")
    print(output)
    return 1


def main():
    code, out = run([os.path.join(FIXTURES, "src", "bad"),
                     os.path.join(FIXTURES, "bench")])
    if code != 1:
        return fail("bad fixtures should exit 1, got %d" % code, out)
    for rule, fragment in EXPECTED:
        wanted = "[%s]" % rule
        hit = any(wanted in line and fragment in line
                  for line in out.splitlines())
        if not hit:
            return fail("missing %s finding in %s" % (rule, fragment), out)

    code, out = run([os.path.join(FIXTURES, "src", "ok")])
    if code != 0:
        return fail("ok fixtures should exit 0, got %d" % code, out)
    if "0 finding(s)" not in out:
        return fail("ok fixtures should have zero findings", out)
    if "5 suppression(s)" not in out:
        return fail("ok fixtures should count 5 reasoned suppressions", out)

    code, out = run([])  # Default roots: the real src/ and bench/ trees.
    if code != 0:
        return fail("real tree must be lint-clean (exit %d)" % code, out)

    print("SELFTEST PASS: all %d planted violation classes caught; "
          "ok fixtures and real tree clean" % len(EXPECTED))
    return 0


if __name__ == "__main__":
    sys.exit(main())
