// E8 — Candidate generation schemes (paper: blocking / set-similarity
// joins make the pairwise space tractable without losing true matches).
//
// Compares candidate-generation strategies by (a) how many group pairs
// survive, (b) how many of the links found by the exhaustive run they
// retain (candidate recall), and (c) end-to-end time.

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/linkage_engine.h"
#include "eval/table.h"

namespace {

using namespace grouplink;

struct SchemeResult {
  size_t candidates = 0;
  size_t links = 0;
  double link_recall = 0.0;
  double seconds = 0.0;
  RunReport report;
};

SchemeResult RunScheme(const Dataset& dataset, const LinkageConfig& config,
                       const std::set<std::pair<int32_t, int32_t>>& reference) {
  WallTimer timer;
  const auto result = RunGroupLinkage(dataset, config);
  GL_CHECK(result.ok());
  SchemeResult out;
  out.report = result->report();
  out.seconds = timer.ElapsedSeconds();
  out.candidates = static_cast<size_t>(
      result->report().StageCounter("candidates", "group_pairs"));
  out.links = result->linked_pairs.size();
  size_t kept = 0;
  for (const auto& pair : result->linked_pairs) {
    if (reference.count(pair)) ++kept;
  }
  out.link_recall = reference.empty() ? 1.0
                                      : static_cast<double>(kept) /
                                            static_cast<double>(reference.size());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt64("entities", 150, "author entities");
  flags.AddBool("smoke", false, "tiny CI workload (overrides size knobs)");
  flags.AddString("metrics-json", "BENCH_e8.json",
                  "unified metrics report output path ('' to skip)");
  GL_CHECK(flags.Parse(argc, argv).ok());
  const int32_t entities = flags.GetBool("smoke")
                               ? 15
                               : static_cast<int32_t>(flags.GetInt64("entities"));

  const Dataset dataset =
      GenerateBibliographic(bench::HardBibliographic(entities, 0.25));
  std::printf("E8: candidate generation schemes (%d groups)\n\n",
              dataset.num_groups());

  LinkageConfig base;
  base.theta = bench::kTheta;
  base.group_threshold = bench::kGroupThreshold;

  // Reference: exhaustive all-pairs run.
  LinkageConfig all_pairs = base;
  all_pairs.candidates = CandidateMethod::kAllPairs;
  const auto reference_result = RunGroupLinkage(dataset, all_pairs);
  GL_CHECK(reference_result.ok());
  const std::set<std::pair<int32_t, int32_t>> reference(
      reference_result->linked_pairs.begin(), reference_result->linked_pairs.end());

  TextTable table({"scheme", "candidate pairs", "links", "link recall", "time (s)"});
  std::vector<RunReport> reports;
  reports.push_back(reference_result->report());
  const auto add_row = [&](const std::string& name, const LinkageConfig& config) {
    SchemeResult r = RunScheme(dataset, config, reference);
    table.AddRow({name, std::to_string(r.candidates), std::to_string(r.links),
                  FormatDouble(r.link_recall, 3), FormatDouble(r.seconds, 2)});
    reports.push_back(std::move(r.report));
  };

  add_row("all-pairs", all_pairs);

  LinkageConfig join = base;
  join.candidates = CandidateMethod::kRecordJoin;
  add_row("record-join (t=0.2)", join);
  join.candidate_jaccard = 0.4;
  add_row("record-join (t=0.4)", join);

  for (const BlockingScheme scheme :
       {BlockingScheme::kToken, BlockingScheme::kTokenPrefix,
        BlockingScheme::kFirstToken, BlockingScheme::kSoundex}) {
    LinkageConfig blocking = base;
    blocking.candidates = CandidateMethod::kBlocking;
    blocking.blocking = scheme;
    add_row(std::string("record-blocking: ") + BlockingSchemeName(scheme), blocking);
  }

  // Blocking on group labels (author name variants): the classic cheap
  // scheme. Aggressive keys shrink the candidate set drastically but can
  // separate true pairs whose labels diverge (initials, inversions).
  for (const BlockingScheme scheme :
       {BlockingScheme::kToken, BlockingScheme::kTokenPrefix,
        BlockingScheme::kFirstToken, BlockingScheme::kSoundex}) {
    LinkageConfig blocking = base;
    blocking.candidates = CandidateMethod::kLabelBlocking;
    blocking.blocking = scheme;
    add_row(std::string("label-blocking: ") + BlockingSchemeName(scheme), blocking);
  }

  {
    LinkageConfig minhash = base;
    minhash.candidates = CandidateMethod::kMinHash;
    add_row("minhash-lsh 16x2", minhash);
  }

  for (const int32_t window : {5, 20}) {
    LinkageConfig neighborhood = base;
    neighborhood.candidates = CandidateMethod::kSortedNeighborhood;
    neighborhood.neighborhood_window = window;
    add_row("sorted-neighborhood w=" + std::to_string(window), neighborhood);
  }
  std::printf("%s", table.ToString().c_str());
  return bench::ExitCode(bench::WriteMetricsJson(flags.GetString("metrics-json"),
                                                 "e8_blocking", reports));
}
