// E19 (beyond the paper) — Out-of-core persistent index tier.
//
// Three questions, one harness:
//
//   1. Restart cost. Cold restart rebuilds the writer from the raw seed
//      corpus (tokenize + vectorize + full refresh); warm restart
//      recovers the persisted store (SnapshotStore::Load, every page
//      checksum-verified) and rebuilds the writer via
//      IncrementalLinker::FromSnapshot. Reports both, and the speedup.
//
//   2. Serving beyond RAM. StoredCorpus answers LinkQuery through a
//      fixed buffer-pool budget; the sweep runs the same probe set at
//      3-4 budgets (from a few frames to store-sized) and reports QPS,
//      pages read, evictions, and links found per budget — the
//      pages-read-vs-links-found tradeoff the tier exists to expose.
//
//   3. Correctness while doing it. At every budget the paged answers
//      are checked against the in-RAM snapshot (bit-identical link
//      sets), and the warm-restarted writer's link set must equal the
//      cold writer's.
//
// The metrics snapshot embedded in BENCH_e19.json carries the
// storage.pages_read / storage.evictions / storage.recoveries counters
// CI asserts on.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/incremental.h"
#include "core/snapshot.h"
#include "eval/table.h"
#include "storage/page_file.h"
#include "storage/snapshot_store.h"
#include "storage/stored_corpus.h"

namespace {

using namespace grouplink;

std::vector<std::string> GroupTexts(const Dataset& dataset, int32_t group) {
  std::vector<std::string> texts;
  for (const int32_t r : dataset.groups[static_cast<size_t>(group)].record_ids) {
    texts.push_back(dataset.records[static_cast<size_t>(r)].text);
  }
  return texts;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt64("entities", 150, "bibliographic entities in the corpus");
  flags.AddInt64("page-bytes", 1024, "on-disk page size of the store");
  flags.AddString("budget-sweep", "2,16,128,4096",
                  "buffer-pool budgets (pages) for the paged-serving sweep");
  flags.AddInt64("query-rounds", 3, "passes over the probe set per budget");
  flags.AddString("store-path", "", "store file ('' = <tmp>/bench_e19.glsnap)");
  flags.AddString("metrics-json", "BENCH_e19.json",
                  "unified metrics report output path ('' to skip)");
  flags.AddBool("smoke", false, "tiny CI workload (overrides size knobs)");
  GL_CHECK(flags.Parse(argc, argv).ok());
  const bool smoke = flags.GetBool("smoke");
  const int64_t entities = smoke ? 20 : flags.GetInt64("entities");
  const std::string sweep_text = smoke ? "1,4,64" : flags.GetString("budget-sweep");
  const int64_t query_rounds = smoke ? 1 : std::max<int64_t>(1, flags.GetInt64("query-rounds"));
  std::string store_path = flags.GetString("store-path");
  if (store_path.empty()) {
    const char* tmpdir = std::getenv("TMPDIR");
    store_path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                 "/bench_e19.glsnap";
  }

  std::vector<size_t> budget_sweep;
  for (const std::string& t : Split(sweep_text, ',')) {
    const auto parsed = ParseInt64(t);
    GL_CHECK(parsed.ok()) << t;
    budget_sweep.push_back(static_cast<size_t>(std::max<int64_t>(1, *parsed)));
  }
  GL_CHECK(!budget_sweep.empty());

  LinkageConfig config;
  config.theta = bench::kTheta;
  config.group_threshold = bench::kGroupThreshold;

  const Dataset dataset = GenerateBibliographic(
      bench::HardBibliographic(static_cast<int32_t>(entities), 0.25));
  // Probes: a disjoint stream of future arrivals (same topics, so they
  // hit real candidates) plus every 8th corpus group replayed (links
  // guaranteed at every budget).
  const Dataset future = GenerateBibliographic(bench::HardBibliographic(
      static_cast<int32_t>(std::max<int64_t>(4, entities / 4)), 0.25, 1042));
  std::vector<GroupArrival> probes;
  for (int32_t g = 0; g < future.num_groups(); ++g) {
    probes.push_back({"future", GroupTexts(future, g)});
  }
  for (int32_t g = 0; g < dataset.num_groups(); g += 8) {
    probes.push_back({"replay", GroupTexts(dataset, g)});
  }

  std::printf(
      "E19: out-of-core persistent index tier (theta=%.2f, Theta=%.2f, "
      "%d groups, %d records, %zu probes, page=%lld B)\n\n",
      bench::kTheta, bench::kGroupThreshold, dataset.num_groups(),
      dataset.num_records(), probes.size(),
      static_cast<long long>(flags.GetInt64("page-bytes")));

  std::vector<RunReport> reports;

  // --- Part 1: cold vs warm restart ---

  WallTimer cold_timer;
  auto cold = IncrementalLinker::Create(dataset, config);
  GL_CHECK(cold.ok()) << cold.status().ToString();
  const double cold_seconds = cold_timer.ElapsedSeconds();
  const auto snapshot = CorpusSnapshot::Capture(*cold);

  storage::StorageOptions store_options;
  store_options.page_bytes =
      static_cast<uint32_t>(flags.GetInt64("page-bytes"));
  WallTimer persist_timer;
  GL_CHECK(storage::SnapshotStore::Persist(*snapshot, store_path, store_options)
               .ok());
  const double persist_seconds = persist_timer.ElapsedSeconds();

  WallTimer warm_timer;
  auto recovered = storage::SnapshotStore::Load(store_path);
  GL_CHECK(recovered.ok()) << recovered.status().ToString();
  auto warm = IncrementalLinker::FromSnapshot(**recovered);
  GL_CHECK(warm.ok()) << warm.status().ToString();
  const double warm_seconds = warm_timer.ElapsedSeconds();
  GL_CHECK((*warm)->linked_pairs() == cold->linked_pairs())
      << "warm restart diverged from the cold build";
  GL_CHECK((*warm)->epoch() == cold->epoch());

  const double restart_speedup = cold_seconds / std::max(warm_seconds, 1e-9);
  TextTable restart_table({"path", "seconds", "links"});
  restart_table.AddRow({"cold (rebuild from corpus)", FormatDouble(cold_seconds, 3),
                        std::to_string(cold->linked_pairs().size())});
  restart_table.AddRow({"warm (recover store)", FormatDouble(warm_seconds, 3),
                        std::to_string((*warm)->linked_pairs().size())});
  std::printf("%s", restart_table.ToString().c_str());
  std::printf("\nPersist: %.3f s. Warm restart is %.1fx the cold rebuild.\n\n",
              persist_seconds, restart_speedup);

  {
    RunReport report;
    report.strategy = "storage-restart";
    report.candidate_method = "token-index";
    report.measure = "bm";
    report.threads = 1;
    report.records = dataset.num_records();
    report.groups = dataset.num_groups();
    report.links = static_cast<int64_t>(cold->linked_pairs().size());
    report.AddStage("cold-restart", cold_seconds);
    report.AddStage("persist", persist_seconds);
    report.AddStage("warm-restart", warm_seconds);
    report.AddExtra("restart_speedup", restart_speedup);
    reports.push_back(std::move(report));
  }

  // --- Part 2: paged serving across buffer budgets ---

  TextTable budget_table({"budget (pages)", "queries", "links", "qps",
                          "pages read", "hits", "evictions"});
  for (const size_t budget : budget_sweep) {
    storage::StorageOptions open_options;
    open_options.buffer_pool_pages = budget;
    auto stored = storage::StoredCorpus::Open(store_path, open_options);
    GL_CHECK(stored.ok()) << stored.status().ToString();

    size_t queries = 0;
    size_t links = 0;
    WallTimer timer;
    for (int64_t round = 0; round < query_rounds; ++round) {
      for (const GroupArrival& probe : probes) {
        auto answer = (*stored)->LinkQuery(probe);
        GL_CHECK(answer.ok()) << answer.status().ToString();
        links += answer->linked_to.size();
        ++queries;
      }
    }
    const double seconds = timer.ElapsedSeconds();
    const double qps = static_cast<double>(queries) / std::max(seconds, 1e-9);

    // Correctness at this budget: the paged path must be bit-identical
    // to the in-RAM snapshot on every probe.
    for (const GroupArrival& probe : probes) {
      const auto want = snapshot->LinkQuery(probe);
      const auto got = (*stored)->LinkQuery(probe);
      GL_CHECK(got.ok());
      GL_CHECK(got->linked_to == want.linked_to)
          << "paged link set diverged at budget " << budget;
    }

    const storage::BufferStats stats = (*stored)->buffer_stats();
    budget_table.AddRow({std::to_string(budget), std::to_string(queries),
                         std::to_string(links), FormatDouble(qps, 0),
                         std::to_string(stats.misses),
                         std::to_string(stats.hits),
                         std::to_string(stats.evictions)});

    RunReport report;
    report.strategy = "storage-budget-" + std::to_string(budget);
    report.candidate_method = "token-index";
    report.measure = "bm";
    report.threads = 1;
    report.records = dataset.num_records();
    report.groups = dataset.num_groups();
    report.links = static_cast<int64_t>(links);
    report.AddStage("serve", seconds)
        .AddCounter("queries", static_cast<int64_t>(queries))
        .AddCounter("pages_read", static_cast<int64_t>(stats.misses))
        .AddCounter("buffer_hits", static_cast<int64_t>(stats.hits))
        .AddCounter("evictions", static_cast<int64_t>(stats.evictions));
    report.AddExtra("qps", qps);
    reports.push_back(std::move(report));
  }
  std::printf("%s", budget_table.ToString().c_str());
  std::printf(
      "\nPaged answers were bit-identical to the in-RAM snapshot at every "
      "budget (checked), and the warm-restarted writer matched the cold "
      "build (checked).\n");

  GL_CHECK(storage::RemoveFile(store_path).ok());
  return bench::ExitCode(bench::WriteMetricsJson(flags.GetString("metrics-json"),
                                                 "e19_storage", reports));
}
