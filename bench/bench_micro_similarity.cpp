// E11 — Microbenchmarks of the record-similarity substrate
// (google-benchmark): tokenization, the string measures, and TF-IDF
// vectorization/cosine, which dominate the graph-construction phase.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "data/name_corpus.h"
#include "text/edit_distance.h"
#include "text/jaccard.h"
#include "text/jaro.h"
#include "text/monge_elkan.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace {

using namespace grouplink;

std::vector<std::string> MakeTitles(size_t count) {
  Rng rng(99);
  std::vector<std::string> titles;
  titles.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string title;
    const size_t words = 5 + rng.Uniform(5);
    for (size_t w = 0; w < words; ++w) {
      if (w > 0) title += ' ';
      title += rng.Choice(TitleWords());
    }
    titles.push_back(std::move(title));
  }
  return titles;
}

void BM_Tokenize(benchmark::State& state) {
  const auto titles = MakeTitles(64);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Tokenize(titles[i++ % titles.size()]));
  }
}
BENCHMARK(BM_Tokenize);

void BM_Levenshtein(benchmark::State& state) {
  const auto titles = MakeTitles(64);
  size_t i = 0;
  for (auto _ : state) {
    const std::string& a = titles[i % titles.size()];
    const std::string& b = titles[(i + 1) % titles.size()];
    benchmark::DoNotOptimize(LevenshteinDistance(a, b));
    ++i;
  }
}
BENCHMARK(BM_Levenshtein);

void BM_BoundedLevenshtein(benchmark::State& state) {
  const auto titles = MakeTitles(64);
  size_t i = 0;
  for (auto _ : state) {
    const std::string& a = titles[i % titles.size()];
    const std::string& b = titles[(i + 1) % titles.size()];
    benchmark::DoNotOptimize(BoundedLevenshteinDistance(a, b, 4));
    ++i;
  }
}
BENCHMARK(BM_BoundedLevenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  const auto titles = MakeTitles(64);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaroWinklerSimilarity(titles[i % titles.size()],
                                                   titles[(i + 1) % titles.size()]));
    ++i;
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_TokenJaccard(benchmark::State& state) {
  const auto titles = MakeTitles(64);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TokenJaccard(titles[i % titles.size()], titles[(i + 1) % titles.size()]));
    ++i;
  }
}
BENCHMARK(BM_TokenJaccard);

void BM_MongeElkan(benchmark::State& state) {
  const auto titles = MakeTitles(64);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MongeElkanJaroWinkler(titles[i % titles.size()],
                                                   titles[(i + 1) % titles.size()]));
    ++i;
  }
}
BENCHMARK(BM_MongeElkan);

void BM_TfIdfVectorize(benchmark::State& state) {
  const auto titles = MakeTitles(256);
  Vocabulary vocab;
  for (const std::string& title : titles) vocab.AddDocument(ToTokenSet(Tokenize(title)));
  const TfIdfVectorizer vectorizer(&vocab);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vectorizer.Vectorize(Tokenize(titles[i++ % titles.size()])));
  }
}
BENCHMARK(BM_TfIdfVectorize);

void BM_CosineSimilarity(benchmark::State& state) {
  const auto titles = MakeTitles(256);
  Vocabulary vocab;
  for (const std::string& title : titles) vocab.AddDocument(ToTokenSet(Tokenize(title)));
  const TfIdfVectorizer vectorizer(&vocab);
  std::vector<SparseVector> vectors;
  for (const std::string& title : titles) {
    vectors.push_back(vectorizer.Vectorize(Tokenize(title)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CosineSimilarity(vectors[i % vectors.size()], vectors[(i + 7) % vectors.size()]));
    ++i;
  }
}
BENCHMARK(BM_CosineSimilarity);

}  // namespace

BENCHMARK_MAIN();
