// E16 (ablation, beyond the paper) — Record representation: word tokens
// vs padded character 3-grams behind the TF-IDF record similarity.
//
// Expected shape: the two track each other on mild noise, but as typos
// start destroying whole word tokens the q-gram representation holds its
// recall longer (a typo changes ~3 of a word's grams, not the whole
// token), at a constant-factor cost in vector size / join width.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/linkage_engine.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace grouplink;

  FlagParser flags;
  flags.AddInt64("entities", 80, "author entities");
  flags.AddBool("smoke", false, "tiny CI workload (overrides size knobs)");
  flags.AddString("metrics-json", "BENCH_e16.json",
                  "unified metrics report output path ('' to skip)");
  GL_CHECK(flags.Parse(argc, argv).ok());
  const int32_t entities = flags.GetBool("smoke")
                               ? 12
                               : static_cast<int32_t>(flags.GetInt64("entities"));

  std::printf("E16: word tokens vs character 3-grams (theta=%.2f, Theta=%.2f)\n\n",
              bench::kTheta, bench::kGroupThreshold);

  TextTable table({"noise", "F1(words)", "F1(3-grams)", "time words (s)",
                   "time 3-grams (s)"});
  std::vector<RunReport> reports;
  for (const double noise : {0.1, 0.3, 0.5, 0.7}) {
    const Dataset dataset =
        GenerateBibliographic(bench::HardBibliographic(entities, noise));
    const auto truth = dataset.TruePairs();
    std::vector<std::string> row = {FormatDouble(noise, 1)};
    std::vector<std::string> times;
    for (const RecordRepresentation representation :
         {RecordRepresentation::kWordTokens,
          RecordRepresentation::kCharacterQGrams}) {
      LinkageConfig config;
      config.theta = bench::kTheta;
      config.group_threshold = bench::kGroupThreshold;
      config.representation = representation;
      WallTimer timer;
      const auto result = RunGroupLinkage(dataset, config);
      GL_CHECK(result.ok());
      reports.push_back(result->report());
      times.push_back(FormatDouble(timer.ElapsedSeconds(), 2));
      row.push_back(FormatDouble(EvaluatePairs(result->linked_pairs, truth).f1, 3));
    }
    row.insert(row.end(), times.begin(), times.end());
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());
  return bench::ExitCode(bench::WriteMetricsJson(
      flags.GetString("metrics-json"), "e16_representation", reports));
}
