// E7 — Matching algorithm cost vs group size (paper: the O(k³) exact
// matching is the scalability bottleneck that motivates the bounds).
//
// Times the Hungarian algorithm, greedy matching, Hopcroft-Karp, and the
// O(E) semi-matching (UB engine) on random bipartite similarity graphs of
// growing side size. Expected shape: Hungarian grows ~cubically; greedy
// and semi-matching stay near-linear in E, diverging by orders of
// magnitude at a few hundred records per group.

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "eval/table.h"
#include "matching/auction.h"
#include "matching/greedy.h"
#include "matching/hopcroft_karp.h"
#include "matching/hungarian.h"
#include "matching/semi_matching.h"

namespace {

using namespace grouplink;

BipartiteGraph RandomGraph(Rng& rng, int32_t side, double density) {
  BipartiteGraph graph(side, side);
  for (int32_t l = 0; l < side; ++l) {
    for (int32_t r = 0; r < side; ++r) {
      if (rng.Bernoulli(density)) graph.AddEdge(l, r, 0.05 + 0.95 * rng.UniformDouble());
    }
  }
  return graph;
}

// Repeats `fn` until ~0.2s elapse and returns milliseconds per call.
template <typename Fn>
double TimePerCall(const Fn& fn) {
  WallTimer timer;
  int calls = 0;
  do {
    fn();
    ++calls;
  } while (timer.ElapsedSeconds() < 0.2);
  return timer.ElapsedMillis() / calls;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("density", 0.3, "edge probability");
  flags.AddInt64("max-side", 512, "largest group size to time");
  flags.AddBool("smoke", false, "tiny CI workload (overrides size knobs)");
  const Status parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok()) return bench::ExitCode(parse_status);
  const double density = flags.GetDouble("density");
  const int64_t max_side =
      flags.GetBool("smoke") ? 16 : flags.GetInt64("max-side");

  std::printf("E7: matching cost vs group size (density=%.2f)\n\n", density);

  Rng rng(7);
  TextTable table({"group size", "edges", "Hungarian (ms)", "Auction (ms)",
                   "Greedy (ms)", "Hopcroft-Karp (ms)", "semi-match (ms)"});
  for (int32_t side = 8; side <= max_side; side *= 2) {
    const BipartiteGraph graph = RandomGraph(rng, side, density);
    const double hungarian =
        TimePerCall([&] { (void)HungarianMaxWeightMatching(graph); });
    const double auction =
        TimePerCall([&] { (void)AuctionMaxWeightMatching(graph, 1e-4); });
    const double greedy = TimePerCall([&] { (void)GreedyMaxWeightMatching(graph); });
    const double hopcroft = TimePerCall([&] { (void)HopcroftKarpMatching(graph); });
    const double semi = TimePerCall([&] { ComputeSemiMatching(graph); });
    table.AddRow({std::to_string(side), std::to_string(graph.edges().size()),
                  FormatDouble(hungarian, 3), FormatDouble(auction, 3),
                  FormatDouble(greedy, 3), FormatDouble(hopcroft, 3),
                  FormatDouble(semi, 4)});
  }
  std::printf("%s", table.ToString().c_str());
  return bench::ExitCode(Status::Ok());
}
