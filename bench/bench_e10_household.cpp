// E10 — Second evaluation domain: census household linkage (paper:
// results on household/census-style data alongside the bibliographic
// domain).
//
// Links snapshot-A households to snapshot-B households and reports the
// same per-measure accuracy table as E1. Expected shape: the relative
// ordering of the measures carries over from the bibliographic domain,
// with Jaccard less catastrophic here (member records drift less than
// citation strings) but still behind BM.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/linkage_engine.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace grouplink;

  FlagParser flags;
  flags.AddInt64("households", 400, "households to generate");
  flags.AddDouble("noise", 0.3, "generator noise");
  flags.AddDouble("theta", 0.4, "record-level edge threshold");
  flags.AddDouble("group-threshold", 0.3, "group-level link threshold");
  flags.AddBool("smoke", false, "tiny CI workload (overrides size knobs)");
  flags.AddString("metrics-json", "BENCH_e10.json",
                  "unified metrics report output path ('' to skip)");
  GL_CHECK(flags.Parse(argc, argv).ok());
  const int32_t households =
      flags.GetBool("smoke") ? 40
                             : static_cast<int32_t>(flags.GetInt64("households"));

  const Dataset dataset = GenerateHouseholds(
      bench::StandardHouseholds(households, flags.GetDouble("noise")));
  const auto truth = dataset.TruePairs();
  std::printf(
      "E10: household linkage — %d person records, %d snapshot groups, "
      "%zu true pairs\n\n",
      dataset.num_records(), dataset.num_groups(), truth.size());

  TextTable table({"measure", "precision", "recall", "F1", "links", "time (s)"});
  std::vector<RunReport> reports;
  for (const GroupMeasureKind measure :
       {GroupMeasureKind::kBm, GroupMeasureKind::kGreedy,
        GroupMeasureKind::kUpperBound, GroupMeasureKind::kBinaryJaccard,
        GroupMeasureKind::kSingleBest}) {
    LinkageConfig config;
    config.theta = flags.GetDouble("theta");
    config.group_threshold = flags.GetDouble("group-threshold");
    config.measure = measure;
    WallTimer timer;
    const auto result = RunGroupLinkage(dataset, config);
    GL_CHECK(result.ok());
    reports.push_back(result->report());
    const double seconds = timer.ElapsedSeconds();
    const PairMetrics metrics = EvaluatePairs(result->linked_pairs, truth);
    table.AddRow({GroupMeasureKindName(measure), FormatDouble(metrics.precision, 3),
                  FormatDouble(metrics.recall, 3), FormatDouble(metrics.f1, 3),
                  std::to_string(result->linked_pairs.size()),
                  FormatDouble(seconds, 3)});
  }
  std::printf("%s", table.ToString().c_str());
  return bench::ExitCode(bench::WriteMetricsJson(flags.GetString("metrics-json"),
                                                 "e10_household", reports));
}
