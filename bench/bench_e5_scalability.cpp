// E5 — Scalability of the filter-and-refine strategy (paper: execution
// time vs data size for the naive vs bounded evaluation strategies).
//
// Sweeps the number of groups and times three strategies that all return
// identical links (equivalence asserted):
//   brute       — all group pairs, exact BM on each (no candidates, no bounds)
//   join+exact  — prefix-filter join candidates, exact BM on each
//   join+bounds — full pipeline: join candidates, UB prune / LB accept,
//                 Hungarian only on the residue
// The brute strategy is skipped above --brute-cap groups (quadratic blowup,
// exactly the paper's motivation).

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/linkage_engine.h"
#include "eval/table.h"

namespace {

using namespace grouplink;

struct RunOutcome {
  double seconds = 0.0;
  size_t links = 0;
  size_t refined = 0;
};

RunOutcome TimeRun(const Dataset& dataset, CandidateMethod candidates, bool bounds,
                   bool edge_join = false) {
  LinkageConfig config;
  config.theta = bench::kTheta;
  config.group_threshold = bench::kGroupThreshold;
  config.candidates = candidates;
  config.use_filter_refine = bounds;
  config.use_edge_join = edge_join;
  WallTimer timer;
  const auto result = RunGroupLinkage(dataset, config);
  GL_CHECK(result.ok());
  RunOutcome outcome;
  outcome.seconds = timer.ElapsedSeconds();
  outcome.links = result->linked_pairs.size();
  outcome.refined =
      edge_join ? result->edge_join_stats.refined : result->score_stats.refined;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt64("brute-cap", 700, "skip the brute-force strategy above this many groups");
  flags.AddString("sizes", "60,125,250,500", "comma-separated entity counts");
  GL_CHECK(flags.Parse(argc, argv).ok());
  const int64_t brute_cap = flags.GetInt64("brute-cap");

  std::printf("E5: wall time vs number of groups (theta=%.2f, Theta=%.2f)\n\n",
              bench::kTheta, bench::kGroupThreshold);

  TextTable table({"groups", "records", "brute (s)", "per-pair+bounds (s)",
                   "edge-join (s)", "speedup", "links"});
  for (const std::string& size_text : Split(flags.GetString("sizes"), ',')) {
    const auto entities = ParseInt64(size_text);
    GL_CHECK(entities.ok()) << size_text;
    const Dataset dataset = GenerateBibliographic(
        bench::HardBibliographic(static_cast<int32_t>(*entities), 0.25));

    const RunOutcome edge_join =
        TimeRun(dataset, CandidateMethod::kRecordJoin, true, /*edge_join=*/true);
    const RunOutcome bounded = TimeRun(dataset, CandidateMethod::kRecordJoin, true);
    GL_CHECK_EQ(edge_join.links, bounded.links);

    std::string brute_cell = "-";
    double reference_seconds = bounded.seconds;
    if (dataset.num_groups() <= brute_cap) {
      const RunOutcome brute = TimeRun(dataset, CandidateMethod::kAllPairs, false);
      GL_CHECK_EQ(brute.links, bounded.links);
      brute_cell = FormatDouble(brute.seconds, 2);
      reference_seconds = brute.seconds;
    }
    table.AddRow({std::to_string(dataset.num_groups()),
                  std::to_string(dataset.num_records()), brute_cell,
                  FormatDouble(bounded.seconds, 2),
                  FormatDouble(edge_join.seconds, 2),
                  FormatDouble(reference_seconds / edge_join.seconds, 1) + "x",
                  std::to_string(edge_join.links)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nAll strategies returned identical link sets on every size "
      "(checked).\n");
  return 0;
}
