// E5 — Scalability of the filter-and-refine strategy (paper: execution
// time vs data size for the naive vs bounded evaluation strategies).
//
// Sweeps the number of groups and times three strategies that all return
// identical links (equivalence asserted):
//   brute       — all group pairs, exact BM on each (no candidates, no bounds)
//   join+exact  — prefix-filter join candidates, exact BM on each
//   join+bounds — full pipeline: join candidates, UB prune / LB accept,
//                 Hungarian only on the residue
// The brute strategy is skipped above --brute-cap groups (quadratic blowup,
// exactly the paper's motivation).
//
// The edge-join strategy is additionally run at every thread count in
// --thread-sweep; linked pairs and edge/bucket counters are asserted
// bit-identical across all settings, and every run's RunReport is written
// to --metrics-json (BENCH_e5.json) in the unified grouplink.metrics.v1
// schema so later changes can track the perf trajectory.

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/linkage_engine.h"
#include "eval/table.h"

namespace {

using namespace grouplink;

struct RunOutcome {
  double seconds = 0.0;
  std::vector<std::pair<int32_t, int32_t>> links;
  RunReport report;
};

// Resilience limits applied to a run (all zero = unconstrained).
struct Limits {
  double deadline_ms = 0.0;
  int64_t max_candidates = 0;
  int64_t max_matcher_cost = 0;

  bool any() const {
    return deadline_ms > 0.0 || max_candidates > 0 || max_matcher_cost > 0;
  }
};

RunOutcome TimeRun(const Dataset& dataset, CandidateMethod candidates, bool bounds,
                   bool edge_join, int64_t threads, const Limits& limits = {}) {
  LinkageConfig config;
  config.theta = bench::kTheta;
  config.group_threshold = bench::kGroupThreshold;
  config.candidates = candidates;
  config.use_filter_refine = bounds;
  config.use_edge_join = edge_join;
  config.num_threads = static_cast<int32_t>(threads);
  config.deadline_ms = limits.deadline_ms;
  config.max_candidate_pairs = limits.max_candidates;
  config.max_matcher_cost = limits.max_matcher_cost;
  WallTimer timer;
  const auto result = RunGroupLinkage(dataset, config);
  GL_CHECK(result.ok());
  RunOutcome outcome;
  outcome.seconds = timer.ElapsedSeconds();
  outcome.links = result->linked_pairs;
  outcome.report = result->report();
  outcome.report.AddExtra("wall_seconds", outcome.seconds);
  return outcome;
}

// True when `sub` ⊆ `super` as link sets (copies sorted before comparing;
// the engine emits pairs in strategy-dependent order).
bool IsSubset(std::vector<std::pair<int32_t, int32_t>> sub,
              std::vector<std::pair<int32_t, int32_t>> super) {
  std::sort(sub.begin(), sub.end());
  std::sort(super.begin(), super.end());
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt64("brute-cap", 700, "skip the brute-force strategy above this many groups");
  flags.AddString("sizes", "60,125,250,500", "comma-separated entity counts");
  flags.AddInt64("threads", static_cast<int64_t>(DefaultThreadCount()),
                 "worker threads for the per-pair strategy");
  flags.AddString("thread-sweep", "1,2,4,8",
                  "comma-separated thread counts for the edge-join sweep");
  flags.AddString("metrics-json", "BENCH_e5.json",
                  "unified metrics report output path ('' to skip)");
  flags.AddBool("smoke", false, "tiny CI workload (overrides size knobs)");
  flags.AddDouble("deadline-ms", 0.0,
                  "resilience mode: per-run deadline in milliseconds (0 = off)");
  flags.AddInt64("max-candidates", 0,
                 "resilience mode: cap on candidate pairs scored (0 = off)");
  flags.AddInt64("max-matcher-cost", 0,
                 "resilience mode: per-pair |g1|*|g2| matcher budget (0 = off)");
  flags.AddString("inject", "",
                  "resilience mode: fault specs 'point[:k=v,...][;...]' armed "
                  "before the limited run");
  GL_CHECK(flags.Parse(argc, argv).ok());
  const bool smoke = flags.GetBool("smoke");
  const int64_t brute_cap = flags.GetInt64("brute-cap");
  const int64_t threads = std::max<int64_t>(1, flags.GetInt64("threads"));
  const std::string sizes = smoke ? "15,30" : flags.GetString("sizes");
  const std::string sweep_text =
      smoke ? "1,2" : flags.GetString("thread-sweep");

  std::vector<int64_t> thread_sweep;
  for (const std::string& t : Split(sweep_text, ',')) {
    const auto parsed = ParseInt64(t);
    GL_CHECK(parsed.ok()) << t;
    thread_sweep.push_back(std::max<int64_t>(1, *parsed));
  }
  GL_CHECK(!thread_sweep.empty());

  Limits limits;
  limits.deadline_ms = flags.GetDouble("deadline-ms");
  limits.max_candidates = flags.GetInt64("max-candidates");
  limits.max_matcher_cost = flags.GetInt64("max-matcher-cost");
  const std::string inject = flags.GetString("inject");

  if (limits.any() || !inject.empty()) {
    // Resilience mode: one unconstrained reference run, then the same
    // configuration under the limits (and any armed faults). The limited
    // run must stay a *subset* of the reference links — the partial-result
    // contract of DESIGN.md §8 — on both evaluation strategies. The
    // equality sweeps of the normal mode are meaningless here (a degraded
    // run is allowed to shed work), so they are skipped.
    const auto first_size = ParseInt64(Split(sizes, ',').front());
    GL_CHECK(first_size.ok());
    const Dataset dataset = GenerateBibliographic(
        bench::HardBibliographic(static_cast<int32_t>(*first_size), 0.25));
    std::printf("E5 (resilience mode): %d groups, deadline=%.3fms, "
                "max-candidates=%lld, max-matcher-cost=%lld, inject='%s'\n\n",
                dataset.num_groups(), limits.deadline_ms,
                static_cast<long long>(limits.max_candidates),
                static_cast<long long>(limits.max_matcher_cost), inject.c_str());

    std::vector<RunReport> reports;
    for (const bool edge_join : {false, true}) {
      const char* strategy = edge_join ? "edge-join" : "per-pair";
      const RunOutcome full =
          TimeRun(dataset, CandidateMethod::kRecordJoin, true, edge_join, threads);
      GL_CHECK(bench::ArmFaults(inject).ok());
      RunOutcome limited = TimeRun(dataset, CandidateMethod::kRecordJoin, true,
                                   edge_join, threads, limits);
      FaultInjector::Default().DisarmAll();
      GL_CHECK(IsSubset(limited.links, full.links))
          << strategy << ": degraded run linked pairs the full run did not";
      limited.report.AddExtra("reference_links",
                              static_cast<double>(full.links.size()));
      std::printf(
          "  %-9s full=%zu links, limited=%zu links (subset: yes), "
          "degraded=%s, stop_reason=%s\n",
          strategy, full.links.size(), limited.links.size(),
          limited.report.degraded ? "true" : "false",
          limited.report.stop_reason.empty() ? "-"
                                             : limited.report.stop_reason.c_str());
      reports.push_back(full.report);
      reports.push_back(limited.report);
    }
    std::printf(
        "\nBoth strategies honored the limits and returned valid partial "
        "results (subset of the unconstrained links).\n");
    return bench::ExitCode(bench::WriteMetricsJson(
        flags.GetString("metrics-json"), "e5_scalability_resilience", reports));
  }

  std::printf(
      "E5: wall time vs number of groups (theta=%.2f, Theta=%.2f, "
      "%zu hardware threads)\n\n",
      bench::kTheta, bench::kGroupThreshold, DefaultThreadCount());

  std::vector<std::string> header = {"groups", "records", "brute (s)",
                                     "per-pair+bounds (s)"};
  for (const int64_t t : thread_sweep) {
    header.push_back("edge-join " + std::to_string(t) + "t (s)");
  }
  header.push_back("speedup");
  header.push_back("links");
  TextTable table(header);

  std::vector<RunReport> reports;
  for (const std::string& size_text : Split(sizes, ',')) {
    const auto entities = ParseInt64(size_text);
    GL_CHECK(entities.ok()) << size_text;
    const Dataset dataset = GenerateBibliographic(
        bench::HardBibliographic(static_cast<int32_t>(*entities), 0.25));
    const int32_t groups = dataset.num_groups();
    const int32_t records = dataset.num_records();

    // Edge join at every thread count; output must be bit-identical.
    std::vector<RunOutcome> edge_runs;
    for (const int64_t t : thread_sweep) {
      edge_runs.push_back(
          TimeRun(dataset, CandidateMethod::kRecordJoin, true, /*edge_join=*/true, t));
      const RunOutcome& run = edge_runs.back();
      const RunOutcome& first = edge_runs.front();
      GL_CHECK(run.links == first.links)
          << "edge-join links diverge at " << t << " threads";
      GL_CHECK_EQ(run.report.StageCounter("join", "edges"),
                  first.report.StageCounter("join", "edges"));
      GL_CHECK_EQ(run.report.StageCounter("bucket", "group_pairs"),
                  first.report.StageCounter("bucket", "group_pairs"));
      GL_CHECK_EQ(run.report.StageCounter("join", "record_candidates"),
                  first.report.StageCounter("join", "record_candidates"));
      reports.push_back(run.report);
    }

    const RunOutcome bounded =
        TimeRun(dataset, CandidateMethod::kRecordJoin, true, /*edge_join=*/false,
                threads);
    GL_CHECK(edge_runs.front().links == bounded.links);
    reports.push_back(bounded.report);

    std::string brute_cell = "-";
    double reference_seconds = bounded.seconds;
    if (groups <= brute_cap) {
      RunOutcome brute =
          TimeRun(dataset, CandidateMethod::kAllPairs, false, /*edge_join=*/false, 1);
      GL_CHECK(brute.links == bounded.links);
      brute_cell = FormatDouble(brute.seconds, 2);
      reference_seconds = brute.seconds;
      brute.report.strategy = "brute";
      reports.push_back(brute.report);
    }

    double best_edge_seconds = edge_runs.front().seconds;
    std::vector<std::string> row = {std::to_string(groups), std::to_string(records),
                                    brute_cell, FormatDouble(bounded.seconds, 2)};
    for (const RunOutcome& run : edge_runs) {
      row.push_back(FormatDouble(run.seconds, 2));
      best_edge_seconds = std::min(best_edge_seconds, run.seconds);
    }
    row.push_back(FormatDouble(reference_seconds / best_edge_seconds, 1) + "x");
    row.push_back(std::to_string(edge_runs.front().links.size()));
    table.AddRow(row);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nAll strategies returned identical link sets on every size, and the "
      "edge join's links, edges, and buckets were bit-identical at every "
      "thread count (checked).\n");

  return bench::ExitCode(bench::WriteMetricsJson(flags.GetString("metrics-json"),
                                                 "e5_scalability", reports));
}
