// E4 — Robustness to data dirtiness (paper: accuracy on increasingly
// perturbed data).
//
// Sweeps the generator's noise dial and reports F1 per measure. Expected
// shape: BM (and greedy) degrade gracefully; binary Jaccard collapses as
// soon as record copies stop being near-identical; the single-best
// baseline's precision stays poor throughout.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/linkage_engine.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace grouplink;

  FlagParser flags;
  flags.AddInt64("entities", 100, "author entities");
  flags.AddBool("smoke", false, "tiny CI workload (overrides size knobs)");
  flags.AddString("metrics-json", "BENCH_e4.json",
                  "unified metrics report output path ('' to skip)");
  GL_CHECK(flags.Parse(argc, argv).ok());
  const int32_t entities = flags.GetBool("smoke")
                               ? 12
                               : static_cast<int32_t>(flags.GetInt64("entities"));

  std::printf("E4: F1 vs noise (theta=%.2f, Theta=%.2f)\n\n", bench::kTheta,
              bench::kGroupThreshold);

  TextTable table({"noise", "F1(BM)", "F1(Greedy)", "F1(Jaccard)", "F1(SingleBest)",
                   "R(BM)", "R(Jaccard)"});
  std::vector<RunReport> reports;
  for (const double noise : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    const Dataset dataset =
        GenerateBibliographic(bench::HardBibliographic(entities, noise));
    const auto truth = dataset.TruePairs();
    std::vector<std::string> row = {FormatDouble(noise, 1)};
    double bm_recall = 0.0;
    double jaccard_recall = 0.0;
    for (const GroupMeasureKind measure :
         {GroupMeasureKind::kBm, GroupMeasureKind::kGreedy,
          GroupMeasureKind::kBinaryJaccard, GroupMeasureKind::kSingleBest}) {
      LinkageConfig config;
      config.theta = bench::kTheta;
      config.group_threshold = bench::kGroupThreshold;
      config.measure = measure;
      const auto result = RunGroupLinkage(dataset, config);
      GL_CHECK(result.ok());
      reports.push_back(result->report());
      const PairMetrics metrics = EvaluatePairs(result->linked_pairs, truth);
      row.push_back(FormatDouble(metrics.f1, 3));
      if (measure == GroupMeasureKind::kBm) bm_recall = metrics.recall;
      if (measure == GroupMeasureKind::kBinaryJaccard) jaccard_recall = metrics.recall;
    }
    row.push_back(FormatDouble(bm_recall, 3));
    row.push_back(FormatDouble(jaccard_recall, 3));
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());
  return bench::ExitCode(bench::WriteMetricsJson(
      flags.GetString("metrics-json"), "e4_noise_robustness", reports));
}
