// E17 (beyond the paper) — Streaming group linkage: batched arrivals
// against a live token index vs rerunning the batch engine from scratch.
//
// For each corpus size, half the groups seed the linker and the rest
// arrive in batches. Reports per-batch arrival latency percentiles, the
// cost of one epoch refresh vs a full batch rerun on the accumulated
// corpus, and asserts the convergence guarantee end to end: after the
// final refresh the streaming link set is *identical* to the batch
// engine's on the same corpus, and AddGroups is bit-identical at every
// thread count in --thread-sweep. Expected shape: absorbing a batch of
// arrivals costs an order of magnitude less than rerunning the pipeline,
// while a full epoch refresh costs about the same as the rerun (both
// rebuild the epoch statistics and rescore) — the streaming win is the
// cheap steady state between refreshes, not the refresh itself.

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/incremental.h"
#include "core/linkage_engine.h"
#include "eval/table.h"

namespace {

using namespace grouplink;

// Splits `full` into a seed prefix dataset and the remaining arrivals,
// rebasing the seed's record ids to a dense prefix.
void Split(const Dataset& full, int32_t seed_groups, Dataset* seed,
           std::vector<GroupArrival>* arrivals) {
  for (int32_t g = 0; g < full.num_groups(); ++g) {
    const Group& group = full.groups[static_cast<size_t>(g)];
    if (g < seed_groups) {
      Group rebased;
      rebased.id = group.id;
      rebased.label = group.label;
      for (const int32_t r : group.record_ids) {
        rebased.record_ids.push_back(static_cast<int32_t>(seed->records.size()));
        seed->records.push_back(full.records[static_cast<size_t>(r)]);
      }
      seed->groups.push_back(std::move(rebased));
    } else {
      GroupArrival arrival;
      arrival.label = group.label;
      for (const int32_t r : group.record_ids) {
        arrival.record_texts.push_back(full.records[static_cast<size_t>(r)].text);
      }
      arrivals->push_back(std::move(arrival));
    }
  }
}

// The corpus the linker has accumulated, as a batch dataset: seed records
// followed by arrival records, in the linker's own id order.
Dataset Accumulate(const Dataset& seed, const std::vector<GroupArrival>& arrivals) {
  Dataset dataset = seed;
  for (size_t a = 0; a < arrivals.size(); ++a) {
    Group group;
    group.id = "s" + std::to_string(a);
    group.label = arrivals[a].label;
    for (const std::string& text : arrivals[a].record_texts) {
      group.record_ids.push_back(static_cast<int32_t>(dataset.records.size()));
      Record record;
      record.id = "sr" + std::to_string(dataset.records.size());
      record.text = text;
      dataset.records.push_back(std::move(record));
    }
    dataset.groups.push_back(std::move(group));
  }
  return dataset;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index =
      static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[index];
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("sizes", "60,125,250", "comma-separated entity counts");
  flags.AddDouble("seed-fraction", 0.5, "fraction of groups that seed the linker");
  flags.AddInt64("batch-size", 8, "groups per AddGroups batch");
  flags.AddInt64("refresh-every", 32, "epoch refresh policy during the stream");
  flags.AddInt64("threads", static_cast<int64_t>(DefaultThreadCount()),
                 "worker threads for the streaming linker");
  flags.AddString("thread-sweep", "1,2,4,8",
                  "thread counts for the AddGroups determinism check");
  flags.AddString("metrics-json", "BENCH_e17.json",
                  "unified metrics report output path ('' to skip)");
  flags.AddBool("smoke", false, "tiny CI workload (overrides size knobs)");
  flags.AddDouble("deadline-ms", 0.0,
                  "resilience: per-batch/refresh deadline in ms (0 = off)");
  flags.AddInt64("max-candidates", 0,
                 "resilience: cap on candidates scored per arrival (0 = off)");
  flags.AddInt64("max-matcher-cost", 0,
                 "resilience: per-pair |g1|*|g2| matcher budget (0 = off)");
  flags.AddString("inject", "",
                  "resilience: fault specs 'point[:k=v,...][;...]' armed during "
                  "the stream, disarmed before the final refresh");
  GL_CHECK(flags.Parse(argc, argv).ok());
  const bool smoke = flags.GetBool("smoke");
  const std::string sizes = smoke ? "15" : flags.GetString("sizes");
  const std::string sweep_text = smoke ? "1,2" : flags.GetString("thread-sweep");
  const int64_t batch_size = std::max<int64_t>(1, flags.GetInt64("batch-size"));
  const int64_t threads = std::max<int64_t>(1, flags.GetInt64("threads"));

  std::vector<int32_t> thread_sweep;
  for (const std::string& t : Split(sweep_text, ',')) {
    const auto parsed = ParseInt64(t);
    GL_CHECK(parsed.ok()) << t;
    thread_sweep.push_back(static_cast<int32_t>(std::max<int64_t>(1, *parsed)));
  }
  GL_CHECK(!thread_sweep.empty());

  LinkageConfig config;
  config.theta = bench::kTheta;
  config.group_threshold = bench::kGroupThreshold;
  config.num_threads = static_cast<int32_t>(threads);
  config.deadline_ms = flags.GetDouble("deadline-ms");
  config.max_candidate_pairs = flags.GetInt64("max-candidates");
  config.max_matcher_cost = flags.GetInt64("max-matcher-cost");
  const std::string inject = flags.GetString("inject");
  const bool has_limits = config.deadline_ms > 0.0 ||
                          config.max_candidate_pairs > 0 ||
                          config.max_matcher_cost > 0;
  // Resilience mode: arrivals may shed work (armed faults, limits), so
  // after the final *clean* refresh streaming must be a subset of batch —
  // and exactly equal when only faults were armed (they are disarmed
  // before that refresh; config limits still apply to it).
  const bool resilience = has_limits || !inject.empty();
  StreamingConfig streaming;
  streaming.refresh_every_n_groups =
      static_cast<int32_t>(flags.GetInt64("refresh-every"));

  std::printf(
      "E17: streaming arrivals vs batch rerun (theta=%.2f, Theta=%.2f, "
      "batch=%lld, refresh every %d groups, %lld threads)\n\n",
      bench::kTheta, bench::kGroupThreshold, static_cast<long long>(batch_size),
      streaming.refresh_every_n_groups, static_cast<long long>(threads));

  TextTable table({"groups", "records", "arrivals", "p50 (ms)", "p95 (ms)",
                   "max (ms)", "refresh (s)", "batch rerun (s)", "speedup",
                   "links"});
  std::vector<RunReport> reports;
  bool first_size = true;
  for (const std::string& size_text : Split(sizes, ',')) {
    const auto entities = ParseInt64(size_text);
    GL_CHECK(entities.ok()) << size_text;
    const Dataset full = GenerateBibliographic(
        bench::HardBibliographic(static_cast<int32_t>(*entities), 0.25));
    const int32_t seed_groups = std::max<int32_t>(
        1, static_cast<int32_t>(flags.GetDouble("seed-fraction") *
                                full.num_groups()));
    Dataset seed;
    std::vector<GroupArrival> arrivals;
    Split(full, seed_groups, &seed, &arrivals);
    GL_CHECK(!arrivals.empty());

    auto linker_or = IncrementalLinker::Create(seed, config, streaming);
    GL_CHECK(linker_or.ok()) << linker_or.status().ToString();
    IncrementalLinker& linker = *linker_or;
    // Faults cover the stream only: seeding above ran clean, and the
    // final refresh below must run clean to prove recoverability.
    GL_CHECK(bench::ArmFaults(inject).ok());

    // Stream the arrivals in fixed-size batches, timing each batch.
    std::vector<double> batch_millis;
    double stream_seconds = 0.0;
    int64_t stream_candidates = 0;
    int64_t stream_links = 0;
    int64_t stream_oov = 0;
    int64_t refreshes_triggered = 0;
    int64_t degraded_arrivals = 0;
    size_t next = 0;
    while (next < arrivals.size()) {
      const size_t take =
          std::min<size_t>(static_cast<size_t>(batch_size), arrivals.size() - next);
      const std::vector<GroupArrival> batch(
          arrivals.begin() + static_cast<ptrdiff_t>(next),
          arrivals.begin() + static_cast<ptrdiff_t>(next + take));
      WallTimer timer;
      const auto results = linker.AddGroups(batch);
      const double seconds = timer.ElapsedSeconds();
      stream_seconds += seconds;
      batch_millis.push_back(1000.0 * seconds);
      for (const auto& result : results) {
        stream_candidates += static_cast<int64_t>(result.candidates);
        stream_links += static_cast<int64_t>(result.linked_to.size());
        stream_oov += static_cast<int64_t>(result.oov_tokens);
        refreshes_triggered += result.triggered_refresh ? 1 : 0;
        degraded_arrivals += result.degraded ? 1 : 0;
      }
      next += take;
    }
    FaultInjector::Default().DisarmAll();

    // Final epoch refresh: after it, streaming must equal batch exactly
    // (or stay a subset when config limits also constrain the refresh).
    WallTimer refresh_timer;
    linker.Refresh();
    const double refresh_seconds = refresh_timer.ElapsedSeconds();

    const Dataset accumulated = Accumulate(seed, arrivals);
    GL_CHECK(accumulated.Validate().ok());
    WallTimer batch_timer;
    LinkageConfig batch_config = linker.engine_config();
    // The batch comparator runs unconstrained — it is the reference.
    batch_config.deadline_ms = 0.0;
    batch_config.max_candidate_pairs = 0;
    batch_config.max_matcher_cost = 0;
    const auto batch_result = RunGroupLinkage(accumulated, batch_config);
    GL_CHECK(batch_result.ok());
    const double batch_seconds = batch_timer.ElapsedSeconds();
    if (has_limits) {
      std::vector<std::pair<int32_t, int32_t>> batch_sorted =
          batch_result->linked_pairs;
      std::sort(batch_sorted.begin(), batch_sorted.end());
      GL_CHECK(std::includes(batch_sorted.begin(), batch_sorted.end(),
                             linker.linked_pairs().begin(),
                             linker.linked_pairs().end()))
          << "limited streaming run linked pairs the batch run did not at "
          << *entities << " entities";
    } else {
      GL_CHECK(linker.linked_pairs() == batch_result->linked_pairs)
          << "streaming diverged from batch after refresh at " << *entities
          << " entities";
    }

    // Determinism: one big AddGroups batch at every thread count must
    // produce bit-identical links (checked on the first size only; the
    // property is size-independent and the sweep re-streams everything).
    // Skipped in resilience mode: a deadline trips at a wall-clock time,
    // so where it lands is legitimately timing-dependent.
    if (first_size && !resilience) {
      std::vector<std::pair<int32_t, int32_t>> reference;
      for (size_t i = 0; i < thread_sweep.size(); ++i) {
        LinkageConfig sweep_config = config;
        sweep_config.num_threads = thread_sweep[i];
        auto sweep_linker_or = IncrementalLinker::Create(seed, sweep_config);
        GL_CHECK(sweep_linker_or.ok());
        IncrementalLinker& sweep_linker = *sweep_linker_or;
        sweep_linker.AddGroups(arrivals);
        if (i == 0) {
          reference = sweep_linker.linked_pairs();
        } else {
          GL_CHECK(sweep_linker.linked_pairs() == reference)
              << "AddGroups links diverge at " << thread_sweep[i] << " threads";
        }
      }
      first_size = false;
    }

    const double p50 = Percentile(batch_millis, 0.5);
    const double p95 = Percentile(batch_millis, 0.95);
    const double max_ms = Percentile(batch_millis, 1.0);
    table.AddRow({std::to_string(linker.num_alive_groups()),
                  std::to_string(accumulated.num_records()),
                  std::to_string(arrivals.size()), FormatDouble(p50, 2),
                  FormatDouble(p95, 2), FormatDouble(max_ms, 2),
                  FormatDouble(refresh_seconds, 3), FormatDouble(batch_seconds, 3),
                  FormatDouble(batch_seconds / std::max(refresh_seconds, 1e-9), 1) +
                      "x",
                  std::to_string(linker.linked_pairs().size())});

    RunReport report;
    report.strategy = "streaming";
    report.candidate_method = "token-index";
    report.measure = "bm";
    report.threads = static_cast<int32_t>(threads);
    report.records = accumulated.num_records();
    report.groups = linker.num_alive_groups();
    report.links = static_cast<int64_t>(linker.linked_pairs().size());
    report.AddStage("stream", stream_seconds)
        .AddCounter("arrivals", static_cast<int64_t>(arrivals.size()))
        .AddCounter("batches", static_cast<int64_t>(batch_millis.size()))
        .AddCounter("candidates", stream_candidates)
        .AddCounter("links_found", stream_links)
        .AddCounter("oov_tokens", stream_oov)
        .AddCounter("refreshes_triggered", refreshes_triggered)
        .AddCounter("degraded_arrivals", degraded_arrivals);
    report.degraded = degraded_arrivals > 0;
    report.AddStage("refresh", refresh_seconds)
        .AddCounter("epoch", linker.epoch());
    report.AddStage("batch-rerun", batch_seconds)
        .AddCounter("links", static_cast<int64_t>(batch_result->linked_pairs.size()));
    report.AddExtra("arrival_p50_ms", p50);
    report.AddExtra("arrival_p95_ms", p95);
    report.AddExtra("arrival_max_ms", max_ms);
    reports.push_back(std::move(report));
  }
  std::printf("%s", table.ToString().c_str());
  if (resilience) {
    std::printf(
        "\nResilience mode: the stream survived the armed faults/limits, and "
        "after the final clean refresh the link set was %s the batch "
        "engine's on every size (checked).\n",
        has_limits ? "a subset of" : "identical to");
  } else {
    std::printf(
        "\nAfter the final refresh the streaming link set was identical to the "
        "batch engine's on every size, and AddGroups was bit-identical at every "
        "thread count in the sweep (checked).\n");
  }

  return bench::ExitCode(bench::WriteMetricsJson(flags.GetString("metrics-json"),
                                                 "e17_streaming", reports));
}
