// E12 — Microbenchmarks of the matching substrate (google-benchmark):
// Hungarian vs greedy vs Hopcroft-Karp vs semi-matching across graph
// sizes, the per-pair kernel costs behind experiment E7.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "matching/auction.h"
#include "matching/bipartite_graph.h"
#include "matching/greedy.h"
#include "matching/hopcroft_karp.h"
#include "matching/hungarian.h"
#include "matching/semi_matching.h"

namespace {

using namespace grouplink;

BipartiteGraph RandomGraph(int32_t side, double density, uint64_t seed) {
  Rng rng(seed);
  BipartiteGraph graph(side, side);
  for (int32_t l = 0; l < side; ++l) {
    for (int32_t r = 0; r < side; ++r) {
      if (rng.Bernoulli(density)) graph.AddEdge(l, r, 0.05 + 0.95 * rng.UniformDouble());
    }
  }
  return graph;
}

void BM_Hungarian(benchmark::State& state) {
  const BipartiteGraph graph = RandomGraph(static_cast<int32_t>(state.range(0)), 0.3, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HungarianMaxWeightMatching(graph));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Hungarian)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_Auction(benchmark::State& state) {
  const BipartiteGraph graph = RandomGraph(static_cast<int32_t>(state.range(0)), 0.3, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AuctionMaxWeightMatching(graph, 1e-4));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Auction)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_Greedy(benchmark::State& state) {
  const BipartiteGraph graph = RandomGraph(static_cast<int32_t>(state.range(0)), 0.3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyMaxWeightMatching(graph));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Greedy)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_HopcroftKarp(benchmark::State& state) {
  const BipartiteGraph graph = RandomGraph(static_cast<int32_t>(state.range(0)), 0.3, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HopcroftKarpMatching(graph));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HopcroftKarp)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_SemiMatching(benchmark::State& state) {
  const BipartiteGraph graph = RandomGraph(static_cast<int32_t>(state.range(0)), 0.3, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSemiMatching(graph));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SemiMatching)->RangeMultiplier(2)->Range(8, 256)->Complexity();

}  // namespace

BENCHMARK_MAIN();
