// E13 (ablation, beyond the paper) — Measure variants on size-unbalanced
// groups: BM vs the tie-proof BM* vs the asymmetric containment
// extension.
//
// Workload: groups of the same entity sample wildly different fractions
// of the entity's citation pool (a small early-career group inside a
// large one). BM's union-style denominator punishes the size gap — a
// small subset group scores at most |small| / |large| even with perfect
// record matches — so a fixed Θ loses exactly those pairs. Containment
// normalizes by the smaller group and recovers them, at some precision
// risk. BM* tracks BM (it only repairs matching-cardinality ties).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/linkage_engine.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace grouplink;

  FlagParser flags;
  flags.AddInt64("entities", 120, "author entities");
  flags.AddBool("smoke", false, "tiny CI workload (overrides size knobs)");
  flags.AddString("metrics-json", "BENCH_e13.json",
                  "unified metrics report output path ('' to skip)");
  GL_CHECK(flags.Parse(argc, argv).ok());
  const int32_t entities = flags.GetBool("smoke")
                               ? 15
                               : static_cast<int32_t>(flags.GetInt64("entities"));

  BibliographicConfig data_config = bench::HardBibliographic(entities, 0.2);
  data_config.group_citation_fraction = 0.9;
  data_config.group_citation_fraction_min = 0.15;  // Heavy size imbalance.
  const Dataset dataset = GenerateBibliographic(data_config);
  const auto truth = dataset.TruePairs();
  std::printf(
      "E13: measure variants on size-unbalanced groups "
      "(%d groups, %zu true pairs, theta=%.2f)\n\n",
      dataset.num_groups(), truth.size(), bench::kTheta);

  TextTable table({"measure", "Theta", "precision", "recall", "F1"});
  std::vector<RunReport> reports;
  for (const GroupMeasureKind measure :
       {GroupMeasureKind::kBm, GroupMeasureKind::kBmStar,
        GroupMeasureKind::kContainment}) {
    for (const double threshold : {0.2, 0.4, 0.6}) {
      LinkageConfig config;
      config.theta = bench::kTheta;
      config.group_threshold = threshold;
      config.measure = measure;
      const auto result = RunGroupLinkage(dataset, config);
      GL_CHECK(result.ok());
      reports.push_back(result->report());
      const PairMetrics metrics = EvaluatePairs(result->linked_pairs, truth);
      table.AddRow({GroupMeasureKindName(measure), FormatDouble(threshold, 1),
                    FormatDouble(metrics.precision, 3),
                    FormatDouble(metrics.recall, 3), FormatDouble(metrics.f1, 3)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  return bench::ExitCode(bench::WriteMetricsJson(
      flags.GetString("metrics-json"), "e13_measure_variants", reports));
}
