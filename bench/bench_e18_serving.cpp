// E18 (beyond the paper) — Linkage-as-a-service: epoch-snapshot queries
// with non-blocking refresh.
//
// Two questions, one harness:
//
//   1. Ingest stalls. The same arrival stream is pushed through a
//      LinkageService twice — stop-the-world mode (async_refresh=false,
//      the pre-serving behavior: the arrival that trips the refresh
//      policy pays the full epoch rebuild inline) and serving mode
//      (async_refresh=true: the refresh runs on a clone in the
//      background and swaps in). The max arrival latency is the E17
//      tail this layer exists to kill; the run asserts a >= 5x drop.
//
//   2. Read throughput under write load. N reader threads hammer
//      LinkQuery against the published epoch while the writer streams
//      every arrival and the policy swaps epochs underneath them.
//      Reports QPS and per-query latency percentiles per reader count.
//
// Self-checks: after the final refresh the service's link set must be
// identical to a batch engine run over the accumulated corpus (both
// modes), and the reader sweep must observe more than one epoch — the
// queries really did race the swaps.
//
// --chaos adds a third part: a seeded fault storm over a
// SupervisedService (src/service/resilience) rotating through fsync
// failures (breaker trips + recovers), generic refresh failures
// (watchdog re-arms), poison arrival batches (quarantined), and stalled
// refreshes — with concurrent readers whose tight-deadline probes are
// shed at the admission gate. Reports per-round recovery-time
// percentiles and the shed rate; self-checks recovery, quarantine
// exactness, a legal chained breaker log, and batch-equivalence of the
// surviving link set (corpus minus the quarantined batches).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/fault_injection.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/linkage_engine.h"
#include "core/service.h"
#include "eval/table.h"
#include "service/resilience/supervised_service.h"
#include "storage/page_file.h"

namespace {

using namespace grouplink;

// Splits `full` into a seed prefix dataset and the remaining arrivals,
// rebasing the seed's record ids to a dense prefix.
void Split(const Dataset& full, int32_t seed_groups, Dataset* seed,
           std::vector<GroupArrival>* arrivals) {
  for (int32_t g = 0; g < full.num_groups(); ++g) {
    const Group& group = full.groups[static_cast<size_t>(g)];
    if (g < seed_groups) {
      Group rebased;
      rebased.id = group.id;
      rebased.label = group.label;
      for (const int32_t r : group.record_ids) {
        rebased.record_ids.push_back(static_cast<int32_t>(seed->records.size()));
        seed->records.push_back(full.records[static_cast<size_t>(r)]);
      }
      seed->groups.push_back(std::move(rebased));
    } else {
      GroupArrival arrival;
      arrival.label = group.label;
      for (const int32_t r : group.record_ids) {
        arrival.record_texts.push_back(full.records[static_cast<size_t>(r)].text);
      }
      arrivals->push_back(std::move(arrival));
    }
  }
}

// The corpus the service has accumulated, as a batch dataset.
Dataset Accumulate(const Dataset& seed, const std::vector<GroupArrival>& arrivals) {
  Dataset dataset = seed;
  for (size_t a = 0; a < arrivals.size(); ++a) {
    Group group;
    group.id = "s" + std::to_string(a);
    group.label = arrivals[a].label;
    for (const std::string& text : arrivals[a].record_texts) {
      group.record_ids.push_back(static_cast<int32_t>(dataset.records.size()));
      Record record;
      record.id = "sr" + std::to_string(dataset.records.size());
      record.text = text;
      dataset.records.push_back(std::move(record));
    }
    dataset.groups.push_back(std::move(group));
  }
  return dataset;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index =
      static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[index];
}

struct IngestRun {
  std::vector<double> arrival_millis;
  double ingest_seconds = 0.0;
  double final_refresh_seconds = 0.0;
  int64_t epochs_published = 0;
  std::vector<std::pair<int32_t, int32_t>> linked_pairs;
};

// Streams every arrival one at a time, timing each AddGroup, then drains
// any background refresh and runs a final stop-the-world refresh so the
// published epoch covers the whole stream.
IngestRun StreamArrivals(LinkageService& service,
                         const std::vector<GroupArrival>& arrivals) {
  IngestRun run;
  const int64_t epoch_before = service.published_epoch();
  WallTimer ingest_timer;
  for (const GroupArrival& arrival : arrivals) {
    WallTimer timer;
    (void)service.AddGroup(arrival.label, arrival.record_texts);
    run.arrival_millis.push_back(timer.ElapsedMillis());
  }
  service.WaitForRefresh();
  run.ingest_seconds = ingest_timer.ElapsedSeconds();
  WallTimer refresh_timer;
  service.Refresh();
  run.final_refresh_seconds = refresh_timer.ElapsedSeconds();
  run.epochs_published = service.published_epoch() - epoch_before;
  run.linked_pairs = service.linked_pairs();
  return run;
}

struct ReaderLog {
  size_t queries = 0;
  size_t links = 0;
  int64_t first_epoch = -1;
  int64_t last_epoch = -1;
  std::vector<double> query_millis;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt64("entities", 150, "bibliographic entities in the corpus");
  flags.AddDouble("seed-fraction", 0.5, "fraction of groups that seed the service");
  flags.AddInt64("refresh-every", 8, "epoch refresh policy during the stream");
  flags.AddString("reader-sweep", "1,2,4",
                  "reader thread counts for the query throughput sweep");
  flags.AddString("metrics-json", "BENCH_e18.json",
                  "unified metrics report output path ('' to skip)");
  flags.AddBool("smoke", false, "tiny CI workload (overrides size knobs)");
  flags.AddBool("chaos", false,
                "also run the self-healing fault-storm part (SupervisedService)");
  flags.AddInt64("chaos-rounds", 12, "storm rounds in the --chaos part");
  flags.AddInt64("chaos-seed", 7, "storm schedule seed for the --chaos part");
  GL_CHECK(flags.Parse(argc, argv).ok());
  const bool smoke = flags.GetBool("smoke");
  const int64_t entities = smoke ? 20 : flags.GetInt64("entities");
  const std::string sweep_text = smoke ? "1,2" : flags.GetString("reader-sweep");

  std::vector<int32_t> reader_sweep;
  for (const std::string& t : Split(sweep_text, ',')) {
    const auto parsed = ParseInt64(t);
    GL_CHECK(parsed.ok()) << t;
    reader_sweep.push_back(static_cast<int32_t>(std::max<int64_t>(1, *parsed)));
  }
  GL_CHECK(!reader_sweep.empty());

  ServiceConfig config;
  config.engine.theta = bench::kTheta;
  config.engine.group_threshold = bench::kGroupThreshold;
  config.streaming.refresh_every_n_groups =
      static_cast<int32_t>(std::max<int64_t>(1, flags.GetInt64("refresh-every")));

  const Dataset full = GenerateBibliographic(
      bench::HardBibliographic(static_cast<int32_t>(entities), 0.25));
  const int32_t seed_groups = std::max<int32_t>(
      1, static_cast<int32_t>(flags.GetDouble("seed-fraction") *
                              full.num_groups()));
  Dataset seed;
  std::vector<GroupArrival> arrivals;
  Split(full, seed_groups, &seed, &arrivals);
  GL_CHECK(!arrivals.empty());

  std::printf(
      "E18: epoch-snapshot serving (theta=%.2f, Theta=%.2f, %d seed groups, "
      "%zu arrivals, refresh every %d groups)\n\n",
      bench::kTheta, bench::kGroupThreshold, seed_groups, arrivals.size(),
      config.streaming.refresh_every_n_groups);

  // The batch reference for the self-checks: one engine run over the
  // fully accumulated corpus.
  const Dataset accumulated = Accumulate(seed, arrivals);
  GL_CHECK(accumulated.Validate().ok());
  const auto batch = RunGroupLinkage(accumulated, config.engine);
  GL_CHECK(batch.ok());

  std::vector<RunReport> reports;

  // --- Part 1: ingest stalls, stop-the-world vs non-blocking refresh ---

  TextTable ingest_table({"mode", "arrivals", "p50 (ms)", "p95 (ms)", "max (ms)",
                          "ingest (s)", "epochs", "links"});
  double max_by_mode[2] = {0.0, 0.0};
  for (const bool async : {false, true}) {
    ServiceConfig mode_config = config;
    mode_config.async_refresh = async;
    auto service_or = LinkageService::Create(seed, mode_config);
    GL_CHECK(service_or.ok()) << service_or.status().ToString();
    const IngestRun run = StreamArrivals(*service_or, arrivals);
    GL_CHECK(run.linked_pairs == batch->linked_pairs)
        << (async ? "async" : "sync")
        << " serving diverged from the batch engine after the final refresh";

    const double p50 = Percentile(run.arrival_millis, 0.5);
    const double p95 = Percentile(run.arrival_millis, 0.95);
    const double max_ms = Percentile(run.arrival_millis, 1.0);
    max_by_mode[async ? 1 : 0] = max_ms;
    ingest_table.AddRow({async ? "non-blocking" : "stop-the-world",
                         std::to_string(run.arrival_millis.size()),
                         FormatDouble(p50, 3), FormatDouble(p95, 3),
                         FormatDouble(max_ms, 3),
                         FormatDouble(run.ingest_seconds, 3),
                         std::to_string(run.epochs_published),
                         std::to_string(run.linked_pairs.size())});

    RunReport report;
    report.strategy = async ? "serving-async" : "serving-sync";
    report.candidate_method = "token-index";
    report.measure = "bm";
    report.threads = 1;
    report.records = accumulated.num_records();
    report.groups = full.num_groups();
    report.links = static_cast<int64_t>(run.linked_pairs.size());
    report.AddStage("ingest", run.ingest_seconds)
        .AddCounter("arrivals", static_cast<int64_t>(run.arrival_millis.size()))
        .AddCounter("epochs_published", run.epochs_published);
    report.AddStage("final-refresh", run.final_refresh_seconds);
    report.AddExtra("arrival_p50_ms", p50);
    report.AddExtra("arrival_p95_ms", p95);
    report.AddExtra("arrival_max_ms", max_ms);
    reports.push_back(std::move(report));
  }
  std::printf("%s", ingest_table.ToString().c_str());

  const double stall_reduction =
      max_by_mode[0] / std::max(max_by_mode[1], 1e-9);
  reports.back().AddExtra("arrival_max_stall_reduction", stall_reduction);
  std::printf(
      "\nMax arrival latency: %.3f ms stop-the-world vs %.3f ms non-blocking "
      "(%.1fx reduction).\n\n",
      max_by_mode[0], max_by_mode[1], stall_reduction);
  // The acceptance bar for the serving layer. Smoke corpora are too small
  // for a stable ratio (a refresh costs ~a single arrival), so the bar is
  // only enforced on the real workload.
  if (!smoke) {
    GL_CHECK(stall_reduction >= 5.0)
        << "non-blocking refresh must cut the max arrival stall by >= 5x, got "
        << stall_reduction << "x";
  }

  // --- Part 2: reader QPS + latency under concurrent ingest ---

  // Probes: a handful of future arrivals plus one replayed seed group (a
  // guaranteed link at every epoch).
  std::vector<GroupArrival> probes(
      arrivals.begin(),
      arrivals.begin() + static_cast<ptrdiff_t>(
                             std::min<size_t>(4, arrivals.size())));
  {
    GroupArrival replay;
    replay.label = "replay";
    for (const int32_t r : seed.groups[0].record_ids) {
      replay.record_texts.push_back(seed.records[static_cast<size_t>(r)].text);
    }
    probes.push_back(std::move(replay));
  }

  TextTable reader_table({"readers", "queries", "qps", "p50 (ms)", "p95 (ms)",
                          "p99 (ms)", "epochs seen"});
  for (const int32_t readers : reader_sweep) {
    ServiceConfig mode_config = config;
    mode_config.async_refresh = true;
    auto service_or = LinkageService::Create(seed, mode_config);
    GL_CHECK(service_or.ok()) << service_or.status().ToString();
    LinkageService& service = *service_or;

    std::vector<ReaderLog> logs(static_cast<size_t>(readers));
    std::atomic<bool> stop{false};
    ThreadPool pool(readers);
    for (int32_t reader = 0; reader < readers; ++reader) {
      ReaderLog* log = &logs[static_cast<size_t>(reader)];
      const LinkageService* svc = &service;
      const std::vector<GroupArrival>* probe_set = &probes;
      pool.Submit([log, svc, probe_set, &stop] {
        while (!stop.load(std::memory_order_acquire)) {
          for (const GroupArrival& probe : *probe_set) {
            WallTimer timer;
            const auto answer = svc->LinkQuery(probe);
            log->query_millis.push_back(timer.ElapsedMillis());
            log->links += answer.linked_to.size();
            if (log->first_epoch < 0) log->first_epoch = answer.epoch;
            log->last_epoch = answer.epoch;
            ++log->queries;
          }
        }
      });
    }

    // Writer: the full arrival stream races the readers, then the final
    // refresh publishes the complete epoch before the readers stop.
    WallTimer wall;
    for (const GroupArrival& arrival : arrivals) {
      (void)service.AddGroup(arrival.label, arrival.record_texts);
    }
    service.WaitForRefresh();
    service.Refresh();
    const double wall_seconds = wall.ElapsedSeconds();
    stop.store(true, std::memory_order_release);
    pool.Wait();

    GL_CHECK(service.linked_pairs() == batch->linked_pairs)
        << "serving diverged from the batch engine at " << readers << " readers";

    size_t total_queries = 0;
    size_t total_links = 0;
    int64_t min_epoch = service.published_epoch();
    int64_t max_epoch = 0;
    std::vector<double> query_millis;
    for (const ReaderLog& log : logs) {
      total_queries += log.queries;
      total_links += log.links;
      if (log.first_epoch >= 0) min_epoch = std::min(min_epoch, log.first_epoch);
      max_epoch = std::max(max_epoch, log.last_epoch);
      query_millis.insert(query_millis.end(), log.query_millis.begin(),
                          log.query_millis.end());
    }
    const int64_t epochs_seen = max_epoch - min_epoch + 1;
    GL_CHECK(total_queries > 0);
    // The sweep is only meaningful if the queries actually raced epoch
    // swaps underneath them.
    GL_CHECK(epochs_seen >= 2)
        << "readers saw a single epoch at " << readers
        << " readers; the stream never swapped";

    const double qps = static_cast<double>(total_queries) / wall_seconds;
    const double p50 = Percentile(query_millis, 0.5);
    const double p95 = Percentile(query_millis, 0.95);
    const double p99 = Percentile(query_millis, 0.99);
    reader_table.AddRow({std::to_string(readers), std::to_string(total_queries),
                         FormatDouble(qps, 0), FormatDouble(p50, 3),
                         FormatDouble(p95, 3), FormatDouble(p99, 3),
                         std::to_string(epochs_seen)});

    RunReport report;
    report.strategy = "serving-readers";
    report.candidate_method = "token-index";
    report.measure = "bm";
    report.threads = readers;
    report.records = accumulated.num_records();
    report.groups = full.num_groups();
    report.links = static_cast<int64_t>(batch->linked_pairs.size());
    report.AddStage("serve", wall_seconds)
        .AddCounter("queries", static_cast<int64_t>(total_queries))
        .AddCounter("query_links", static_cast<int64_t>(total_links))
        .AddCounter("epochs_seen", epochs_seen);
    report.AddExtra("qps", qps);
    report.AddExtra("query_p50_ms", p50);
    report.AddExtra("query_p95_ms", p95);
    report.AddExtra("query_p99_ms", p99);
    reports.push_back(std::move(report));
  }
  std::printf("%s", reader_table.ToString().c_str());
  std::printf(
      "\nAfter the final refresh the service's link set was identical to the "
      "batch engine's in every mode and at every reader count (checked).\n");

  // --- Part 3 (--chaos): self-healing under a seeded fault storm ---

  if (flags.GetBool("chaos")) {
    GL_CHECK(arrivals.size() >= 4) << "chaos needs at least 4 arrivals";
    const int64_t rounds_flag =
        smoke ? 4 : std::max<int64_t>(4, flags.GetInt64("chaos-rounds"));
    const size_t rounds = static_cast<size_t>(std::min<int64_t>(
        rounds_flag, static_cast<int64_t>(arrivals.size())));
    const uint64_t chaos_seed =
        static_cast<uint64_t>(flags.GetInt64("chaos-seed"));

    resilience::SupervisedConfig chaos_config;
    chaos_config.service = config;
    chaos_config.service.async_refresh = true;
    chaos_config.service.persist_path = "bench_e18_chaos.glsnap";
    chaos_config.persist_retry.max_attempts = 2;
    chaos_config.persist_retry.initial_backoff_ms = 0.1;
    chaos_config.persist_retry.jitter_seed = chaos_seed;
    chaos_config.storage_breaker.failure_threshold = 2;
    chaos_config.storage_breaker.open_cooldown_ms = 10.0;
    chaos_config.admission.min_feasible_deadline_ms = 0.5;
    chaos_config.watchdog_interval_ms = 2.0;
    chaos_config.stall_timeout_ms = 15.0;
    chaos_config.quarantine_after_failures = 2;
    chaos_config.give_up_after_failures = 50;
    chaos_config.refresh_rearm.initial_backoff_ms = 0.2;
    auto chaos_or = resilience::SupervisedService::Create(seed, chaos_config);
    GL_CHECK(chaos_or.ok()) << chaos_or.status().ToString();
    resilience::SupervisedService& chaos_service = *chaos_or;
    auto& injector = FaultInjector::Default();
    injector.DisarmAll();

    std::printf(
        "\nE18 --chaos: %zu-round seeded fault storm (seed %llu) over the "
        "supervised service.\n\n",
        rounds, static_cast<unsigned long long>(chaos_seed));

    // Readers hammer the admission gate for the whole storm; every other
    // probe carries a deadline below the feasibility floor and must be
    // shed with kUnavailable before touching the snapshot.
    struct ChaosReaderLog {
      size_t served = 0;
      size_t shed = 0;
      bool status_ok = true;
    };
    constexpr int32_t kChaosReaders = 2;
    std::vector<ChaosReaderLog> chaos_logs(kChaosReaders);
    std::atomic<bool> chaos_stop{false};
    ThreadPool chaos_pool(kChaosReaders);
    for (int32_t reader = 0; reader < kChaosReaders; ++reader) {
      ChaosReaderLog* log = &chaos_logs[static_cast<size_t>(reader)];
      const resilience::SupervisedService* svc = &chaos_service;
      const std::vector<GroupArrival>* probe_set = &probes;
      chaos_pool.Submit([log, svc, probe_set, &chaos_stop] {
        resilience::SupervisedService::QueryOptions tight;
        tight.deadline_ms = 0.25;  // Below the feasibility floor.
        bool use_tight = false;
        while (!chaos_stop.load(std::memory_order_acquire)) {
          for (const GroupArrival& probe : *probe_set) {
            const auto answer = use_tight ? svc->LinkQuery(probe, tight)
                                          : svc->LinkQuery(probe);
            use_tight = !use_tight;
            if (answer.ok()) {
              ++log->served;
            } else if (answer.status().code() == StatusCode::kUnavailable) {
              ++log->shed;
            } else {
              log->status_ok = false;
            }
          }
        }
      });
    }

    const char* kStormClasses[4] = {"fsync-storm", "refresh-failure",
                                    "poison-batch", "stall"};
    TextTable chaos_table({"round", "fault", "recovery (ms)"});
    std::vector<double> recovery_ms;
    std::vector<std::string> poison_labels;
    WallTimer storm_timer;
    for (size_t round = 0; round < rounds; ++round) {
      // The seeded schedule: a rotation through all four storm classes,
      // phase-shifted by the seed.
      const size_t storm = (round + chaos_seed) % 4;
      const GroupArrival& arrival = arrivals[round];
      WallTimer round_timer;
      switch (storm) {
        case 0:
          // Four fsync failures: defeats the 2-attempt retry twice (the
          // breaker trips open), fails the budget dry, then a probe
          // closes it again.
          injector.Arm(faults::kFailFsync, FaultSpec::FailNTimes(4));
          (void)chaos_service.AddGroup(arrival.label, arrival.record_texts);
          chaos_service.Refresh();
          break;
        case 1:
          injector.Arm(faults::kRefreshFailure, FaultSpec::FailNTimes(2));
          (void)chaos_service.AddGroup(arrival.label, arrival.record_texts);
          (void)chaos_service.RefreshAsync();
          break;
        case 2: {
          // Armed before the poison arrives: no epoch can publish while
          // the poison batch is live; the watchdog must quarantine it.
          injector.Arm(faults::kPoisonBatch, FaultSpec{});
          (void)chaos_service.AddGroup(arrival.label, arrival.record_texts);
          const std::string label = std::string(faults::kPoisonLabelMarker) +
                                    "round" + std::to_string(round);
          (void)chaos_service.AddGroup(
              label, {"poison payload " + std::to_string(round)});
          poison_labels.push_back(label);
          (void)chaos_service.RefreshAsync();
          break;
        }
        default: {
          FaultSpec stall;
          stall.delay_ms = 30.0;
          stall.max_fires = 1;
          injector.Arm(faults::kStallRefresh, stall);
          (void)chaos_service.AddGroup(arrival.label, arrival.record_texts);
          (void)chaos_service.RefreshAsync();
          break;
        }
      }
      // Recovery = back to kHealthy with nothing in flight, nothing
      // unpersisted, and every mutation covered by a published epoch.
      while (true) {
        const resilience::ServiceHealth health = chaos_service.Health();
        if (health.state == resilience::HealthState::kHealthy &&
            health.persist_lag_epochs == 0 && !health.refresh_in_flight &&
            health.refresh_lag_groups == 0) {
          break;
        }
        GL_CHECK(round_timer.ElapsedSeconds() < 60.0)
            << "storm round " << round << " (" << kStormClasses[storm]
            << ") never healed";
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (storm == 2) injector.Disarm(faults::kPoisonBatch);
      recovery_ms.push_back(round_timer.ElapsedMillis());
      chaos_table.AddRow({std::to_string(round), kStormClasses[storm],
                          FormatDouble(recovery_ms.back(), 2)});
    }
    const double storm_seconds = storm_timer.ElapsedSeconds();
    injector.DisarmAll();
    chaos_stop.store(true, std::memory_order_release);
    chaos_pool.Wait();

    // Self-check: quarantine exactness — the injected poison labels, in
    // order, and nothing else.
    GL_CHECK(chaos_service.quarantined_labels() == poison_labels)
        << "quarantine was not exact";

    // Self-check: the breaker transition log chains from closed back to
    // closed through legal transitions only.
    size_t breaker_trips = 0;
    resilience::BreakerState at = resilience::BreakerState::kClosed;
    for (const auto& [from, to] : chaos_service.breaker_transitions()) {
      GL_CHECK(from == at) << "breaker transition log does not chain";
      GL_CHECK(resilience::CircuitBreaker::IsLegalTransition(from, to))
          << resilience::BreakerStateName(from) << " -> "
          << resilience::BreakerStateName(to);
      if (to == resilience::BreakerState::kOpen &&
          from == resilience::BreakerState::kClosed) {
        ++breaker_trips;
      }
      at = to;
    }
    GL_CHECK(at == resilience::BreakerState::kClosed)
        << "breaker did not end closed";

    // Self-check: the surviving link set is batch-equivalent. The
    // quarantined groups are tombstones, so compact the alive indexes
    // and compare against a batch run over the corpus minus the poison.
    const auto chaos_snapshot = chaos_service.inner().snapshot();
    std::vector<int32_t> group_map(
        static_cast<size_t>(chaos_snapshot->num_groups()), -1);
    int32_t next_index = 0;
    for (int32_t g = 0; g < chaos_snapshot->num_groups(); ++g) {
      if (chaos_snapshot->IsAlive(g)) {
        group_map[static_cast<size_t>(g)] = next_index++;
      }
    }
    std::vector<std::pair<int32_t, int32_t>> mapped;
    for (const auto& [a, b] : chaos_snapshot->linked_pairs()) {
      GL_CHECK(group_map[static_cast<size_t>(a)] >= 0);
      GL_CHECK(group_map[static_cast<size_t>(b)] >= 0);
      mapped.push_back({group_map[static_cast<size_t>(a)],
                        group_map[static_cast<size_t>(b)]});
    }
    const Dataset chaos_corpus = Accumulate(
        seed, std::vector<GroupArrival>(
                  arrivals.begin(),
                  arrivals.begin() + static_cast<ptrdiff_t>(rounds)));
    const auto chaos_batch =
        RunGroupLinkage(chaos_corpus, chaos_snapshot->engine_config());
    GL_CHECK(chaos_batch.ok());
    GL_CHECK(mapped == chaos_batch->linked_pairs)
        << "chaos survivor link set diverged from the batch engine";

    size_t chaos_served = 0;
    size_t chaos_shed = 0;
    for (const ChaosReaderLog& log : chaos_logs) {
      GL_CHECK(log.status_ok) << "a reader saw a non-shed failure";
      chaos_served += log.served;
      chaos_shed += log.shed;
    }
    GL_CHECK(chaos_served > 0);
    GL_CHECK(chaos_shed > 0) << "tight-deadline probes were never shed";
    const double shed_rate = static_cast<double>(chaos_shed) /
                             static_cast<double>(chaos_served + chaos_shed);
    const resilience::ServiceHealth final_health = chaos_service.Health();
    GL_CHECK(final_health.state == resilience::HealthState::kHealthy);

    std::printf("%s", chaos_table.ToString().c_str());
    std::printf(
        "\nRecovered from every storm round: p50 %.2f ms, p95 %.2f ms, max "
        "%.2f ms. %zu breaker trip(s), %lld quarantined batch(es), %lld "
        "persist retries; shed %.1f%% of gated queries (%zu of %zu).\n",
        Percentile(recovery_ms, 0.5), Percentile(recovery_ms, 0.95),
        Percentile(recovery_ms, 1.0), breaker_trips,
        static_cast<long long>(final_health.quarantined_batches),
        static_cast<long long>(final_health.persist_retries),
        100.0 * shed_rate, chaos_shed, chaos_served + chaos_shed);

    RunReport report;
    report.strategy = "serving-chaos";
    report.candidate_method = "token-index";
    report.measure = "bm";
    report.threads = kChaosReaders;
    report.records = chaos_corpus.num_records();
    report.groups = chaos_corpus.num_groups();
    report.links = static_cast<int64_t>(chaos_batch->linked_pairs.size());
    report.AddStage("storm", storm_seconds)
        .AddCounter("rounds", static_cast<int64_t>(rounds))
        .AddCounter("breaker_trips", static_cast<int64_t>(breaker_trips))
        .AddCounter("quarantined_batches", final_health.quarantined_batches)
        .AddCounter("persist_retries", final_health.persist_retries)
        .AddCounter("refresh_rearms", final_health.refresh_rearms)
        .AddCounter("refresh_stalls", final_health.refresh_stalls)
        .AddCounter("served_queries", static_cast<int64_t>(chaos_served))
        .AddCounter("shed_queries", static_cast<int64_t>(chaos_shed));
    report.AddExtra("recovery_p50_ms", Percentile(recovery_ms, 0.5));
    report.AddExtra("recovery_p95_ms", Percentile(recovery_ms, 0.95));
    report.AddExtra("recovery_max_ms", Percentile(recovery_ms, 1.0));
    report.AddExtra("shed_rate", shed_rate);
    reports.push_back(std::move(report));

    GL_CHECK(storage::RemoveFile(chaos_config.service.persist_path).ok());
  }

  return bench::ExitCode(bench::WriteMetricsJson(flags.GetString("metrics-json"),
                                                 "e18_serving", reports));
}
