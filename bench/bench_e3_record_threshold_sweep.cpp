// E3 — Sensitivity to the record-level edge threshold θ (paper: the
// record similarity threshold inside the BM measure).
//
// Sweeps θ at a fixed Θ and reports BM's quality plus the size of the
// similarity graphs it induces. Expected shape: a broad sweet spot —
// too-low θ admits noise edges (precision pressure, larger graphs),
// too-high θ starves the matching (recall collapse).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/group_measures.h"
#include "core/linkage_engine.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace grouplink;

  FlagParser flags;
  flags.AddInt64("entities", 100, "author entities");
  flags.AddDouble("noise", 0.25, "generator noise");
  flags.AddBool("smoke", false, "tiny CI workload (overrides size knobs)");
  flags.AddString("metrics-json", "BENCH_e3.json",
                  "unified metrics report output path ('' to skip)");
  GL_CHECK(flags.Parse(argc, argv).ok());
  const int32_t entities = flags.GetBool("smoke")
                               ? 15
                               : static_cast<int32_t>(flags.GetInt64("entities"));

  const Dataset dataset = GenerateBibliographic(
      bench::HardBibliographic(entities, flags.GetDouble("noise")));
  const auto truth = dataset.TruePairs();
  std::printf("E3: BM quality vs record threshold theta (Theta=%.2f)\n\n",
              bench::kGroupThreshold);

  // Average edge count over the true group pairs, as a graph-size proxy.
  auto probe_or = LinkageEngine::Create(&dataset, LinkageConfig{});
  GL_CHECK(probe_or.ok());
  LinkageEngine& probe = *probe_or;

  TextTable table({"theta", "precision", "recall", "F1", "avg edges/true pair"});
  std::vector<RunReport> reports;
  for (const double theta : {0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5, 0.6, 0.7}) {
    LinkageConfig config;
    config.theta = theta;
    config.group_threshold = bench::kGroupThreshold;
    const auto result = RunGroupLinkage(dataset, config);
    GL_CHECK(result.ok());
    reports.push_back(result->report());
    const PairMetrics metrics = EvaluatePairs(result->linked_pairs, truth);

    size_t edges = 0;
    for (const auto& [g1, g2] : truth) {
      edges += BuildSimilarityGraph(dataset, g1, g2,
                                    [&](int32_t a, int32_t b) {
                                      return probe.DefaultRecordSimilarity(a, b);
                                    },
                                    theta)
                   .edges()
                   .size();
    }
    const double avg_edges =
        truth.empty() ? 0.0 : static_cast<double>(edges) / truth.size();
    table.AddRow({FormatDouble(theta, 2), FormatDouble(metrics.precision, 3),
                  FormatDouble(metrics.recall, 3), FormatDouble(metrics.f1, 3),
                  FormatDouble(avg_edges, 1)});
  }
  std::printf("%s", table.ToString().c_str());
  return bench::ExitCode(bench::WriteMetricsJson(
      flags.GetString("metrics-json"), "e3_record_threshold_sweep", reports));
}
