#ifndef GROUPLINK_BENCH_BENCH_UTIL_H_
#define GROUPLINK_BENCH_BENCH_UTIL_H_

// Shared configuration for the experiment harnesses, so every experiment
// runs against the same "hard" workload unless it sweeps that knob itself.

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "core/run_report.h"
#include "data/bibliographic_generator.h"
#include "data/household_generator.h"

namespace grouplink {
namespace bench {

/// The standard bibliographic workload of the evaluation: confusable
/// topics (shared vocabulary across entities) and moderate dirtiness.
inline BibliographicConfig HardBibliographic(int32_t entities = 200,
                                             double noise = 0.25,
                                             uint64_t seed = 42) {
  BibliographicConfig config;
  config.num_entities = entities;
  config.noise = noise;
  config.num_topics = 6;
  config.offtopic_word_prob = 0.5;
  config.seed = seed;
  return config;
}

/// The standard census workload.
inline HouseholdConfig StandardHouseholds(int32_t households = 400,
                                          double noise = 0.3, uint64_t seed = 7) {
  HouseholdConfig config;
  config.num_households = households;
  config.noise = noise;
  config.seed = seed;
  return config;
}

/// The record/group thresholds calibrated for the TF-IDF record
/// similarity on the hard bibliographic workload.
constexpr double kTheta = 0.35;
constexpr double kGroupThreshold = 0.2;

/// Writes the unified experiment report ("grouplink.metrics.v1": run
/// reports plus a metrics-registry snapshot) to `path`. Every bench's
/// --metrics-json flag lands here, so all BENCH_*.json files share one
/// schema (validated in CI with jq).
inline void WriteMetricsJson(const std::string& path, std::string_view experiment,
                             const std::vector<RunReport>& runs) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "W: cannot open %s for writing, skipping JSON\n",
                 path.c_str());
    return;
  }
  const std::string json = ExperimentReportJson(experiment, runs);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nMetrics report written to %s (%zu runs).\n", path.c_str(),
              runs.size());
}

}  // namespace bench
}  // namespace grouplink

#endif  // GROUPLINK_BENCH_BENCH_UTIL_H_
