#ifndef GROUPLINK_BENCH_BENCH_UTIL_H_
#define GROUPLINK_BENCH_BENCH_UTIL_H_

// Shared configuration for the experiment harnesses, so every experiment
// runs against the same "hard" workload unless it sweeps that knob itself.

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault_injection.h"
#include "common/status.h"
#include "common/string_util.h"
#include "core/run_report.h"
#include "data/bibliographic_generator.h"
#include "data/household_generator.h"

namespace grouplink {
namespace bench {

/// The standard bibliographic workload of the evaluation: confusable
/// topics (shared vocabulary across entities) and moderate dirtiness.
inline BibliographicConfig HardBibliographic(int32_t entities = 200,
                                             double noise = 0.25,
                                             uint64_t seed = 42) {
  BibliographicConfig config;
  config.num_entities = entities;
  config.noise = noise;
  config.num_topics = 6;
  config.offtopic_word_prob = 0.5;
  config.seed = seed;
  return config;
}

/// The standard census workload.
inline HouseholdConfig StandardHouseholds(int32_t households = 400,
                                          double noise = 0.3, uint64_t seed = 7) {
  HouseholdConfig config;
  config.num_households = households;
  config.noise = noise;
  config.seed = seed;
  return config;
}

/// The record/group thresholds calibrated for the TF-IDF record
/// similarity on the hard bibliographic workload.
constexpr double kTheta = 0.35;
constexpr double kGroupThreshold = 0.2;

/// Writes the unified experiment report ("grouplink.metrics.v1": run
/// reports plus a metrics-registry snapshot) to `path`. Every bench's
/// --metrics-json flag lands here, so all BENCH_*.json files share one
/// schema (validated in CI with jq). An unwritable path is an error the
/// bench must surface as a non-zero exit — CI reads these files, so
/// "warn and carry on" would let a broken run pass vacuously.
inline Status WriteMetricsJson(const std::string& path, std::string_view experiment,
                               const std::vector<RunReport>& runs) {
  if (path.empty()) return Status::Ok();
  // gl-lint: allow(raw-file-io) bench reports are run artifacts, not durable state; a torn BENCH_*.json just fails the CI jq gate
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  const std::string json = ExperimentReportJson(experiment, runs);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  if (std::fclose(f) != 0 || written != json.size()) {
    return Status::IoError("short write to " + path);
  }
  std::printf("\nMetrics report written to %s (%zu runs).\n", path.c_str(),
              runs.size());
  return Status::Ok();
}

/// Maps a Status onto a process exit code, printing the failure. Use as
/// the bench's final statement: `return ExitCode(WriteMetricsJson(...));`.
inline int ExitCode(const Status& status) {
  if (status.ok()) return 0;
  std::fprintf(stderr, "FAILED: %s\n", status.ToString().c_str());
  return 1;
}

/// Arms fault-injection points from a --inject flag value: one or more
/// "point" / "point:key=value,key=value" specs separated by ';' (see
/// FaultInjector::ArmFromSpec for keys). Empty value is a no-op.
inline Status ArmFaults(const std::string& specs) {
  if (specs.empty()) return Status::Ok();
  for (const std::string& spec : Split(specs, ';')) {
    if (TrimWhitespace(spec).empty()) continue;
    GL_RETURN_IF_ERROR(
        FaultInjector::Default().ArmFromSpec(TrimWhitespace(spec)));
  }
  return Status::Ok();
}

}  // namespace bench
}  // namespace grouplink

#endif  // GROUPLINK_BENCH_BENCH_UTIL_H_
