// E15 (ablation, beyond the paper) — Robustness to upstream grouping
// errors: the paper assumes record linkage already produced the groups;
// this experiment measures how BM degrades when a fraction of records
// were filed under the wrong group.
//
// Expected shape: graceful degradation — misfiled records mostly stay
// unmatched in the bipartite matching and dilute the normalization, so
// scores shrink smoothly rather than flipping decisions; the single-best
// baseline, by contrast, *gains* false links from every misfiled record
// that lands near a foreign group.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/linkage_engine.h"
#include "data/perturb.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace grouplink;

  FlagParser flags;
  flags.AddInt64("entities", 100, "author entities");
  flags.AddBool("smoke", false, "tiny CI workload (overrides size knobs)");
  flags.AddString("metrics-json", "BENCH_e15.json",
                  "unified metrics report output path ('' to skip)");
  GL_CHECK(flags.Parse(argc, argv).ok());
  const int32_t entities = flags.GetBool("smoke")
                               ? 12
                               : static_cast<int32_t>(flags.GetInt64("entities"));

  std::printf("E15: F1 vs fraction of misgrouped records (theta=%.2f, Theta=%.2f)\n\n",
              bench::kTheta, bench::kGroupThreshold);

  TextTable table({"misgrouped", "records moved", "F1(BM)", "P(BM)", "R(BM)",
                   "F1(SingleBest)", "P(SingleBest)"});
  std::vector<RunReport> reports;
  for (const double fraction : {0.0, 0.05, 0.1, 0.2, 0.3, 0.4}) {
    Dataset dataset = GenerateBibliographic(bench::HardBibliographic(entities, 0.2));
    Rng rng(99);
    const size_t moved = PerturbGrouping(dataset, fraction, rng);
    const auto truth = dataset.TruePairs();

    double bm_f1 = 0.0;
    double bm_p = 0.0;
    double bm_r = 0.0;
    double single_f1 = 0.0;
    double single_p = 0.0;
    for (const GroupMeasureKind measure :
         {GroupMeasureKind::kBm, GroupMeasureKind::kSingleBest}) {
      LinkageConfig config;
      config.theta = bench::kTheta;
      config.group_threshold = bench::kGroupThreshold;
      config.measure = measure;
      const auto result = RunGroupLinkage(dataset, config);
      GL_CHECK(result.ok());
      reports.push_back(result->report());
      const PairMetrics metrics = EvaluatePairs(result->linked_pairs, truth);
      if (measure == GroupMeasureKind::kBm) {
        bm_f1 = metrics.f1;
        bm_p = metrics.precision;
        bm_r = metrics.recall;
      } else {
        single_f1 = metrics.f1;
        single_p = metrics.precision;
      }
    }
    table.AddRow({FormatDouble(fraction, 2), std::to_string(moved),
                  FormatDouble(bm_f1, 3), FormatDouble(bm_p, 3),
                  FormatDouble(bm_r, 3), FormatDouble(single_f1, 3),
                  FormatDouble(single_p, 3)});
  }
  std::printf("%s", table.ToString().c_str());
  return bench::ExitCode(bench::WriteMetricsJson(
      flags.GetString("metrics-json"), "e15_grouping_noise", reports));
}
