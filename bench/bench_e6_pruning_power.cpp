// E6 — Pruning power of the bounds (paper: how many group pairs the cheap
// UB / LB measures decide without running the exact matching).
//
// Sweeps the group threshold Θ and reports how the candidate pairs split
// between: empty similarity graph, UB-pruned, LB-accepted, and refined
// (Hungarian). Expected shape: the refine residue is a small sliver at
// every Θ; higher Θ shifts mass from LB-accepts to UB-prunes.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/linkage_engine.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace grouplink;

  FlagParser flags;
  flags.AddInt64("entities", 150, "author entities");
  flags.AddBool("smoke", false, "tiny CI workload (overrides size knobs)");
  flags.AddString("metrics-json", "BENCH_e6.json",
                  "unified metrics report output path ('' to skip)");
  GL_CHECK(flags.Parse(argc, argv).ok());
  const int32_t entities = flags.GetBool("smoke")
                               ? 15
                               : static_cast<int32_t>(flags.GetInt64("entities"));

  const Dataset dataset =
      GenerateBibliographic(bench::HardBibliographic(entities, 0.25));
  std::printf("E6: bound pruning power vs Theta (%d groups, theta=%.2f)\n\n",
              dataset.num_groups(), bench::kTheta);

  TextTable table({"Theta", "candidates", "empty %", "UB-pruned %", "LB-accepted %",
                   "refined %", "links"});
  std::vector<RunReport> reports;
  for (const double threshold : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8}) {
    LinkageConfig config;
    config.theta = bench::kTheta;
    config.group_threshold = threshold;
    const auto result = RunGroupLinkage(dataset, config);
    GL_CHECK(result.ok());
    reports.push_back(result->report());
    const RunReport& stats = result->report();
    const auto count = [&](const char* name) {
      return stats.StageCounter("score", name);
    };
    const double total = static_cast<double>(count("candidates"));
    const auto percent = [&](int64_t n) {
      return FormatDouble(total == 0 ? 0.0 : 100.0 * static_cast<double>(n) / total, 1);
    };
    table.AddRow({FormatDouble(threshold, 1), std::to_string(count("candidates")),
                  percent(count("empty_graphs")), percent(count("ub_pruned")),
                  percent(count("lb_accepted")), percent(count("refined")),
                  std::to_string(count("linked"))});
  }
  std::printf("%s", table.ToString().c_str());
  return bench::ExitCode(bench::WriteMetricsJson(
      flags.GetString("metrics-json"), "e6_pruning_power", reports));
}
