// E18 — Microbenchmarks of the batched SIMD kernels (text/simd_kernels.h):
// sorted-set intersection, scatter/gather TF-IDF cosine (scalar reference,
// forced-scalar dispatch, and the full dispatched tier), batched
// VectorStore::Scores vs per-pair Pair, and Myers bit-parallel edit
// distance vs the classic DP.
//
// Every timed comparison doubles as a differential check: the scalar and
// vectorized answers are asserted bit-identical before the numbers are
// reported, so a kernel that got fast by getting wrong fails the bench
// (and its --smoke ctest registration) outright.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/simd_dispatch.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/run_report.h"
#include "data/bibliographic_generator.h"
#include "eval/table.h"
#include "text/edit_distance.h"
#include "text/simd_kernels.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "text/vector_store.h"
#include "text/vocabulary.h"

namespace {

using namespace grouplink;

// One timed kernel variant: `ops` operations took `seconds`, producing
// `checksum` (asserted equal across variants of the same kernel).
struct KernelTiming {
  std::string kernel;   // e.g. "intersect"
  std::string variant;  // "scalar" / "dispatched" / ...
  size_t ops = 0;
  double seconds = 0.0;
  double checksum = 0.0;
};

RunReport TimingToReport(const KernelTiming& timing) {
  RunReport report;
  report.strategy = "micro-kernel";
  report.candidate_method = timing.kernel;
  report.measure = timing.variant;
  report.kernel = SimdLevelName(ActiveSimdLevel());
  report.threads = 1;
  StageStats& stage = report.AddStage("kernel", timing.seconds);
  stage.AddCounter("ops", static_cast<int64_t>(timing.ops));
  report.AddExtra("ops_per_second",
                  timing.seconds > 0.0 ? timing.ops / timing.seconds : 0.0);
  report.AddExtra("checksum", timing.checksum);
  return report;
}

// Realistic token/vector corpus: the E5 workload's own representation.
struct Corpus {
  std::vector<std::vector<uint32_t>> token_sets;  // Sorted-unique ids.
  std::vector<SparseVector> vectors;              // Unit TF-IDF vectors.
  std::vector<std::string> texts;
  size_t dimension = 0;
};

Corpus BuildCorpus(int32_t entities) {
  const Dataset dataset =
      GenerateBibliographic(bench::HardBibliographic(entities, 0.25));
  Corpus corpus;
  Vocabulary vocabulary;
  for (const Record& record : dataset.records) {
    vocabulary.AddDocument(ToTokenSet(Tokenize(record.text)));
    corpus.texts.push_back(record.text);
  }
  const TfIdfVectorizer vectorizer(&vocabulary);
  for (const Record& record : dataset.records) {
    corpus.vectors.push_back(vectorizer.Vectorize(Tokenize(record.text)));
    // A vector's ids are the record's sorted-unique token ids.
    const std::vector<int32_t>& ids = corpus.vectors.back().ids;
    corpus.token_sets.emplace_back(ids.begin(), ids.end());
  }
  corpus.dimension = vocabulary.size();
  return corpus;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt64("entities", 250, "author entities behind the corpus");
  flags.AddInt64("repeat", 20, "timed passes over the corpus");
  flags.AddString("metrics-json", "BENCH_micro.json",
                  "unified metrics report path ('' = skip)");
  flags.AddBool("smoke", false, "tiny CI workload (overrides size knobs)");
  GL_CHECK(flags.Parse(argc, argv).ok());
  const bool smoke = flags.GetBool("smoke");
  const int32_t entities =
      smoke ? 20 : static_cast<int32_t>(flags.GetInt64("entities"));
  const size_t repeat =
      smoke ? 2 : static_cast<size_t>(flags.GetInt64("repeat"));

  const Corpus corpus = BuildCorpus(entities);
  const size_t n = corpus.token_sets.size();
  std::printf(
      "E18: kernel microbenchmarks on %zu records, vocabulary %zu, "
      "cpu tier %s, %zu passes\n\n",
      n, corpus.dimension, SimdLevelName(DetectCpuSimdLevel()), repeat);

  std::vector<KernelTiming> timings;
  const size_t stride = 17;  // Co-prime probe/candidate pairing.

  // ---------------------------------------------- Sorted intersection.
  {
    auto run = [&](bool dispatched) {
      KernelTiming t{"intersect", dispatched ? "dispatched" : "scalar", 0, 0.0,
                     0.0};
      size_t total = 0;
      WallTimer timer;
      for (size_t pass = 0; pass < repeat; ++pass) {
        for (size_t i = 0; i < n; ++i) {
          const auto& a = corpus.token_sets[i];
          const auto& b = corpus.token_sets[(i * stride + pass) % n];
          total += dispatched
                       ? SortedIntersectCount(a.data(), a.size(), b.data(),
                                              b.size())
                       : SortedIntersectCountScalar(a.data(), a.size(),
                                                    b.data(), b.size());
          ++t.ops;
        }
      }
      t.seconds = timer.ElapsedSeconds();
      t.checksum = static_cast<double>(total);
      return t;
    };
    const KernelTiming scalar = run(false);
    const KernelTiming dispatched = run(true);
    GL_CHECK_EQ(scalar.checksum, dispatched.checksum)
        << "intersect kernel diverged from scalar reference";
    timings.push_back(scalar);
    timings.push_back(dispatched);
  }

  // ------------------------------------- Scatter-dot cosine (per pair).
  {
    std::vector<double> dense(corpus.dimension, 0.0);
    auto run = [&](bool dispatched) {
      KernelTiming t{"scatter_dot", dispatched ? "dispatched" : "scalar", 0,
                     0.0, 0.0};
      double total = 0.0;
      WallTimer timer;
      for (size_t pass = 0; pass < repeat; ++pass) {
        for (size_t i = 0; i < n; ++i) {
          const SparseVector& probe = corpus.vectors[i];
          const SparseVector& cand = corpus.vectors[(i * stride + pass) % n];
          for (size_t k = 0; k < probe.size(); ++k) {
            dense[static_cast<size_t>(probe.ids[k])] = probe.weights[k];
          }
          total += dispatched
                       ? ScatterDot(dense.data(), cand.ids.data(),
                                    cand.weights.data(), cand.size())
                       : ScatterDotScalar(dense.data(), cand.ids.data(),
                                          cand.weights.data(), cand.size());
          for (const int32_t id : probe.ids) {
            dense[static_cast<size_t>(id)] = 0.0;
          }
          ++t.ops;
        }
      }
      t.seconds = timer.ElapsedSeconds();
      t.checksum = total;
      return t;
    };
    const KernelTiming scalar = run(false);
    const KernelTiming dispatched = run(true);
    GL_CHECK_EQ(scalar.checksum, dispatched.checksum)
        << "scatter-dot kernel diverged from scalar reference";
    timings.push_back(scalar);
    timings.push_back(dispatched);
  }

  // ------------------------- Batched VectorStore::Scores vs per-pair.
  {
    const VectorStore store = VectorStore::Build(corpus.vectors, corpus.dimension);
    std::vector<int32_t> candidates;
    for (size_t i = 0; i < n; ++i) candidates.push_back(static_cast<int32_t>(i));
    std::vector<double> scores(n);

    KernelTiming per_pair{"batch_cosine", "per_pair", 0, 0.0, 0.0};
    {
      double total = 0.0;
      WallTimer timer;
      for (size_t pass = 0; pass < repeat; ++pass) {
        for (size_t probe = 0; probe < n; probe += stride) {
          for (size_t i = 0; i < n; ++i) {
            total += store.Pair(static_cast<int32_t>(probe), candidates[i]);
            ++per_pair.ops;
          }
        }
      }
      per_pair.seconds = timer.ElapsedSeconds();
      per_pair.checksum = total;
    }

    KernelTiming batched{"batch_cosine", "batched", 0, 0.0, 0.0};
    {
      double total = 0.0;
      VectorStore::Scratch scratch;
      WallTimer timer;
      for (size_t pass = 0; pass < repeat; ++pass) {
        for (size_t probe = 0; probe < n; probe += stride) {
          store.Scores(scratch, static_cast<int32_t>(probe), candidates.data(),
                       candidates.size(), scores.data());
          for (const double s : scores) total += s;
          batched.ops += n;
        }
      }
      batched.seconds = timer.ElapsedSeconds();
      batched.checksum = total;
    }
    GL_CHECK_EQ(per_pair.checksum, batched.checksum)
        << "batched Scores diverged from per-pair Pair";
    timings.push_back(per_pair);
    timings.push_back(batched);
  }

  // ---------------------------------------------------- Edit distance.
  {
    auto run = [&](bool myers) {
      KernelTiming t{"edit_distance", myers ? "myers" : "dp", 0, 0.0, 0.0};
      size_t total = 0;
      WallTimer timer;
      for (size_t pass = 0; pass < repeat; ++pass) {
        for (size_t i = 0; i < n; ++i) {
          const std::string& a = corpus.texts[i];
          const std::string& b = corpus.texts[(i * stride + pass) % n];
          if (!BitParallelEditDistanceApplies(a.size(), b.size())) continue;
          total += myers ? BitParallelEditDistance(a, b)
                         : LevenshteinDistance(a, b);
          ++t.ops;
        }
      }
      t.seconds = timer.ElapsedSeconds();
      t.checksum = static_cast<double>(total);
      return t;
    };
    // Force scalar so LevenshteinDistance runs the DP, not Myers.
    SetSimdLevelForTesting(SimdLevel::kScalar);
    const KernelTiming dp = run(false);
    ClearSimdLevelForTesting();
    const KernelTiming myers = run(true);
    GL_CHECK_EQ(dp.checksum, myers.checksum)
        << "Myers edit distance diverged from the DP";
    timings.push_back(dp);
    timings.push_back(myers);
  }

  // ------------------------------------------------------- Reporting.
  TextTable table({"kernel", "variant", "ops", "seconds", "Mops/s", "speedup"});
  std::vector<RunReport> reports;
  for (size_t i = 0; i < timings.size(); ++i) {
    const KernelTiming& t = timings[i];
    // Variant rows come in (reference, contender) pairs per kernel.
    const bool is_contender = i % 2 == 1;
    const double baseline_seconds = timings[i - (is_contender ? 1 : 0)].seconds;
    const double speedup =
        is_contender && t.seconds > 0.0 ? baseline_seconds / t.seconds : 1.0;
    table.AddRow({t.kernel, t.variant, std::to_string(t.ops),
                  FormatDouble(t.seconds, 4),
                  FormatDouble(t.seconds > 0.0 ? t.ops / t.seconds / 1e6 : 0.0, 2),
                  FormatDouble(speedup, 2) + "x"});
    RunReport report = TimingToReport(t);
    report.AddExtra("speedup_vs_reference", speedup);
    reports.push_back(std::move(report));
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nAll dispatched kernels matched their scalar references bit for "
      "bit (checked).\n");

  return bench::ExitCode(bench::WriteMetricsJson(
      flags.GetString("metrics-json"), "micro_kernels", reports));
}
