// E9 — Tightness of the UB / LB bounds (paper: how close the cheap
// measures come to exact BM, which determines how often the refine step
// can be skipped).
//
// Samples candidate group pairs from the standard workload, computes
// UB, BM, LB per pair, and reports gap statistics plus the fraction of
// pairs each bound alone would decide at the standard Θ. Soundness
// (LB <= BM <= UB) is asserted on every pair.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/group_measures.h"
#include "core/linkage_engine.h"
#include "eval/table.h"
#include "index/candidates.h"

int main(int argc, char** argv) {
  using namespace grouplink;

  FlagParser flags;
  flags.AddInt64("entities", 100, "author entities");
  flags.AddInt64("max-pairs", 5000, "maximum candidate pairs to sample");
  flags.AddBool("smoke", false, "tiny CI workload (overrides size knobs)");
  GL_CHECK(flags.Parse(argc, argv).ok());
  const int32_t entities = flags.GetBool("smoke")
                               ? 15
                               : static_cast<int32_t>(flags.GetInt64("entities"));

  const Dataset dataset =
      GenerateBibliographic(bench::HardBibliographic(entities, 0.25));

  LinkageConfig config;
  config.theta = bench::kTheta;
  auto engine_or = LinkageEngine::Create(&dataset, config);
  if (!engine_or.ok()) {
    return bench::ExitCode(engine_or.status());
  }
  LinkageEngine& engine = *engine_or;
  const auto sim = [&](int32_t a, int32_t b) {
    return engine.DefaultRecordSimilarity(a, b);
  };

  // Candidate pairs with a non-empty similarity graph.
  std::vector<std::pair<int32_t, int32_t>> pairs;
  for (const auto& pair : AllGroupPairs(dataset.num_groups())) {
    if (pairs.size() >= static_cast<size_t>(flags.GetInt64("max-pairs"))) break;
    const BipartiteGraph graph =
        BuildSimilarityGraph(dataset, pair.first, pair.second, sim, config.theta);
    if (!graph.edges().empty()) pairs.push_back(pair);
  }
  std::printf("E9: bound tightness on %zu non-empty group pairs (theta=%.2f)\n\n",
              pairs.size(), bench::kTheta);

  std::vector<double> ub_gap;
  std::vector<double> lb_gap;
  size_t ub_decides = 0;
  size_t lb_decides = 0;
  size_t violations = 0;
  for (const auto& [g1, g2] : pairs) {
    const BipartiteGraph graph =
        BuildSimilarityGraph(dataset, g1, g2, sim, config.theta);
    const int32_t size1 = dataset.GroupSize(g1);
    const int32_t size2 = dataset.GroupSize(g2);
    const double bm = BmMeasure(graph, size1, size2).value;
    const double ub = UpperBoundMeasure(graph, size1, size2);
    const double lb = GreedyLowerBound(graph, size1, size2);
    if (lb > bm + 1e-9 || bm > ub + 1e-9) ++violations;
    ub_gap.push_back(ub - bm);
    lb_gap.push_back(bm - lb);
    if (ub < bench::kGroupThreshold) ++ub_decides;
    if (lb >= bench::kGroupThreshold) ++lb_decides;
  }
  GL_CHECK_EQ(violations, 0u) << "bound soundness violated";

  const auto stats = [](std::vector<double> values) {
    std::sort(values.begin(), values.end());
    double sum = 0.0;
    for (const double v : values) sum += v;
    const double mean = values.empty() ? 0.0 : sum / values.size();
    const double median = values.empty() ? 0.0 : values[values.size() / 2];
    const double p95 =
        values.empty() ? 0.0 : values[static_cast<size_t>(0.95 * (values.size() - 1))];
    const double max = values.empty() ? 0.0 : values.back();
    return std::vector<double>{mean, median, p95, max};
  };

  TextTable table({"gap", "mean", "median", "p95", "max"});
  const auto ub_stats = stats(ub_gap);
  const auto lb_stats = stats(lb_gap);
  table.AddRow({"UB - BM", FormatDouble(ub_stats[0], 4), FormatDouble(ub_stats[1], 4),
                FormatDouble(ub_stats[2], 4), FormatDouble(ub_stats[3], 4)});
  table.AddRow({"BM - LB", FormatDouble(lb_stats[0], 4), FormatDouble(lb_stats[1], 4),
                FormatDouble(lb_stats[2], 4), FormatDouble(lb_stats[3], 4)});
  std::printf("%s", table.ToString().c_str());

  const double total = static_cast<double>(pairs.size());
  std::printf(
      "\nAt Theta=%.2f: UB alone prunes %.1f%%, LB alone accepts %.1f%%, "
      "refine needed for %.1f%% of non-empty pairs.\n",
      bench::kGroupThreshold, 100.0 * ub_decides / total, 100.0 * lb_decides / total,
      100.0 * (total - ub_decides - lb_decides) / total);
  std::printf("Soundness LB <= BM <= UB held on all %zu pairs.\n", pairs.size());
  return 0;
}
