// E14 — The "inside a DBMS" path (paper: group linkage measures
// implemented with standard SQL joins/aggregates plus a similarity UDF).
//
// Times each relational stage — token self-join candidates, UDF
// verification, SQL UB aggregation — against the native edge-join
// pipeline on the same workload, and reports how many group pairs the
// SQL UB filter passes to a would-be refine step. Expected shape: the
// relational route is within a small constant factor of the native one
// (the plans are the same joins, interpreted row-at-a-time), and the UB
// filter keeps every pair the exact pipeline links.

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/linkage_engine.h"
#include "eval/table.h"
#include "relational/linkage_plans.h"

int main(int argc, char** argv) {
  using namespace grouplink;

  FlagParser flags;
  flags.AddInt64("entities", 60, "author entities");
  flags.AddInt64("min-overlap", 2, "token overlap for the SQL candidate join");
  flags.AddInt64("threads", static_cast<int64_t>(DefaultThreadCount()),
                 "worker threads for the native edge join");
  flags.AddString("metrics-json", "BENCH_e14.json",
                  "unified metrics report output path ('' to skip)");
  flags.AddBool("smoke", false, "tiny CI workload (overrides size knobs)");
  flags.AddDouble("deadline-ms", 0.0,
                  "resilience: deadline for the native run in ms (0 = off)");
  flags.AddInt64("max-candidates", 0,
                 "resilience: cap on buckets the native run scores (0 = off)");
  flags.AddInt64("max-matcher-cost", 0,
                 "resilience: per-pair |g1|*|g2| matcher budget (0 = off)");
  flags.AddString("inject", "",
                  "resilience: fault specs 'point[:k=v,...][;...]' armed "
                  "before the native run");
  GL_CHECK(flags.Parse(argc, argv).ok());
  const int32_t entities = flags.GetBool("smoke")
                               ? 15
                               : static_cast<int32_t>(flags.GetInt64("entities"));

  const Dataset dataset =
      GenerateBibliographic(bench::HardBibliographic(entities, 0.25));
  std::printf("E14: SQL pipeline vs native edge join (%d records, %d groups)\n\n",
              dataset.num_records(), dataset.num_groups());

  LinkageConfig config;
  config.theta = bench::kTheta;
  config.group_threshold = bench::kGroupThreshold;
  auto engine_or = LinkageEngine::Create(&dataset, config);
  GL_CHECK(engine_or.ok());
  LinkageEngine& engine = *engine_or;
  const auto sim = [&](int32_t a, int32_t b) {
    return engine.DefaultRecordSimilarity(a, b);
  };

  // The SQL route's stages feed the same unified RunReport schema as the
  // engine-produced reports, so BENCH_e14.json and BENCH_e5.json line up.
  RunReport sql_report;
  sql_report.strategy = "sql-pipeline";
  sql_report.candidate_method = "token-overlap-join";
  sql_report.measure = "upper_bound";
  sql_report.threads = 1;
  sql_report.records = dataset.num_records();
  sql_report.groups = dataset.num_groups();

  TextTable table({"stage", "output rows", "time (s)"});
  WallTimer timer;
  const Table tokens = MakeTokensTable(dataset);
  double seconds = timer.ElapsedSeconds();
  table.AddRow({"tokens table", std::to_string(tokens.num_rows()),
                FormatDouble(seconds, 3)});
  sql_report.AddStage("tokens", seconds)
      .AddCounter("rows", static_cast<int64_t>(tokens.num_rows()));

  timer.Reset();
  const Table candidates =
      SqlRecordPairCandidates(tokens, flags.GetInt64("min-overlap"));
  seconds = timer.ElapsedSeconds();
  table.AddRow({"candidate join (SQL)", std::to_string(candidates.num_rows()),
                FormatDouble(seconds, 3)});
  sql_report.AddStage("candidates", seconds)
      .AddCounter("rows", static_cast<int64_t>(candidates.num_rows()));

  timer.Reset();
  const Table edges = SqlVerifiedEdges(candidates, sim, config.theta);
  seconds = timer.ElapsedSeconds();
  table.AddRow({"UDF verification (SQL)", std::to_string(edges.num_rows()),
                FormatDouble(seconds, 3)});
  sql_report.AddStage("verify", seconds)
      .AddCounter("rows", static_cast<int64_t>(edges.num_rows()));

  timer.Reset();
  const Table sizes = MakeGroupSizesTable(dataset);
  const Table scores = SqlUpperBoundScores(edges, sizes);
  seconds = timer.ElapsedSeconds();
  table.AddRow({"UB aggregation (SQL)", std::to_string(scores.num_rows()),
                FormatDouble(seconds, 3)});
  sql_report.AddStage("score", seconds)
      .AddCounter("rows", static_cast<int64_t>(scores.num_rows()));

  size_t survivors = 0;
  std::set<std::pair<int32_t, int32_t>> survivor_set;
  for (const Row& row : scores.rows()) {
    if (row[2].AsDouble() >= config.group_threshold) {
      ++survivors;
      survivor_set.insert({static_cast<int32_t>(row[0].AsInt()),
                           static_cast<int32_t>(row[1].AsInt())});
    }
  }
  table.AddRow({"UB filter survivors", std::to_string(survivors), "-"});
  sql_report.links = static_cast<int64_t>(survivors);
  sql_report.MutableStage("score")->AddCounter("ub_survivors",
                                               static_cast<int64_t>(survivors));

  // Native reference.
  timer.Reset();
  LinkageConfig native_config = config;
  native_config.use_edge_join = true;
  native_config.join_jaccard = 0.2;
  native_config.num_threads =
      static_cast<int32_t>(std::max<int64_t>(1, flags.GetInt64("threads")));
  native_config.deadline_ms = flags.GetDouble("deadline-ms");
  native_config.max_candidate_pairs = flags.GetInt64("max-candidates");
  native_config.max_matcher_cost = flags.GetInt64("max-matcher-cost");
  auto native_or = LinkageEngine::Create(&dataset, native_config);
  GL_CHECK(native_or.ok());
  LinkageEngine& native = *native_or;
  GL_CHECK(bench::ArmFaults(flags.GetString("inject")).ok());
  const LinkageResult native_result = native.Run();
  FaultInjector::Default().DisarmAll();
  const double native_seconds = timer.ElapsedSeconds();
  table.AddRow({"native edge join (total)",
                std::to_string(native_result.linked_pairs.size()) + " links",
                FormatDouble(native_seconds, 3)});
  std::printf("%s", table.ToString().c_str());

  RunReport native_report = native_result.report();
  native_report.AddExtra("wall_seconds", native_seconds);

  size_t kept = 0;
  for (const auto& pair : native_result.linked_pairs) {
    if (survivor_set.count(pair)) ++kept;
  }
  std::printf(
      "\nSQL UB filter retains %zu / %zu of the native pipeline's links "
      "(UB >= BM guarantees 100%% when the candidate join is lossless; "
      "min-overlap=%lld trades a little recall for join size).\n",
      kept, native_result.linked_pairs.size(),
      static_cast<long long>(flags.GetInt64("min-overlap")));

  if (native_report.degraded) {
    std::printf("Native run degraded (stop_reason=%s): its links are a valid "
                "subset of the unconstrained run's.\n",
                native_report.stop_reason.empty()
                    ? "-"
                    : native_report.stop_reason.c_str());
  }

  sql_report.AddExtra("native_links_retained", static_cast<double>(kept));
  return bench::ExitCode(
      bench::WriteMetricsJson(flags.GetString("metrics-json"), "e14_sql_pipeline",
                              {std::move(sql_report), std::move(native_report)}));
}
