// E2 — F1 vs group-level threshold Θ, one series per measure (paper:
// accuracy as the group linkage threshold varies).
//
// Uses the score-once / threshold-many pattern: each measure scores every
// candidate pair exactly once (the expensive matching work), then the
// whole Θ grid is evaluated from the scored set (eval/sweep.h) — the
// sweep is exact, not an approximation (verified in eval_sweep_test).
//
// Expected shape: BM holds a wide high-F1 plateau over Θ; binary Jaccard
// is uniformly poor on dirty data; the single-best baseline never becomes
// precise (co-authored records put a floor under its false positives).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/linkage_engine.h"
#include "eval/sweep.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace grouplink;

  FlagParser flags;
  flags.AddInt64("entities", 100, "author entities");
  flags.AddDouble("noise", 0.25, "generator noise");
  flags.AddBool("smoke", false, "tiny CI workload (overrides size knobs)");
  GL_CHECK(flags.Parse(argc, argv).ok());
  const int32_t entities = flags.GetBool("smoke")
                               ? 15
                               : static_cast<int32_t>(flags.GetInt64("entities"));

  const Dataset dataset = GenerateBibliographic(
      bench::HardBibliographic(entities, flags.GetDouble("noise")));
  const auto truth = dataset.TruePairs();
  std::printf("E2: F1 vs group threshold Theta (theta=%.2f, %d groups)\n\n",
              bench::kTheta, dataset.num_groups());

  LinkageConfig config;
  config.theta = bench::kTheta;
  auto engine_or = LinkageEngine::Create(&dataset, config);
  if (!engine_or.ok()) {
    return bench::ExitCode(engine_or.status());
  }
  LinkageEngine& engine = *engine_or;

  const GroupMeasureKind measures[] = {
      GroupMeasureKind::kBm, GroupMeasureKind::kGreedy,
      GroupMeasureKind::kBinaryJaccard, GroupMeasureKind::kSingleBest};
  std::vector<double> thresholds;
  for (double t = 0.05; t <= 0.85; t += 0.05) thresholds.push_back(t);

  // One scoring pass per measure, then the whole grid per measure.
  std::vector<std::vector<ScoredPair>> scored;
  std::vector<std::vector<SweepPoint>> series;
  for (const GroupMeasureKind measure : measures) {
    scored.push_back(engine.ScoreCandidates(measure));
    series.push_back(ThresholdSweep(scored.back(), truth, thresholds));
  }

  TextTable table({"Theta", "F1(BM)", "F1(Greedy)", "F1(Jaccard)", "F1(SingleBest)"});
  for (size_t t = 0; t < thresholds.size(); ++t) {
    std::vector<std::string> row = {FormatDouble(thresholds[t], 2)};
    for (const auto& points : series) {
      row.push_back(FormatDouble(points[t].metrics.f1, 3));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());

  std::printf("\n");
  for (size_t m = 0; m < 4; ++m) {
    std::printf("%s best F1 at Theta=%.2f\n", GroupMeasureKindName(measures[m]),
                BestF1Threshold(scored[m], truth, thresholds));
  }
  return 0;
}
