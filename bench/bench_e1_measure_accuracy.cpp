// E1 — Measure accuracy table (paper: the headline comparison of the BM
// group linkage measure against Jaccard and record-level baselines).
//
// For each group measure, runs end-to-end linkage on the hard
// bibliographic workload and reports precision / recall / F1 against the
// generator's ground truth, plus link counts and wall time.
//
// Expected shape (paper): BM attains the best F1; binary Jaccard loses
// recall because dirty record copies no longer count as equal; the
// single-best-record baseline over-links (low precision); greedy tracks
// BM closely at lower cost; UB-as-a-measure over-links mildly.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/linkage_engine.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace grouplink;

  FlagParser flags;
  flags.AddInt64("entities", 200, "author entities");
  flags.AddDouble("noise", 0.25, "generator noise");
  flags.AddInt64("seed", 42, "generator seed");
  flags.AddString("metrics-json", "",
                  "unified metrics report output path ('' to skip)");
  flags.AddBool("smoke", false, "tiny CI workload (overrides size knobs)");
  GL_CHECK(flags.Parse(argc, argv).ok());
  const int32_t entities = flags.GetBool("smoke")
                               ? 15
                               : static_cast<int32_t>(flags.GetInt64("entities"));

  const Dataset dataset = GenerateBibliographic(bench::HardBibliographic(
      entities, flags.GetDouble("noise"),
      static_cast<uint64_t>(flags.GetInt64("seed"))));
  const auto truth = dataset.TruePairs();
  std::printf(
      "E1: measure accuracy — %d records, %d groups, %zu true pairs "
      "(theta=%.2f, Theta=%.2f)\n\n",
      dataset.num_records(), dataset.num_groups(), truth.size(), bench::kTheta,
      bench::kGroupThreshold);

  TextTable table(
      {"measure", "precision", "recall", "F1", "links", "time (s)"});
  std::vector<RunReport> reports;
  for (const GroupMeasureKind measure :
       {GroupMeasureKind::kBm, GroupMeasureKind::kBmStar, GroupMeasureKind::kGreedy,
        GroupMeasureKind::kUpperBound, GroupMeasureKind::kBinaryJaccard,
        GroupMeasureKind::kSingleBest}) {
    LinkageConfig config;
    config.theta = bench::kTheta;
    config.group_threshold = bench::kGroupThreshold;
    config.measure = measure;
    WallTimer timer;
    const auto result = RunGroupLinkage(dataset, config);
    GL_CHECK(result.ok()) << result.status().ToString();
    const double seconds = timer.ElapsedSeconds();
    const PairMetrics metrics = EvaluatePairs(result->linked_pairs, truth);
    table.AddRow({GroupMeasureKindName(measure), FormatDouble(metrics.precision, 3),
                  FormatDouble(metrics.recall, 3), FormatDouble(metrics.f1, 3),
                  std::to_string(result->linked_pairs.size()),
                  FormatDouble(seconds, 3)});
    RunReport report = result->report();
    report.AddExtra("wall_seconds", seconds);
    report.AddExtra("precision", metrics.precision);
    report.AddExtra("recall", metrics.recall);
    report.AddExtra("f1", metrics.f1);
    reports.push_back(std::move(report));
  }
  std::printf("%s", table.ToString().c_str());

  return bench::ExitCode(bench::WriteMetricsJson(
      flags.GetString("metrics-json"), "e1_measure_accuracy", reports));
}
