#include "data/perturb.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "data/bibliographic_generator.h"
#include "text/edit_distance.h"

namespace grouplink {
namespace {

TEST(TypoTest, RandomTypoIsSingleEdit) {
  Rng rng(1);
  const std::string original = "group linkage";
  for (int trial = 0; trial < 200; ++trial) {
    const std::string mutated = ApplyRandomTypo(original, rng);
    EXPECT_LE(DamerauLevenshteinDistance(original, mutated), 1u);
  }
}

TEST(TypoTest, EmptyInputNoop) {
  Rng rng(2);
  EXPECT_EQ(ApplyRandomTypo("", rng), "");
}

TEST(TypoTest, ZeroRateIsIdentity) {
  Rng rng(3);
  EXPECT_EQ(InjectTypos("unchanged text", 0.0, rng), "unchanged text");
}

TEST(TypoTest, HighRateChangesText) {
  Rng rng(4);
  int changed = 0;
  for (int trial = 0; trial < 50; ++trial) {
    if (InjectTypos("some reasonably long input string", 0.2, rng) !=
        "some reasonably long input string") {
      ++changed;
    }
  }
  EXPECT_GT(changed, 45);
}

TEST(PerturbTextTest, NoOptionsIsIdentity) {
  Rng rng(5);
  const PerturbOptions options;  // All rates zero.
  EXPECT_EQ(PerturbText("alpha beta gamma", options, rng), "alpha beta gamma");
}

TEST(PerturbTextTest, KeepsAtLeastOneToken) {
  Rng rng(6);
  PerturbOptions options;
  options.token_drop_rate = 1.0;
  for (int trial = 0; trial < 20; ++trial) {
    const std::string out = PerturbText("a b c d", options, rng);
    EXPECT_FALSE(SplitWhitespace(out).empty());
  }
}

TEST(PerturbTextTest, DropReducesTokenCountOnAverage) {
  Rng rng(7);
  PerturbOptions options;
  options.token_drop_rate = 0.5;
  size_t total = 0;
  constexpr int kTrials = 200;
  for (int trial = 0; trial < kTrials; ++trial) {
    total += SplitWhitespace(PerturbText("a b c d e f g h", options, rng)).size();
  }
  const double mean = static_cast<double>(total) / kTrials;
  EXPECT_NEAR(mean, 4.0, 0.6);
}

TEST(PerturbTextTest, AbbreviationShortensTokens) {
  Rng rng(8);
  PerturbOptions options;
  options.abbreviate_rate = 1.0;
  EXPECT_EQ(PerturbText("jeffrey david ullman", options, rng), "j d u");
}

TEST(PerturbTextTest, SwapPreservesTokenMultiset) {
  Rng rng(9);
  PerturbOptions options;
  options.token_swap_rate = 1.0;
  for (int trial = 0; trial < 20; ++trial) {
    auto tokens = SplitWhitespace(PerturbText("one two three four", options, rng));
    std::sort(tokens.begin(), tokens.end());
    EXPECT_EQ(tokens, (std::vector<std::string>{"four", "one", "three", "two"}));
  }
}

TEST(AbbreviateTokenTest, FirstLetter) {
  EXPECT_EQ(AbbreviateToken("jeffrey"), "j");
  EXPECT_EQ(AbbreviateToken("a"), "a");
  EXPECT_EQ(AbbreviateToken(""), "");
}

TEST(PerturbGroupingTest, ZeroFractionIsNoop) {
  BibliographicConfig config;
  config.num_entities = 20;
  Dataset dataset = GenerateBibliographic(config);
  const auto before = dataset.RecordToGroup();
  Rng rng(1);
  EXPECT_EQ(PerturbGrouping(dataset, 0.0, rng), 0u);
  EXPECT_EQ(dataset.RecordToGroup(), before);
}

TEST(PerturbGroupingTest, MovesApproximatelyRequestedFraction) {
  BibliographicConfig config;
  config.num_entities = 40;
  Dataset dataset = GenerateBibliographic(config);
  const auto before = dataset.RecordToGroup();
  Rng rng(2);
  const size_t moved = PerturbGrouping(dataset, 0.2, rng);
  EXPECT_TRUE(dataset.Validate().ok());
  const auto after = dataset.RecordToGroup();
  size_t changed = 0;
  for (size_t r = 0; r < before.size(); ++r) {
    if (before[r] != after[r]) ++changed;
  }
  EXPECT_EQ(changed, moved);
  const double rate = static_cast<double>(moved) / static_cast<double>(before.size());
  EXPECT_NEAR(rate, 0.2, 0.05);
}

TEST(PerturbGroupingTest, GroupsStayNonEmpty) {
  BibliographicConfig config;
  config.num_entities = 20;
  Dataset dataset = GenerateBibliographic(config);
  Rng rng(3);
  PerturbGrouping(dataset, 0.9, rng);  // Extreme churn.
  for (int32_t g = 0; g < dataset.num_groups(); ++g) {
    EXPECT_GE(dataset.GroupSize(g), 1);
  }
  EXPECT_TRUE(dataset.Validate().ok());
}

TEST(PerturbGroupingTest, SingleGroupDatasetUntouched) {
  Dataset dataset;
  Record record;
  record.id = "r";
  record.text = "text";
  dataset.records = {record};
  Group group;
  group.id = "g";
  group.record_ids = {0};
  dataset.groups = {group};
  Rng rng(4);
  EXPECT_EQ(PerturbGrouping(dataset, 1.0, rng), 0u);
}

TEST(NameVariantTest, ProducesRelatedName) {
  Rng rng(10);
  const std::string full = "jeffrey d ullman";
  for (int trial = 0; trial < 50; ++trial) {
    const std::string variant = MakeNameVariant(full, rng);
    EXPECT_FALSE(variant.empty());
    // Every variant keeps the surname (possibly with one typo).
    bool surname_close = false;
    for (const std::string& token : SplitWhitespace(variant)) {
      if (DamerauLevenshteinDistance(token, "ullman") <= 1) surname_close = true;
    }
    EXPECT_TRUE(surname_close) << variant;
  }
}

TEST(NameVariantTest, CoversMultipleStyles) {
  Rng rng(11);
  std::set<std::string> variants;
  for (int trial = 0; trial < 100; ++trial) {
    variants.insert(MakeNameVariant("maria garcia", rng));
  }
  EXPECT_GE(variants.size(), 3u);  // Verbatim, initials, inversion, typos.
  EXPECT_TRUE(variants.count("maria garcia"));
  EXPECT_TRUE(variants.count("m garcia"));
  EXPECT_TRUE(variants.count("garcia maria"));
}

}  // namespace
}  // namespace grouplink
