// Concurrent serving soak (run under TSan in CI): N reader threads issue
// LinkQuery against a LinkageService while the writer streams arrivals
// and the policy runs background clone-replay-swap refreshes. Readers
// prove three properties on every single query:
//   1. No half-built epoch is ever observable (CheckConsistency, which
//      starts from the seal sentinel written as Capture's last step).
//   2. Epochs are monotone per reader (publication never goes backwards).
//   3. Answers are internally valid (links point at live groups of the
//      answering epoch).
// Post-hoc, every distinct epoch any reader retained is proved
// batch-equivalent: the workload is adds-only in arrival order, so the
// epoch's group count identifies the exact corpus prefix, and a batch
// LinkageEngine run over that prefix must produce the epoch's link set.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/service.h"
#include "core/linkage_engine.h"
#include "data/bibliographic_generator.h"

namespace grouplink {
namespace {

LinkageConfig EngineConfig() {
  LinkageConfig config;
  config.theta = 0.35;
  config.group_threshold = 0.2;
  return config;
}

Dataset MakeCorpus(int32_t entities, uint64_t seed) {
  BibliographicConfig config;
  config.num_entities = entities;
  config.noise = 0.25;
  config.num_topics = 5;
  config.offtopic_word_prob = 0.5;
  config.seed = seed;
  return GenerateBibliographic(config);
}

std::vector<std::string> GroupTexts(const Dataset& dataset, int32_t group) {
  std::vector<std::string> texts;
  for (const int32_t r : dataset.groups[static_cast<size_t>(group)].record_ids) {
    texts.push_back(dataset.records[static_cast<size_t>(r)].text);
  }
  return texts;
}

// Splits `full` into a seed prefix dataset and the remaining arrivals.
void Split(const Dataset& full, int32_t seed_groups, Dataset* seed,
           std::vector<GroupArrival>* arrivals) {
  for (int32_t g = 0; g < full.num_groups(); ++g) {
    if (g < seed_groups) {
      Group rebased;
      rebased.id = full.groups[static_cast<size_t>(g)].id;
      rebased.label = full.groups[static_cast<size_t>(g)].label;
      for (const int32_t r : full.groups[static_cast<size_t>(g)].record_ids) {
        rebased.record_ids.push_back(static_cast<int32_t>(seed->records.size()));
        seed->records.push_back(full.records[static_cast<size_t>(r)]);
      }
      seed->groups.push_back(std::move(rebased));
    } else {
      arrivals->push_back(
          {full.groups[static_cast<size_t>(g)].label, GroupTexts(full, g)});
    }
  }
  ASSERT_TRUE(seed->Validate().ok());
}

// The corpus a batch engine would see at an adds-only epoch covering the
// first `prefix` arrivals.
Dataset EpochCorpus(const Dataset& seed,
                    const std::vector<GroupArrival>& arrivals, size_t prefix) {
  Dataset corpus = seed;
  for (size_t i = 0; i < prefix; ++i) {
    Group group;
    group.id = "a" + std::to_string(i);
    group.label = arrivals[i].label;
    for (const std::string& text : arrivals[i].record_texts) {
      Record record;
      record.id = group.id + "r" + std::to_string(group.record_ids.size());
      record.text = text;
      group.record_ids.push_back(static_cast<int32_t>(corpus.records.size()));
      corpus.records.push_back(std::move(record));
    }
    corpus.groups.push_back(std::move(group));
  }
  return corpus;
}

struct ReaderLog {
  size_t queries = 0;
  bool consistency_ok = true;
  bool monotone_ok = true;
  bool answers_ok = true;
  // Every distinct epoch this reader observed, retained for the post-hoc
  // batch-equivalence proof (holding them also exercises reclamation:
  // retired epochs must stay alive while a reader references them).
  std::map<int64_t, std::shared_ptr<const CorpusSnapshot>> epochs;
};

TEST(ServiceSoakTest, ConcurrentReadersNeverObserveHalfBuiltEpochs) {
  const Dataset full = MakeCorpus(30, 4242);
  Dataset seed;
  std::vector<GroupArrival> arrivals;
  Split(full, full.num_groups() / 3, &seed, &arrivals);
  ASSERT_GE(arrivals.size(), 8u);

  ServiceConfig config;
  config.engine = EngineConfig();
  config.streaming.refresh_every_n_groups = 4;  // Frequent swaps.
  config.async_refresh = true;
  auto service_or = LinkageService::Create(seed, config);
  ASSERT_TRUE(service_or.ok());
  LinkageService& service = *service_or;

  // Probes the readers hammer with: future arrivals and one replayed
  // seed group (a guaranteed link at every epoch).
  std::vector<GroupArrival> probes(arrivals.begin(),
                                   arrivals.begin() + 4);
  probes.push_back({"replay", GroupTexts(seed, 0)});

  constexpr size_t kReaders = 3;
  std::vector<ReaderLog> logs(kReaders);
  std::atomic<bool> stop{false};
  ThreadPool readers(kReaders);
  for (size_t reader = 0; reader < kReaders; ++reader) {
    ReaderLog* log = &logs[reader];
    const LinkageService* svc = &service;
    const std::vector<GroupArrival>* probe_set = &probes;
    readers.Submit([log, svc, probe_set, &stop] {
      int64_t last_epoch = -1;
      while (!stop.load(std::memory_order_acquire)) {
        for (const GroupArrival& probe : *probe_set) {
          const auto snapshot = svc->snapshot();
          log->consistency_ok &= snapshot->CheckConsistency();
          log->monotone_ok &= snapshot->epoch() >= last_epoch;
          last_epoch = snapshot->epoch();
          log->epochs.emplace(snapshot->epoch(), snapshot);

          const auto answer = snapshot->LinkQuery(probe);
          log->answers_ok &= answer.epoch == snapshot->epoch();
          log->answers_ok &= !answer.degraded;
          for (const int32_t g : answer.linked_to) {
            log->answers_ok &= snapshot->IsAlive(g);
          }
          ++log->queries;
        }
      }
    });
  }

  // Writer: stream every arrival one at a time (each policy trip clones,
  // refreshes in the background, and swaps while the readers hammer the
  // published cell), then drain and stop the readers.
  for (const GroupArrival& arrival : arrivals) {
    (void)service.AddGroup(arrival.label, arrival.record_texts);
  }
  service.WaitForRefresh();
  service.Refresh();  // Final epoch covers every arrival.
  stop.store(true, std::memory_order_release);
  readers.Wait();

  // Merge the per-reader logs and assert the three reader properties.
  std::map<int64_t, std::shared_ptr<const CorpusSnapshot>> epochs;
  size_t total_queries = 0;
  for (size_t reader = 0; reader < kReaders; ++reader) {
    EXPECT_TRUE(logs[reader].consistency_ok) << "reader " << reader;
    EXPECT_TRUE(logs[reader].monotone_ok) << "reader " << reader;
    EXPECT_TRUE(logs[reader].answers_ok) << "reader " << reader;
    EXPECT_GT(logs[reader].queries, 0u) << "reader " << reader;
    total_queries += logs[reader].queries;
    epochs.insert(logs[reader].epochs.begin(), logs[reader].epochs.end());
  }
  // The readers must actually have raced refreshes: more than one epoch
  // observed (seed epoch + at least one policy swap).
  EXPECT_GE(epochs.size(), 2u) << total_queries << " queries";

  // Post-hoc: every observed epoch is batch-equivalent. Adds-only, so
  // the group count identifies the corpus prefix exactly.
  const auto final_snapshot = service.snapshot();
  epochs.emplace(final_snapshot->epoch(), final_snapshot);
  for (const auto& [epoch, snapshot] : epochs) {
    const size_t prefix =
        static_cast<size_t>(snapshot->num_groups() - seed.num_groups());
    ASSERT_LE(prefix, arrivals.size());
    const Dataset corpus = EpochCorpus(seed, arrivals, prefix);
    const auto batch = RunGroupLinkage(corpus, snapshot->engine_config());
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(snapshot->linked_pairs(), batch->linked_pairs)
        << "epoch " << epoch << " (prefix " << prefix << ")";
  }
  // The final epoch covers the whole stream.
  EXPECT_EQ(final_snapshot->num_groups(), full.num_groups());
}

TEST(ServiceSoakTest, QueriesDuringSyncRefreshStayConsistent) {
  // Same reader harness against the stop-the-world baseline: readers must
  // still never see a torn epoch (publication is atomic in both modes);
  // only the latency profile differs — which bench_e18_serving measures.
  const Dataset full = MakeCorpus(20, 777);
  Dataset seed;
  std::vector<GroupArrival> arrivals;
  Split(full, full.num_groups() / 2, &seed, &arrivals);

  ServiceConfig config;
  config.engine = EngineConfig();
  config.streaming.refresh_every_n_groups = 2;
  config.async_refresh = false;
  auto service_or = LinkageService::Create(seed, config);
  ASSERT_TRUE(service_or.ok());
  LinkageService& service = *service_or;

  const GroupArrival probe{"replay", GroupTexts(seed, 0)};
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  ThreadPool readers(2);
  for (int reader = 0; reader < 2; ++reader) {
    readers.Submit([&service, &probe, &stop, &ok] {
      int64_t last_epoch = -1;
      while (!stop.load(std::memory_order_acquire)) {
        const auto snapshot = service.snapshot();
        if (!snapshot->CheckConsistency()) ok.store(false);
        if (snapshot->epoch() < last_epoch) ok.store(false);
        last_epoch = snapshot->epoch();
        const auto answer = snapshot->LinkQuery(probe);
        if (answer.epoch != snapshot->epoch()) ok.store(false);
      }
    });
  }
  for (const GroupArrival& arrival : arrivals) {
    (void)service.AddGroup(arrival.label, arrival.record_texts);
  }
  stop.store(true, std::memory_order_release);
  readers.Wait();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(service.snapshot()->num_groups(), full.num_groups());
}

}  // namespace
}  // namespace grouplink
