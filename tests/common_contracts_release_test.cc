#include <gtest/gtest.h>

// NDEBUG is forced before including logging.h, so the contract macros in
// THIS translation unit are always the Release (compiled-out) flavor:
// conditions and stream operands must not be evaluated at all. This is
// the zero-cost half of the GL_DCHECK contract — the active half lives in
// common_contracts_test.cc.
#define NDEBUG 1
#include "common/logging.h"

namespace grouplink {
namespace {

TEST(DcheckCompiledOutTest, ConditionNotEvaluated) {
  int calls = 0;
  const auto bump = [&calls] {
    ++calls;
    return false;  // Would abort if the contract were active.
  };
  GL_DCHECK(bump());
  EXPECT_EQ(calls, 0);
}

TEST(DcheckCompiledOutTest, ComparisonOperandsNotEvaluated) {
  int evaluations = 0;
  const auto value = [&evaluations] {
    ++evaluations;
    return 5;
  };
  GL_DCHECK_LE(value(), 2);  // 5 <= 2 would abort if active.
  GL_DCHECK_EQ(value(), 0);
  EXPECT_EQ(evaluations, 0);
}

TEST(DcheckCompiledOutTest, StreamOperandsNotEvaluated) {
  int renders = 0;
  const auto describe = [&renders] {
    ++renders;
    return "expensive context";
  };
  GL_DCHECK(false) << describe();
  EXPECT_EQ(renders, 0);
}

}  // namespace
}  // namespace grouplink
