#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace grouplink {
namespace {

using Tokens = std::vector<std::string>;

TEST(TokenizeTest, DefaultSplitsOnPunctuationAndLowercases) {
  EXPECT_EQ(Tokenize("Dr. J. Ullman"), (Tokens{"dr", "j", "ullman"}));
  EXPECT_EQ(Tokenize("data-base systems!"), (Tokens{"data", "base", "systems"}));
}

TEST(TokenizeTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  \t\n ").empty());
  EXPECT_TRUE(Tokenize("...!!!").empty());
}

TEST(TokenizeTest, KeepsDigits) {
  EXPECT_EQ(Tokenize("vldb 1998"), (Tokens{"vldb", "1998"}));
}

TEST(TokenizeTest, NoLowercaseOption) {
  TokenizerOptions options;
  options.lowercase = false;
  EXPECT_EQ(Tokenize("Ab Cd", options), (Tokens{"Ab", "Cd"}));
}

TEST(TokenizeTest, WhitespaceOnlySplitting) {
  TokenizerOptions options;
  options.split_on_punctuation = false;
  EXPECT_EQ(Tokenize("a-b c", options), (Tokens{"a-b", "c"}));
}

TEST(TokenizeTest, MinTokenLengthFilters) {
  TokenizerOptions options;
  options.min_token_length = 2;
  EXPECT_EQ(Tokenize("a bc d ef", options), (Tokens{"bc", "ef"}));
}

TEST(QGramTest, BasicTrigrams) {
  EXPECT_EQ(CharacterQGrams("abcd", 3, /*lowercase=*/true),
            (Tokens{"abc", "bcd"}));
}

TEST(QGramTest, PaddingExtendsEnds) {
  EXPECT_EQ(CharacterQGrams("ab", 3, /*lowercase=*/true, '#'),
            (Tokens{"##a", "#ab", "ab#", "b##"}));
}

TEST(QGramTest, ShortInputWithoutPadding) {
  EXPECT_EQ(CharacterQGrams("ab", 3, /*lowercase=*/true), (Tokens{"ab"}));
}

TEST(QGramTest, EmptyInput) {
  EXPECT_TRUE(CharacterQGrams("", 3).empty());
  EXPECT_TRUE(CharacterQGrams("", 3, true, '#').empty());
}

TEST(QGramTest, LowercaseApplied) {
  EXPECT_EQ(CharacterQGrams("AbC", 2, /*lowercase=*/true), (Tokens{"ab", "bc"}));
  EXPECT_EQ(CharacterQGrams("AbC", 2, /*lowercase=*/false), (Tokens{"Ab", "bC"}));
}

TEST(QGramTest, ZeroQYieldsNothing) { EXPECT_TRUE(CharacterQGrams("abc", 0).empty()); }

TEST(ToTokenSetTest, SortsAndDeduplicates) {
  EXPECT_EQ(ToTokenSet({"b", "a", "b", "c", "a"}), (Tokens{"a", "b", "c"}));
  EXPECT_TRUE(ToTokenSet({}).empty());
}

// Property sweep: tokenization then joining never produces separators.
class TokenizeSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TokenizeSweepTest, TokensContainNoSeparators) {
  for (const std::string& token : Tokenize(GetParam())) {
    EXPECT_FALSE(token.empty());
    for (const char c : token) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c))) << token;
      EXPECT_FALSE(std::isupper(static_cast<unsigned char>(c))) << token;
    }
  }
}

TEST(TokenizeFuzzTest, ArbitraryBytesProduceWellFormedTokens) {
  // Any byte soup tokenizes without crashing, and every token obeys the
  // tokenizer contract (non-empty, alnum-only, lowercase).
  uint64_t state = 0x1234;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<char>((state >> 33) & 0xff);
  };
  for (int trial = 0; trial < 100; ++trial) {
    std::string garbage;
    for (int i = 0; i < 80; ++i) garbage += next();
    for (const std::string& token : Tokenize(garbage)) {
      ASSERT_FALSE(token.empty());
      for (const char c : token) {
        EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
        EXPECT_FALSE(std::isupper(static_cast<unsigned char>(c)));
      }
    }
    // Q-grams over garbage are also well-formed (correct width).
    for (const std::string& gram : CharacterQGrams(garbage, 3, true, '#')) {
      EXPECT_LE(gram.size(), 3u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, TokenizeSweepTest,
                         ::testing::Values("Hello, World!", "a--b..c", "UPPER lower",
                                           "123 mixed-45", "", "trailing...",
                                           "  spaces   everywhere  "));

}  // namespace
}  // namespace grouplink
