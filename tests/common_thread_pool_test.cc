#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/execution_context.h"
#include "common/fault_injection.h"

namespace grouplink {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) pool.Submit([&counter] { ++counter; });
  }  // Destructor joins after draining.
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrently) {
  // With 4 workers, 4 tasks that wait on a shared rendezvous can only
  // finish if they run simultaneously.
  ThreadPool pool(4);
  std::atomic<int> arrived{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&arrived] {
      ++arrived;
      while (arrived.load() < 4) std::this_thread::yield();
    });
  }
  pool.Wait();
  EXPECT_EQ(arrived.load(), 4);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, hits.size(), [&](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> hits(64, 0);
  ParallelFor(nullptr, hits.size(), [&](size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ParallelForTest, ZeroIterations) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, ResultsMatchSerialComputation) {
  ThreadPool pool(8);
  std::vector<double> parallel_out(5000);
  std::vector<double> serial_out(5000);
  const auto compute = [](size_t i) {
    double x = static_cast<double>(i);
    for (int k = 0; k < 10; ++k) x = x * 1.0001 + 1.0;
    return x;
  };
  ParallelFor(&pool, parallel_out.size(),
              [&](size_t i) { parallel_out[i] = compute(i); });
  for (size_t i = 0; i < serial_out.size(); ++i) serial_out[i] = compute(i);
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelForTest, UnevenChunkSizes) {
  // n chosen so the chunk math leaves a short tail chunk; every index must
  // still be hit exactly once with no out-of-range calls.
  ThreadPool pool(7);
  for (const size_t n : {size_t{1}, size_t{13}, size_t{29}, size_t{1001}}) {
    std::vector<std::atomic<int>> hits(n);
    std::atomic<bool> out_of_range{false};
    ParallelFor(&pool, n, [&](size_t i) {
      if (i >= n) {
        out_of_range = true;
        return;
      }
      ++hits[i];
    });
    EXPECT_FALSE(out_of_range.load()) << n;
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "n=" << n;
  }
}

TEST(ParallelForTest, FewerIterationsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(&pool, hits.size(), [&](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterationsWithNullPool) {
  ParallelFor(nullptr, 0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(DefaultThreadCountTest, AtLeastOne) {
  EXPECT_GE(DefaultThreadCount(), 1u);
}

TEST(ParallelForTest, ContextVariantWithoutStopsMatchesPlainVariant) {
  // A context with no deadline, token, or armed faults must be a no-op:
  // same coverage, and the executed count is exactly n.
  ThreadPool pool(4);
  ExecutionContext ctx;
  std::vector<std::atomic<int>> hits(513);
  const size_t executed =
      ParallelFor(&pool, hits.size(), [&](size_t i) { ++hits[i]; }, &ctx);
  EXPECT_EQ(executed, hits.size());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(ctx.degraded());
}

TEST(ParallelForTest, ExecutedCountMatchesActualWorkAfterCancel) {
  ThreadPool pool(4);
  CancellationToken token;
  ExecutionContext ctx;
  ctx.SetCancellation(token);
  std::atomic<size_t> performed{0};
  const size_t executed = ParallelFor(
      &pool, 100'000,
      [&](size_t i) {
        performed.fetch_add(1);
        if (i == 10) token.Cancel();
      },
      &ctx);
  EXPECT_EQ(executed, performed.load());
  EXPECT_LT(executed, 100'000u) << "cancellation must shed the remainder";
  EXPECT_TRUE(ctx.StopRequested());
}

TEST(ParallelForTest, SlowTaskFaultOnlyDelays) {
  ScopedFaultClear clear;
  ASSERT_TRUE(FaultInjector::Default()
                  .ArmFromSpec("thread_pool.slow_task:delay_ms=1,max_fires=2")
                  .ok());
  ThreadPool pool(2);
  ExecutionContext ctx;
  std::vector<std::atomic<int>> hits(64);
  const size_t executed =
      ParallelFor(&pool, hits.size(), [&](size_t i) { ++hits[i]; }, &ctx);
  EXPECT_EQ(executed, hits.size()) << "a slow task still completes its chunk";
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_GT(FaultInjector::Default().fires(faults::kSlowTask), 0);
}

TEST(ParallelForTest, ReusablePool) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    ParallelFor(&pool, 20, [&](size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 100);
}

}  // namespace
}  // namespace grouplink
