#include "data/record_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/fault_injection.h"
#include "common/status.h"
#include "data/bibliographic_generator.h"

namespace grouplink {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Dataset SampleDataset() {
  Dataset dataset;
  Record r0;
  r0.id = "r0";
  r0.text = "query, optimization";  // Comma forces CSV quoting.
  r0.fields = {"query optimization", "1999"};
  Record r1;
  r1.id = "r1";
  r1.text = "stream processing";
  Record r2;
  r2.id = "r2";
  r2.text = "entity \"resolution\"";
  dataset.records = {r0, r1, r2};
  Group g0;
  g0.id = "g0";
  g0.label = "author one";
  g0.record_ids = {0, 1};
  Group g1;
  g1.id = "g1";
  g1.label = "author two";
  g1.record_ids = {2};
  dataset.groups = {g0, g1};
  dataset.group_entities = {4, Dataset::kUnknownEntity};
  return dataset;
}

TEST(RecordIoTest, RoundTripPreservesEverything) {
  const std::string path = TempPath("roundtrip.csv");
  const Dataset original = SampleDataset();
  ASSERT_TRUE(SaveDatasetCsv(original, path).ok());
  const auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->num_records(), original.num_records());
  ASSERT_EQ(loaded->num_groups(), original.num_groups());
  for (int32_t g = 0; g < original.num_groups(); ++g) {
    EXPECT_EQ(loaded->groups[static_cast<size_t>(g)].id,
              original.groups[static_cast<size_t>(g)].id);
    EXPECT_EQ(loaded->groups[static_cast<size_t>(g)].label,
              original.groups[static_cast<size_t>(g)].label);
    EXPECT_EQ(loaded->GroupSize(g), original.GroupSize(g));
  }
  EXPECT_EQ(loaded->group_entities, original.group_entities);
  // Record content survives, including quoting-hostile characters.
  EXPECT_EQ(loaded->records[0].text, "query, optimization");
  EXPECT_EQ(loaded->records[0].fields,
            (std::vector<std::string>{"query optimization", "1999"}));
  EXPECT_EQ(loaded->records[2].text, "entity \"resolution\"");
  std::remove(path.c_str());
}

TEST(RecordIoTest, GeneratedDatasetRoundTrips) {
  BibliographicConfig config;
  config.num_entities = 20;
  const Dataset original = GenerateBibliographic(config);
  const std::string path = TempPath("generated.csv");
  ASSERT_TRUE(SaveDatasetCsv(original, path).ok());
  const auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_records(), original.num_records());
  for (int32_t r = 0; r < original.num_records(); ++r) {
    EXPECT_EQ(loaded->records[static_cast<size_t>(r)].text,
              original.records[static_cast<size_t>(r)].text);
  }
  EXPECT_EQ(loaded->group_entities, original.group_entities);
  std::remove(path.c_str());
}

TEST(RecordIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadDatasetCsv("/no/such/file.csv").ok());
}

TEST(RecordIoTest, TooFewColumnsFails) {
  const std::string path = TempPath("short_row.csv");
  {
    std::ofstream out(path);
    out << "record_id,group_id,group_label,entity_id,text\n";
    out << "r0,g0\n";
  }
  const auto loaded = LoadDatasetCsv(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(RecordIoTest, BadEntityIdFails) {
  const std::string path = TempPath("bad_entity.csv");
  {
    std::ofstream out(path);
    out << "record_id,group_id,group_label,entity_id,text\n";
    out << "r0,g0,label,notanumber,text\n";
  }
  EXPECT_FALSE(LoadDatasetCsv(path).ok());
  std::remove(path.c_str());
}

TEST(RecordIoTest, EmptyFileFails) {
  const std::string path = TempPath("empty.csv");
  { std::ofstream out(path); }
  EXPECT_FALSE(LoadDatasetCsv(path).ok());
  std::remove(path.c_str());
}

// Table-driven malformed corpus: every entry is a complete CSV document
// that must load as ParseError with a message that names the offense. The
// header line is row 0, so the first data row is "row 1" in messages.
struct MalformedCase {
  const char* name;
  std::string body;  // Appended after the standard header.
  const char* message_fragment;
};

class RecordIoMalformedTest : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(RecordIoMalformedTest, LoadReportsParseError) {
  const MalformedCase& c = GetParam();
  const std::string path = TempPath(std::string("malformed_") + c.name + ".csv");
  {
    std::ofstream out(path, std::ios::binary);
    out << "record_id,group_id,group_label,entity_id,text\n";
    out.write(c.body.data(), static_cast<std::streamsize>(c.body.size()));
  }
  const auto loaded = LoadDatasetCsv(path);
  ASSERT_FALSE(loaded.ok()) << c.name;
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError) << c.name;
  EXPECT_NE(loaded.status().message().find(c.message_fragment),
            std::string::npos)
      << c.name << ": got '" << loaded.status().message() << "'";
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RecordIoMalformedTest,
    ::testing::Values(
        MalformedCase{"truncated_row", "r0,g0\n", "has 2 columns, expected >= 5"},
        MalformedCase{"truncated_after_good_row",
                      "r0,g0,label,,fine text\nr1,g0,label\n",
                      "row 2 has 3 columns"},
        MalformedCase{"bad_utf8_label", "r0,g0,lab\xFF" "el,,text\n",
                      "column 2 contains invalid UTF-8"},
        MalformedCase{"bad_utf8_text", "r0,g0,label,,te\xC3xt\n",
                      "column 4 contains invalid UTF-8"},
        MalformedCase{"overlong_utf8_text",
                      "r0,g0,label,,bad \xC0\xAF encoding\n",
                      "column 4 contains invalid UTF-8"},
        MalformedCase{"bad_entity_id", "r0,g0,label,notanumber,text\n",
                      "bad entity_id 'notanumber'"},
        MalformedCase{"embedded_nul",
                      std::string("r0,g0,la") + '\0' + "bel,,text\n",
                      "embedded NUL byte"},
        MalformedCase{"oversized_field",
                      "r0,g0,label,," + std::string((size_t{1} << 20) + 2, 'a') +
                          "\n",
                      "exceeds 1048576 bytes"}),
    [](const ::testing::TestParamInfo<MalformedCase>& param_info) {
      return param_info.param.name;
    });

TEST(RecordIoTest, CorruptRecordFaultFiresDeterministically) {
  // The record_io.corrupt_record point turns a healthy load into the
  // "row N is corrupt" failure path — exercised by the CI fault drills.
  const std::string path = TempPath("fault_corpus.csv");
  ASSERT_TRUE(SaveDatasetCsv(SampleDataset(), path).ok());

  ScopedFaultClear clear;
  ASSERT_TRUE(
      FaultInjector::Default().ArmFromSpec("record_io.corrupt_record:after=1").ok());
  const auto loaded = LoadDatasetCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  // after=1 lets row 1 through and corrupts the second data row.
  EXPECT_EQ(loaded.status().message(), "row 2 is corrupt (injected fault)");

  FaultInjector::Default().DisarmAll();
  EXPECT_TRUE(LoadDatasetCsv(path).ok()) << "disarmed loads are clean";
  std::remove(path.c_str());
}

TEST(RecordIoTest, HeaderOnlyYieldsInvalidDataset) {
  // No records at all: Validate passes only if there are no groups either;
  // a header-only file produces an empty (valid) dataset.
  const std::string path = TempPath("header_only.csv");
  {
    std::ofstream out(path);
    out << "record_id,group_id,group_label,entity_id,text\n";
  }
  const auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_records(), 0);
  EXPECT_EQ(loaded->num_groups(), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace grouplink
