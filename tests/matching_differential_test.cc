// Differential test over random bipartite graphs: every matching engine is
// cross-checked against an independent oracle — the exact algorithms
// (Hungarian, SSP profile, auction) must agree with brute force and with
// each other, and the approximate ones (greedy, semi-matching) must
// respect their documented bounds. Graphs are generated from fixed seeds,
// so failures reproduce exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/execution_context.h"
#include "common/random.h"
#include "core/group_measures.h"
#include "matching/auction.h"
#include "matching/bipartite_graph.h"
#include "matching/brute_force.h"
#include "matching/greedy.h"
#include "matching/hopcroft_karp.h"
#include "matching/hungarian.h"
#include "matching/semi_matching.h"
#include "matching/ssp_matching.h"

namespace grouplink {
namespace {

BipartiteGraph RandomGraph(Rng& rng, int32_t num_left, int32_t num_right,
                           double density) {
  BipartiteGraph graph(num_left, num_right);
  for (int32_t l = 0; l < num_left; ++l) {
    for (int32_t r = 0; r < num_right; ++r) {
      if (rng.Bernoulli(density)) {
        // Weights in (0, 1], matching the θ-thresholded similarity graphs.
        graph.AddEdge(l, r, 0.05 + 0.95 * rng.UniformDouble());
      }
    }
  }
  return graph;
}

double ProfileMax(const std::vector<double>& profile) {
  return *std::max_element(profile.begin(), profile.end());
}

// Checks every cross-engine invariant that holds on graphs of any size.
void CheckEngineAgreement(const BipartiteGraph& graph) {
  const Matching hungarian = HungarianMaxWeightMatching(graph);
  const std::vector<double> profile = MaxWeightByCardinality(graph);
  const Matching auction = AuctionMaxWeightMatching(graph);
  const Matching greedy = GreedyMaxWeightMatching(graph);
  const Matching hopcroft = HopcroftKarpMatching(graph);
  const SemiMatching semi = ComputeSemiMatching(graph);

  // The SSP profile's maximum is the unrestricted max matching weight.
  EXPECT_NEAR(hungarian.total_weight, ProfileMax(profile), 1e-9);

  // The profile is concave: augmenting-path gains never increase.
  for (size_t k = 2; k < profile.size(); ++k) {
    EXPECT_LE(profile[k] - profile[k - 1], profile[k - 1] - profile[k - 2] + 1e-9);
  }

  // The profile ends at the maximum cardinality ν, which Hopcroft-Karp
  // computes independently.
  EXPECT_EQ(static_cast<size_t>(hopcroft.size) + 1, profile.size());

  // Auction with the default final ε lands within num_bidders · ε of the
  // optimum (and never above it).
  const double auction_slack =
      static_cast<double>(std::min(graph.num_left(), graph.num_right())) * 1e-7 + 1e-9;
  EXPECT_LE(auction.total_weight, hungarian.total_weight + 1e-9);
  EXPECT_GE(auction.total_weight, hungarian.total_weight - auction_slack);

  // Greedy is a 1/2-approximation of the max weight...
  EXPECT_GE(greedy.total_weight, 0.5 * hungarian.total_weight - 1e-9);
  EXPECT_LE(greedy.total_weight, hungarian.total_weight + 1e-9);
  // ...and maximal under strictly positive weights: no edge can have both
  // endpoints unmatched.
  for (const BipartiteEdge& edge : graph.edges()) {
    const bool left_free =
        greedy.left_to_right[static_cast<size_t>(edge.left)] == Matching::kUnmatched;
    const bool right_free =
        greedy.right_to_left[static_cast<size_t>(edge.right)] == Matching::kUnmatched;
    EXPECT_FALSE(left_free && right_free)
        << "greedy left edge (" << edge.left << ", " << edge.right << ") unmatched";
  }
  // Maximal matchings have at least ν/2 edges.
  EXPECT_GE(2 * greedy.size, hopcroft.size);

  // The semi-matching relaxation upper-bounds the matching weight: every
  // matched edge weighs at most (best(l) + best(r)) / 2 and matched edges
  // are node-disjoint.
  EXPECT_GE((semi.SumBestLeft() + semi.SumBestRight()) / 2.0,
            hungarian.total_weight - 1e-9);

  // Matching structural sanity: partner maps are consistent involutions.
  for (const Matching* m : {&hungarian, &auction, &greedy, &hopcroft}) {
    int32_t counted = 0;
    for (size_t l = 0; l < m->left_to_right.size(); ++l) {
      const int32_t r = m->left_to_right[l];
      if (r == Matching::kUnmatched) continue;
      ++counted;
      EXPECT_EQ(m->right_to_left[static_cast<size_t>(r)], static_cast<int32_t>(l));
    }
    EXPECT_EQ(counted, m->size);
  }
}

TEST(MatchingDifferentialTest, SmallGraphsAgainstBruteForce) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const int32_t num_left = static_cast<int32_t>(rng.UniformInt(1, 5));
    const int32_t num_right = static_cast<int32_t>(rng.UniformInt(1, 5));
    const double density = rng.UniformDouble(0.2, 0.9);
    const BipartiteGraph graph = RandomGraph(rng, num_left, num_right, density);

    const Matching brute = BruteForceMaxWeightMatching(graph);
    const Matching hungarian = HungarianMaxWeightMatching(graph);
    EXPECT_NEAR(hungarian.total_weight, brute.total_weight, 1e-9)
        << "trial " << trial << " " << num_left << "x" << num_right;

    // The exact normalized optimizer agrees with its brute-force oracle.
    EXPECT_NEAR(MaxNormalizedMatchingScore(graph, num_left, num_right),
                BruteForceMaxNormalizedScore(graph), 1e-9)
        << "trial " << trial;

    CheckEngineAgreement(graph);
  }
}

TEST(MatchingDifferentialTest, LargerGraphsCrossValidate) {
  // Beyond brute-force reach the exact engines validate each other:
  // Hungarian vs the SSP profile vs auction, plus every bound.
  Rng rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    const int32_t num_left = static_cast<int32_t>(rng.UniformInt(6, 14));
    const int32_t num_right = static_cast<int32_t>(rng.UniformInt(6, 14));
    const double density = rng.UniformDouble(0.1, 0.7);
    const BipartiteGraph graph = RandomGraph(rng, num_left, num_right, density);
    CheckEngineAgreement(graph);
  }
}

TEST(MatchingDifferentialTest, BoundsSandwichBmAndDegradedFallbacksAreSound) {
  // The resilient fallbacks lean entirely on these relations: the matcher
  // budget decides oversized pairs from GreedyLowerBound / the UB filter,
  // and a stop request makes BmMeasure return a partial matching. Each
  // must only ever err toward *under*-linking.
  Rng rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    const int32_t num_left = static_cast<int32_t>(rng.UniformInt(1, 10));
    const int32_t num_right = static_cast<int32_t>(rng.UniformInt(1, 10));
    const double density = rng.UniformDouble(0.1, 0.9);
    const BipartiteGraph graph = RandomGraph(rng, num_left, num_right, density);

    const GroupScore bm = BmMeasure(graph, num_left, num_right);
    const double ub = UpperBoundMeasure(graph, num_left, num_right);
    const double lb = GreedyLowerBound(graph, num_left, num_right);

    // The sandwich LB <= BM <= UB, and the documented LB >= BM/4 quality
    // bound (greedy weight >= W*/2, denominator ratio <= 2).
    EXPECT_LE(lb, bm.value + 1e-9) << "trial " << trial;
    EXPECT_LE(bm.value, ub + 1e-9) << "trial " << trial;
    EXPECT_GE(lb, bm.value / 4.0 - 1e-9) << "trial " << trial;

    // Bounds-only decisions at any threshold: an LB accept is always a
    // true link, a UB prune is always a true non-link — degradation can
    // only drop the pairs in between.
    for (const double threshold : {0.1, 0.25, 0.5, 0.75}) {
      if (lb >= threshold) {
        EXPECT_GE(bm.value, threshold - 1e-9)
            << "degraded accept over-linked, trial " << trial;
      }
      if (ub < threshold) {
        EXPECT_LT(bm.value, threshold)
            << "UB prune dropped a true link, trial " << trial;
      }
    }

    // A stop request mid-matcher yields a valid partial matching whose
    // weight and normalized score never exceed the exact ones.
    CancellationToken token;
    token.Cancel();
    ExecutionContext ctx;
    ctx.SetCancellation(token);
    const GroupScore partial = BmMeasure(graph, num_left, num_right, &ctx);
    EXPECT_GE(partial.matching_weight, -1e-12);
    EXPECT_LE(partial.matching_weight, bm.matching_weight + 1e-9);
    EXPECT_LE(partial.matching_size, bm.matching_size);
    EXPECT_LE(partial.value, bm.value + 1e-9) << "partial BM over-reported";
  }
}

TEST(MatchingDifferentialTest, DegenerateGraphs) {
  // Empty graph: everything agrees on the trivial answers.
  const BipartiteGraph empty(3, 4);
  EXPECT_EQ(HungarianMaxWeightMatching(empty).size, 0);
  EXPECT_EQ(HopcroftKarpMatching(empty).size, 0);
  EXPECT_EQ(MaxWeightByCardinality(empty).size(), 1u);  // Only k = 0.
  CheckEngineAgreement(empty);

  // Single edge.
  BipartiteGraph single(1, 1);
  single.AddEdge(0, 0, 0.6);
  const Matching m = HungarianMaxWeightMatching(single);
  EXPECT_EQ(m.size, 1);
  EXPECT_NEAR(m.total_weight, 0.6, 1e-12);
  CheckEngineAgreement(single);

  // Perfectly tied weights: size and weight must still agree with brute
  // force even though the argmax matching is ambiguous.
  BipartiteGraph tied(3, 3);
  for (int32_t l = 0; l < 3; ++l) {
    for (int32_t r = 0; r < 3; ++r) tied.AddEdge(l, r, 0.5);
  }
  EXPECT_NEAR(HungarianMaxWeightMatching(tied).total_weight,
              BruteForceMaxWeightMatching(tied).total_weight, 1e-9);
  CheckEngineAgreement(tied);
}

}  // namespace
}  // namespace grouplink
