#include "service/resilience/circuit_breaker.h"

#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace grouplink {
namespace resilience {
namespace {

// A breaker on a hand-cranked clock: tests drive the cooldown without
// sleeping.
struct FakeClockBreaker {
  explicit FakeClockBreaker(const BreakerConfig& config)
      : breaker(config, [this] { return now_ms; }) {}
  double now_ms = 0.0;
  CircuitBreaker breaker;
};

BreakerConfig TwoStrikes() {
  BreakerConfig config;
  config.failure_threshold = 2;
  config.open_cooldown_ms = 100.0;
  return config;
}

TEST(BreakerConfigTest, ValidateRejectsBadKnobs) {
  BreakerConfig config;
  config.failure_threshold = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = BreakerConfig{};
  config.open_cooldown_ms = -1.0;
  EXPECT_FALSE(config.Validate().ok());
  EXPECT_TRUE(BreakerConfig{}.Validate().ok());
}

TEST(CircuitBreakerTest, StartsClosedAndAdmitsEverything) {
  FakeClockBreaker f(TwoStrikes());
  EXPECT_EQ(f.breaker.state(), BreakerState::kClosed);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(f.breaker.Allow());
  EXPECT_EQ(f.breaker.rejected(), 0);
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  FakeClockBreaker f(TwoStrikes());
  ASSERT_TRUE(f.breaker.Allow());
  f.breaker.RecordFailure();
  EXPECT_EQ(f.breaker.consecutive_failures(), 1);
  ASSERT_TRUE(f.breaker.Allow());
  f.breaker.RecordSuccess();
  EXPECT_EQ(f.breaker.consecutive_failures(), 0);
  // Another single failure after the reset must not trip.
  ASSERT_TRUE(f.breaker.Allow());
  f.breaker.RecordFailure();
  EXPECT_EQ(f.breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, ThresholdFailuresTripOpenAndReject) {
  FakeClockBreaker f(TwoStrikes());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(f.breaker.Allow());
    f.breaker.RecordFailure();
  }
  EXPECT_EQ(f.breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(f.breaker.trips(), 1);
  f.now_ms = 50.0;  // Inside the cooldown.
  EXPECT_FALSE(f.breaker.Allow());
  EXPECT_FALSE(f.breaker.Allow());
  EXPECT_EQ(f.breaker.rejected(), 2);
}

TEST(CircuitBreakerTest, CooldownAdmitsOneHalfOpenProbe) {
  FakeClockBreaker f(TwoStrikes());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(f.breaker.Allow());
    f.breaker.RecordFailure();
  }
  f.now_ms = 100.0;  // Cooldown elapsed.
  EXPECT_TRUE(f.breaker.Allow());
  EXPECT_EQ(f.breaker.state(), BreakerState::kHalfOpen);
  // The probe is outstanding: nobody else gets in.
  EXPECT_FALSE(f.breaker.Allow());
  EXPECT_FALSE(f.breaker.Allow());
}

TEST(CircuitBreakerTest, ProbeSuccessClosesTheBreaker) {
  FakeClockBreaker f(TwoStrikes());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(f.breaker.Allow());
    f.breaker.RecordFailure();
  }
  f.now_ms = 150.0;
  ASSERT_TRUE(f.breaker.Allow());
  f.breaker.RecordSuccess();
  EXPECT_EQ(f.breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(f.breaker.consecutive_failures(), 0);
  EXPECT_TRUE(f.breaker.Allow());
}

TEST(CircuitBreakerTest, ProbeFailureReopensAndRestartsTheCooldown) {
  FakeClockBreaker f(TwoStrikes());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(f.breaker.Allow());
    f.breaker.RecordFailure();
  }
  f.now_ms = 100.0;
  ASSERT_TRUE(f.breaker.Allow());
  f.breaker.RecordFailure();
  EXPECT_EQ(f.breaker.state(), BreakerState::kOpen);
  // The cooldown restarted at t=100: still rejecting at t=150, probing
  // again at t=200.
  f.now_ms = 150.0;
  EXPECT_FALSE(f.breaker.Allow());
  f.now_ms = 200.0;
  EXPECT_TRUE(f.breaker.Allow());
  EXPECT_EQ(f.breaker.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, TransitionLogRecordsTheFullStory) {
  FakeClockBreaker f(TwoStrikes());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(f.breaker.Allow());
    f.breaker.RecordFailure();
  }
  f.now_ms = 100.0;
  ASSERT_TRUE(f.breaker.Allow());
  f.breaker.RecordFailure();
  f.now_ms = 200.0;
  ASSERT_TRUE(f.breaker.Allow());
  f.breaker.RecordSuccess();

  const auto log = f.breaker.transition_log();
  const std::vector<std::pair<BreakerState, BreakerState>> expected = {
      {BreakerState::kClosed, BreakerState::kOpen},
      {BreakerState::kOpen, BreakerState::kHalfOpen},
      {BreakerState::kHalfOpen, BreakerState::kOpen},
      {BreakerState::kOpen, BreakerState::kHalfOpen},
      {BreakerState::kHalfOpen, BreakerState::kClosed},
  };
  EXPECT_EQ(log, expected);
  for (const auto& [from, to] : log) {
    EXPECT_TRUE(CircuitBreaker::IsLegalTransition(from, to))
        << BreakerStateName(from) << " -> " << BreakerStateName(to);
  }
}

TEST(CircuitBreakerTest, IsLegalTransitionTruthTable) {
  using B = BreakerState;
  EXPECT_TRUE(CircuitBreaker::IsLegalTransition(B::kClosed, B::kOpen));
  EXPECT_TRUE(CircuitBreaker::IsLegalTransition(B::kOpen, B::kHalfOpen));
  EXPECT_TRUE(CircuitBreaker::IsLegalTransition(B::kHalfOpen, B::kClosed));
  EXPECT_TRUE(CircuitBreaker::IsLegalTransition(B::kHalfOpen, B::kOpen));
  // Everything else is illegal — above all closed -> half-open (a breaker
  // never probes without having been open) and open -> closed (recovery
  // must go through a successful probe).
  EXPECT_FALSE(CircuitBreaker::IsLegalTransition(B::kClosed, B::kHalfOpen));
  EXPECT_FALSE(CircuitBreaker::IsLegalTransition(B::kOpen, B::kClosed));
  EXPECT_FALSE(CircuitBreaker::IsLegalTransition(B::kClosed, B::kClosed));
  EXPECT_FALSE(CircuitBreaker::IsLegalTransition(B::kOpen, B::kOpen));
  EXPECT_FALSE(CircuitBreaker::IsLegalTransition(B::kHalfOpen, B::kHalfOpen));
}

TEST(CircuitBreakerTest, ZeroCooldownProbesImmediately) {
  BreakerConfig config;
  config.failure_threshold = 1;
  config.open_cooldown_ms = 0.0;
  FakeClockBreaker f(config);
  ASSERT_TRUE(f.breaker.Allow());
  f.breaker.RecordFailure();
  EXPECT_EQ(f.breaker.state(), BreakerState::kOpen);
  EXPECT_TRUE(f.breaker.Allow());  // Cooldown of 0 has always elapsed.
  EXPECT_EQ(f.breaker.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "half-open");
}

}  // namespace
}  // namespace resilience
}  // namespace grouplink
