#include "core/filter_refine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "index/candidates.h"

namespace grouplink {
namespace {

// A random dataset of `num_groups` groups with sizes in [1, max_size] and
// a symmetric random similarity lookup table.
struct RandomInstance {
  Dataset dataset;
  std::vector<std::vector<double>> sims;

  RecordSimFn SimFn() const {
    return [this](int32_t a, int32_t b) { return sims[a][b]; };
  }
};

RandomInstance MakeInstance(Rng& rng, int32_t num_groups, int32_t max_size) {
  RandomInstance instance;
  std::vector<int32_t> record_group;
  for (int32_t g = 0; g < num_groups; ++g) {
    const int64_t size = rng.UniformInt(1, max_size);
    for (int64_t i = 0; i < size; ++i) record_group.push_back(g);
  }
  std::vector<Record> records(record_group.size());
  for (size_t r = 0; r < records.size(); ++r) {
    records[r].id = std::to_string(r);
    records[r].text = "record " + std::to_string(r);
  }
  auto dataset = MakeDataset(std::move(records), record_group, num_groups);
  instance.dataset = std::move(dataset.value());

  const size_t n = instance.dataset.records.size();
  instance.sims.assign(n, std::vector<double>(n, 0.0));
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a; b < n; ++b) {
      // Mix of strong and weak similarities.
      const double s = rng.Bernoulli(0.3) ? 0.5 + 0.5 * rng.UniformDouble()
                                          : 0.5 * rng.UniformDouble();
      instance.sims[a][b] = s;
      instance.sims[b][a] = s;
    }
  }
  for (size_t a = 0; a < n; ++a) instance.sims[a][a] = 1.0;
  return instance;
}

TEST(FilterRefineTest, EquivalentToBruteForceAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    RandomInstance instance = MakeInstance(rng, 10, 5);
    const auto candidates = AllGroupPairs(instance.dataset.num_groups());

    FilterRefineConfig config;
    config.theta = 0.55;
    config.group_threshold = 0.35;

    FilterRefineStats fast_stats;
    const auto fast = FilterRefineLink(instance.dataset, instance.SimFn(), candidates,
                                       config, &fast_stats);
    FilterRefineStats slow_stats;
    const auto slow = BruteForceBmLink(instance.dataset, instance.SimFn(), candidates,
                                       config, &slow_stats);
    EXPECT_EQ(fast, slow) << "seed " << seed;
    EXPECT_EQ(fast_stats.linked, slow_stats.linked);
    EXPECT_EQ(slow_stats.pruned_by_upper_bound, 0u);
    EXPECT_EQ(slow_stats.accepted_by_lower_bound, 0u);
  }
}

TEST(FilterRefineTest, StatsPartitionCandidates) {
  Rng rng(99);
  RandomInstance instance = MakeInstance(rng, 12, 4);
  const auto candidates = AllGroupPairs(instance.dataset.num_groups());
  FilterRefineConfig config;
  config.theta = 0.5;
  config.group_threshold = 0.4;
  FilterRefineStats stats;
  // Stats side channel is the subject under test; the link set is not.
  (void)FilterRefineLink(instance.dataset, instance.SimFn(), candidates, config, &stats);
  EXPECT_EQ(stats.candidates, candidates.size());
  EXPECT_EQ(stats.candidates, stats.empty_graphs + stats.pruned_by_upper_bound +
                                  stats.accepted_by_lower_bound + stats.refined);
}

TEST(FilterRefineTest, BoundsActuallyPruneAndAccept) {
  Rng rng(7);
  RandomInstance instance = MakeInstance(rng, 20, 5);
  const auto candidates = AllGroupPairs(instance.dataset.num_groups());
  FilterRefineConfig config;
  config.theta = 0.5;
  config.group_threshold = 0.4;
  FilterRefineStats stats;
  // Stats side channel is the subject under test; the link set is not.
  (void)FilterRefineLink(instance.dataset, instance.SimFn(), candidates, config, &stats);
  // On random data at these thresholds both bound paths should fire, and
  // refine should handle strictly fewer pairs than the candidate count.
  EXPECT_GT(stats.pruned_by_upper_bound + stats.empty_graphs, 0u);
  EXPECT_LT(stats.refined, stats.candidates);
}

TEST(FilterRefineTest, DisablingBoundsForcesRefine) {
  Rng rng(13);
  RandomInstance instance = MakeInstance(rng, 8, 4);
  const auto candidates = AllGroupPairs(instance.dataset.num_groups());
  FilterRefineConfig config;
  config.theta = 0.5;
  config.group_threshold = 0.4;
  config.use_upper_bound_filter = false;
  config.use_lower_bound_accept = false;
  FilterRefineStats stats;
  // Stats side channel is the subject under test; the link set is not.
  (void)FilterRefineLink(instance.dataset, instance.SimFn(), candidates, config, &stats);
  EXPECT_EQ(stats.pruned_by_upper_bound, 0u);
  EXPECT_EQ(stats.accepted_by_lower_bound, 0u);
  EXPECT_EQ(stats.refined + stats.empty_graphs, stats.candidates);
}

TEST(FilterRefineTest, ThresholdOneOnlyLinksIdenticalGroups) {
  // Two identical singleton groups (similarity 1) and one different group.
  std::vector<Record> records(3);
  for (int i = 0; i < 3; ++i) records[i].id = std::to_string(i);
  auto dataset = MakeDataset(std::move(records), {0, 1, 2}, 3);
  ASSERT_TRUE(dataset.ok());
  const auto sim = [](int32_t a, int32_t b) {
    if (a == b) return 1.0;
    return (a < 2 && b < 2) ? 1.0 : 0.2;
  };
  FilterRefineConfig config;
  config.theta = 0.5;
  config.group_threshold = 1.0;
  const auto linked =
      FilterRefineLink(*dataset, sim, AllGroupPairs(3), config, nullptr);
  ASSERT_EQ(linked.size(), 1u);
  EXPECT_EQ(linked[0], std::make_pair(0, 1));
}

TEST(FilterRefineTest, NullStatsPointerAccepted) {
  Rng rng(3);
  RandomInstance instance = MakeInstance(rng, 4, 3);
  FilterRefineConfig config;
  EXPECT_NO_FATAL_FAILURE(FilterRefineLink(
      instance.dataset, instance.SimFn(),
      AllGroupPairs(instance.dataset.num_groups()), config, nullptr));
}

// Sweep over group thresholds: the linked set shrinks monotonically as Θ
// rises, and filter-refine stays equivalent to brute force at every Θ.
class FilterRefineThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(FilterRefineThresholdSweep, EquivalenceAtEveryTheta) {
  Rng rng(1234);
  RandomInstance instance = MakeInstance(rng, 12, 5);
  const auto candidates = AllGroupPairs(instance.dataset.num_groups());
  FilterRefineConfig config;
  config.theta = 0.5;
  config.group_threshold = GetParam();
  const auto fast =
      FilterRefineLink(instance.dataset, instance.SimFn(), candidates, config);
  const auto slow =
      BruteForceBmLink(instance.dataset, instance.SimFn(), candidates, config);
  EXPECT_EQ(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, FilterRefineThresholdSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0));

}  // namespace
}  // namespace grouplink
