// Storage differential suite (the tentpole's proof obligation): the
// disk-backed paged read path (StoredCorpus) must produce link sets
// bit-identical to the in-RAM snapshot — for writers built at 1/2/7
// threads, at every buffer budget down to a pathologically tiny
// one-frame pool, and under concurrent readers. The whole suite is
// registered a second time with GROUPLINK_FORCE_SCALAR=1
// (storage_differential_force_scalar), proving the identity holds with
// the SIMD kernels disabled too.
#include "storage/stored_corpus.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/incremental.h"
#include "core/snapshot.h"
#include "data/bibliographic_generator.h"
#include "storage/page_file.h"
#include "storage/snapshot_store.h"

namespace grouplink {
namespace storage {
namespace {

Dataset MakeCorpus(int32_t entities, uint64_t seed) {
  BibliographicConfig config;
  config.num_entities = entities;
  config.noise = 0.25;
  config.num_topics = 5;
  config.offtopic_word_prob = 0.5;
  config.seed = seed;
  return GenerateBibliographic(config);
}

std::vector<std::string> GroupTexts(const Dataset& dataset, int32_t group) {
  std::vector<std::string> texts;
  for (const int32_t r : dataset.groups[static_cast<size_t>(group)].record_ids) {
    texts.push_back(dataset.records[static_cast<size_t>(r)].text);
  }
  return texts;
}

std::string StorePath(const std::string& name) {
  // This binary is registered twice (plain + GROUPLINK_FORCE_SCALAR) and
  // ctest may run both processes concurrently: paths must not collide.
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

/// Builds a mid-stream epoch (arrivals + a removal, so tombstones are in
/// play), persists it with small pages (forcing real paging), and
/// returns the in-RAM truth.
std::shared_ptr<const CorpusSnapshot> BuildStore(const Dataset& dataset,
                                                 int32_t num_threads,
                                                 const std::string& path) {
  LinkageConfig config;
  config.theta = 0.35;
  config.group_threshold = 0.2;
  config.num_threads = num_threads;
  auto linker = IncrementalLinker::Create(dataset, config);
  GL_CHECK(linker.ok());
  (void)linker->AddGroup("late arrival",
                         {"freshly arrived record text", "with novel tokens"});
  linker->RemoveGroup(2);
  const auto snapshot = CorpusSnapshot::Capture(*linker);
  StorageOptions options;
  options.page_bytes = 512;  // Small pages: many of them, real paging.
  GL_CHECK(SnapshotStore::Persist(*snapshot, path, options).ok());
  return snapshot;
}

void ExpectIdenticalAnswers(const CorpusSnapshot& truth,
                            const StoredCorpus& stored, const Dataset& probes,
                            const std::string& context) {
  for (int32_t g = 0; g < probes.num_groups(); ++g) {
    const GroupArrival probe{"probe", GroupTexts(probes, g)};
    const auto want = truth.LinkQuery(probe);
    const auto got = stored.LinkQuery(probe);
    ASSERT_TRUE(got.ok()) << context << " probe " << g << ": "
                          << got.status().message();
    EXPECT_EQ(got->linked_to, want.linked_to) << context << " probe " << g;
    EXPECT_EQ(got->candidates, want.candidates) << context << " probe " << g;
    EXPECT_EQ(got->oov_tokens, want.oov_tokens) << context << " probe " << g;
    EXPECT_EQ(got->epoch, want.epoch) << context << " probe " << g;
  }
}

TEST(StorageDifferentialTest, PagedPathMatchesInRamAcrossThreadsAndBudgets) {
  const Dataset dataset = MakeCorpus(25, 77);
  const Dataset probes = MakeCorpus(10, 991);
  for (const int32_t num_threads : {1, 2, 7}) {
    const std::string path = StorePath("diff_threads.glsnap");
    const auto truth = BuildStore(dataset, num_threads, path);
    // Budgets from pathologically tiny (one frame — every read a miss)
    // to larger-than-the-store (no evictions at all).
    for (const size_t pool_pages : {size_t{1}, size_t{2}, size_t{7}, size_t{4096}}) {
      StorageOptions options;
      options.buffer_pool_pages = pool_pages;
      const auto stored = StoredCorpus::Open(path, options);
      ASSERT_TRUE(stored.ok()) << stored.status().message();
      EXPECT_EQ((*stored)->epoch(), truth->epoch());
      EXPECT_EQ((*stored)->num_groups(), truth->num_groups());
      const std::string context = "threads=" + std::to_string(num_threads) +
                                  " pool=" + std::to_string(pool_pages);
      ExpectIdenticalAnswers(*truth, **stored, probes, context);
      // The paged path must actually have paged: with one frame, every
      // page transition is a miss.
      const BufferStats stats = (*stored)->buffer_stats();
      EXPECT_GT(stats.misses, 0u) << context;
      if (pool_pages == 1) {
        EXPECT_GT(stats.evictions, 0u) << context;
      }
    }
    ASSERT_TRUE(RemoveFile(path).ok());
  }
}

TEST(StorageDifferentialTest, ConcurrentReadersOnATinyPoolStayBitIdentical) {
  // 7 reader threads hammer one StoredCorpus with a 4-frame pool; every
  // answer that comes back must be exactly the in-RAM one. Each query
  // pins one page at a time, but 7 concurrent single-pin readers can
  // still transiently exhaust 4 frames — Pin never blocks (DESIGN.md
  // §12) — so exhaustion must surface as clean kFailedPrecondition and
  // succeed on retry; any other error, or a divergent answer, fails.
  const Dataset dataset = MakeCorpus(20, 5);
  const Dataset probes = MakeCorpus(6, 55);
  const std::string path = StorePath("diff_concurrent.glsnap");
  const auto truth = BuildStore(dataset, 2, path);
  StorageOptions options;
  options.buffer_pool_pages = 4;
  const auto stored = StoredCorpus::Open(path, options);
  ASSERT_TRUE(stored.ok());

  // Precompute the expected answers serially.
  std::vector<std::vector<int32_t>> expected;
  for (int32_t g = 0; g < probes.num_groups(); ++g) {
    expected.push_back(truth->LinkQuery({"probe", GroupTexts(probes, g)}).linked_to);
  }

  constexpr int kThreads = 7;
  constexpr int kRoundsPerThread = 5;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        const int32_t g =
            static_cast<int32_t>((t + round) % probes.num_groups());
        const GroupArrival probe{"probe", GroupTexts(probes, g)};
        auto got = (*stored)->LinkQuery(probe);
        for (int spin = 0; !got.ok() && spin < 10000 &&
             got.status().code() == StatusCode::kFailedPrecondition;
             ++spin) {
          std::this_thread::yield();  // Pool exhausted: retryable.
          got = (*stored)->LinkQuery(probe);
        }
        if (!got.ok()) {
          ++failures;
        } else if (got->linked_to != expected[static_cast<size_t>(g)]) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(StorageDifferentialTest, OneFramePoolNeverExhaustsAndCountsEvictions) {
  const Dataset dataset = MakeCorpus(15, 9);
  const std::string path = StorePath("diff_one_frame.glsnap");
  const auto truth = BuildStore(dataset, 1, path);
  StorageOptions options;
  options.buffer_pool_pages = 1;
  const auto stored = StoredCorpus::Open(path, options);
  ASSERT_TRUE(stored.ok());
  ExpectIdenticalAnswers(*truth, **stored, dataset, "pool=1 self-probes");
  const BufferStats stats = (*stored)->buffer_stats();
  EXPECT_GT(stats.evictions, 0u);
  ASSERT_TRUE(RemoveFile(path).ok());
}

}  // namespace
}  // namespace storage
}  // namespace grouplink
