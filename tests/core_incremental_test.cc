#include "core/incremental.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/bibliographic_generator.h"
#include "eval/metrics.h"

namespace grouplink {
namespace {

LinkageConfig TestConfig() {
  LinkageConfig config;
  config.theta = 0.35;
  config.group_threshold = 0.2;
  return config;
}

Dataset SeedDataset(int32_t entities = 50, uint64_t seed = 77) {
  BibliographicConfig config;
  config.num_entities = entities;
  config.noise = 0.2;
  config.num_topics = 6;
  config.offtopic_word_prob = 0.5;
  config.seed = seed;
  return GenerateBibliographic(config);
}

std::vector<std::string> GroupTexts(const Dataset& dataset, int32_t group) {
  std::vector<std::string> texts;
  for (const int32_t r : dataset.groups[static_cast<size_t>(group)].record_ids) {
    texts.push_back(dataset.records[static_cast<size_t>(r)].text);
  }
  return texts;
}

TEST(IncrementalLinkerTest, InitializeReproducesBatchLinks) {
  const Dataset dataset = SeedDataset();
  IncrementalLinker linker(TestConfig());
  ASSERT_TRUE(linker.Initialize(dataset).ok());

  // The comparator must run the *normalized* configuration (token-blocking
  // candidates, BM measure) that the streaming semantics are defined
  // against — engine_config() returns exactly that.
  const auto batch = RunGroupLinkage(dataset, linker.engine_config());
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(linker.linked_pairs(), batch->linked_pairs);
  EXPECT_EQ(linker.num_groups(), dataset.num_groups());
  EXPECT_EQ(linker.num_alive_groups(), dataset.num_groups());
  EXPECT_EQ(linker.epoch(), 1);
}

TEST(IncrementalLinkerTest, EngineConfigIsNormalized) {
  LinkageConfig config = TestConfig();
  config.candidates = CandidateMethod::kRecordJoin;
  config.representation = RecordRepresentation::kCharacterQGrams;
  config.measure = GroupMeasureKind::kGreedy;
  config.use_edge_join = true;
  IncrementalLinker linker(config);
  const LinkageConfig& normalized = linker.engine_config();
  EXPECT_EQ(normalized.candidates, CandidateMethod::kBlocking);
  EXPECT_EQ(normalized.blocking, BlockingScheme::kToken);
  EXPECT_EQ(normalized.measure, GroupMeasureKind::kBm);
  EXPECT_EQ(normalized.representation, RecordRepresentation::kWordTokens);
  EXPECT_FALSE(normalized.use_edge_join);
  EXPECT_DOUBLE_EQ(normalized.theta, config.theta);
  EXPECT_DOUBLE_EQ(normalized.group_threshold, config.group_threshold);
}

TEST(IncrementalLinkerTest, InitializeRejectsInvalidDataset) {
  Dataset bad;
  Record record;
  record.id = "r";
  record.text = "orphan";
  bad.records.push_back(record);  // Record in no group.
  IncrementalLinker linker(TestConfig());
  EXPECT_FALSE(linker.Initialize(bad).ok());
}

TEST(IncrementalLinkerTest, StreamingConfigRejectsBadValues) {
  StreamingConfig negative;
  negative.refresh_every_n_groups = -1;
  EXPECT_FALSE(negative.Validate().ok());
  StreamingConfig ratio;
  ratio.refresh_on_oov_ratio = 1.5;
  EXPECT_FALSE(ratio.Validate().ok());
  EXPECT_TRUE(StreamingConfig().Validate().ok());

  const Dataset dataset = SeedDataset(10);
  IncrementalLinker linker(TestConfig(), negative);
  EXPECT_FALSE(linker.Initialize(dataset).ok());
}

TEST(IncrementalLinkerTest, DuplicateGroupLinksToItsTwin) {
  const Dataset dataset = SeedDataset();
  IncrementalLinker linker(TestConfig());
  ASSERT_TRUE(linker.Initialize(dataset).ok());

  // Re-add an existing group's exact record texts as a new group.
  const int32_t twin = 3;
  const auto added = linker.AddGroup("twin", GroupTexts(dataset, twin));
  EXPECT_EQ(added.group_index, dataset.num_groups());
  EXPECT_TRUE(std::find(added.linked_to.begin(), added.linked_to.end(), twin) !=
              added.linked_to.end());
}

TEST(IncrementalLinkerTest, UnrelatedGroupStaysUnlinked) {
  const Dataset dataset = SeedDataset();
  IncrementalLinker linker(TestConfig());
  ASSERT_TRUE(linker.Initialize(dataset).ok());
  const auto added = linker.AddGroup(
      "stranger", {"zzqx wvut completely alien nonsense", "qqqq pppp rrrr"});
  EXPECT_TRUE(added.linked_to.empty());
  // Every token of the stranger is new to the epoch vocabulary.
  EXPECT_GT(added.oov_tokens, 0u);
  EXPECT_GT(linker.EpochOovRatio(), 0.0);
}

TEST(IncrementalLinkerTest, BatchAddEqualsSequentialAdds) {
  const Dataset dataset = SeedDataset(30, 11);
  const Dataset extra = SeedDataset(12, 99);

  std::vector<GroupArrival> batch;
  for (int32_t g = 0; g < extra.num_groups(); ++g) {
    batch.push_back({extra.groups[static_cast<size_t>(g)].label,
                     GroupTexts(extra, g)});
  }

  IncrementalLinker batched(TestConfig());
  ASSERT_TRUE(batched.Initialize(dataset).ok());
  const auto results = batched.AddGroups(batch);
  ASSERT_EQ(results.size(), batch.size());

  IncrementalLinker sequential(TestConfig());
  ASSERT_TRUE(sequential.Initialize(dataset).ok());
  for (const GroupArrival& arrival : batch) {
    sequential.AddGroup(arrival.label, arrival.record_texts);
  }

  EXPECT_EQ(batched.linked_pairs(), sequential.linked_pairs());
  EXPECT_EQ(batched.ClusterLabels(), sequential.ClusterLabels());
}

TEST(IncrementalLinkerTest, RemoveGroupDropsItsLinks) {
  const Dataset dataset = SeedDataset();
  IncrementalLinker linker(TestConfig());
  ASSERT_TRUE(linker.Initialize(dataset).ok());
  ASSERT_FALSE(linker.linked_pairs().empty());

  const int32_t victim = linker.linked_pairs().front().first;
  const int32_t alive_before = linker.num_alive_groups();
  linker.RemoveGroup(victim);
  EXPECT_FALSE(linker.IsAlive(victim));
  EXPECT_EQ(linker.num_alive_groups(), alive_before - 1);
  for (const auto& [a, b] : linker.linked_pairs()) {
    EXPECT_NE(a, victim);
    EXPECT_NE(b, victim);
  }
  // The tombstoned slot keeps its index and clusters as a singleton.
  const auto labels = linker.ClusterLabels();
  EXPECT_EQ(labels.size(), static_cast<size_t>(linker.num_groups()));
}

TEST(IncrementalLinkerTest, RemovedGroupStopsGeneratingCandidates) {
  const Dataset dataset = SeedDataset();
  IncrementalLinker linker(TestConfig());
  ASSERT_TRUE(linker.Initialize(dataset).ok());

  const int32_t twin = 5;
  linker.RemoveGroup(twin);
  // A copy of the removed group must not link back to the tombstone.
  const auto added = linker.AddGroup("twin", GroupTexts(dataset, twin));
  EXPECT_TRUE(std::find(added.linked_to.begin(), added.linked_to.end(), twin) ==
              added.linked_to.end());
}

TEST(IncrementalLinkerTest, MergeGroupsCombinesRecordsAndRescores) {
  const Dataset dataset = SeedDataset();
  IncrementalLinker linker(TestConfig());
  ASSERT_TRUE(linker.Initialize(dataset).ok());
  ASSERT_FALSE(linker.linked_pairs().empty());

  const auto [into, from] = linker.linked_pairs().front();
  const int32_t alive_before = linker.num_alive_groups();
  const auto merged = linker.MergeGroups(into, from);
  EXPECT_EQ(merged.group_index, into);
  EXPECT_TRUE(linker.IsAlive(into));
  EXPECT_FALSE(linker.IsAlive(from));
  EXPECT_EQ(linker.num_alive_groups(), alive_before - 1);
  for (const auto& [a, b] : linker.linked_pairs()) {
    EXPECT_NE(a, from);
    EXPECT_NE(b, from);
  }
  // A twin of the merged group's former partner still links to the
  // combined group: merging must not lose its records.
  const auto twin = linker.AddGroup("twin", GroupTexts(dataset, from));
  EXPECT_TRUE(std::find(twin.linked_to.begin(), twin.linked_to.end(), into) !=
              twin.linked_to.end());
}

TEST(IncrementalLinkerTest, RefreshEveryNGroupsPolicyTriggers) {
  const Dataset dataset = SeedDataset(20);
  StreamingConfig streaming;
  streaming.refresh_every_n_groups = 2;
  IncrementalLinker linker(TestConfig(), streaming);
  ASSERT_TRUE(linker.Initialize(dataset).ok());
  ASSERT_EQ(linker.epoch(), 1);

  const auto first = linker.AddGroup("a", {"streaming refresh policy one"});
  EXPECT_FALSE(first.triggered_refresh);
  EXPECT_EQ(linker.groups_since_refresh(), 1);
  const auto second = linker.AddGroup("b", {"streaming refresh policy two"});
  EXPECT_TRUE(second.triggered_refresh);
  EXPECT_EQ(linker.groups_since_refresh(), 0);
  EXPECT_EQ(linker.epoch(), 2);
}

TEST(IncrementalLinkerTest, OovRatioPolicyTriggers) {
  const Dataset dataset = SeedDataset(20);
  StreamingConfig streaming;
  streaming.refresh_on_oov_ratio = 0.5;
  IncrementalLinker linker(TestConfig(), streaming);
  ASSERT_TRUE(linker.Initialize(dataset).ok());

  // Fully out-of-vocabulary arrival: OOV ratio 1.0 > 0.5 forces a refresh,
  // which folds the new tokens into the epoch statistics.
  const auto added = linker.AddGroup("alien", {"xqzv wbtk pflm"});
  EXPECT_TRUE(added.triggered_refresh);
  EXPECT_EQ(linker.epoch(), 2);
  EXPECT_DOUBLE_EQ(linker.EpochOovRatio(), 0.0);
}

TEST(IncrementalLinkerTest, ClusterLabelsReflectNewLinks) {
  const Dataset dataset = SeedDataset();
  IncrementalLinker linker(TestConfig());
  ASSERT_TRUE(linker.Initialize(dataset).ok());

  const int32_t twin = 0;
  const auto added = linker.AddGroup("twin", GroupTexts(dataset, twin));
  ASSERT_FALSE(added.linked_to.empty());
  const auto labels = linker.ClusterLabels();
  ASSERT_EQ(labels.size(), static_cast<size_t>(linker.num_groups()));
  EXPECT_EQ(labels[static_cast<size_t>(added.group_index)],
            labels[static_cast<size_t>(added.linked_to.front())]);
}

TEST(IncrementalLinkerTest, ClusterLabelsStayStableAcrossUnrelatedArrivals) {
  // Regression: the union-find is maintained incrementally, so an arrival
  // that links to nothing must leave every existing group's label intact
  // and claim a fresh label for itself.
  const Dataset dataset = SeedDataset();
  IncrementalLinker linker(TestConfig());
  ASSERT_TRUE(linker.Initialize(dataset).ok());

  const auto before = linker.ClusterLabels();
  const auto added = linker.AddGroup("stranger", {"xxyy zzww unique gibberish"});
  ASSERT_TRUE(added.linked_to.empty());
  const auto after = linker.ClusterLabels();
  ASSERT_EQ(after.size(), before.size() + 1);
  for (size_t g = 0; g < before.size(); ++g) {
    EXPECT_EQ(after[g], before[g]) << "label of group " << g << " drifted";
  }
  EXPECT_EQ(after.back(), before.size() == 0
                              ? 0
                              : 1 + *std::max_element(before.begin(), before.end()));
}

TEST(IncrementalLinkerTest, StreamedGroupsRecoverHeldOutLinks) {
  // Seed with the first 70% of groups; stream the rest; evaluate the full
  // accumulated linkage against the full ground truth.
  const Dataset full = SeedDataset(60);
  const int32_t held_out_start = full.num_groups() * 7 / 10;

  // Rebuild a self-contained seed dataset from the kept groups.
  Dataset seed;
  for (int32_t g = 0; g < held_out_start; ++g) {
    Group group = full.groups[static_cast<size_t>(g)];
    Group rebased;
    rebased.id = group.id;
    rebased.label = group.label;
    for (const int32_t r : group.record_ids) {
      rebased.record_ids.push_back(static_cast<int32_t>(seed.records.size()));
      seed.records.push_back(full.records[static_cast<size_t>(r)]);
    }
    seed.groups.push_back(std::move(rebased));
    seed.group_entities.push_back(full.group_entities[static_cast<size_t>(g)]);
  }
  ASSERT_TRUE(seed.Validate().ok());

  IncrementalLinker linker(TestConfig());
  ASSERT_TRUE(linker.Initialize(seed).ok());
  for (int32_t g = held_out_start; g < full.num_groups(); ++g) {
    const auto added =
        linker.AddGroup(full.groups[static_cast<size_t>(g)].label, GroupTexts(full, g));
    EXPECT_EQ(added.group_index, g);
  }

  // Group indexes line up with `full` by construction, so evaluate
  // directly against its ground truth.
  const PairMetrics metrics = EvaluatePairs(linker.linked_pairs(), full.TruePairs());
  EXPECT_GT(metrics.f1, 0.85) << "P=" << metrics.precision
                              << " R=" << metrics.recall;
}

TEST(IncrementalLinkerTest, LinkedPairsStayOrientedAndSorted) {
  const Dataset dataset = SeedDataset(20);
  IncrementalLinker linker(TestConfig());
  ASSERT_TRUE(linker.Initialize(dataset).ok());
  linker.AddGroup("g1", {"query optimization in large databases sigmod 1999"});
  linker.AddGroup("g2", {"query optimization in large databases sigmod 1999"});
  const auto& pairs = linker.linked_pairs();
  for (const auto& [a, b] : pairs) {
    EXPECT_LT(a, b);
    EXPECT_GE(a, 0);
    EXPECT_LT(b, linker.num_groups());
  }
  EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
}

}  // namespace
}  // namespace grouplink
