#include "core/incremental.h"

#include <gtest/gtest.h>

#include "data/bibliographic_generator.h"
#include "eval/metrics.h"

namespace grouplink {
namespace {

LinkageConfig TestConfig() {
  LinkageConfig config;
  config.theta = 0.35;
  config.group_threshold = 0.2;
  return config;
}

Dataset SeedDataset(int32_t entities = 50, uint64_t seed = 77) {
  BibliographicConfig config;
  config.num_entities = entities;
  config.noise = 0.2;
  config.num_topics = 6;
  config.offtopic_word_prob = 0.5;
  config.seed = seed;
  return GenerateBibliographic(config);
}

TEST(IncrementalLinkerTest, InitializeReproducesBatchLinks) {
  const Dataset dataset = SeedDataset();
  IncrementalLinker linker(TestConfig());
  ASSERT_TRUE(linker.Initialize(dataset).ok());

  const auto batch = RunGroupLinkage(dataset, TestConfig());
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(linker.linked_pairs(), batch->linked_pairs);
  EXPECT_EQ(linker.num_groups(), dataset.num_groups());
}

TEST(IncrementalLinkerTest, InitializeRejectsInvalidDataset) {
  Dataset bad;
  Record record;
  record.id = "r";
  record.text = "orphan";
  bad.records.push_back(record);  // Record in no group.
  IncrementalLinker linker(TestConfig());
  EXPECT_FALSE(linker.Initialize(bad).ok());
}

TEST(IncrementalLinkerTest, DuplicateGroupLinksToItsTwin) {
  const Dataset dataset = SeedDataset();
  IncrementalLinker linker(TestConfig());
  ASSERT_TRUE(linker.Initialize(dataset).ok());

  // Re-add an existing group's exact record texts as a new group.
  const int32_t twin = 3;
  std::vector<std::string> texts;
  for (const int32_t r : dataset.groups[static_cast<size_t>(twin)].record_ids) {
    texts.push_back(dataset.records[static_cast<size_t>(r)].text);
  }
  const auto added = linker.AddGroup("twin", texts);
  EXPECT_EQ(added.group_index, dataset.num_groups());
  EXPECT_TRUE(std::find(added.linked_to.begin(), added.linked_to.end(), twin) !=
              added.linked_to.end());
}

TEST(IncrementalLinkerTest, UnrelatedGroupStaysUnlinked) {
  const Dataset dataset = SeedDataset();
  IncrementalLinker linker(TestConfig());
  ASSERT_TRUE(linker.Initialize(dataset).ok());
  const auto added = linker.AddGroup(
      "stranger", {"zzqx wvut completely alien nonsense", "qqqq pppp rrrr"});
  EXPECT_TRUE(added.linked_to.empty());
}

TEST(IncrementalLinkerTest, ClusterLabelsReflectNewLinks) {
  const Dataset dataset = SeedDataset();
  IncrementalLinker linker(TestConfig());
  ASSERT_TRUE(linker.Initialize(dataset).ok());

  const int32_t twin = 0;
  std::vector<std::string> texts;
  for (const int32_t r : dataset.groups[static_cast<size_t>(twin)].record_ids) {
    texts.push_back(dataset.records[static_cast<size_t>(r)].text);
  }
  const auto added = linker.AddGroup("twin", texts);
  ASSERT_FALSE(added.linked_to.empty());
  const auto labels = linker.ClusterLabels();
  ASSERT_EQ(labels.size(), static_cast<size_t>(linker.num_groups()));
  EXPECT_EQ(labels[static_cast<size_t>(added.group_index)],
            labels[static_cast<size_t>(added.linked_to.front())]);
}

TEST(IncrementalLinkerTest, StreamedGroupsRecoverHeldOutLinks) {
  // Seed with the first 70% of groups; stream the rest; evaluate the full
  // accumulated linkage against the full ground truth.
  const Dataset full = SeedDataset(60);
  const int32_t held_out_start = full.num_groups() * 7 / 10;

  // Rebuild a self-contained seed dataset from the kept groups.
  Dataset seed;
  for (int32_t g = 0; g < held_out_start; ++g) {
    Group group = full.groups[static_cast<size_t>(g)];
    Group rebased;
    rebased.id = group.id;
    rebased.label = group.label;
    for (const int32_t r : group.record_ids) {
      rebased.record_ids.push_back(static_cast<int32_t>(seed.records.size()));
      seed.records.push_back(full.records[static_cast<size_t>(r)]);
    }
    seed.groups.push_back(std::move(rebased));
    seed.group_entities.push_back(full.group_entities[static_cast<size_t>(g)]);
  }
  ASSERT_TRUE(seed.Validate().ok());

  IncrementalLinker linker(TestConfig());
  ASSERT_TRUE(linker.Initialize(seed).ok());
  for (int32_t g = held_out_start; g < full.num_groups(); ++g) {
    std::vector<std::string> texts;
    for (const int32_t r : full.groups[static_cast<size_t>(g)].record_ids) {
      texts.push_back(full.records[static_cast<size_t>(r)].text);
    }
    const auto added =
        linker.AddGroup(full.groups[static_cast<size_t>(g)].label, texts);
    EXPECT_EQ(added.group_index, g);
  }

  // Group indexes line up with `full` by construction, so evaluate
  // directly against its ground truth.
  const PairMetrics metrics = EvaluatePairs(linker.linked_pairs(), full.TruePairs());
  EXPECT_GT(metrics.f1, 0.85) << "P=" << metrics.precision
                              << " R=" << metrics.recall;
}

TEST(IncrementalLinkerTest, LinkedPairsStayOriented) {
  const Dataset dataset = SeedDataset(20);
  IncrementalLinker linker(TestConfig());
  ASSERT_TRUE(linker.Initialize(dataset).ok());
  linker.AddGroup("g1", {"query optimization in large databases sigmod 1999"});
  linker.AddGroup("g2", {"query optimization in large databases sigmod 1999"});
  for (const auto& [a, b] : linker.linked_pairs()) {
    EXPECT_LT(a, b);
    EXPECT_GE(a, 0);
    EXPECT_LT(b, linker.num_groups());
  }
}

}  // namespace
}  // namespace grouplink
