// Planted violation: bench-exit-code. Bench mains must funnel their final
// Status through bench::ExitCode so failures become non-zero process exits.
int main() {
  return 0;
}
