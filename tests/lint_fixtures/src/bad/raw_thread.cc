// Planted violation: raw-thread. Spawning threads directly bypasses the
// ThreadPool's determinism and cancellation plumbing.
#include <thread>

namespace grouplink {

void SpawnRogueWorker() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace grouplink
