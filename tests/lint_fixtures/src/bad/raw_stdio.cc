// Planted violation: raw-stdio. Library code must report through GL_LOG or
// returned Status values, never write to the console directly.
#include <cstdio>
#include <iostream>

namespace grouplink {

void RogueLog() {
  std::cout << "progress\n";
  std::cerr << "warning\n";
  printf("done\n");
}

}  // namespace grouplink
