// Planted violation: suppression-reason. Escapes without a documented reason
// are findings themselves.
namespace grouplink {

struct Wrapper {
  Wrapper(int v) : value(v) {}  // NOLINT(runtime/explicit)
  int value;
};

}  // namespace grouplink
