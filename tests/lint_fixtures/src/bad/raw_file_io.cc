// Planted violation: raw-file-io. Durable state must go through the
// storage tier (PageFile/PageWriter) or data/record_io, never ad-hoc
// file handles that dodge checksums, atomic rename, and fault injection.
#include <cstdio>
#include <fstream>
#include <string>

namespace grouplink {

void RogueWrite(const std::string& path) {
  std::ofstream out(path);
  out << "unchecked bytes";
  std::FILE* f = fopen(path.c_str(), "a");
  if (f != nullptr) fclose(f);
}

bool RogueRead(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

}  // namespace grouplink
