// Planted violation: include-guard. The guard below does not match the
// GROUPLINK_<PATH>_H_ convention for this path (GROUPLINK_BAD_BAD_GUARD_H_).
#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

namespace grouplink {
inline int Nothing() { return 0; }
}  // namespace grouplink

#endif  // WRONG_GUARD_NAME_H
