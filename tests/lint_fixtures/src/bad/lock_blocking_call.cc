// Planted violation: blocking work performed while a gl scoped lock is
// held in the same scope. Sleeping under a mutex stalls every thread
// queued behind it; the slow work belongs outside the critical section.
#include <chrono>
#include <thread>

#include "common/mutex.h"

namespace grouplink {

struct SlowUnderLock {
  Mutex mu;
  int value GL_GUARDED_BY(mu) = 0;

  void BumpSlowly() {
    MutexLock lock(&mu);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ++value;
  }
};

}  // namespace grouplink
