// Planted violation: raw standard-library locking primitives outside
// common/mutex.h. These dodge the GL_* capability annotations, so Clang
// Thread Safety Analysis cannot see the acquire/release — the linter must
// flag both the member and the guard object.
#include <mutex>

namespace grouplink {

struct BareCounter {
  std::mutex mu;
  int value = 0;

  void Bump() {
    std::lock_guard<std::mutex> lock(mu);
    ++value;
  }
};

}  // namespace grouplink
