// Planted violation: raw intrinsics header outside the SIMD kernel /
// dispatch implementations. Must be flagged as simd-include.
#include <immintrin.h>

namespace grouplink {

int UsesRawIntrinsics() { return static_cast<int>(_mm_crc32_u8(0, 1)); }

}  // namespace grouplink
