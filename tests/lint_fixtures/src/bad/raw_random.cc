// Planted violation: raw-random. Unseeded or wall-clock-seeded randomness
// breaks experiment reproducibility.
#include <cstdlib>
#include <ctime>
#include <random>

namespace grouplink {

int RogueDraw() {
  std::random_device entropy;
  srand(static_cast<unsigned>(time(nullptr)));
  return rand() + static_cast<int>(entropy());
}

}  // namespace grouplink
