#ifndef GROUPLINK_OK_CLEAN_H_
#define GROUPLINK_OK_CLEAN_H_

// Clean fixture: correct guard, no rule hits. Comments mentioning printf(
// or std::thread must NOT be flagged — the linter strips comments first.

namespace grouplink {
inline int Identity(int v) { return v; }
}  // namespace grouplink

#endif  // GROUPLINK_OK_CLEAN_H_
