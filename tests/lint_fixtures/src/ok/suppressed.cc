// Clean fixture: each would-be violation carries a gl-lint allow with a
// reason, so the linter must report zero findings here (and count the
// suppressions).
#include <chrono>
#include <iostream>
#include <mutex>
#include <thread>

#include "common/mutex.h"

namespace grouplink {

void SanctionedUses() {
  // gl-lint: allow(raw-thread) fixture exercising the standalone-marker form
  std::thread probe([] {});
  probe.join();
  std::cout << "ok\n";  // gl-lint: allow(raw-stdio) fixture exercising the same-line form
  std::mutex bare;  // gl-lint: allow(raw-mutex) fixture; a reasoned escape from the wrapper rule
  bare.lock();
  bare.unlock();
}

void SanctionedSlowLock(Mutex* mu) {
  MutexLock lock(mu);
  // gl-lint: allow(lock-blocking-call) fixture; the lock exists to serialize this sleep
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

struct Box {
  Box(int v) : value(v) {}  // NOLINT(runtime/explicit): fixture; reasoned NOLINT is not a finding
  int value;
};

}  // namespace grouplink
