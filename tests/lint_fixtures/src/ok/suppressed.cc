// Clean fixture: each would-be violation carries a gl-lint allow with a
// reason, so the linter must report zero findings here (and count the
// suppressions).
#include <iostream>
#include <thread>

namespace grouplink {

void SanctionedUses() {
  // gl-lint: allow(raw-thread) fixture exercising the standalone-marker form
  std::thread probe([] {});
  probe.join();
  std::cout << "ok\n";  // gl-lint: allow(raw-stdio) fixture exercising the same-line form
}

struct Box {
  Box(int v) : value(v) {}  // NOLINT(runtime/explicit): fixture; reasoned NOLINT is not a finding
  int value;
};

}  // namespace grouplink
