// Planted violation: a manually acquired lock leaks past the end of the
// function (no matching Unlock on the return path).
#include "tsa_fixture.h"

namespace grouplink {
int LeakLock(AnnotatedPair& pair) {
  pair.mu.Lock();
  return pair.guarded;  // BAD: mu still held at end of function.
}
}  // namespace grouplink
