// Planted violation: calling a GL_REQUIRES(mu) *Locked() helper without
// holding the lock.
#include "tsa_fixture.h"

namespace grouplink {
void CallLockedHelperUnlocked(AnnotatedPair& pair) {
  pair.BumpLocked();  // BAD: BumpLocked requires mu.
}
}  // namespace grouplink
