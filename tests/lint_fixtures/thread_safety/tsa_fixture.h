#ifndef GROUPLINK_TESTS_LINT_FIXTURES_THREAD_SAFETY_TSA_FIXTURE_H_
#define GROUPLINK_TESTS_LINT_FIXTURES_THREAD_SAFETY_TSA_FIXTURE_H_

// Shared demo class for the thread_safety_enforced negative-compile
// harness (tests/CMakeLists.txt). Each planted-violation TU includes
// this header and breaks the lock discipline in exactly one way; the
// harness asserts that clang -Wthread-safety -Werror rejects every one
// of them, and that this header itself (plus the real annotated tree,
// via clean.cc) compiles warning-free.

#include "common/mutex.h"

namespace grouplink {

struct AnnotatedPair {
  Mutex mu;
  CondVar cv;
  int guarded GL_GUARDED_BY(mu) = 0;
  bool ready GL_GUARDED_BY(mu) = false;

  // *Locked() naming convention: caller must hold mu.
  void BumpLocked() GL_REQUIRES(mu) { ++guarded; }

  // Takes the lock itself; callers must NOT hold mu.
  void Sync() GL_EXCLUDES(mu) {
    MutexLock lock(&mu);
    ++guarded;
  }

  int Read() GL_EXCLUDES(mu) {
    MutexLock lock(&mu);
    return guarded;
  }

  void WaitUntilReady() GL_EXCLUDES(mu) {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
  }
};

}  // namespace grouplink

#endif  // GROUPLINK_TESTS_LINT_FIXTURES_THREAD_SAFETY_TSA_FIXTURE_H_
