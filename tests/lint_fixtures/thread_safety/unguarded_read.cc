// Planted violation: reading a GL_GUARDED_BY field with no lock held.
// Expected: error [-Wthread-safety-analysis] "requires holding mutex".
#include "tsa_fixture.h"

namespace grouplink {
int PeekWithoutLock(AnnotatedPair& pair) {
  return pair.guarded;  // BAD: mu not held.
}
}  // namespace grouplink
