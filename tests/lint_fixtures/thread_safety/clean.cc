// Positive control for the thread_safety_enforced harness: pulls in the
// demo fixture plus every annotated production header and uses them
// correctly. This TU must compile *clean* under -Wthread-safety -Werror
// — it proves the WILL_FAIL targets fail because of their planted
// violations, not because the fixture or the annotated tree is broken.
#include "tsa_fixture.h"

#include "common/epoch_cell.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/service.h"
#include "service/resilience/admission.h"
#include "service/resilience/circuit_breaker.h"
#include "service/resilience/supervised_service.h"
#include "storage/buffer_manager.h"

namespace grouplink {

int ReadUnderLock(AnnotatedPair& pair) {
  MutexLock lock(&pair.mu);
  pair.BumpLocked();
  return pair.guarded;
}

void SignalReady(AnnotatedPair& pair) {
  {
    MutexLock lock(&pair.mu);
    pair.ready = true;
  }
  pair.cv.SignalAll();
}

int TryThenRead(AnnotatedPair& pair) {
  if (pair.mu.TryLock()) {
    const int value = pair.guarded;
    pair.mu.Unlock();
    return value;
  }
  return pair.Read();
}

}  // namespace grouplink

int main() {
  grouplink::AnnotatedPair pair;
  grouplink::SignalReady(pair);
  pair.WaitUntilReady();
  return grouplink::ReadUnderLock(pair) == 1 ? 0 : 1;
}
