// Planted violation: waiting on a CondVar without holding the mutex it
// is bound to (UB on the underlying std::condition_variable).
#include "tsa_fixture.h"

namespace grouplink {
void WaitWithoutLock(AnnotatedPair& pair) {
  pair.cv.Wait(&pair.mu);  // BAD: Wait requires mu.
}
}  // namespace grouplink
