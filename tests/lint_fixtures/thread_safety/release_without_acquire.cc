// Planted violation: releasing a mutex that was never acquired.
#include "tsa_fixture.h"

namespace grouplink {
void ReleaseUnheld(AnnotatedPair& pair) {
  pair.mu.Unlock();  // BAD: mu is not held here.
}
}  // namespace grouplink
