// Planted violation: calling a GL_EXCLUDES(mu) function while holding mu
// (it would self-deadlock taking the lock again).
#include "tsa_fixture.h"

namespace grouplink {
void SyncWhileHolding(AnnotatedPair& pair) {
  MutexLock lock(&pair.mu);
  pair.Sync();  // BAD: Sync excludes mu.
}
}  // namespace grouplink
