// Planted violation: writing a GL_GUARDED_BY field with no lock held.
#include "tsa_fixture.h"

namespace grouplink {
void PokeWithoutLock(AnnotatedPair& pair) {
  pair.guarded = 7;  // BAD: mu not held.
}
}  // namespace grouplink
