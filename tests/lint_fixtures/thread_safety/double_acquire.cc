// Planted violation: acquiring a mutex that is already held
// (self-deadlock on a non-recursive mutex).
#include "tsa_fixture.h"

namespace grouplink {
void AcquireTwice(AnnotatedPair& pair) {
  MutexLock outer(&pair.mu);
  MutexLock inner(&pair.mu);  // BAD: mu already held.
  ++pair.guarded;
}
}  // namespace grouplink
