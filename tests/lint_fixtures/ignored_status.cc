// Compile-fail fixture for the `nodiscard_enforced` ctest (WILL_FAIL):
// dropping a Status on the floor must not compile under -Werror=unused-result.
#include "common/status.h"

namespace grouplink {

Status MightFail() { return Status::Ok(); }

void Caller() {
  MightFail();  // Discarded [[nodiscard]] Status — the point of the test.
}

}  // namespace grouplink
