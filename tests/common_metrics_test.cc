#include "common/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace grouplink {
namespace {

// A leading unique prefix keeps these tests from colliding with the
// pipeline's own metric names in the shared default registry.
constexpr char kPrefix[] = "test.metrics.";

std::string Name(const std::string& suffix) { return kPrefix + suffix; }

TEST(CounterTest, IncrementAndValue) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(CounterTest, DisabledIncrementsAreDropped) {
  Counter counter;
  SetMetricsEnabled(false);
  counter.Increment(100);
  SetMetricsEnabled(true);
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment(5);
  EXPECT_EQ(counter.Value(), 5u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge gauge;
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);
  gauge.Add(1.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 4.0);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

TEST(HistogramTest, ObservationsLandInBucketsByUpperBound) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(0.5);  // <= 1
  histogram.Observe(1.0);  // Boundary values count as <= the bound.
  histogram.Observe(3.0);  // (2, 4]
  histogram.Observe(9.0);  // +inf overflow.
  const Histogram::Snapshot snapshot = histogram.TakeSnapshot();
  ASSERT_EQ(snapshot.bounds.size(), 3u);
  ASSERT_EQ(snapshot.counts.size(), 4u);
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.counts[1], 0u);
  EXPECT_EQ(snapshot.counts[2], 1u);
  EXPECT_EQ(snapshot.counts[3], 1u);
  EXPECT_EQ(snapshot.count, 4u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 13.5);
}

TEST(HistogramTest, DefaultDecadeLadder) {
  Histogram histogram;
  const Histogram::Snapshot snapshot = histogram.TakeSnapshot();
  ASSERT_FALSE(snapshot.bounds.empty());
  EXPECT_DOUBLE_EQ(snapshot.bounds.front(), 1e-6);
  EXPECT_DOUBLE_EQ(snapshot.bounds.back(), 1e3);
}

TEST(MetricsRegistryTest, GetOrCreateReturnsSameInstance) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  Counter& a = registry.CounterRef(Name("same"));
  Counter& b = registry.CounterRef(Name("same"));
  EXPECT_EQ(&a, &b);
  Gauge& g1 = registry.GaugeRef(Name("gauge"));
  Gauge& g2 = registry.GaugeRef(Name("gauge"));
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = registry.HistogramRef(Name("hist"), {1.0, 2.0});
  Histogram& h2 = registry.HistogramRef(Name("hist"));
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, ResetAllZeroesButKeepsReferencesValid) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  Counter& counter = registry.CounterRef(Name("reset"));
  counter.Increment(7);
  registry.ResetAll();
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment(3);  // The reference must still point at the metric.
  EXPECT_EQ(registry.Snapshot().counters.at(Name("reset")), 3u);
}

TEST(MetricsRegistryTest, SnapshotCapturesAllKinds) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.CounterRef(Name("snap.counter")).Increment(11);
  registry.GaugeRef(Name("snap.gauge")).Set(0.5);
  registry.HistogramRef(Name("snap.hist"), {1.0}).Observe(0.25);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at(Name("snap.counter")), 11u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at(Name("snap.gauge")), 0.5);
  EXPECT_EQ(snapshot.histograms.at(Name("snap.hist")).count, 1u);
}

TEST(MetricsRegistryTest, SnapshotJsonHasExpectedShape) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.CounterRef(Name("json.counter")).Increment();
  registry.HistogramRef(Name("json.hist"), {2.0}).Observe(1.0);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find(Name("json.counter")), std::string::npos);
  EXPECT_NE(json.find("\"le\""), std::string::npos);
  EXPECT_NE(json.find("\"inf\""), std::string::npos);
}

}  // namespace
}  // namespace grouplink
