#include "common/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

namespace grouplink {
namespace {

// Every test clears the process-wide tracer up front; other suites in
// this binary do not trace, so the state is ours alone.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::Default().Clear(); }
  void TearDown() override {
    SetTracingEnabled(true);
    Tracer::Default().Clear();
  }
};

TEST_F(TraceTest, NestedSpansBecomeChildrenOfOneRoot) {
  {
    GL_TRACE_SPAN("outer");
    {
      GL_TRACE_SPAN("inner");
    }
    {
      GL_TRACE_SPAN("sibling");
    }
  }
  EXPECT_EQ(Tracer::Default().num_roots(), 1u);
  const std::string text = Tracer::Default().ToText();
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("inner"), std::string::npos);
  EXPECT_NE(text.find("sibling"), std::string::npos);
}

TEST_F(TraceTest, SequentialTopLevelSpansAreSeparateRoots) {
  {
    GL_TRACE_SPAN("first");
  }
  {
    GL_TRACE_SPAN("second");
  }
  EXPECT_EQ(Tracer::Default().num_roots(), 2u);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  SetTracingEnabled(false);
  {
    GL_TRACE_SPAN("ghost");
  }
  SetTracingEnabled(true);
  EXPECT_EQ(Tracer::Default().num_roots(), 0u);
  EXPECT_EQ(Tracer::Default().ToText().find("ghost"), std::string::npos);
}

TEST_F(TraceTest, WorkerThreadSpansStartTheirOwnRoot) {
  {
    GL_TRACE_SPAN("main_root");
    std::thread worker([] { GL_TRACE_SPAN("worker_root"); });
    worker.join();
  }
  // The worker's span must not attach under the main thread's open span.
  EXPECT_EQ(Tracer::Default().num_roots(), 2u);
  const std::string json = Tracer::Default().ToJson();
  EXPECT_NE(json.find("\"main_root\""), std::string::npos);
  EXPECT_NE(json.find("\"worker_root\""), std::string::npos);
}

TEST_F(TraceTest, ClearDropsRecordedRoots) {
  {
    GL_TRACE_SPAN("gone");
  }
  ASSERT_EQ(Tracer::Default().num_roots(), 1u);
  Tracer::Default().Clear();
  EXPECT_EQ(Tracer::Default().num_roots(), 0u);
  EXPECT_EQ(Tracer::Default().dropped_roots(), 0u);
}

TEST_F(TraceTest, JsonHasSpansAndDroppedRoots) {
  {
    GL_TRACE_SPAN("alpha");
    {
      GL_TRACE_SPAN("beta");
    }
  }
  const std::string json = Tracer::Default().ToJson();
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_roots\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
  EXPECT_NE(json.find("\"seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"start_ns\""), std::string::npos);
}

TEST_F(TraceTest, RootCapDropsExcessAndCounts) {
  // One past the cap: the tracer keeps the first kMaxRoots (8192) roots
  // and counts the rest instead of growing without bound.
  for (int i = 0; i < 8193; ++i) {
    GL_TRACE_SPAN("bulk");
  }
  EXPECT_EQ(Tracer::Default().num_roots(), 8192u);
  EXPECT_EQ(Tracer::Default().dropped_roots(), 1u);
  Tracer::Default().Clear();
  EXPECT_EQ(Tracer::Default().dropped_roots(), 0u);
}

}  // namespace
}  // namespace grouplink
