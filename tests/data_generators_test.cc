#include <gtest/gtest.h>

#include <set>

#include "data/bibliographic_generator.h"
#include "data/household_generator.h"
#include "data/name_corpus.h"

namespace grouplink {
namespace {

// ---------------------------------------------------------------- Corpora.

TEST(NameCorpusTest, NonEmptyAndLowercase) {
  for (const auto* corpus : {&FirstNames(), &LastNames(), &TitleWords(),
                             &VenueNames(), &StreetNames(), &CityNames()}) {
    EXPECT_GT(corpus->size(), 30u);
    for (const std::string_view word : *corpus) {
      EXPECT_FALSE(word.empty());
      for (const char c : word) {
        EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)) || c == ' ')
            << word;
      }
    }
  }
}

// --------------------------------------------------------- Bibliographic.

TEST(BibliographicTest, ProducesValidDataset) {
  BibliographicConfig config;
  config.num_entities = 50;
  const Dataset dataset = GenerateBibliographic(config);
  EXPECT_TRUE(dataset.Validate().ok());
  EXPECT_GT(dataset.num_groups(), 0);
  EXPECT_EQ(dataset.group_entities.size(), static_cast<size_t>(dataset.num_groups()));
}

TEST(BibliographicTest, DeterministicForSeed) {
  BibliographicConfig config;
  config.num_entities = 30;
  config.seed = 77;
  const Dataset a = GenerateBibliographic(config);
  const Dataset b = GenerateBibliographic(config);
  ASSERT_EQ(a.num_records(), b.num_records());
  ASSERT_EQ(a.num_groups(), b.num_groups());
  for (int32_t r = 0; r < a.num_records(); ++r) {
    EXPECT_EQ(a.records[static_cast<size_t>(r)].text,
              b.records[static_cast<size_t>(r)].text);
  }
  EXPECT_EQ(a.group_entities, b.group_entities);
}

TEST(BibliographicTest, DifferentSeedsDiffer) {
  BibliographicConfig config;
  config.num_entities = 30;
  config.seed = 1;
  const Dataset a = GenerateBibliographic(config);
  config.seed = 2;
  const Dataset b = GenerateBibliographic(config);
  bool any_difference = a.num_records() != b.num_records();
  for (int32_t r = 0; !any_difference && r < a.num_records(); ++r) {
    any_difference = a.records[static_cast<size_t>(r)].text !=
                     b.records[static_cast<size_t>(r)].text;
  }
  EXPECT_TRUE(any_difference);
}

TEST(BibliographicTest, GroupCountsRespectConfig) {
  BibliographicConfig config;
  config.num_entities = 100;
  config.singleton_entity_fraction = 0.0;
  config.min_groups_per_entity = 2;
  config.max_groups_per_entity = 3;
  const Dataset dataset = GenerateBibliographic(config);
  std::map<int32_t, int> groups_per_entity;
  for (const int32_t entity : dataset.group_entities) ++groups_per_entity[entity];
  EXPECT_EQ(groups_per_entity.size(), 100u);
  for (const auto& [entity, count] : groups_per_entity) {
    EXPECT_GE(count, 2);
    EXPECT_LE(count, 3);
  }
}

TEST(BibliographicTest, AllSingletonsWhenFractionOne) {
  BibliographicConfig config;
  config.num_entities = 40;
  config.singleton_entity_fraction = 1.0;
  const Dataset dataset = GenerateBibliographic(config);
  EXPECT_EQ(dataset.num_groups(), 40);
  EXPECT_TRUE(dataset.TruePairs().empty());
}

TEST(BibliographicTest, GroupSizesWithinCitationBounds) {
  BibliographicConfig config;
  config.num_entities = 50;
  config.min_citations_per_entity = 5;
  config.max_citations_per_entity = 10;
  config.group_citation_fraction = 0.5;
  const Dataset dataset = GenerateBibliographic(config);
  for (int32_t g = 0; g < dataset.num_groups(); ++g) {
    EXPECT_GE(dataset.GroupSize(g), 2);   // ceil(0.5 * 5) with rounding.
    EXPECT_LE(dataset.GroupSize(g), 10);  // Never more than the pool.
  }
}

TEST(BibliographicTest, ZeroNoiseSharedCitationsIdentical) {
  BibliographicConfig config;
  config.num_entities = 20;
  config.noise = 0.0;
  config.singleton_entity_fraction = 0.0;
  config.group_citation_fraction = 1.0;  // Every group copies the full pool.
  const Dataset dataset = GenerateBibliographic(config);
  // Groups of the same entity must contain identical record-text multisets.
  std::map<int32_t, std::multiset<std::string>> texts_by_entity;
  for (int32_t g = 0; g < dataset.num_groups(); ++g) {
    std::multiset<std::string> texts;
    for (const int32_t r : dataset.groups[static_cast<size_t>(g)].record_ids) {
      texts.insert(dataset.records[static_cast<size_t>(r)].text);
    }
    const int32_t entity = dataset.group_entities[static_cast<size_t>(g)];
    auto [it, inserted] = texts_by_entity.emplace(entity, texts);
    if (!inserted) {
      EXPECT_EQ(it->second, texts) << "entity " << entity;
    }
  }
}

TEST(BibliographicTest, NoiseChangesTexts) {
  BibliographicConfig clean;
  clean.num_entities = 20;
  clean.noise = 0.0;
  BibliographicConfig noisy = clean;
  noisy.noise = 0.5;
  const Dataset a = GenerateBibliographic(clean);
  const Dataset b = GenerateBibliographic(noisy);
  int differing = 0;
  const int32_t n = std::min(a.num_records(), b.num_records());
  for (int32_t r = 0; r < n; ++r) {
    if (a.records[static_cast<size_t>(r)].text !=
        b.records[static_cast<size_t>(r)].text) {
      ++differing;
    }
  }
  EXPECT_GT(differing, n / 4);
}

// ------------------------------------------------------------- Household.

TEST(HouseholdTest, ProducesValidDataset) {
  HouseholdConfig config;
  config.num_households = 50;
  const Dataset dataset = GenerateHouseholds(config);
  EXPECT_TRUE(dataset.Validate().ok());
  EXPECT_EQ(dataset.group_entities.size(), static_cast<size_t>(dataset.num_groups()));
}

TEST(HouseholdTest, DeterministicForSeed) {
  HouseholdConfig config;
  config.num_households = 30;
  config.seed = 5;
  const Dataset a = GenerateHouseholds(config);
  const Dataset b = GenerateHouseholds(config);
  ASSERT_EQ(a.num_records(), b.num_records());
  for (int32_t r = 0; r < a.num_records(); ++r) {
    EXPECT_EQ(a.records[static_cast<size_t>(r)].text,
              b.records[static_cast<size_t>(r)].text);
  }
}

TEST(HouseholdTest, AtMostTwoGroupsPerHousehold) {
  HouseholdConfig config;
  config.num_households = 100;
  const Dataset dataset = GenerateHouseholds(config);
  std::map<int32_t, int> per_household;
  for (const int32_t entity : dataset.group_entities) ++per_household[entity];
  for (const auto& [entity, count] : per_household) {
    EXPECT_GE(count, 1);
    EXPECT_LE(count, 2);
  }
}

TEST(HouseholdTest, BothSnapshotFractionControlsTruePairs) {
  HouseholdConfig all;
  all.num_households = 80;
  all.both_snapshots_fraction = 1.0;
  EXPECT_EQ(GenerateHouseholds(all).TruePairs().size(), 80u);

  HouseholdConfig none;
  none.num_households = 80;
  none.both_snapshots_fraction = 0.0;
  EXPECT_TRUE(GenerateHouseholds(none).TruePairs().empty());
}

TEST(HouseholdTest, MemberCountsWithinBounds) {
  HouseholdConfig config;
  config.num_households = 60;
  config.min_members = 3;
  config.max_members = 5;
  config.move_out_prob = 0.0;
  config.move_in_rate = 0.0;
  const Dataset dataset = GenerateHouseholds(config);
  for (int32_t g = 0; g < dataset.num_groups(); ++g) {
    EXPECT_GE(dataset.GroupSize(g), 3);
    EXPECT_LE(dataset.GroupSize(g), 5);
  }
}

}  // namespace
}  // namespace grouplink
