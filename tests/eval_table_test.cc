#include "eval/table.h"

#include <gtest/gtest.h>

namespace grouplink {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("-+-"), std::string::npos);
}

TEST(TextTableTest, ColumnsAligned) {
  TextTable table({"h", "x"});
  table.AddRow({"longer", "1"});
  const std::string out = table.ToString();
  // Every line has the same position for the separator.
  size_t position = std::string::npos;
  size_t start = 0;
  while (start < out.size()) {
    const size_t end = out.find('\n', start);
    const std::string line = out.substr(start, end - start);
    size_t bar = line.find('|');
    if (bar == std::string::npos) bar = line.find('+');
    if (position == std::string::npos) {
      position = bar;
    } else {
      EXPECT_EQ(bar, position) << line;
    }
    start = end + 1;
  }
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_NE(table.ToString().find("only"), std::string::npos);
}

TEST(TextTableTest, EmptyTableStillRendersHeader) {
  TextTable table({"col"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("col"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(TextTableTest, EndsWithNewline) {
  TextTable table({"x"});
  table.AddRow({"1"});
  const std::string out = table.ToString();
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), '\n');
}

}  // namespace
}  // namespace grouplink
