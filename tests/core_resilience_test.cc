// Tentpole proofs of the resilient execution layer (DESIGN.md §8):
//   1. cancellation preempts scoring within one task quantum;
//   2. deadline- and fault-stopped runs return *valid partial* results
//      whose links are a subset of the unconstrained run's;
//   3. budget-degraded runs are bit-identical across thread counts and
//      repeats (shedding is decided by the work items, never by timing);
//   4. the streaming linker survives injected faults mid-batch and a
//      later Refresh() recovers exactly the batch engine's link set.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/execution_context.h"
#include "common/fault_injection.h"
#include "core/incremental.h"
#include "core/linkage_engine.h"
#include "data/bibliographic_generator.h"

namespace grouplink {
namespace {

using Pairs = std::vector<std::pair<int32_t, int32_t>>;

Dataset MakeCorpus(int32_t entities, uint64_t seed) {
  BibliographicConfig config;
  config.num_entities = entities;
  config.noise = 0.25;
  config.num_topics = 5;
  config.offtopic_word_prob = 0.5;
  config.seed = seed;
  return GenerateBibliographic(config);
}

LinkageConfig TestConfig(int32_t threads = 1, bool edge_join = false) {
  LinkageConfig config;
  config.theta = 0.35;
  config.group_threshold = 0.2;
  config.num_threads = threads;
  if (edge_join) {
    config.use_edge_join = true;
    config.join_jaccard = 0.2;
  }
  return config;
}

Pairs Sorted(Pairs pairs) {
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

bool IsSubset(const Pairs& sub, const Pairs& super) {
  const Pairs a = Sorted(sub);
  const Pairs b = Sorted(super);
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

LinkageResult RunLinkage(const Dataset& dataset, const LinkageConfig& config) {
  auto engine_or = LinkageEngine::Create(&dataset, config);
  EXPECT_TRUE(engine_or.ok());
  LinkageEngine& engine = *engine_or;
  return engine.Run();
}

// A degraded result must still be structurally complete: every group gets
// a cluster label, and the report carries the degradation facts.
void ExpectValidPartial(const LinkageResult& result, const Dataset& dataset,
                        const char* expected_reason) {
  EXPECT_EQ(result.group_cluster.size(),
            static_cast<size_t>(dataset.num_groups()));
  EXPECT_GE(result.num_clusters, 1u);
  EXPECT_TRUE(result.report().degraded);
  EXPECT_EQ(result.report().stop_reason, expected_reason);
}

// --- Proof 1: cancellation stops within one task quantum. ----------------

TEST(ResilienceTest, CancellationPreemptsScoringAndReportsCause) {
  const Dataset dataset = MakeCorpus(20, 42);
  const LinkageResult full = RunLinkage(dataset, TestConfig());
  ASSERT_GT(full.linked_pairs.size(), 0u);
  ASSERT_GT(full.report().StageCounter("score", "candidates"), 0);

  LinkageConfig config = TestConfig();
  config.cancellation.Cancel();  // Cancelled before Run even starts.
  const LinkageResult result = RunLinkage(dataset, config);

  ExpectValidPartial(result, dataset, "cancelled");
  // Every candidate observed the stop on its pre-iteration poll, so the
  // whole score stage was shed — nothing linked, everything skipped.
  EXPECT_EQ(result.linked_pairs.size(), 0u);
  EXPECT_GT(result.report().StageCounter("score", "skipped"), 0);
  EXPECT_TRUE(IsSubset(result.linked_pairs, full.linked_pairs));
}

TEST(ResilienceTest, MidRunCancellationShedsOnlyTheRemainder) {
  // Cancel from inside the similarity callback after a fixed number of
  // evaluations: the pairs decided before the trip stay decided, the rest
  // are shed, and the output is a subset of the unconstrained run's.
  const Dataset dataset = MakeCorpus(20, 42);
  auto reference_or = LinkageEngine::Create(&dataset, TestConfig());
  ASSERT_TRUE(reference_or.ok());
  LinkageEngine& reference = *reference_or;
  const LinkageResult full = reference.Run();

  LinkageConfig config = TestConfig();
  CancellationToken token = config.cancellation;
  auto engine_or = LinkageEngine::Create(&dataset, config);
  ASSERT_TRUE(engine_or.ok());
  LinkageEngine& engine = *engine_or;
  int evaluations = 0;
  const LinkageResult result = engine.Run([&](int32_t a, int32_t b) {
    if (++evaluations == 200) token.Cancel();
    return engine.DefaultRecordSimilarity(a, b);
  });

  ExpectValidPartial(result, dataset, "cancelled");
  EXPECT_TRUE(IsSubset(result.linked_pairs, full.linked_pairs));
}

// --- Proof 2: deadline and fault stops yield valid partial subsets. ------

TEST(ResilienceTest, TinyWallClockDeadlineDegradesGracefully) {
  const Dataset dataset = MakeCorpus(20, 42);
  const LinkageResult full = RunLinkage(dataset, TestConfig());

  LinkageConfig config = TestConfig();
  config.deadline_ms = 0.001;  // Expires before the first scoring poll.
  const LinkageResult result = RunLinkage(dataset, config);

  ExpectValidPartial(result, dataset, "deadline");
  EXPECT_TRUE(IsSubset(result.linked_pairs, full.linked_pairs));
}

TEST(ResilienceTest, InjectedDeadlineFaultYieldsPartialSubset) {
  // The execution.deadline fault makes the "deadline expired mid-run"
  // case deterministic: it trips on the 26th stop poll, every time.
  const Dataset dataset = MakeCorpus(20, 42);
  for (const bool edge_join : {false, true}) {
    const LinkageResult full = RunLinkage(dataset, TestConfig(1, edge_join));
    ASSERT_GT(full.linked_pairs.size(), 0u);

    ScopedFaultClear clear;
    ASSERT_TRUE(FaultInjector::Default()
                    .ArmFromSpec("execution.deadline:after=25")
                    .ok());
    const LinkageResult result = RunLinkage(dataset, TestConfig(1, edge_join));

    ExpectValidPartial(result, dataset, "fault-injected");
    EXPECT_LT(result.linked_pairs.size(), full.linked_pairs.size());
    EXPECT_TRUE(IsSubset(result.linked_pairs, full.linked_pairs))
        << "edge_join=" << edge_join;
  }
}

// --- Proof 3: budget degradation is deterministic. -----------------------

TEST(ResilienceTest, CandidateBudgetDegradesDeterministically) {
  const Dataset dataset = MakeCorpus(20, 42);
  for (const bool edge_join : {false, true}) {
    const LinkageResult full = RunLinkage(dataset, TestConfig(1, edge_join));
    const int64_t total = full.report().StageCounter(
        "score", edge_join ? "group_pairs" : "candidates");
    ASSERT_GT(total, 5) << "workload too small to exercise the cap";

    Pairs first_links;
    std::vector<size_t> first_clusters;
    for (const int32_t threads : {1, 2, 7}) {
      LinkageConfig config = TestConfig(threads, edge_join);
      config.max_candidate_pairs = 5;
      const LinkageResult result = RunLinkage(dataset, config);

      EXPECT_TRUE(result.report().degraded);
      EXPECT_EQ(result.report().stop_reason, "")
          << "a budget trip sheds work but is not a stop";
      EXPECT_EQ(result.report().StageCounter("score", "shed_candidates"),
                total - 5);
      EXPECT_TRUE(IsSubset(result.linked_pairs, full.linked_pairs));
      if (threads == 1) {
        first_links = result.linked_pairs;
        first_clusters = result.group_cluster;
        // Repeat at the same thread count: bit-identical.
        const LinkageResult again = RunLinkage(dataset, config);
        EXPECT_EQ(again.linked_pairs, first_links);
      } else {
        EXPECT_EQ(result.linked_pairs, first_links)
            << "threads=" << threads << " edge_join=" << edge_join;
        EXPECT_EQ(result.group_cluster, first_clusters);
      }
    }
    // The BM cap keeps the *best* pairs by upper bound, so a cap of 5
    // still links something on this workload.
    EXPECT_GT(first_links.size(), 0u) << "edge_join=" << edge_join;
  }
}

TEST(ResilienceTest, MatcherBudgetFallsBackToSoundBounds) {
  const Dataset dataset = MakeCorpus(20, 42);
  // Disabling the LB accept forces every unpruned pair through refine, so
  // the matcher budget is guaranteed to trip.
  LinkageConfig base = TestConfig();
  base.use_lower_bound_accept = false;
  const LinkageResult full = RunLinkage(dataset, base);
  ASSERT_GT(full.report().StageCounter("score", "refined"), 0);

  Pairs first_links;
  for (const int32_t threads : {1, 3}) {
    LinkageConfig config = base;
    config.num_threads = threads;
    config.max_matcher_cost = 1;  // Every |g1|*|g2| exceeds this.
    const LinkageResult result = RunLinkage(dataset, config);

    EXPECT_TRUE(result.report().degraded);
    EXPECT_EQ(result.report().StageCounter("score", "degraded_refines"),
              full.report().StageCounter("score", "refined"));
    // The fallback accepts only on the sound lower bound, so it can
    // under-link but never over-link.
    EXPECT_TRUE(IsSubset(result.linked_pairs, full.linked_pairs));
    if (threads == 1) {
      first_links = result.linked_pairs;
    } else {
      EXPECT_EQ(result.linked_pairs, first_links);
    }
  }
}

// --- Proof 4: streaming survives faults; Refresh recovers batch. ---------

TEST(ResilienceTest, StreamingSurvivesInjectedFaultAndRefreshRecovers) {
  const Dataset full = MakeCorpus(24, 7);

  // Seed with the first half; the rest arrives as one batch while the
  // fail-task fault is dropping every parallel scoring chunk.
  Dataset seed;
  std::vector<GroupArrival> arrivals;
  Dataset accumulated;  // What a batch engine sees after all arrivals.
  for (int32_t g = 0; g < full.num_groups(); ++g) {
    const Group& group = full.groups[static_cast<size_t>(g)];
    GroupArrival arrival;
    arrival.label = group.label;
    for (const int32_t r : group.record_ids) {
      arrival.record_texts.push_back(full.records[static_cast<size_t>(r)].text);
    }
    if (g < full.num_groups() / 2) {
      Group rebased;
      rebased.id = group.id;
      rebased.label = group.label;
      for (const std::string& text : arrival.record_texts) {
        rebased.record_ids.push_back(static_cast<int32_t>(seed.records.size()));
        Record record;
        record.id = "r" + std::to_string(seed.records.size());
        record.text = text;
        seed.records.push_back(std::move(record));
      }
      seed.groups.push_back(std::move(rebased));
    } else {
      arrivals.push_back(std::move(arrival));
    }
  }
  ASSERT_TRUE(seed.Validate().ok());
  ASSERT_FALSE(arrivals.empty());
  // The accumulated corpus: seed records/groups, then arrivals in order —
  // exactly the linker's id spaces (no tombstones in this scenario).
  accumulated = seed;
  for (const GroupArrival& arrival : arrivals) {
    Group group;
    group.id = "g" + std::to_string(accumulated.groups.size());
    group.label = arrival.label;
    for (const std::string& text : arrival.record_texts) {
      group.record_ids.push_back(
          static_cast<int32_t>(accumulated.records.size()));
      Record record;
      record.id = "r" + std::to_string(accumulated.records.size());
      record.text = text;
      accumulated.records.push_back(std::move(record));
    }
    accumulated.groups.push_back(std::move(group));
  }
  ASSERT_TRUE(accumulated.Validate().ok());

  IncrementalLinker linker(TestConfig(2));
  ASSERT_TRUE(linker.Initialize(seed).ok());
  const Pairs seeded_links = linker.linked_pairs();

  ScopedFaultClear clear;
  FaultInjector::Default().Arm(faults::kFailTask, FaultSpec{});
  const auto results = linker.AddGroups(arrivals);
  FaultInjector::Default().DisarmAll();

  // The batch survived: every arrival got a slot, every scoring pass was
  // shed, and each result says so.
  ASSERT_EQ(results.size(), arrivals.size());
  for (const auto& result : results) {
    EXPECT_TRUE(result.degraded);
    EXPECT_TRUE(result.linked_to.empty());
  }
  EXPECT_EQ(linker.num_alive_groups(), accumulated.num_groups());
  // No scoring ran, so only the seed's links exist — a subset of batch.
  EXPECT_EQ(linker.linked_pairs(), seeded_links);

  // With the fault gone, one refresh recovers the batch link set exactly.
  linker.Refresh();
  const auto batch = RunGroupLinkage(accumulated, linker.engine_config());
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(linker.linked_pairs(), batch->linked_pairs);
}

TEST(ResilienceTest, StreamingCandidateCapMarksArrivalsDegraded) {
  const Dataset full = MakeCorpus(24, 7);
  Dataset seed;
  std::vector<GroupArrival> arrivals;
  for (int32_t g = 0; g < full.num_groups(); ++g) {
    const Group& group = full.groups[static_cast<size_t>(g)];
    GroupArrival arrival;
    arrival.label = group.label;
    for (const int32_t r : group.record_ids) {
      arrival.record_texts.push_back(full.records[static_cast<size_t>(r)].text);
    }
    if (g < full.num_groups() / 2) {
      Group rebased;
      rebased.id = group.id;
      rebased.label = group.label;
      for (const std::string& text : arrival.record_texts) {
        rebased.record_ids.push_back(static_cast<int32_t>(seed.records.size()));
        Record record;
        record.id = "r" + std::to_string(seed.records.size());
        record.text = text;
        seed.records.push_back(std::move(record));
      }
      seed.groups.push_back(std::move(rebased));
    } else {
      arrivals.push_back(std::move(arrival));
    }
  }
  ASSERT_TRUE(seed.Validate().ok());

  // An unconstrained linker tells us how many candidates arrivals see.
  IncrementalLinker reference(TestConfig());
  ASSERT_TRUE(reference.Initialize(seed).ok());
  const auto unconstrained = reference.AddGroups(arrivals);
  size_t max_candidates = 0;
  for (const auto& result : unconstrained) {
    max_candidates = std::max(max_candidates, result.candidates);
  }
  ASSERT_GT(max_candidates, 1u) << "workload too small to exercise the cap";

  LinkageConfig capped = TestConfig();
  capped.max_candidate_pairs = 1;
  IncrementalLinker linker(capped);
  ASSERT_TRUE(linker.Initialize(seed).ok());
  const auto results = linker.AddGroups(arrivals);
  bool any_degraded = false;
  for (size_t k = 0; k < results.size(); ++k) {
    if (unconstrained[k].candidates > 1) {
      EXPECT_TRUE(results[k].degraded);
      any_degraded = true;
    }
    EXPECT_LE(results[k].candidates, std::max<size_t>(
                                         1u, unconstrained[k].candidates));
  }
  EXPECT_TRUE(any_degraded);
  // A persistent budget constrains Refresh too (it is a config limit, not
  // a transient fault), so the contract after refreshing both linkers is
  // the subset relation, not equality: capping only removes links.
  reference.Refresh();
  linker.Refresh();
  EXPECT_TRUE(IsSubset(linker.linked_pairs(), reference.linked_pairs()));
}

}  // namespace
}  // namespace grouplink
