// LinkageService suite: unified configuration validation (message-level),
// single-phase Create, snapshot publication semantics, and the async
// clone-replay-swap refresh — whose final writer state must be identical
// to a stop-the-world refresh at the same cut followed by the same
// mutations, and whose published epochs must each be batch-equivalent.
#include "core/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/linkage_engine.h"
#include "data/bibliographic_generator.h"

namespace grouplink {
namespace {

LinkageConfig EngineConfig() {
  LinkageConfig config;
  config.theta = 0.35;
  config.group_threshold = 0.2;
  return config;
}

ServiceConfig TestService(bool async = true) {
  ServiceConfig config;
  config.engine = EngineConfig();
  config.async_refresh = async;
  return config;
}

Dataset MakeCorpus(int32_t entities, uint64_t seed) {
  BibliographicConfig config;
  config.num_entities = entities;
  config.noise = 0.25;
  config.num_topics = 5;
  config.offtopic_word_prob = 0.5;
  config.seed = seed;
  return GenerateBibliographic(config);
}

std::vector<std::string> GroupTexts(const Dataset& dataset, int32_t group) {
  std::vector<std::string> texts;
  for (const int32_t r : dataset.groups[static_cast<size_t>(group)].record_ids) {
    texts.push_back(dataset.records[static_cast<size_t>(r)].text);
  }
  return texts;
}

// Splits `full` into a seed prefix dataset and the remaining arrivals.
void Split(const Dataset& full, int32_t seed_groups, Dataset* seed,
           std::vector<GroupArrival>* arrivals) {
  for (int32_t g = 0; g < full.num_groups(); ++g) {
    if (g < seed_groups) {
      Group rebased;
      rebased.id = full.groups[static_cast<size_t>(g)].id;
      rebased.label = full.groups[static_cast<size_t>(g)].label;
      for (const int32_t r : full.groups[static_cast<size_t>(g)].record_ids) {
        rebased.record_ids.push_back(static_cast<int32_t>(seed->records.size()));
        seed->records.push_back(full.records[static_cast<size_t>(r)]);
      }
      seed->groups.push_back(std::move(rebased));
    } else {
      arrivals->push_back(
          {full.groups[static_cast<size_t>(g)].label, GroupTexts(full, g)});
    }
  }
  ASSERT_TRUE(seed->Validate().ok());
}

// --- Unified validation: one entry point, struct-named messages. --------

TEST(ServiceConfigTest, ValidateNamesTheOffendingStruct) {
  {
    ServiceConfig config = TestService();
    config.engine.theta = 1.5;
    const Status status = config.Validate();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.message(), "LinkageConfig: theta must be in (0, 1]");
  }
  {
    ServiceConfig config = TestService();
    config.streaming.refresh_every_n_groups = -1;
    const Status status = config.Validate();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.message(),
              "StreamingConfig: refresh_every_n_groups must be >= 0");
  }
  {
    ServiceConfig config = TestService();
    config.streaming.refresh_on_oov_ratio = 2.0;
    const Status status = config.Validate();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.message(),
              "StreamingConfig: refresh_on_oov_ratio must be in [0, 1]");
  }
  {
    ServiceConfig config = TestService();
    config.default_query_deadline_ms = -1.0;
    const Status status = config.Validate();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.message(),
              "ServiceConfig: default_query_deadline_ms must be finite and >= 0");
  }
  {
    ServiceConfig config = TestService();
    config.default_query_max_candidates = -5;
    const Status status = config.Validate();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.message(),
              "ServiceConfig: default_query_max_candidates must be >= 0");
  }
  {
    ServiceConfig config = TestService();
    config.default_query_max_matcher_cost = -1;
    const Status status = config.Validate();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.message(),
              "ServiceConfig: default_query_max_matcher_cost must be >= 0");
  }
  EXPECT_TRUE(TestService().Validate().ok());
}

TEST(ServiceConfigTest, LinkerCreateUsesTheSameUnifiedEntryPoint) {
  const Dataset dataset = MakeCorpus(10, 1);
  LinkageConfig bad_engine = EngineConfig();
  bad_engine.group_threshold = 0.0;
  const auto engine_err = IncrementalLinker::Create(dataset, bad_engine);
  ASSERT_FALSE(engine_err.ok());
  EXPECT_EQ(engine_err.status().message(),
            "LinkageConfig: group_threshold must be in (0, 1]");

  StreamingConfig bad_streaming;
  bad_streaming.refresh_on_oov_ratio = -0.1;
  const auto streaming_err =
      IncrementalLinker::Create(dataset, EngineConfig(), bad_streaming);
  ASSERT_FALSE(streaming_err.ok());
  EXPECT_EQ(streaming_err.status().message(),
            "StreamingConfig: refresh_on_oov_ratio must be in [0, 1]");
}

TEST(ServiceConfigTest, CreateRejectsInvalidConfig) {
  const Dataset dataset = MakeCorpus(10, 2);
  ServiceConfig config = TestService();
  config.engine.num_threads = 0;
  const auto service = LinkageService::Create(dataset, config);
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().message(),
            "LinkageConfig: num_threads must be >= 1");
}

// --- Create + serving basics. -------------------------------------------

TEST(LinkageServiceTest, CreatePublishesTheSeedEpochImmediately) {
  const Dataset dataset = MakeCorpus(25, 7);
  auto service = LinkageService::Create(dataset, TestService());
  ASSERT_TRUE(service.ok());

  const auto snapshot = service->snapshot();
  EXPECT_TRUE(snapshot->CheckConsistency());
  EXPECT_EQ(snapshot->num_groups(), dataset.num_groups());
  EXPECT_EQ(service->published_epoch(), snapshot->epoch());

  // The seed epoch is batch-equivalent from the start.
  const auto batch = RunGroupLinkage(dataset, snapshot->engine_config());
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(snapshot->linked_pairs(), batch->linked_pairs);

  // Queries answer from the published epoch.
  const auto query = service->LinkQuery({"probe", GroupTexts(dataset, 0)});
  EXPECT_EQ(query.epoch, snapshot->epoch());
  EXPECT_FALSE(query.linked_to.empty());
}

TEST(LinkageServiceTest, MutationsBecomeQueryableAtTheNextEpoch) {
  const Dataset full = MakeCorpus(25, 21);
  Dataset seed;
  std::vector<GroupArrival> arrivals;
  Split(full, full.num_groups() - 3, &seed, &arrivals);

  auto service = LinkageService::Create(seed, TestService());
  ASSERT_TRUE(service.ok());
  const int64_t epoch0 = service->published_epoch();

  const auto added = service->AddGroups(arrivals);
  ASSERT_EQ(added.size(), arrivals.size());
  // No policy configured: the published snapshot is still the seed epoch.
  EXPECT_EQ(service->published_epoch(), epoch0);
  EXPECT_EQ(service->snapshot()->num_groups(), seed.num_groups());

  service->Refresh();
  EXPECT_GT(service->published_epoch(), epoch0);
  const auto snapshot = service->snapshot();
  EXPECT_EQ(snapshot->num_groups(), full.num_groups());
  EXPECT_TRUE(snapshot->CheckConsistency());
  EXPECT_EQ(snapshot->linked_pairs(), service->linked_pairs());
}

TEST(LinkageServiceTest, QueryDefaultsComeFromTheConfig) {
  const Dataset dataset = MakeCorpus(25, 13);
  ServiceConfig config = TestService();
  config.default_query_max_candidates = 1;
  auto service = LinkageService::Create(dataset, config);
  ASSERT_TRUE(service.ok());

  const GroupArrival probe{"probe", GroupTexts(dataset, 0)};
  // Zero-valued options inherit the configured cap -> degraded.
  const auto defaulted = service->LinkQuery(probe);
  EXPECT_TRUE(defaulted.degraded);
  EXPECT_LE(defaulted.candidates, 1u);
  // Explicit options override the default.
  LinkageService::QueryOptions wide;
  wide.max_candidate_pairs = 1000000;
  const auto explicit_query = service->LinkQuery(probe, wide);
  EXPECT_FALSE(explicit_query.degraded);
  EXPECT_GT(explicit_query.candidates, 1u);
}

// --- Async refresh: clone-replay-swap equivalence. ----------------------

TEST(LinkageServiceTest, AsyncRefreshMatchesStopTheWorldExactly) {
  // Deterministic schedule: ingest half the arrivals, start an async
  // refresh at that cut, ingest the rest while the refresh runs (they go
  // to the ops log), then drain. The final writer state must equal the
  // reference linker that refreshed inline at the same cut — and the
  // published epoch must be the pure cut-point refresh.
  const Dataset full = MakeCorpus(30, 42);
  Dataset seed;
  std::vector<GroupArrival> arrivals;
  Split(full, full.num_groups() / 2, &seed, &arrivals);
  const size_t cut = arrivals.size() / 2;
  const std::vector<GroupArrival> before(arrivals.begin(),
                                         arrivals.begin() + cut);
  const std::vector<GroupArrival> after(arrivals.begin() + cut, arrivals.end());
  ASSERT_FALSE(before.empty());
  ASSERT_FALSE(after.empty());

  auto service = LinkageService::Create(seed, TestService(/*async=*/true));
  ASSERT_TRUE(service.ok());
  (void)service->AddGroups(before);
  ASSERT_TRUE(service->RefreshAsync());
  (void)service->AddGroups(after);  // Races the background build; logged.
  service->WaitForRefresh();

  // Reference: stop-the-world at the same cut, then the same arrivals.
  auto reference = IncrementalLinker::Create(seed, EngineConfig());
  ASSERT_TRUE(reference.ok());
  (void)reference->AddGroups(before);
  reference->Refresh();
  (void)reference->AddGroups(after);

  EXPECT_EQ(service->writer_epoch(), reference->epoch());
  EXPECT_EQ(service->num_groups(), reference->num_groups());
  EXPECT_EQ(service->linked_pairs(), reference->linked_pairs());

  // The epoch published by the async refresh is the pure cut: exactly the
  // reference's state at its refresh point, which is batch-equivalent.
  const auto snapshot = service->snapshot();
  EXPECT_EQ(snapshot->num_groups(),
            seed.num_groups() + static_cast<int32_t>(before.size()));
  EXPECT_TRUE(snapshot->CheckConsistency());
}

TEST(LinkageServiceTest, PolicyTriggersBackgroundRefreshAndConverges) {
  const Dataset full = MakeCorpus(25, 5);
  Dataset seed;
  std::vector<GroupArrival> arrivals;
  Split(full, full.num_groups() / 2, &seed, &arrivals);

  ServiceConfig config = TestService(/*async=*/true);
  config.streaming.refresh_every_n_groups = 3;
  auto service = LinkageService::Create(seed, config);
  ASSERT_TRUE(service.ok());
  const int64_t epoch0 = service->published_epoch();

  for (const GroupArrival& arrival : arrivals) {
    (void)service->AddGroup(arrival.label, arrival.record_texts);
  }
  service->WaitForRefresh();

  // The policy fired in the background: newer epoch, every arrival
  // visible once the service has converged (refresh the tail explicitly —
  // the policy only guarantees refreshes every 3 groups).
  EXPECT_GT(service->published_epoch(), epoch0);
  service->Refresh();
  EXPECT_EQ(service->snapshot()->num_groups(), full.num_groups());

  // Converged state equals the inline-policy reference.
  StreamingConfig streaming;
  streaming.refresh_every_n_groups = 3;
  auto reference = IncrementalLinker::Create(seed, EngineConfig(), streaming);
  ASSERT_TRUE(reference.ok());
  for (const GroupArrival& arrival : arrivals) {
    (void)reference->AddGroup(arrival.label, arrival.record_texts);
  }
  reference->Refresh();
  EXPECT_EQ(service->linked_pairs(), reference->linked_pairs());
}

TEST(LinkageServiceTest, RemoveAndMergeReplayAcrossTheSwap) {
  const Dataset full = MakeCorpus(25, 33);
  Dataset seed;
  std::vector<GroupArrival> arrivals;
  Split(full, full.num_groups() - 6, &seed, &arrivals);

  auto service = LinkageService::Create(seed, TestService(/*async=*/true));
  ASSERT_TRUE(service.ok());
  auto reference = IncrementalLinker::Create(seed, EngineConfig());
  ASSERT_TRUE(reference.ok());

  // Start a refresh, then race every mutation kind against it.
  ASSERT_TRUE(service->RefreshAsync());
  (void)service->AddGroups(arrivals);
  service->RemoveGroup(0);
  const auto merged = service->MergeGroups(1, 2);
  service->WaitForRefresh();

  (void)reference->AddGroups(arrivals);
  reference->RemoveGroup(0);
  const auto reference_merged = reference->MergeGroups(1, 2);

  EXPECT_EQ(merged.group_index, reference_merged.group_index);
  EXPECT_EQ(service->num_groups(), reference->num_groups());
  EXPECT_EQ(service->linked_pairs(), reference->linked_pairs());

  // And the next published epoch reflects the replayed mutations.
  service->Refresh();
  reference->Refresh();
  EXPECT_EQ(service->snapshot()->linked_pairs(), reference->linked_pairs());
  EXPECT_FALSE(service->snapshot()->IsAlive(0));
}

TEST(LinkageServiceTest, SyncModeRefreshesInline) {
  const Dataset full = MakeCorpus(20, 9);
  Dataset seed;
  std::vector<GroupArrival> arrivals;
  Split(full, full.num_groups() / 2, &seed, &arrivals);

  ServiceConfig config = TestService(/*async=*/false);
  config.streaming.refresh_every_n_groups = 2;
  auto service = LinkageService::Create(seed, config);
  ASSERT_TRUE(service.ok());
  const int64_t epoch0 = service->published_epoch();

  (void)service->AddGroups(arrivals);
  // The inline policy refresh already published: no background machinery.
  EXPECT_FALSE(service->refresh_in_flight());
  EXPECT_GT(service->published_epoch(), epoch0);
  EXPECT_EQ(service->snapshot()->num_groups(), full.num_groups());
}

}  // namespace
}  // namespace grouplink
