// Buffer-manager concurrency stress suite, registered in the TSan CI
// job: many threads hammering a 4-frame pool with pins, overlapping
// segment reads, and deliberate pool exhaustion. Every read must return
// verified bytes identical to the file, stats must balance, and a
// fully-pinned pool must fail cleanly with FailedPrecondition rather
// than deadlock.
#include "storage/buffer_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "storage/page.h"
#include "storage/page_file.h"

namespace grouplink {
namespace storage {
namespace {

constexpr uint32_t kPageBytes = kMinPageBytes;

/// Writes a store-shaped file of `num_pages` sealed segment pages whose
/// payload bytes are a deterministic function of (page, offset), so any
/// reader thread can verify any byte it gets back.
uint8_t ExpectedByte(uint64_t page, size_t offset) {
  return static_cast<uint8_t>((page * 131 + offset * 7 + 3) & 0xff);
}

std::string WriteFixtureFile(uint64_t num_pages) {
  const std::string path = ::testing::TempDir() + "/buffer_stress.pages";
  auto writer = PageWriter::Create(path);
  GL_CHECK(writer.ok());
  const uint32_t capacity = PagePayloadCapacity(kPageBytes);
  std::vector<uint8_t> frame(kPageBytes);
  for (uint64_t page = 0; page < num_pages; ++page) {
    std::fill(frame.begin(), frame.end(), 0);
    for (size_t i = 0; i < capacity; ++i) {
      frame[kPageHeaderBytes + i] = ExpectedByte(page, i);
    }
    SealPageFrame(page, PageType::kSegment, capacity, frame.data(), kPageBytes);
    GL_CHECK((*writer)->Append(frame.data(), kPageBytes).ok());
  }
  GL_CHECK((*writer)->Close().ok());
  return path;
}

struct Fixture {
  explicit Fixture(uint64_t num_pages, size_t pool_pages)
      : path(WriteFixtureFile(num_pages)) {
    auto opened = PageFile::Open(path);
    GL_CHECK(opened.ok());
    file = std::move(*opened);
    buffer = std::make_unique<BufferManager>(file, kPageBytes, num_pages,
                                             pool_pages);
  }
  ~Fixture() { GL_CHECK(RemoveFile(path).ok()); }

  std::string path;
  std::shared_ptr<const PageFile> file;
  std::unique_ptr<BufferManager> buffer;
};

TEST(BufferStressTest, ManyThreadsFourFramesEveryByteVerified) {
  constexpr uint64_t kNumPages = 64;
  constexpr int kThreads = 8;
  constexpr int kPinsPerThread = 400;
  Fixture fixture(kNumPages, 4);

  std::atomic<int> bad_bytes{0};
  std::atomic<int> errors{0};
  std::atomic<uint64_t> successful_pins{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Deterministic per-thread page walk with plenty of cross-thread
      // overlap; far more distinct pages than frames, so eviction churns
      // constantly under contention.
      uint64_t state = static_cast<uint64_t>(t) * 2654435761u + 1;
      for (int i = 0; i < kPinsPerThread; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const uint64_t page = (state >> 33) % kNumPages;
        // 8 threads each briefly holding one pin can transiently exceed
        // the 4-frame budget; exhaustion is the documented clean-failure
        // mode (see ExhaustedPoolFailsCleanlyAndRecovers), so retry it.
        // Anything else — I/O error, corruption — is a real failure.
        auto handle = fixture.buffer->Pin(page);
        int spins = 0;
        while (!handle.ok() &&
               handle.status().code() == StatusCode::kFailedPrecondition &&
               ++spins < 10000) {
          std::this_thread::yield();
          handle = fixture.buffer->Pin(page);
        }
        if (!handle.ok()) {
          ++errors;
          continue;
        }
        ++successful_pins;
        const size_t probe = static_cast<size_t>(state % handle->payload_len());
        if (handle->payload()[probe] != ExpectedByte(page, probe) ||
            handle->payload_len() != PagePayloadCapacity(kPageBytes)) {
          ++bad_bytes;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(bad_bytes.load(), 0);
  EXPECT_EQ(successful_pins.load(),
            static_cast<uint64_t>(kThreads) * kPinsPerThread);

  // Every successful pin is exactly one hit or one miss; an exhausted
  // attempt counts neither.
  const BufferStats stats = fixture.buffer->stats();
  EXPECT_EQ(stats.hits + stats.misses, successful_pins.load());
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.evictions, 0u);
  // Pool budget is a hard ceiling regardless of contention.
  EXPECT_EQ(fixture.buffer->pool_pages(), 4u);
}

TEST(BufferStressTest, ConcurrentSegmentReadersSeeTheWholeStream) {
  // Segment readers spanning many pages, read at misaligned offsets from
  // several threads at once through a 4-frame pool.
  constexpr uint64_t kNumPages = 32;
  Fixture fixture(kNumPages, 4);
  const uint32_t capacity = PagePayloadCapacity(kPageBytes);
  const uint64_t length = static_cast<uint64_t>(kNumPages) * capacity;
  const SegmentReader reader(fixture.buffer.get(), 0, length);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      // Each thread scans the stream with its own misaligned stride.
      const size_t n = 97 + static_cast<size_t>(t) * 13;
      std::vector<uint8_t> got(n);
      for (uint64_t offset = static_cast<uint64_t>(t) * 31; offset + n <= length;
           offset += 211) {
        if (!reader.ReadAt(offset, n, got.data()).ok()) {
          ++failures;
          continue;
        }
        for (size_t i = 0; i < n; ++i) {
          const uint64_t pos = offset + i;
          if (got[i] != ExpectedByte(pos / capacity, pos % capacity)) {
            ++failures;
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(fixture.buffer->stats().evictions, 0u);
}

TEST(BufferStressTest, ExhaustedPoolFailsCleanlyAndRecovers) {
  constexpr uint64_t kNumPages = 8;
  Fixture fixture(kNumPages, 4);

  std::vector<PageHandle> pins;
  for (uint64_t page = 0; page < 4; ++page) {
    auto handle = fixture.buffer->Pin(page);
    ASSERT_TRUE(handle.ok());
    pins.push_back(std::move(*handle));
  }
  // Every frame pinned: the fifth distinct page must fail cleanly, not
  // block, not evict a pinned frame.
  const auto exhausted = fixture.buffer->Pin(5);
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kFailedPrecondition);
  // A pinned page is still re-pinnable (shared pin, no new frame).
  const auto repin = fixture.buffer->Pin(2);
  EXPECT_TRUE(repin.ok());

  pins.clear();  // Unpin everything; the pool must recover.
  const auto after = fixture.buffer->Pin(5);
  EXPECT_TRUE(after.ok());
}

TEST(BufferStressTest, OutOfRangeAndCorruptPagesFailUnderConcurrency) {
  constexpr uint64_t kNumPages = 8;
  Fixture fixture(kNumPages, 4);
  std::atomic<int> wrong_code{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        const auto bad = fixture.buffer->Pin(kNumPages + 1);
        if (bad.ok() || bad.status().code() != StatusCode::kOutOfRange) {
          ++wrong_code;
        }
        const auto good = fixture.buffer->Pin(static_cast<uint64_t>(i) % kNumPages);
        if (!good.ok()) ++wrong_code;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(wrong_code.load(), 0);
}

}  // namespace
}  // namespace storage
}  // namespace grouplink
