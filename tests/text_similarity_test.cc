#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "text/edit_distance.h"
#include "text/jaccard.h"
#include "text/jaro.h"
#include "text/monge_elkan.h"
#include "text/soundex.h"

namespace grouplink {
namespace {

using Set = std::vector<std::string>;

// ---------------------------------------------------------------- Jaccard.

TEST(JaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b", "c"}, {"b", "c", "d"}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {"a"}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {"b"}), 0.0);
}

TEST(JaccardTest, EmptyConventions) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {"a"}), 0.0);
}

TEST(DiceTest, KnownValues) {
  EXPECT_DOUBLE_EQ(DiceSimilarity({"a", "b"}, {"b", "c"}), 0.5);
  EXPECT_DOUBLE_EQ(DiceSimilarity({}, {}), 1.0);
}

TEST(OverlapTest, KnownValues) {
  EXPECT_DOUBLE_EQ(OverlapSimilarity({"a", "b"}, {"a", "b", "c", "d"}), 1.0);
  EXPECT_DOUBLE_EQ(OverlapSimilarity({"a"}, {"b"}), 0.0);
  EXPECT_DOUBLE_EQ(OverlapSimilarity({}, {"a"}), 0.0);
}

TEST(SortedIntersectionTest, Merge) {
  EXPECT_EQ(SortedIntersectionSize({"a", "c", "e"}, {"b", "c", "d", "e"}), 2u);
  EXPECT_EQ(SortedIntersectionSize({}, {"a"}), 0u);
}

TEST(TokenJaccardTest, NormalizesText) {
  EXPECT_DOUBLE_EQ(TokenJaccard("The Quick Fox", "quick fox the"), 1.0);
  EXPECT_GT(TokenJaccard("query optimization", "query processing"), 0.0);
}

TEST(QGramJaccardTest, SimilarStringsScoreHigh) {
  EXPECT_GT(QGramJaccard("jonathan", "johnathan"), 0.5);
  EXPECT_LT(QGramJaccard("jonathan", "elizabeth"), 0.2);
  EXPECT_DOUBLE_EQ(QGramJaccard("same", "same"), 1.0);
}

// ---------------------------------------------------------- Edit distance.

TEST(LevenshteinTest, KnownValues) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(LevenshteinDistance("abcdef", "azced"),
            LevenshteinDistance("azced", "abcdef"));
}

TEST(BoundedLevenshteinTest, AgreesWithExactWithinBound) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"kitten", "sitting"}, {"abc", "abc"},     {"", "xyz"},
      {"database", "databse"}, {"aaaa", "bbbb"}, {"linkage", "language"},
  };
  for (const auto& [a, b] : cases) {
    const size_t exact = LevenshteinDistance(a, b);
    for (size_t bound = 0; bound <= 8; ++bound) {
      const size_t bounded = BoundedLevenshteinDistance(a, b, bound);
      if (exact <= bound) {
        EXPECT_EQ(bounded, exact) << a << " vs " << b << " bound " << bound;
      } else {
        EXPECT_GT(bounded, bound) << a << " vs " << b << " bound " << bound;
      }
    }
  }
}

TEST(BoundedLevenshteinTest, LengthGapShortCircuits) {
  EXPECT_GT(BoundedLevenshteinDistance("a", "abcdefgh", 3), 3u);
}

TEST(DamerauTest, TranspositionCountsOnce) {
  EXPECT_EQ(DamerauLevenshteinDistance("ab", "ba"), 1u);
  EXPECT_EQ(LevenshteinDistance("ab", "ba"), 2u);
  EXPECT_EQ(DamerauLevenshteinDistance("abcdef", "abcdfe"), 1u);
}

TEST(DamerauTest, NeverExceedsLevenshtein) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::string a;
    std::string b;
    for (int i = 0; i < 8; ++i) {
      a += static_cast<char>('a' + rng.Uniform(4));
      b += static_cast<char>('a' + rng.Uniform(4));
    }
    EXPECT_LE(DamerauLevenshteinDistance(a, b), LevenshteinDistance(a, b));
  }
}

TEST(LevenshteinSimilarityTest, Range) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("kitten", "sitting"), 1.0 - 3.0 / 7.0, 1e-12);
}

// -------------------------------------------------------------------- Jaro.

TEST(JaroTest, KnownValues) {
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444444, 1e-6);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.7666667, 1e-6);
  EXPECT_DOUBLE_EQ(JaroSimilarity("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroTest, EmptyConventions) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", "abc"), 0.0);
}

TEST(JaroWinklerTest, KnownValues) {
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.9611111, 1e-6);
  EXPECT_NEAR(JaroWinklerSimilarity("dwayne", "duane"), 0.84, 1e-2);
}

TEST(JaroWinklerTest, PrefixBoostsScore) {
  const double jaro = JaroSimilarity("prefixed", "prefixes");
  const double jw = JaroWinklerSimilarity("prefixed", "prefixes");
  EXPECT_GT(jw, jaro);
}

TEST(JaroWinklerTest, NeverExceedsOne) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::string a;
    std::string b;
    const size_t la = 1 + rng.Uniform(10);
    const size_t lb = 1 + rng.Uniform(10);
    for (size_t i = 0; i < la; ++i) a += static_cast<char>('a' + rng.Uniform(5));
    for (size_t i = 0; i < lb; ++i) b += static_cast<char>('a' + rng.Uniform(5));
    const double s = JaroWinklerSimilarity(a, b);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    EXPECT_NEAR(s, JaroWinklerSimilarity(b, a), 1e-12);  // Symmetry.
  }
}

// ------------------------------------------------------------- Monge-Elkan.

TEST(MongeElkanTest, IdenticalTokenSets) {
  const auto inner = [](std::string_view x, std::string_view y) {
    return x == y ? 1.0 : 0.0;
  };
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({"a", "b"}, {"b", "a"}, inner), 1.0);
}

TEST(MongeElkanTest, EmptyConventions) {
  const auto inner = [](std::string_view, std::string_view) { return 1.0; };
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({}, {}, inner), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({"a"}, {}, inner), 0.0);
}

TEST(MongeElkanTest, DirectedAsymmetry) {
  const auto inner = [](std::string_view x, std::string_view y) {
    return x == y ? 1.0 : 0.0;
  };
  // Every token of {a} matches into {a,b}; only half of {a,b} matches {a}.
  EXPECT_DOUBLE_EQ(MongeElkanDirected({"a"}, {"a", "b"}, inner), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanDirected({"a", "b"}, {"a"}, inner), 0.5);
}

TEST(MongeElkanJaroWinklerTest, NameVariants) {
  EXPECT_GT(MongeElkanJaroWinkler("jeffrey d ullman", "ullman jeffrey"), 0.8);
  EXPECT_LT(MongeElkanJaroWinkler("jeffrey ullman", "maria rodriguez"), 0.6);
}

// ----------------------------------------------------------------- Soundex.

TEST(SoundexTest, ClassicExamples) {
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");  // H is transparent.
  EXPECT_EQ(Soundex("Ashcroft"), "A261");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, CaseInsensitive) { EXPECT_EQ(Soundex("robert"), Soundex("ROBERT")); }

TEST(SoundexTest, NoLettersYieldsEmpty) {
  EXPECT_EQ(Soundex(""), "");
  EXPECT_EQ(Soundex("123"), "");
}

TEST(SoundexTest, ShortNamesPadded) { EXPECT_EQ(Soundex("Lee"), "L000"); }

// ------------------------------------------- Cross-measure property sweep.

struct SimilarityCase {
  const char* a;
  const char* b;
};

class MetricPropertyTest : public ::testing::TestWithParam<SimilarityCase> {};

TEST_P(MetricPropertyTest, RangeSymmetryIdentity) {
  const auto& [a, b] = GetParam();
  const std::vector<double> scores = {
      TokenJaccard(a, b),     QGramJaccard(a, b),
      LevenshteinSimilarity(a, b), JaroSimilarity(a, b),
      JaroWinklerSimilarity(a, b), MongeElkanJaroWinkler(a, b),
  };
  const std::vector<double> reversed = {
      TokenJaccard(b, a),     QGramJaccard(b, a),
      LevenshteinSimilarity(b, a), JaroSimilarity(b, a),
      JaroWinklerSimilarity(b, a), MongeElkanJaroWinkler(b, a),
  };
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_GE(scores[i], 0.0) << i;
    EXPECT_LE(scores[i], 1.0 + 1e-12) << i;
    EXPECT_NEAR(scores[i], reversed[i], 1e-12) << i;
  }
  // Identity: every measure scores a string against itself as 1.
  const std::vector<double> self = {
      TokenJaccard(a, a),     QGramJaccard(a, a),
      LevenshteinSimilarity(a, a), JaroSimilarity(a, a),
      JaroWinklerSimilarity(a, a), MongeElkanJaroWinkler(a, a),
  };
  for (size_t i = 0; i < self.size(); ++i) EXPECT_DOUBLE_EQ(self[i], 1.0) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, MetricPropertyTest,
    ::testing::Values(SimilarityCase{"query optimization in databases",
                                     "database query optimisation"},
                      SimilarityCase{"jeffrey ullman", "j d ullman"},
                      SimilarityCase{"abc", "xyz"}, SimilarityCase{"a", "a"},
                      SimilarityCase{"", "nonempty"},
                      SimilarityCase{"the same string", "the same string"}));

}  // namespace
}  // namespace grouplink
