#include "core/group_measures.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "matching/brute_force.h"

namespace grouplink {
namespace {

// Builds a dataset with two groups of the given sizes; record texts are
// unused (tests pass explicit similarity callbacks over record indexes).
Dataset TwoGroups(int32_t size_left, int32_t size_right) {
  Dataset dataset;
  for (int32_t i = 0; i < size_left + size_right; ++i) {
    Record record;
    record.id = std::to_string(i);
    record.text = "r" + std::to_string(i);
    dataset.records.push_back(std::move(record));
  }
  Group left;
  left.id = "left";
  for (int32_t i = 0; i < size_left; ++i) left.record_ids.push_back(i);
  Group right;
  right.id = "right";
  for (int32_t i = 0; i < size_right; ++i) right.record_ids.push_back(size_left + i);
  dataset.groups = {left, right};
  return dataset;
}

BipartiteGraph RandomThresholdGraph(Rng& rng, int32_t max_side, double theta) {
  const int32_t num_left = 1 + static_cast<int32_t>(rng.Uniform(max_side));
  const int32_t num_right = 1 + static_cast<int32_t>(rng.Uniform(max_side));
  BipartiteGraph graph(num_left, num_right);
  for (int32_t l = 0; l < num_left; ++l) {
    for (int32_t r = 0; r < num_right; ++r) {
      const double s = rng.UniformDouble();
      if (s >= theta) graph.AddEdge(l, r, s);
    }
  }
  return graph;
}

// ----------------------------------------------------- Graph construction.

TEST(BuildSimilarityGraphTest, ThresholdsEdges) {
  const Dataset dataset = TwoGroups(2, 2);
  const auto sim = [](int32_t a, int32_t b) {
    return (a + b) % 2 == 0 ? 0.9 : 0.3;  // Half the pairs pass θ=0.5.
  };
  const BipartiteGraph graph = BuildSimilarityGraph(dataset, 0, 1, sim, 0.5);
  EXPECT_EQ(graph.num_left(), 2);
  EXPECT_EQ(graph.num_right(), 2);
  EXPECT_EQ(graph.edges().size(), 2u);
  for (const BipartiteEdge& e : graph.edges()) EXPECT_DOUBLE_EQ(e.weight, 0.9);
}

TEST(BuildSimilarityGraphTest, EdgeExactlyAtThetaIncluded) {
  const Dataset dataset = TwoGroups(1, 1);
  const auto sim = [](int32_t, int32_t) { return 0.5; };
  EXPECT_EQ(BuildSimilarityGraph(dataset, 0, 1, sim, 0.5).edges().size(), 1u);
}

// ----------------------------------------------------------- BM measure.

TEST(BmMeasureTest, ReducesToJaccardUnderBinarySimilarity) {
  // Groups share exactly 2 "identical" records out of sizes 3 and 4:
  // Jaccard = 2 / (3 + 4 - 2) = 0.4.
  const Dataset dataset = TwoGroups(3, 4);
  // Records 0,1 (left) are identical to 3,4 (right) respectively.
  const auto sim = [](int32_t a, int32_t b) {
    const int32_t left = std::min(a, b);
    const int32_t right = std::max(a, b);
    return (left == 0 && right == 3) || (left == 1 && right == 4) ? 1.0 : 0.0;
  };
  const BipartiteGraph graph = BuildSimilarityGraph(dataset, 0, 1, sim, 0.5);
  const GroupScore bm = BmMeasure(graph, 3, 4);
  EXPECT_DOUBLE_EQ(bm.value, 0.4);
  EXPECT_EQ(bm.matching_size, 2);
  // The binary-Jaccard measure agrees exactly.
  EXPECT_DOUBLE_EQ(BinaryJaccardMeasure(graph, 3, 4).value, 0.4);
}

TEST(BmMeasureTest, IdenticalGroupsScoreOne) {
  const Dataset dataset = TwoGroups(3, 3);
  const auto sim = [](int32_t a, int32_t b) { return (b - a) == 3 ? 1.0 : 0.0; };
  const BipartiteGraph graph = BuildSimilarityGraph(dataset, 0, 1, sim, 0.5);
  EXPECT_DOUBLE_EQ(BmMeasure(graph, 3, 3).value, 1.0);
}

TEST(BmMeasureTest, DisjointGroupsScoreZero) {
  BipartiteGraph graph(3, 3);  // No edges.
  EXPECT_DOUBLE_EQ(BmMeasure(graph, 3, 3).value, 0.0);
}

TEST(BmMeasureTest, ValueAlwaysInUnitInterval) {
  Rng rng(808);
  for (int trial = 0; trial < 300; ++trial) {
    const BipartiteGraph graph = RandomThresholdGraph(rng, 7, 0.3);
    const double bm = BmMeasure(graph, graph.num_left(), graph.num_right()).value;
    EXPECT_GE(bm, 0.0);
    EXPECT_LE(bm, 1.0 + 1e-9);
  }
}

TEST(NormalizeMatchingScoreTest, Conventions) {
  EXPECT_DOUBLE_EQ(NormalizeMatchingScore(0.0, 0, 0, 0), 1.0);  // Both empty.
  EXPECT_DOUBLE_EQ(NormalizeMatchingScore(0.0, 0, 2, 3), 0.0);
  EXPECT_DOUBLE_EQ(NormalizeMatchingScore(1.5, 2, 3, 3), 1.5 / 4.0);
}

// ------------------------------------------------------------ UB and LB.

TEST(UpperBoundTest, DominatesBmOnRandomGraphs) {
  Rng rng(909);
  for (int trial = 0; trial < 400; ++trial) {
    const BipartiteGraph graph = RandomThresholdGraph(rng, 7, 0.2);
    const int32_t left = graph.num_left();
    const int32_t right = graph.num_right();
    const double bm = BmMeasure(graph, left, right).value;
    const double ub = UpperBoundMeasure(graph, left, right);
    EXPECT_GE(ub + 1e-9, bm) << "trial " << trial;
    EXPECT_LE(ub, 1.0 + 1e-9) << "trial " << trial;
  }
}

TEST(UpperBoundTest, DominatesBmWithIsolatedRecords) {
  // Groups larger than the graph coverage: isolated records punish both.
  Rng rng(910);
  for (int trial = 0; trial < 200; ++trial) {
    const BipartiteGraph graph = RandomThresholdGraph(rng, 5, 0.6);
    const int32_t left = graph.num_left() + static_cast<int32_t>(rng.Uniform(4));
    const int32_t right = graph.num_right() + static_cast<int32_t>(rng.Uniform(4));
    // Build a padded graph with extra isolated records on both sides.
    BipartiteGraph padded(left, right);
    for (const BipartiteEdge& e : graph.edges()) {
      padded.AddEdge(e.left, e.right, e.weight);
    }
    const double bm = BmMeasure(padded, left, right).value;
    const double ub = UpperBoundMeasure(padded, left, right);
    EXPECT_GE(ub + 1e-9, bm) << "trial " << trial;
  }
}

TEST(LowerBoundTest, NeverExceedsBmOnRandomGraphs) {
  Rng rng(911);
  for (int trial = 0; trial < 400; ++trial) {
    const BipartiteGraph graph = RandomThresholdGraph(rng, 7, 0.2);
    const int32_t left = graph.num_left();
    const int32_t right = graph.num_right();
    const double bm = BmMeasure(graph, left, right).value;
    const double lb = GreedyLowerBound(graph, left, right);
    EXPECT_LE(lb, bm + 1e-9) << "trial " << trial;
    EXPECT_GE(lb, 0.0);
  }
}

TEST(BoundsTest, EmptyGraphConventions) {
  BipartiteGraph graph(0, 0);
  EXPECT_DOUBLE_EQ(UpperBoundMeasure(graph, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(GreedyLowerBound(graph, 0, 0), 1.0);
  BipartiteGraph empty(3, 2);
  EXPECT_DOUBLE_EQ(UpperBoundMeasure(empty, 3, 2), 0.0);
  EXPECT_DOUBLE_EQ(GreedyLowerBound(empty, 3, 2), 0.0);
}

TEST(BoundsTest, TightOnPerfectMatch) {
  // Complete bipartite graph with unit weights: BM = UB = 1, LB close.
  BipartiteGraph graph(3, 3);
  for (int32_t l = 0; l < 3; ++l) graph.AddEdge(l, l, 1.0);
  EXPECT_DOUBLE_EQ(BmMeasure(graph, 3, 3).value, 1.0);
  EXPECT_DOUBLE_EQ(UpperBoundMeasure(graph, 3, 3), 1.0);
  // Greedy finds the same matching; the sound denominator uses ceil(3/2)=2.
  EXPECT_NEAR(GreedyLowerBound(graph, 3, 3), 3.0 / (6.0 - 2.0), 1e-12);
}

// --------------------------------------------------------- Other measures.

TEST(GreedyMeasureTest, AtMostBruteForceNormalizedOptimum) {
  Rng rng(912);
  for (int trial = 0; trial < 200; ++trial) {
    const BipartiteGraph graph = RandomThresholdGraph(rng, 6, 0.3);
    const double greedy =
        GreedyMeasure(graph, graph.num_left(), graph.num_right()).value;
    const double best_normalized = BruteForceMaxNormalizedScore(graph);
    EXPECT_LE(greedy, best_normalized + 1e-9) << trial;
  }
}

TEST(BmStarTest, SandwichedBetweenBmAndUpperBound) {
  Rng rng(913);
  for (int trial = 0; trial < 300; ++trial) {
    const BipartiteGraph graph = RandomThresholdGraph(rng, 7, 0.25);
    const int32_t left = graph.num_left();
    const int32_t right = graph.num_right();
    const double bm = BmMeasure(graph, left, right).value;
    const double bm_star = BmStarMeasure(graph, left, right);
    const double ub = UpperBoundMeasure(graph, left, right);
    EXPECT_GE(bm_star + 1e-9, bm) << trial;
    EXPECT_LE(bm_star, ub + 1e-9) << trial;
    EXPECT_LE(bm_star, 1.0 + 1e-9) << trial;
  }
}

TEST(BmStarTest, GreedyNeverExceedsBmStar) {
  // BM* is the exact maximum of the normalized score, so every concrete
  // matching's score — greedy's included — is below it.
  Rng rng(914);
  for (int trial = 0; trial < 200; ++trial) {
    const BipartiteGraph graph = RandomThresholdGraph(rng, 7, 0.3);
    const double greedy =
        GreedyMeasure(graph, graph.num_left(), graph.num_right()).value;
    const double bm_star =
        BmStarMeasure(graph, graph.num_left(), graph.num_right());
    EXPECT_LE(greedy, bm_star + 1e-9) << trial;
  }
}

TEST(ContainmentTest, SubgroupScoresOne) {
  // Left group (2 records) fully matches into the right group (5 records):
  // containment = 1 while BM is penalized by the 3 unmatched records.
  BipartiteGraph graph(2, 5);
  graph.AddEdge(0, 0, 1.0);
  graph.AddEdge(1, 1, 1.0);
  EXPECT_DOUBLE_EQ(ContainmentMeasure(graph, 2, 5), 1.0);
  EXPECT_NEAR(BmMeasure(graph, 2, 5).value, 2.0 / 5.0, 1e-12);
}

TEST(ContainmentTest, DominatesBm) {
  // min(L, R) <= L + R - |M| always, so containment >= BM.
  Rng rng(915);
  for (int trial = 0; trial < 200; ++trial) {
    const BipartiteGraph graph = RandomThresholdGraph(rng, 7, 0.3);
    const double bm = BmMeasure(graph, graph.num_left(), graph.num_right()).value;
    const double containment =
        ContainmentMeasure(graph, graph.num_left(), graph.num_right());
    EXPECT_GE(containment + 1e-9, bm) << trial;
    EXPECT_LE(containment, 1.0 + 1e-9) << trial;
  }
}

TEST(ContainmentTest, EmptyConventions) {
  BipartiteGraph both(0, 0);
  EXPECT_DOUBLE_EQ(ContainmentMeasure(both, 0, 0), 1.0);
  BipartiteGraph one(0, 2);
  EXPECT_DOUBLE_EQ(ContainmentMeasure(one, 0, 2), 0.0);
  BipartiteGraph empty(2, 3);
  EXPECT_DOUBLE_EQ(ContainmentMeasure(empty, 2, 3), 0.0);
}

TEST(SingleBestTest, MaxEdgeWeight) {
  BipartiteGraph graph(2, 2);
  graph.AddEdge(0, 0, 0.4);
  graph.AddEdge(1, 1, 0.75);
  EXPECT_DOUBLE_EQ(SingleBestMeasure(graph), 0.75);
  BipartiteGraph empty(2, 2);
  EXPECT_DOUBLE_EQ(SingleBestMeasure(empty), 0.0);
}

TEST(MeasureKindTest, NamesAndDispatch) {
  BipartiteGraph graph(1, 1);
  graph.AddEdge(0, 0, 0.8);
  EXPECT_STREQ(GroupMeasureKindName(GroupMeasureKind::kBm), "BM");
  EXPECT_STREQ(GroupMeasureKindName(GroupMeasureKind::kBmStar), "BM*");
  EXPECT_STREQ(GroupMeasureKindName(GroupMeasureKind::kSingleBest), "SingleBest");
  EXPECT_DOUBLE_EQ(EvaluateGroupMeasure(GroupMeasureKind::kBm, graph, 1, 1), 0.8);
  EXPECT_DOUBLE_EQ(EvaluateGroupMeasure(GroupMeasureKind::kBmStar, graph, 1, 1), 0.8);
  EXPECT_DOUBLE_EQ(EvaluateGroupMeasure(GroupMeasureKind::kSingleBest, graph, 1, 1),
                   0.8);
  EXPECT_DOUBLE_EQ(EvaluateGroupMeasure(GroupMeasureKind::kBinaryJaccard, graph, 1, 1),
                   1.0);
  EXPECT_GT(EvaluateGroupMeasure(GroupMeasureKind::kUpperBound, graph, 1, 1), 0.0);
  EXPECT_GT(EvaluateGroupMeasure(GroupMeasureKind::kGreedy, graph, 1, 1), 0.0);
}

TEST(MeasureSymmetryTest, AllMeasuresOrientationInvariant) {
  // BM(g1, g2) == BM(g2, g1) etc.: swapping the groups transposes the
  // graph and swaps the sizes, which must not change any measure.
  Rng rng(916);
  for (int trial = 0; trial < 100; ++trial) {
    const BipartiteGraph graph = RandomThresholdGraph(rng, 6, 0.3);
    BipartiteGraph transposed(graph.num_right(), graph.num_left());
    for (const BipartiteEdge& e : graph.edges()) {
      transposed.AddEdge(e.right, e.left, e.weight);
    }
    for (const GroupMeasureKind kind :
         {GroupMeasureKind::kBm, GroupMeasureKind::kBmStar, GroupMeasureKind::kGreedy,
          GroupMeasureKind::kUpperBound, GroupMeasureKind::kBinaryJaccard,
          GroupMeasureKind::kSingleBest, GroupMeasureKind::kContainment}) {
      const double forward =
          EvaluateGroupMeasure(kind, graph, graph.num_left(), graph.num_right());
      const double backward = EvaluateGroupMeasure(kind, transposed,
                                                   transposed.num_left(),
                                                   transposed.num_right());
      EXPECT_NEAR(forward, backward, 1e-9)
          << GroupMeasureKindName(kind) << " trial " << trial;
    }
  }
}

// Parameterized sweep: BM monotonicity in θ — raising θ can only drop
// edges, and BM computed on the θ-graph never increases.
class BmThetaSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BmThetaSweepTest, BmNonIncreasingInTheta) {
  Rng rng(GetParam());
  const Dataset dataset = TwoGroups(5, 6);
  std::vector<std::vector<double>> sims(30, std::vector<double>(30, 0.0));
  for (int a = 0; a < 11; ++a) {
    for (int b = 0; b < 11; ++b) {
      const double s = rng.UniformDouble();
      sims[a][b] = s;
      sims[b][a] = s;
    }
  }
  const auto sim = [&](int32_t a, int32_t b) { return sims[a][b]; };
  double previous = 2.0;
  for (const double theta : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const BipartiteGraph graph = BuildSimilarityGraph(dataset, 0, 1, sim, theta);
    const double bm = BmMeasure(graph, 5, 6).value;
    EXPECT_LE(bm, previous + 1e-9);
    previous = bm;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BmThetaSweepTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace grouplink
