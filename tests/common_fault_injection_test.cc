#include "common/fault_injection.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace grouplink {
namespace {

TEST(FaultInjectionTest, DisarmedPointNeverFires) {
  ScopedFaultClear clear;
  FaultInjector& injector = FaultInjector::Default();
  EXPECT_FALSE(injector.armed(faults::kFailTask));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.ShouldFire(faults::kFailTask));
  }
  EXPECT_EQ(injector.hits(faults::kFailTask), 0);
  EXPECT_EQ(injector.fires(faults::kFailTask), 0);
}

TEST(FaultInjectionTest, ArmedPointFiresEveryEvaluationByDefault) {
  ScopedFaultClear clear;
  FaultInjector& injector = FaultInjector::Default();
  injector.Arm(faults::kFailTask, FaultSpec{});
  EXPECT_TRUE(injector.armed(faults::kFailTask));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(injector.ShouldFire(faults::kFailTask));
  }
  EXPECT_EQ(injector.hits(faults::kFailTask), 10);
  EXPECT_EQ(injector.fires(faults::kFailTask), 10);
}

TEST(FaultInjectionTest, AfterSkipsLeadingEvaluations) {
  ScopedFaultClear clear;
  FaultInjector& injector = FaultInjector::Default();
  FaultSpec spec;
  spec.after = 3;
  injector.Arm(faults::kFailTask, spec);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(injector.ShouldFire(faults::kFailTask));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true, true, true}));
}

TEST(FaultInjectionTest, EverySelectsPeriodicEvaluations) {
  ScopedFaultClear clear;
  FaultInjector& injector = FaultInjector::Default();
  FaultSpec spec;
  spec.every = 3;
  injector.Arm(faults::kFailTask, spec);
  std::vector<bool> fired;
  for (int i = 0; i < 7; ++i) fired.push_back(injector.ShouldFire(faults::kFailTask));
  EXPECT_EQ(fired,
            (std::vector<bool>{true, false, false, true, false, false, true}));
}

TEST(FaultInjectionTest, MaxFiresCapsTotalFires) {
  ScopedFaultClear clear;
  FaultInjector& injector = FaultInjector::Default();
  FaultSpec spec;
  spec.max_fires = 2;
  injector.Arm(faults::kFailTask, spec);
  int fired = 0;
  for (int i = 0; i < 10; ++i) fired += injector.ShouldFire(faults::kFailTask) ? 1 : 0;
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(injector.fires(faults::kFailTask), 2);
  EXPECT_EQ(injector.hits(faults::kFailTask), 10);
}

TEST(FaultInjectionTest, FailNTimesFiresExactlyTheFirstN) {
  ScopedFaultClear clear;
  FaultInjector& injector = FaultInjector::Default();
  injector.Arm(faults::kFailTask, FaultSpec::FailNTimes(3));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(injector.ShouldFire(faults::kFailTask));
  EXPECT_EQ(fired, (std::vector<bool>{true, true, true, false, false, false}));
  EXPECT_EQ(injector.hits(faults::kFailTask), 6);
  EXPECT_EQ(injector.fires(faults::kFailTask), 3);
}

TEST(FaultInjectionTest, FailNTimesOverridesStochasticKnobs) {
  // The deterministic arming mode: after/every/probability are ignored, so
  // a test can say "the next 2 persists fail, then the disk heals" without
  // reasoning about draw schedules.
  ScopedFaultClear clear;
  FaultInjector& injector = FaultInjector::Default();
  FaultSpec spec = FaultSpec::FailNTimes(2);
  spec.after = 100;
  spec.every = 7;
  spec.probability = 0.0;
  injector.Arm(faults::kFailTask, spec);
  std::vector<bool> fired;
  for (int i = 0; i < 4; ++i) fired.push_back(injector.ShouldFire(faults::kFailTask));
  EXPECT_EQ(fired, (std::vector<bool>{true, true, false, false}));
}

TEST(FaultInjectionTest, FailNTimesRearmResetsTheBudget) {
  ScopedFaultClear clear;
  FaultInjector& injector = FaultInjector::Default();
  injector.Arm(faults::kFailTask, FaultSpec::FailNTimes(1));
  EXPECT_TRUE(injector.ShouldFire(faults::kFailTask));
  EXPECT_FALSE(injector.ShouldFire(faults::kFailTask));
  injector.Arm(faults::kFailTask, FaultSpec::FailNTimes(1));
  EXPECT_TRUE(injector.ShouldFire(faults::kFailTask));
}

TEST(FaultInjectionTest, ArmFromSpecParsesFailNTimes) {
  ScopedFaultClear clear;
  FaultInjector& injector = FaultInjector::Default();
  ASSERT_TRUE(injector.ArmFromSpec("storage.fail_fsync:fail_n_times=2").ok());
  EXPECT_TRUE(injector.armed(faults::kFailFsync));
  std::vector<bool> fired;
  for (int i = 0; i < 4; ++i) {
    fired.push_back(injector.ShouldFire(faults::kFailFsync));
  }
  EXPECT_EQ(fired, (std::vector<bool>{true, true, false, false}));
}

TEST(FaultInjectionTest, ProbabilityDrawIsDeterministicPerSeed) {
  ScopedFaultClear clear;
  FaultInjector& injector = FaultInjector::Default();
  FaultSpec spec;
  spec.probability = 0.5;
  spec.seed = 12345;
  const auto draw_sequence = [&] {
    injector.Arm(faults::kFailTask, spec);  // Re-arming resets counters.
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(injector.ShouldFire(faults::kFailTask));
    }
    return fired;
  };
  const std::vector<bool> first = draw_sequence();
  const std::vector<bool> second = draw_sequence();
  EXPECT_EQ(first, second);
  // A fair-ish draw: neither all-true nor all-false over 64 evaluations.
  int fires = 0;
  for (const bool f : first) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);

  spec.seed = 54321;
  injector.Arm(faults::kFailTask, spec);
  std::vector<bool> other_seed;
  for (int i = 0; i < 64; ++i) {
    other_seed.push_back(injector.ShouldFire(faults::kFailTask));
  }
  EXPECT_NE(first, other_seed) << "different seeds should draw differently";
}

TEST(FaultInjectionTest, ArmFromSpecParsesPointAndKeys) {
  ScopedFaultClear clear;
  FaultInjector& injector = FaultInjector::Default();
  ASSERT_TRUE(injector
                  .ArmFromSpec("candidates.oversized:after=2,every=3,magnitude=7,"
                               "max_fires=1")
                  .ok());
  EXPECT_TRUE(injector.armed(faults::kOversizedCandidates));
  EXPECT_EQ(injector.magnitude(faults::kOversizedCandidates), 7);
  // after=2 skips two, every=3 then selects the 3rd eligible, max_fires=1.
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) {
    fired.push_back(injector.ShouldFire(faults::kOversizedCandidates));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false,
                                      false, false}));
}

TEST(FaultInjectionTest, ArmFromSpecBareSlowTaskGetsDefaultDelay) {
  ScopedFaultClear clear;
  FaultInjector& injector = FaultInjector::Default();
  ASSERT_TRUE(injector.ArmFromSpec(faults::kSlowTask).ok());
  EXPECT_TRUE(injector.armed(faults::kSlowTask));
  EXPECT_TRUE(injector.FireWithDelay(faults::kSlowTask));
}

TEST(FaultInjectionTest, ArmFromSpecRejectsMalformedSpecs) {
  ScopedFaultClear clear;
  FaultInjector& injector = FaultInjector::Default();
  EXPECT_FALSE(injector.ArmFromSpec("").ok());
  EXPECT_FALSE(injector.ArmFromSpec(":after=1").ok());
  EXPECT_FALSE(injector.ArmFromSpec("thread_pool.fail_task:bogus_key=1").ok());
  EXPECT_FALSE(injector.ArmFromSpec("thread_pool.fail_task:every=0").ok());
  EXPECT_FALSE(injector.ArmFromSpec("thread_pool.fail_task:after=notanumber").ok());
  EXPECT_FALSE(injector.armed(faults::kFailTask));
}

TEST(FaultInjectionTest, DisarmStopsFiringAndClearsCounters) {
  ScopedFaultClear clear;
  FaultInjector& injector = FaultInjector::Default();
  injector.Arm(faults::kFailTask, FaultSpec{});
  EXPECT_TRUE(injector.ShouldFire(faults::kFailTask));
  injector.Disarm(faults::kFailTask);
  EXPECT_FALSE(injector.armed(faults::kFailTask));
  EXPECT_FALSE(injector.ShouldFire(faults::kFailTask));
  EXPECT_EQ(injector.hits(faults::kFailTask), 0);
}

TEST(FaultInjectionTest, ConcurrentEvaluationsCountEveryHit) {
  ScopedFaultClear clear;
  FaultInjector& injector = FaultInjector::Default();
  FaultSpec spec;
  spec.every = 2;
  injector.Arm(faults::kFailTask, spec);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::atomic<int> fires{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (injector.ShouldFire(faults::kFailTask)) fires.fetch_add(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(injector.hits(faults::kFailTask), kThreads * kPerThread);
  // every=2 selects exactly half of the hits regardless of interleaving.
  EXPECT_EQ(fires.load(), kThreads * kPerThread / 2);
  EXPECT_EQ(injector.fires(faults::kFailTask), kThreads * kPerThread / 2);
}

}  // namespace
}  // namespace grouplink
