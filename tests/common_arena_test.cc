#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

namespace grouplink {
namespace {

TEST(SpanTest, BasicsAndIteration) {
  std::vector<int32_t> backing = {1, 2, 3, 4};
  Span<int32_t> span(backing.data(), backing.size());
  EXPECT_EQ(span.size(), 4u);
  EXPECT_FALSE(span.empty());
  EXPECT_EQ(span[0], 1);
  EXPECT_EQ(span[3], 4);
  int32_t sum = 0;
  for (const int32_t v : span) sum += v;
  EXPECT_EQ(sum, 10);
}

TEST(SpanTest, DefaultIsEmpty) {
  Span<double> span;
  EXPECT_TRUE(span.empty());
  EXPECT_EQ(span.size(), 0u);
  EXPECT_EQ(span.data(), nullptr);
  EXPECT_EQ(span.begin(), span.end());
}

TEST(SpanTest, Subspan) {
  std::vector<int32_t> backing = {10, 20, 30, 40, 50};
  Span<int32_t> span(backing.data(), backing.size());
  Span<int32_t> mid = span.subspan(1, 3);
  EXPECT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid[0], 20);
  EXPECT_EQ(mid[2], 40);
  // Zero-length subspan at the end is legal.
  EXPECT_TRUE(span.subspan(5, 0).empty());
}

TEST(SpanTest, ConvertsToConst) {
  std::vector<int32_t> backing = {7};
  Span<int32_t> mutable_span(backing.data(), backing.size());
  Span<const int32_t> const_span = mutable_span;
  EXPECT_EQ(const_span.data(), mutable_span.data());
  EXPECT_EQ(const_span.size(), 1u);
}

TEST(ArenaPoolTest, AllocationsAreAlignedAndDisjoint) {
  ArenaPool pool;
  Span<int32_t> a = pool.AllocateArray<int32_t>(100);
  Span<double> b = pool.AllocateArray<double>(50);
  ASSERT_EQ(a.size(), 100u);
  ASSERT_EQ(b.size(), 50u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a.data()) % ArenaPool::kAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % ArenaPool::kAlignment, 0u);
  // Writing one array must not disturb the other.
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<int32_t>(i);
  for (size_t i = 0; i < b.size(); ++i) b[i] = static_cast<double>(i) * 0.5;
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], static_cast<int32_t>(i));
  for (size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], static_cast<double>(i) * 0.5);
}

TEST(ArenaPoolTest, ZeroCountReturnsEmptySpan) {
  ArenaPool pool;
  Span<int32_t> span = pool.AllocateArray<int32_t>(0);
  EXPECT_TRUE(span.empty());
  EXPECT_EQ(pool.bytes_allocated(), 0u);
}

TEST(ArenaPoolTest, SpillsIntoFreshChunks) {
  // A tiny chunk size forces many chunk transitions; every allocation must
  // stay aligned and writable across them.
  ArenaPool pool(/*chunk_bytes=*/256);
  std::vector<Span<uint32_t>> spans;
  for (int i = 0; i < 64; ++i) {
    Span<uint32_t> s = pool.AllocateArray<uint32_t>(17);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(s.data()) % ArenaPool::kAlignment, 0u);
    for (size_t j = 0; j < s.size(); ++j) {
      s[j] = static_cast<uint32_t>(i * 1000 + static_cast<int>(j));
    }
    spans.push_back(s);
  }
  for (int i = 0; i < 64; ++i) {
    for (size_t j = 0; j < spans[static_cast<size_t>(i)].size(); ++j) {
      EXPECT_EQ(spans[static_cast<size_t>(i)][j],
                static_cast<uint32_t>(i * 1000 + static_cast<int>(j)));
    }
  }
  EXPECT_EQ(pool.bytes_allocated(), 64u * 17u * sizeof(uint32_t));
}

TEST(ArenaPoolTest, OversizedAllocationGetsOwnChunk) {
  ArenaPool pool(/*chunk_bytes=*/128);
  Span<double> big = pool.AllocateArray<double>(1000);  // 8000 bytes > chunk.
  ASSERT_EQ(big.size(), 1000u);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<double>(i);
  EXPECT_EQ(std::accumulate(big.begin(), big.end(), 0.0), 999.0 * 1000.0 / 2.0);
}

TEST(ArenaPoolTest, ResetReclaimsEverything) {
  ArenaPool pool;
  (void)pool.AllocateArray<int32_t>(10);
  EXPECT_GT(pool.bytes_allocated(), 0u);
  pool.Reset();
  EXPECT_EQ(pool.bytes_allocated(), 0u);
  // The pool must be reusable after Reset.
  Span<int32_t> again = pool.AllocateArray<int32_t>(5);
  EXPECT_EQ(again.size(), 5u);
}

TEST(ArenaPoolTest, MoveTransfersOwnership) {
  ArenaPool pool;
  Span<int32_t> span = pool.AllocateArray<int32_t>(8);
  for (size_t i = 0; i < span.size(); ++i) span[i] = static_cast<int32_t>(i);
  ArenaPool moved = std::move(pool);
  for (size_t i = 0; i < span.size(); ++i) {
    EXPECT_EQ(span[i], static_cast<int32_t>(i));  // Memory survived the move.
  }
  EXPECT_EQ(moved.bytes_allocated(), 8u * sizeof(int32_t));
}

}  // namespace
}  // namespace grouplink
