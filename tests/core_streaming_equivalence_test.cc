// Differential property suite for the streaming linker: streaming with an
// epoch refresh at (or after) the last arrival must reproduce the batch
// engine's link set *exactly*, under batched arrivals, interleaved
// removals, re-adds, and merges, at any thread count. Without refresh the
// streaming output is approximate (frozen IDF + dropped OOV tokens) and is
// checked against the documented subset relation on these workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core/incremental.h"
#include "core/linkage_engine.h"
#include "data/bibliographic_generator.h"

namespace grouplink {
namespace {

LinkageConfig TestConfig(int32_t threads = 1) {
  LinkageConfig config;
  config.theta = 0.35;
  config.group_threshold = 0.2;
  config.num_threads = threads;
  return config;
}

Dataset MakeCorpus(int32_t entities, uint64_t seed) {
  BibliographicConfig config;
  config.num_entities = entities;
  config.noise = 0.25;
  config.num_topics = 5;
  config.offtopic_word_prob = 0.5;
  config.seed = seed;
  return GenerateBibliographic(config);
}

std::vector<std::string> GroupTexts(const Dataset& dataset, int32_t group) {
  std::vector<std::string> texts;
  for (const int32_t r : dataset.groups[static_cast<size_t>(group)].record_ids) {
    texts.push_back(dataset.records[static_cast<size_t>(r)].text);
  }
  return texts;
}

// Mirror of the streaming linker's id spaces, driven by the test alongside
// the linker itself. From it we can build, at any point, the dataset a
// batch engine would see: live records in record-id (= arrival) order,
// live groups in slot order.
struct StreamMirror {
  std::vector<std::string> record_texts;
  std::vector<char> record_alive;
  std::vector<std::vector<int32_t>> group_records;
  std::vector<std::string> group_labels;
  std::vector<char> group_alive;

  void Seed(const Dataset& dataset) {
    for (const Record& record : dataset.records) {
      record_texts.push_back(record.text);
      record_alive.push_back(1);
    }
    for (const Group& group : dataset.groups) {
      group_records.push_back(group.record_ids);
      group_labels.push_back(group.label);
      group_alive.push_back(1);
    }
  }

  void Add(const GroupArrival& arrival) {
    std::vector<int32_t> records;
    for (const std::string& text : arrival.record_texts) {
      records.push_back(static_cast<int32_t>(record_texts.size()));
      record_texts.push_back(text);
      record_alive.push_back(1);
    }
    group_records.push_back(std::move(records));
    group_labels.push_back(arrival.label);
    group_alive.push_back(1);
  }

  void Remove(int32_t group) {
    for (const int32_t r : group_records[static_cast<size_t>(group)]) {
      record_alive[static_cast<size_t>(r)] = 0;
    }
    group_records[static_cast<size_t>(group)].clear();
    group_alive[static_cast<size_t>(group)] = 0;
  }

  void Merge(int32_t into, int32_t from) {
    auto& target = group_records[static_cast<size_t>(into)];
    auto& source = group_records[static_cast<size_t>(from)];
    target.insert(target.end(), source.begin(), source.end());
    std::sort(target.begin(), target.end());
    source.clear();
    group_alive[static_cast<size_t>(from)] = 0;
  }

  // The live corpus as a batch dataset; `group_map[slot]` is the compacted
  // group index (or -1 for tombstones). Record and group orders match the
  // streaming linker's exactly, which is what makes the comparison
  // bit-exact rather than merely set-equal.
  Dataset Compact(std::vector<int32_t>* group_map) const {
    Dataset dataset;
    std::vector<int32_t> record_map(record_texts.size(), -1);
    for (size_t r = 0; r < record_texts.size(); ++r) {
      if (!record_alive[r]) continue;
      record_map[r] = static_cast<int32_t>(dataset.records.size());
      Record record;
      record.id = "r" + std::to_string(r);
      record.text = record_texts[r];
      dataset.records.push_back(std::move(record));
    }
    group_map->assign(group_records.size(), -1);
    for (size_t g = 0; g < group_records.size(); ++g) {
      if (!group_alive[g]) continue;
      (*group_map)[g] = static_cast<int32_t>(dataset.groups.size());
      Group group;
      group.id = "g" + std::to_string(g);
      group.label = group_labels[g];
      for (const int32_t r : group_records[g]) {
        group.record_ids.push_back(record_map[static_cast<size_t>(r)]);
      }
      dataset.groups.push_back(std::move(group));
    }
    return dataset;
  }
};

std::vector<std::pair<int32_t, int32_t>> MapPairs(
    const std::vector<std::pair<int32_t, int32_t>>& pairs,
    const std::vector<int32_t>& group_map) {
  std::vector<std::pair<int32_t, int32_t>> mapped;
  mapped.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    mapped.emplace_back(group_map[static_cast<size_t>(a)],
                        group_map[static_cast<size_t>(b)]);
  }
  return mapped;
}

std::vector<std::pair<int32_t, int32_t>> BatchPairs(const Dataset& dataset,
                                                    const LinkageConfig& config) {
  const auto result = RunGroupLinkage(dataset, config);
  EXPECT_TRUE(result.ok());
  return result->linked_pairs;
}

// Splits `full` into a seed prefix dataset and the remaining arrivals.
void Split(const Dataset& full, int32_t seed_groups, Dataset* seed,
           std::vector<GroupArrival>* arrivals) {
  for (int32_t g = 0; g < full.num_groups(); ++g) {
    if (g < seed_groups) {
      Group rebased;
      rebased.id = full.groups[static_cast<size_t>(g)].id;
      rebased.label = full.groups[static_cast<size_t>(g)].label;
      for (const int32_t r : full.groups[static_cast<size_t>(g)].record_ids) {
        rebased.record_ids.push_back(static_cast<int32_t>(seed->records.size()));
        seed->records.push_back(full.records[static_cast<size_t>(r)]);
      }
      seed->groups.push_back(std::move(rebased));
    } else {
      arrivals->push_back(
          {full.groups[static_cast<size_t>(g)].label, GroupTexts(full, g)});
    }
  }
  ASSERT_TRUE(seed->Validate().ok());
}

TEST(StreamingEquivalenceTest, RefreshEveryArrivalMatchesBatchExactly) {
  for (const uint64_t seed : {7u, 21u, 42u}) {
    for (const int32_t entities : {15, 35}) {
      const Dataset full = MakeCorpus(entities, seed);
      Dataset seed_dataset;
      std::vector<GroupArrival> arrivals;
      Split(full, full.num_groups() / 2, &seed_dataset, &arrivals);
      ASSERT_FALSE(arrivals.empty());

      StreamingConfig streaming;
      streaming.refresh_every_n_groups = 1;  // Refresh at every arrival.
      IncrementalLinker linker(TestConfig(), streaming);
      ASSERT_TRUE(linker.Initialize(seed_dataset).ok());
      StreamMirror mirror;
      mirror.Seed(seed_dataset);
      for (const GroupArrival& arrival : arrivals) {
        const auto added = linker.AddGroup(arrival.label, arrival.record_texts);
        EXPECT_TRUE(added.triggered_refresh);
        mirror.Add(arrival);
      }

      std::vector<int32_t> group_map;
      const Dataset accumulated = mirror.Compact(&group_map);
      EXPECT_EQ(MapPairs(linker.linked_pairs(), group_map),
                BatchPairs(accumulated, linker.engine_config()))
          << "seed=" << seed << " entities=" << entities;
    }
  }
}

TEST(StreamingEquivalenceTest, BatchedArrivalsWithFinalRefreshMatchBatch) {
  for (const uint64_t seed : {3u, 101u}) {
    const Dataset full = MakeCorpus(30, seed);
    Dataset seed_dataset;
    std::vector<GroupArrival> arrivals;
    Split(full, full.num_groups() / 3, &seed_dataset, &arrivals);

    IncrementalLinker linker(TestConfig());
    ASSERT_TRUE(linker.Initialize(seed_dataset).ok());
    StreamMirror mirror;
    mirror.Seed(seed_dataset);
    // Feed the stream in irregular batch sizes (1, 3, 5, 1, 3, ...).
    const int32_t sizes[] = {1, 3, 5};
    size_t next = 0;
    size_t size_index = 0;
    while (next < arrivals.size()) {
      const size_t take = std::min<size_t>(
          static_cast<size_t>(sizes[size_index % 3]), arrivals.size() - next);
      ++size_index;
      std::vector<GroupArrival> batch(arrivals.begin() + static_cast<ptrdiff_t>(next),
                                      arrivals.begin() +
                                          static_cast<ptrdiff_t>(next + take));
      for (const GroupArrival& arrival : batch) mirror.Add(arrival);
      const auto results = linker.AddGroups(batch);
      EXPECT_EQ(results.size(), take);
      next += take;
    }
    linker.Refresh();

    std::vector<int32_t> group_map;
    const Dataset accumulated = mirror.Compact(&group_map);
    EXPECT_EQ(MapPairs(linker.linked_pairs(), group_map),
              BatchPairs(accumulated, linker.engine_config()))
        << "seed=" << seed;
  }
}

TEST(StreamingEquivalenceTest, InterleavedRemoveReAddConvergesToBatch) {
  const Dataset full = MakeCorpus(30, 55);
  Dataset seed_dataset;
  std::vector<GroupArrival> arrivals;
  Split(full, full.num_groups() / 2, &seed_dataset, &arrivals);
  ASSERT_GE(arrivals.size(), 4u);

  IncrementalLinker linker(TestConfig());
  ASSERT_TRUE(linker.Initialize(seed_dataset).ok());
  StreamMirror mirror;
  mirror.Seed(seed_dataset);

  // Interleave: add two, remove a seed group, add the rest, remove one
  // streamed group, then re-add its texts as a brand-new group.
  mirror.Add(arrivals[0]);
  linker.AddGroup(arrivals[0].label, arrivals[0].record_texts);
  mirror.Add(arrivals[1]);
  const auto second = linker.AddGroup(arrivals[1].label, arrivals[1].record_texts);

  linker.RemoveGroup(2);
  mirror.Remove(2);

  for (size_t k = 2; k < arrivals.size(); ++k) {
    mirror.Add(arrivals[k]);
    linker.AddGroup(arrivals[k].label, arrivals[k].record_texts);
  }

  linker.RemoveGroup(second.group_index);
  mirror.Remove(second.group_index);
  mirror.Add(arrivals[1]);
  linker.AddGroup(arrivals[1].label, arrivals[1].record_texts);

  linker.Refresh();
  std::vector<int32_t> group_map;
  const Dataset accumulated = mirror.Compact(&group_map);
  EXPECT_EQ(MapPairs(linker.linked_pairs(), group_map),
            BatchPairs(accumulated, linker.engine_config()));
}

TEST(StreamingEquivalenceTest, MergeThenRefreshConvergesToBatch) {
  const Dataset full = MakeCorpus(25, 13);
  IncrementalLinker linker(TestConfig());
  ASSERT_TRUE(linker.Initialize(full).ok());
  ASSERT_FALSE(linker.linked_pairs().empty());
  StreamMirror mirror;
  mirror.Seed(full);

  const auto [into, from] = linker.linked_pairs().front();
  linker.MergeGroups(into, from);
  mirror.Merge(into, from);

  linker.Refresh();
  std::vector<int32_t> group_map;
  const Dataset accumulated = mirror.Compact(&group_map);
  EXPECT_EQ(MapPairs(linker.linked_pairs(), group_map),
            BatchPairs(accumulated, linker.engine_config()));
}

TEST(StreamingEquivalenceTest, NoRefreshStreamingUnderLinksOnTheseWorkloads) {
  // Without refresh the epoch statistics freeze at the seed: arrivals'
  // novel tokens are dropped from vectors and IDF drifts, so streaming
  // typically misses links batch finds. This is the documented
  // approximation, checked as a subset relation on fixed-seed workloads
  // (it is not a theorem — dropping tokens can also *raise* a normalized
  // similarity — hence fixed seeds rather than random ones).
  for (const uint64_t seed : {7u, 21u, 42u}) {
    const Dataset full = MakeCorpus(25, seed);
    Dataset seed_dataset;
    std::vector<GroupArrival> arrivals;
    Split(full, full.num_groups() / 2, &seed_dataset, &arrivals);

    IncrementalLinker linker(TestConfig());
    ASSERT_TRUE(linker.Initialize(seed_dataset).ok());
    StreamMirror mirror;
    mirror.Seed(seed_dataset);
    for (const GroupArrival& arrival : arrivals) {
      linker.AddGroup(arrival.label, arrival.record_texts);
      mirror.Add(arrival);
    }

    std::vector<int32_t> group_map;
    const Dataset accumulated = mirror.Compact(&group_map);
    const auto batch = BatchPairs(accumulated, linker.engine_config());
    const auto streamed = MapPairs(linker.linked_pairs(), group_map);
    for (const auto& pair : streamed) {
      EXPECT_TRUE(std::binary_search(batch.begin(), batch.end(), pair))
          << "streaming invented link (" << pair.first << ", " << pair.second
          << ") absent from batch, seed=" << seed;
    }
    // And a refresh closes the gap completely.
    linker.Refresh();
    EXPECT_EQ(MapPairs(linker.linked_pairs(), group_map), batch);
  }
}

TEST(StreamingEquivalenceTest, AddGroupsBitIdenticalAcrossThreadCounts) {
  const Dataset full = MakeCorpus(30, 77);
  Dataset seed_dataset;
  std::vector<GroupArrival> arrivals;
  Split(full, full.num_groups() / 2, &seed_dataset, &arrivals);

  std::vector<std::vector<std::pair<int32_t, int32_t>>> linked_by_threads;
  std::vector<std::vector<size_t>> labels_by_threads;
  std::vector<std::vector<size_t>> candidates_by_threads;
  for (const int32_t threads : {1, 2, 7}) {
    IncrementalLinker linker(TestConfig(threads));
    ASSERT_TRUE(linker.Initialize(seed_dataset).ok());
    // One big batch exercises the parallel arrival phases hardest.
    const auto results = linker.AddGroups(arrivals);
    std::vector<size_t> candidates;
    for (const auto& result : results) candidates.push_back(result.candidates);
    linked_by_threads.push_back(linker.linked_pairs());
    labels_by_threads.push_back(linker.ClusterLabels());
    candidates_by_threads.push_back(std::move(candidates));
  }
  for (size_t i = 1; i < linked_by_threads.size(); ++i) {
    EXPECT_EQ(linked_by_threads[i], linked_by_threads[0]);
    EXPECT_EQ(labels_by_threads[i], labels_by_threads[0]);
    EXPECT_EQ(candidates_by_threads[i], candidates_by_threads[0]);
  }
}

TEST(StreamingEquivalenceTest, RefreshBitIdenticalAcrossThreadCounts) {
  const Dataset full = MakeCorpus(25, 31);
  std::vector<std::vector<std::pair<int32_t, int32_t>>> linked_by_threads;
  for (const int32_t threads : {1, 4}) {
    IncrementalLinker linker(TestConfig(threads));
    ASSERT_TRUE(linker.Initialize(full).ok());
    linker.RemoveGroup(1);
    linker.Refresh();
    linked_by_threads.push_back(linker.linked_pairs());
  }
  EXPECT_EQ(linked_by_threads[0], linked_by_threads[1]);
}

}  // namespace
}  // namespace grouplink
