#include "common/execution_context.h"

#include <chrono>
#include <thread>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "gtest/gtest.h"

namespace grouplink {
namespace {

TEST(ExecutionContextTest, DefaultContextNeverStops) {
  ExecutionContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.StopRequested());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kNone);
  EXPECT_STREQ(ctx.stop_reason_name(), "");
  EXPECT_FALSE(ctx.degraded());
  EXPECT_TRUE(ctx.ToStatus().ok());
}

TEST(ExecutionContextTest, CancellationIsSharedAndSticky) {
  CancellationToken token;
  ExecutionContext ctx;
  ctx.SetCancellation(token);
  EXPECT_FALSE(ctx.StopRequested());
  token.Cancel();
  EXPECT_TRUE(ctx.StopRequested());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kCancelled);
  EXPECT_STREQ(ctx.stop_reason_name(), "cancelled");
  EXPECT_TRUE(ctx.degraded());
  EXPECT_EQ(ctx.ToStatus().code(), StatusCode::kCancelled);
}

TEST(ExecutionContextTest, CopiedTokenObservesCancel) {
  CancellationToken token;
  CancellationToken copy = token;
  copy.Cancel();
  EXPECT_TRUE(token.cancelled());
}

TEST(ExecutionContextTest, ExpiredDeadlineStopsTheRun) {
  ExecutionContext ctx;
  ctx.SetDeadline(0.01);  // 10 microseconds: expires essentially at once.
  EXPECT_TRUE(ctx.has_deadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(ctx.StopRequested());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kDeadlineExpired);
  EXPECT_STREQ(ctx.stop_reason_name(), "deadline");
  EXPECT_EQ(ctx.ToStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecutionContextTest, GenerousDeadlineDoesNotStop) {
  ExecutionContext ctx;
  ctx.SetDeadline(60'000.0);
  EXPECT_FALSE(ctx.StopRequested());
  ctx.SetDeadline(0.0);  // Disarm.
  EXPECT_FALSE(ctx.has_deadline());
}

TEST(ExecutionContextTest, FirstStopCauseWins) {
  CancellationToken token;
  ExecutionContext ctx;
  ctx.SetCancellation(token);
  token.Cancel();
  EXPECT_TRUE(ctx.StopRequested());
  ctx.SetDeadline(0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(ctx.StopRequested());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kCancelled)
      << "the sticky first cause must not be overwritten";
}

TEST(ExecutionContextTest, InjectedDeadlineFaultStops) {
  ScopedFaultClear clear;
  ExecutionContext ctx;
  EXPECT_FALSE(ctx.StopRequested());
  FaultInjector::Default().Arm(faults::kDeadline, FaultSpec{});
  EXPECT_TRUE(ctx.StopRequested());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kFaultInjected);
  EXPECT_STREQ(ctx.stop_reason_name(), "fault-injected");
  EXPECT_EQ(ctx.ToStatus().code(), StatusCode::kDeadlineExceeded);
  // Sticky even after the fault is disarmed.
  FaultInjector::Default().DisarmAll();
  EXPECT_TRUE(ctx.StopRequested());
}

TEST(ExecutionContextTest, MatcherBudget) {
  ExecutionContext ctx;
  EXPECT_FALSE(ctx.ExceedsMatcherBudget(1 << 30));  // Unlimited by default.
  ctx.SetMaxMatcherCost(100);
  EXPECT_FALSE(ctx.ExceedsMatcherBudget(100));
  EXPECT_TRUE(ctx.ExceedsMatcherBudget(101));
}

TEST(ExecutionContextTest, CandidateCap) {
  ExecutionContext ctx;
  EXPECT_EQ(ctx.EffectiveCandidateCap(50), 50u);
  ctx.SetMaxCandidatePairs(10);
  EXPECT_EQ(ctx.EffectiveCandidateCap(50), 10u);
  EXPECT_EQ(ctx.EffectiveCandidateCap(5), 5u);  // Never raises the count.
}

TEST(ExecutionContextTest, OversizedCandidatesFaultShrinksTheCap) {
  ScopedFaultClear clear;
  ExecutionContext ctx;
  FaultSpec spec;
  spec.magnitude = 3;
  FaultInjector::Default().Arm(faults::kOversizedCandidates, spec);
  EXPECT_EQ(ctx.EffectiveCandidateCap(50), 3u);

  FaultInjector::Default().Arm(faults::kOversizedCandidates, FaultSpec{});
  EXPECT_EQ(ctx.EffectiveCandidateCap(50), 25u) << "magnitude 0 halves the list";
}

TEST(ExecutionContextTest, NoteDegradedIsObservableAndIdempotent) {
  ExecutionContext ctx;
  ctx.NoteDegraded();
  ctx.NoteDegraded();
  EXPECT_TRUE(ctx.degraded());
  EXPECT_FALSE(ctx.StopRequested()) << "degraded alone is not a stop request";
}

TEST(ExecutionContextTest, ParallelForStopsWithinOneTaskQuantum) {
  // Tentpole proof #1 (serial half): once the token is cancelled, at most
  // the in-flight iteration finishes; every later iteration is shed.
  CancellationToken token;
  ExecutionContext ctx;
  ctx.SetCancellation(token);
  size_t executed_iterations = 0;
  const size_t executed = ParallelFor(
      /*pool=*/nullptr, 1000,
      [&](size_t i) {
        ++executed_iterations;
        if (i == 4) token.Cancel();
      },
      &ctx);
  EXPECT_EQ(executed, 5u) << "iterations 0..4 ran; 5 onward were shed";
  EXPECT_EQ(executed_iterations, 5u);
  EXPECT_TRUE(ctx.StopRequested());
}

TEST(ExecutionContextTest, ParallelForStopsWithinOneQuantumPerWorker) {
  ThreadPool pool(2);
  CancellationToken token;
  ExecutionContext ctx;
  ctx.SetCancellation(token);
  std::atomic<size_t> executed_iterations{0};
  constexpr size_t kN = 10'000;
  token.Cancel();  // Cancelled before the loop even starts.
  const size_t executed = ParallelFor(
      &pool, kN, [&](size_t) { executed_iterations.fetch_add(1); }, &ctx);
  // Each chunk observes the stop on its first poll, so nothing runs.
  EXPECT_EQ(executed, 0u);
  EXPECT_EQ(executed_iterations.load(), 0u);
}

TEST(ExecutionContextTest, ParallelForWithoutContextRunsEverything) {
  std::atomic<size_t> executed_iterations{0};
  const size_t executed = ParallelFor(
      /*pool=*/nullptr, 100, [&](size_t) { executed_iterations.fetch_add(1); },
      /*ctx=*/nullptr);
  EXPECT_EQ(executed, 100u);
  EXPECT_EQ(executed_iterations.load(), 100u);
}

TEST(ExecutionContextTest, FailTaskFaultShedsChunksAndMarksDegraded) {
  ScopedFaultClear clear;
  FaultInjector::Default().Arm(faults::kFailTask, FaultSpec{});
  ExecutionContext ctx;
  std::atomic<size_t> executed_iterations{0};
  const size_t executed = ParallelFor(
      /*pool=*/nullptr, 100, [&](size_t) { executed_iterations.fetch_add(1); },
      &ctx);
  EXPECT_EQ(executed, 0u) << "the single serial chunk was dropped";
  EXPECT_EQ(executed_iterations.load(), 0u);
  EXPECT_TRUE(ctx.degraded());
  EXPECT_FALSE(ctx.StopRequested()) << "a failed task is shed, not a stop";
}

}  // namespace
}  // namespace grouplink
