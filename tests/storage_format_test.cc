// Unit suite of the storage tier's byte and page codecs: varint /
// fixed-width / delta round trips, ByteReader's rejection of truncated
// or malformed input, CRC32 properties, page frame seal/verify, and
// Vocabulary::Restore bit-identity.
#include "storage/page.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "storage/store_format.h"
#include "text/vocabulary.h"

namespace grouplink {
namespace storage {
namespace {

TEST(ByteCodecTest, VarintRoundTripsBoundaryValues) {
  const std::vector<uint64_t> values = {
      0,       1,        127,        128,        16383,
      16384,   (1u << 21) - 1,       1ull << 32, std::numeric_limits<int64_t>::max(),
      std::numeric_limits<uint64_t>::max()};
  std::vector<uint8_t> bytes;
  for (const uint64_t v : values) PutVarint(bytes, v);
  ByteReader reader(bytes.data(), bytes.size());
  for (const uint64_t v : values) {
    const auto decoded = reader.ReadVarint();
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, v);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteCodecTest, FixedWidthAndDoubleAreBitExact) {
  std::vector<uint8_t> bytes;
  PutFixed32(bytes, 0xdeadbeefu);
  PutFixed64(bytes, 0x0123456789abcdefull);
  const double values[] = {0.0, -0.0, 1.5, -3.25e300, 5e-324,
                           std::numeric_limits<double>::infinity()};
  for (const double v : values) PutDouble(bytes, v);
  ByteReader reader(bytes.data(), bytes.size());
  EXPECT_EQ(*reader.ReadFixed32(), 0xdeadbeefu);
  EXPECT_EQ(*reader.ReadFixed64(), 0x0123456789abcdefull);
  for (const double v : values) {
    const auto decoded = reader.ReadDouble();
    ASSERT_TRUE(decoded.ok());
    // Bit comparison, not value comparison: -0.0 must stay -0.0.
    uint64_t want_bits, got_bits;
    std::memcpy(&want_bits, &v, sizeof(v));
    std::memcpy(&got_bits, &*decoded, sizeof(v));
    EXPECT_EQ(got_bits, want_bits);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteCodecTest, StringAndDeltaListRoundTrip) {
  std::vector<uint8_t> bytes;
  PutString(bytes, "");
  PutString(bytes, std::string("with\0nul", 8));
  PutDeltaVarints(bytes, {});
  PutDeltaVarints(bytes, {0, 1, 2, 1000000, 2000000000});
  ByteReader reader(bytes.data(), bytes.size());
  EXPECT_EQ(*reader.ReadString(), "");
  EXPECT_EQ(*reader.ReadString(), std::string("with\0nul", 8));
  std::vector<int32_t> list;
  ASSERT_TRUE(reader.ReadDeltaVarints(&list).ok());
  EXPECT_TRUE(list.empty());
  ASSERT_TRUE(reader.ReadDeltaVarints(&list).ok());
  EXPECT_EQ(list, (std::vector<int32_t>{0, 1, 2, 1000000, 2000000000}));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteCodecTest, TruncatedAndMalformedInputIsDataLoss) {
  std::vector<uint8_t> bytes;
  PutVarint(bytes, 300);
  {
    ByteReader truncated(bytes.data(), 1);  // Continuation byte cut off.
    EXPECT_EQ(truncated.ReadVarint().status().code(), StatusCode::kDataLoss);
  }
  {
    ByteReader empty(bytes.data(), 0);
    EXPECT_EQ(empty.ReadFixed32().status().code(), StatusCode::kDataLoss);
    EXPECT_EQ(empty.ReadDouble().status().code(), StatusCode::kDataLoss);
    EXPECT_EQ(empty.ReadString().status().code(), StatusCode::kDataLoss);
  }
  {
    // A string whose claimed length exceeds the remaining bytes.
    std::vector<uint8_t> lying;
    PutVarint(lying, 1000);
    lying.push_back('x');
    ByteReader reader(lying.data(), lying.size());
    EXPECT_EQ(reader.ReadString().status().code(), StatusCode::kDataLoss);
  }
  {
    // A delta list whose count exceeds the remaining bytes.
    std::vector<uint8_t> lying;
    PutVarint(lying, 1u << 30);
    ByteReader reader(lying.data(), lying.size());
    std::vector<int32_t> list;
    EXPECT_EQ(reader.ReadDeltaVarints(&list).code(), StatusCode::kDataLoss);
  }
}

TEST(Crc32Test, DetectsEveryFlippedBitInASmallFrame) {
  std::vector<uint8_t> data(64, 0xa5);
  const uint32_t clean = Crc32(data.data(), data.size());
  for (size_t bit = 0; bit < data.size() * 8; ++bit) {
    data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(Crc32(data.data(), data.size()), clean) << "bit " << bit;
    data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
  EXPECT_EQ(Crc32(data.data(), data.size()), clean);
}

TEST(Crc32Test, SeedChainsIncrementalComputation) {
  const std::string text = "group linkage storage tier";
  const auto* bytes = reinterpret_cast<const uint8_t*>(text.data());
  const uint32_t whole = Crc32(bytes, text.size());
  const uint32_t chained = Crc32(bytes + 10, text.size() - 10, Crc32(bytes, 10));
  EXPECT_EQ(chained, whole);
}

TEST(PageFrameTest, SealThenVerifyRoundTrips) {
  const uint32_t page_bytes = kMinPageBytes;
  std::vector<uint8_t> frame(page_bytes, 0);
  const std::string payload = "payload bytes";
  std::memcpy(frame.data() + kPageHeaderBytes, payload.data(), payload.size());
  SealPageFrame(7, PageType::kSegment, static_cast<uint32_t>(payload.size()),
                frame.data(), page_bytes);
  const auto view = VerifyPageFrame(frame.data(), page_bytes, 7);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->type, PageType::kSegment);
  EXPECT_EQ(view->payload_len, payload.size());
  EXPECT_EQ(std::memcmp(view->payload, payload.data(), payload.size()), 0);
}

TEST(PageFrameTest, VerifyRejectsCorruptionWrongIdAndBadBounds) {
  const uint32_t page_bytes = kMinPageBytes;
  std::vector<uint8_t> frame(page_bytes, 0);
  SealPageFrame(3, PageType::kSegment, 10, frame.data(), page_bytes);

  // Wrong expected page id: a page read from the wrong offset.
  EXPECT_EQ(VerifyPageFrame(frame.data(), page_bytes, 4).status().code(),
            StatusCode::kDataLoss);

  // Any single flipped bit — in the payload, the header fields, or the
  // zero padding — must fail verification.
  for (const size_t offset : {4u, 9u, 13u, 20u, page_bytes - 1}) {
    frame[offset] ^= 0x40;
    EXPECT_EQ(VerifyPageFrame(frame.data(), page_bytes, 3).status().code(),
              StatusCode::kDataLoss)
        << "offset " << offset;
    frame[offset] ^= 0x40;
  }
  EXPECT_TRUE(VerifyPageFrame(frame.data(), page_bytes, 3).ok());

  // A payload length beyond capacity with a matching checksum: the
  // bounds check itself must reject it. SealPageFrame refuses to build
  // such a frame, so forge the field and re-checksum by hand.
  const uint32_t lying_len = page_bytes;
  frame[12] = static_cast<uint8_t>(lying_len);
  frame[13] = static_cast<uint8_t>(lying_len >> 8);
  frame[14] = static_cast<uint8_t>(lying_len >> 16);
  frame[15] = static_cast<uint8_t>(lying_len >> 24);
  const uint32_t crc = Crc32(frame.data() + 4, page_bytes - 4);
  frame[0] = static_cast<uint8_t>(crc);
  frame[1] = static_cast<uint8_t>(crc >> 8);
  frame[2] = static_cast<uint8_t>(crc >> 16);
  frame[3] = static_cast<uint8_t>(crc >> 24);
  EXPECT_EQ(VerifyPageFrame(frame.data(), page_bytes, 3).status().code(),
            StatusCode::kDataLoss);
}

TEST(VocabularyRestoreTest, RestoredVocabularyIsBitIdentical) {
  Vocabulary original;
  original.AddDocument({"rakesh", "agrawal"});
  original.AddDocument({"data", "mining", "agrawal"});
  original.AddDocument({"data", "linkage"});

  std::vector<std::string> tokens;
  std::vector<int64_t> dfs;
  for (size_t id = 0; id < original.size(); ++id) {
    tokens.push_back(original.TokenOf(static_cast<int32_t>(id)));
    dfs.push_back(original.DocumentFrequencyOf(static_cast<int32_t>(id)));
  }
  const Vocabulary restored =
      Vocabulary::Restore(tokens, dfs, original.num_documents());

  ASSERT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.num_documents(), original.num_documents());
  for (size_t id = 0; id < original.size(); ++id) {
    const int32_t i = static_cast<int32_t>(id);
    EXPECT_EQ(restored.TokenOf(i), original.TokenOf(i));
    EXPECT_EQ(restored.DocumentFrequencyOf(i), original.DocumentFrequencyOf(i));
    // IDF must be the same *bits* (it feeds TF-IDF weights).
    EXPECT_EQ(restored.IdfOf(i), original.IdfOf(i));
    EXPECT_EQ(restored.GetId(original.TokenOf(i)), i);
  }
  EXPECT_EQ(restored.GetId("never-seen"), Vocabulary::kUnknownToken);
}

TEST(MetaCodecTest, MetaRoundTripsEveryField) {
  MetaData meta;
  meta.config.theta = 0.375;
  meta.config.group_threshold = 0.21;
  meta.config.num_threads = 4;
  meta.config.use_lower_bound_accept = false;
  meta.config.max_candidate_pairs = 123456789;
  meta.epoch = 17;
  meta.num_records = 5;
  meta.num_groups = 3;
  meta.num_alive_groups = 2;
  meta.record_group = {0, 0, 1, 2, 2};
  meta.record_removed = {0, 0, 1, 0, 1};
  meta.group_alive = {1, 1, 0};
  meta.group_labels = {"ullman", "garcia-molina", ""};
  meta.group_records = {{0, 1}, {2}, {3, 4}};
  meta.linked_pairs = {{0, 1}};
  meta.cluster_labels = {0, 0, 2};

  std::vector<uint8_t> bytes;
  EncodeMeta(meta, bytes);
  MetaData decoded;
  ASSERT_TRUE(DecodeMeta(bytes, &decoded).ok());

  EXPECT_EQ(decoded.config.theta, meta.config.theta);
  EXPECT_EQ(decoded.config.group_threshold, meta.config.group_threshold);
  EXPECT_EQ(decoded.config.num_threads, meta.config.num_threads);
  EXPECT_EQ(decoded.config.use_lower_bound_accept,
            meta.config.use_lower_bound_accept);
  EXPECT_EQ(decoded.config.max_candidate_pairs, meta.config.max_candidate_pairs);
  EXPECT_EQ(decoded.epoch, meta.epoch);
  EXPECT_EQ(decoded.num_records, meta.num_records);
  EXPECT_EQ(decoded.record_group, meta.record_group);
  EXPECT_EQ(decoded.record_removed, meta.record_removed);
  EXPECT_EQ(decoded.group_alive, meta.group_alive);
  EXPECT_EQ(decoded.group_labels, meta.group_labels);
  EXPECT_EQ(decoded.group_records, meta.group_records);
  EXPECT_EQ(decoded.linked_pairs, meta.linked_pairs);
  EXPECT_EQ(decoded.cluster_labels, meta.cluster_labels);

  // Trailing garbage after a well-formed meta must be rejected.
  bytes.push_back(0);
  EXPECT_EQ(DecodeMeta(bytes, &decoded).code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace storage
}  // namespace grouplink
