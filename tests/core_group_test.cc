#include "core/group.h"

#include <gtest/gtest.h>

namespace grouplink {
namespace {

Record MakeRecord(const std::string& text) {
  Record record;
  record.id = text;
  record.text = text;
  return record;
}

TEST(DatasetTest, MakeDatasetPartitionsRecords) {
  const auto dataset = MakeDataset({MakeRecord("a"), MakeRecord("b"), MakeRecord("c")},
                                   {0, 1, 0}, 2);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->num_records(), 3);
  EXPECT_EQ(dataset->num_groups(), 2);
  EXPECT_EQ(dataset->GroupSize(0), 2);
  EXPECT_EQ(dataset->GroupSize(1), 1);
  EXPECT_EQ(dataset->groups[0].record_ids, (std::vector<int32_t>{0, 2}));
}

TEST(DatasetTest, MakeDatasetRejectsBadGroupIndex) {
  EXPECT_FALSE(MakeDataset({MakeRecord("a")}, {5}, 2).ok());
  EXPECT_FALSE(MakeDataset({MakeRecord("a")}, {-1}, 2).ok());
}

TEST(DatasetTest, MakeDatasetRejectsSizeMismatch) {
  EXPECT_FALSE(MakeDataset({MakeRecord("a"), MakeRecord("b")}, {0}, 1).ok());
}

TEST(DatasetTest, MakeDatasetRejectsEmptyGroup) {
  // Group 1 gets no records.
  EXPECT_FALSE(MakeDataset({MakeRecord("a")}, {0}, 2).ok());
}

TEST(DatasetTest, ValidateCatchesDoubleMembership) {
  Dataset dataset;
  dataset.records = {MakeRecord("a")};
  Group g1;
  g1.id = "g1";
  g1.record_ids = {0};
  Group g2;
  g2.id = "g2";
  g2.record_ids = {0};
  dataset.groups = {g1, g2};
  EXPECT_FALSE(dataset.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesOrphanRecord) {
  Dataset dataset;
  dataset.records = {MakeRecord("a"), MakeRecord("b")};
  Group g;
  g.id = "g";
  g.record_ids = {0};
  dataset.groups = {g};
  EXPECT_FALSE(dataset.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesEntityVectorMismatch) {
  auto dataset = MakeDataset({MakeRecord("a")}, {0}, 1);
  ASSERT_TRUE(dataset.ok());
  dataset->group_entities = {0, 1};
  EXPECT_FALSE(dataset->Validate().ok());
}

TEST(DatasetTest, RecordToGroupInverse) {
  const auto dataset = MakeDataset(
      {MakeRecord("a"), MakeRecord("b"), MakeRecord("c"), MakeRecord("d")},
      {1, 0, 1, 2}, 3);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->RecordToGroup(), (std::vector<int32_t>{1, 0, 1, 2}));
}

TEST(DatasetTest, TruePairsFromEntities) {
  const auto dataset =
      MakeDataset({MakeRecord("a"), MakeRecord("b"), MakeRecord("c"), MakeRecord("d")},
                  {0, 1, 2, 3}, 4, {7, 9, 7, Dataset::kUnknownEntity});
  ASSERT_TRUE(dataset.ok());
  const auto pairs = dataset->TruePairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], std::make_pair(0, 2));
}

TEST(DatasetTest, TruePairsEmptyWithoutGroundTruth) {
  const auto dataset = MakeDataset({MakeRecord("a"), MakeRecord("b")}, {0, 1}, 2);
  ASSERT_TRUE(dataset.ok());
  EXPECT_TRUE(dataset->TruePairs().empty());
}

}  // namespace
}  // namespace grouplink
