#include "text/tfidf.h"

#include <gtest/gtest.h>

#include <cmath>

#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace grouplink {
namespace {

Vocabulary MakeCorpusVocabulary() {
  Vocabulary vocab;
  vocab.AddDocument(ToTokenSet(Tokenize("query optimization in databases")));
  vocab.AddDocument(ToTokenSet(Tokenize("query processing")));
  vocab.AddDocument(ToTokenSet(Tokenize("distributed systems design")));
  return vocab;
}

TEST(VocabularyTest, AssignsStableIds) {
  Vocabulary vocab;
  vocab.AddDocument({"a", "b"});
  const int32_t a = vocab.GetId("a");
  const int32_t b = vocab.GetId("b");
  EXPECT_NE(a, Vocabulary::kUnknownToken);
  EXPECT_NE(b, Vocabulary::kUnknownToken);
  EXPECT_NE(a, b);
  EXPECT_EQ(vocab.TokenOf(a), "a");
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(VocabularyTest, UnknownTokenId) {
  Vocabulary vocab;
  vocab.AddDocument({"a"});
  EXPECT_EQ(vocab.GetId("missing"), Vocabulary::kUnknownToken);
}

TEST(VocabularyTest, DocumentFrequencyCounts) {
  Vocabulary vocab = MakeCorpusVocabulary();
  EXPECT_EQ(vocab.num_documents(), 3);
  EXPECT_EQ(vocab.DocumentFrequencyOf(vocab.GetId("query")), 2);
  EXPECT_EQ(vocab.DocumentFrequencyOf(vocab.GetId("databases")), 1);
}

TEST(VocabularyTest, IdfDecreasesWithFrequency) {
  Vocabulary vocab = MakeCorpusVocabulary();
  const double idf_common = vocab.IdfOf(vocab.GetId("query"));
  const double idf_rare = vocab.IdfOf(vocab.GetId("databases"));
  EXPECT_GT(idf_rare, idf_common);
  EXPECT_GT(idf_common, 0.0);
}

TEST(VocabularyTest, GetOrInsertDoesNotBumpDf) {
  Vocabulary vocab;
  const int32_t id = vocab.GetOrInsertId("new");
  EXPECT_EQ(vocab.DocumentFrequencyOf(id), 0);
  EXPECT_EQ(vocab.GetId("new"), id);
}

TEST(SparseVectorTest, L2NormAndNormalize) {
  SparseVector v;
  v.ids = {0, 1};
  v.weights = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(L2Norm(v), 5.0);
  L2Normalize(v);
  EXPECT_NEAR(L2Norm(v), 1.0, 1e-12);
  EXPECT_NEAR(v.weights[0], 0.6, 1e-12);
}

TEST(SparseVectorTest, NormalizeZeroVectorIsNoop) {
  SparseVector v;
  L2Normalize(v);
  EXPECT_TRUE(v.empty());
}

TEST(SparseVectorTest, DotProductMergesById) {
  SparseVector a;
  a.ids = {1, 3, 5};
  a.weights = {1.0, 2.0, 3.0};
  SparseVector b;
  b.ids = {3, 5, 7};
  b.weights = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(DotProduct(a, b), 2.0 * 4.0 + 3.0 * 5.0);
}

TEST(CosineTest, Conventions) {
  SparseVector empty;
  SparseVector unit;
  unit.ids = {0};
  unit.weights = {1.0};
  EXPECT_DOUBLE_EQ(CosineSimilarity(empty, empty), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(empty, unit), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(unit, unit), 1.0);
}

TEST(TfIdfVectorizerTest, IdenticalTextsHaveCosineOne) {
  Vocabulary vocab = MakeCorpusVocabulary();
  TfIdfVectorizer vectorizer(&vocab);
  const auto v1 = vectorizer.Vectorize(Tokenize("query optimization in databases"));
  const auto v2 = vectorizer.Vectorize(Tokenize("query optimization in databases"));
  EXPECT_NEAR(CosineSimilarity(v1, v2), 1.0, 1e-12);
}

TEST(TfIdfVectorizerTest, DisjointTextsHaveCosineZero) {
  Vocabulary vocab = MakeCorpusVocabulary();
  TfIdfVectorizer vectorizer(&vocab);
  const auto v1 = vectorizer.Vectorize(Tokenize("query processing"));
  const auto v2 = vectorizer.Vectorize(Tokenize("distributed systems design"));
  EXPECT_DOUBLE_EQ(CosineSimilarity(v1, v2), 0.0);
}

TEST(TfIdfVectorizerTest, OutOfVocabularyTokensDropped) {
  Vocabulary vocab = MakeCorpusVocabulary();
  TfIdfVectorizer vectorizer(&vocab);
  const auto v = vectorizer.Vectorize({"zzzz", "query"});
  EXPECT_EQ(v.size(), 1u);
}

TEST(TfIdfVectorizerTest, VectorsAreUnitNorm) {
  Vocabulary vocab = MakeCorpusVocabulary();
  TfIdfVectorizer vectorizer(&vocab);
  const auto v = vectorizer.Vectorize(Tokenize("query optimization"));
  EXPECT_NEAR(L2Norm(v), 1.0, 1e-12);
}

TEST(TfIdfVectorizerTest, RareTokenOverlapOutweighsCommon) {
  // Documents sharing the rare token should be more similar than documents
  // sharing only the common token.
  Vocabulary vocab;
  vocab.AddDocument({"common", "rare1"});
  vocab.AddDocument({"common", "rare2"});
  vocab.AddDocument({"common", "rare3"});
  vocab.AddDocument({"common", "rare4"});
  TfIdfVectorizer vectorizer(&vocab);
  const auto a = vectorizer.Vectorize({"common", "rare1", "filler"});
  const auto b = vectorizer.Vectorize({"common", "rare1"});
  const auto c = vectorizer.Vectorize({"common", "rare2"});
  EXPECT_GT(CosineSimilarity(a, b), CosineSimilarity(a, c));
}

TEST(TfIdfVectorizerTest, RepeatedTokensIncreaseWeight) {
  Vocabulary vocab = MakeCorpusVocabulary();
  TfIdfVectorizer vectorizer(&vocab);
  const auto once = vectorizer.Vectorize({"query", "processing"});
  const auto twice = vectorizer.Vectorize({"query", "query", "processing"});
  // More mass on "query" in the repeated vector.
  const int32_t id = vocab.GetId("query");
  const auto weight_of = [&](const SparseVector& v) {
    for (size_t i = 0; i < v.ids.size(); ++i) {
      if (v.ids[i] == id) return v.weights[i];
    }
    return 0.0;
  };
  EXPECT_GT(weight_of(twice), weight_of(once));
}

}  // namespace
}  // namespace grouplink
