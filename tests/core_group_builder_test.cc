#include "core/group_builder.h"

#include <gtest/gtest.h>

namespace grouplink {
namespace {

Record MakeRecord(const std::string& id, const std::string& author,
                  const std::string& text) {
  Record record;
  record.id = id;
  record.text = text;
  record.fields = {author};
  return record;
}

GroupKeyFn AuthorKey() {
  return [](const Record& record) {
    return record.fields.empty() ? "" : record.fields[0];
  };
}

TEST(BuildGroupsByKeyTest, GroupsByNormalizedKey) {
  std::vector<Record> records = {
      MakeRecord("a", "Jeffrey Ullman", "paper one"),
      MakeRecord("b", "  jeffrey   ULLMAN ", "paper two"),  // Normalizes equal.
      MakeRecord("c", "Maria Garcia", "paper three"),
  };
  const Dataset dataset = BuildGroupsByKey(std::move(records), AuthorKey());
  ASSERT_EQ(dataset.num_groups(), 2);
  EXPECT_EQ(dataset.groups[0].label, "jeffrey ullman");
  EXPECT_EQ(dataset.GroupSize(0), 2);
  EXPECT_EQ(dataset.GroupSize(1), 1);
}

TEST(BuildGroupsByKeyTest, EmptyKeysBecomeSingletons) {
  std::vector<Record> records = {
      MakeRecord("a", "", "one"),
      MakeRecord("b", "", "two"),
  };
  const Dataset dataset = BuildGroupsByKey(std::move(records), AuthorKey());
  EXPECT_EQ(dataset.num_groups(), 2);  // Not merged despite equal (empty) keys.
}

TEST(BuildGroupsByKeyTest, GroupOrderIsFirstAppearance) {
  std::vector<Record> records = {
      MakeRecord("a", "zeta", "1"),
      MakeRecord("b", "alpha", "2"),
      MakeRecord("c", "zeta", "3"),
  };
  const Dataset dataset = BuildGroupsByKey(std::move(records), AuthorKey());
  EXPECT_EQ(dataset.groups[0].label, "zeta");
  EXPECT_EQ(dataset.groups[1].label, "alpha");
}

TEST(BuildGroupsByFuzzyKeyTest, MergesTypoKeys) {
  std::vector<Record> records = {
      MakeRecord("a", "jeffrey ullman", "1"),
      MakeRecord("b", "jefrey ullman", "2"),   // One-letter typo.
      MakeRecord("c", "jeffrey ullman", "3"),
      MakeRecord("d", "maria garcia", "4"),
  };
  const Dataset dataset = BuildGroupsByFuzzyKey(std::move(records), AuthorKey());
  ASSERT_EQ(dataset.num_groups(), 2);
  // Canonical label: the majority key.
  EXPECT_EQ(dataset.groups[0].label, "jeffrey ullman");
  EXPECT_EQ(dataset.GroupSize(0), 3);
}

TEST(BuildGroupsByFuzzyKeyTest, DistinctNamesStayApart) {
  std::vector<Record> records = {
      MakeRecord("a", "jeffrey ullman", "1"),
      MakeRecord("b", "laura hernandez", "2"),
      MakeRecord("c", "wei chen", "3"),
  };
  const Dataset dataset = BuildGroupsByFuzzyKey(std::move(records), AuthorKey());
  EXPECT_EQ(dataset.num_groups(), 3);
}

TEST(BuildGroupsByFuzzyKeyTest, TransitiveMerge) {
  // a~b and b~c but a and c are two edits apart: the union-find closure
  // still puts all three together.
  std::vector<Record> records = {
      MakeRecord("a", "katherine johnson", "1"),
      MakeRecord("b", "katherine jonson", "2"),
      MakeRecord("c", "katherin jonson", "3"),
  };
  const Dataset dataset = BuildGroupsByFuzzyKey(std::move(records), AuthorKey());
  EXPECT_EQ(dataset.num_groups(), 1);
}

TEST(BuildGroupsByFuzzyKeyTest, ThresholdOneReducesToExact) {
  std::vector<Record> records = {
      MakeRecord("a", "jeffrey ullman", "1"),
      MakeRecord("b", "jefrey ullman", "2"),
  };
  FuzzyKeyConfig config;
  config.similarity_threshold = 1.0;
  const Dataset dataset =
      BuildGroupsByFuzzyKey(std::move(records), AuthorKey(), config);
  EXPECT_EQ(dataset.num_groups(), 2);
}

TEST(BuildGroupsByFuzzyKeyTest, CanonicalLabelIsMajorityKey) {
  std::vector<Record> records = {
      MakeRecord("a", "jon smith", "1"),
      MakeRecord("b", "john smith", "2"),
      MakeRecord("c", "john smith", "3"),
  };
  FuzzyKeyConfig config;
  config.similarity_threshold = 0.5;  // "jon" vs "john" sits around 0.6.
  const Dataset dataset =
      BuildGroupsByFuzzyKey(std::move(records), AuthorKey(), config);
  ASSERT_EQ(dataset.num_groups(), 1);
  EXPECT_EQ(dataset.groups[0].label, "john smith");
}

TEST(BuildGroupsByFuzzyKeyTest, EmptyInput) {
  const Dataset dataset = BuildGroupsByFuzzyKey({}, AuthorKey());
  EXPECT_EQ(dataset.num_records(), 0);
  EXPECT_EQ(dataset.num_groups(), 0);
  EXPECT_TRUE(dataset.Validate().ok());
}

}  // namespace
}  // namespace grouplink
