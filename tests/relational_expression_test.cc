#include "relational/expression.h"

#include <gtest/gtest.h>

namespace grouplink {
namespace {

Row SampleRow() { return {int64_t{3}, 2.5, "abc", Value()}; }

TEST(ExpressionTest, ColumnAndLiteral) {
  const Row row = SampleRow();
  EXPECT_EQ(Column(0)->Evaluate(row).AsInt(), 3);
  EXPECT_EQ(Column(2)->Evaluate(row).AsString(), "abc");
  EXPECT_TRUE(Column(3)->Evaluate(row).is_null());
  EXPECT_DOUBLE_EQ(Literal(Value(7.5))->Evaluate(row).AsDouble(), 7.5);
}

TEST(ExpressionTest, Comparisons) {
  const Row row = SampleRow();
  EXPECT_EQ(Gt(Column(0), Column(1))->Evaluate(row).AsInt(), 1);  // 3 > 2.5.
  EXPECT_EQ(Lt(Column(0), Column(1))->Evaluate(row).AsInt(), 0);
  EXPECT_EQ(Eq(Column(0), Literal(Value(3.0)))->Evaluate(row).AsInt(), 1);
  EXPECT_EQ(Ne(Column(2), Literal(Value("abc")))->Evaluate(row).AsInt(), 0);
  EXPECT_EQ(Le(Column(1), Column(1))->Evaluate(row).AsInt(), 1);
  EXPECT_EQ(Ge(Column(1), Column(0))->Evaluate(row).AsInt(), 0);
}

TEST(ExpressionTest, NullComparisonsYieldNull) {
  const Row row = SampleRow();
  EXPECT_TRUE(Eq(Column(3), Column(0))->Evaluate(row).is_null());
  EXPECT_TRUE(Lt(Column(3), Literal(Value(int64_t{1})))->Evaluate(row).is_null());
}

TEST(ExpressionTest, BooleanConnectives) {
  const Row row = SampleRow();
  const ExprPtr yes = Literal(Value(int64_t{1}));
  const ExprPtr no = Literal(Value(int64_t{0}));
  const ExprPtr null = Literal(Value());
  EXPECT_EQ(And(yes, yes)->Evaluate(row).AsInt(), 1);
  EXPECT_EQ(And(yes, no)->Evaluate(row).AsInt(), 0);
  EXPECT_EQ(And(yes, null)->Evaluate(row).AsInt(), 0);  // NULL is falsy.
  EXPECT_EQ(Or(no, yes)->Evaluate(row).AsInt(), 1);
  EXPECT_EQ(Or(no, null)->Evaluate(row).AsInt(), 0);
  EXPECT_EQ(Not(no)->Evaluate(row).AsInt(), 1);
  EXPECT_EQ(Not(yes)->Evaluate(row).AsInt(), 0);
}

TEST(ExpressionTest, Arithmetic) {
  const Row row = SampleRow();
  EXPECT_DOUBLE_EQ(Add(Column(0), Column(1))->Evaluate(row).AsDouble(), 5.5);
  EXPECT_DOUBLE_EQ(Sub(Column(0), Column(1))->Evaluate(row).AsDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Mul(Column(0), Column(1))->Evaluate(row).AsDouble(), 7.5);
  EXPECT_DOUBLE_EQ(Div(Column(1), Column(0))->Evaluate(row).AsDouble(), 2.5 / 3.0);
}

TEST(ExpressionTest, ArithmeticNullPropagation) {
  const Row row = SampleRow();
  EXPECT_TRUE(Add(Column(3), Column(0))->Evaluate(row).is_null());
  EXPECT_TRUE(
      Div(Column(0), Literal(Value(int64_t{0})))->Evaluate(row).is_null());
}

TEST(ExpressionTest, UdfEvaluates) {
  const Row row = SampleRow();
  const ExprPtr udf = Udf("double_first", [](const Row& r) {
    return Value(r[0].AsDouble() * 2.0);
  });
  EXPECT_DOUBLE_EQ(udf->Evaluate(row).AsDouble(), 6.0);
  EXPECT_EQ(udf->ToString(), "double_first(...)");
}

TEST(ExpressionTest, ToStringRendering) {
  const ExprPtr expression =
      And(Lt(Column(0), Column(3)), Ne(Column(1), Literal(Value(int64_t{4}))));
  EXPECT_EQ(expression->ToString(), "((#0 < #3) AND (#1 <> 4))");
}

TEST(ExpressionTest, AsPredicateInFilterPlan) {
  Table table(Schema{{"a", "b"}, {ColumnType::kInt, ColumnType::kInt}});
  table.AppendUnchecked({int64_t{1}, int64_t{10}});
  table.AppendUnchecked({int64_t{5}, int64_t{2}});
  table.AppendUnchecked({int64_t{3}, int64_t{3}});
  auto plan = Filter(Scan(&table), AsPredicate(Lt(Column(0), Column(1))));
  EXPECT_EQ(Materialize(*plan).num_rows(), 1u);
}

TEST(ExpressionTest, AsProjectionInProjectPlan) {
  Table table(Schema{{"x"}, {ColumnType::kDouble}});
  table.AppendUnchecked({2.0});
  auto plan = Project(
      Scan(&table),
      {AsProjection(Mul(Column(0), Literal(Value(10.0))), "x10", ColumnType::kDouble)});
  const Table result = Materialize(*plan);
  EXPECT_EQ(result.schema().names[0], "x10");
  EXPECT_DOUBLE_EQ(result.rows()[0][0].AsDouble(), 20.0);
}

}  // namespace
}  // namespace grouplink
