#include "common/union_find.h"

#include <gtest/gtest.h>

#include <set>

namespace grouplink {
namespace {

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.size(), 5u);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(uf.Find(i), i);
}

TEST(UnionFindTest, UnionMergesAndCounts) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
}

TEST(UnionFindTest, RedundantUnionReturnsFalse) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_EQ(uf.num_sets(), 2u);
}

TEST(UnionFindTest, Transitivity) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(1, 2);
  uf.Union(3, 4);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_TRUE(uf.Connected(3, 4));
  EXPECT_FALSE(uf.Connected(2, 3));
  EXPECT_EQ(uf.num_sets(), 3u);  // {0,1,2}, {3,4}, {5}.
}

TEST(UnionFindTest, ComponentLabelsDeterministic) {
  UnionFind uf(6);
  uf.Union(0, 3);
  uf.Union(1, 4);
  const auto labels = uf.ComponentLabels();
  ASSERT_EQ(labels.size(), 6u);
  // Labels assigned by first appearance: 0 -> 0, 1 -> 1, 2 -> 2, ...
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 1u);
  EXPECT_EQ(labels[2], 2u);
  EXPECT_EQ(labels[3], 0u);
  EXPECT_EQ(labels[4], 1u);
  EXPECT_EQ(labels[5], 3u);
}

TEST(UnionFindTest, LabelsPartitionMatchesConnectivity) {
  UnionFind uf(50);
  for (size_t i = 0; i < 50; i += 5) {
    for (size_t j = i + 1; j < i + 5; ++j) uf.Union(i, j);
  }
  auto labels = uf.ComponentLabels();
  std::set<size_t> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 10u);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 50; ++j) {
      EXPECT_EQ(labels[i] == labels[j], uf.Connected(i, j));
    }
  }
}

TEST(UnionFindTest, AddElementGrowsTheUniverse) {
  UnionFind uf(2);
  uf.Union(0, 1);
  EXPECT_EQ(uf.AddElement(), 2u);  // New element id == old size().
  EXPECT_EQ(uf.size(), 3u);
  EXPECT_EQ(uf.num_sets(), 2u);  // {0,1} and the fresh singleton {2}.
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_TRUE(uf.Connected(0, 2));

  // Growing never disturbs existing labels: the appended singleton takes
  // the next fresh label and every earlier element keeps its own.
  UnionFind labeled(4);
  labeled.Union(0, 2);
  const auto before = labeled.ComponentLabels();
  labeled.AddElement();
  const auto after = labeled.ComponentLabels();
  ASSERT_EQ(after.size(), before.size() + 1);
  for (size_t i = 0; i < before.size(); ++i) EXPECT_EQ(after[i], before[i]);
  EXPECT_EQ(after.back(), 3u);
}

TEST(UnionFindTest, AddElementFromEmpty) {
  UnionFind uf(0);
  EXPECT_EQ(uf.AddElement(), 0u);
  EXPECT_EQ(uf.AddElement(), 1u);
  EXPECT_EQ(uf.num_sets(), 2u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_EQ(uf.num_sets(), 1u);
}

TEST(UnionFindTest, LargeChain) {
  constexpr size_t kN = 10000;
  UnionFind uf(kN);
  for (size_t i = 0; i + 1 < kN; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_TRUE(uf.Connected(0, kN - 1));
}

}  // namespace
}  // namespace grouplink
