#include "service/resilience/retry_policy.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace grouplink {
namespace resilience {
namespace {

RetryConfig NoJitterConfig() {
  RetryConfig config;
  config.max_attempts = 4;
  config.initial_backoff_ms = 10.0;
  config.backoff_multiplier = 2.0;
  config.max_backoff_ms = 1000.0;
  config.jitter = 0.0;
  return config;
}

TEST(RetryConfigTest, ValidateAcceptsDefaults) {
  EXPECT_TRUE(RetryConfig{}.Validate().ok());
}

TEST(RetryConfigTest, ValidateRejectsBadKnobs) {
  RetryConfig config;
  config.max_attempts = 0;
  EXPECT_FALSE(config.Validate().ok());

  config = RetryConfig{};
  config.initial_backoff_ms = -1.0;
  EXPECT_FALSE(config.Validate().ok());

  config = RetryConfig{};
  config.backoff_multiplier = 0.5;
  EXPECT_FALSE(config.Validate().ok());

  config = RetryConfig{};
  config.max_backoff_ms = config.initial_backoff_ms - 0.5;
  EXPECT_FALSE(config.Validate().ok());

  config = RetryConfig{};
  config.jitter = 1.5;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(RetryPolicyTest, BackoffDoublesAndClampsWithoutJitter) {
  RetryConfig config = NoJitterConfig();
  config.max_backoff_ms = 35.0;
  RetryPolicy policy(config, [](double) {});
  EXPECT_DOUBLE_EQ(policy.BackoffMs(1), 10.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(2), 20.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(3), 35.0);  // Clamped from 40.
  EXPECT_DOUBLE_EQ(policy.BackoffMs(4), 35.0);
}

TEST(RetryPolicyTest, JitterStaysWithinTheConfiguredBand) {
  RetryConfig config = NoJitterConfig();
  config.jitter = 0.25;
  config.jitter_seed = 7;
  RetryPolicy policy(config, [](double) {});
  for (int32_t retry = 1; retry <= 20; ++retry) {
    const double base = 10.0 * std::pow(2.0, retry - 1);
    const double expected = std::min(base, config.max_backoff_ms);
    const double jittered = policy.BackoffMs(retry);
    EXPECT_GE(jittered, expected * 0.75) << "retry " << retry;
    EXPECT_LE(jittered, expected * 1.25) << "retry " << retry;
  }
}

TEST(RetryPolicyTest, JitteredScheduleIsDeterministicPerSeed) {
  RetryConfig config = NoJitterConfig();
  config.jitter = 0.5;
  config.jitter_seed = 42;
  RetryPolicy a(config, [](double) {});
  RetryPolicy b(config, [](double) {});
  for (int32_t retry = 1; retry <= 8; ++retry) {
    EXPECT_DOUBLE_EQ(a.BackoffMs(retry), b.BackoffMs(retry));
  }
  config.jitter_seed = 43;
  RetryPolicy c(config, [](double) {});
  bool any_different = false;
  for (int32_t retry = 1; retry <= 8; ++retry) {
    if (a.BackoffMs(retry) != c.BackoffMs(retry)) any_different = true;
  }
  EXPECT_TRUE(any_different) << "different seeds should jitter differently";
}

TEST(RetryPolicyTest, SuccessOnFirstAttemptDoesNotSleep) {
  std::vector<double> sleeps;
  RetryPolicy policy(NoJitterConfig(),
                     [&](double ms) { sleeps.push_back(ms); });
  RetryStats stats;
  EXPECT_TRUE(policy.Run([] { return Status::Ok(); }, &stats).ok());
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_DOUBLE_EQ(stats.slept_ms, 0.0);
  EXPECT_TRUE(sleeps.empty());
}

TEST(RetryPolicyTest, TransientFailuresRetryUntilSuccess) {
  std::vector<double> sleeps;
  RetryPolicy policy(NoJitterConfig(),
                     [&](double ms) { sleeps.push_back(ms); });
  int calls = 0;
  RetryStats stats;
  Status status = policy.Run(
      [&] {
        ++calls;
        if (calls < 3) return Status::IoError("fsync blip");
        return Status::Ok();
      },
      &stats);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.retries, 2);
  // Backoffs follow the schedule exactly: 10ms then 20ms.
  EXPECT_EQ(sleeps, (std::vector<double>{10.0, 20.0}));
  EXPECT_DOUBLE_EQ(stats.slept_ms, 30.0);
}

TEST(RetryPolicyTest, ExhaustionReturnsTheLastTransientError) {
  std::vector<double> sleeps;
  RetryPolicy policy(NoJitterConfig(),
                     [&](double ms) { sleeps.push_back(ms); });
  RetryStats stats;
  Status status =
      policy.Run([] { return Status::Unavailable("still down"); }, &stats);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(stats.attempts, 4);
  EXPECT_EQ(stats.retries, 3);
  // No sleep after the final (exhausted) attempt.
  EXPECT_EQ(sleeps, (std::vector<double>{10.0, 20.0, 40.0}));
}

TEST(RetryPolicyTest, TerminalErrorsAreNeverRetried) {
  // kDataLoss above all: the bytes are wrong, not the timing.
  for (const Status& terminal :
       {Status::DataLoss("bad checksum"), Status::InvalidArgument("bad"),
        Status::Internal("bug"), Status::NotFound("missing")}) {
    int calls = 0;
    std::vector<double> sleeps;
    RetryPolicy policy(NoJitterConfig(),
                       [&](double ms) { sleeps.push_back(ms); });
    RetryStats stats;
    Status status = policy.Run(
        [&] {
          ++calls;
          return terminal;
        },
        &stats);
    EXPECT_EQ(status.code(), terminal.code());
    EXPECT_EQ(calls, 1) << terminal.ToString();
    EXPECT_EQ(stats.attempts, 1);
    EXPECT_EQ(stats.retries, 0);
    EXPECT_TRUE(sleeps.empty());
  }
}

TEST(RetryPolicyTest, SingleAttemptConfigNeverSleeps) {
  RetryConfig config = NoJitterConfig();
  config.max_attempts = 1;
  std::vector<double> sleeps;
  RetryPolicy policy(config, [&](double ms) { sleeps.push_back(ms); });
  RetryStats stats;
  Status status = policy.Run([] { return Status::IoError("down"); }, &stats);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_TRUE(sleeps.empty());
}

}  // namespace
}  // namespace resilience
}  // namespace grouplink
