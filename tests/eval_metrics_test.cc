#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace grouplink {
namespace {

using Pairs = std::vector<std::pair<int32_t, int32_t>>;

TEST(F1ScoreTest, HarmonicMean) {
  EXPECT_DOUBLE_EQ(F1Score(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(F1Score(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(F1Score(1.0, 0.0), 0.0);
  EXPECT_NEAR(F1Score(0.5, 1.0), 2.0 / 3.0, 1e-12);
}

TEST(EvaluatePairsTest, PerfectPrediction) {
  const Pairs truth = {{0, 1}, {2, 3}};
  const PairMetrics m = EvaluatePairs(truth, truth);
  EXPECT_EQ(m.true_positives, 2u);
  EXPECT_EQ(m.false_positives, 0u);
  EXPECT_EQ(m.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(EvaluatePairsTest, MixedPrediction) {
  const PairMetrics m = EvaluatePairs({{0, 1}, {4, 5}}, {{0, 1}, {2, 3}});
  EXPECT_EQ(m.true_positives, 1u);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.f1, 0.5);
}

TEST(EvaluatePairsTest, OrientationAndDuplicatesNormalized) {
  const PairMetrics m = EvaluatePairs({{1, 0}, {0, 1}, {1, 0}}, {{0, 1}});
  EXPECT_EQ(m.true_positives, 1u);
  EXPECT_EQ(m.false_positives, 0u);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(EvaluatePairsTest, EmptyConventions) {
  const PairMetrics nothing = EvaluatePairs({}, {});
  EXPECT_DOUBLE_EQ(nothing.precision, 1.0);
  EXPECT_DOUBLE_EQ(nothing.recall, 1.0);
  const PairMetrics no_prediction = EvaluatePairs({}, {{0, 1}});
  EXPECT_DOUBLE_EQ(no_prediction.precision, 1.0);
  EXPECT_DOUBLE_EQ(no_prediction.recall, 0.0);
  const PairMetrics no_truth = EvaluatePairs({{0, 1}}, {});
  EXPECT_DOUBLE_EQ(no_truth.precision, 0.0);
  EXPECT_DOUBLE_EQ(no_truth.recall, 1.0);
}

TEST(EvaluateClusterPairsTest, MatchesManualCounts) {
  // Predicted: {0,1}, {2}; truth: {0,1,2} (entity 5).
  const std::vector<size_t> predicted = {0, 0, 1};
  const std::vector<int32_t> truth = {5, 5, 5};
  const PairMetrics m = EvaluateClusterPairs(predicted, truth);
  EXPECT_EQ(m.true_positives, 1u);   // (0,1).
  EXPECT_EQ(m.false_positives, 0u);
  EXPECT_EQ(m.false_negatives, 2u);  // (0,2), (1,2).
}

TEST(EvaluateClusterPairsTest, UnknownTruthNeverCoRefers) {
  const std::vector<size_t> predicted = {0, 0};
  const std::vector<int32_t> truth = {-1, -1};
  const PairMetrics m = EvaluateClusterPairs(predicted, truth);
  EXPECT_EQ(m.true_positives, 0u);
  EXPECT_EQ(m.false_positives, 1u);
}

TEST(BCubedTest, PerfectClustering) {
  const BCubedMetrics m = EvaluateBCubed({0, 0, 1, 1}, {7, 7, 9, 9});
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(BCubedTest, AllMergedLosesPrecision) {
  const BCubedMetrics m = EvaluateBCubed({0, 0, 0, 0}, {1, 1, 2, 2});
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(BCubedTest, AllSplitLosesRecall) {
  const BCubedMetrics m = EvaluateBCubed({0, 1, 2, 3}, {1, 1, 2, 2});
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
}

TEST(BCubedTest, UnknownLabelsAreSingletons) {
  // Two -1 items predicted together: precision suffers, recall perfect
  // (each singleton fully covered by any containing cluster).
  const BCubedMetrics m = EvaluateBCubed({0, 0}, {-1, -1});
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(BCubedTest, EmptyInput) {
  const BCubedMetrics m = EvaluateBCubed({}, {});
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
}

TEST(AdjustedRandTest, IdenticalClusteringsScoreOne) {
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({0, 0, 1, 1, 2}, {5, 5, 9, 9, 7}), 1.0);
}

TEST(AdjustedRandTest, KnownValue) {
  // Classic example: X = {a,a,a,b,b,b}, Y = {a,a,b,b,c,c}.
  const std::vector<size_t> predicted = {0, 0, 0, 1, 1, 1};
  const std::vector<int32_t> truth = {0, 0, 1, 1, 2, 2};
  // sum_joint = C(2,2)+C(1,2)+C(1,2)+C(2,2) = 1+0+0+1 = 2;
  // sum_pred = 2*C(3,2) = 6; sum_true = 3*C(2,2) = 3; total = C(6,2) = 15.
  // expected = 6*3/15 = 1.2; max = 4.5; ARI = (2-1.2)/(4.5-1.2) = 0.242424...
  EXPECT_NEAR(AdjustedRandIndex(predicted, truth), 0.8 / 3.3, 1e-12);
}

TEST(AdjustedRandTest, AllSingletonsVsAllMergedIsZero) {
  const std::vector<size_t> predicted = {0, 1, 2, 3};
  const std::vector<int32_t> truth = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(predicted, truth), 0.0);
}

TEST(AdjustedRandTest, BothAllSingletonsScoreOne) {
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({0, 1, 2}, {-1, -1, -1}), 1.0);
}

TEST(AdjustedRandTest, TinyInputsAreTriviallyPerfect) {
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({0}, {3}), 1.0);
}

TEST(AdjustedRandTest, DisagreementCanGoNegative) {
  // Maximally crossed clusterings of 4 items.
  const std::vector<size_t> predicted = {0, 0, 1, 1};
  const std::vector<int32_t> truth = {0, 1, 0, 1};
  EXPECT_LT(AdjustedRandIndex(predicted, truth), 0.0);
}

TEST(BCubedTest, TextbookExample) {
  // Predicted clusters: {a,b,c}, {d,e}; truth: {a,b}, {c,d,e}.
  const std::vector<size_t> predicted = {0, 0, 0, 1, 1};
  const std::vector<int32_t> truth = {0, 0, 1, 1, 1};
  const BCubedMetrics m = EvaluateBCubed(predicted, truth);
  // Precision: a,b: 2/3 each; c: 1/3; d,e: 1 each -> (2/3+2/3+1/3+1+1)/5.
  EXPECT_NEAR(m.precision, (2.0 / 3 + 2.0 / 3 + 1.0 / 3 + 1 + 1) / 5, 1e-12);
  // Recall: a,b: 1 each; c: 1/3; d,e: 2/3 each.
  EXPECT_NEAR(m.recall, (1 + 1 + 1.0 / 3 + 2.0 / 3 + 2.0 / 3) / 5, 1e-12);
}

}  // namespace
}  // namespace grouplink
