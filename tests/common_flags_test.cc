#include "common/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace grouplink {
namespace {

FlagParser MakeParser() {
  FlagParser flags;
  flags.AddString("name", "default", "a string flag");
  flags.AddInt64("count", 10, "an int flag");
  flags.AddDouble("rate", 0.5, "a double flag");
  flags.AddBool("verbose", false, "a bool flag");
  return flags;
}

Status ParseArgs(FlagParser& flags, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return flags.Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, DefaultsApply) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {}).ok());
  EXPECT_EQ(flags.GetString("name"), "default");
  EXPECT_EQ(flags.GetInt64("count"), 10);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.5);
  EXPECT_FALSE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(
      ParseArgs(flags, {"--name=alice", "--count=42", "--rate=0.75", "--verbose=true"})
          .ok());
  EXPECT_EQ(flags.GetString("name"), "alice");
  EXPECT_EQ(flags.GetInt64("count"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.75);
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {"--name", "bob", "--count", "7"}).ok());
  EXPECT_EQ(flags.GetString("name"), "bob");
  EXPECT_EQ(flags.GetInt64("count"), 7);
}

TEST(FlagParserTest, BareBoolFlag) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {"--verbose"}).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, BoolSpellings) {
  for (const char* value : {"true", "1", "yes"}) {
    FlagParser flags = MakeParser();
    ASSERT_TRUE(ParseArgs(flags, {"--verbose", value}).ok());
    EXPECT_TRUE(flags.GetBool("verbose")) << value;
  }
  for (const char* value : {"false", "0", "no"}) {
    FlagParser flags = MakeParser();
    ASSERT_TRUE(ParseArgs(flags, {"--verbose", value}).ok());
    EXPECT_FALSE(flags.GetBool("verbose")) << value;
  }
}

TEST(FlagParserTest, UnknownFlagFails) {
  FlagParser flags = MakeParser();
  EXPECT_FALSE(ParseArgs(flags, {"--bogus=1"}).ok());
}

TEST(FlagParserTest, BadIntFails) {
  FlagParser flags = MakeParser();
  EXPECT_FALSE(ParseArgs(flags, {"--count=abc"}).ok());
}

TEST(FlagParserTest, BadBoolFails) {
  FlagParser flags = MakeParser();
  EXPECT_FALSE(ParseArgs(flags, {"--verbose=maybe"}).ok());
}

TEST(FlagParserTest, MissingValueFails) {
  FlagParser flags = MakeParser();
  EXPECT_FALSE(ParseArgs(flags, {"--count"}).ok());
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {"input.csv", "--count=3", "out.csv"}).ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.csv", "out.csv"}));
}

TEST(FlagParserTest, HelpRequested) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {"--help"}).ok());
  EXPECT_TRUE(flags.help_requested());
}

TEST(FlagParserTest, UsageMentionsFlagsAndDefaults) {
  FlagParser flags = MakeParser();
  const std::string usage = flags.Usage("prog");
  EXPECT_NE(usage.find("--name"), std::string::npos);
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("a double flag"), std::string::npos);
  EXPECT_NE(usage.find("default"), std::string::npos);
}

TEST(FlagParserTest, LastValueWins) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {"--count=1", "--count=2"}).ok());
  EXPECT_EQ(flags.GetInt64("count"), 2);
}

}  // namespace
}  // namespace grouplink
