#include "common/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "common/thread_pool.h"

namespace grouplink {
namespace {

// GL_GUARDED_BY applies to data members (not locals), so test state lives
// in small structs — which also mirrors how production code is annotated.
struct GuardedInt {
  Mutex mu;
  CondVar cv;
  int value GL_GUARDED_BY(mu) = 0;
  bool flag GL_GUARDED_BY(mu) = false;

  void SetFlag() {
    {
      MutexLock lock(&mu);
      flag = true;
    }
    cv.SignalAll();
  }
  void AwaitFlag() {
    MutexLock lock(&mu);
    while (!flag) cv.Wait(&mu);
  }
};

TEST(MutexTest, LockUnlockRoundTrip) {
  Mutex mu;
  mu.Lock();
  mu.AssertHeld();
  mu.Unlock();
  // Free again: TryLock must succeed.
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockIsScoped) {
  GuardedInt state;
  {
    MutexLock lock(&state.mu);
    state.value = 1;
  }
  // The scope released the lock; an uncontended TryLock proves it.
  ASSERT_TRUE(state.mu.TryLock());
  EXPECT_EQ(state.value, 1);
  state.mu.Unlock();
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  GuardedInt held;
  GuardedInt done;

  ThreadPool pool(1);
  pool.Submit([&] {
    MutexLock lock(&mu);
    held.SetFlag();
    done.AwaitFlag();
  });

  held.AwaitFlag();
  // The worker owns mu until we set `done`.
  const bool acquired = mu.TryLock();
  if (acquired) mu.Unlock();
  EXPECT_FALSE(acquired);
  done.SetFlag();
  pool.Wait();
  // Released after the worker exits.
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVarTest, SignalWakesWaiter) {
  GuardedInt state;

  ThreadPool pool(1);
  pool.Submit([&] {
    MutexLock lock(&state.mu);
    while (!state.flag) state.cv.Wait(&state.mu);
    state.value = 42;
  });

  state.SetFlag();
  pool.Wait();
  MutexLock lock(&state.mu);
  EXPECT_EQ(state.value, 42);
}

TEST(CondVarTest, WaitForTimesOutWhenNeverSignaled) {
  GuardedInt state;
  MutexLock lock(&state.mu);
  // Nobody will ever signal: the bounded wait must come back false.
  EXPECT_FALSE(state.cv.WaitFor(&state.mu, 5.0));
}

TEST(CondVarTest, WaitForReturnsTrueOnSignal) {
  GuardedInt state;

  ThreadPool pool(1);
  pool.Submit([&] { state.SetFlag(); });

  MutexLock lock(&state.mu);
  // Loop over the predicate: the signal may land before our first wait,
  // in which case `flag` is already true and we never block.
  bool notified = true;
  while (!state.flag && notified) {
    notified = state.cv.WaitFor(&state.mu, 1000.0);
  }
  EXPECT_TRUE(state.flag);
}

struct GuardedPair {
  SharedMutex rw;
  int64_t a GL_GUARDED_BY(rw) = 0;
  int64_t b GL_GUARDED_BY(rw) = 0;
};

TEST(SharedMutexTest, ConcurrentReadersWriterExcluded) {
  GuardedPair pair;
  GuardedInt reader_holding;
  GuardedInt release;

  ThreadPool pool(1);
  pool.Submit([&] {
    ReaderMutexLock read(&pair.rw);
    reader_holding.SetFlag();
    release.AwaitFlag();
  });

  reader_holding.AwaitFlag();
  // A second reader gets in alongside the held shared lock...
  const bool reader_ok = pair.rw.ReaderTryLock();
  if (reader_ok) pair.rw.ReaderUnlock();
  EXPECT_TRUE(reader_ok);
  // ...but a writer does not.
  const bool writer_ok = pair.rw.TryLock();
  if (writer_ok) pair.rw.Unlock();
  EXPECT_FALSE(writer_ok);

  release.SetFlag();
  pool.Wait();
  // Reader gone: the writer path opens up.
  ASSERT_TRUE(pair.rw.TryLock());
  pair.rw.Unlock();
}

TEST(SharedMutexTest, ReaderWriterInvariantUnderEightThreads) {
  // Two counters that writers always advance together; readers assert
  // they never observe them apart. A broken writer exclusion (or a
  // reader lock that does not exclude writers) breaks the invariant —
  // and under TSan this doubles as a data-race probe on the wrappers.
  GuardedPair pair;
  constexpr int kThreads = 8;
  constexpr int kIterations = 500;
  std::atomic<int64_t> torn_reads{0};

  ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    const bool writer = (t % 2 == 0);
    pool.Submit([&, writer] {
      for (int i = 0; i < kIterations; ++i) {
        if (writer) {
          WriterMutexLock lock(&pair.rw);
          ++pair.a;
          ++pair.b;
        } else {
          ReaderMutexLock lock(&pair.rw);
          if (pair.a != pair.b) {
            torn_reads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  pool.Wait();

  EXPECT_EQ(torn_reads.load(), 0);
  ReaderMutexLock lock(&pair.rw);
  EXPECT_EQ(pair.a, pair.b);
  EXPECT_EQ(pair.a, static_cast<int64_t>(kThreads / 2) * kIterations);
}

}  // namespace
}  // namespace grouplink
