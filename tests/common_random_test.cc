#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace grouplink {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(1);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kSamples;
  const double variance = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(variance, 1.0, 0.08);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / kSamples, 10.0, 0.1);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(23);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(29);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(ZipfSamplerTest, RanksWithinBound) {
  Rng rng(31);
  ZipfSampler zipf(50, 1.2);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 50u);
}

TEST(ZipfSamplerTest, SkewsTowardLowRanks) {
  Rng rng(37);
  ZipfSampler zipf(100, 1.0);
  int low = 0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Sample(rng) < 10) ++low;
  }
  // Under Zipf(1.0, n=100), P(rank < 10) ~= H(10)/H(100) ~= 0.56.
  EXPECT_GT(low, kSamples / 2 - 500);
}

TEST(ZipfSamplerTest, ZeroExponentIsUniform) {
  Rng rng(41);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(rng)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kSamples, 0.1, 0.02);
  }
}

TEST(RngTest, ZipfOnceMatchesBound) {
  Rng rng(43);
  for (int i = 0; i < 20; ++i) EXPECT_LT(rng.ZipfOnce(7, 1.5), 7u);
}

}  // namespace
}  // namespace grouplink
