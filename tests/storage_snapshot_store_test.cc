// SnapshotStore round-trip suite: Persist followed by Load reproduces a
// sealed snapshot bit-identically (link set, cluster labels, every query
// surface), across page sizes, after remove/merge mutations, and through
// the warm-restart writer rebuild (IncrementalLinker::FromSnapshot).
#include "storage/snapshot_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/incremental.h"
#include "core/snapshot.h"
#include "data/bibliographic_generator.h"
#include "storage/page_file.h"

namespace grouplink {
namespace storage {
namespace {

LinkageConfig TestConfig() {
  LinkageConfig config;
  config.theta = 0.35;
  config.group_threshold = 0.2;
  return config;
}

Dataset MakeCorpus(int32_t entities, uint64_t seed) {
  BibliographicConfig config;
  config.num_entities = entities;
  config.noise = 0.25;
  config.num_topics = 5;
  config.offtopic_word_prob = 0.5;
  config.seed = seed;
  return GenerateBibliographic(config);
}

std::vector<std::string> GroupTexts(const Dataset& dataset, int32_t group) {
  std::vector<std::string> texts;
  for (const int32_t r : dataset.groups[static_cast<size_t>(group)].record_ids) {
    texts.push_back(dataset.records[static_cast<size_t>(r)].text);
  }
  return texts;
}

std::string StorePath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Every public answer of the two snapshots must agree exactly.
void ExpectSnapshotsEquivalent(const CorpusSnapshot& a, const CorpusSnapshot& b,
                               const Dataset& probes) {
  EXPECT_EQ(a.epoch(), b.epoch());
  EXPECT_EQ(a.num_groups(), b.num_groups());
  EXPECT_EQ(a.num_alive_groups(), b.num_alive_groups());
  EXPECT_EQ(a.num_records(), b.num_records());
  EXPECT_EQ(a.linked_pairs(), b.linked_pairs());
  EXPECT_EQ(a.cluster_labels(), b.cluster_labels());
  for (int32_t g = 0; g < a.num_groups(); ++g) {
    EXPECT_EQ(a.IsAlive(g), b.IsAlive(g)) << g;
    if (a.IsAlive(g)) {
      EXPECT_EQ(a.label(g), b.label(g)) << g;
    }
  }
  for (int32_t g = 0; g < probes.num_groups(); ++g) {
    const GroupArrival probe{"probe", GroupTexts(probes, g)};
    const auto qa = a.LinkQuery(probe);
    const auto qb = b.LinkQuery(probe);
    EXPECT_EQ(qa.linked_to, qb.linked_to) << "probe " << g;
    EXPECT_EQ(qa.candidates, qb.candidates) << "probe " << g;
    EXPECT_EQ(qa.oov_tokens, qb.oov_tokens) << "probe " << g;
  }
}

TEST(SnapshotStoreTest, PersistLoadRoundTripsAFreshEpoch) {
  const Dataset dataset = MakeCorpus(30, 7);
  auto linker = IncrementalLinker::Create(dataset, TestConfig());
  ASSERT_TRUE(linker.ok());
  const auto snapshot = CorpusSnapshot::Capture(*linker);

  const std::string path = StorePath("round_trip.glsnap");
  ASSERT_TRUE(SnapshotStore::Persist(*snapshot, path).ok());
  const auto loaded = SnapshotStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_TRUE((*loaded)->CheckConsistency());
  ExpectSnapshotsEquivalent(*snapshot, **loaded, dataset);
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(SnapshotStoreTest, RoundTripSurvivesRemovalsMergesAndArrivals) {
  // A mid-stream epoch with tombstones everywhere: removed groups,
  // merged groups, un-refreshed arrivals (OOV vectors), uncompacted
  // postings. The store must reproduce all of it.
  const Dataset dataset = MakeCorpus(25, 21);
  auto linker = IncrementalLinker::Create(dataset, TestConfig());
  ASSERT_TRUE(linker.ok());
  (void)linker->AddGroup("late arrival", {"totally new tokens here",
                                          "more unseen words arrive"});
  linker->RemoveGroup(1);
  (void)linker->MergeGroups(2, 3);
  const auto snapshot = CorpusSnapshot::Capture(*linker);

  const std::string path = StorePath("mutated.glsnap");
  ASSERT_TRUE(SnapshotStore::Persist(*snapshot, path).ok());
  const auto loaded = SnapshotStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ExpectSnapshotsEquivalent(*snapshot, **loaded, dataset);
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(SnapshotStoreTest, EveryPageSizeYieldsTheSameSnapshot) {
  const Dataset dataset = MakeCorpus(20, 3);
  auto linker = IncrementalLinker::Create(dataset, TestConfig());
  ASSERT_TRUE(linker.ok());
  const auto snapshot = CorpusSnapshot::Capture(*linker);

  for (const uint32_t page_bytes : {kMinPageBytes, 1024u, 4096u, 65536u}) {
    const std::string path = StorePath("page_size.glsnap");
    StorageOptions options;
    options.page_bytes = page_bytes;
    ASSERT_TRUE(SnapshotStore::Persist(*snapshot, path, options).ok());
    const auto loaded = SnapshotStore::Load(path);
    ASSERT_TRUE(loaded.ok()) << "page_bytes " << page_bytes << ": "
                             << loaded.status().message();
    ExpectSnapshotsEquivalent(*snapshot, **loaded, dataset);
    ASSERT_TRUE(RemoveFile(path).ok());
  }
}

TEST(SnapshotStoreTest, PersistReplacesThePreviousStoreAtomically) {
  const Dataset dataset = MakeCorpus(15, 11);
  auto linker = IncrementalLinker::Create(dataset, TestConfig());
  ASSERT_TRUE(linker.ok());
  const std::string path = StorePath("replace.glsnap");

  const auto first = CorpusSnapshot::Capture(*linker);
  ASSERT_TRUE(SnapshotStore::Persist(*first, path).ok());
  (void)linker->AddGroup("next epoch", {"brand new record text"});
  linker->Refresh();
  const auto second = CorpusSnapshot::Capture(*linker);
  ASSERT_TRUE(SnapshotStore::Persist(*second, path).ok());

  const auto loaded = SnapshotStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->epoch(), second->epoch());
  EXPECT_EQ((*loaded)->num_groups(), second->num_groups());
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(SnapshotStoreTest, MissingStoreIsNotFoundAndBadPageSizeIsInvalid) {
  EXPECT_EQ(SnapshotStore::Load(StorePath("does_not_exist.glsnap")).status().code(),
            StatusCode::kNotFound);

  const Dataset dataset = MakeCorpus(5, 1);
  auto linker = IncrementalLinker::Create(dataset, TestConfig());
  ASSERT_TRUE(linker.ok());
  const auto snapshot = CorpusSnapshot::Capture(*linker);
  StorageOptions tiny;
  tiny.page_bytes = 64;  // Below kMinPageBytes.
  EXPECT_EQ(SnapshotStore::Persist(*snapshot, StorePath("x.glsnap"), tiny).code(),
            StatusCode::kInvalidArgument);
  StorageOptions huge;
  huge.page_bytes = kMaxPageBytes * 2;
  EXPECT_EQ(SnapshotStore::Persist(*snapshot, StorePath("x.glsnap"), huge).code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotStoreTest, WarmRestartLinkerContinuesBitIdentically) {
  // The decisive warm-restart property: a writer rebuilt from the store
  // must link a stream of future arrivals exactly like the writer that
  // never stopped — including through a refresh, which rebuilds the
  // epoch statistics from the recovered raw tokens.
  const Dataset dataset = MakeCorpus(25, 42);
  auto original = IncrementalLinker::Create(dataset, TestConfig());
  ASSERT_TRUE(original.ok());
  (void)original->AddGroup("pre-persist arrival", {"some new tokens appear"});

  const auto snapshot = CorpusSnapshot::Capture(*original);
  const std::string path = StorePath("warm_restart.glsnap");
  ASSERT_TRUE(SnapshotStore::Persist(*snapshot, path).ok());
  const auto loaded = SnapshotStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  auto restarted = IncrementalLinker::FromSnapshot(**loaded);
  ASSERT_TRUE(restarted.ok()) << restarted.status().message();

  EXPECT_EQ((*restarted)->epoch(), original->epoch());
  EXPECT_EQ((*restarted)->linked_pairs(), original->linked_pairs());
  EXPECT_EQ((*restarted)->ClusterLabels(), original->ClusterLabels());

  const Dataset future = MakeCorpus(8, 1234);
  for (int32_t g = 0; g < future.num_groups(); ++g) {
    const auto a = original->AddGroup("arrival", GroupTexts(future, g));
    const auto b = (*restarted)->AddGroup("arrival", GroupTexts(future, g));
    EXPECT_EQ(a.group_index, b.group_index) << g;
    EXPECT_EQ(a.linked_to, b.linked_to) << g;
    EXPECT_EQ(a.candidates, b.candidates) << g;
    EXPECT_EQ(a.oov_tokens, b.oov_tokens) << g;
  }
  original->Refresh();
  (*restarted)->Refresh();
  EXPECT_EQ((*restarted)->linked_pairs(), original->linked_pairs());
  EXPECT_EQ((*restarted)->epoch(), original->epoch());
  ASSERT_TRUE(RemoveFile(path).ok());
}

}  // namespace
}  // namespace storage
}  // namespace grouplink
