#include "index/minhash.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "index/prefix_filter.h"

namespace grouplink {
namespace {

using Docs = std::vector<std::vector<int32_t>>;
using Pairs = std::vector<std::pair<int32_t, int32_t>>;

std::vector<int32_t> RandomSet(Rng& rng, int32_t universe, size_t size) {
  std::set<int32_t> tokens;
  while (tokens.size() < size) {
    tokens.insert(static_cast<int32_t>(rng.Uniform(static_cast<uint64_t>(universe))));
  }
  return {tokens.begin(), tokens.end()};
}

double ExactJaccard(const std::vector<int32_t>& a, const std::vector<int32_t>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  const size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

TEST(MinHasherTest, DeterministicForSeed) {
  const MinHasher h1(32, 5);
  const MinHasher h2(32, 5);
  const std::vector<int32_t> doc = {1, 5, 9, 20};
  EXPECT_EQ(h1.Signature(doc), h2.Signature(doc));
}

TEST(MinHasherTest, OrderInsensitive) {
  const MinHasher hasher(16, 1);
  EXPECT_EQ(hasher.Signature({3, 1, 2}), hasher.Signature({1, 2, 3}));
}

TEST(MinHasherTest, IdenticalSetsIdenticalSignatures) {
  const MinHasher hasher(64, 2);
  const std::vector<int32_t> doc = {10, 20, 30};
  EXPECT_DOUBLE_EQ(
      MinHasher::SignatureAgreement(hasher.Signature(doc), hasher.Signature(doc)),
      1.0);
}

TEST(MinHasherTest, EmptySetsNeverAgree) {
  const MinHasher hasher(16, 3);
  const auto empty = hasher.Signature({});
  const auto full = hasher.Signature({1, 2});
  EXPECT_DOUBLE_EQ(MinHasher::SignatureAgreement(empty, full), 0.0);
  EXPECT_DOUBLE_EQ(MinHasher::SignatureAgreement(empty, empty), 0.0);
}

TEST(MinHasherTest, AgreementEstimatesJaccard) {
  // The agreement rate over many hash functions concentrates around the
  // true Jaccard similarity.
  const MinHasher hasher(512, 7);
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = RandomSet(rng, 200, 20 + rng.Uniform(20));
    const auto b = RandomSet(rng, 200, 20 + rng.Uniform(20));
    const double estimated =
        MinHasher::SignatureAgreement(hasher.Signature(a), hasher.Signature(b));
    EXPECT_NEAR(estimated, ExactJaccard(a, b), 0.12) << "trial " << trial;
  }
}

TEST(LshTest, DuplicateDocumentsAlwaysCollide) {
  const Docs docs = {{1, 2, 3}, {1, 2, 3}, {50, 60, 70}};
  const auto pairs = MinHashSelfJoin(docs, 8, 4);
  EXPECT_TRUE(std::find(pairs.begin(), pairs.end(), std::make_pair(0, 1)) !=
              pairs.end());
}

TEST(LshTest, EmptyDocumentsNeverPaired) {
  const Docs docs = {{}, {}, {1, 2}};
  const auto pairs = MinHashSelfJoin(docs, 4, 4);
  for (const auto& [a, b] : pairs) {
    EXPECT_NE(a, 0);
    EXPECT_NE(b, 0);
    EXPECT_NE(a, 1);
    EXPECT_NE(b, 1);
  }
}

TEST(LshTest, PairsSortedUniqueOriented) {
  Rng rng(13);
  Docs docs;
  for (int d = 0; d < 60; ++d) docs.push_back(RandomSet(rng, 50, 8));
  const auto pairs = MinHashSelfJoin(docs, 8, 2);
  EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
  EXPECT_TRUE(std::adjacent_find(pairs.begin(), pairs.end()) == pairs.end());
  for (const auto& [a, b] : pairs) EXPECT_LT(a, b);
}

TEST(LshTest, HighJaccardPairsAlmostAlwaysFound) {
  // Pairs with J ~ 0.8 against 16 bands x 2 rows: the S-curve gives
  // P[candidate] = 1 - (1 - 0.8^2)^16 ~= 1 - 4e-8.
  Rng rng(17);
  Docs docs;
  Pairs planted;
  for (int pair = 0; pair < 30; ++pair) {
    auto base = RandomSet(rng, 4000, 20);
    auto near = base;
    near[0] += 4000;  // One substitution: J = 19/21 ~ 0.90.
    std::sort(near.begin(), near.end());
    planted.emplace_back(static_cast<int32_t>(docs.size()),
                         static_cast<int32_t>(docs.size() + 1));
    docs.push_back(std::move(base));
    docs.push_back(std::move(near));
  }
  const auto pairs = MinHashSelfJoin(docs, 16, 2);
  const std::set<std::pair<int32_t, int32_t>> found(pairs.begin(), pairs.end());
  size_t hits = 0;
  for (const auto& pair : planted) {
    if (found.count(pair)) ++hits;
  }
  EXPECT_GE(hits, planted.size() - 1);  // Allow one unlucky miss.
}

TEST(LshTest, LowJaccardPairsMostlyPruned) {
  // Random disjoint-ish sets over a large universe should rarely collide
  // under 8 bands x 4 rows.
  Rng rng(19);
  Docs docs;
  for (int d = 0; d < 100; ++d) docs.push_back(RandomSet(rng, 100000, 15));
  const auto pairs = MinHashSelfJoin(docs, 8, 4);
  const size_t all_pairs = docs.size() * (docs.size() - 1) / 2;
  EXPECT_LT(pairs.size(), all_pairs / 50);
}

TEST(LshTest, RecallComparableToPrefixFilterOnThresholdPairs) {
  // For pairs above J = 0.7, LSH (16x2) should find nearly everything the
  // exact join finds.
  Rng rng(23);
  Docs docs;
  for (int d = 0; d < 80; ++d) docs.push_back(RandomSet(rng, 60, 10));
  const auto exact = BruteForceJaccardSelfJoin(docs, 0.7);
  const auto lsh = MinHashSelfJoin(docs, 16, 2);
  const std::set<std::pair<int32_t, int32_t>> lsh_set(lsh.begin(), lsh.end());
  size_t found = 0;
  for (const auto& pair : exact) {
    if (lsh_set.count(pair)) ++found;
  }
  if (!exact.empty()) {
    EXPECT_GE(static_cast<double>(found) / static_cast<double>(exact.size()), 0.9);
  }
}

}  // namespace
}  // namespace grouplink
