#include "text/simd_kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/simd_dispatch.h"
#include "text/edit_distance.h"
#include "text/tfidf.h"
#include "text/vector_store.h"

namespace grouplink {
namespace {

// Pins the dispatch tier for one test body and restores the default on
// scope exit, so a failing test can't leak its override into the next.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) { SetSimdLevelForTesting(level); }
  ~ScopedSimdLevel() { ClearSimdLevelForTesting(); }
};

std::vector<uint32_t> SortedUniqueSet(Rng& rng, size_t size, uint32_t universe) {
  std::vector<uint32_t> set;
  set.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    set.push_back(static_cast<uint32_t>(rng.Uniform(universe)));
  }
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  return set;
}

size_t ReferenceIntersect(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out.size();
}

// ------------------------------------------------- Sorted intersection.

TEST(SortedIntersectTest, HandCases) {
  const std::vector<uint32_t> a = {1, 3, 5, 7, 9};
  const std::vector<uint32_t> b = {2, 3, 4, 7, 10, 11};
  EXPECT_EQ(SortedIntersectCountScalar(a.data(), a.size(), b.data(), b.size()), 2u);
  EXPECT_EQ(SortedIntersectCount(a.data(), a.size(), b.data(), b.size()), 2u);
}

TEST(SortedIntersectTest, EmptyAndSingleton) {
  const std::vector<uint32_t> a = {5};
  EXPECT_EQ(SortedIntersectCount(nullptr, 0, nullptr, 0), 0u);
  EXPECT_EQ(SortedIntersectCount(a.data(), a.size(), nullptr, 0), 0u);
  EXPECT_EQ(SortedIntersectCount(a.data(), a.size(), a.data(), a.size()), 1u);
}

TEST(SortedIntersectTest, AdversarialShapes) {
  // Shapes chosen to hit every code path: identical sets, disjoint ranges,
  // lengths straddling the 4-lane block width, and the gallop threshold.
  const std::vector<std::pair<std::vector<uint32_t>, std::vector<uint32_t>>>
      cases = {
          {{0, 1, 2, 3}, {0, 1, 2, 3}},              // all equal, one block
          {{0, 1, 2, 3, 4}, {0, 1, 2, 3, 4}},        // block + tail
          {{0, 1, 2}, {3, 4, 5}},                    // disjoint, adjacent
          {{100, 200, 300}, {0, 1, 2, 3, 4, 5, 6}},  // disjoint, interleaved no
          {{0, 2, 4, 6, 8, 10, 12, 14}, {1, 3, 5, 7, 9, 11, 13, 15}},  // zipper
          {{7}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},  // singleton probe
      };
  for (const auto& [a, b] : cases) {
    const size_t expected = ReferenceIntersect(a, b);
    for (const SimdLevel level :
         {SimdLevel::kScalar, SimdLevel::kSse42, SimdLevel::kAvx2}) {
      ScopedSimdLevel scoped(level);
      EXPECT_EQ(SortedIntersectCount(a.data(), a.size(), b.data(), b.size()),
                expected);
      EXPECT_EQ(SortedIntersectCount(b.data(), b.size(), a.data(), a.size()),
                expected);
    }
  }
}

TEST(SortedIntersectTest, RandomizedDifferential) {
  Rng rng(20260808);
  for (int trial = 0; trial < 300; ++trial) {
    // Lopsided sizes exercise the galloping path; tight universes force
    // dense overlap, wide ones force misses.
    const size_t na = static_cast<size_t>(rng.Uniform(120));
    const size_t nb = static_cast<size_t>(rng.Uniform(trial % 3 == 0 ? 2000 : 60));
    const uint32_t universe = static_cast<uint32_t>(rng.UniformInt(1, 4000));
    const auto a = SortedUniqueSet(rng, na, universe);
    const auto b = SortedUniqueSet(rng, nb, universe);
    const size_t expected = ReferenceIntersect(a, b);
    ASSERT_EQ(SortedIntersectCountScalar(a.data(), a.size(), b.data(), b.size()),
              expected);
    for (const SimdLevel level :
         {SimdLevel::kScalar, SimdLevel::kSse42, SimdLevel::kAvx2}) {
      ScopedSimdLevel scoped(level);
      ASSERT_EQ(SortedIntersectCount(a.data(), a.size(), b.data(), b.size()),
                expected)
          << "trial " << trial << " level " << SimdLevelName(level);
    }
  }
}

// ------------------------------------------------------- Scatter dot.

TEST(ScatterDotTest, BitIdenticalAcrossTiersRandomized) {
  Rng rng(77);
  const size_t dimension = 512;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> dense(dimension, 0.0);
    // Scatter a random strictly-positive probe (TF-IDF weights are > 0).
    const size_t probe_terms = static_cast<size_t>(rng.UniformInt(0, 40));
    for (size_t i = 0; i < probe_terms; ++i) {
      dense[rng.Uniform(dimension)] = rng.UniformDouble(1e-3, 2.0);
    }
    // Candidate: sorted unique ids, sizes straddling the 2/4/8 widths.
    const size_t n = static_cast<size_t>(rng.UniformInt(0, 33));
    auto id_set = SortedUniqueSet(rng, n, static_cast<uint32_t>(dimension));
    std::vector<int32_t> ids(id_set.begin(), id_set.end());
    std::vector<double> weights(ids.size());
    for (double& w : weights) w = rng.UniformDouble(1e-3, 2.0);

    const double reference =
        ScatterDotScalar(dense.data(), ids.data(), weights.data(), ids.size());
    for (const SimdLevel level :
         {SimdLevel::kScalar, SimdLevel::kSse42, SimdLevel::kAvx2}) {
      ScopedSimdLevel scoped(level);
      const double got =
          ScatterDot(dense.data(), ids.data(), weights.data(), ids.size());
      // EXPECT_EQ on doubles: the contract is bitwise equality, not
      // tolerance.
      ASSERT_EQ(got, reference)
          << "trial " << trial << " level " << SimdLevelName(level);
    }
  }
}

TEST(ScatterDotTest, MatchesSortedMergeDotProduct) {
  // The full bit-identity chain: scatter dot over a dense probe equals the
  // canonical sorted-merge DotProduct of the sparse vectors.
  Rng rng(99);
  const size_t dimension = 256;
  for (int trial = 0; trial < 100; ++trial) {
    auto make_sparse = [&](size_t terms) {
      SparseVector v;
      const auto ids =
          SortedUniqueSet(rng, terms, static_cast<uint32_t>(dimension));
      for (const uint32_t id : ids) {
        v.ids.push_back(static_cast<int32_t>(id));
        v.weights.push_back(rng.UniformDouble(1e-3, 1.0));
      }
      return v;
    };
    const SparseVector probe = make_sparse(static_cast<size_t>(rng.UniformInt(1, 30)));
    const SparseVector cand = make_sparse(static_cast<size_t>(rng.UniformInt(1, 30)));

    std::vector<double> dense(dimension, 0.0);
    for (size_t k = 0; k < probe.size(); ++k) {
      dense[static_cast<size_t>(probe.ids[k])] = probe.weights[k];
    }
    const std::vector<int32_t>& ids = cand.ids;
    const std::vector<double>& weights = cand.weights;
    const double merged = DotProduct(probe, cand);
    for (const SimdLevel level :
         {SimdLevel::kScalar, SimdLevel::kSse42, SimdLevel::kAvx2}) {
      ScopedSimdLevel scoped(level);
      ASSERT_EQ(ScatterDot(dense.data(), ids.data(), weights.data(), ids.size()),
                merged)
          << "trial " << trial << " level " << SimdLevelName(level);
    }
  }
}

TEST(VectorStoreTest, PairAndScoresMatchPrenormalizedCosine) {
  Rng rng(4242);
  const size_t dimension = 128;
  std::vector<SparseVector> vectors;
  for (int r = 0; r < 40; ++r) {
    SparseVector v;
    const auto ids = SortedUniqueSet(
        rng, static_cast<size_t>(rng.UniformInt(0, 20)),
        static_cast<uint32_t>(dimension));
    for (const uint32_t id : ids) {
      v.ids.push_back(static_cast<int32_t>(id));
      v.weights.push_back(rng.UniformDouble(1e-3, 1.0));
    }
    vectors.push_back(std::move(v));
  }
  const VectorStore store = VectorStore::Build(vectors, dimension);
  ASSERT_EQ(store.size(), vectors.size());

  std::vector<int32_t> candidates;
  for (int32_t r = 0; r < static_cast<int32_t>(vectors.size()); ++r) {
    candidates.push_back(r);
  }
  std::vector<double> scores(candidates.size());
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse42, SimdLevel::kAvx2}) {
    ScopedSimdLevel scoped(level);
    VectorStore::Scratch scratch;
    for (int32_t probe = 0; probe < static_cast<int32_t>(vectors.size());
         ++probe) {
      store.Scores(scratch, probe, candidates.data(), candidates.size(),
                   scores.data());
      for (size_t i = 0; i < candidates.size(); ++i) {
        const double expected = PrenormalizedCosineSimilarity(
            vectors[static_cast<size_t>(probe)], vectors[i]);
        ASSERT_EQ(scores[i], expected)
            << "probe " << probe << " cand " << i << " level "
            << SimdLevelName(level);
        ASSERT_EQ(store.Pair(probe, candidates[i]), expected);
      }
    }
  }
}

// ------------------------------------------------- Bit-parallel edits.

TEST(BitParallelEditDistanceTest, AppliesGate) {
  EXPECT_TRUE(BitParallelEditDistanceApplies(3, 100));
  EXPECT_TRUE(BitParallelEditDistanceApplies(100, 64));
  EXPECT_FALSE(BitParallelEditDistanceApplies(65, 65));
  EXPECT_TRUE(BitParallelEditDistanceApplies(0, 1000));
}

TEST(BitParallelEditDistanceTest, KnownValues) {
  EXPECT_EQ(BitParallelEditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(BitParallelEditDistance("", "abc"), 3u);
  EXPECT_EQ(BitParallelEditDistance("abc", ""), 3u);
  EXPECT_EQ(BitParallelEditDistance("same", "same"), 0u);
  EXPECT_EQ(BitParallelEditDistance("a", "b"), 1u);
}

std::string RandomString(Rng& rng, size_t length, int alphabet) {
  std::string s(length, 'a');
  for (char& c : s) {
    c = static_cast<char>('a' + rng.Uniform(static_cast<uint64_t>(alphabet)));
  }
  return s;
}

TEST(BitParallelEditDistanceTest, RandomizedDifferentialVsDp) {
  Rng rng(31337);
  ScopedSimdLevel scoped(SimdLevel::kScalar);  // Pin the DP as reference.
  for (int trial = 0; trial < 400; ++trial) {
    // Small alphabets force dense match masks; lengths straddle the word
    // boundary on the longer side.
    const int alphabet = trial % 2 == 0 ? 3 : 26;
    const size_t la = static_cast<size_t>(rng.Uniform(64));
    const size_t lb = static_cast<size_t>(rng.Uniform(200));
    const std::string a = RandomString(rng, la, alphabet);
    const std::string b = RandomString(rng, lb, alphabet);
    ASSERT_TRUE(BitParallelEditDistanceApplies(a.size(), b.size()));
    ASSERT_EQ(BitParallelEditDistance(a, b), LevenshteinDistance(a, b))
        << "trial " << trial << " a=" << a << " b=" << b;
  }
}

TEST(LevenshteinDispatchTest, SameAnswerWithAndWithoutMyers) {
  // LevenshteinDistance itself routes through Myers when SIMD is active;
  // the answer must not depend on the tier.
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"jonathan", "johnathan"},
      {"database systems", "databse systms"},
      {"", "nonempty"},
      {std::string(64, 'x'), std::string(64, 'y')},
  };
  for (const auto& [a, b] : cases) {
    size_t scalar_answer = 0;
    {
      ScopedSimdLevel scoped(SimdLevel::kScalar);
      scalar_answer = LevenshteinDistance(a, b);
    }
    {
      ScopedSimdLevel scoped(SimdLevel::kAvx2);
      EXPECT_EQ(LevenshteinDistance(a, b), scalar_answer) << a << " / " << b;
    }
  }
}

// ------------------------------------------------------ Dispatch plumbing.

TEST(SimdDispatchTest, LevelNames) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kSse42), "sse4.2");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(SimdDispatchTest, TestOverrideClampsAndClears) {
  SetSimdLevelForTesting(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  SetSimdLevelForTesting(SimdLevel::kAvx2);
  // Clamped to the machine's real capability: never above detection.
  EXPECT_LE(static_cast<int>(ActiveSimdLevel()),
            static_cast<int>(DetectCpuSimdLevel()));
  ClearSimdLevelForTesting();
}

TEST(SimdDispatchTest, ForceScalarEnvParsing) {
  EXPECT_TRUE(ForceScalarEnvValue("1"));
  EXPECT_TRUE(ForceScalarEnvValue("true"));
  EXPECT_TRUE(ForceScalarEnvValue("yes"));
  EXPECT_TRUE(ForceScalarEnvValue("on"));
  EXPECT_FALSE(ForceScalarEnvValue("0"));
  EXPECT_FALSE(ForceScalarEnvValue(""));
  EXPECT_FALSE(ForceScalarEnvValue("false"));
  EXPECT_FALSE(ForceScalarEnvValue(nullptr));
}

}  // namespace
}  // namespace grouplink
