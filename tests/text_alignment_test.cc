#include "text/alignment.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "text/edit_distance.h"

namespace grouplink {
namespace {

TEST(NeedlemanWunschTest, IdenticalStringsScoreLength) {
  EXPECT_DOUBLE_EQ(NeedlemanWunschScore("abcd", "abcd"), 4.0);
}

TEST(NeedlemanWunschTest, EmptyAgainstNonEmptyIsAllGaps) {
  EXPECT_DOUBLE_EQ(NeedlemanWunschScore("", "abc"), -3.0);
  EXPECT_DOUBLE_EQ(NeedlemanWunschScore("abc", ""), -3.0);
  EXPECT_DOUBLE_EQ(NeedlemanWunschScore("", ""), 0.0);
}

TEST(NeedlemanWunschTest, KnownSmallCase) {
  // "gattaca" vs "gcatgcu" classic example: optimal global score 0 under
  // match=+1, mismatch=-1, gap=-1.
  EXPECT_DOUBLE_EQ(NeedlemanWunschScore("gattaca", "gcatgcu"), 0.0);
}

TEST(NeedlemanWunschTest, CustomScores) {
  AlignmentScores scores;
  scores.match = 2.0;
  scores.mismatch = -3.0;
  scores.gap = -2.0;
  EXPECT_DOUBLE_EQ(NeedlemanWunschScore("aa", "aa", scores), 4.0);
  EXPECT_DOUBLE_EQ(NeedlemanWunschScore("a", "b", scores), -3.0);
}

TEST(NeedlemanWunschTest, Symmetric) {
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    std::string a;
    std::string b;
    for (size_t i = 0, n = 1 + rng.Uniform(8); i < n; ++i) {
      a += static_cast<char>('a' + rng.Uniform(3));
    }
    for (size_t i = 0, n = 1 + rng.Uniform(8); i < n; ++i) {
      b += static_cast<char>('a' + rng.Uniform(3));
    }
    EXPECT_DOUBLE_EQ(NeedlemanWunschScore(a, b), NeedlemanWunschScore(b, a));
  }
}

TEST(NeedlemanWunschTest, UnitCostsDualToLevenshtein) {
  // With match=0, mismatch=-1, gap=-1, NW = -Levenshtein.
  AlignmentScores unit;
  unit.match = 0.0;
  unit.mismatch = -1.0;
  unit.gap = -1.0;
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::string a;
    std::string b;
    for (size_t i = 0, n = rng.Uniform(10); i < n; ++i) {
      a += static_cast<char>('a' + rng.Uniform(4));
    }
    for (size_t i = 0, n = rng.Uniform(10); i < n; ++i) {
      b += static_cast<char>('a' + rng.Uniform(4));
    }
    EXPECT_DOUBLE_EQ(NeedlemanWunschScore(a, b, unit),
                     -static_cast<double>(LevenshteinDistance(a, b)));
  }
}

TEST(SmithWatermanTest, FindsLocalMatch) {
  // Shared substring "match" scores 5 regardless of surroundings.
  EXPECT_DOUBLE_EQ(SmithWatermanScore("xxmatchyy", "qqqmatchqq"), 5.0);
}

TEST(SmithWatermanTest, NeverNegative) {
  EXPECT_DOUBLE_EQ(SmithWatermanScore("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(SmithWatermanScore("", "xyz"), 0.0);
}

TEST(SmithWatermanTest, AtLeastGlobalScore) {
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    std::string a;
    std::string b;
    for (size_t i = 0, n = 1 + rng.Uniform(10); i < n; ++i) {
      a += static_cast<char>('a' + rng.Uniform(3));
    }
    for (size_t i = 0, n = 1 + rng.Uniform(10); i < n; ++i) {
      b += static_cast<char>('a' + rng.Uniform(3));
    }
    EXPECT_GE(SmithWatermanScore(a, b), NeedlemanWunschScore(a, b));
  }
}

TEST(AlignmentSimilarityTest, RangeAndAnchors) {
  EXPECT_DOUBLE_EQ(AlignmentSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(AlignmentSimilarity("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(AlignmentSimilarity("abc", "xyz"), 0.0);
  const double s = AlignmentSimilarity("database", "databse");
  EXPECT_GT(s, 0.6);
  EXPECT_LT(s, 1.0);
}

}  // namespace
}  // namespace grouplink
