// Service-level persistence wiring: persist_on_refresh writes a store
// for every published epoch (seed, inline, async), PersistNow persists
// on demand, Restore() warm restarts a service that then serves and
// links bit-identically to one that never stopped, and persist failures
// are absorbed into last_persist_status() without ever touching serving.
#include "core/service.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "data/bibliographic_generator.h"
#include "storage/page_file.h"
#include "storage/snapshot_store.h"

namespace grouplink {
namespace {

Dataset MakeCorpus(int32_t entities, uint64_t seed) {
  BibliographicConfig config;
  config.num_entities = entities;
  config.noise = 0.25;
  config.num_topics = 5;
  config.offtopic_word_prob = 0.5;
  config.seed = seed;
  return GenerateBibliographic(config);
}

std::vector<std::string> GroupTexts(const Dataset& dataset, int32_t group) {
  std::vector<std::string> texts;
  for (const int32_t r : dataset.groups[static_cast<size_t>(group)].record_ids) {
    texts.push_back(dataset.records[static_cast<size_t>(r)].text);
  }
  return texts;
}

ServiceConfig PersistingConfig(const std::string& path) {
  ServiceConfig config;
  config.engine.theta = 0.35;
  config.engine.group_threshold = 0.2;
  config.persist_path = path;
  config.persist_on_refresh = true;
  return config;
}

std::string StorePath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(ServicePersistTest, ValidateRejectsBadPersistConfigs) {
  ServiceConfig no_path;
  no_path.persist_on_refresh = true;  // ...but no persist_path.
  EXPECT_EQ(LinkageService::Create(MakeCorpus(5, 1), no_path).status().code(),
            StatusCode::kInvalidArgument);

  ServiceConfig bad_pages = PersistingConfig(StorePath("unused.glsnap"));
  bad_pages.persist_page_bytes = 64;
  EXPECT_EQ(LinkageService::Create(MakeCorpus(5, 1), bad_pages).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServicePersistTest, SeedEpochIsPersistedOnCreate) {
  const std::string path = StorePath("seed.glsnap");
  auto service = LinkageService::Create(MakeCorpus(15, 3), PersistingConfig(path));
  ASSERT_TRUE(service.ok()) << service.status().message();
  EXPECT_TRUE(service->last_persist_status().ok());
  ASSERT_TRUE(storage::FileExists(path));

  const auto loaded = storage::SnapshotStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ((*loaded)->epoch(), service->published_epoch());
  EXPECT_EQ((*loaded)->linked_pairs(), service->snapshot()->linked_pairs());
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(ServicePersistTest, EveryPublishedEpochReachesTheStore) {
  const std::string path = StorePath("epochs.glsnap");
  auto service = LinkageService::Create(MakeCorpus(15, 5), PersistingConfig(path));
  ASSERT_TRUE(service.ok());

  // Inline stop-the-world refresh publishes and persists.
  (void)service->AddGroup("arrival one", {"fresh record text one"});
  service->Refresh();
  {
    const auto loaded = storage::SnapshotStore::Load(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ((*loaded)->epoch(), service->published_epoch());
  }

  // Async refresh persists from the background thread after publishing.
  (void)service->AddGroup("arrival two", {"fresh record text two"});
  ASSERT_TRUE(service->RefreshAsync());
  service->WaitForRefresh();
  {
    const auto loaded = storage::SnapshotStore::Load(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ((*loaded)->epoch(), service->published_epoch());
    EXPECT_EQ((*loaded)->linked_pairs(), service->snapshot()->linked_pairs());
  }
  EXPECT_TRUE(service->last_persist_status().ok());
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(ServicePersistTest, PersistNowWorksWithoutPersistOnRefresh) {
  const std::string path = StorePath("manual.glsnap");
  ServiceConfig config = PersistingConfig(path);
  config.persist_on_refresh = false;  // Manual persistence only.
  auto service = LinkageService::Create(MakeCorpus(10, 7), config);
  ASSERT_TRUE(service.ok());
  EXPECT_FALSE(storage::FileExists(path));

  ASSERT_TRUE(service->PersistNow().ok());
  const auto loaded = storage::SnapshotStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->epoch(), service->published_epoch());
  ASSERT_TRUE(storage::RemoveFile(path).ok());

  // And with no path configured at all, PersistNow is a clean error.
  ServiceConfig pathless;
  pathless.engine.theta = 0.35;
  pathless.engine.group_threshold = 0.2;
  auto bare = LinkageService::Create(MakeCorpus(5, 9), pathless);
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->PersistNow().code(), StatusCode::kInvalidArgument);
}

TEST(ServicePersistTest, PersistFailureIsAbsorbedNeverServed) {
  // An injected fsync failure makes the background persist fail; serving
  // must be untouched, and the failure must surface only through
  // last_persist_status(). A later clean persist clears it.
  ScopedFaultClear clear;
  const std::string path = StorePath("absorbed.glsnap");
  auto service = LinkageService::Create(MakeCorpus(12, 11), PersistingConfig(path));
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(service->last_persist_status().ok());

  FaultInjector::Default().Arm(faults::kFailFsync, {.max_fires = 1});
  (void)service->AddGroup("doomed persist", {"text for the failing epoch"});
  service->Refresh();
  FaultInjector::Default().Disarm(faults::kFailFsync);

  EXPECT_FALSE(service->last_persist_status().ok());
  EXPECT_EQ(service->last_persist_status().code(), StatusCode::kIoError);
  // Serving never noticed: queries answer from the published epoch.
  const auto result = service->LinkQuery({"probe", {"text for the failing epoch"}});
  EXPECT_EQ(result.epoch, service->published_epoch());

  // The old store (the seed epoch) survived the failed persist.
  const auto survived = storage::SnapshotStore::Load(path);
  ASSERT_TRUE(survived.ok()) << survived.status().message();
  EXPECT_TRUE((*survived)->CheckConsistency());

  // The next persist succeeds and clears the sticky status.
  ASSERT_TRUE(service->PersistNow().ok());
  EXPECT_TRUE(service->last_persist_status().ok());
  const auto loaded = storage::SnapshotStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->epoch(), service->published_epoch());
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(ServicePersistTest, RestoreWarmRestartsBitIdentically) {
  // The service-level warm-restart contract: kill a persisting service,
  // Restore() from its store, and the restarted service must serve the
  // same epoch and link a stream of future arrivals exactly like the
  // service that never stopped.
  const std::string path = StorePath("restore.glsnap");
  const Dataset seed = MakeCorpus(20, 13);
  auto original = LinkageService::Create(seed, PersistingConfig(path));
  ASSERT_TRUE(original.ok());
  (void)original->AddGroup("pre-crash arrival", {"tokens before the crash"});
  original->Refresh();

  auto restored = LinkageService::Restore(PersistingConfig(path));
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored->published_epoch(), original->published_epoch());
  EXPECT_EQ(restored->snapshot()->linked_pairs(),
            original->snapshot()->linked_pairs());
  EXPECT_EQ(restored->num_groups(), original->num_groups());

  const Dataset future = MakeCorpus(6, 1717);
  for (int32_t g = 0; g < future.num_groups(); ++g) {
    const auto a = original->AddGroup("arrival", GroupTexts(future, g));
    const auto b = restored->AddGroup("arrival", GroupTexts(future, g));
    EXPECT_EQ(a.group_index, b.group_index) << g;
    EXPECT_EQ(a.linked_to, b.linked_to) << g;
    EXPECT_EQ(a.candidates, b.candidates) << g;
  }
  original->Refresh();
  restored->Refresh();
  EXPECT_EQ(restored->linked_pairs(), original->linked_pairs());
  EXPECT_EQ(restored->published_epoch(), original->published_epoch());
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST(ServicePersistTest, RestoreErrorsAreClean) {
  // No path configured.
  ServiceConfig pathless;
  EXPECT_EQ(LinkageService::Restore(pathless).status().code(),
            StatusCode::kInvalidArgument);
  // No store at the path.
  EXPECT_EQ(LinkageService::Restore(
                PersistingConfig(StorePath("never_written.glsnap")))
                .status()
                .code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace grouplink
