// CorpusSnapshot property suite: a captured epoch is an immutable,
// self-consistent freeze of the linker, LinkQuery reproduces the arrival
// path's link decision exactly (proved against Clone()->AddGroup and, at
// refresh points, against a batch LinkageEngine run over the epoch
// corpus plus the probe), and admission control degrades queries without
// ever over-linking.
#include "core/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "core/incremental.h"
#include "core/linkage_engine.h"
#include "data/bibliographic_generator.h"

namespace grouplink {
namespace {

LinkageConfig TestConfig() {
  LinkageConfig config;
  config.theta = 0.35;
  config.group_threshold = 0.2;
  return config;
}

Dataset MakeCorpus(int32_t entities, uint64_t seed) {
  BibliographicConfig config;
  config.num_entities = entities;
  config.noise = 0.25;
  config.num_topics = 5;
  config.offtopic_word_prob = 0.5;
  config.seed = seed;
  return GenerateBibliographic(config);
}

std::vector<std::string> GroupTexts(const Dataset& dataset, int32_t group) {
  std::vector<std::string> texts;
  for (const int32_t r : dataset.groups[static_cast<size_t>(group)].record_ids) {
    texts.push_back(dataset.records[static_cast<size_t>(r)].text);
  }
  return texts;
}

// Splits `full` into a seed prefix dataset and the remaining arrivals.
void Split(const Dataset& full, int32_t seed_groups, Dataset* seed,
           std::vector<GroupArrival>* arrivals) {
  for (int32_t g = 0; g < full.num_groups(); ++g) {
    if (g < seed_groups) {
      Group rebased;
      rebased.id = full.groups[static_cast<size_t>(g)].id;
      rebased.label = full.groups[static_cast<size_t>(g)].label;
      for (const int32_t r : full.groups[static_cast<size_t>(g)].record_ids) {
        rebased.record_ids.push_back(static_cast<int32_t>(seed->records.size()));
        seed->records.push_back(full.records[static_cast<size_t>(r)]);
      }
      seed->groups.push_back(std::move(rebased));
    } else {
      arrivals->push_back(
          {full.groups[static_cast<size_t>(g)].label, GroupTexts(full, g)});
    }
  }
  ASSERT_TRUE(seed->Validate().ok());
}

TEST(CorpusSnapshotTest, CaptureFreezesLinkerState) {
  const Dataset dataset = MakeCorpus(30, 7);
  auto linker = IncrementalLinker::Create(dataset, TestConfig());
  ASSERT_TRUE(linker.ok());

  const auto snapshot = CorpusSnapshot::Capture(*linker);
  EXPECT_TRUE(snapshot->CheckConsistency());
  EXPECT_EQ(snapshot->epoch(), linker->epoch());
  EXPECT_EQ(snapshot->num_groups(), linker->num_groups());
  EXPECT_EQ(snapshot->num_alive_groups(), linker->num_alive_groups());
  EXPECT_EQ(snapshot->linked_pairs(), linker->linked_pairs());
  EXPECT_EQ(snapshot->cluster_labels(), linker->ClusterLabels());
}

TEST(CorpusSnapshotTest, SnapshotSurvivesWriterMutationAndDestruction) {
  const Dataset full = MakeCorpus(30, 21);
  Dataset seed;
  std::vector<GroupArrival> arrivals;
  Split(full, full.num_groups() - 4, &seed, &arrivals);

  std::shared_ptr<const CorpusSnapshot> snapshot;
  std::vector<std::pair<int32_t, int32_t>> frozen_links;
  int32_t frozen_groups = 0;
  {
    auto linker = IncrementalLinker::Create(seed, TestConfig());
    ASSERT_TRUE(linker.ok());
    snapshot = CorpusSnapshot::Capture(*linker);
    frozen_links = linker->linked_pairs();
    frozen_groups = linker->num_groups();
    // Mutate the writer heavily after the capture, then destroy it.
    for (const GroupArrival& arrival : arrivals) {
      (void)linker->AddGroup(arrival.label, arrival.record_texts);
    }
    linker->RemoveGroup(0);
    linker->Refresh();
  }
  // The snapshot still answers from the frozen epoch.
  EXPECT_TRUE(snapshot->CheckConsistency());
  EXPECT_EQ(snapshot->num_groups(), frozen_groups);
  EXPECT_EQ(snapshot->linked_pairs(), frozen_links);
  EXPECT_TRUE(snapshot->IsAlive(0));
  const auto result = snapshot->LinkQuery(arrivals.front());
  for (const int32_t g : result.linked_to) {
    EXPECT_LT(g, frozen_groups);
  }
}

TEST(CorpusSnapshotTest, LinkQueryMatchesCloneAddGroupExactly) {
  // The core query-equivalence property: LinkQuery(G) on a snapshot must
  // return exactly the links that adding G to a clone of the captured
  // writer would produce — same decision ladder, same frozen statistics.
  // Probes are *future* groups the epoch has never seen (OOV tokens and
  // all), plus a replayed in-corpus group (a guaranteed link).
  const Dataset full = MakeCorpus(35, 42);
  Dataset seed;
  std::vector<GroupArrival> arrivals;
  Split(full, (2 * full.num_groups()) / 3, &seed, &arrivals);
  ASSERT_FALSE(arrivals.empty());

  auto linker = IncrementalLinker::Create(seed, TestConfig());
  ASSERT_TRUE(linker.ok());
  const auto snapshot = CorpusSnapshot::Capture(*linker);

  std::vector<GroupArrival> probes = arrivals;
  probes.push_back({"replay", GroupTexts(seed, 0)});

  size_t linked_probes = 0;
  for (const GroupArrival& probe : probes) {
    const auto query = snapshot->LinkQuery(probe);
    const auto added = linker->Clone()->AddGroup(probe.label, probe.record_texts);
    EXPECT_EQ(query.linked_to, added.linked_to) << probe.label;
    EXPECT_EQ(query.candidates, added.candidates) << probe.label;
    EXPECT_EQ(query.oov_tokens, added.oov_tokens) << probe.label;
    EXPECT_FALSE(query.degraded);
    EXPECT_EQ(query.epoch, snapshot->epoch());
    if (!query.linked_to.empty()) ++linked_probes;
  }
  EXPECT_GT(linked_probes, 0u);  // The property must not hold vacuously.
}

TEST(CorpusSnapshotTest, QueryAtRefreshPointMatchesBatchEngine) {
  // At a refresh point the snapshot is a pure batch-equivalent epoch:
  // its link set is the batch engine's over the epoch corpus, bit for
  // bit, and replaying any in-corpus group as a probe — whose vectors
  // then coincide exactly with the corpus group's under the frozen
  // statistics — must link to precisely its batch partners plus itself.
  const Dataset dataset = MakeCorpus(25, 99);
  auto linker = IncrementalLinker::Create(dataset, TestConfig());
  ASSERT_TRUE(linker.ok());
  const auto snapshot = CorpusSnapshot::Capture(*linker);

  const auto batch = RunGroupLinkage(dataset, linker->engine_config());
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(snapshot->linked_pairs(), batch->linked_pairs);

  std::vector<std::vector<int32_t>> partners(
      static_cast<size_t>(dataset.num_groups()));
  for (const auto& [a, b] : batch->linked_pairs) {
    partners[static_cast<size_t>(a)].push_back(b);
    partners[static_cast<size_t>(b)].push_back(a);
  }
  size_t linked_probes = 0;
  for (int32_t g = 0; g < dataset.num_groups(); ++g) {
    std::vector<int32_t> expected = partners[static_cast<size_t>(g)];
    expected.push_back(g);  // Identical groups always link.
    std::sort(expected.begin(), expected.end());
    const auto query = snapshot->LinkQuery({"replay", GroupTexts(dataset, g)});
    EXPECT_EQ(query.linked_to, expected) << "group " << g;
    if (expected.size() > 1) ++linked_probes;
  }
  EXPECT_GT(linked_probes, 0u);  // The property must not hold vacuously.
}

TEST(CorpusSnapshotTest, RemovedGroupsAreNeverReturned) {
  const Dataset dataset = MakeCorpus(25, 5);
  auto linker = IncrementalLinker::Create(dataset, TestConfig());
  ASSERT_TRUE(linker.ok());

  // Remove a group that actually links to something, so the query answer
  // is guaranteed to change.
  ASSERT_FALSE(linker->linked_pairs().empty());
  const int32_t removed = linker->linked_pairs().front().first;
  linker->RemoveGroup(removed);
  const auto snapshot = CorpusSnapshot::Capture(*linker);
  EXPECT_TRUE(snapshot->CheckConsistency());
  EXPECT_FALSE(snapshot->IsAlive(removed));
  EXPECT_EQ(snapshot->num_alive_groups(), snapshot->num_groups() - 1);

  for (int32_t g = 0; g < dataset.num_groups(); ++g) {
    const auto query = snapshot->LinkQuery({"probe", GroupTexts(dataset, g)});
    EXPECT_EQ(std::find(query.linked_to.begin(), query.linked_to.end(), removed),
              query.linked_to.end());
  }
}

TEST(CorpusSnapshotTest, AdmissionControlDegradesButNeverOverlinks) {
  const Dataset dataset = MakeCorpus(30, 13);
  auto linker = IncrementalLinker::Create(dataset, TestConfig());
  ASSERT_TRUE(linker.ok());
  const auto snapshot = CorpusSnapshot::Capture(*linker);

  const GroupArrival probe{"probe", GroupTexts(dataset, 0)};
  const auto unconstrained = snapshot->LinkQuery(probe);
  ASSERT_FALSE(unconstrained.linked_to.empty());
  ASSERT_GT(unconstrained.candidates, 1u);

  CorpusSnapshot::QueryOptions tight;
  tight.max_candidate_pairs = 1;
  const auto capped = snapshot->LinkQuery(probe, tight);
  EXPECT_TRUE(capped.degraded);
  EXPECT_LE(capped.candidates, 1u);
  EXPECT_TRUE(std::includes(unconstrained.linked_to.begin(),
                            unconstrained.linked_to.end(),
                            capped.linked_to.begin(), capped.linked_to.end()));

  // The matcher budget falls back to the sound lower bound: a subset too.
  CorpusSnapshot::QueryOptions budget;
  budget.max_matcher_cost = 1;
  const auto bounded = snapshot->LinkQuery(probe, budget);
  EXPECT_TRUE(std::includes(unconstrained.linked_to.begin(),
                            unconstrained.linked_to.end(),
                            bounded.linked_to.begin(), bounded.linked_to.end()));

  // A pre-cancelled query sheds everything but stays valid.
  CorpusSnapshot::QueryOptions cancelled;
  cancelled.cancellation.Cancel();
  const auto shed = snapshot->LinkQuery(probe, cancelled);
  EXPECT_TRUE(shed.degraded);
  EXPECT_TRUE(shed.linked_to.empty());
}

TEST(CorpusSnapshotTest, UnknownTokensCountAsOovAndDoNotMatch) {
  const Dataset dataset = MakeCorpus(20, 3);
  auto linker = IncrementalLinker::Create(dataset, TestConfig());
  ASSERT_TRUE(linker.ok());
  const auto snapshot = CorpusSnapshot::Capture(*linker);

  const auto query = snapshot->LinkQuery(
      {"aliens", {"zzgrxk qplwv nxxthf", "vvbnmq wyzzkr"}});
  EXPECT_TRUE(query.linked_to.empty());
  EXPECT_EQ(query.candidates, 0u);
  EXPECT_EQ(query.oov_tokens, 5u);
}

TEST(CorpusSnapshotTest, RetiredEpochsReportReclamation) {
  const Dataset dataset = MakeCorpus(15, 11);
  auto linker = IncrementalLinker::Create(dataset, TestConfig());
  ASSERT_TRUE(linker.ok());

  MetricsRegistry& registry = MetricsRegistry::Default();
  Counter& retired = registry.CounterRef("snapshot.retired");
  const uint64_t retired_before = retired.Value();
  {
    const auto snapshot = CorpusSnapshot::Capture(*linker);
    EXPECT_EQ(retired.Value(), retired_before);
    // A second handle keeps the epoch alive after the first drops.
    const auto held = snapshot;
  }
  EXPECT_EQ(retired.Value(), retired_before + 1);
}

}  // namespace
}  // namespace grouplink
