#include "matching/ssp_matching.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "matching/brute_force.h"
#include "matching/hopcroft_karp.h"
#include "matching/hungarian.h"

namespace grouplink {
namespace {

BipartiteGraph RandomGraph(Rng& rng, int32_t max_side, double edge_prob) {
  const int32_t num_left = 1 + static_cast<int32_t>(rng.Uniform(max_side));
  const int32_t num_right = 1 + static_cast<int32_t>(rng.Uniform(max_side));
  BipartiteGraph graph(num_left, num_right);
  for (int32_t l = 0; l < num_left; ++l) {
    for (int32_t r = 0; r < num_right; ++r) {
      if (rng.Bernoulli(edge_prob)) {
        graph.AddEdge(l, r, 0.05 + 0.95 * rng.UniformDouble());
      }
    }
  }
  return graph;
}

TEST(MaxWeightByCardinalityTest, SimpleProfile) {
  // Edges: (0,0)=0.9, (0,1)=0.5, (1,0)=0.6.
  // k=1: best single edge 0.9. k=2: (0,1)+(1,0) = 1.1.
  BipartiteGraph graph(2, 2);
  graph.AddEdge(0, 0, 0.9);
  graph.AddEdge(0, 1, 0.5);
  graph.AddEdge(1, 0, 0.6);
  const auto profile = MaxWeightByCardinality(graph);
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_DOUBLE_EQ(profile[0], 0.0);
  EXPECT_NEAR(profile[1], 0.9, 1e-9);
  EXPECT_NEAR(profile[2], 1.1, 1e-9);
}

TEST(MaxWeightByCardinalityTest, EmptyGraph) {
  BipartiteGraph graph(3, 4);
  const auto profile = MaxWeightByCardinality(graph);
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_DOUBLE_EQ(profile[0], 0.0);
}

TEST(MaxWeightByCardinalityTest, ProfileLengthIsMaxCardinality) {
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const BipartiteGraph graph = RandomGraph(rng, 7, 0.4);
    const auto profile = MaxWeightByCardinality(graph);
    const Matching hk = HopcroftKarpMatching(graph);
    EXPECT_EQ(profile.size(), static_cast<size_t>(hk.size) + 1) << trial;
  }
}

TEST(MaxWeightByCardinalityTest, PeakEqualsHungarianWeight) {
  Rng rng(22);
  for (int trial = 0; trial < 200; ++trial) {
    const BipartiteGraph graph = RandomGraph(rng, 7, 0.4);
    const auto profile = MaxWeightByCardinality(graph);
    double peak = 0.0;
    for (const double w : profile) peak = std::max(peak, w);
    const double hungarian = HungarianMaxWeightMatching(graph).total_weight;
    EXPECT_NEAR(peak, hungarian, 1e-9) << trial;
  }
}

TEST(MaxWeightByCardinalityTest, GainsAreNonIncreasing) {
  Rng rng(33);
  for (int trial = 0; trial < 200; ++trial) {
    const BipartiteGraph graph = RandomGraph(rng, 7, 0.5);
    const auto profile = MaxWeightByCardinality(graph);
    for (size_t k = 2; k < profile.size(); ++k) {
      const double gain_prev = profile[k - 1] - profile[k - 2];
      const double gain = profile[k] - profile[k - 1];
      EXPECT_LE(gain, gain_prev + 1e-9) << "trial " << trial << " k " << k;
    }
  }
}

TEST(MaxWeightByCardinalityTest, EachEntryOptimalByBruteForce) {
  // Exhaustively verify profile[k] for tiny graphs: max weight over all
  // matchings of size exactly k.
  Rng rng(44);
  for (int trial = 0; trial < 60; ++trial) {
    const BipartiteGraph graph = RandomGraph(rng, 4, 0.6);
    const auto profile = MaxWeightByCardinality(graph);
    // Enumerate all matchings via the brute-force normalized enumerator:
    // reuse dense weights and recursion here directly.
    const auto weights = graph.ToDenseWeights();
    std::vector<double> best_by_size(profile.size(), 0.0);
    // Depth-first enumeration.
    std::vector<bool> right_used(static_cast<size_t>(graph.num_right()), false);
    const auto recurse = [&](auto&& self, int32_t l, double weight,
                             size_t size) -> void {
      if (size < best_by_size.size()) {
        best_by_size[size] = std::max(best_by_size[size], weight);
      }
      if (l == graph.num_left()) return;
      self(self, l + 1, weight, size);
      for (int32_t r = 0; r < graph.num_right(); ++r) {
        const double w = weights[static_cast<size_t>(l)][static_cast<size_t>(r)];
        if (w <= 0.0 || right_used[static_cast<size_t>(r)]) continue;
        right_used[static_cast<size_t>(r)] = true;
        self(self, l + 1, weight + w, size + 1);
        right_used[static_cast<size_t>(r)] = false;
      }
    };
    recurse(recurse, 0, 0.0, 0);
    for (size_t k = 0; k < profile.size(); ++k) {
      EXPECT_NEAR(profile[k], best_by_size[k], 1e-9) << "trial " << trial << " k " << k;
    }
  }
}

TEST(MaxNormalizedScoreTest, MatchesBruteForceOracle) {
  Rng rng(55);
  for (int trial = 0; trial < 200; ++trial) {
    const BipartiteGraph graph = RandomGraph(rng, 6, 0.4);
    const double fast =
        MaxNormalizedMatchingScore(graph, graph.num_left(), graph.num_right());
    const double oracle = BruteForceMaxNormalizedScore(graph);
    EXPECT_NEAR(fast, oracle, 1e-9) << trial;
  }
}

TEST(MaxNormalizedScoreTest, EmptySideConventions) {
  BipartiteGraph both(0, 0);
  EXPECT_DOUBLE_EQ(MaxNormalizedMatchingScore(both, 0, 0), 1.0);
  BipartiteGraph one(0, 3);
  EXPECT_DOUBLE_EQ(MaxNormalizedMatchingScore(one, 0, 3), 0.0);
}

TEST(MaxNormalizedScoreTest, AccountsForIsolatedRecords) {
  // One unit edge, but the groups are larger than the graph coverage.
  BipartiteGraph graph(1, 1);
  graph.AddEdge(0, 0, 1.0);
  EXPECT_DOUBLE_EQ(MaxNormalizedMatchingScore(graph, 1, 1), 1.0);
  EXPECT_NEAR(MaxNormalizedMatchingScore(graph, 3, 4), 1.0 / 6.0, 1e-12);
}

}  // namespace
}  // namespace grouplink
