// Randomized property tests over the string-similarity substrate: the
// invariants here (metric axioms, bound agreements, output formats) must
// hold for arbitrary inputs, not just the curated cases in the per-module
// suites.

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "text/edit_distance.h"
#include "text/jaccard.h"
#include "text/jaro.h"
#include "text/soundex.h"
#include "text/tokenizer.h"

namespace grouplink {
namespace {

std::string RandomWord(Rng& rng, size_t max_length, int alphabet = 6) {
  std::string word;
  const size_t length = rng.Uniform(max_length + 1);
  for (size_t i = 0; i < length; ++i) {
    word += static_cast<char>('a' + rng.Uniform(static_cast<uint64_t>(alphabet)));
  }
  return word;
}

TEST(LevenshteinPropertyTest, MetricAxioms) {
  Rng rng(71);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string a = RandomWord(rng, 10);
    const std::string b = RandomWord(rng, 10);
    const std::string c = RandomWord(rng, 10);
    const size_t ab = LevenshteinDistance(a, b);
    const size_t ba = LevenshteinDistance(b, a);
    const size_t ac = LevenshteinDistance(a, c);
    const size_t cb = LevenshteinDistance(c, b);
    EXPECT_EQ(ab, ba);                                     // Symmetry.
    EXPECT_EQ(LevenshteinDistance(a, a), 0u);              // Identity.
    EXPECT_LE(ab, ac + cb) << a << " " << b << " " << c;   // Triangle.
    // Length-difference lower bound and max-length upper bound.
    const size_t gap = a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
    EXPECT_GE(ab, gap);
    EXPECT_LE(ab, std::max(a.size(), b.size()));
  }
}

TEST(BoundedLevenshteinPropertyTest, AgreesWithExactOnRandomStrings) {
  Rng rng(72);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string a = RandomWord(rng, 12, 4);
    const std::string b = RandomWord(rng, 12, 4);
    const size_t exact = LevenshteinDistance(a, b);
    const size_t bound = rng.Uniform(10);
    const size_t bounded = BoundedLevenshteinDistance(a, b, bound);
    if (exact <= bound) {
      EXPECT_EQ(bounded, exact) << a << "/" << b << " bound " << bound;
    } else {
      EXPECT_GT(bounded, bound) << a << "/" << b << " bound " << bound;
    }
  }
}

TEST(DamerauPropertyTest, SandwichedByLevenshtein) {
  // Lev/2 <= Damerau <= Lev (each transposition replaces two unit edits).
  Rng rng(73);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string a = RandomWord(rng, 10, 3);
    const std::string b = RandomWord(rng, 10, 3);
    const size_t lev = LevenshteinDistance(a, b);
    const size_t damerau = DamerauLevenshteinDistance(a, b);
    EXPECT_LE(damerau, lev);
    EXPECT_GE(2 * damerau, lev) << a << " " << b;
  }
}

TEST(JaroWinklerPropertyTest, AlwaysAtLeastJaro) {
  Rng rng(74);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string a = RandomWord(rng, 10);
    const std::string b = RandomWord(rng, 10);
    EXPECT_GE(JaroWinklerSimilarity(a, b) + 1e-12, JaroSimilarity(a, b))
        << a << " " << b;
  }
}

TEST(SoundexPropertyTest, OutputFormatOnRandomAlphaInput) {
  Rng rng(75);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string word = RandomWord(rng, 12, 26);
    const std::string code = Soundex(word);
    if (word.empty()) {
      EXPECT_TRUE(code.empty());
      continue;
    }
    ASSERT_EQ(code.size(), 4u) << word;
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(code[0]))) << word;
    for (size_t i = 1; i < 4; ++i) {
      EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(code[i]))) << word;
    }
    // Case-insensitive.
    std::string upper = word;
    for (char& c : upper) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    EXPECT_EQ(Soundex(upper), code);
  }
}

TEST(SetSimilarityPropertyTest, OrderingsAmongMeasures) {
  // Jaccard <= Dice <= Overlap for any pair of non-empty sets.
  Rng rng(76);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::string> a;
    std::vector<std::string> b;
    const size_t na = 1 + rng.Uniform(8);
    const size_t nb = 1 + rng.Uniform(8);
    for (size_t i = 0; i < na; ++i) a.push_back(RandomWord(rng, 3, 4));
    for (size_t i = 0; i < nb; ++i) b.push_back(RandomWord(rng, 3, 4));
    a = ToTokenSet(a);
    b = ToTokenSet(b);
    if (a.empty() || b.empty()) continue;
    const double jaccard = JaccardSimilarity(a, b);
    const double dice = DiceSimilarity(a, b);
    const double overlap = OverlapSimilarity(a, b);
    EXPECT_LE(jaccard, dice + 1e-12);
    EXPECT_LE(dice, overlap + 1e-12);
    EXPECT_GE(jaccard, 0.0);
    EXPECT_LE(overlap, 1.0);
  }
}

}  // namespace
}  // namespace grouplink
