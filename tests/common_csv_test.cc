#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/random.h"

namespace grouplink {
namespace {

using Rows = std::vector<std::vector<std::string>>;

TEST(CsvEscapeTest, PlainFieldUnquoted) {
  EXPECT_EQ(CsvEscape("abc"), "abc");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvEscapeTest, QuotesWhenNeeded) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(CsvEscape("a\nb"), "\"a\nb\"");
}

TEST(CsvFormatRowTest, JoinsWithDelimiter) {
  EXPECT_EQ(CsvFormatRow({"a", "b,c", ""}), "a,\"b,c\",");
}

TEST(CsvParseLineTest, SimpleFields) {
  const auto fields = CsvParseLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvParseLineTest, QuotedFields) {
  const auto fields = CsvParseLine("\"a,b\",\"x\"\"y\",plain");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a,b", "x\"y", "plain"}));
}

TEST(CsvParseLineTest, EmptyFields) {
  const auto fields = CsvParseLine(",,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"", "", ""}));
}

TEST(CsvParseLineTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(CsvParseLine("\"abc").ok());
}

TEST(CsvParseDocumentTest, MultipleRowsAndLineEndings) {
  const auto rows = CsvParseDocument("a,b\r\nc,d\ne,f");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
  EXPECT_EQ((*rows)[2], (std::vector<std::string>{"e", "f"}));
}

TEST(CsvParseDocumentTest, QuotedNewlineStaysInField) {
  const auto rows = CsvParseDocument("a,\"line1\nline2\"\nb,c");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][1], "line1\nline2");
}

TEST(CsvParseDocumentTest, EmptyDocument) {
  const auto rows = CsvParseDocument("");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(CsvParseDocumentTest, TrailingNewlineNoPhantomRow) {
  const auto rows = CsvParseDocument("a,b\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(CsvRoundTripTest, EscapeThenParseRecoversFields) {
  const Rows original = {
      {"plain", "with,comma", "with\"quote"},
      {"multi\nline", "", "tail"},
  };
  std::string doc;
  for (const auto& row : original) doc += CsvFormatRow(row) + "\n";
  const auto parsed = CsvParseDocument(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, original);
}

TEST(CsvFileTest, WriteThenReadRoundTrips) {
  const std::string path = ::testing::TempDir() + "/grouplink_csv_test.csv";
  const Rows rows = {{"h1", "h2"}, {"a,b", "c"}, {"", "x\ny"}};
  ASSERT_TRUE(CsvWriteFile(path, rows).ok());
  const auto loaded = CsvReadFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, rows);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIoError) {
  const auto loaded = CsvReadFile("/nonexistent/dir/file.csv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

// Fuzz-style round trip: random field contents over a hostile alphabet
// (quotes, commas, newlines, CRs) must survive escape -> parse exactly.
class CsvFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzTest, RandomRowsRoundTrip) {
  Rng rng(GetParam());
  constexpr std::string_view kAlphabet = "ab\",\n\r ;x";
  for (int trial = 0; trial < 50; ++trial) {
    Rows original;
    const size_t num_rows = 1 + rng.Uniform(5);
    const size_t num_cols = 1 + rng.Uniform(4);
    for (size_t r = 0; r < num_rows; ++r) {
      std::vector<std::string> row;
      for (size_t c = 0; c < num_cols; ++c) {
        std::string field;
        const size_t length = rng.Uniform(8);
        for (size_t i = 0; i < length; ++i) {
          field += kAlphabet[static_cast<size_t>(rng.Uniform(kAlphabet.size()))];
        }
        row.push_back(std::move(field));
      }
      original.push_back(std::move(row));
    }
    std::string document;
    for (const auto& row : original) document += CsvFormatRow(row) + "\n";
    const auto parsed = CsvParseDocument(document);
    ASSERT_TRUE(parsed.ok()) << document;
    EXPECT_EQ(*parsed, original) << document;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(CsvFuzzTest, ArbitraryInputNeverCrashes) {
  // Any byte soup either parses or returns an error — no aborts.
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const size_t length = rng.Uniform(60);
    for (size_t i = 0; i < length; ++i) {
      garbage += static_cast<char>(rng.Uniform(128));
    }
    const auto parsed = CsvParseDocument(garbage);
    if (parsed.ok()) {
      for (const auto& row : *parsed) EXPECT_GE(row.size(), 1u);
    }
  }
}

TEST(CsvHardeningTest, EmbeddedNulByteIsParseError) {
  const std::string with_nul = std::string("a,b") + '\0' + "c,d";
  const auto rows = CsvParseDocument(with_nul);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kParseError);
  EXPECT_NE(rows.status().message().find("NUL"), std::string::npos);
}

TEST(CsvHardeningTest, OversizedFieldIsParseError) {
  CsvParseOptions options;
  options.max_field_bytes = 8;
  const auto rows =
      CsvParseDocument("ok,waytoolongforthelimit", ',', options);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kParseError);
  EXPECT_NE(rows.status().message().find("exceeds 8 bytes"), std::string::npos);
  // A field exactly at the limit passes.
  CsvParseOptions exact;
  exact.max_field_bytes = 8;
  EXPECT_TRUE(CsvParseDocument("12345678,ok", ',', exact).ok());
  // Quoted fields are bounded too.
  EXPECT_FALSE(CsvParseDocument("\"123456789\"", ',', exact).ok());
}

TEST(CsvHardeningTest, ColumnBombIsParseError) {
  CsvParseOptions options;
  options.max_columns = 4;
  EXPECT_TRUE(CsvParseDocument("a,b,c,d", ',', options).ok());
  const auto rows = CsvParseDocument("a,b,c,d,e", ',', options);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kParseError);
  EXPECT_NE(rows.status().message().find("exceeds 4 columns"),
            std::string::npos);
}

TEST(CsvHardeningTest, ZeroLimitsDisableTheChecks) {
  CsvParseOptions unlimited;
  unlimited.max_field_bytes = 0;
  unlimited.max_columns = 0;
  std::string wide;
  for (int i = 0; i < 5000; ++i) wide += "x,";
  wide += std::string(2000, 'y');
  EXPECT_TRUE(CsvParseDocument(wide, ',', unlimited).ok());
}

TEST(CsvCustomDelimiterTest, Semicolon) {
  EXPECT_EQ(CsvFormatRow({"a;b", "c"}, ';'), "\"a;b\";c");
  const auto fields = CsvParseLine("a;b;c", ';');
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->size(), 3u);
}

}  // namespace
}  // namespace grouplink
