// Corruption suite: any bit flip, anywhere in a persisted store — header
// page, dictionary pages, posting pages, the seal, the checksum fields
// themselves, even the zero padding — must turn Load into a clean
// Status::DataLoss. A corrupted store must never decode into a silently
// different link set. Truncation at any page boundary or mid-page is
// equally fatal.
#include "storage/snapshot_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/incremental.h"
#include "core/snapshot.h"
#include "data/bibliographic_generator.h"
#include "storage/page_file.h"
#include "storage/store_format.h"

namespace grouplink {
namespace storage {
namespace {

LinkageConfig TestConfig() {
  LinkageConfig config;
  config.theta = 0.35;
  config.group_threshold = 0.2;
  return config;
}

Dataset MakeCorpus(int32_t entities, uint64_t seed) {
  BibliographicConfig config;
  config.num_entities = entities;
  config.noise = 0.25;
  config.num_topics = 5;
  config.offtopic_word_prob = 0.5;
  config.seed = seed;
  return GenerateBibliographic(config);
}

std::string StorePath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GL_CHECK(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  GL_CHECK(out.good()) << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  GL_CHECK(out.good()) << path;
}

class StorageCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const Dataset dataset = MakeCorpus(15, 29);
    auto linker = IncrementalLinker::Create(dataset, TestConfig());
    GL_CHECK(linker.ok());
    snapshot_ = CorpusSnapshot::Capture(*linker);
    path_ = StorePath("corruption.glsnap");
    StorageOptions options;
    options.page_bytes = 512;
    GL_CHECK(SnapshotStore::Persist(*snapshot_, path_, options).ok());
    clean_ = ReadAll(path_);
    GL_CHECK_EQ(clean_.size() % 512, 0u);
  }

  void TearDown() override { GL_CHECK(RemoveFile(path_).ok()); }

  /// Loads the store with one bit flipped at `byte`:`bit` and demands a
  /// clean DataLoss.
  void ExpectFlipIsFatal(size_t byte, int bit) {
    std::vector<uint8_t> bytes = clean_;
    bytes[byte] ^= static_cast<uint8_t>(1u << bit);
    WriteAll(path_, bytes);
    const auto loaded = SnapshotStore::Load(path_);
    ASSERT_FALSE(loaded.ok()) << "flip at byte " << byte << " bit " << bit
                              << " silently decoded";
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << "byte " << byte << " bit " << bit << ": "
        << loaded.status().message();
  }

  std::shared_ptr<const CorpusSnapshot> snapshot_;
  std::string path_;
  std::vector<uint8_t> clean_;
};

TEST_F(StorageCorruptionTest, CleanStoreLoadsAsAControl) {
  const auto loaded = SnapshotStore::Load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ((*loaded)->epoch(), snapshot_->epoch());
  EXPECT_EQ((*loaded)->linked_pairs(), snapshot_->linked_pairs());
}

TEST_F(StorageCorruptionTest, HeaderPageFlipsAreDataLoss) {
  // Magic, version, page_bytes, num_pages, the segment directory, the
  // header checksum itself, and the header padding.
  for (const size_t byte : {0u, 4u, 16u, 18u, 24u, 28u, 36u, 60u, 100u, 511u}) {
    ExpectFlipIsFatal(byte, static_cast<int>(byte) % 8);
  }
}

TEST_F(StorageCorruptionTest, DictionaryAndPostingPageFlipsAreDataLoss) {
  // Pages 1..num_pages-2 hold the segments (meta, dictionaries, posting
  // lists, vectors, documents). Flip a bit in the payload, the page
  // header, and the padding of several of them.
  const size_t num_pages = clean_.size() / 512;
  ASSERT_GT(num_pages, 3u);
  for (size_t page = 1; page + 1 < num_pages; page += (num_pages > 9 ? 3 : 1)) {
    const size_t base = page * 512;
    ExpectFlipIsFatal(base + 0, 7);    // Stored checksum.
    ExpectFlipIsFatal(base + 5, 2);    // Page id field.
    ExpectFlipIsFatal(base + 40, 1);   // Payload.
    ExpectFlipIsFatal(base + 511, 6);  // Final padding/payload byte.
  }
}

TEST_F(StorageCorruptionTest, SealPageFlipsAreDataLoss) {
  const size_t seal_base = clean_.size() - 512;
  ExpectFlipIsFatal(seal_base + 0, 0);   // Seal checksum.
  ExpectFlipIsFatal(seal_base + 16, 3);  // Seal magic.
  ExpectFlipIsFatal(seal_base + 24, 5);  // Sealed num_pages.
  ExpectFlipIsFatal(seal_base + 500, 4); // Seal padding.
}

TEST_F(StorageCorruptionTest, EveryStridedBitFlipAcrossTheFileIsFatal) {
  // A pseudo-exhaustive sweep: one flipped bit every 97 bytes, rotating
  // through bit positions, covering every page and every field class the
  // targeted tests above might have missed.
  int flips = 0;
  for (size_t byte = 0; byte < clean_.size(); byte += 97) {
    ExpectFlipIsFatal(byte, static_cast<int>((byte / 97) % 8));
    ++flips;
  }
  EXPECT_GT(flips, 20);
}

TEST_F(StorageCorruptionTest, TruncationIsDataLoss) {
  // Dropping the seal page, cutting mid-page, a single-page stub, and an
  // empty file must all fail cleanly.
  for (const size_t keep :
       {clean_.size() - 512, clean_.size() - 100, size_t{512}, size_t{0}}) {
    std::vector<uint8_t> bytes(clean_.begin(),
                               clean_.begin() + static_cast<long>(keep));
    WriteAll(path_, bytes);
    const auto loaded = SnapshotStore::Load(path_);
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << "kept " << keep << " bytes: " << loaded.status().message();
  }
}

TEST_F(StorageCorruptionTest, ExtraTrailingPagesAreDataLoss) {
  // A store with garbage appended after the seal: the sealed page count
  // no longer matches the file size.
  std::vector<uint8_t> bytes = clean_;
  bytes.insert(bytes.end(), 512, 0xab);
  WriteAll(path_, bytes);
  const auto loaded = SnapshotStore::Load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST_F(StorageCorruptionTest, ForeignFileIsDataLossNotACrash) {
  // A well-formed-looking file of the right granularity but alien
  // content (e.g. another tool's output dropped at the store path).
  std::vector<uint8_t> alien(4096, 0x5a);
  WriteAll(path_, alien);
  const auto loaded = SnapshotStore::Load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace storage
}  // namespace grouplink
