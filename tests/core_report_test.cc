// End-to-end tests of the observability layer: RunReport stage identities,
// registry counter exactness across thread counts, and the guarantee that
// metrics/tracing never change linkage output.

#include "core/run_report.h"

#include <gtest/gtest.h>

#include <string>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/linkage_engine.h"
#include "data/bibliographic_generator.h"

namespace grouplink {
namespace {

Dataset TestDataset() {
  BibliographicConfig config;
  config.num_entities = 60;
  config.noise = 0.2;
  config.seed = 99;
  return GenerateBibliographic(config);
}

LinkageConfig PerPairConfig() {
  LinkageConfig config;
  config.theta = 0.35;
  config.group_threshold = 0.2;
  return config;
}

LinkageConfig EdgeJoinConfig(int32_t threads = 1) {
  LinkageConfig config = PerPairConfig();
  config.use_edge_join = true;
  config.join_jaccard = 0.15;
  config.num_threads = threads;
  return config;
}

TEST(RunReportTest, PerPairStagesAndIdentities) {
  const Dataset dataset = TestDataset();
  const auto result = RunGroupLinkage(dataset, PerPairConfig());
  ASSERT_TRUE(result.ok());
  const RunReport& report = result->report();

  EXPECT_EQ(report.strategy, "per-pair");
  EXPECT_EQ(report.measure, "BM");
  EXPECT_EQ(report.records, dataset.num_records());
  EXPECT_EQ(report.groups, dataset.num_groups());
  EXPECT_EQ(report.links, static_cast<int64_t>(result->linked_pairs.size()));
  EXPECT_EQ(report.clusters, static_cast<int64_t>(result->num_clusters));
  for (const char* stage : {"prepare", "candidates", "score", "cluster"}) {
    EXPECT_NE(report.FindStage(stage), nullptr) << stage;
  }
  EXPECT_GT(report.TotalSeconds(), 0.0);

  // Every candidate pair is decided exactly once by the filter-refine
  // cascade: empty graph, UB prune, LB accept, or Hungarian refine.
  EXPECT_GT(report.StageCounter("score", "candidates"), 0);
  EXPECT_EQ(report.StageCounter("score", "candidates"),
            report.StageCounter("score", "empty_graphs") +
                report.StageCounter("score", "ub_pruned") +
                report.StageCounter("score", "lb_accepted") +
                report.StageCounter("score", "refined"));
  // The candidates stage hands exactly its group pairs to scoring.
  EXPECT_EQ(report.StageCounter("candidates", "group_pairs"),
            report.StageCounter("score", "candidates"));
}

TEST(RunReportTest, EdgeJoinStagesAndIdentities) {
  const Dataset dataset = TestDataset();
  const auto result = RunGroupLinkage(dataset, EdgeJoinConfig());
  ASSERT_TRUE(result.ok());
  const RunReport& report = result->report();

  EXPECT_EQ(report.strategy, "edge-join");
  for (const char* stage : {"prepare", "join", "bucket", "score", "cluster"}) {
    EXPECT_NE(report.FindStage(stage), nullptr) << stage;
  }
  EXPECT_EQ(report.StageCounter("bucket", "group_pairs"),
            report.StageCounter("score", "ub_pruned") +
                report.StageCounter("score", "lb_accepted") +
                report.StageCounter("score", "refined"));
  EXPECT_EQ(report.StageCounter("score", "linked"),
            static_cast<int64_t>(result->linked_pairs.size()));
  EXPECT_LE(report.StageCounter("join", "edges"),
            report.StageCounter("join", "record_candidates"));
}

// report() is the only stats surface (the thin accessors that used to
// reconstruct legacy structs from it are gone): every per-pair stage
// must expose its counters and a nonnegative wall time directly.
TEST(RunReportTest, ReportIsTheOnlyStatsSurface) {
  const Dataset dataset = TestDataset();
  const auto result = RunGroupLinkage(dataset, PerPairConfig());
  ASSERT_TRUE(result.ok());
  const RunReport& report = result->report();

  EXPECT_GT(report.StageCounter("score", "candidates"), 0);
  EXPECT_EQ(report.StageCounter("score", "linked"),
            static_cast<int64_t>(result->linked_pairs.size()));
  EXPECT_GT(report.StageCounter("candidates", "group_pairs"), 0);
  EXPECT_GE(report.StageCounter("candidates", "record_pairs"),
            report.StageCounter("candidates", "group_pairs"));

  EXPECT_GE(report.StageSeconds("prepare"), 0.0);
  EXPECT_GE(report.StageSeconds("candidates"), 0.0);
  EXPECT_GE(report.StageSeconds("score"), 0.0);
}

TEST(RunReportTest, RegistryCountersIdenticalAcrossThreadCounts) {
  const Dataset dataset = TestDataset();
  MetricsRegistry& registry = MetricsRegistry::Default();

  registry.ResetAll();
  const auto reference = RunGroupLinkage(dataset, EdgeJoinConfig(1));
  ASSERT_TRUE(reference.ok());
  const MetricsSnapshot want = registry.Snapshot();
  ASSERT_GT(want.counters.at("edge_join.sim_evaluations"), 0u);
  ASSERT_GT(want.counters.at("prefix_filter.postings_scanned"), 0u);

  for (const int32_t threads : {2, 7}) {
    registry.ResetAll();
    const auto result = RunGroupLinkage(dataset, EdgeJoinConfig(threads));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->linked_pairs, reference->linked_pairs) << threads;
    const MetricsSnapshot got = registry.Snapshot();
    EXPECT_EQ(got.counters, want.counters) << threads << " threads";
    EXPECT_EQ(got.histograms.at("edge_join.bucket_size").count,
              want.histograms.at("edge_join.bucket_size").count)
        << threads << " threads";
  }
}

TEST(RunReportTest, BucketHistogramCountsEveryGroupPair) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.ResetAll();
  const Dataset dataset = TestDataset();
  const auto result = RunGroupLinkage(dataset, EdgeJoinConfig());
  ASSERT_TRUE(result.ok());
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.histograms.at("edge_join.bucket_size").count,
            snapshot.counters.at("edge_join.group_pairs"));
  EXPECT_EQ(snapshot.counters.at("edge_join.group_pairs"),
            static_cast<uint64_t>(
                result->report().StageCounter("bucket", "group_pairs")));
}

TEST(RunReportTest, DisablingObservabilityDoesNotChangeOutput) {
  const Dataset dataset = TestDataset();
  const auto baseline = RunGroupLinkage(dataset, EdgeJoinConfig(2));
  ASSERT_TRUE(baseline.ok());

  MetricsRegistry::Default().ResetAll();
  SetMetricsEnabled(false);
  SetTracingEnabled(false);
  const auto dark = RunGroupLinkage(dataset, EdgeJoinConfig(2));
  SetMetricsEnabled(true);
  SetTracingEnabled(true);
  ASSERT_TRUE(dark.ok());

  EXPECT_EQ(dark->linked_pairs, baseline->linked_pairs);
  EXPECT_EQ(dark->group_cluster, baseline->group_cluster);
  EXPECT_EQ(dark->num_clusters, baseline->num_clusters);
  // Nothing was recorded while the switch was off.
  for (const auto& [name, value] : MetricsRegistry::Default().Snapshot().counters) {
    EXPECT_EQ(value, 0u) << name;
  }
}

TEST(RunReportTest, JsonExportsHaveExpectedShape) {
  const Dataset dataset = TestDataset();
  const auto result = RunGroupLinkage(dataset, EdgeJoinConfig());
  ASSERT_TRUE(result.ok());

  const std::string run_json = result->report().ToJson();
  for (const char* key :
       {"\"strategy\"", "\"measure\"", "\"threads\"", "\"records\"", "\"groups\"",
        "\"links\"", "\"clusters\"", "\"seconds_total\"", "\"stages\"",
        "\"counters\"", "\"timings\""}) {
    EXPECT_NE(run_json.find(key), std::string::npos) << key;
  }

  const std::string doc = ExperimentReportJson("report_test", {result->report()});
  for (const char* key : {"\"grouplink.metrics.v1\"", "\"experiment\"",
                          "\"hardware_threads\"", "\"runs\"", "\"metrics\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << key;
  }
}

TEST(RunReportTest, CleanRunsKeepTheClassicReportShape) {
  // A run with no resilience limits must not grow shed-work counters: the
  // classic stage identities and the exact counter key set are preserved,
  // and the run-level degradation facts read clean.
  const Dataset dataset = TestDataset();
  const auto result = RunGroupLinkage(dataset, PerPairConfig());
  ASSERT_TRUE(result.ok());
  const RunReport& report = result->report();

  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(report.stop_reason, "");
  const StageStats* score = report.FindStage("score");
  ASSERT_NE(score, nullptr);
  for (const auto& [key, value] : score->counters) {
    EXPECT_NE(key, "shed_candidates") << "clean runs carry no shed counters";
    EXPECT_NE(key, "degraded_refines");
    EXPECT_NE(key, "skipped");
    (void)value;
  }

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"degraded\": false"), std::string::npos);
  EXPECT_NE(json.find("\"stop_reason\": \"\""), std::string::npos);
}

TEST(RunReportTest, DegradedRunsExportTheirFactsInJson) {
  const Dataset dataset = TestDataset();
  LinkageConfig config = PerPairConfig();
  config.max_candidate_pairs = 3;
  const auto result = RunGroupLinkage(dataset, config);
  ASSERT_TRUE(result.ok());
  const RunReport& report = result->report();

  EXPECT_TRUE(report.degraded);
  EXPECT_GT(report.StageCounter("score", "shed_candidates"), 0);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"degraded\": true"), std::string::npos);
  EXPECT_NE(json.find("\"shed_candidates\""), std::string::npos);
  // The budget sheds work without stopping the run.
  EXPECT_NE(json.find("\"stop_reason\": \"\""), std::string::npos);
}

TEST(RunReportTest, StageAccessorsOnMissingStagesAreZero) {
  RunReport report;
  EXPECT_EQ(report.FindStage("nope"), nullptr);
  EXPECT_EQ(report.StageCounter("nope", "x"), 0);
  EXPECT_DOUBLE_EQ(report.StageSeconds("nope"), 0.0);
  StageStats& stage = report.AddStage("only", 1.5);
  stage.AddCounter("k", 7);
  EXPECT_EQ(&report.AddStage("only"), &stage);  // Get-or-create.
  EXPECT_EQ(report.StageCounter("only", "k"), 7);
  EXPECT_EQ(report.StageCounter("only", "missing"), 0);
  EXPECT_DOUBLE_EQ(report.TotalSeconds(), 1.5);
}

}  // namespace
}  // namespace grouplink
