#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/simd_dispatch.h"
#include "core/linkage_engine.h"
#include "data/bibliographic_generator.h"

namespace grouplink {
namespace {

// End-to-end SIMD/scalar differential on an E5-shaped workload: the
// dispatched kernel path must produce the exact same link set as the
// forced-scalar path, at every thread count. This is the PR 1 determinism
// contract extended to instruction sets — a run's links never depend on
// the machine it landed on.

BibliographicConfig E5ShapedConfig() {
  // Same shape as bench_e5's HardBibliographic, scaled down to test size:
  // confusable topics, moderate dirtiness.
  BibliographicConfig config;
  config.num_entities = 60;
  config.noise = 0.25;
  config.num_topics = 6;
  config.offtopic_word_prob = 0.5;
  config.seed = 42;
  return config;
}

LinkageConfig E5Linkage(bool edge_join, int32_t threads) {
  LinkageConfig config;
  config.theta = 0.35;
  config.group_threshold = 0.2;
  config.use_edge_join = edge_join;
  config.num_threads = threads;
  return config;
}

std::vector<std::pair<int32_t, int32_t>> RunLinks(const Dataset& dataset,
                                                  const LinkageConfig& config) {
  auto engine_or = LinkageEngine::Create(&dataset, config);
  EXPECT_TRUE(engine_or.ok());
  LinkageEngine& engine = *engine_or;
  return engine.Run().linked_pairs;
}

class SimdDifferentialTest : public ::testing::Test {
 protected:
  void TearDown() override { ClearSimdLevelForTesting(); }
};

TEST_F(SimdDifferentialTest, EdgeJoinLinksIdenticalScalarVsDispatched) {
  const Dataset dataset = GenerateBibliographic(E5ShapedConfig());

  SetSimdLevelForTesting(SimdLevel::kScalar);
  const auto scalar_links = RunLinks(dataset, E5Linkage(true, 1));
  ASSERT_FALSE(scalar_links.empty());

  ClearSimdLevelForTesting();  // Dispatched: whatever the CPU supports.
  for (const int32_t threads : {1, 2, 7}) {
    const auto links = RunLinks(dataset, E5Linkage(true, threads));
    EXPECT_EQ(links, scalar_links)
        << "dispatched edge join diverged from scalar at " << threads
        << " threads (kernel " << SimdLevelName(ActiveSimdLevel()) << ")";
  }
}

TEST_F(SimdDifferentialTest, PerPairLinksIdenticalScalarVsDispatched) {
  const Dataset dataset = GenerateBibliographic(E5ShapedConfig());

  SetSimdLevelForTesting(SimdLevel::kScalar);
  const auto scalar_links = RunLinks(dataset, E5Linkage(false, 1));
  ASSERT_FALSE(scalar_links.empty());

  ClearSimdLevelForTesting();
  for (const int32_t threads : {1, 2, 7}) {
    const auto links = RunLinks(dataset, E5Linkage(false, threads));
    EXPECT_EQ(links, scalar_links)
        << "dispatched per-pair run diverged from scalar at " << threads
        << " threads";
  }
}

TEST_F(SimdDifferentialTest, EveryTierAgreesOnEveryStrategy) {
  const Dataset dataset = GenerateBibliographic(E5ShapedConfig());
  for (const bool edge_join : {false, true}) {
    std::vector<std::pair<int32_t, int32_t>> reference;
    for (const SimdLevel level :
         {SimdLevel::kScalar, SimdLevel::kSse42, SimdLevel::kAvx2}) {
      SetSimdLevelForTesting(level);  // Clamped to real CPU capability.
      const auto links = RunLinks(dataset, E5Linkage(edge_join, 1));
      if (level == SimdLevel::kScalar) {
        reference = links;
        ASSERT_FALSE(reference.empty());
      } else {
        EXPECT_EQ(links, reference)
            << "tier " << SimdLevelName(level) << " edge_join=" << edge_join;
      }
    }
  }
}

TEST_F(SimdDifferentialTest, BatchedPathMatchesCustomSimPath) {
  // Run(sim) scores per pair through the std::function; Run() scores
  // through the batched VectorStore kernels. Passing the engine's own
  // default similarity as the custom sim must yield identical links —
  // the strongest per-pair vs batched equivalence we can assert.
  const Dataset dataset = GenerateBibliographic(E5ShapedConfig());
  for (const bool edge_join : {false, true}) {
    auto batched_or = LinkageEngine::Create(&dataset, E5Linkage(edge_join, 1));
    ASSERT_TRUE(batched_or.ok());
    LinkageEngine& batched = *batched_or;
    const auto batched_links = batched.Run().linked_pairs;

    auto per_pair_or = LinkageEngine::Create(&dataset, E5Linkage(edge_join, 1));
    ASSERT_TRUE(per_pair_or.ok());
    LinkageEngine& per_pair = *per_pair_or;
    const auto per_pair_links =
        per_pair
            .Run([&per_pair](int32_t a, int32_t b) {
              return per_pair.DefaultRecordSimilarity(a, b);
            })
            .linked_pairs;
    EXPECT_EQ(batched_links, per_pair_links) << "edge_join=" << edge_join;
  }
}

TEST_F(SimdDifferentialTest, ReportNamesTheActiveKernel) {
  const Dataset dataset = GenerateBibliographic(E5ShapedConfig());
  SetSimdLevelForTesting(SimdLevel::kScalar);
  auto engine_or = LinkageEngine::Create(&dataset, E5Linkage(true, 1));
  ASSERT_TRUE(engine_or.ok());
  LinkageEngine& engine = *engine_or;
  const LinkageResult result = engine.Run();
  EXPECT_EQ(result.report().kernel, "scalar");
  // The edge join must attribute verify time and batches in its report.
  EXPECT_GT(result.report().StageCounter("join", "verify_batches"), 0);
}

}  // namespace
}  // namespace grouplink
