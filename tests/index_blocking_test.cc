#include "index/blocking.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "index/candidates.h"

namespace grouplink {
namespace {

using Pairs = std::vector<std::pair<int32_t, int32_t>>;

TEST(BlockingKeysTest, NoneSchemeSingleUniversalKey) {
  EXPECT_EQ(BlockingKeys(BlockingScheme::kNone, "anything at all"),
            (std::vector<std::string>{"*"}));
}

TEST(BlockingKeysTest, TokenSchemeOneKeyPerToken) {
  auto keys = BlockingKeys(BlockingScheme::kToken, "Query Optimization query");
  EXPECT_EQ(keys, (std::vector<std::string>{"optimization", "query"}));
}

TEST(BlockingKeysTest, FirstTokenScheme) {
  EXPECT_EQ(BlockingKeys(BlockingScheme::kFirstToken, "zeta alpha"),
            (std::vector<std::string>{"alpha"}));
  EXPECT_TRUE(BlockingKeys(BlockingScheme::kFirstToken, "").empty());
}

TEST(BlockingKeysTest, TokenPrefixScheme) {
  auto keys = BlockingKeys(BlockingScheme::kTokenPrefix, "optimization optics");
  EXPECT_EQ(keys, (std::vector<std::string>{"opti"}));  // Shared prefix dedups.
}

TEST(BlockingKeysTest, SoundexScheme) {
  auto keys = BlockingKeys(BlockingScheme::kSoundex, "robert rupert");
  EXPECT_EQ(keys, (std::vector<std::string>{"R163"}));  // Same code, dedup.
}

TEST(BlockingSchemeNameTest, AllNamed) {
  EXPECT_STREQ(BlockingSchemeName(BlockingScheme::kNone), "none");
  EXPECT_STREQ(BlockingSchemeName(BlockingScheme::kToken), "token");
  EXPECT_STREQ(BlockingSchemeName(BlockingScheme::kSoundex), "soundex");
}

TEST(BlockerTest, PairsWithinBlocksOnly) {
  Blocker blocker(BlockingScheme::kToken);
  blocker.Add(0, "alpha beta");
  blocker.Add(1, "beta gamma");
  blocker.Add(2, "delta");
  const auto pairs = blocker.CandidatePairs();
  EXPECT_EQ(pairs, (Pairs{{0, 1}}));
}

TEST(BlockerTest, DedupAcrossSharedKeys) {
  Blocker blocker(BlockingScheme::kToken);
  blocker.Add(0, "alpha beta");
  blocker.Add(1, "alpha beta");
  const auto pairs = blocker.CandidatePairs();
  EXPECT_EQ(pairs, (Pairs{{0, 1}}));  // Two shared keys, one pair.
}

TEST(BlockerTest, Diagnostics) {
  Blocker blocker(BlockingScheme::kToken);
  blocker.Add(0, "a b");
  blocker.Add(1, "b c");
  blocker.Add(2, "b");
  EXPECT_EQ(blocker.num_blocks(), 3u);  // a, b, c.
  EXPECT_EQ(blocker.max_block_size(), 3u);
}

TEST(GroupCandidatesTest, AllGroupPairsCount) {
  const auto pairs = AllGroupPairs(5);
  EXPECT_EQ(pairs.size(), 10u);
  EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
}

TEST(GroupCandidatesTest, BlockingLiftsRecordPairsToGroups) {
  // Records 0,1 in group 0; records 2,3 in group 1; record 4 in group 2.
  const std::vector<std::string> texts = {"alpha one", "beta two", "alpha three",
                                          "gamma four", "delta five"};
  const std::vector<int32_t> record_group = {0, 0, 1, 1, 2};
  GroupCandidateStats stats;
  const auto pairs = GroupCandidatesFromBlocking(BlockingScheme::kToken, texts,
                                                 record_group, 3, &stats);
  // Records 0 and 2 share "alpha" -> groups (0, 1). Nothing touches group 2.
  EXPECT_EQ(pairs, (Pairs{{0, 1}}));
  EXPECT_EQ(stats.group_pairs, 1u);
}

TEST(GroupCandidatesTest, IntraGroupHitsIgnored) {
  const std::vector<std::string> texts = {"same text", "same text"};
  const std::vector<int32_t> record_group = {0, 0};
  const auto pairs =
      GroupCandidatesFromBlocking(BlockingScheme::kToken, texts, record_group, 1);
  EXPECT_TRUE(pairs.empty());
}

TEST(GroupCandidatesTest, NoneSchemeYieldsAllPairs) {
  const std::vector<std::string> texts = {"a", "b", "c"};
  const std::vector<int32_t> record_group = {0, 1, 2};
  const auto pairs =
      GroupCandidatesFromBlocking(BlockingScheme::kNone, texts, record_group, 3);
  EXPECT_EQ(pairs.size(), 3u);
}

TEST(SortedNeighborhoodTest, WindowPairsAdjacentKeys) {
  // Sorted key order: "alpha", "alpha beta", "zeta".
  const std::vector<std::string> texts = {"zeta", "alpha", "beta alpha"};
  const auto pairs = SortedNeighborhoodPairs(texts, 2);
  // Window 2 pairs neighbors only: (alpha, alpha beta) and (alpha beta, zeta).
  EXPECT_EQ(pairs, (Pairs{{0, 2}, {1, 2}}));
}

TEST(SortedNeighborhoodTest, FullWindowIsAllPairs) {
  const std::vector<std::string> texts = {"a", "b", "c", "d"};
  const auto pairs = SortedNeighborhoodPairs(texts, 4);
  EXPECT_EQ(pairs.size(), 6u);
}

TEST(SortedNeighborhoodTest, WindowBelowTwoYieldsNothing) {
  EXPECT_TRUE(SortedNeighborhoodPairs({"a", "b"}, 1).empty());
  EXPECT_TRUE(SortedNeighborhoodPairs({"a", "b"}, 0).empty());
}

TEST(SortedNeighborhoodTest, TokenOrderInsensitiveKey) {
  // "ullman jeffrey" and "jeffrey ullman" sort adjacently (identical keys),
  // so even window 2 pairs them regardless of corpus size.
  std::vector<std::string> texts = {"aaa aaa", "jeffrey ullman", "mmm mmm",
                                    "ullman jeffrey", "zzz zzz"};
  const auto pairs = SortedNeighborhoodPairs(texts, 2);
  EXPECT_TRUE(std::find(pairs.begin(), pairs.end(), std::make_pair(1, 3)) !=
              pairs.end());
}

TEST(SortedNeighborhoodTest, PairCountBoundedByWindow) {
  std::vector<std::string> texts;
  for (int i = 0; i < 100; ++i) texts.push_back("text " + std::to_string(i));
  const size_t window = 5;
  const auto pairs = SortedNeighborhoodPairs(texts, window);
  EXPECT_LE(pairs.size(), texts.size() * (window - 1));
}

TEST(GroupCandidatesTest, LabelBlockingPairsGroupsDirectly) {
  const std::vector<std::string> labels = {"jeffrey ullman", "j ullman",
                                           "maria garcia", "ullman jeffrey"};
  GroupCandidateStats stats;
  const auto pairs =
      GroupCandidatesFromLabelBlocking(BlockingScheme::kToken, labels, &stats);
  // All three "ullman" variants pair up; garcia stays alone.
  EXPECT_EQ(pairs, (Pairs{{0, 1}, {0, 3}, {1, 3}}));
  EXPECT_EQ(stats.group_pairs, 3u);
}

TEST(GroupCandidatesTest, LabelBlockingFirstTokenSurvivesInversionButNotInitials) {
  // kFirstToken keys on the lexicographically smallest token, so word
  // order does not matter...
  const auto inverted = GroupCandidatesFromLabelBlocking(
      BlockingScheme::kFirstToken, {"jeffrey ullman", "ullman jeffrey"});
  EXPECT_EQ(inverted, (Pairs{{0, 1}}));
  // ...but abbreviating a name changes the smallest token — the recall
  // cost this scheme pays in benchmark E8.
  const auto abbreviated = GroupCandidatesFromLabelBlocking(
      BlockingScheme::kFirstToken, {"jeffrey ullman", "j ullman"});
  EXPECT_TRUE(abbreviated.empty());
}

TEST(GroupCandidatesTest, LabelBlockingSoundexSurvivesTypos) {
  const std::vector<std::string> labels = {"robert smith", "rupert smith"};
  const auto pairs =
      GroupCandidatesFromLabelBlocking(BlockingScheme::kSoundex, labels);
  EXPECT_EQ(pairs, (Pairs{{0, 1}}));
}

TEST(GroupCandidatesTest, RecordJoinFindsOverlappingGroups) {
  // Token ids: group 0 records use {0,1,2}; group 1 record uses {1,2,3};
  // group 2 record uses {7,8,9}.
  const std::vector<std::vector<int32_t>> tokens = {
      {0, 1, 2}, {0, 1, 2}, {1, 2, 3}, {7, 8, 9}};
  const std::vector<int32_t> record_group = {0, 0, 1, 2};
  GroupCandidateStats stats;
  const auto pairs =
      GroupCandidatesFromRecordJoin(tokens, record_group, 10, 3, 0.4, &stats);
  EXPECT_EQ(pairs, (Pairs{{0, 1}}));
  EXPECT_GE(stats.record_pairs, 1u);
}

}  // namespace
}  // namespace grouplink
