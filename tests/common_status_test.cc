#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

namespace grouplink {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("missing key").ToString(), "NotFound: missing key");
  EXPECT_EQ(Status(StatusCode::kIoError, "").ToString(), "IoError");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDataLoss), "DataLoss");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusTest, UnavailableFormatsLikeTheOthers) {
  EXPECT_EQ(Status::Unavailable("breaker open").ToString(),
            "Unavailable: breaker open");
}

TEST(StatusTest, IsRetryableClassifiesTransientCodes) {
  // Transient: a retry with backoff may legitimately succeed.
  EXPECT_TRUE(Status::Unavailable("shed").IsRetryable());
  EXPECT_TRUE(Status::DeadlineExceeded("too slow").IsRetryable());
  EXPECT_TRUE(Status::IoError("fsync blip").IsRetryable());
}

TEST(StatusTest, IsRetryableRejectsTerminalCodes) {
  // kDataLoss above all: the bytes are wrong, not the timing — retrying
  // into a corrupt store is the one thing the retry ladder must never do.
  EXPECT_FALSE(Status::DataLoss("bad checksum").IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("bad config").IsRetryable());
  EXPECT_FALSE(Status::NotFound("no store").IsRetryable());
  EXPECT_FALSE(Status::FailedPrecondition("not init").IsRetryable());
  EXPECT_FALSE(Status::Internal("bug").IsRetryable());
  EXPECT_FALSE(Status::Cancelled("user stop").IsRetryable());
  EXPECT_FALSE(Status::ParseError("garbage").IsRetryable());
  EXPECT_FALSE(Status::OutOfRange("index").IsRetryable());
  EXPECT_FALSE(Status::AlreadyExists("dup").IsRetryable());
}

TEST(StatusTest, OkIsNotRetryable) {
  EXPECT_FALSE(Status::Ok().IsRetryable());
}

TEST(StatusTest, ResilienceStatusesFormatLikeTheOthers) {
  EXPECT_EQ(Status::Cancelled("user stop").ToString(), "Cancelled: user stop");
  EXPECT_EQ(Status::DeadlineExceeded("5ms budget").ToString(),
            "DeadlineExceeded: 5ms budget");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, OkStatusNormalizedToInternalError) {
  Result<int> r = Status::Ok();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveValueOut) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, ValueOnErrorAbortsWithCarriedMessage) {
  // The hardened precondition: value() on an error Result dies with the
  // carried Status rendered in the failure message, not an opaque variant
  // exception.
  Result<int> r = Status::NotFound("no such shard");
  EXPECT_DEATH((void)r.value(), "Result::value\\(\\) on error Result.*"
                                "NotFound: no such shard");
  const Result<int>& cr = r;
  EXPECT_DEATH((void)cr.value(), "NotFound: no such shard");
  EXPECT_DEATH((void)std::move(r).value(), "NotFound: no such shard");
}

TEST(ResultTest, DereferenceOnErrorAborts) {
  Result<std::string> r = Status::IoError("disk gone");
  EXPECT_DEATH((void)r->size(), "IoError: disk gone");
  EXPECT_DEATH((void)*r, "IoError: disk gone");
}

Status FailingOperation() { return Status::IoError("disk"); }

Status Propagates() {
  GL_RETURN_IF_ERROR(FailingOperation());
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kIoError);
}

Result<int> ParsePositive(int raw) {
  if (raw <= 0) return Status::InvalidArgument("not positive");
  return raw;
}

Result<int> DoubleOf(int raw) {
  GL_ASSIGN_OR_RETURN(const int parsed, ParsePositive(raw));
  return parsed * 2;
}

Status SumInto(int raw_a, int raw_b, int* out) {
  // Two uses in one scope: the __LINE__-suffixed temporaries must not
  // collide, and an existing variable works as the lhs.
  GL_ASSIGN_OR_RETURN(int a, ParsePositive(raw_a));
  int b = 0;
  GL_ASSIGN_OR_RETURN(b, ParsePositive(raw_b));
  *out = a + b;
  return Status::Ok();
}

TEST(StatusMacroTest, AssignOrReturnUnwrapsValue) {
  const Result<int> doubled = DoubleOf(21);
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 42);
}

TEST(StatusMacroTest, AssignOrReturnPropagatesError) {
  const Result<int> doubled = DoubleOf(-1);
  ASSERT_FALSE(doubled.ok());
  EXPECT_EQ(doubled.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(doubled.status().message(), "not positive");
}

TEST(StatusMacroTest, AssignOrReturnTwiceInOneScope) {
  int sum = 0;
  ASSERT_TRUE(SumInto(19, 23, &sum).ok());
  EXPECT_EQ(sum, 42);
  EXPECT_EQ(SumInto(1, -5, &sum).code(), StatusCode::kInvalidArgument);
}

Result<std::unique_ptr<int>> MakeBox(int raw) {
  GL_ASSIGN_OR_RETURN(std::unique_ptr<int> box,
                      Result<std::unique_ptr<int>>(std::make_unique<int>(raw)));
  *box += 1;
  return box;
}

TEST(StatusMacroTest, AssignOrReturnMovesMoveOnlyValue) {
  Result<std::unique_ptr<int>> box = MakeBox(41);
  ASSERT_TRUE(box.ok());
  EXPECT_EQ(**box, 42);
}

}  // namespace
}  // namespace grouplink
