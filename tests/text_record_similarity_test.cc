#include "text/record_similarity.h"

#include <gtest/gtest.h>

namespace grouplink {
namespace {

using Fields = std::vector<std::string>;

TEST(FieldSimilarityTest, ExactIsCaseInsensitive) {
  EXPECT_DOUBLE_EQ(FieldSimilarity(FieldMeasure::kExact, "ABC", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(FieldSimilarity(FieldMeasure::kExact, "abc", "abd"), 0.0);
}

TEST(FieldSimilarityTest, TokenJaccard) {
  EXPECT_DOUBLE_EQ(FieldSimilarity(FieldMeasure::kTokenJaccard, "a b", "b a"), 1.0);
}

TEST(FieldSimilarityTest, NumericAbsScalesDifference) {
  EXPECT_DOUBLE_EQ(FieldSimilarity(FieldMeasure::kNumericAbs, "10", "10", 5.0), 1.0);
  EXPECT_NEAR(FieldSimilarity(FieldMeasure::kNumericAbs, "10", "12.5", 5.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(FieldSimilarity(FieldMeasure::kNumericAbs, "10", "100", 5.0), 0.0);
}

TEST(FieldSimilarityTest, NumericAbsUnparseableFallsBackToEquality) {
  EXPECT_DOUBLE_EQ(FieldSimilarity(FieldMeasure::kNumericAbs, "n/a", "n/a", 5.0), 1.0);
  EXPECT_DOUBLE_EQ(FieldSimilarity(FieldMeasure::kNumericAbs, "n/a", "5", 5.0), 0.0);
}

TEST(FieldSimilarityTest, AllMeasuresInRange) {
  for (const FieldMeasure measure :
       {FieldMeasure::kExact, FieldMeasure::kTokenJaccard, FieldMeasure::kQGramJaccard,
        FieldMeasure::kLevenshtein, FieldMeasure::kJaroWinkler,
        FieldMeasure::kMongeElkan}) {
    const double s = FieldSimilarity(measure, "john smith", "jon smyth");
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

RecordSimilarity MakeNameYearSim() {
  return RecordSimilarity({
      {0, FieldMeasure::kJaroWinkler, 2.0, 1.0},
      {1, FieldMeasure::kNumericAbs, 1.0, 10.0},
  });
}

TEST(RecordSimilarityTest, IdenticalRecordsScoreOne) {
  const RecordSimilarity sim = MakeNameYearSim();
  EXPECT_NEAR(sim.Similarity({"john smith", "1990"}, {"john smith", "1990"}), 1.0,
              1e-12);
}

TEST(RecordSimilarityTest, WeightsShiftScore) {
  // Name agrees (weight 2), year disagrees completely (weight 1) -> 2/3.
  const RecordSimilarity sim = MakeNameYearSim();
  EXPECT_NEAR(sim.Similarity({"john smith", "1900"}, {"john smith", "2020"}),
              2.0 / 3.0, 1e-9);
}

TEST(RecordSimilarityTest, BothMissingFieldSkipped) {
  const RecordSimilarity sim = MakeNameYearSim();
  // Year missing on both sides: renormalizes over the name only.
  EXPECT_NEAR(sim.Similarity({"john smith", ""}, {"john smith", ""}), 1.0, 1e-12);
}

TEST(RecordSimilarityTest, OneSidedMissingIsDisagreement) {
  const RecordSimilarity sim = MakeNameYearSim();
  const double s = sim.Similarity({"john smith", "1990"}, {"john smith", ""});
  EXPECT_NEAR(s, 2.0 / 3.0, 1e-9);
}

TEST(RecordSimilarityTest, ShortRecordsTreatedAsMissing) {
  const RecordSimilarity sim = MakeNameYearSim();
  EXPECT_NEAR(sim.Similarity({"john smith"}, {"john smith"}), 1.0, 1e-12);
}

TEST(RecordSimilarityTest, AllFieldsMissingScoresOne) {
  const RecordSimilarity sim = MakeNameYearSim();
  EXPECT_DOUBLE_EQ(sim.Similarity({"", ""}, {"", ""}), 1.0);
}

TEST(RecordSimilarityTest, ValidateRejectsBadSpecs) {
  EXPECT_FALSE(RecordSimilarity({}).Validate().ok());
  EXPECT_FALSE(
      RecordSimilarity({{0, FieldMeasure::kExact, 0.0, 1.0}}).Validate().ok());
  EXPECT_TRUE(MakeNameYearSim().Validate().ok());
}

TEST(RecordSimilarityTest, SymmetricOnMixedRecords) {
  const RecordSimilarity sim = MakeNameYearSim();
  const Fields a = {"maria gonzalez", "1984"};
  const Fields b = {"m gonzales", "1985"};
  EXPECT_NEAR(sim.Similarity(a, b), sim.Similarity(b, a), 1e-12);
}

}  // namespace
}  // namespace grouplink
