#include "core/edge_join.h"

#include <gtest/gtest.h>

#include <string>

#include "core/linkage_engine.h"
#include "data/bibliographic_generator.h"
#include "data/household_generator.h"
#include "eval/metrics.h"

namespace grouplink {
namespace {

BibliographicConfig SmallConfig() {
  BibliographicConfig config;
  config.num_entities = 60;
  config.noise = 0.2;
  config.seed = 99;
  return config;
}

LinkageConfig EdgeJoinLinkage(double join_jaccard = 0.15) {
  LinkageConfig config;
  config.theta = 0.35;
  config.group_threshold = 0.2;
  config.use_edge_join = true;
  config.join_jaccard = join_jaccard;
  return config;
}

TEST(EdgeJoinTest, MatchesPerPairPipelineOnBibliographicData) {
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  LinkageConfig per_pair = EdgeJoinLinkage();
  per_pair.use_edge_join = false;
  per_pair.candidates = CandidateMethod::kAllPairs;
  const auto a = RunGroupLinkage(dataset, EdgeJoinLinkage());
  const auto b = RunGroupLinkage(dataset, per_pair);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->linked_pairs, b->linked_pairs);
}

TEST(EdgeJoinTest, MatchesPerPairPipelineOnHouseholdData) {
  HouseholdConfig config;
  config.num_households = 80;
  config.noise = 0.25;
  const Dataset dataset = GenerateHouseholds(config);
  LinkageConfig per_pair = EdgeJoinLinkage();
  per_pair.use_edge_join = false;
  per_pair.candidates = CandidateMethod::kAllPairs;
  const auto a = RunGroupLinkage(dataset, EdgeJoinLinkage());
  const auto b = RunGroupLinkage(dataset, per_pair);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->linked_pairs, b->linked_pairs);
}

TEST(EdgeJoinTest, StatsAreConsistent) {
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  const auto result = RunGroupLinkage(dataset, EdgeJoinLinkage());
  ASSERT_TRUE(result.ok());
  const RunReport& report = result->report();
  EXPECT_GT(report.StageCounter("join", "record_candidates"), 0);
  EXPECT_GT(report.StageCounter("join", "edges"), 0);
  EXPECT_LE(report.StageCounter("join", "edges"),
            report.StageCounter("join", "record_candidates"));
  EXPECT_GT(report.StageCounter("bucket", "group_pairs"), 0);
  EXPECT_EQ(report.StageCounter("bucket", "group_pairs"),
            report.StageCounter("score", "ub_pruned") +
                report.StageCounter("score", "lb_accepted") +
                report.StageCounter("score", "refined"));
  EXPECT_EQ(report.StageCounter("score", "linked"),
            static_cast<int64_t>(result->linked_pairs.size()));
}

TEST(EdgeJoinTest, LinkedPairsSortedAndOriented) {
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  const auto result = RunGroupLinkage(dataset, EdgeJoinLinkage());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::is_sorted(result->linked_pairs.begin(), result->linked_pairs.end()));
  for (const auto& [g1, g2] : result->linked_pairs) {
    EXPECT_LT(g1, g2);
    EXPECT_GE(g1, 0);
    EXPECT_LT(g2, dataset.num_groups());
  }
}

TEST(EdgeJoinTest, ClusteringStillComputed) {
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  const auto result = RunGroupLinkage(dataset, EdgeJoinLinkage());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->group_cluster.size(), static_cast<size_t>(dataset.num_groups()));
  for (const auto& [g1, g2] : result->linked_pairs) {
    EXPECT_EQ(result->group_cluster[static_cast<size_t>(g1)],
              result->group_cluster[static_cast<size_t>(g2)]);
  }
}

TEST(EdgeJoinTest, QualityComparableToExhaustive) {
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  const auto result = RunGroupLinkage(dataset, EdgeJoinLinkage(0.3));
  ASSERT_TRUE(result.ok());
  const PairMetrics metrics = EvaluatePairs(result->linked_pairs, dataset.TruePairs());
  EXPECT_GT(metrics.f1, 0.9);
}

TEST(EdgeJoinTest, DisablingBoundsForcesRefineEverywhere) {
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  LinkageConfig config = EdgeJoinLinkage();
  config.use_upper_bound_filter = false;
  config.use_lower_bound_accept = false;
  const auto result = RunGroupLinkage(dataset, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report().StageCounter("score", "ub_pruned"), 0);
  EXPECT_EQ(result->report().StageCounter("score", "lb_accepted"), 0);
  EXPECT_EQ(result->report().StageCounter("score", "refined"),
            result->report().StageCounter("bucket", "group_pairs"));
  // Output unchanged (bounds are an optimization, never a semantics change).
  const auto with_bounds = RunGroupLinkage(dataset, EdgeJoinLinkage());
  ASSERT_TRUE(with_bounds.ok());
  EXPECT_EQ(result->linked_pairs, with_bounds->linked_pairs);
}

TEST(EdgeJoinTest, OutputIdenticalAcrossThreadCounts) {
  // The determinism contract of the parallel edge join: linked pairs,
  // clustering, and every join/bucket counter are bit-identical for any
  // thread count (sharded join merged in shard order; buckets scored into
  // preallocated slots). Seeded workload; 7 threads exercises uneven
  // shard sizes.
  BibliographicConfig data_config = SmallConfig();
  data_config.num_entities = 80;
  const Dataset dataset = GenerateBibliographic(data_config);

  LinkageConfig serial = EdgeJoinLinkage();
  serial.num_threads = 1;
  const auto reference = RunGroupLinkage(dataset, serial);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference->report().StageCounter("join", "threads_used"), 1);

  for (const int32_t threads : {2, 7}) {
    LinkageConfig parallel = EdgeJoinLinkage();
    parallel.num_threads = threads;
    const auto result = RunGroupLinkage(dataset, parallel);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->linked_pairs, reference->linked_pairs) << threads;
    EXPECT_EQ(result->group_cluster, reference->group_cluster) << threads;
    const RunReport& got = result->report();
    const RunReport& want = reference->report();
    for (const auto& [stage, counter] :
         {std::pair<const char*, const char*>{"join", "record_candidates"},
          {"join", "edges"},
          {"bucket", "group_pairs"},
          {"score", "ub_pruned"},
          {"score", "lb_accepted"},
          {"score", "refined"},
          {"score", "linked"}}) {
      EXPECT_EQ(got.StageCounter(stage, counter), want.StageCounter(stage, counter))
          << stage << "/" << counter << " @ " << threads;
    }
    EXPECT_EQ(got.StageCounter("join", "threads_used"), threads);
  }
}

TEST(EdgeJoinTest, DirectCallHonorsExternalPool) {
  // Tiny hand-built workload so EdgeJoinLink can be exercised directly: a
  // caller-owned pool must be used (threads_used reports its size, not
  // config.num_threads) and the output must match the serial call.
  Dataset dataset;
  std::vector<std::vector<int32_t>> record_tokens;
  const auto add = [&](const std::string& id,
                       std::vector<std::vector<int32_t>> token_sets) {
    Group group;
    group.id = id;
    for (std::vector<int32_t>& tokens : token_sets) {
      Record record;
      record.id = id + std::to_string(group.record_ids.size());
      group.record_ids.push_back(static_cast<int32_t>(dataset.records.size()));
      dataset.records.push_back(std::move(record));
      record_tokens.push_back(std::move(tokens));
    }
    dataset.groups.push_back(std::move(group));
  };
  add("a", {{0, 1, 2}, {3, 4, 5}});
  add("b", {{0, 1, 2}, {3, 4, 5}});
  add("c", {{6, 7, 8}});
  const std::vector<int32_t> record_group = dataset.RecordToGroup();
  // Token-overlap similarity: identical sets score 1, disjoint 0.
  const RecordSimFn sim = [&](int32_t a, int32_t b) {
    return record_tokens[static_cast<size_t>(a)] ==
                   record_tokens[static_cast<size_t>(b)]
               ? 1.0
               : 0.0;
  };

  EdgeJoinConfig config;
  config.theta = 0.5;
  config.group_threshold = 0.3;
  config.join_jaccard = 0.5;

  EdgeJoinStats serial_stats;
  const auto serial =
      EdgeJoinLink(dataset, record_tokens, 9, record_group, sim, config, &serial_stats);
  EXPECT_EQ(serial_stats.threads_used, 1);

  ThreadPool pool(3);
  EdgeJoinStats pooled_stats;
  const auto pooled = EdgeJoinLink(dataset, record_tokens, 9, record_group, sim,
                                   config, &pooled_stats, &pool);
  EXPECT_EQ(pooled_stats.threads_used, 3);
  EXPECT_EQ(pooled, serial);
  ASSERT_EQ(serial.size(), 1u);
  EXPECT_EQ(serial[0], std::make_pair(0, 1));
  EXPECT_EQ(pooled_stats.edges, serial_stats.edges);
  EXPECT_EQ(pooled_stats.group_pairs, serial_stats.group_pairs);
}

TEST(EdgeJoinTest, DirectCallOnTinyDataset) {
  // Two groups of two identical singleton texts, one unrelated group.
  Dataset dataset;
  const auto add = [&](const std::string& id, std::vector<std::string> texts) {
    Group group;
    group.id = id;
    for (const std::string& text : texts) {
      Record record;
      record.id = id + std::to_string(group.record_ids.size());
      record.text = text;
      group.record_ids.push_back(static_cast<int32_t>(dataset.records.size()));
      dataset.records.push_back(std::move(record));
    }
    dataset.groups.push_back(std::move(group));
  };
  add("a", {"alpha beta gamma", "delta epsilon zeta"});
  add("b", {"alpha beta gamma", "delta epsilon zeta"});
  add("c", {"omega psi chi"});

  auto engine_or = LinkageEngine::Create(&dataset, EdgeJoinLinkage());
  ASSERT_TRUE(engine_or.ok());
  LinkageEngine& engine = *engine_or;
  const LinkageResult result = engine.Run();
  ASSERT_EQ(result.linked_pairs.size(), 1u);
  EXPECT_EQ(result.linked_pairs[0], std::make_pair(0, 1));
}

}  // namespace
}  // namespace grouplink
