#include "core/linkage_engine.h"

#include <gtest/gtest.h>

#include <limits>

#include "data/bibliographic_generator.h"
#include "eval/metrics.h"

namespace grouplink {
namespace {

BibliographicConfig SmallConfig() {
  BibliographicConfig config;
  config.num_entities = 60;
  config.noise = 0.15;
  config.seed = 2024;
  return config;
}

LinkageConfig DefaultLinkage() {
  LinkageConfig config;
  config.theta = 0.6;
  config.group_threshold = 0.3;
  return config;
}

TEST(LinkageEngineTest, PrepareRejectsBadThresholds) {
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  LinkageConfig config = DefaultLinkage();
  config.theta = 0.0;
  EXPECT_FALSE(LinkageEngine::Create(&dataset, config).ok());
  config = DefaultLinkage();
  config.group_threshold = 1.5;
  EXPECT_FALSE(LinkageEngine::Create(&dataset, config).ok());
}

TEST(LinkageConfigTest, ValidateAcceptsDefaultsAndTestConfigs) {
  EXPECT_TRUE(LinkageConfig().Validate().ok());
  EXPECT_TRUE(DefaultLinkage().Validate().ok());
}

TEST(LinkageConfigTest, ValidateRejectsEachBadField) {
  const auto rejects = [](void (*mutate)(LinkageConfig&)) {
    LinkageConfig config;
    config.theta = 0.6;
    config.group_threshold = 0.3;
    mutate(config);
    return !config.Validate().ok();
  };
  EXPECT_TRUE(rejects([](LinkageConfig& c) { c.theta = 0.0; }));
  EXPECT_TRUE(rejects([](LinkageConfig& c) { c.theta = 1.5; }));
  EXPECT_TRUE(rejects([](LinkageConfig& c) { c.group_threshold = -0.1; }));
  EXPECT_TRUE(rejects([](LinkageConfig& c) { c.group_threshold = 2.0; }));
  EXPECT_TRUE(rejects([](LinkageConfig& c) { c.binary_cutoff = 0.0; }));
  EXPECT_TRUE(rejects([](LinkageConfig& c) { c.binary_cutoff = 1.1; }));
  EXPECT_TRUE(rejects([](LinkageConfig& c) { c.candidate_jaccard = -0.2; }));
  EXPECT_TRUE(rejects([](LinkageConfig& c) { c.candidate_jaccard = 1.2; }));
  EXPECT_TRUE(rejects([](LinkageConfig& c) { c.join_jaccard = -0.2; }));
  EXPECT_TRUE(rejects([](LinkageConfig& c) { c.join_jaccard = 1.2; }));
  EXPECT_TRUE(rejects([](LinkageConfig& c) { c.neighborhood_window = 0; }));
  EXPECT_TRUE(rejects([](LinkageConfig& c) { c.minhash_bands = 0; }));
  EXPECT_TRUE(rejects([](LinkageConfig& c) { c.minhash_rows = -1; }));
  EXPECT_TRUE(rejects([](LinkageConfig& c) { c.num_threads = 0; }));
  // join_jaccard above theta is only a problem when the edge join runs.
  EXPECT_TRUE(rejects([](LinkageConfig& c) {
    c.use_edge_join = true;
    c.join_jaccard = 0.9;
  }));
  LinkageConfig per_pair;
  per_pair.theta = 0.6;
  per_pair.join_jaccard = 0.9;
  EXPECT_TRUE(per_pair.Validate().ok());
}

TEST(LinkageConfigTest, ValidateRejectsNonFiniteAndResilienceFields) {
  // NaN compares false against every range bound, so each threshold needs
  // its explicit finiteness rejection — checked here message by message,
  // alongside the deadline/budget fields.
  const auto rejection = [](void (*mutate)(LinkageConfig&)) {
    LinkageConfig config;
    config.theta = 0.6;
    config.group_threshold = 0.3;
    mutate(config);
    const Status status = config.Validate();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    return status.message();
  };
  EXPECT_EQ(rejection([](LinkageConfig& c) {
              c.theta = std::numeric_limits<double>::quiet_NaN();
            }),
            "theta must be a finite number");
  EXPECT_EQ(rejection([](LinkageConfig& c) {
              c.group_threshold = std::numeric_limits<double>::quiet_NaN();
            }),
            "group_threshold must be a finite number");
  EXPECT_EQ(rejection([](LinkageConfig& c) {
              c.binary_cutoff = std::numeric_limits<double>::quiet_NaN();
            }),
            "binary_cutoff must be a finite number");
  EXPECT_EQ(rejection([](LinkageConfig& c) {
              c.candidate_jaccard = std::numeric_limits<double>::quiet_NaN();
            }),
            "candidate_jaccard must be a finite number");
  EXPECT_EQ(rejection([](LinkageConfig& c) {
              c.join_jaccard = std::numeric_limits<double>::infinity();
            }),
            "join_jaccard must be a finite number");
  EXPECT_EQ(rejection([](LinkageConfig& c) {
              c.deadline_ms = std::numeric_limits<double>::quiet_NaN();
            }),
            "deadline_ms must be finite and >= 0");
  EXPECT_EQ(rejection([](LinkageConfig& c) { c.deadline_ms = -1.0; }),
            "deadline_ms must be finite and >= 0");
  EXPECT_EQ(rejection([](LinkageConfig& c) { c.max_candidate_pairs = -5; }),
            "max_candidate_pairs must be >= 0");
  EXPECT_EQ(rejection([](LinkageConfig& c) { c.max_matcher_cost = -1; }),
            "max_matcher_cost must be >= 0");
  // The resilience defaults (all limits off) and explicit settings pass.
  LinkageConfig limited;
  limited.deadline_ms = 250.0;
  limited.max_candidate_pairs = 1000;
  limited.max_matcher_cost = 10000;
  EXPECT_TRUE(limited.Validate().ok());
}

TEST(LinkageConfigTest, PrepareRejectsInvalidConfig) {
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  LinkageConfig config = DefaultLinkage();
  config.num_threads = 0;
  const Status status = LinkageEngine::Create(&dataset, config).status();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(LinkageEngineTest, PrepareRejectsInvalidDataset) {
  Dataset dataset;  // Empty groups vector but also no records: valid?
  Record record;
  record.id = "r";
  record.text = "text";
  dataset.records.push_back(record);  // Orphan record, no group.
  EXPECT_FALSE(LinkageEngine::Create(&dataset, DefaultLinkage()).ok());
}

TEST(LinkageEngineTest, DefaultSimilarityIdentityAndRange) {
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  auto engine_or = LinkageEngine::Create(&dataset, DefaultLinkage());
  ASSERT_TRUE(engine_or.ok());
  LinkageEngine& engine = *engine_or;
  for (int32_t r = 0; r < std::min(dataset.num_records(), 20); ++r) {
    EXPECT_NEAR(engine.DefaultRecordSimilarity(r, r), 1.0, 1e-9);
    for (int32_t s = 0; s < r; ++s) {
      const double sim = engine.DefaultRecordSimilarity(r, s);
      EXPECT_GE(sim, 0.0);
      EXPECT_LE(sim, 1.0 + 1e-9);
      EXPECT_NEAR(sim, engine.DefaultRecordSimilarity(s, r), 1e-12);
    }
  }
}

TEST(LinkageEngineTest, BlankRecordsCarryNoEvidence) {
  // Three singleton groups: two with empty texts, one with content.
  // Nothing should link — blank records are not evidence of co-reference.
  std::vector<Record> records(3);
  records[0].id = "a";
  records[0].text = "";
  records[1].id = "b";
  records[1].text = "   ...   ";  // Tokenizes to nothing.
  records[2].id = "c";
  records[2].text = "real content here";
  auto dataset = MakeDataset(std::move(records), {0, 1, 2}, 3);
  ASSERT_TRUE(dataset.ok());
  auto engine_or = LinkageEngine::Create(&*dataset, DefaultLinkage());
  ASSERT_TRUE(engine_or.ok());
  LinkageEngine& engine = *engine_or;
  EXPECT_DOUBLE_EQ(engine.DefaultRecordSimilarity(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(engine.DefaultRecordSimilarity(0, 2), 0.0);
  const LinkageResult result = engine.Run();
  EXPECT_TRUE(result.linked_pairs.empty());
}

TEST(LinkageEngineTest, EndToEndHighQualityOnCleanData) {
  BibliographicConfig data_config = SmallConfig();
  data_config.noise = 0.05;
  const Dataset dataset = GenerateBibliographic(data_config);
  const auto result = RunGroupLinkage(dataset, DefaultLinkage());
  ASSERT_TRUE(result.ok());
  const PairMetrics metrics =
      EvaluatePairs(result->linked_pairs, dataset.TruePairs());
  EXPECT_GT(metrics.f1, 0.9) << "P=" << metrics.precision << " R=" << metrics.recall;
}

TEST(LinkageEngineTest, ClustersAreTransitiveClosureOfLinks) {
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  const auto result = RunGroupLinkage(dataset, DefaultLinkage());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->group_cluster.size(), static_cast<size_t>(dataset.num_groups()));
  for (const auto& [g1, g2] : result->linked_pairs) {
    EXPECT_EQ(result->group_cluster[static_cast<size_t>(g1)],
              result->group_cluster[static_cast<size_t>(g2)]);
  }
  // Cluster count consistent with the labels.
  size_t max_label = 0;
  for (const size_t label : result->group_cluster) {
    max_label = std::max(max_label, label);
  }
  EXPECT_EQ(result->num_clusters, max_label + 1);
}

TEST(LinkageEngineTest, FilterRefineMatchesExactPipeline) {
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  LinkageConfig with = DefaultLinkage();
  LinkageConfig without = DefaultLinkage();
  without.use_filter_refine = false;
  const auto fast = RunGroupLinkage(dataset, with);
  const auto slow = RunGroupLinkage(dataset, without);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast->linked_pairs, slow->linked_pairs);
  EXPECT_GT(fast->report().StageCounter("score", "ub_pruned") +
                fast->report().StageCounter("score", "lb_accepted"),
            0);
}

TEST(LinkageEngineTest, CandidateMethodsAgreeOnLinks) {
  // Record-join candidates must not lose links relative to all-pairs
  // (the join threshold is deliberately loose).
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  LinkageConfig all_pairs = DefaultLinkage();
  all_pairs.candidates = CandidateMethod::kAllPairs;
  LinkageConfig join = DefaultLinkage();
  join.candidates = CandidateMethod::kRecordJoin;
  join.candidate_jaccard = 0.1;
  const auto a = RunGroupLinkage(dataset, all_pairs);
  const auto b = RunGroupLinkage(dataset, join);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const PairMetrics drift = EvaluatePairs(b->linked_pairs, a->linked_pairs);
  EXPECT_GT(drift.recall, 0.98);
  EXPECT_DOUBLE_EQ(drift.precision, 1.0);  // Join can only lose pairs.
}

TEST(LinkageEngineTest, BlockingCandidatesReduceWork) {
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  LinkageConfig blocking = DefaultLinkage();
  blocking.candidates = CandidateMethod::kBlocking;
  blocking.blocking = BlockingScheme::kTokenPrefix;
  auto engine_or = LinkageEngine::Create(&dataset, blocking);
  ASSERT_TRUE(engine_or.ok());
  LinkageEngine& engine = *engine_or;
  const LinkageResult result = engine.Run();
  const size_t all =
      static_cast<size_t>(dataset.num_groups()) * (dataset.num_groups() - 1) / 2;
  EXPECT_LE(static_cast<size_t>(
      result.report().StageCounter("candidates", "group_pairs")), all);
}

TEST(LinkageEngineTest, BaselineMeasuresRun) {
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  for (const GroupMeasureKind measure :
       {GroupMeasureKind::kGreedy, GroupMeasureKind::kUpperBound,
        GroupMeasureKind::kBinaryJaccard, GroupMeasureKind::kSingleBest}) {
    LinkageConfig config = DefaultLinkage();
    config.measure = measure;
    const auto result = RunGroupLinkage(dataset, config);
    ASSERT_TRUE(result.ok()) << GroupMeasureKindName(measure);
    const PairMetrics metrics =
        EvaluatePairs(result->linked_pairs, dataset.TruePairs());
    EXPECT_GE(metrics.f1, 0.0);
  }
}

TEST(LinkageEngineTest, SingleBestOverLinksRelativeToBm) {
  // The single-best-record baseline links any group pair sharing one close
  // record pair, so it produces at least as many links as BM at the same
  // thresholds on this data.
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  LinkageConfig bm = DefaultLinkage();
  LinkageConfig single = DefaultLinkage();
  single.measure = GroupMeasureKind::kSingleBest;
  const auto bm_result = RunGroupLinkage(dataset, bm);
  const auto single_result = RunGroupLinkage(dataset, single);
  ASSERT_TRUE(bm_result.ok());
  ASSERT_TRUE(single_result.ok());
  EXPECT_GE(single_result->linked_pairs.size(), bm_result->linked_pairs.size());
}

TEST(LinkageEngineTest, QGramRepresentationSurvivesHeavyTypos) {
  BibliographicConfig data_config = SmallConfig();
  data_config.noise = 0.55;  // Word tokens get mangled at this rate.
  const Dataset dataset = GenerateBibliographic(data_config);
  const auto truth = dataset.TruePairs();

  // Thresholds calibrated as in benchmark E16: q-gram cosine separates at
  // a lower cut than word cosine.
  LinkageConfig words;
  words.theta = 0.35;
  words.group_threshold = 0.2;
  LinkageConfig grams = words;
  grams.representation = RecordRepresentation::kCharacterQGrams;
  const auto word_result = RunGroupLinkage(dataset, words);
  const auto gram_result = RunGroupLinkage(dataset, grams);
  ASSERT_TRUE(word_result.ok());
  ASSERT_TRUE(gram_result.ok());
  const double word_f1 = EvaluatePairs(word_result->linked_pairs, truth).f1;
  const double gram_f1 = EvaluatePairs(gram_result->linked_pairs, truth).f1;
  EXPECT_GT(gram_f1, 0.8);
  EXPECT_GT(gram_f1, word_f1);
}

TEST(LinkageEngineTest, RepresentationNames) {
  EXPECT_STREQ(RecordRepresentationName(RecordRepresentation::kWordTokens),
               "word-tokens");
  EXPECT_STREQ(RecordRepresentationName(RecordRepresentation::kCharacterQGrams),
               "char-3grams");
}

TEST(LinkageEngineTest, ParallelScoringMatchesSerial) {
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  LinkageConfig serial = DefaultLinkage();
  LinkageConfig parallel = DefaultLinkage();
  parallel.num_threads = 4;
  const auto a = RunGroupLinkage(dataset, serial);
  const auto b = RunGroupLinkage(dataset, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->linked_pairs, b->linked_pairs);
  EXPECT_EQ(a->group_cluster, b->group_cluster);
  EXPECT_EQ(a->report().StageCounter("score", "ub_pruned"),
            b->report().StageCounter("score", "ub_pruned"));
  EXPECT_EQ(a->report().StageCounter("score", "refined"),
            b->report().StageCounter("score", "refined"));
}

TEST(LinkageEngineTest, AllCandidateMethodsProduceValidResults) {
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  for (const CandidateMethod method :
       {CandidateMethod::kAllPairs, CandidateMethod::kRecordJoin,
        CandidateMethod::kBlocking, CandidateMethod::kLabelBlocking,
        CandidateMethod::kSortedNeighborhood, CandidateMethod::kMinHash}) {
    LinkageConfig config = DefaultLinkage();
    config.candidates = method;
    const auto result = RunGroupLinkage(dataset, config);
    ASSERT_TRUE(result.ok()) << CandidateMethodName(method);
    for (const auto& [g1, g2] : result->linked_pairs) {
      EXPECT_LT(g1, g2) << CandidateMethodName(method);
      EXPECT_LT(g2, dataset.num_groups()) << CandidateMethodName(method);
    }
    EXPECT_EQ(result->group_cluster.size(),
              static_cast<size_t>(dataset.num_groups()))
        << CandidateMethodName(method);
  }
}

TEST(LinkageEngineTest, DeterministicAcrossRepeatedRuns) {
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  const auto a = RunGroupLinkage(dataset, DefaultLinkage());
  const auto b = RunGroupLinkage(dataset, DefaultLinkage());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->linked_pairs, b->linked_pairs);
  EXPECT_EQ(a->group_cluster, b->group_cluster);
}

TEST(LinkageEngineTest, MinHashCandidatesKeepMostLinks) {
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  LinkageConfig all_pairs = DefaultLinkage();
  all_pairs.candidates = CandidateMethod::kAllPairs;
  LinkageConfig minhash = DefaultLinkage();
  minhash.candidates = CandidateMethod::kMinHash;
  const auto reference = RunGroupLinkage(dataset, all_pairs);
  const auto probabilistic = RunGroupLinkage(dataset, minhash);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(probabilistic.ok());
  const PairMetrics drift =
      EvaluatePairs(probabilistic->linked_pairs, reference->linked_pairs);
  EXPECT_DOUBLE_EQ(drift.precision, 1.0);  // Candidates only shrink.
  EXPECT_GT(drift.recall, 0.95);
}

TEST(LinkageEngineTest, HigherGroupThresholdNeverAddsLinks) {
  const Dataset dataset = GenerateBibliographic(SmallConfig());
  size_t previous = static_cast<size_t>(-1);
  for (const double threshold : {0.2, 0.4, 0.6, 0.8}) {
    LinkageConfig config = DefaultLinkage();
    config.group_threshold = threshold;
    const auto result = RunGroupLinkage(dataset, config);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->linked_pairs.size(), previous);
    previous = result->linked_pairs.size();
  }
}

}  // namespace
}  // namespace grouplink
