#include "matching/auction.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "matching/brute_force.h"
#include "matching/hungarian.h"

namespace grouplink {
namespace {

BipartiteGraph RandomGraph(Rng& rng, int32_t max_side, double edge_prob) {
  const int32_t num_left = 1 + static_cast<int32_t>(rng.Uniform(max_side));
  const int32_t num_right = 1 + static_cast<int32_t>(rng.Uniform(max_side));
  BipartiteGraph graph(num_left, num_right);
  for (int32_t l = 0; l < num_left; ++l) {
    for (int32_t r = 0; r < num_right; ++r) {
      if (rng.Bernoulli(edge_prob)) {
        graph.AddEdge(l, r, 0.05 + 0.95 * rng.UniformDouble());
      }
    }
  }
  return graph;
}

TEST(AuctionTest, SimpleAssignment) {
  BipartiteGraph graph(2, 2);
  graph.AddEdge(0, 0, 0.6);
  graph.AddEdge(0, 1, 0.9);
  graph.AddEdge(1, 0, 0.8);
  graph.AddEdge(1, 1, 0.4);
  const Matching m = AuctionMaxWeightMatching(graph);
  EXPECT_NEAR(m.total_weight, 1.7, 1e-5);
  EXPECT_EQ(m.size, 2);
  EXPECT_TRUE(m.IsConsistent());
}

TEST(AuctionTest, EmptyGraphAndSides) {
  BipartiteGraph empty(3, 2);
  EXPECT_EQ(AuctionMaxWeightMatching(empty).size, 0);
  BipartiteGraph zero_side(0, 4);
  EXPECT_EQ(AuctionMaxWeightMatching(zero_side).size, 0);
}

TEST(AuctionTest, SingleObjectCase) {
  BipartiteGraph graph(3, 1);
  graph.AddEdge(0, 0, 0.2);
  graph.AddEdge(2, 0, 0.9);
  const Matching m = AuctionMaxWeightMatching(graph);
  EXPECT_EQ(m.size, 1);
  EXPECT_EQ(m.right_to_left[0], 2);
  EXPECT_NEAR(m.total_weight, 0.9, 1e-5);
}

TEST(AuctionTest, MatchesHungarianWeightOnRandomGraphs) {
  Rng rng(777);
  for (int trial = 0; trial < 150; ++trial) {
    const BipartiteGraph graph = RandomGraph(rng, 7, 0.5);
    const double hungarian = HungarianMaxWeightMatching(graph).total_weight;
    const Matching auction = AuctionMaxWeightMatching(graph);
    EXPECT_TRUE(auction.IsConsistent());
    EXPECT_NEAR(auction.total_weight, hungarian, 1e-4) << "trial " << trial;
  }
}

TEST(AuctionTest, MatchesBruteForceOnRectangularGraphs) {
  Rng rng(778);
  for (int trial = 0; trial < 100; ++trial) {
    // Deliberately skewed shapes to exercise the transpose path.
    const int32_t num_left = 1 + static_cast<int32_t>(rng.Uniform(8));
    const int32_t num_right = 1 + static_cast<int32_t>(rng.Uniform(3));
    BipartiteGraph graph(num_left, num_right);
    for (int32_t l = 0; l < num_left; ++l) {
      for (int32_t r = 0; r < num_right; ++r) {
        if (rng.Bernoulli(0.6)) graph.AddEdge(l, r, 0.05 + 0.95 * rng.UniformDouble());
      }
    }
    const double optimal = BruteForceMaxWeightMatching(graph).total_weight;
    EXPECT_NEAR(AuctionMaxWeightMatching(graph).total_weight, optimal, 1e-4)
        << "trial " << trial;
  }
}

TEST(AuctionTest, CoarseEpsilonStillNearOptimal) {
  Rng rng(779);
  for (int trial = 0; trial < 50; ++trial) {
    const BipartiteGraph graph = RandomGraph(rng, 6, 0.6);
    const double optimal = HungarianMaxWeightMatching(graph).total_weight;
    const double coarse = AuctionMaxWeightMatching(graph, 0.01).total_weight;
    // n * epsilon bound with n <= 6.
    EXPECT_GE(coarse + 6 * 0.01 + 1e-9, optimal) << trial;
  }
}

TEST(AuctionTest, LargerDenseGraphAgreesWithHungarian) {
  Rng rng(780);
  BipartiteGraph graph(40, 40);
  for (int32_t l = 0; l < 40; ++l) {
    for (int32_t r = 0; r < 40; ++r) {
      if (rng.Bernoulli(0.4)) graph.AddEdge(l, r, 0.05 + 0.95 * rng.UniformDouble());
    }
  }
  const double hungarian = HungarianMaxWeightMatching(graph).total_weight;
  EXPECT_NEAR(AuctionMaxWeightMatching(graph).total_weight, hungarian, 1e-3);
}

}  // namespace
}  // namespace grouplink
