#include "service/resilience/admission.h"

#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace grouplink {
namespace resilience {
namespace {

AdmissionConfig SmallGate() {
  AdmissionConfig config;
  config.max_concurrent_queries = 2;
  config.ewma_alpha = 0.5;
  config.feasibility_headroom = 2.0;
  return config;
}

TEST(AdmissionConfigTest, ValidateRejectsBadKnobs) {
  AdmissionConfig config;
  config.max_concurrent_queries = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = AdmissionConfig{};
  config.ewma_alpha = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = AdmissionConfig{};
  config.ewma_alpha = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = AdmissionConfig{};
  config.feasibility_headroom = -1.0;
  EXPECT_FALSE(config.Validate().ok());
  EXPECT_TRUE(AdmissionConfig{}.Validate().ok());
}

TEST(AdmissionGateTest, AdmitsUpToTheConcurrencyLimitThenSheds) {
  AdmissionGate gate(SmallGate());
  AdmissionGate::Permit a, b, c;
  EXPECT_TRUE(gate.TryAdmit(0.0, &a).ok());
  EXPECT_TRUE(gate.TryAdmit(0.0, &b).ok());
  EXPECT_EQ(gate.inflight(), 2);
  const Status shed = gate.TryAdmit(0.0, &c);
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(c.held());
  EXPECT_EQ(gate.shed_overload(), 1);
  EXPECT_EQ(gate.admitted(), 2);
}

TEST(AdmissionGateTest, ReleasingAPermitFreesTheSlot) {
  AdmissionGate gate(SmallGate());
  AdmissionGate::Permit a, b;
  ASSERT_TRUE(gate.TryAdmit(0.0, &a).ok());
  ASSERT_TRUE(gate.TryAdmit(0.0, &b).ok());
  a.Release();
  EXPECT_FALSE(a.held());
  EXPECT_EQ(gate.inflight(), 1);
  AdmissionGate::Permit c;
  EXPECT_TRUE(gate.TryAdmit(0.0, &c).ok());
}

TEST(AdmissionGateTest, PermitIsRaiiAndMoveOnly) {
  AdmissionGate gate(SmallGate());
  {
    AdmissionGate::Permit a;
    ASSERT_TRUE(gate.TryAdmit(0.0, &a).ok());
    AdmissionGate::Permit moved = std::move(a);
    EXPECT_FALSE(a.held());  // NOLINT(bugprone-use-after-move): asserting moved-from state
    EXPECT_TRUE(moved.held());
    EXPECT_EQ(gate.inflight(), 1);
  }
  // Scope exit released the moved-to permit exactly once.
  EXPECT_EQ(gate.inflight(), 0);
}

TEST(AdmissionGateTest, DeadlineBelowTheFloorIsShed) {
  AdmissionConfig config = SmallGate();
  config.min_feasible_deadline_ms = 5.0;
  AdmissionGate gate(config);
  AdmissionGate::Permit permit;
  const Status shed = gate.TryAdmit(1.0, &permit);
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(gate.shed_deadline(), 1);
  EXPECT_EQ(gate.shed_overload(), 0);
  // At or above the floor is fine.
  EXPECT_TRUE(gate.TryAdmit(5.0, &permit).ok());
}

TEST(AdmissionGateTest, NoDeadlineMeansAlwaysFeasible) {
  AdmissionConfig config = SmallGate();
  config.min_feasible_deadline_ms = 5.0;
  AdmissionGate gate(config);
  gate.RecordLatencyMs(1000.0);  // EWMA primed sky-high.
  AdmissionGate::Permit permit;
  EXPECT_TRUE(gate.TryAdmit(0.0, &permit).ok());
  EXPECT_EQ(gate.shed_deadline(), 0);
}

TEST(AdmissionGateTest, EwmaFeasibilityShedsInfeasibleDeadlines) {
  AdmissionGate gate(SmallGate());  // headroom 2.0, alpha 0.5
  // Unprimed EWMA: any positive deadline is admitted.
  AdmissionGate::Permit permit;
  ASSERT_TRUE(gate.TryAdmit(0.001, &permit).ok());
  permit.Release();

  gate.RecordLatencyMs(10.0);
  EXPECT_DOUBLE_EQ(gate.latency_ewma_ms(), 10.0);
  // Feasible needs deadline >= 2.0 * 10ms.
  EXPECT_EQ(gate.TryAdmit(19.0, &permit).code(), StatusCode::kUnavailable);
  EXPECT_EQ(gate.shed_deadline(), 1);
  EXPECT_TRUE(gate.TryAdmit(20.0, &permit).ok());
}

TEST(AdmissionGateTest, EwmaTracksLatencyWithTheConfiguredAlpha) {
  AdmissionGate gate(SmallGate());  // alpha 0.5
  gate.RecordLatencyMs(10.0);
  gate.RecordLatencyMs(20.0);
  EXPECT_DOUBLE_EQ(gate.latency_ewma_ms(), 15.0);
  gate.RecordLatencyMs(15.0);
  EXPECT_DOUBLE_EQ(gate.latency_ewma_ms(), 15.0);
  // Garbage samples are ignored.
  gate.RecordLatencyMs(-1.0);
  EXPECT_DOUBLE_EQ(gate.latency_ewma_ms(), 15.0);
}

TEST(AdmissionGateTest, ShedTotalSumsBothCauses) {
  AdmissionConfig config = SmallGate();
  config.max_concurrent_queries = 1;
  config.min_feasible_deadline_ms = 5.0;
  AdmissionGate gate(config);
  AdmissionGate::Permit held, denied;
  ASSERT_TRUE(gate.TryAdmit(0.0, &held).ok());
  EXPECT_FALSE(gate.TryAdmit(0.0, &denied).ok());  // Overload.
  EXPECT_FALSE(gate.TryAdmit(1.0, &denied).ok());  // Deadline floor.
  EXPECT_EQ(gate.shed_total(), 2);
  EXPECT_EQ(gate.shed_overload(), 1);
  EXPECT_EQ(gate.shed_deadline(), 1);
}

TEST(AdmissionGateTest, ShedQueriesNeverConsumeASlot) {
  AdmissionConfig config = SmallGate();
  config.max_concurrent_queries = 1;
  AdmissionGate gate(config);
  AdmissionGate::Permit held;
  ASSERT_TRUE(gate.TryAdmit(0.0, &held).ok());
  for (int i = 0; i < 5; ++i) {
    AdmissionGate::Permit denied;
    EXPECT_FALSE(gate.TryAdmit(0.0, &denied).ok());
  }
  EXPECT_EQ(gate.inflight(), 1);
  held.Release();
  EXPECT_EQ(gate.inflight(), 0);
}

}  // namespace
}  // namespace resilience
}  // namespace grouplink
