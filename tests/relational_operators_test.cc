#include "relational/operators.h"

#include <gtest/gtest.h>

#include "relational/value.h"

namespace grouplink {
namespace {

// ------------------------------------------------------------------ Value.

TEST(ValueTest, NullSemantics) {
  Value null;
  EXPECT_TRUE(null.is_null());
  EXPECT_TRUE(null == Value());
  EXPECT_FALSE(null == Value(int64_t{0}));
  EXPECT_TRUE(null < Value(int64_t{0}));
  EXPECT_EQ(null.ToString(), "NULL");
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value(int64_t{1}) == Value(1.0));
  EXPECT_EQ(Value(int64_t{1}).Hash(), Value(1.0).Hash());
  EXPECT_FALSE(Value(int64_t{1}) == Value(1.5));
  EXPECT_TRUE(Value(int64_t{1}) < Value(1.5));
}

TEST(ValueTest, StringsCompareNaturally) {
  EXPECT_TRUE(Value("abc") == Value(std::string("abc")));
  EXPECT_TRUE(Value("abc") < Value("abd"));
  EXPECT_FALSE(Value("abc") == Value(int64_t{0}));
  EXPECT_TRUE(Value(int64_t{5}) < Value("a"));  // Numbers before strings.
}

TEST(ValueTest, AsDoubleWidensInt) {
  EXPECT_DOUBLE_EQ(Value(int64_t{7}).AsDouble(), 7.0);
}

TEST(SchemaTest, ColumnIndexLookup) {
  Schema schema{{"a", "b"}, {ColumnType::kInt, ColumnType::kString}};
  EXPECT_EQ(schema.ColumnIndex("a"), 0);
  EXPECT_EQ(schema.ColumnIndex("b"), 1);
  EXPECT_EQ(schema.ColumnIndex("missing"), -1);
}

// ------------------------------------------------------------------ Table.

TEST(TableTest, AppendValidatesArityAndTypes) {
  Table table(Schema{{"id", "name"}, {ColumnType::kInt, ColumnType::kString}});
  EXPECT_TRUE(table.Append({int64_t{1}, "alice"}).ok());
  EXPECT_TRUE(table.Append({Value(), "bob"}).ok());  // NULL allowed.
  EXPECT_FALSE(table.Append({int64_t{1}}).ok());     // Arity.
  EXPECT_FALSE(table.Append({"x", "y"}).ok());       // Type.
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, DoubleColumnAcceptsInt) {
  Table table(Schema{{"x"}, {ColumnType::kDouble}});
  EXPECT_TRUE(table.Append({int64_t{3}}).ok());
}

// Helper tables for operator tests.
Table People() {
  Table table(Schema{{"id", "name", "age"},
                     {ColumnType::kInt, ColumnType::kString, ColumnType::kInt}});
  table.AppendUnchecked({int64_t{1}, "alice", int64_t{30}});
  table.AppendUnchecked({int64_t{2}, "bob", int64_t{25}});
  table.AppendUnchecked({int64_t{3}, "carol", int64_t{35}});
  table.AppendUnchecked({int64_t{4}, "dave", int64_t{25}});
  return table;
}

Table Cities() {
  Table table(Schema{{"person_id", "city"}, {ColumnType::kInt, ColumnType::kString}});
  table.AppendUnchecked({int64_t{1}, "oslo"});
  table.AppendUnchecked({int64_t{2}, "berlin"});
  table.AppendUnchecked({int64_t{2}, "paris"});
  table.AppendUnchecked({int64_t{9}, "nowhere"});
  return table;
}

// --------------------------------------------------------------- Operators.

TEST(OperatorTest, ScanProducesAllRows) {
  const Table people = People();
  auto plan = Scan(&people);
  const Table result = Materialize(*plan);
  EXPECT_EQ(result.num_rows(), 4u);
  EXPECT_EQ(result.schema().names, people.schema().names);
}

TEST(OperatorTest, FilterByPredicate) {
  const Table people = People();
  auto plan = Filter(Scan(&people), [](const Row& row) { return row[2].AsInt() < 30; });
  const Table result = Materialize(*plan);
  EXPECT_EQ(result.num_rows(), 2u);  // bob, dave.
}

TEST(OperatorTest, ProjectComputedColumn) {
  const Table people = People();
  auto plan = Project(Scan(&people),
                      {{"name_upper", ColumnType::kString,
                        [](const Row& row) { return Value(row[1].AsString() + "!"); }},
                       {"age2", ColumnType::kInt,
                        [](const Row& row) { return Value(row[2].AsInt() * 2); }}});
  const Table result = Materialize(*plan);
  EXPECT_EQ(result.schema().names, (std::vector<std::string>{"name_upper", "age2"}));
  EXPECT_EQ(result.rows()[0][0].AsString(), "alice!");
  EXPECT_EQ(result.rows()[0][1].AsInt(), 60);
}

TEST(OperatorTest, ProjectColumnsKeepsSubset) {
  const Table people = People();
  auto plan = ProjectColumns(Scan(&people), {2, 0});
  const Table result = Materialize(*plan);
  EXPECT_EQ(result.schema().names, (std::vector<std::string>{"age", "id"}));
  EXPECT_EQ(result.rows()[1][0].AsInt(), 25);
  EXPECT_EQ(result.rows()[1][1].AsInt(), 2);
}

TEST(OperatorTest, HashJoinInnerSemantics) {
  const Table people = People();
  const Table cities = Cities();
  auto plan = HashJoin(Scan(&people), Scan(&cities), {0}, {0});
  const Table result = Materialize(*plan);
  // alice-oslo, bob-berlin, bob-paris; carol/dave/nowhere unmatched.
  EXPECT_EQ(result.num_rows(), 3u);
  EXPECT_EQ(result.schema().num_columns(), 5u);
  for (const Row& row : result.rows()) {
    EXPECT_TRUE(row[0] == row[3]);  // Join keys equal.
  }
}

TEST(OperatorTest, HashJoinRenamesDuplicateColumns) {
  const Table people = People();
  auto plan = HashJoin(Scan(&people), Scan(&people), {0}, {0});
  const Table result = Materialize(*plan);
  EXPECT_EQ(result.num_rows(), 4u);  // Self-join on key.
  EXPECT_GE(result.schema().ColumnIndex("id_r"), 0);
  EXPECT_GE(result.schema().ColumnIndex("name_r"), 0);
}

TEST(OperatorTest, HashJoinMultiColumnKeys) {
  Table left(Schema{{"a", "b"}, {ColumnType::kInt, ColumnType::kInt}});
  left.AppendUnchecked({int64_t{1}, int64_t{2}});
  left.AppendUnchecked({int64_t{1}, int64_t{3}});
  Table right(Schema{{"x", "y", "z"},
                     {ColumnType::kInt, ColumnType::kInt, ColumnType::kString}});
  right.AppendUnchecked({int64_t{1}, int64_t{2}, "hit"});
  right.AppendUnchecked({int64_t{1}, int64_t{9}, "miss"});
  auto plan = HashJoin(Scan(&left), Scan(&right), {0, 1}, {0, 1});
  const Table result = Materialize(*plan);
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.rows()[0][4].AsString(), "hit");
}

TEST(OperatorTest, GroupAggregateAllKinds) {
  const Table people = People();
  auto plan = GroupAggregate(Scan(&people), {2},  // By age.
                             {{AggregateKind::kCount, -1, "n"},
                              {AggregateKind::kSum, 0, "sum_id"},
                              {AggregateKind::kMin, 0, "min_id"},
                              {AggregateKind::kMax, 0, "max_id"},
                              {AggregateKind::kAvg, 0, "avg_id"}});
  const Table result = Materialize(*plan);
  ASSERT_EQ(result.num_rows(), 3u);  // Ages 30, 25, 35 (first-seen order).
  // Age 25 group: bob(2) and dave(4).
  const Row& age25 = result.rows()[1];
  EXPECT_EQ(age25[0].AsInt(), 25);
  EXPECT_EQ(age25[1].AsInt(), 2);
  EXPECT_DOUBLE_EQ(age25[2].AsDouble(), 6.0);
  EXPECT_DOUBLE_EQ(age25[3].AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(age25[4].AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(age25[5].AsDouble(), 3.0);
}

TEST(OperatorTest, GlobalAggregateOnEmptyInput) {
  Table empty(Schema{{"x"}, {ColumnType::kDouble}});
  auto plan = GroupAggregate(Scan(&empty), {},
                             {{AggregateKind::kCount, -1, "n"},
                              {AggregateKind::kSum, 0, "s"}});
  const Table result = Materialize(*plan);
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.rows()[0][0].AsInt(), 0);
  EXPECT_TRUE(result.rows()[0][1].is_null());  // SUM of nothing is NULL.
}

TEST(OperatorTest, SortAscendingAndDescending) {
  const Table people = People();
  auto ascending = Sort(Scan(&people), {2, 0});
  const Table asc = Materialize(*ascending);
  EXPECT_EQ(asc.rows()[0][0].AsInt(), 2);   // bob (25, id 2).
  EXPECT_EQ(asc.rows()[1][0].AsInt(), 4);   // dave (25, id 4).
  EXPECT_EQ(asc.rows()[3][0].AsInt(), 3);   // carol (35).
  auto descending = Sort(Scan(&people), {2}, /*descending=*/true);
  const Table desc = Materialize(*descending);
  EXPECT_EQ(desc.rows()[0][0].AsInt(), 3);
}

TEST(OperatorTest, DistinctRemovesDuplicates) {
  Table table(Schema{{"x"}, {ColumnType::kInt}});
  for (const int64_t v : {1, 2, 1, 3, 2, 1}) table.AppendUnchecked({v});
  auto plan = Distinct(Scan(&table));
  const Table result = Materialize(*plan);
  ASSERT_EQ(result.num_rows(), 3u);
  EXPECT_EQ(result.rows()[0][0].AsInt(), 1);  // First occurrence order.
  EXPECT_EQ(result.rows()[1][0].AsInt(), 2);
  EXPECT_EQ(result.rows()[2][0].AsInt(), 3);
}

TEST(OperatorTest, LimitTruncates) {
  const Table people = People();
  auto plan = Limit(Scan(&people), 2);
  EXPECT_EQ(Materialize(*plan).num_rows(), 2u);
  auto zero = Limit(Scan(&people), 0);
  EXPECT_EQ(Materialize(*zero).num_rows(), 0u);
}

TEST(OperatorTest, ComposedPipeline) {
  // SELECT age, COUNT(*) FROM people WHERE id < 4 GROUP BY age
  // ORDER BY age LIMIT 2.
  const Table people = People();
  auto plan = Limit(
      Sort(GroupAggregate(
               Filter(Scan(&people), [](const Row& row) { return row[0].AsInt() < 4; }),
               {2}, {{AggregateKind::kCount, -1, "n"}}),
           {0}),
      2);
  const Table result = Materialize(*plan);
  ASSERT_EQ(result.num_rows(), 2u);
  EXPECT_EQ(result.rows()[0][0].AsInt(), 25);
  EXPECT_EQ(result.rows()[0][1].AsInt(), 1);  // Only bob (dave excluded).
  EXPECT_EQ(result.rows()[1][0].AsInt(), 30);
}

TEST(OperatorTest, PlanIsRerunnable) {
  const Table people = People();
  auto plan = Filter(Scan(&people), [](const Row& row) { return row[2].AsInt() == 25; });
  EXPECT_EQ(Materialize(*plan).num_rows(), 2u);
  EXPECT_EQ(Materialize(*plan).num_rows(), 2u);  // Open resets state.
}

}  // namespace
}  // namespace grouplink
