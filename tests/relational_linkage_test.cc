#include "relational/linkage_plans.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/linkage_engine.h"
#include "data/bibliographic_generator.h"
#include "text/jaccard.h"
#include "text/tokenizer.h"

namespace grouplink {
namespace {

Dataset SmallDataset() {
  BibliographicConfig config;
  config.num_entities = 25;
  config.noise = 0.2;
  config.seed = 31;
  return GenerateBibliographic(config);
}

TEST(TokensTableTest, OneRowPerDistinctTokenPerRecord) {
  Dataset dataset;
  Record r0;
  r0.id = "r0";
  r0.text = "alpha beta alpha";
  Record r1;
  r1.id = "r1";
  r1.text = "gamma";
  dataset.records = {r0, r1};
  Group g;
  g.id = "g";
  g.record_ids = {0, 1};
  dataset.groups = {g};

  const Table tokens = MakeTokensTable(dataset);
  EXPECT_EQ(tokens.num_rows(), 3u);  // alpha, beta, gamma.
  for (const Row& row : tokens.rows()) {
    EXPECT_EQ(row[1].AsInt(), 0);  // All in group 0.
  }
}

TEST(GroupSizesTableTest, MatchesDataset) {
  const Dataset dataset = SmallDataset();
  const Table sizes = MakeGroupSizesTable(dataset);
  ASSERT_EQ(sizes.num_rows(), static_cast<size_t>(dataset.num_groups()));
  for (const Row& row : sizes.rows()) {
    EXPECT_EQ(row[1].AsInt(),
              dataset.GroupSize(static_cast<int32_t>(row[0].AsInt())));
  }
}

TEST(SqlCandidatesTest, MatchesBruteForceTokenOverlap) {
  const Dataset dataset = SmallDataset();
  const Table tokens = MakeTokensTable(dataset);
  constexpr int64_t kMinOverlap = 2;
  const Table candidates = SqlRecordPairCandidates(tokens, kMinOverlap);

  // Brute force: distinct-token overlap between all cross-group records.
  std::vector<std::vector<std::string>> token_sets(dataset.records.size());
  for (size_t r = 0; r < dataset.records.size(); ++r) {
    token_sets[r] = ToTokenSet(Tokenize(dataset.records[r].text));
  }
  const std::vector<int32_t> record_group = dataset.RecordToGroup();
  std::set<std::pair<int64_t, int64_t>> expected;
  for (size_t a = 0; a < token_sets.size(); ++a) {
    for (size_t b = a + 1; b < token_sets.size(); ++b) {
      if (record_group[a] == record_group[b]) continue;
      if (SortedIntersectionSize(token_sets[a], token_sets[b]) >=
          static_cast<size_t>(kMinOverlap)) {
        expected.insert({static_cast<int64_t>(a), static_cast<int64_t>(b)});
      }
    }
  }

  std::set<std::pair<int64_t, int64_t>> actual;
  for (const Row& row : candidates.rows()) {
    actual.insert({row[0].AsInt(), row[2].AsInt()});
    // Overlap column is the true intersection size.
    EXPECT_EQ(row[4].AsInt(),
              static_cast<int64_t>(SortedIntersectionSize(
                  token_sets[static_cast<size_t>(row[0].AsInt())],
                  token_sets[static_cast<size_t>(row[2].AsInt())])));
  }
  EXPECT_EQ(actual, expected);
}

TEST(SqlEdgesTest, AppliesUdfThresholdAndOrientation) {
  const Dataset dataset = SmallDataset();
  auto engine_or = LinkageEngine::Create(&dataset, LinkageConfig{});
  ASSERT_TRUE(engine_or.ok());
  LinkageEngine& engine = *engine_or;
  const auto sim = [&](int32_t a, int32_t b) {
    return engine.DefaultRecordSimilarity(a, b);
  };
  const Table tokens = MakeTokensTable(dataset);
  const Table candidates = SqlRecordPairCandidates(tokens, 1);
  constexpr double kTheta = 0.4;
  const Table edges = SqlVerifiedEdges(candidates, sim, kTheta);
  EXPECT_GT(edges.num_rows(), 0u);
  for (const Row& row : edges.rows()) {
    EXPECT_LT(row[0].AsInt(), row[1].AsInt());  // g1 < g2.
    EXPECT_GE(row[4].AsDouble(), kTheta);
    EXPECT_NEAR(row[4].AsDouble(),
                sim(static_cast<int32_t>(row[2].AsInt()),
                    static_cast<int32_t>(row[3].AsInt())),
                1e-12);
  }
}

TEST(SqlUpperBoundTest, AgreesWithNativeUpperBoundMeasure) {
  // Feed the SQL aggregation the *complete* edge relation (every record
  // pair with sim >= theta) and check the UB values equal the native
  // semi-matching computation per group pair.
  const Dataset dataset = SmallDataset();
  auto engine_or = LinkageEngine::Create(&dataset, LinkageConfig{});
  ASSERT_TRUE(engine_or.ok());
  LinkageEngine& engine = *engine_or;
  const auto sim = [&](int32_t a, int32_t b) {
    return engine.DefaultRecordSimilarity(a, b);
  };
  constexpr double kTheta = 0.35;

  // Complete edges across all group pairs.
  Table edges(Schema{{"g1", "g2", "r1", "r2", "sim"},
                     {ColumnType::kInt, ColumnType::kInt, ColumnType::kInt,
                      ColumnType::kInt, ColumnType::kDouble}});
  const std::vector<int32_t> record_group = dataset.RecordToGroup();
  for (int32_t a = 0; a < dataset.num_records(); ++a) {
    for (int32_t b = a + 1; b < dataset.num_records(); ++b) {
      const int32_t g1 = record_group[static_cast<size_t>(a)];
      const int32_t g2 = record_group[static_cast<size_t>(b)];
      if (g1 == g2) continue;
      const double s = sim(a, b);
      if (s < kTheta) continue;
      const bool in_order = g1 < g2;
      edges.AppendUnchecked({static_cast<int64_t>(in_order ? g1 : g2),
                             static_cast<int64_t>(in_order ? g2 : g1),
                             static_cast<int64_t>(in_order ? a : b),
                             static_cast<int64_t>(in_order ? b : a), s});
    }
  }
  const Table sizes = MakeGroupSizesTable(dataset);
  const Table scores = SqlUpperBoundScores(edges, sizes);
  ASSERT_GT(scores.num_rows(), 0u);

  for (const Row& row : scores.rows()) {
    const int32_t g1 = static_cast<int32_t>(row[0].AsInt());
    const int32_t g2 = static_cast<int32_t>(row[1].AsInt());
    const BipartiteGraph graph = BuildSimilarityGraph(dataset, g1, g2, sim, kTheta);
    const double native =
        UpperBoundMeasure(graph, dataset.GroupSize(g1), dataset.GroupSize(g2));
    EXPECT_NEAR(row[2].AsDouble(), native, 1e-9) << "pair " << g1 << "," << g2;
  }
}

TEST(SqlFilterTest, SurvivorsSupersetOfBmLinks) {
  // UB >= BM, so every group pair the native BM pipeline links must
  // survive the SQL UB filter (when the SQL candidate join is lossless,
  // i.e. min_overlap = 1 and theta filters below the engine's theta).
  const Dataset dataset = SmallDataset();
  LinkageConfig config;
  config.theta = 0.4;
  config.group_threshold = 0.25;
  config.candidates = CandidateMethod::kAllPairs;
  auto engine_or = LinkageEngine::Create(&dataset, config);
  ASSERT_TRUE(engine_or.ok());
  LinkageEngine& engine = *engine_or;
  const LinkageResult native = engine.Run();

  const auto sim = [&](int32_t a, int32_t b) {
    return engine.DefaultRecordSimilarity(a, b);
  };
  const auto survivors = SqlUpperBoundFilter(dataset, sim, config.theta,
                                             config.group_threshold, 1);
  const std::set<std::pair<int32_t, int32_t>> survivor_set(survivors.begin(),
                                                           survivors.end());
  for (const auto& pair : native.linked_pairs) {
    EXPECT_TRUE(survivor_set.count(pair))
        << "linked pair (" << pair.first << "," << pair.second
        << ") missing from SQL UB survivors";
  }
}

}  // namespace
}  // namespace grouplink
