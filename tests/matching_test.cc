#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "matching/bipartite_graph.h"
#include "matching/brute_force.h"
#include "matching/greedy.h"
#include "matching/hopcroft_karp.h"
#include "matching/hungarian.h"
#include "matching/semi_matching.h"

namespace grouplink {
namespace {

BipartiteGraph RandomGraph(Rng& rng, int32_t max_side, double edge_prob) {
  const int32_t num_left = 1 + static_cast<int32_t>(rng.Uniform(max_side));
  const int32_t num_right = 1 + static_cast<int32_t>(rng.Uniform(max_side));
  BipartiteGraph graph(num_left, num_right);
  for (int32_t l = 0; l < num_left; ++l) {
    for (int32_t r = 0; r < num_right; ++r) {
      if (rng.Bernoulli(edge_prob)) {
        graph.AddEdge(l, r, 0.05 + 0.95 * rng.UniformDouble());
      }
    }
  }
  return graph;
}

// ------------------------------------------------------------------ Graph.

TEST(BipartiteGraphTest, StoresEdgesAndAdjacency) {
  BipartiteGraph graph(2, 3);
  graph.AddEdge(0, 1, 0.5);
  graph.AddEdge(0, 2, 0.7);
  graph.AddEdge(1, 0, 0.9);
  EXPECT_EQ(graph.edges().size(), 3u);
  EXPECT_EQ(graph.LeftAdjacency(0).size(), 2u);
  EXPECT_EQ(graph.LeftAdjacency(1).size(), 1u);
}

TEST(BipartiteGraphTest, DenseWeightsTakeMaxOfDuplicates) {
  BipartiteGraph graph(1, 1);
  graph.AddEdge(0, 0, 0.3);
  graph.AddEdge(0, 0, 0.8);
  graph.AddEdge(0, 0, 0.5);
  EXPECT_DOUBLE_EQ(graph.ToDenseWeights()[0][0], 0.8);
}

TEST(MatchingTest, EmptyFactoryAndConsistency) {
  Matching m = Matching::Empty(3, 2);
  EXPECT_TRUE(m.IsConsistent());
  m.left_to_right[0] = 1;
  EXPECT_FALSE(m.IsConsistent());  // Right side not updated.
  m.right_to_left[1] = 0;
  EXPECT_TRUE(m.IsConsistent());
}

// -------------------------------------------------------------- Hungarian.

TEST(HungarianTest, SimpleAssignment) {
  // Optimal: (0,1) + (1,0) = 0.9 + 0.8 = 1.7 beats (0,0) + (1,1) = 1.0.
  BipartiteGraph graph(2, 2);
  graph.AddEdge(0, 0, 0.6);
  graph.AddEdge(0, 1, 0.9);
  graph.AddEdge(1, 0, 0.8);
  graph.AddEdge(1, 1, 0.4);
  const Matching m = HungarianMaxWeightMatching(graph);
  EXPECT_NEAR(m.total_weight, 1.7, 1e-12);
  EXPECT_EQ(m.size, 2);
  EXPECT_EQ(m.left_to_right[0], 1);
  EXPECT_EQ(m.left_to_right[1], 0);
}

TEST(HungarianTest, PrefersOneHeavyEdgeOverTwoLight) {
  BipartiteGraph graph(2, 2);
  graph.AddEdge(0, 0, 1.0);
  graph.AddEdge(0, 1, 0.4);
  graph.AddEdge(1, 0, 0.4);
  const Matching m = HungarianMaxWeightMatching(graph);
  EXPECT_NEAR(m.total_weight, 1.0, 1e-12);
  EXPECT_EQ(m.size, 1);
}

TEST(HungarianTest, EmptyGraph) {
  BipartiteGraph graph(3, 2);
  const Matching m = HungarianMaxWeightMatching(graph);
  EXPECT_EQ(m.size, 0);
  EXPECT_DOUBLE_EQ(m.total_weight, 0.0);
}

TEST(HungarianTest, ZeroSidedGraph) {
  BipartiteGraph graph(0, 4);
  const Matching m = HungarianMaxWeightMatching(graph);
  EXPECT_EQ(m.size, 0);
}

TEST(HungarianTest, RectangularTransposedSides) {
  BipartiteGraph graph(4, 1);  // More left than right triggers transpose.
  graph.AddEdge(0, 0, 0.2);
  graph.AddEdge(3, 0, 0.9);
  const Matching m = HungarianMaxWeightMatching(graph);
  EXPECT_EQ(m.size, 1);
  EXPECT_EQ(m.right_to_left[0], 3);
}

TEST(HungarianTest, MatchesBruteForceOnRandomGraphs) {
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    const BipartiteGraph graph = RandomGraph(rng, 6, 0.5);
    const Matching hungarian = HungarianMaxWeightMatching(graph);
    const Matching brute = BruteForceMaxWeightMatching(graph);
    EXPECT_NEAR(hungarian.total_weight, brute.total_weight, 1e-9)
        << "trial " << trial;
    EXPECT_TRUE(hungarian.IsConsistent());
  }
}

TEST(HungarianTest, MatchingIsMaximalUnderPositiveWeights) {
  Rng rng(202);
  for (int trial = 0; trial < 100; ++trial) {
    const BipartiteGraph graph = RandomGraph(rng, 7, 0.4);
    const Matching m = HungarianMaxWeightMatching(graph);
    for (const BipartiteEdge& e : graph.edges()) {
      const bool left_free =
          m.left_to_right[static_cast<size_t>(e.left)] == Matching::kUnmatched;
      const bool right_free =
          m.right_to_left[static_cast<size_t>(e.right)] == Matching::kUnmatched;
      EXPECT_FALSE(left_free && right_free)
          << "addable edge left in trial " << trial;
    }
  }
}

TEST(HungarianTest, TransposeInvariantWeight) {
  // Swapping left/right must not change the optimal weight.
  Rng rng(203);
  for (int trial = 0; trial < 100; ++trial) {
    const BipartiteGraph graph = RandomGraph(rng, 7, 0.4);
    BipartiteGraph transposed(graph.num_right(), graph.num_left());
    for (const BipartiteEdge& e : graph.edges()) {
      transposed.AddEdge(e.right, e.left, e.weight);
    }
    EXPECT_NEAR(HungarianMaxWeightMatching(graph).total_weight,
                HungarianMaxWeightMatching(transposed).total_weight, 1e-9)
        << trial;
  }
}

TEST(HungarianTest, AddingAnEdgeNeverDecreasesWeight) {
  Rng rng(204);
  for (int trial = 0; trial < 100; ++trial) {
    BipartiteGraph graph = RandomGraph(rng, 6, 0.3);
    const double before = HungarianMaxWeightMatching(graph).total_weight;
    graph.AddEdge(static_cast<int32_t>(rng.Uniform(graph.num_left())),
                  static_cast<int32_t>(rng.Uniform(graph.num_right())),
                  0.05 + 0.95 * rng.UniformDouble());
    const double after = HungarianMaxWeightMatching(graph).total_weight;
    EXPECT_GE(after + 1e-9, before) << trial;
  }
}

TEST(HungarianTest, ScalingWeightsScalesOptimum) {
  Rng rng(205);
  for (int trial = 0; trial < 50; ++trial) {
    const BipartiteGraph graph = RandomGraph(rng, 6, 0.5);
    BipartiteGraph scaled(graph.num_left(), graph.num_right());
    for (const BipartiteEdge& e : graph.edges()) {
      scaled.AddEdge(e.left, e.right, e.weight * 0.5);
    }
    EXPECT_NEAR(HungarianMaxWeightMatching(scaled).total_weight,
                0.5 * HungarianMaxWeightMatching(graph).total_weight, 1e-9)
        << trial;
  }
}

// ----------------------------------------------------------------- Greedy.

TEST(GreedyTest, PicksHeaviestFirst) {
  BipartiteGraph graph(2, 2);
  graph.AddEdge(0, 0, 0.5);
  graph.AddEdge(0, 1, 0.9);
  graph.AddEdge(1, 1, 0.8);
  const Matching m = GreedyMaxWeightMatching(graph);
  EXPECT_EQ(m.left_to_right[0], 1);  // 0.9 first; (1,1) then blocked.
  EXPECT_EQ(m.size, 1);
}

TEST(GreedyTest, IsHalfApproximation) {
  Rng rng(303);
  for (int trial = 0; trial < 200; ++trial) {
    const BipartiteGraph graph = RandomGraph(rng, 6, 0.5);
    const double optimal = BruteForceMaxWeightMatching(graph).total_weight;
    const double greedy = GreedyMaxWeightMatching(graph).total_weight;
    EXPECT_GE(greedy + 1e-9, optimal / 2.0) << "trial " << trial;
    EXPECT_LE(greedy, optimal + 1e-9) << "trial " << trial;
  }
}

TEST(GreedyTest, ResultIsMaximal) {
  Rng rng(404);
  for (int trial = 0; trial < 100; ++trial) {
    const BipartiteGraph graph = RandomGraph(rng, 7, 0.4);
    const Matching m = GreedyMaxWeightMatching(graph);
    EXPECT_TRUE(m.IsConsistent());
    for (const BipartiteEdge& e : graph.edges()) {
      const bool left_free =
          m.left_to_right[static_cast<size_t>(e.left)] == Matching::kUnmatched;
      const bool right_free =
          m.right_to_left[static_cast<size_t>(e.right)] == Matching::kUnmatched;
      EXPECT_FALSE(left_free && right_free);
    }
  }
}

TEST(GreedyTest, DeterministicUnderTies) {
  BipartiteGraph graph(2, 2);
  graph.AddEdge(0, 0, 0.5);
  graph.AddEdge(0, 1, 0.5);
  graph.AddEdge(1, 0, 0.5);
  graph.AddEdge(1, 1, 0.5);
  const Matching a = GreedyMaxWeightMatching(graph);
  const Matching b = GreedyMaxWeightMatching(graph);
  EXPECT_EQ(a.left_to_right, b.left_to_right);
  EXPECT_EQ(a.size, 2);  // Ties broken by index: (0,0) then (1,1).
  EXPECT_EQ(a.left_to_right[0], 0);
}

// ----------------------------------------------------------- Hopcroft-Karp.

TEST(HopcroftKarpTest, MaximumCardinalitySimple) {
  // Perfect matching exists: (0,1), (1,0).
  BipartiteGraph graph(2, 2);
  graph.AddEdge(0, 0, 1.0);
  graph.AddEdge(0, 1, 1.0);
  graph.AddEdge(1, 0, 1.0);
  const Matching m = HopcroftKarpMatching(graph);
  EXPECT_EQ(m.size, 2);
  EXPECT_TRUE(m.IsConsistent());
}

TEST(HopcroftKarpTest, AugmentingPathNeeded) {
  // Greedy-by-order would match (0,0) and strand left 1; HK augments.
  BipartiteGraph graph(2, 2);
  graph.AddEdge(0, 0, 1.0);
  graph.AddEdge(1, 0, 1.0);
  graph.AddEdge(0, 1, 1.0);
  EXPECT_EQ(HopcroftKarpMatching(graph).size, 2);
}

TEST(HopcroftKarpTest, CardinalityAtLeastWeightOptimal) {
  // Max cardinality >= cardinality needed by any matching, in particular
  // it is the max over matchings, so >= brute-force max-weight one's size.
  Rng rng(505);
  for (int trial = 0; trial < 100; ++trial) {
    const BipartiteGraph graph = RandomGraph(rng, 6, 0.4);
    const Matching hk = HopcroftKarpMatching(graph);
    const Matching brute = BruteForceMaxWeightMatching(graph);
    EXPECT_GE(hk.size, brute.size) << trial;
  }
}

TEST(HopcroftKarpTest, EmptyGraph) {
  BipartiteGraph graph(5, 5);
  EXPECT_EQ(HopcroftKarpMatching(graph).size, 0);
}

// ------------------------------------------------------------ Semi-match.

TEST(SemiMatchingTest, BestIncidentWeights) {
  BipartiteGraph graph(2, 3);
  graph.AddEdge(0, 0, 0.4);
  graph.AddEdge(0, 1, 0.9);
  graph.AddEdge(1, 1, 0.6);
  const SemiMatching semi = ComputeSemiMatching(graph);
  EXPECT_DOUBLE_EQ(semi.best_left[0], 0.9);
  EXPECT_DOUBLE_EQ(semi.best_left[1], 0.6);
  EXPECT_DOUBLE_EQ(semi.best_right[0], 0.4);
  EXPECT_DOUBLE_EQ(semi.best_right[1], 0.9);
  EXPECT_DOUBLE_EQ(semi.best_right[2], 0.0);
  EXPECT_EQ(semi.covered_left, 2);
  EXPECT_EQ(semi.covered_right, 2);
  EXPECT_NEAR(semi.SumBestLeft(), 1.5, 1e-12);
  EXPECT_NEAR(semi.SumBestRight(), 1.3, 1e-12);
}

TEST(SemiMatchingTest, UpperBoundsMatchingWeight) {
  // S = (sum best_left + sum best_right) / 2 >= max matching weight.
  Rng rng(606);
  for (int trial = 0; trial < 200; ++trial) {
    const BipartiteGraph graph = RandomGraph(rng, 6, 0.5);
    const SemiMatching semi = ComputeSemiMatching(graph);
    const double s = 0.5 * (semi.SumBestLeft() + semi.SumBestRight());
    const double optimal = BruteForceMaxWeightMatching(graph).total_weight;
    EXPECT_GE(s + 1e-9, optimal) << trial;
  }
}

// ------------------------------------------------------------ Brute force.

TEST(BruteForceTest, NormalizedScoreSimple) {
  // One edge of weight 1 between singletons: best score 1/(2-1) = 1.
  BipartiteGraph graph(1, 1);
  graph.AddEdge(0, 0, 1.0);
  EXPECT_DOUBLE_EQ(BruteForceMaxNormalizedScore(graph), 1.0);
}

TEST(BruteForceTest, NormalizedScoreMayPreferLargerMatching) {
  // Weight path: single heavy edge 0.6 vs two 0.5 edges.
  // Single: 0.6 / (4-1) = 0.2; double: 1.0 / (4-2) = 0.5.
  BipartiteGraph graph(2, 2);
  graph.AddEdge(0, 0, 0.6);
  graph.AddEdge(0, 1, 0.5);
  graph.AddEdge(1, 0, 0.5);
  EXPECT_DOUBLE_EQ(BruteForceMaxNormalizedScore(graph), 0.5);
}

TEST(BruteForceTest, EmptySidesConventions) {
  BipartiteGraph both_empty(0, 0);
  EXPECT_DOUBLE_EQ(BruteForceMaxNormalizedScore(both_empty), 1.0);
  BipartiteGraph one_empty(0, 3);
  EXPECT_DOUBLE_EQ(BruteForceMaxNormalizedScore(one_empty), 0.0);
}

}  // namespace
}  // namespace grouplink
