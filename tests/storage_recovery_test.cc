// Crash-recovery property suite: arm the storage fault points
// (storage.torn_write, storage.fail_fsync) at EVERY injection site a
// persist evaluates — discovered by counting hits with a never-firing
// spec — and prove that each simulated crash leaves the store in one of
// exactly three states: the previous consistent snapshot, the new
// consistent snapshot (legitimate only when the crash hit after the
// rename), or a clean Status error. Never a silently different epoch.
#include "storage/snapshot_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/incremental.h"
#include "core/snapshot.h"
#include "data/bibliographic_generator.h"
#include "storage/page_file.h"

namespace grouplink {
namespace storage {
namespace {

LinkageConfig TestConfig() {
  LinkageConfig config;
  config.theta = 0.35;
  config.group_threshold = 0.2;
  return config;
}

Dataset MakeCorpus(int32_t entities, uint64_t seed) {
  BibliographicConfig config;
  config.num_entities = entities;
  config.noise = 0.25;
  config.num_topics = 5;
  config.offtopic_word_prob = 0.5;
  config.seed = seed;
  return GenerateBibliographic(config);
}

std::string StorePath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bool SameEpoch(const CorpusSnapshot& a, const CorpusSnapshot& b) {
  return a.epoch() == b.epoch() && a.num_groups() == b.num_groups() &&
         a.linked_pairs() == b.linked_pairs() &&
         a.cluster_labels() == b.cluster_labels();
}

/// Counts how many times `point` is evaluated during one persist, by
/// arming it with probability 0 (hits are counted, nothing fires).
int64_t CountInjectionSites(const char* point, const CorpusSnapshot& snapshot,
                            const std::string& path,
                            const StorageOptions& options) {
  auto& injector = FaultInjector::Default();
  injector.Arm(point, {.probability = 0.0});
  GL_CHECK(SnapshotStore::Persist(snapshot, path, options).ok());
  const int64_t sites = injector.hits(point);
  injector.Disarm(point);
  return sites;
}

/// The sweep itself: for every site k of `point`, start from a published
/// old store, crash the persist of the new snapshot at site k, and check
/// the recovery invariant.
void SweepKillPoints(const char* point, const CorpusSnapshot& old_snapshot,
                     const CorpusSnapshot& new_snapshot,
                     const StorageOptions& options) {
  const std::string path = StorePath("sweep.glsnap");
  auto& injector = FaultInjector::Default();
  const int64_t sites =
      CountInjectionSites(point, new_snapshot, path, options);
  ASSERT_GT(sites, 0) << point << " was never evaluated";

  int recovered_old = 0;
  int recovered_new = 0;
  for (int64_t k = 0; k < sites; ++k) {
    // Fresh baseline: the old snapshot is the published store.
    injector.DisarmAll();
    ASSERT_TRUE(SnapshotStore::Persist(old_snapshot, path, options).ok());

    injector.Arm(point, {.after = k, .max_fires = 1});
    const Status crashed = SnapshotStore::Persist(new_snapshot, path, options);
    injector.Disarm(point);
    ASSERT_FALSE(crashed.ok()) << point << " site " << k << " did not fire";
    EXPECT_EQ(crashed.code(), StatusCode::kIoError) << point << " site " << k;

    // Recovery after the simulated crash.
    const auto loaded = SnapshotStore::Load(path);
    ASSERT_TRUE(loaded.ok())
        << point << " site " << k
        << ": a published store must survive any persist crash: "
        << loaded.status().message();
    ASSERT_TRUE((*loaded)->CheckConsistency()) << point << " site " << k;
    const bool is_old = SameEpoch(**loaded, old_snapshot);
    const bool is_new = SameEpoch(**loaded, new_snapshot);
    EXPECT_TRUE(is_old || is_new)
        << point << " site " << k
        << ": recovered a snapshot that is neither the old nor the new epoch";
    recovered_old += is_old ? 1 : 0;
    recovered_new += is_new ? 1 : 0;

    // Batch equivalence of the resumed pipeline: re-running the persist
    // without the fault must land the new epoch cleanly.
    ASSERT_TRUE(SnapshotStore::Persist(new_snapshot, path, options).ok());
    const auto settled = SnapshotStore::Load(path);
    ASSERT_TRUE(settled.ok());
    EXPECT_TRUE(SameEpoch(**settled, new_snapshot)) << point << " site " << k;
  }
  // Crashes before the rename keep the old store; only a post-rename
  // directory-fsync failure may expose the new one. Every site must have
  // resolved to one of the two.
  EXPECT_GT(recovered_old, 0) << point;
  EXPECT_EQ(recovered_old + recovered_new, static_cast<int>(sites)) << point;
  ASSERT_TRUE(RemoveFile(path).ok());
}

class StorageRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const Dataset dataset = MakeCorpus(20, 13);
    auto linker = IncrementalLinker::Create(dataset, TestConfig());
    GL_CHECK(linker.ok());
    old_snapshot_ = CorpusSnapshot::Capture(*linker);
    (void)linker->AddGroup("crash epoch", {"new tokens for the new epoch"});
    linker->RemoveGroup(1);
    linker->Refresh();
    new_snapshot_ = CorpusSnapshot::Capture(*linker);
    options_.page_bytes = 512;  // Many pages: many torn-write sites.
  }

  ScopedFaultClear clear_;
  std::shared_ptr<const CorpusSnapshot> old_snapshot_;
  std::shared_ptr<const CorpusSnapshot> new_snapshot_;
  StorageOptions options_;
};

TEST_F(StorageRecoveryTest, TornWriteAtEverySiteRecoversOldOrCleanError) {
  SweepKillPoints(faults::kTornWrite, *old_snapshot_, *new_snapshot_,
                  options_);
}

TEST_F(StorageRecoveryTest, FailedFsyncAtEverySiteRecoversOldOrNew) {
  // Two sites per persist: the tmp-file fsync (before the rename — the
  // old store must survive) and the directory fsync (after the rename —
  // the new store is already published, and that is legitimate).
  SweepKillPoints(faults::kFailFsync, *old_snapshot_, *new_snapshot_,
                  options_);
}

TEST_F(StorageRecoveryTest, CrashOnFirstEverPersistLeavesACleanError) {
  // No previous store exists: a crash at any torn-write site must leave
  // Load returning a clean NotFound — never a half-written store that
  // decodes.
  const std::string path = StorePath("first_persist.glsnap");
  auto& injector = FaultInjector::Default();
  const int64_t sites = CountInjectionSites(faults::kTornWrite, *new_snapshot_,
                                            path, options_);
  ASSERT_GT(sites, 0);
  for (int64_t k = 0; k < sites; ++k) {
    ASSERT_TRUE(RemoveFile(path).ok());
    ASSERT_TRUE(RemoveFile(path + ".tmp").ok());
    injector.Arm(faults::kTornWrite, {.after = k, .max_fires = 1});
    const Status crashed = SnapshotStore::Persist(*new_snapshot_, path, options_);
    injector.Disarm(faults::kTornWrite);
    ASSERT_FALSE(crashed.ok()) << "site " << k;
    const auto loaded = SnapshotStore::Load(path);
    ASSERT_FALSE(loaded.ok()) << "site " << k;
    EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound) << "site " << k;
    // The crash-faithful tmp residue must never be mistaken for a store.
    EXPECT_TRUE(FileExists(path + ".tmp")) << "site " << k;
  }
  ASSERT_TRUE(RemoveFile(path + ".tmp").ok());
}

TEST_F(StorageRecoveryTest, ProbabilisticCrashStormNeverYieldsAThirdEpoch) {
  // Randomized reinforcement of the exhaustive sweeps: a seeded 30%
  // chance of a torn write on every page append, repeated over many
  // persists. Whatever survives each crash must still be old, new, or a
  // clean error — and the final un-faulted persist must settle the new
  // epoch.
  const std::string path = StorePath("storm.glsnap");
  auto& injector = FaultInjector::Default();
  ASSERT_TRUE(SnapshotStore::Persist(*old_snapshot_, path, options_).ok());
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    injector.Arm(faults::kTornWrite, {.probability = 0.3, .seed = seed});
    const Status status = SnapshotStore::Persist(*new_snapshot_, path, options_);
    injector.Disarm(faults::kTornWrite);
    const auto loaded = SnapshotStore::Load(path);
    if (loaded.ok()) {
      ASSERT_TRUE((*loaded)->CheckConsistency()) << "seed " << seed;
      EXPECT_TRUE(SameEpoch(**loaded, *old_snapshot_) ||
                  SameEpoch(**loaded, *new_snapshot_))
          << "seed " << seed;
    } else {
      EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss) << "seed " << seed;
    }
    if (!status.ok()) {
      // Re-establish a known-good baseline before the next storm round.
      ASSERT_TRUE(SnapshotStore::Persist(*old_snapshot_, path, options_).ok());
    }
  }
  ASSERT_TRUE(SnapshotStore::Persist(*new_snapshot_, path, options_).ok());
  const auto settled = SnapshotStore::Load(path);
  ASSERT_TRUE(settled.ok());
  EXPECT_TRUE(SameEpoch(**settled, *new_snapshot_));
  ASSERT_TRUE(RemoveFile(path).ok());
}

}  // namespace
}  // namespace storage
}  // namespace grouplink
