#include "index/prefix_filter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "common/random.h"

namespace grouplink {
namespace {

using Docs = std::vector<std::vector<int32_t>>;
using Pairs = std::vector<std::pair<int32_t, int32_t>>;

TEST(PrefixLengthTest, KnownValues) {
  // |x| = 10, t = 0.8 -> overlap >= 8 -> prefix = 10 - 8 + 1 = 3.
  EXPECT_EQ(JaccardPrefixLength(10, 0.8), 3u);
  EXPECT_EQ(JaccardPrefixLength(10, 1.0), 1u);
  EXPECT_EQ(JaccardPrefixLength(0, 0.5), 0u);
  EXPECT_EQ(JaccardPrefixLength(4, 0.0), 4u);  // Everything indexed.
}

TEST(PrefixLengthTest, MonotoneInThreshold) {
  for (size_t size = 1; size <= 20; ++size) {
    size_t previous = size + 1;
    for (double t = 0.1; t <= 1.0; t += 0.1) {
      const size_t p = JaccardPrefixLength(size, t);
      EXPECT_LE(p, previous);
      previous = p;
    }
  }
}

TEST(RarityRanksTest, RarestFirst) {
  const Docs docs = {{0, 1}, {1}, {1, 2}};
  // Frequencies: token0 -> 1, token1 -> 3, token2 -> 1.
  const auto rank = RarityRanks(docs, 3);
  EXPECT_LT(rank[0], rank[1]);
  EXPECT_LT(rank[2], rank[1]);
  EXPECT_LT(rank[0], rank[2]);  // Tie broken by id.
}

TEST(RarityRanksTest, IsPermutation) {
  const Docs docs = {{0, 3}, {1, 2, 3}};
  auto rank = RarityRanks(docs, 4);
  std::sort(rank.begin(), rank.end());
  EXPECT_EQ(rank, (std::vector<int32_t>{0, 1, 2, 3}));
}

TEST(BruteForceJoinTest, SmallExample) {
  const Docs docs = {{0, 1, 2}, {1, 2, 3}, {7, 8, 9}};
  const auto pairs = BruteForceJaccardSelfJoin(docs, 0.4);
  EXPECT_EQ(pairs, (Pairs{{0, 1}}));  // Jaccard(0,1) = 2/4 = 0.5.
}

TEST(PrefixFilterTest, FindsObviousPair) {
  const Docs docs = {{0, 1, 2}, {0, 1, 2}, {5, 6, 7}};
  const auto candidates = PrefixFilterSelfJoin(docs, 8, 0.9);
  EXPECT_TRUE(std::find(candidates.begin(), candidates.end(),
                        std::make_pair(0, 1)) != candidates.end());
}

TEST(PrefixFilterTest, LengthFilterPrunesSkewedSizes) {
  // Sizes 1 vs 10 can reach Jaccard at most 0.1 < 0.5.
  Docs docs = {{0}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}};
  const auto candidates = PrefixFilterSelfJoin(docs, 10, 0.5);
  EXPECT_TRUE(candidates.empty());
}

// Completeness property: on random corpora, every truly-qualifying pair
// appears among the candidates, for every threshold.
class PrefixFilterCompletenessTest : public ::testing::TestWithParam<double> {};

TEST_P(PrefixFilterCompletenessTest, CandidatesSupersetOfTruth) {
  const double threshold = GetParam();
  Rng rng(static_cast<uint64_t>(threshold * 1000) + 17);
  constexpr int32_t kNumTokens = 40;
  for (int trial = 0; trial < 20; ++trial) {
    Docs docs;
    const size_t num_docs = 10 + rng.Uniform(30);
    for (size_t d = 0; d < num_docs; ++d) {
      const size_t size = 1 + rng.Uniform(12);
      std::set<int32_t> tokens;
      while (tokens.size() < size) {
        tokens.insert(static_cast<int32_t>(rng.Uniform(kNumTokens)));
      }
      docs.emplace_back(tokens.begin(), tokens.end());
    }
    const auto truth = BruteForceJaccardSelfJoin(docs, threshold);
    const auto candidates = PrefixFilterSelfJoin(docs, kNumTokens, threshold);
    const std::set<std::pair<int32_t, int32_t>> candidate_set(candidates.begin(),
                                                              candidates.end());
    for (const auto& pair : truth) {
      EXPECT_TRUE(candidate_set.count(pair))
          << "missing true pair (" << pair.first << "," << pair.second
          << ") at threshold " << threshold;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, PrefixFilterCompletenessTest,
                         ::testing::Values(0.2, 0.3, 0.5, 0.7, 0.8, 0.9, 1.0));

TEST(PrefixFilterTest, PrunesComparedToAllPairs) {
  Rng rng(42);
  Docs docs;
  for (int d = 0; d < 200; ++d) {
    std::set<int32_t> tokens;
    const size_t size = 3 + rng.Uniform(6);
    while (tokens.size() < size) {
      tokens.insert(static_cast<int32_t>(rng.Uniform(500)));
    }
    docs.emplace_back(tokens.begin(), tokens.end());
  }
  const auto candidates = PrefixFilterSelfJoin(docs, 500, 0.6);
  const size_t all_pairs = docs.size() * (docs.size() - 1) / 2;
  EXPECT_LT(candidates.size(), all_pairs / 4);
}

// The streaming join must emit exactly the batch join's candidate set,
// each pair exactly once.
class StreamingJoinTest : public ::testing::TestWithParam<double> {};

TEST_P(StreamingJoinTest, AgreesWithBatchJoin) {
  const double threshold = GetParam();
  Rng rng(static_cast<uint64_t>(threshold * 100) + 3);
  constexpr int32_t kNumTokens = 30;
  for (int trial = 0; trial < 10; ++trial) {
    Docs docs;
    const size_t num_docs = 5 + rng.Uniform(40);
    for (size_t d = 0; d < num_docs; ++d) {
      std::set<int32_t> tokens;
      const size_t size = 1 + rng.Uniform(10);
      while (tokens.size() < size) {
        tokens.insert(static_cast<int32_t>(rng.Uniform(kNumTokens)));
      }
      docs.emplace_back(tokens.begin(), tokens.end());
    }
    const auto batch = PrefixFilterSelfJoin(docs, kNumTokens, threshold);
    Pairs streamed;
    PrefixFilterSelfJoinStreaming(docs, kNumTokens, threshold,
                                  [&](int32_t a, int32_t b) {
                                    streamed.emplace_back(a, b);
                                  });
    // No duplicates even before sorting.
    Pairs sorted = streamed;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
    EXPECT_EQ(sorted, batch) << "threshold " << threshold << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, StreamingJoinTest,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8, 1.0));

TEST(StreamingJoinTest, EmptyCorpusEmitsNothing) {
  int calls = 0;
  PrefixFilterSelfJoinStreaming({}, 10, 0.5, [&](int32_t, int32_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

// The sharded join, with per-shard buffers concatenated in shard index
// order, must reproduce the serial streaming emission *sequence* exactly —
// for every shard count and pool size. This is the determinism invariant
// the parallel edge join relies on.
class ShardedJoinTest : public ::testing::TestWithParam<double> {};

TEST_P(ShardedJoinTest, ShardOrderedConcatenationMatchesStreaming) {
  const double threshold = GetParam();
  Rng rng(static_cast<uint64_t>(threshold * 100) + 11);
  constexpr int32_t kNumTokens = 30;
  for (int trial = 0; trial < 5; ++trial) {
    Docs docs;
    const size_t num_docs = 5 + rng.Uniform(40);
    for (size_t d = 0; d < num_docs; ++d) {
      std::set<int32_t> tokens;
      const size_t size = 1 + rng.Uniform(10);
      while (tokens.size() < size) {
        tokens.insert(static_cast<int32_t>(rng.Uniform(kNumTokens)));
      }
      docs.emplace_back(tokens.begin(), tokens.end());
    }
    Pairs streamed;
    PrefixFilterSelfJoinStreaming(docs, kNumTokens, threshold,
                                  [&](int32_t a, int32_t b) {
                                    streamed.emplace_back(a, b);
                                  });
    for (const size_t num_shards : {size_t{1}, size_t{3}, size_t{8}, num_docs + 5}) {
      for (const size_t pool_threads : {size_t{0}, size_t{2}, size_t{5}}) {
        std::unique_ptr<ThreadPool> pool;
        if (pool_threads > 0) pool = std::make_unique<ThreadPool>(pool_threads);
        std::vector<Pairs> per_shard(num_shards);
        PrefixFilterSelfJoinSharded(
            docs, kNumTokens, threshold, pool.get(), num_shards,
            [&](size_t shard, int32_t a, int32_t b) {
              per_shard[shard].emplace_back(a, b);
            });
        Pairs concatenated;
        for (const Pairs& shard : per_shard) {
          concatenated.insert(concatenated.end(), shard.begin(), shard.end());
        }
        EXPECT_EQ(concatenated, streamed)
            << "threshold " << threshold << " trial " << trial << " shards "
            << num_shards << " threads " << pool_threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ShardedJoinTest,
                         ::testing::Values(0.2, 0.5, 0.8));

TEST(ShardedJoinTest, EmptyCorpusEmitsNothing) {
  int calls = 0;
  PrefixFilterSelfJoinSharded({}, 10, 0.5, nullptr, 4,
                              [&](size_t, int32_t, int32_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(PrefixFilterTest, CandidatesSortedAndUnique) {
  Rng rng(7);
  Docs docs;
  for (int d = 0; d < 50; ++d) {
    std::set<int32_t> tokens;
    while (tokens.size() < 4) tokens.insert(static_cast<int32_t>(rng.Uniform(20)));
    docs.emplace_back(tokens.begin(), tokens.end());
  }
  const auto candidates = PrefixFilterSelfJoin(docs, 20, 0.4);
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
  EXPECT_TRUE(std::adjacent_find(candidates.begin(), candidates.end()) ==
              candidates.end());
  for (const auto& [a, b] : candidates) EXPECT_LT(a, b);
}

}  // namespace
}  // namespace grouplink
