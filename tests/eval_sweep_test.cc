#include "eval/sweep.h"

#include <gtest/gtest.h>

#include "core/linkage_engine.h"
#include "data/bibliographic_generator.h"

namespace grouplink {
namespace {

using Pairs = std::vector<std::pair<int32_t, int32_t>>;

TEST(ThresholdSweepTest, BasicPartition) {
  const std::vector<ScoredPair> scored = {
      {0, 1, 0.9}, {0, 2, 0.5}, {1, 2, 0.1}};
  const Pairs truth = {{0, 1}, {0, 2}};
  const auto points = ThresholdSweep(scored, truth, {0.0, 0.4, 0.8, 1.0});
  ASSERT_EQ(points.size(), 4u);
  // t=0.0: all three predicted -> P=2/3, R=1.
  EXPECT_NEAR(points[0].metrics.precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(points[0].metrics.recall, 1.0);
  // t=0.4: two predicted, both true -> perfect.
  EXPECT_DOUBLE_EQ(points[1].metrics.f1, 1.0);
  // t=0.8: only (0,1) -> P=1, R=0.5.
  EXPECT_DOUBLE_EQ(points[2].metrics.precision, 1.0);
  EXPECT_DOUBLE_EQ(points[2].metrics.recall, 0.5);
  // t=1.0: nothing predicted.
  EXPECT_EQ(points[3].metrics.true_positives, 0u);
}

TEST(ThresholdSweepTest, RecallMonotoneNonIncreasing) {
  const std::vector<ScoredPair> scored = {
      {0, 1, 0.3}, {0, 2, 0.6}, {1, 2, 0.9}, {2, 3, 0.2}};
  const Pairs truth = {{0, 1}, {1, 2}, {2, 3}};
  std::vector<double> thresholds;
  for (double t = 0.0; t <= 1.0; t += 0.05) thresholds.push_back(t);
  const auto points = ThresholdSweep(scored, truth, thresholds);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].metrics.recall, points[i - 1].metrics.recall + 1e-12);
  }
}

TEST(BestF1ThresholdTest, PicksOptimum) {
  const std::vector<ScoredPair> scored = {
      {0, 1, 0.9}, {0, 2, 0.5}, {1, 2, 0.1}};
  const Pairs truth = {{0, 1}, {0, 2}};
  EXPECT_DOUBLE_EQ(BestF1Threshold(scored, truth, {0.0, 0.4, 0.8}), 0.4);
}

TEST(BestF1ThresholdTest, EmptyThresholdsReturnsZero) {
  EXPECT_DOUBLE_EQ(BestF1Threshold({}, {}, {}), 0.0);
}

TEST(ScoreCandidatesTest, SweepMatchesPerThresholdRuns) {
  // The score-once sweep must reproduce exactly what full engine runs at
  // each Θ produce.
  BibliographicConfig data_config;
  data_config.num_entities = 40;
  data_config.noise = 0.2;
  data_config.seed = 12;
  const Dataset dataset = GenerateBibliographic(data_config);

  LinkageConfig config;
  config.theta = 0.35;
  auto engine_or = LinkageEngine::Create(&dataset, config);
  ASSERT_TRUE(engine_or.ok());
  LinkageEngine& engine = *engine_or;
  const auto scored = engine.ScoreCandidates(GroupMeasureKind::kBm);
  ASSERT_FALSE(scored.empty());

  const auto truth = dataset.TruePairs();
  for (const double threshold : {0.1, 0.3, 0.5}) {
    // Reference: a full run at this Θ.
    LinkageConfig run_config = config;
    run_config.group_threshold = threshold;
    const auto reference = RunGroupLinkage(dataset, run_config);
    ASSERT_TRUE(reference.ok());
    const PairMetrics reference_metrics =
        EvaluatePairs(reference->linked_pairs, truth);

    const auto points = ThresholdSweep(scored, truth, {threshold});
    EXPECT_NEAR(points[0].metrics.precision, reference_metrics.precision, 1e-12)
        << threshold;
    EXPECT_NEAR(points[0].metrics.recall, reference_metrics.recall, 1e-12)
        << threshold;
  }
}

TEST(ScoreCandidatesTest, ScoresWithinUnitInterval) {
  BibliographicConfig data_config;
  data_config.num_entities = 30;
  const Dataset dataset = GenerateBibliographic(data_config);
  auto engine_or = LinkageEngine::Create(&dataset, LinkageConfig{});
  ASSERT_TRUE(engine_or.ok());
  LinkageEngine& engine = *engine_or;
  for (const GroupMeasureKind measure :
       {GroupMeasureKind::kBm, GroupMeasureKind::kGreedy,
        GroupMeasureKind::kUpperBound, GroupMeasureKind::kSingleBest}) {
    for (const ScoredPair& pair : engine.ScoreCandidates(measure)) {
      EXPECT_GE(pair.score, 0.0);
      EXPECT_LE(pair.score, 1.0 + 1e-9);
      EXPECT_LT(pair.g1, pair.g2);
    }
  }
}

}  // namespace
}  // namespace grouplink
