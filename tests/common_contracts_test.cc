// Tests for the GL_DCHECK debug-contract family and the library contracts
// built on it. NDEBUG is undefined before including logging.h, so the
// macros expanded in THIS translation unit are always the active flavor,
// whatever the build type. Contracts compiled into the library itself
// (inverted index, matcher, union-find) follow the library's build type;
// those tests consult DchecksEnabled() and skip in Release builds, where
// the contracts are compiled out by design.
#undef NDEBUG
#include "common/logging.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/union_find.h"
#include "index/inverted_index.h"
#include "matching/bipartite_graph.h"
#include "matching/hungarian.h"

namespace grouplink {
namespace {

TEST(DcheckActiveTest, PassingConditionIsSilent) {
  GL_DCHECK(1 + 1 == 2);
  GL_DCHECK_EQ(4, 4);
  GL_DCHECK_LE(3, 3);
  GL_DCHECK_LT(3, 4);
  GL_DCHECK_GE(4, 3);
  GL_DCHECK_GT(4, 3);
  GL_DCHECK_NE(4, 3);
}

TEST(DcheckActiveTest, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  const auto bump = [&calls] {
    ++calls;
    return true;
  };
  GL_DCHECK(bump());
  EXPECT_EQ(calls, 1);
}

TEST(DcheckActiveDeathTest, FiresOnViolation) {
  EXPECT_DEATH(GL_DCHECK(2 + 2 == 5), "Check failed: 2 \\+ 2 == 5");
}

TEST(DcheckActiveDeathTest, ComparisonMacrosPrintBothValues) {
  EXPECT_DEATH(GL_DCHECK_LE(3, 2), "3 vs 2");
  EXPECT_DEATH(GL_DCHECK_EQ(7, 9), "7 vs 9");
}

TEST(DcheckActiveDeathTest, StreamsExtraContext) {
  EXPECT_DEATH(GL_DCHECK(false) << "shard " << 4 << " broke", "shard 4 broke");
}

// --- Library contracts: planted violations must be caught when the
// library itself was compiled with contracts enabled. ---

#define SKIP_UNLESS_LIBRARY_CONTRACTS()                                    \
  if (!DchecksEnabled()) {                                                 \
    GTEST_SKIP() << "library built with NDEBUG; contracts compiled out";   \
  }

TEST(LibraryContractsDeathTest, UnsortedDocumentTokensCaught) {
  SKIP_UNLESS_LIBRARY_CONTRACTS();
  InvertedIndex index;
  EXPECT_DEATH((void)index.AddDocument({3, 1, 2}), "sorted");
}

TEST(LibraryContractsDeathTest, DuplicateDocumentTokensCaught) {
  SKIP_UNLESS_LIBRARY_CONTRACTS();
  InvertedIndex index;
  EXPECT_DEATH((void)index.AddDocument({1, 1, 2}), "unique");
}

TEST(LibraryContractsDeathTest, RaggedWeightMatrixCaught) {
  SKIP_UNLESS_LIBRARY_CONTRACTS();
  const std::vector<std::vector<double>> ragged = {{0.5, 0.5}, {0.5}};
  EXPECT_DEATH((void)HungarianMaxWeightMatchingDense(ragged),
               "rectangular, finite");
}

TEST(LibraryContractsDeathTest, NonFiniteWeightCaught) {
  SKIP_UNLESS_LIBRARY_CONTRACTS();
  const double nan = std::nan("");
  const std::vector<std::vector<double>> poisoned = {{0.5, nan}, {0.5, 0.5}};
  EXPECT_DEATH((void)HungarianMaxWeightMatchingDense(poisoned),
               "rectangular, finite");
}

TEST(LibraryContractsDeathTest, UnionFindOutOfBoundsCaught) {
  SKIP_UNLESS_LIBRARY_CONTRACTS();
  UnionFind uf(3);
  EXPECT_DEATH((void)uf.Find(7), "Check failed");
}

// The predicate behind the posting-sortedness contract is plain code, so
// its semantics are testable in every build type.
TEST(LibraryContractsTest, PostingsAreSortedHoldsOnHealthyIndex) {
  InvertedIndex index;
  (void)index.AddDocument({1, 2, 5});
  (void)index.AddDocument({2, 3});
  (void)index.AddDocument({1, 5});
  EXPECT_TRUE(index.PostingsAreSorted());
  index.RemoveDocument(1);
  index.Compact();
  EXPECT_TRUE(index.PostingsAreSorted());
}

}  // namespace
}  // namespace grouplink
