// The supervised runtime, duty by duty, driven deterministically through
// TickForTesting: persist retry against transient fsync failures, the
// storage breaker degrading to in-RAM serving and recovering through a
// half-open probe, watchdog re-arming of failed refreshes, poison-batch
// quarantine exactness, admission-gate shedding, and the health surface.
#include "service/resilience/supervised_service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "data/bibliographic_generator.h"
#include "storage/page_file.h"

namespace grouplink {
namespace resilience {
namespace {

Dataset MakeCorpus(int32_t entities, uint64_t seed) {
  BibliographicConfig config;
  config.num_entities = entities;
  config.noise = 0.25;
  config.num_topics = 5;
  config.offtopic_word_prob = 0.5;
  config.seed = seed;
  return GenerateBibliographic(config);
}

std::string StorePath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Deterministic-by-default config: no background watchdog (tests tick by
// hand), tiny real backoffs, no jitter.
SupervisedConfig TestConfig() {
  SupervisedConfig config;
  config.service.engine.theta = 0.35;
  config.service.engine.group_threshold = 0.2;
  config.persist_retry.max_attempts = 4;
  config.persist_retry.initial_backoff_ms = 0.1;
  config.persist_retry.jitter = 0.0;
  config.refresh_rearm.initial_backoff_ms = 0.0;
  config.refresh_rearm.jitter = 0.0;
  config.enable_watchdog = false;
  return config;
}

TEST(SupervisedConfigTest, ValidateRejectsBadLadders) {
  SupervisedConfig config = TestConfig();
  config.quarantine_after_failures = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = TestConfig();
  config.give_up_after_failures = config.quarantine_after_failures - 1;
  EXPECT_FALSE(config.Validate().ok());
  config = TestConfig();
  config.watchdog_interval_ms = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  EXPECT_TRUE(TestConfig().Validate().ok());
  // Bad sub-configs are rejected through Create, not a GL_CHECK abort.
  config = TestConfig();
  config.persist_retry.max_attempts = 0;
  EXPECT_EQ(SupervisedService::Create(MakeCorpus(5, 1), config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SupervisedServiceTest, HealthyServiceReportsHealthy) {
  auto service = SupervisedService::Create(MakeCorpus(12, 3), TestConfig());
  ASSERT_TRUE(service.ok()) << service.status().message();
  const ServiceHealth health = service->Health();
  EXPECT_EQ(health.state, HealthState::kHealthy);
  EXPECT_GT(health.published_epoch, 0);
  EXPECT_GE(health.epoch_age_ms, 0.0);
  EXPECT_EQ(health.refresh_lag_groups, 0);
  EXPECT_FALSE(health.refresh_in_flight);
  EXPECT_EQ(health.storage_breaker, BreakerState::kClosed);
  EXPECT_TRUE(health.last_refresh_status.ok());
  EXPECT_TRUE(health.last_persist_status.ok());
  EXPECT_EQ(health.shed_queries, 0);
  EXPECT_EQ(health.quarantined_batches, 0);

  (void)service->AddGroup("fresh arrival", {"some fresh record text"});
  EXPECT_GT(service->Health().refresh_lag_groups, 0);
}

TEST(SupervisedServiceTest, PersistRetryRecoversFromTransientFailures) {
  ScopedFaultClear clear;
  SupervisedConfig config = TestConfig();
  config.service.persist_path = StorePath("retry.glsnap");
  auto service = SupervisedService::Create(MakeCorpus(12, 5), config);
  ASSERT_TRUE(service.ok()) << service.status().message();
  EXPECT_EQ(service->last_persisted_epoch(), 0);

  // The disk hiccups twice, then heals: the retry ladder must ride it out
  // within one supervision tick.
  FaultInjector::Default().Arm(faults::kFailFsync, FaultSpec::FailNTimes(2));
  service->TickForTesting();

  EXPECT_EQ(service->last_persisted_epoch(), service->inner().published_epoch());
  EXPECT_TRUE(service->inner().last_persist_status().ok());
  const ServiceHealth health = service->Health();
  EXPECT_GE(health.persist_retries, 1);
  EXPECT_EQ(health.persist_lag_epochs, 0);
  EXPECT_EQ(health.storage_breaker, BreakerState::kClosed);
  EXPECT_EQ(health.state, HealthState::kHealthy);
  ASSERT_TRUE(storage::RemoveFile(config.service.persist_path).ok());
}

TEST(SupervisedServiceTest, DeadStoreTripsBreakerAndDegradesToRamServing) {
  ScopedFaultClear clear;
  SupervisedConfig config = TestConfig();
  config.service.persist_path = StorePath("dead.glsnap");
  config.persist_retry.max_attempts = 2;
  config.storage_breaker.failure_threshold = 1;
  config.storage_breaker.open_cooldown_ms = 1e9;  // Never probes in-test.
  auto service = SupervisedService::Create(MakeCorpus(12, 7), config);
  ASSERT_TRUE(service.ok());

  // The disk is dead for good.
  FaultInjector::Default().Arm(faults::kFailFsync, FaultSpec{});
  service->TickForTesting();
  EXPECT_EQ(service->breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(service->last_persisted_epoch(), 0);

  // While open, ticks stop touching the storage tier entirely.
  const int64_t hits_after_trip = FaultInjector::Default().hits(faults::kFailFsync);
  service->TickForTesting();
  service->TickForTesting();
  EXPECT_EQ(FaultInjector::Default().hits(faults::kFailFsync), hits_after_trip);

  // Serving is untouched: queries answer from the published epoch.
  const auto result = service->LinkQuery({"probe", {"some record text"}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->epoch, service->inner().published_epoch());

  const ServiceHealth health = service->Health();
  EXPECT_EQ(health.state, HealthState::kDegraded);
  EXPECT_EQ(health.storage_breaker, BreakerState::kOpen);
  EXPECT_GE(health.persist_lag_epochs, 1);
}

TEST(SupervisedServiceTest, HalfOpenProbeRecoversTheStorageTier) {
  ScopedFaultClear clear;
  SupervisedConfig config = TestConfig();
  config.service.persist_path = StorePath("probe.glsnap");
  config.persist_retry.max_attempts = 1;
  config.storage_breaker.failure_threshold = 1;
  config.storage_breaker.open_cooldown_ms = 0.0;  // Probe on the next tick.
  auto service = SupervisedService::Create(MakeCorpus(12, 9), config);
  ASSERT_TRUE(service.ok());

  FaultInjector::Default().Arm(faults::kFailFsync, FaultSpec::FailNTimes(1));
  service->TickForTesting();  // Fails once, trips open.
  EXPECT_EQ(service->breaker_state(), BreakerState::kOpen);

  service->TickForTesting();  // Cooldown elapsed: half-open probe succeeds.
  EXPECT_EQ(service->breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(service->last_persisted_epoch(), service->inner().published_epoch());

  const auto transitions = service->breaker_transitions();
  const std::vector<std::pair<BreakerState, BreakerState>> expected = {
      {BreakerState::kClosed, BreakerState::kOpen},
      {BreakerState::kOpen, BreakerState::kHalfOpen},
      {BreakerState::kHalfOpen, BreakerState::kClosed},
  };
  EXPECT_EQ(transitions, expected);
  EXPECT_EQ(service->Health().state, HealthState::kHealthy);
  ASSERT_TRUE(storage::RemoveFile(config.service.persist_path).ok());
}

TEST(SupervisedServiceTest, WatchdogRearmsFailedRefreshesUntilRecovery) {
  ScopedFaultClear clear;
  auto service = SupervisedService::Create(MakeCorpus(12, 11), TestConfig());
  ASSERT_TRUE(service.ok());
  const int64_t epoch_before = service->inner().published_epoch();

  (void)service->AddGroup("pending arrival", {"text awaiting a refresh"});
  // The next two background builds die; the third succeeds.
  FaultInjector::Default().Arm(faults::kRefreshFailure, FaultSpec::FailNTimes(2));
  ASSERT_TRUE(service->RefreshAsync());
  service->WaitForRefresh();
  EXPECT_EQ(service->inner().consecutive_refresh_failures(), 1);
  EXPECT_EQ(service->inner().last_refresh_status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(service->Health().state, HealthState::kDegraded);

  service->TickForTesting();  // Re-arm #1 (fails again).
  service->WaitForRefresh();
  EXPECT_EQ(service->inner().consecutive_refresh_failures(), 2);

  service->TickForTesting();  // Re-arm #2 (succeeds).
  service->WaitForRefresh();
  EXPECT_EQ(service->inner().consecutive_refresh_failures(), 0);
  EXPECT_TRUE(service->inner().last_refresh_status().ok());
  EXPECT_GT(service->inner().published_epoch(), epoch_before);

  const ServiceHealth health = service->Health();
  EXPECT_EQ(health.state, HealthState::kHealthy);
  EXPECT_EQ(health.refresh_rearms, 2);
}

TEST(SupervisedServiceTest, GivingUpGoesUnhealthyAndStopsRearming) {
  ScopedFaultClear clear;
  SupervisedConfig config = TestConfig();
  config.quarantine_after_failures = 2;
  config.give_up_after_failures = 3;
  auto service = SupervisedService::Create(MakeCorpus(12, 13), config);
  ASSERT_TRUE(service.ok());

  (void)service->AddGroup("pending arrival", {"text awaiting a refresh"});
  FaultInjector::Default().Arm(faults::kRefreshFailure, FaultSpec{});  // Forever.
  ASSERT_TRUE(service->RefreshAsync());
  service->WaitForRefresh();
  for (int i = 0; i < 5; ++i) {
    service->TickForTesting();
    service->WaitForRefresh();
  }
  EXPECT_EQ(service->inner().consecutive_refresh_failures(), 3);
  EXPECT_EQ(service->Health().state, HealthState::kUnhealthy);
  // Re-arms stopped at the give-up threshold: 2 re-arms (streak 1 -> 2 -> 3).
  EXPECT_EQ(service->Health().refresh_rearms, 2);
  // Queries still serve the last good epoch.
  EXPECT_TRUE(service->LinkQuery({"probe", {"text"}}).ok());
}

TEST(SupervisedServiceTest, PoisonBatchIsQuarantinedExactly) {
  ScopedFaultClear clear;
  SupervisedConfig config = TestConfig();
  config.quarantine_after_failures = 2;
  config.give_up_after_failures = 10;
  auto service = SupervisedService::Create(MakeCorpus(15, 15), config);
  ASSERT_TRUE(service.ok());

  // A healthy arrival and a poison batch arrive together.
  (void)service->AddGroup("healthy arrival", {"benign record text tokens"});
  const std::string poison_label =
      std::string(faults::kPoisonLabelMarker) + "storm1";
  const auto poison =
      service->AddGroup(poison_label, {"poison record text payload"});

  FaultInjector::Default().Arm(faults::kPoisonBatch, FaultSpec{});
  ASSERT_TRUE(service->RefreshAsync());
  service->WaitForRefresh();
  EXPECT_EQ(service->inner().consecutive_refresh_failures(), 1);
  EXPECT_EQ(service->inner().last_refresh_culprit(), poison_label);

  service->TickForTesting();  // Streak 1: re-arm only (fails again).
  service->WaitForRefresh();
  EXPECT_EQ(service->inner().consecutive_refresh_failures(), 2);
  EXPECT_TRUE(service->quarantined_labels().empty());

  service->TickForTesting();  // Streak 2: quarantine, then re-arm succeeds.
  service->WaitForRefresh();

  // Exactness: exactly the poison batch was quarantined, nothing else.
  EXPECT_EQ(service->quarantined_labels(),
            std::vector<std::string>{poison_label});
  EXPECT_EQ(service->Health().quarantined_batches, 1);
  // With the poison gone the refresh heals even though the fault point
  // stays armed (nothing poisonous left to blame).
  EXPECT_EQ(service->inner().consecutive_refresh_failures(), 0);
  EXPECT_EQ(service->Health().state, HealthState::kHealthy);
  // The quarantined group is gone from the link set.
  for (const auto& [a, b] : service->inner().linked_pairs()) {
    EXPECT_NE(a, poison.group_index);
    EXPECT_NE(b, poison.group_index);
  }
  // A second tick must not quarantine anything further.
  service->TickForTesting();
  EXPECT_EQ(service->Health().quarantined_batches, 1);
}

TEST(SupervisedServiceTest, InfeasibleDeadlinesAreShedBeforeTheSnapshot) {
  SupervisedConfig config = TestConfig();
  config.admission.min_feasible_deadline_ms = 5.0;
  auto service = SupervisedService::Create(MakeCorpus(12, 17), config);
  ASSERT_TRUE(service.ok());

  SupervisedService::QueryOptions options;
  options.deadline_ms = 1.0;  // Below the floor: shed up front.
  const auto shed = service->LinkQuery({"probe", {"record text"}}, options);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(service->Health().shed_queries, 1);

  // An admitted query answers exactly like the raw service.
  options.deadline_ms = 0.0;
  const auto served = service->LinkQuery({"probe", {"record text"}}, options);
  ASSERT_TRUE(served.ok());
  const auto raw = service->inner().LinkQuery({"probe", {"record text"}});
  EXPECT_EQ(served->linked_to, raw.linked_to);
  EXPECT_EQ(served->epoch, raw.epoch);
  EXPECT_EQ(service->Health().shed_queries, 1);
}

TEST(SupervisedServiceTest, StalledRefreshIsDetectedAndCountedOnce) {
  ScopedFaultClear clear;
  SupervisedConfig config = TestConfig();
  config.stall_timeout_ms = 20.0;
  auto service = SupervisedService::Create(MakeCorpus(12, 19), config);
  ASSERT_TRUE(service.ok());

  (void)service->AddGroup("pending arrival", {"text awaiting a refresh"});
  FaultSpec stall;
  stall.delay_ms = 100;
  FaultInjector::Default().Arm(faults::kStallRefresh, stall);
  ASSERT_TRUE(service->RefreshAsync());
  while (service->inner().refresh_in_flight()) {
    service->TickForTesting();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  service->WaitForRefresh();
  const ServiceHealth health = service->Health();
  EXPECT_EQ(health.refresh_stalls, 1);  // Counted once, not once per tick.
  EXPECT_FALSE(health.refresh_stalled);
  EXPECT_EQ(health.state, HealthState::kHealthy);  // Recovered.
}

TEST(SupervisedServiceTest, BackgroundWatchdogPersistsWithoutBeingAsked) {
  ScopedFaultClear clear;
  SupervisedConfig config = TestConfig();
  config.service.persist_path = StorePath("background.glsnap");
  config.enable_watchdog = true;
  config.watchdog_interval_ms = 2.0;
  // One transient failure to prove the retry ladder runs in background too.
  FaultInjector::Default().Arm(faults::kFailFsync, FaultSpec::FailNTimes(1));
  auto service = SupervisedService::Create(MakeCorpus(12, 21), config);
  ASSERT_TRUE(service.ok());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service->last_persisted_epoch() != service->inner().published_epoch() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(service->last_persisted_epoch(), service->inner().published_epoch());
  EXPECT_EQ(service->Health().state, HealthState::kHealthy);
  ASSERT_TRUE(storage::RemoveFile(config.service.persist_path).ok());
}

TEST(SupervisedServiceTest, RestoreCountsThePersistedEpochAsPersisted) {
  ScopedFaultClear clear;
  SupervisedConfig config = TestConfig();
  config.service.persist_path = StorePath("restore_supervised.glsnap");
  {
    auto service = SupervisedService::Create(MakeCorpus(12, 23), config);
    ASSERT_TRUE(service.ok());
    service->TickForTesting();  // Persist the seed epoch.
    ASSERT_EQ(service->last_persisted_epoch(),
              service->inner().published_epoch());
  }
  auto restored = SupervisedService::Restore(config);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored->last_persisted_epoch(),
            restored->inner().published_epoch());
  EXPECT_EQ(restored->Health().persist_lag_epochs, 0);
  EXPECT_TRUE(restored->LinkQuery({"probe", {"record text"}}).ok());
  ASSERT_TRUE(storage::RemoveFile(config.service.persist_path).ok());
}

}  // namespace
}  // namespace resilience
}  // namespace grouplink
