// Chaos storm over a live SupervisedService (run under TSan in CI): the
// background watchdog supervises while seeded fault storms rotate
// through the storage tier (fsync failures tripping the breaker),
// generic refresh failures (watchdog re-arms), a poison arrival batch
// (quarantined after the configured streak), and a stalled refresh —
// all with concurrent reader threads hammering queries, snapshots, and
// the health surface. The harness asserts full recovery (health returns
// to kHealthy, every epoch persisted), batch-equivalence of every epoch
// any reader observed (including post-quarantine epochs, where the
// served link set must equal a batch run over the corpus *minus* the
// poison batch), a legal and chained breaker transition log, and
// quarantine exactness (the poison label and nothing else).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "core/linkage_engine.h"
#include "data/bibliographic_generator.h"
#include "service/resilience/supervised_service.h"
#include "storage/page_file.h"

namespace grouplink {
namespace resilience {
namespace {

Dataset MakeCorpus(int32_t entities, uint64_t seed) {
  BibliographicConfig config;
  config.num_entities = entities;
  config.noise = 0.25;
  config.num_topics = 5;
  config.offtopic_word_prob = 0.5;
  config.seed = seed;
  return GenerateBibliographic(config);
}

std::vector<std::string> GroupTexts(const Dataset& dataset, int32_t group) {
  std::vector<std::string> texts;
  for (const int32_t r : dataset.groups[static_cast<size_t>(group)].record_ids) {
    texts.push_back(dataset.records[static_cast<size_t>(r)].text);
  }
  return texts;
}

void Split(const Dataset& full, int32_t seed_groups, Dataset* seed,
           std::vector<GroupArrival>* arrivals) {
  for (int32_t g = 0; g < full.num_groups(); ++g) {
    if (g < seed_groups) {
      Group rebased;
      rebased.id = full.groups[static_cast<size_t>(g)].id;
      rebased.label = full.groups[static_cast<size_t>(g)].label;
      for (const int32_t r : full.groups[static_cast<size_t>(g)].record_ids) {
        rebased.record_ids.push_back(static_cast<int32_t>(seed->records.size()));
        seed->records.push_back(full.records[static_cast<size_t>(r)]);
      }
      seed->groups.push_back(std::move(rebased));
    } else {
      arrivals->push_back(
          {full.groups[static_cast<size_t>(g)].label, GroupTexts(full, g)});
    }
  }
  ASSERT_TRUE(seed->Validate().ok());
}

// The corpus a batch engine would see at an adds-only epoch covering the
// first `prefix` arrivals.
Dataset EpochCorpus(const Dataset& seed,
                    const std::vector<GroupArrival>& arrivals, size_t prefix) {
  Dataset corpus = seed;
  for (size_t i = 0; i < prefix; ++i) {
    Group group;
    group.id = "a" + std::to_string(i);
    group.label = arrivals[i].label;
    for (const std::string& text : arrivals[i].record_texts) {
      Record record;
      record.id = group.id + "r" + std::to_string(group.record_ids.size());
      record.text = text;
      group.record_ids.push_back(static_cast<int32_t>(corpus.records.size()));
      corpus.records.push_back(std::move(record));
    }
    corpus.groups.push_back(std::move(group));
  }
  return corpus;
}

// Spins (1ms naps) until `done` holds or the deadline passes; returns the
// final verdict so the caller's ASSERT names the phase that wedged.
bool PollUntil(const std::function<bool()>& done, int timeout_ms = 30000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

struct ReaderLog {
  size_t queries = 0;
  size_t served = 0;
  size_t shed = 0;
  bool consistency_ok = true;
  bool monotone_ok = true;
  bool status_ok = true;
  // Every distinct epoch this reader observed, retained for the post-hoc
  // batch-equivalence proof.
  std::map<int64_t, std::shared_ptr<const CorpusSnapshot>> epochs;
};

TEST(ServiceChaosTest, StormOfEveryFaultClassRecoversAndServesProvableEpochs) {
  ScopedFaultClear clear;
  const Dataset full = MakeCorpus(30, 20260809);
  Dataset seed;
  std::vector<GroupArrival> arrivals;
  Split(full, full.num_groups() / 3, &seed, &arrivals);
  ASSERT_GE(arrivals.size(), 8u);

  SupervisedConfig config;
  config.service.engine.theta = 0.35;
  config.service.engine.group_threshold = 0.2;
  config.service.streaming.refresh_every_n_groups = 4;
  config.service.async_refresh = true;
  config.service.persist_path = ::testing::TempDir() + "/chaos.glsnap";
  config.persist_retry.max_attempts = 2;
  config.persist_retry.initial_backoff_ms = 0.1;
  config.persist_retry.jitter = 0.1;
  config.persist_retry.jitter_seed = 1;
  config.storage_breaker.failure_threshold = 2;
  config.storage_breaker.open_cooldown_ms = 20.0;
  config.watchdog_interval_ms = 2.0;
  config.stall_timeout_ms = 15.0;
  config.quarantine_after_failures = 2;
  config.give_up_after_failures = 20;  // The storm heals long before this.
  config.refresh_rearm.initial_backoff_ms = 0.5;
  config.refresh_rearm.jitter = 0.0;
  auto service_or = SupervisedService::Create(seed, config);
  ASSERT_TRUE(service_or.ok()) << service_or.status().message();
  SupervisedService& service = *service_or;
  auto& injector = FaultInjector::Default();

  // Readers run for the whole storm: admission-gated queries plus raw
  // snapshot retention (consistency + monotone epochs) plus concurrent
  // health polls.
  std::vector<GroupArrival> probes(arrivals.begin(), arrivals.begin() + 3);
  probes.push_back({"replay", GroupTexts(seed, 0)});
  constexpr size_t kReaders = 3;
  std::vector<ReaderLog> logs(kReaders);
  std::atomic<bool> stop{false};
  ThreadPool readers(kReaders);
  for (size_t reader = 0; reader < kReaders; ++reader) {
    ReaderLog* log = &logs[reader];
    const SupervisedService* svc = &service;
    const std::vector<GroupArrival>* probe_set = &probes;
    readers.Submit([log, svc, probe_set, &stop] {
      int64_t last_epoch = -1;
      while (!stop.load(std::memory_order_acquire)) {
        for (const GroupArrival& probe : *probe_set) {
          const auto snapshot = svc->inner().snapshot();
          log->consistency_ok &= snapshot->CheckConsistency();
          log->monotone_ok &= snapshot->epoch() >= last_epoch;
          last_epoch = snapshot->epoch();
          log->epochs.emplace(snapshot->epoch(), snapshot);

          const auto answer = svc->LinkQuery(probe);
          if (answer.ok()) {
            ++log->served;
          } else if (answer.status().code() == StatusCode::kUnavailable) {
            ++log->shed;  // The only legal refusal: admission shedding.
          } else {
            log->status_ok = false;
          }
          (void)svc->Health();  // Health must be safe mid-storm.
          ++log->queries;
        }
      }
    });
  }

  // --- Phase A: healthy streaming (policy refreshes swap under load). ---
  const size_t half = arrivals.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    (void)service.AddGroup(arrivals[i].label, arrivals[i].record_texts);
  }
  service.WaitForRefresh();

  // --- Phase B: storage storm. Six fsync failures in a row: enough to
  // defeat the 2-attempt retry twice (breaker trips open) and to fail
  // probes until the budget runs dry, after which a probe closes it. ---
  injector.Arm(faults::kFailFsync, FaultSpec::FailNTimes(6));
  (void)service.AddGroup(arrivals[half].label, arrivals[half].record_texts);
  service.Refresh();  // A fresh epoch the watchdog must now fight to persist.
  ASSERT_TRUE(PollUntil([&] {
    return service.breaker_state() == BreakerState::kClosed &&
           service.last_persisted_epoch() == service.inner().published_epoch();
  })) << "storage tier never recovered from the fsync storm";
  size_t trips = 0;
  for (const auto& [from, to] : service.breaker_transitions()) {
    if (from == BreakerState::kClosed && to == BreakerState::kOpen) ++trips;
  }
  EXPECT_GE(trips, 1u) << "the fsync storm should have tripped the breaker";

  // --- Phase C: two generic refresh-build failures; the watchdog must
  // re-arm through them without quarantining anyone (no culprit). ---
  injector.Arm(faults::kRefreshFailure, FaultSpec::FailNTimes(2));
  for (size_t i = half + 1; i < arrivals.size(); ++i) {
    (void)service.AddGroup(arrivals[i].label, arrivals[i].record_texts);
  }
  (void)service.RefreshAsync();
  ASSERT_TRUE(PollUntil([&] {
    return service.inner().consecutive_refresh_failures() == 0 &&
           !service.inner().refresh_in_flight() &&
           service.inner().groups_since_refresh() == 0;
  })) << "watchdog never re-armed past the generic refresh failures";
  EXPECT_TRUE(service.quarantined_labels().empty());

  // --- Phase D: poison batch. Armed *before* the arrival so no epoch can
  // ever publish with the poison group alive. ---
  injector.Arm(faults::kPoisonBatch, FaultSpec{});
  const std::string poison_label =
      std::string(faults::kPoisonLabelMarker) + "storm";
  const auto poison =
      service.AddGroup(poison_label, {"poison payload of the storm"});
  (void)service.RefreshAsync();
  ASSERT_TRUE(PollUntil([&] {
    return service.quarantined_labels().size() == 1 &&
           service.inner().consecutive_refresh_failures() == 0 &&
           !service.inner().refresh_in_flight() &&
           service.inner().groups_since_refresh() == 0;
  })) << "poison batch was never quarantined away";
  injector.Disarm(faults::kPoisonBatch);

  // --- Phase E: one stalled refresh; the watchdog must notice. ---
  FaultSpec stall;
  stall.delay_ms = 40.0;
  stall.max_fires = 1;
  injector.Arm(faults::kStallRefresh, stall);
  (void)service.RefreshAsync();
  ASSERT_TRUE(PollUntil([&] {
    return service.Health().refresh_stalls >= 1 &&
           !service.inner().refresh_in_flight();
  })) << "stalled refresh was never detected";

  // --- Calm after the storm: everything must converge back to healthy. ---
  injector.DisarmAll();
  service.Refresh();
  ASSERT_TRUE(PollUntil([&] {
    const ServiceHealth health = service.Health();
    return health.state == HealthState::kHealthy &&
           health.persist_lag_epochs == 0;
  })) << "service never returned to kHealthy after the storm";
  stop.store(true, std::memory_order_release);
  readers.Wait();

  const ServiceHealth health = service.Health();
  EXPECT_EQ(health.consecutive_refresh_failures, 0);
  EXPECT_TRUE(health.last_refresh_status.ok());
  EXPECT_TRUE(health.last_persist_status.ok());
  EXPECT_GE(health.persist_retries, 1);
  EXPECT_EQ(health.quarantined_batches, 1);
  EXPECT_EQ(health.inflight_queries, 0);

  // Quarantine exactness: the poison label, nothing else.
  EXPECT_EQ(service.quarantined_labels(),
            std::vector<std::string>{poison_label});

  // Breaker log: every transition legal, and the log chains (each step
  // starts where the previous one ended, beginning from closed).
  const auto transitions = service.breaker_transitions();
  ASSERT_FALSE(transitions.empty());
  BreakerState at = BreakerState::kClosed;
  for (const auto& [from, to] : transitions) {
    EXPECT_EQ(from, at) << "transition log does not chain";
    EXPECT_TRUE(CircuitBreaker::IsLegalTransition(from, to))
        << BreakerStateName(from) << " -> " << BreakerStateName(to);
    at = to;
  }
  EXPECT_EQ(at, BreakerState::kClosed) << "breaker did not end closed";

  // Reader-side invariants across the whole storm.
  std::map<int64_t, std::shared_ptr<const CorpusSnapshot>> epochs;
  for (size_t reader = 0; reader < kReaders; ++reader) {
    EXPECT_TRUE(logs[reader].consistency_ok) << "reader " << reader;
    EXPECT_TRUE(logs[reader].monotone_ok) << "reader " << reader;
    EXPECT_TRUE(logs[reader].status_ok) << "reader " << reader;
    EXPECT_GT(logs[reader].served, 0u) << "reader " << reader;
    epochs.insert(logs[reader].epochs.begin(), logs[reader].epochs.end());
  }
  EXPECT_GE(epochs.size(), 2u);

  // Batch-equivalence of every served epoch. The workload is adds in
  // arrival order plus the single quarantine removal, and the poison
  // group holds the highest index, so:
  //   * an epoch without the poison group is an adds-only prefix — the
  //     group count identifies the corpus exactly;
  //   * an epoch containing it must show it dead (no epoch may publish
  //     while the poison is live) and serve exactly the link set of a
  //     batch run over the corpus minus the poison batch (the identity
  //     index mapping, since nothing arrived after it).
  const auto final_snapshot = service.inner().snapshot();
  epochs.emplace(final_snapshot->epoch(), final_snapshot);
  const int32_t base = seed.num_groups();
  for (const auto& [epoch, snapshot] : epochs) {
    const size_t prefix = static_cast<size_t>(snapshot->num_groups() - base);
    ASSERT_LE(prefix, arrivals.size() + 1);
    if (prefix > arrivals.size()) {
      ASSERT_FALSE(snapshot->IsAlive(poison.group_index))
          << "epoch " << epoch << " published with the poison group live";
    }
    const Dataset corpus =
        EpochCorpus(seed, arrivals, std::min(prefix, arrivals.size()));
    const auto batch = RunGroupLinkage(corpus, snapshot->engine_config());
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(snapshot->linked_pairs(), batch->linked_pairs)
        << "epoch " << epoch << " (prefix " << prefix << ")";
  }
  // The final epoch covers the entire stream (minus the quarantined
  // batch) and made it to disk.
  EXPECT_EQ(final_snapshot->num_groups(), full.num_groups() + 1);
  EXPECT_EQ(final_snapshot->num_alive_groups(), full.num_groups());
  EXPECT_EQ(service.last_persisted_epoch(), final_snapshot->epoch());
  ASSERT_TRUE(storage::RemoveFile(config.service.persist_path).ok());
}

}  // namespace
}  // namespace resilience
}  // namespace grouplink
