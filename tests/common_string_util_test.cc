#include "common/string_util.h"

#include <gtest/gtest.h>

namespace grouplink {
namespace {

TEST(AsciiCaseTest, Lower) {
  EXPECT_EQ(AsciiToLower("AbC-12z"), "abc-12z");
  EXPECT_EQ(AsciiToLower(""), "");
}

TEST(AsciiCaseTest, Upper) { EXPECT_EQ(AsciiToUpper("aBc"), "ABC"); }

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(SplitTest, KeepsEmptyPieces) {
  const std::vector<std::string> expected = {"a", "", "b"};
  EXPECT_EQ(Split("a,,b", ','), expected);
}

TEST(SplitTest, SingleField) {
  EXPECT_EQ(Split("abc", ','), std::vector<std::string>{"abc"});
  EXPECT_EQ(Split("", ','), std::vector<std::string>{""});
}

TEST(SplitWhitespaceTest, DropsEmptyPieces) {
  const std::vector<std::string> expected = {"a", "b", "c"};
  EXPECT_EQ(SplitWhitespace("  a \t b\nc "), expected);
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(JoinTest, Joins) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_TRUE(EndsWith("abcdef", "def"));
  EXPECT_FALSE(EndsWith("ef", "def"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(ParseInt64Test, ValidInputs) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64(" 13 ").value(), 13);
  EXPECT_EQ(ParseInt64("0").value(), 0);
}

TEST(ParseInt64Test, InvalidInputs) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("x").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(ParseDoubleTest, ValidInputs) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble(" 0.5 ").value(), 0.5);
}

TEST(ParseDoubleTest, InvalidInputs) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(FormatDoubleTest, FixedDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 3), "3.142");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 2), "-0.50");
}

TEST(ReplaceAllTest, ReplacesEveryOccurrence) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // Non-overlapping, left to right.
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");   // Empty pattern is a no-op.
}

TEST(FingerprintTest, StableAndDistinct) {
  EXPECT_EQ(Fingerprint64("hello"), Fingerprint64("hello"));
  EXPECT_NE(Fingerprint64("hello"), Fingerprint64("hellp"));
  EXPECT_NE(Fingerprint64(""), Fingerprint64("a"));
}

TEST(HashCombineTest, OrderSensitive) {
  const uint64_t a = HashCombine(HashCombine(0, 1), 2);
  const uint64_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace grouplink
