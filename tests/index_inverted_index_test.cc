#include "index/inverted_index.h"

#include <gtest/gtest.h>

namespace grouplink {
namespace {

using Doc = std::vector<int32_t>;

TEST(InvertedIndexTest, SequentialIds) {
  InvertedIndex index;
  EXPECT_EQ(index.AddDocument({0, 1}), 0);
  EXPECT_EQ(index.AddDocument({1, 2}), 1);
  EXPECT_EQ(index.num_documents(), 2);
}

TEST(InvertedIndexTest, PostingsSortedByDocument) {
  InvertedIndex index;
  index.AddDocument({0, 1});
  index.AddDocument({1});
  index.AddDocument({0, 1, 2});
  EXPECT_EQ(index.Postings(1), (Doc{0, 1, 2}));
  EXPECT_EQ(index.Postings(0), (Doc{0, 2}));
  EXPECT_EQ(index.Postings(2), (Doc{2}));
}

TEST(InvertedIndexTest, MissingTokenHasEmptyPostings) {
  InvertedIndex index;
  index.AddDocument({0});
  EXPECT_TRUE(index.Postings(99).empty());
  EXPECT_EQ(index.DocumentFrequency(99), 0);
}

TEST(InvertedIndexTest, DocumentFrequency) {
  InvertedIndex index;
  index.AddDocument({5, 7});
  index.AddDocument({5});
  EXPECT_EQ(index.DocumentFrequency(5), 2);
  EXPECT_EQ(index.DocumentFrequency(7), 1);
}

TEST(InvertedIndexTest, DocumentTokensRoundTrip) {
  InvertedIndex index;
  index.AddDocument({2, 4, 6});
  EXPECT_EQ(index.DocumentTokens(0), (Doc{2, 4, 6}));
}

TEST(InvertedIndexTest, DocumentsSharingToken) {
  InvertedIndex index;
  index.AddDocument({0, 1});     // doc 0
  index.AddDocument({2});        // doc 1
  index.AddDocument({1, 2});     // doc 2
  index.AddDocument({3});        // doc 3
  EXPECT_EQ(index.DocumentsSharingToken({1}), (Doc{0, 2}));
  EXPECT_EQ(index.DocumentsSharingToken({1, 2}), (Doc{0, 1, 2}));
  EXPECT_TRUE(index.DocumentsSharingToken({9}).empty());
  EXPECT_TRUE(index.DocumentsSharingToken({}).empty());
}

TEST(InvertedIndexTest, EmptyDocumentAllowed) {
  InvertedIndex index;
  index.AddDocument({});
  EXPECT_EQ(index.num_documents(), 1);
  EXPECT_TRUE(index.DocumentTokens(0).empty());
}

TEST(InvertedIndexTest, RemovedDocumentVanishesFromSharingQueries) {
  InvertedIndex index;
  index.AddDocument({0, 1});  // doc 0
  index.AddDocument({1, 2});  // doc 1
  index.AddDocument({1});     // doc 2
  index.RemoveDocument(1);
  EXPECT_TRUE(index.IsRemoved(1));
  EXPECT_FALSE(index.IsRemoved(0));
  EXPECT_EQ(index.num_removed(), 1);
  // Sharing queries filter tombstones immediately...
  EXPECT_EQ(index.DocumentsSharingToken({1}), (Doc{0, 2}));
  EXPECT_TRUE(index.DocumentsSharingToken({2}).empty());
  // ...while raw postings keep the entry until Compact().
  EXPECT_EQ(index.Postings(1), (Doc{0, 1, 2}));
  // Removing twice is a no-op.
  index.RemoveDocument(1);
  EXPECT_EQ(index.num_removed(), 1);
}

TEST(InvertedIndexTest, CompactErasesTombstonedPostings) {
  InvertedIndex index;
  index.AddDocument({0, 1});  // doc 0
  index.AddDocument({1, 2});  // doc 1
  index.AddDocument({2});     // doc 2
  index.RemoveDocument(0);
  index.RemoveDocument(2);
  index.Compact();
  EXPECT_EQ(index.Postings(1), (Doc{1}));
  EXPECT_TRUE(index.Postings(0).empty());  // Posting list fully reclaimed.
  EXPECT_EQ(index.DocumentFrequency(2), 1);
  EXPECT_TRUE(index.DocumentTokens(0).empty());  // Token list reclaimed too.
  EXPECT_EQ(index.DocumentTokens(1), (Doc{1, 2}));
  // Ids are never reused: the next document continues the sequence, and
  // removed ids stay dead.
  EXPECT_EQ(index.AddDocument({0}), 3);
  EXPECT_TRUE(index.IsRemoved(0));
  EXPECT_EQ(index.num_removed(), 2);
  EXPECT_EQ(index.DocumentsSharingToken({0}), (Doc{3}));
}

}  // namespace
}  // namespace grouplink
