// End-to-end linkage over a CSV dataset: reads records in the
// SaveDatasetCsv format (record_id,group_id,group_label,entity_id,text),
// links the groups, writes one row per group with its inferred entity
// cluster, and — when the input carries ground-truth entity ids —
// evaluates against them.
//
//   # Produce an input with the author example, then link it:
//   ./author_disambiguation --entities=200 --save=/tmp/authors.csv
//   ./link_csv /tmp/authors.csv --out=/tmp/clusters.csv --edge-join
//
// Demonstrates data/record_io.h, the engine configuration surface, and
// the evaluation metrics on user-supplied data.

#include <cstdio>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/linkage_engine.h"
#include "data/record_io.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace grouplink;

  FlagParser flags;
  flags.AddDouble("theta", 0.4, "record-level edge threshold");
  flags.AddDouble("group-threshold", 0.25, "group-level link threshold");
  flags.AddString("measure", "bm", "group measure: bm|bmstar|greedy|ub|jaccard|single");
  flags.AddBool("edge-join", false, "use the scalable edge-join strategy (bm only)");
  flags.AddString("out", "", "optional path for the cluster assignment CSV");
  const Status parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok() || flags.help_requested() || flags.positional().size() != 1) {
    std::fprintf(stderr, "%s\nUsage: %s <dataset.csv> [flags]\n%s",
                 parse_status.ToString().c_str(), argv[0],
                 flags.Usage(argv[0]).c_str());
    return flags.help_requested() ? 0 : 1;
  }

  const auto dataset = LoadDatasetCsv(flags.positional()[0]);
  if (!dataset.ok()) {
    std::fprintf(stderr, "failed to load dataset: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded %d records in %d groups from %s\n", dataset->num_records(),
              dataset->num_groups(), flags.positional()[0].c_str());

  LinkageConfig config;
  config.theta = flags.GetDouble("theta");
  config.group_threshold = flags.GetDouble("group-threshold");
  config.use_edge_join = flags.GetBool("edge-join");
  const std::string measure = AsciiToLower(flags.GetString("measure"));
  if (measure == "bm") {
    config.measure = GroupMeasureKind::kBm;
  } else if (measure == "bmstar") {
    config.measure = GroupMeasureKind::kBmStar;
  } else if (measure == "greedy") {
    config.measure = GroupMeasureKind::kGreedy;
  } else if (measure == "ub") {
    config.measure = GroupMeasureKind::kUpperBound;
  } else if (measure == "jaccard") {
    config.measure = GroupMeasureKind::kBinaryJaccard;
  } else if (measure == "single") {
    config.measure = GroupMeasureKind::kSingleBest;
  } else {
    std::fprintf(stderr, "unknown measure '%s'\n", measure.c_str());
    return 1;
  }

  const auto result = RunGroupLinkage(*dataset, config);
  if (!result.ok()) {
    std::fprintf(stderr, "linkage failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Linked %zu group pairs into %zu entity clusters (%s measure).\n",
              result->linked_pairs.size(), result->num_clusters,
              GroupMeasureKindName(config.measure));

  if (const std::string out = flags.GetString("out"); !out.empty()) {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"group_id", "group_label", "cluster"});
    for (int32_t g = 0; g < dataset->num_groups(); ++g) {
      rows.push_back(
          {dataset->groups[static_cast<size_t>(g)].id,
           dataset->groups[static_cast<size_t>(g)].label,
           std::to_string(result->group_cluster[static_cast<size_t>(g)])});
    }
    const Status write_status = CsvWriteFile(out, rows);
    if (!write_status.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", out.c_str(),
                   write_status.ToString().c_str());
      return 1;
    }
    std::printf("Wrote cluster assignments to %s\n", out.c_str());
  }

  const auto truth = dataset->TruePairs();
  if (!truth.empty()) {
    const PairMetrics pair_metrics = EvaluatePairs(result->linked_pairs, truth);
    const BCubedMetrics bcubed =
        EvaluateBCubed(result->group_cluster, dataset->group_entities);
    const double ari =
        AdjustedRandIndex(result->group_cluster, dataset->group_entities);
    TextTable table({"metric", "value"});
    table.AddRow({"pairwise precision", FormatDouble(pair_metrics.precision, 4)});
    table.AddRow({"pairwise recall", FormatDouble(pair_metrics.recall, 4)});
    table.AddRow({"pairwise F1", FormatDouble(pair_metrics.f1, 4)});
    table.AddRow({"B-cubed F1", FormatDouble(bcubed.f1, 4)});
    table.AddRow({"adjusted Rand index", FormatDouble(ari, 4)});
    std::printf("\nEvaluation against ground-truth entity ids:\n%s",
                table.ToString().c_str());
  } else {
    std::printf("No ground-truth entity ids in the input; skipping evaluation.\n");
  }
  return 0;
}
