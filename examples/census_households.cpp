// Census household linkage: two survey snapshots a year apart, each
// household a group of person records. Links snapshot-A households to
// snapshot-B households despite member churn, aging, and typos — the
// paper's second motivating domain.
//
// Demonstrates overriding the engine's default TF-IDF record similarity
// with a custom field-weighted similarity (name tokens + numeric age).
//
//   ./census_households --households=400 --noise=0.3

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/linkage_engine.h"
#include "data/household_generator.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "text/record_similarity.h"

namespace {

using namespace grouplink;

// Splits "first last age street..." into (name+address tokens, age) fields
// for the field-weighted similarity.
std::vector<std::string> ToFields(const std::string& text) {
  const std::vector<std::string> tokens = SplitWhitespace(text);
  std::string age;
  std::vector<std::string> rest;
  for (const std::string& token : tokens) {
    if (age.empty() && ParseInt64(token).ok()) {
      age = token;
    } else {
      rest.push_back(token);
    }
  }
  return {Join(rest, " "), age};
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt64("households", 400, "number of households to generate");
  flags.AddDouble("noise", 0.3, "generator dirtiness dial in [0, 1]");
  flags.AddInt64("seed", 7, "generator seed");
  flags.AddDouble("theta", 0.7, "record-level edge threshold");
  flags.AddDouble("group-threshold", 0.4, "group-level link threshold");
  const Status parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok() || flags.help_requested()) {
    std::fprintf(stderr, "%s\n%s", parse_status.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return flags.help_requested() ? 0 : 1;
  }

  HouseholdConfig data_config;
  data_config.num_households = static_cast<int32_t>(flags.GetInt64("households"));
  data_config.noise = flags.GetDouble("noise");
  data_config.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  const Dataset dataset = GenerateHouseholds(data_config);
  std::printf("Generated %d person records in %d household snapshots.\n",
              dataset.num_records(), dataset.num_groups());

  LinkageConfig config;
  config.theta = flags.GetDouble("theta");
  config.group_threshold = flags.GetDouble("group-threshold");

  auto engine_or = LinkageEngine::Create(&dataset, config);
  GL_CHECK(engine_or.ok()) << engine_or.status().ToString();
  LinkageEngine& engine = *engine_or;

  // Custom record similarity: person-name/address tokens matched with
  // Monge-Elkan (robust to initials and typos), age as a numeric field
  // tolerating the one-year drift between snapshots.
  const RecordSimilarity field_sim({
      {0, FieldMeasure::kMongeElkan, 3.0, 1.0},
      {1, FieldMeasure::kNumericAbs, 1.0, /*numeric_scale=*/5.0},
  });
  std::vector<std::vector<std::string>> fields;
  fields.reserve(dataset.records.size());
  for (const Record& record : dataset.records) fields.push_back(ToFields(record.text));
  const LinkageResult result = engine.Run([&](int32_t a, int32_t b) {
    return field_sim.Similarity(fields[static_cast<size_t>(a)],
                                fields[static_cast<size_t>(b)]);
  });

  const PairMetrics metrics = EvaluatePairs(result.linked_pairs, dataset.TruePairs());
  TextTable table({"metric", "value"});
  table.AddRow({"precision", FormatDouble(metrics.precision, 4)});
  table.AddRow({"recall", FormatDouble(metrics.recall, 4)});
  table.AddRow({"F1", FormatDouble(metrics.f1, 4)});
  table.AddRow({"linked household pairs", std::to_string(result.linked_pairs.size())});
  table.AddRow({"true household pairs", std::to_string(dataset.TruePairs().size())});
  std::printf("\nHousehold linkage quality:\n%s", table.ToString().c_str());

  // Show a few linked pairs with their labels.
  std::printf("\nSample links:\n");
  for (size_t i = 0; i < result.linked_pairs.size() && i < 5; ++i) {
    const auto& [g1, g2] = result.linked_pairs[i];
    std::printf("  %s (%s)  <->  %s (%s)\n",
                dataset.groups[static_cast<size_t>(g1)].id.c_str(),
                dataset.groups[static_cast<size_t>(g1)].label.c_str(),
                dataset.groups[static_cast<size_t>(g2)].id.c_str(),
                dataset.groups[static_cast<size_t>(g2)].label.c_str());
  }
  return 0;
}
