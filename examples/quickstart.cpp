// Quickstart: link author name variants by comparing their citation groups.
//
// Builds a six-group toy dataset by hand — two real authors, each appearing
// under three name variants with overlapping-but-dirty citation lists, plus
// similar-looking distractors — and runs the group linkage engine on it.
//
//   ./quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/linkage_engine.h"
#include "eval/table.h"

namespace {

using grouplink::Dataset;
using grouplink::Group;
using grouplink::Record;

// Appends a group whose records are the given citation strings.
void AddGroup(Dataset& dataset, const std::string& label, int32_t entity,
              const std::vector<std::string>& citations) {
  Group group;
  group.id = label;
  group.label = label;
  for (const std::string& citation : citations) {
    Record record;
    record.id = label + "/" + std::to_string(group.record_ids.size());
    record.text = citation;
    group.record_ids.push_back(static_cast<int32_t>(dataset.records.size()));
    dataset.records.push_back(std::move(record));
  }
  dataset.groups.push_back(std::move(group));
  dataset.group_entities.push_back(entity);
}

Dataset BuildToyDataset() {
  Dataset dataset;
  // Entity 0: a database researcher under three name variants. The
  // citation lists overlap heavily but not exactly, and the shared
  // citations carry typos and dropped tokens.
  AddGroup(dataset, "jeffrey ullman", 0,
           {"principles of database systems sigmod 1990",
            "query optimization by predicate pushdown vldb 1993",
            "datalog evaluation with magic sets pods 1989",
            "a first course in database systems 1997"});
  AddGroup(dataset, "j d ullman", 0,
           {"principles of databse systems sigmod 1990",  // Typo.
            "query optimization predicate pushdown vldb 1993",
            "datalog evaluation magic sets pods 1989"});
  AddGroup(dataset, "ullman jeffrey", 0,
           {"a first course in database systems 1997",
            "query optimization by predicate pushdown vldb",
            "efficient datalog evaluation with magic sets pods 1989"});

  // Entity 1: a different researcher with an overlapping surname and one
  // superficially similar title — a hard negative for naive matchers.
  AddGroup(dataset, "laura ullman", 1,
           {"query scheduling for streaming systems nsdi 2004",
            "adaptive operator placement in sensor networks sigcomm 2003"});
  AddGroup(dataset, "l ullman", 1,
           {"query scheduling for streaming systems nsdi 2004",
            "operator placement in sensor networks sigcomm 2003"});

  // Entity 2: an unrelated singleton that must stay unlinked.
  AddGroup(dataset, "marco chen", 2,
           {"consensus protocols for replicated logs podc 1999"});
  return dataset;
}

}  // namespace

int main() {
  const Dataset dataset = BuildToyDataset();
  GL_CHECK(dataset.Validate().ok());

  grouplink::LinkageConfig config;
  config.theta = 0.5;            // Record pairs below this never form edges.
  config.group_threshold = 0.4;  // Groups link when BM >= this.
  config.candidates = grouplink::CandidateMethod::kAllPairs;  // Tiny data.

  const auto result = grouplink::RunGroupLinkage(dataset, config);
  GL_CHECK(result.ok()) << result.status().ToString();

  std::printf("Linked group pairs (BM >= %.2f):\n", config.group_threshold);
  for (const auto& [g1, g2] : result->linked_pairs) {
    std::printf("  %-18s <-> %s\n",
                dataset.groups[static_cast<size_t>(g1)].label.c_str(),
                dataset.groups[static_cast<size_t>(g2)].label.c_str());
  }

  grouplink::TextTable table({"group", "cluster", "true entity"});
  for (int32_t g = 0; g < dataset.num_groups(); ++g) {
    table.AddRow({dataset.groups[static_cast<size_t>(g)].label,
                  std::to_string(result->group_cluster[static_cast<size_t>(g)]),
                  std::to_string(dataset.group_entities[static_cast<size_t>(g)])});
  }
  std::printf("\nEntity clusters:\n%s", table.ToString().c_str());
  const grouplink::RunReport& report = result->report();
  std::printf("\n%zu clusters from %d groups; %lld candidate pairs scored.\n",
              result->num_clusters, dataset.num_groups(),
              static_cast<long long>(report.StageCounter("score", "candidates")));
  std::printf("\nPer-stage breakdown (RunReport::ToJson):\n%s\n",
              report.ToJson().c_str());
  return 0;
}
