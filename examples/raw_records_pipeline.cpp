// The full pipeline from a flat pile of records: no groups are given.
//
//   1. Raw citation records arrive with an author-name field (dirty:
//      variants, typos) — the usual shape of a digital-library dump.
//   2. core/group_builder.h files records into groups by fuzzy author
//      key (blocking + q-gram similarity + union-find) — the record-level
//      linkage step the paper assumes as input.
//   3. The group linkage engine decides which *groups* (author name
//      variants) co-refer, which no per-record step could: variants like
//      "j ullman" and "ullman jeffrey" only match through their citation
//      sets.
//
//   ./raw_records_pipeline --entities=150 --noise=0.25

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/group_builder.h"
#include "core/linkage_engine.h"
#include "data/bibliographic_generator.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace grouplink;

  FlagParser flags;
  flags.AddInt64("entities", 150, "author entities");
  flags.AddDouble("noise", 0.25, "generator dirtiness dial");
  flags.AddInt64("seed", 42, "generator seed");
  const Status parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok() || flags.help_requested()) {
    std::fprintf(stderr, "%s\n%s", parse_status.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return flags.help_requested() ? 0 : 1;
  }

  // Stage 0: simulate the raw dump — flatten a generated corpus into
  // (author-name-variant, citation-text) records, remembering only the
  // per-record truth for final evaluation.
  BibliographicConfig data_config;
  data_config.num_entities = static_cast<int32_t>(flags.GetInt64("entities"));
  data_config.noise = flags.GetDouble("noise");
  data_config.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  const Dataset generated = GenerateBibliographic(data_config);

  std::vector<Record> raw;
  std::vector<int32_t> record_entity;  // Truth per raw record.
  for (int32_t g = 0; g < generated.num_groups(); ++g) {
    for (const int32_t r : generated.groups[static_cast<size_t>(g)].record_ids) {
      Record record = generated.records[static_cast<size_t>(r)];
      record.fields = {generated.groups[static_cast<size_t>(g)].label};
      record_entity.push_back(generated.group_entities[static_cast<size_t>(g)]);
      raw.push_back(std::move(record));
    }
  }
  std::printf("Stage 0: %zu raw records, groups forgotten.\n", raw.size());

  // Stage 1: rebuild groups by fuzzy author key.
  const Dataset dataset = BuildGroupsByFuzzyKey(
      raw, [](const Record& record) { return record.fields[0]; });
  std::printf("Stage 1: fuzzy author keys -> %d groups.\n", dataset.num_groups());

  // Ground-truth entity per rebuilt group = majority entity of its
  // records (records were only reordered, never merged across entities
  // unless two entities share a key — which is the point of evaluating).
  Dataset evaluated = dataset;
  evaluated.group_entities.assign(static_cast<size_t>(dataset.num_groups()),
                                  Dataset::kUnknownEntity);
  {
    // raw[i] order was preserved by the builder, so record index i maps
    // to record_entity[i].
    for (int32_t g = 0; g < dataset.num_groups(); ++g) {
      std::map<int32_t, int> votes;
      for (const int32_t r : dataset.groups[static_cast<size_t>(g)].record_ids) {
        ++votes[record_entity[static_cast<size_t>(r)]];
      }
      int best = 0;
      for (const auto& [entity, count] : votes) {
        if (count > best) {
          best = count;
          evaluated.group_entities[static_cast<size_t>(g)] = entity;
        }
      }
    }
  }

  // Stage 2: group linkage across name variants.
  LinkageConfig config;
  config.theta = 0.35;
  config.group_threshold = 0.2;
  const auto result = RunGroupLinkage(evaluated, config);
  GL_CHECK(result.ok()) << result.status().ToString();

  const PairMetrics metrics =
      EvaluatePairs(result->linked_pairs, evaluated.TruePairs());
  const BCubedMetrics bcubed =
      EvaluateBCubed(result->group_cluster, evaluated.group_entities);
  TextTable table({"metric", "value"});
  table.AddRow({"groups rebuilt", std::to_string(dataset.num_groups())});
  table.AddRow({"linked group pairs", std::to_string(result->linked_pairs.size())});
  table.AddRow({"entity clusters", std::to_string(result->num_clusters)});
  table.AddRow({"pairwise precision", FormatDouble(metrics.precision, 4)});
  table.AddRow({"pairwise recall", FormatDouble(metrics.recall, 4)});
  table.AddRow({"pairwise F1", FormatDouble(metrics.f1, 4)});
  table.AddRow({"B-cubed F1", FormatDouble(bcubed.f1, 4)});
  std::printf("Stage 2: group linkage done.\n\n%s", table.ToString().c_str());
  return 0;
}
