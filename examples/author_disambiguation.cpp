// Author disambiguation at scale: generates a synthetic digital-library
// corpus (author entities observed under several dirty name variants, each
// carrying a citation list), links the citation groups with the BM measure
// through the filter-and-refine pipeline, and reports quality + pipeline
// statistics against the generator's ground truth.
//
//   ./author_disambiguation --entities=400 --noise=0.25 --theta=0.6
//       --group-threshold=0.3 [--save=authors.csv]

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/linkage_engine.h"
#include "data/bibliographic_generator.h"
#include "data/record_io.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace grouplink;

  FlagParser flags;
  flags.AddInt64("entities", 400, "number of author entities to generate");
  flags.AddDouble("noise", 0.25, "generator dirtiness dial in [0, 1]");
  flags.AddInt64("seed", 42, "generator seed");
  flags.AddDouble("theta", 0.4, "record-level edge threshold");
  flags.AddDouble("group-threshold", 0.25, "group-level link threshold");
  flags.AddString("save", "", "optional path to save the dataset as CSV");
  const Status parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok() || flags.help_requested()) {
    std::fprintf(stderr, "%s\n%s", parse_status.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return flags.help_requested() ? 0 : 1;
  }

  BibliographicConfig data_config;
  data_config.num_entities = static_cast<int32_t>(flags.GetInt64("entities"));
  data_config.noise = flags.GetDouble("noise");
  data_config.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  const Dataset dataset = GenerateBibliographic(data_config);
  std::printf("Generated %d records in %d groups (%d author entities).\n",
              dataset.num_records(), dataset.num_groups(), data_config.num_entities);

  if (const std::string path = flags.GetString("save"); !path.empty()) {
    const Status save_status = SaveDatasetCsv(dataset, path);
    GL_CHECK(save_status.ok()) << save_status.ToString();
    std::printf("Saved dataset to %s\n", path.c_str());
  }

  LinkageConfig config;
  config.theta = flags.GetDouble("theta");
  config.group_threshold = flags.GetDouble("group-threshold");
  const auto result = RunGroupLinkage(dataset, config);
  GL_CHECK(result.ok()) << result.status().ToString();

  const PairMetrics metrics = EvaluatePairs(result->linked_pairs, dataset.TruePairs());
  TextTable quality({"metric", "value"});
  quality.AddRow({"precision", FormatDouble(metrics.precision, 4)});
  quality.AddRow({"recall", FormatDouble(metrics.recall, 4)});
  quality.AddRow({"F1", FormatDouble(metrics.f1, 4)});
  quality.AddRow({"linked pairs", std::to_string(result->linked_pairs.size())});
  quality.AddRow({"true pairs", std::to_string(dataset.TruePairs().size())});
  quality.AddRow({"clusters", std::to_string(result->num_clusters)});
  std::printf("\nLinkage quality vs ground truth:\n%s", quality.ToString().c_str());

  const RunReport& report = result->report();
  TextTable pipeline({"pipeline stage", "group pairs"});
  pipeline.AddRow({"candidates (record join)",
                   std::to_string(report.StageCounter("score", "candidates"))});
  pipeline.AddRow({"empty similarity graph",
                   std::to_string(report.StageCounter("score", "empty_graphs"))});
  pipeline.AddRow({"pruned by UB",
                   std::to_string(report.StageCounter("score", "ub_pruned"))});
  pipeline.AddRow({"accepted by LB",
                   std::to_string(report.StageCounter("score", "lb_accepted"))});
  pipeline.AddRow({"refined (Hungarian)",
                   std::to_string(report.StageCounter("score", "refined"))});
  pipeline.AddRow({"linked", std::to_string(report.StageCounter("score", "linked"))});
  std::printf("\nFilter-and-refine breakdown:\n%s", pipeline.ToString().c_str());

  std::printf("\nTime: prepare %.3fs, candidates %.3fs, scoring %.3fs\n",
              report.StageSeconds("prepare"), report.StageSeconds("candidates"),
              report.StageSeconds("score"));
  return 0;
}
