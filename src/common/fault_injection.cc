#include "common/fault_injection.h"

#include <chrono>
#include <thread>

#include "common/string_util.h"

namespace grouplink {
namespace {

// Deterministic uniform draw in [0, 1) for the spec's Nth eligible hit.
// HashCombine alone leaves small seed differences in the low bits, and the
// probability comparison is dominated by the high bits — finalize with a
// full avalanche (murmur3 fmix64) so every seed bit reaches every draw bit.
double SeededDraw(uint64_t seed, int64_t ordinal) {
  uint64_t mixed =
      HashCombine(seed ^ 0x9e3779b97f4a7c15ULL, static_cast<uint64_t>(ordinal));
  mixed ^= mixed >> 33;
  mixed *= 0xff51afd7ed558ccdULL;
  mixed ^= mixed >> 33;
  mixed *= 0xc4ceb9fe1a85ec53ULL;
  mixed ^= mixed >> 33;
  return static_cast<double>(mixed >> 11) / 9007199254740992.0;  // 2^53
}

}  // namespace

FaultInjector& FaultInjector::Default() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(std::string_view point, const FaultSpec& spec) {
  MutexLock lock(&mutex_);
  auto it = points_.find(point);
  if (it == points_.end()) {
    it = points_.try_emplace(std::string(point)).first;
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
  it->second.spec = spec;
  it->second.hits.store(0, std::memory_order_relaxed);
  it->second.fires.store(0, std::memory_order_relaxed);
}

Status FaultInjector::ArmFromSpec(std::string_view spec_text) {
  const size_t colon = spec_text.find(':');
  const std::string_view point = spec_text.substr(0, colon);
  if (point.empty()) {
    return Status::InvalidArgument("fault spec has no point name: '" +
                                   std::string(spec_text) + "'");
  }
  FaultSpec spec;
  bool delay_set = false;
  if (colon != std::string_view::npos) {
    for (const std::string& piece : Split(spec_text.substr(colon + 1), ',')) {
      const size_t eq = piece.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("fault spec option '" + piece +
                                       "' is not key=value");
      }
      const std::string key = piece.substr(0, eq);
      const std::string value = piece.substr(eq + 1);
      if (key == "probability" || key == "delay_ms") {
        GL_ASSIGN_OR_RETURN(const double parsed, ParseDouble(value));
        if (key == "probability") {
          spec.probability = parsed;
        } else {
          spec.delay_ms = parsed;
          delay_set = true;
        }
      } else {
        GL_ASSIGN_OR_RETURN(const int64_t parsed, ParseInt64(value));
        if (key == "after") {
          spec.after = parsed;
        } else if (key == "every") {
          spec.every = parsed;
        } else if (key == "seed") {
          spec.seed = static_cast<uint64_t>(parsed);
        } else if (key == "magnitude") {
          spec.magnitude = parsed;
        } else if (key == "max_fires") {
          spec.max_fires = parsed;
        } else if (key == "fail_n_times") {
          spec.fail_n_times = parsed;
        } else {
          return Status::InvalidArgument("unknown fault spec key '" + key + "'");
        }
      }
    }
  }
  if (spec.every < 1) {
    return Status::InvalidArgument("fault spec 'every' must be >= 1");
  }
  if (point == faults::kSlowTask && !delay_set) spec.delay_ms = 1.0;
  Arm(point, spec);
  return Status::Ok();
}

void FaultInjector::Disarm(std::string_view point) {
  MutexLock lock(&mutex_);
  const auto it = points_.find(point);
  if (it == points_.end()) return;
  points_.erase(it);
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  MutexLock lock(&mutex_);
  points_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFire(const char* point) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
  MutexLock lock(&mutex_);
  const auto it = points_.find(std::string_view(point));
  if (it == points_.end()) return false;
  PointState& state = it->second;
  const FaultSpec& spec = state.spec;
  const int64_t hit = state.hits.fetch_add(1, std::memory_order_relaxed);
  // Deterministic mode: exactly the first fail_n_times evaluations fire,
  // independent of the probabilistic knobs (the mutex serializes hit
  // numbering, so "first N" is exact even under concurrency).
  if (spec.fail_n_times > 0) {
    if (hit >= spec.fail_n_times) return false;
    state.fires.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (hit < spec.after) return false;
  const int64_t eligible = hit - spec.after;
  if (eligible % spec.every != 0) return false;
  if (spec.probability < 1.0 &&
      SeededDraw(spec.seed, eligible / spec.every) >= spec.probability) {
    return false;
  }
  if (spec.max_fires > 0 &&
      state.fires.load(std::memory_order_relaxed) >= spec.max_fires) {
    return false;
  }
  state.fires.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::FireWithDelay(const char* point) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
  double delay_ms = 0.0;
  {
    MutexLock lock(&mutex_);
    const auto it = points_.find(std::string_view(point));
    if (it != points_.end()) delay_ms = it->second.spec.delay_ms;
  }
  if (!ShouldFire(point)) return false;
  if (delay_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
  }
  return true;
}

int64_t FaultInjector::hits(std::string_view point) const {
  MutexLock lock(&mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits.load(std::memory_order_relaxed);
}

int64_t FaultInjector::fires(std::string_view point) const {
  MutexLock lock(&mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires.load(std::memory_order_relaxed);
}

int64_t FaultInjector::magnitude(std::string_view point) const {
  MutexLock lock(&mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.spec.magnitude;
}

bool FaultInjector::armed(std::string_view point) const {
  MutexLock lock(&mutex_);
  return points_.find(point) != points_.end();
}

}  // namespace grouplink
