#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace grouplink {
namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

// Trims a path down to its basename for compact log prefixes.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetMinLogLevel(LogLevel level) { g_min_level.store(level); }

LogLevel MinLogLevel() { return g_min_level.load(); }

bool DchecksEnabled() {
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace grouplink
