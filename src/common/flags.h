#ifndef GROUPLINK_COMMON_FLAGS_H_
#define GROUPLINK_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace grouplink {

/// Minimal command-line flag parser used by the benchmark and example
/// binaries. Supports `--name=value`, `--name value`, and bare `--flag`
/// (boolean true). Unrecognized `--` arguments are an error; positional
/// arguments are collected separately.
///
/// Example:
///   FlagParser flags;
///   flags.AddInt64("groups", 1000, "number of groups to generate");
///   flags.AddDouble("theta", 0.7, "record-level threshold");
///   GL_CHECK(flags.Parse(argc, argv).ok());
///   int64_t groups = flags.GetInt64("groups");
class FlagParser {
 public:
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  void AddInt64(const std::string& name, int64_t default_value, const std::string& help);
  void AddDouble(const std::string& name, double default_value, const std::string& help);
  void AddBool(const std::string& name, bool default_value, const std::string& help);

  /// Parses argv; on error returns InvalidArgument describing the problem.
  /// `--help` sets help_requested() and parsing still succeeds.
  Status Parse(int argc, const char* const* argv);

  /// Accessors abort (GL_CHECK) if the flag was never registered with the
  /// matching type — registration typos are programmer errors.
  std::string GetString(const std::string& name) const;
  int64_t GetInt64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  bool help_requested() const { return help_requested_; }

  /// Renders a usage string listing all flags with defaults and help text.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kString, kInt64, kDouble, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string string_value;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
  };

  Status SetValue(const std::string& name, const std::string& value);
  const Flag& GetChecked(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace grouplink

#endif  // GROUPLINK_COMMON_FLAGS_H_
