#include "common/execution_context.h"

#include <algorithm>

#include "common/fault_injection.h"

namespace grouplink {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kDeadlineExpired:
      return "deadline";
    case StopReason::kFaultInjected:
      return "fault-injected";
  }
  return "";
}

void ExecutionContext::SetDeadline(double ms) {
  if (ms <= 0.0) {
    has_deadline_ = false;
    return;
  }
  has_deadline_ = true;
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(ms));
}

void ExecutionContext::NoteStop(StopReason reason) const {
  // First cause wins; later polls keep returning the sticky state.
  bool expected = false;
  if (stopped_.compare_exchange_strong(expected, true,
                                       std::memory_order_relaxed)) {
    stop_reason_.store(static_cast<int>(reason), std::memory_order_relaxed);
    degraded_.store(true, std::memory_order_relaxed);
  }
}

bool ExecutionContext::StopRequested() const {
  if (stopped_.load(std::memory_order_relaxed)) return true;
  if (has_token_ && token_.cancelled()) {
    NoteStop(StopReason::kCancelled);
    return true;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    NoteStop(StopReason::kDeadlineExpired);
    return true;
  }
  if (FaultInjector::Default().ShouldFire(faults::kDeadline)) {
    NoteStop(StopReason::kFaultInjected);
    return true;
  }
  return false;
}

size_t ExecutionContext::EffectiveCandidateCap(size_t n) const {
  size_t cap = n;
  if (max_candidate_pairs_ > 0) {
    cap = std::min(cap, static_cast<size_t>(max_candidate_pairs_));
  }
  if (FaultInjector::Default().ShouldFire(faults::kOversizedCandidates)) {
    const int64_t magnitude =
        FaultInjector::Default().magnitude(faults::kOversizedCandidates);
    cap = std::min(cap, magnitude > 0 ? static_cast<size_t>(magnitude) : n / 2);
  }
  return cap;
}

Status ExecutionContext::ToStatus() const {
  switch (stop_reason()) {
    case StopReason::kNone:
      return Status::Ok();
    case StopReason::kCancelled:
      return Status::Cancelled("run cancelled");
    case StopReason::kDeadlineExpired:
    case StopReason::kFaultInjected:
      return Status::DeadlineExceeded("run deadline expired");
  }
  return Status::Ok();
}

}  // namespace grouplink
