#include "common/metrics.h"

#include <algorithm>

#include "common/json.h"
#include "common/logging.h"

namespace grouplink {
namespace {

std::atomic<bool> g_metrics_enabled{true};

}  // namespace

bool MetricsEnabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

size_t Counter::ThisThreadShard() {
  // Threads claim shard slots round-robin on first increment; short-lived
  // worker threads recycle the modulo space, which only costs occasional
  // sharing, never correctness.
  static std::atomic<size_t> next_slot{0};
  thread_local const size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return slot;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    for (double b = 1e-6; b <= 1e3 + 1e-9; b *= 10.0) bounds_.push_back(b);
  }
  GL_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  if (!MetricsEnabled()) return;
  // lower_bound, not upper_bound: a value equal to a bound belongs in that
  // bound's bucket ("le" semantics — counts_[i] counts observations
  // <= bounds_[i]).
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.reserve(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snapshot.counts.push_back(buckets_[i].load(std::memory_order_relaxed));
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  return snapshot;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::string MetricsSnapshot::ToJson(int indent) const {
  JsonWriter json(indent);
  WriteJson(&json);
  return json.str();
}

void MetricsSnapshot::WriteJson(JsonWriter* json_ptr) const {
  JsonWriter& json = *json_ptr;
  json.BeginObject();
  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, value] : counters) {
    json.Key(name);
    json.UInt(value);
  }
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, value] : gauges) {
    json.Key(name);
    json.Double(value);
  }
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, h] : histograms) {
    json.Key(name);
    json.BeginObject();
    json.Key("count");
    json.UInt(h.count);
    json.Key("sum");
    json.Double(h.sum);
    json.Key("buckets");
    json.BeginArray();
    for (size_t i = 0; i < h.counts.size(); ++i) {
      json.BeginObject();
      json.Key("le");
      if (i < h.bounds.size()) {
        json.Double(h.bounds[i]);
      } else {
        json.String("inf");
      }
      json.Key("count");
      json.UInt(h.counts[i]);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::CounterRef(const std::string& name) {
  MutexLock lock(&mutex_);
  GL_CHECK(gauges_.find(name) == gauges_.end() &&
           histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered as a different kind";
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GaugeRef(const std::string& name) {
  MutexLock lock(&mutex_);
  GL_CHECK(counters_.find(name) == counters_.end() &&
           histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered as a different kind";
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::HistogramRef(const std::string& name,
                                         std::vector<double> bounds) {
  MutexLock lock(&mutex_);
  GL_CHECK(counters_.find(name) == counters_.end() &&
           gauges_.find(name) == gauges_.end())
      << "metric '" << name << "' already registered as a different kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(&mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->TakeSnapshot();
  }
  return snapshot;
}

}  // namespace grouplink
