#ifndef GROUPLINK_COMMON_EXECUTION_CONTEXT_H_
#define GROUPLINK_COMMON_EXECUTION_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace grouplink {

/// Cooperative cancellation handle. Copies share one flag; any copy can
/// Cancel() and every copy observes it. Cancellation is sticky.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Why a run stopped early (or kNone when it ran to completion).
enum class StopReason {
  kNone = 0,
  kCancelled,
  kDeadlineExpired,
  kFaultInjected,
};

const char* StopReasonName(StopReason reason);

/// Per-run resilience state threaded through the pipeline: a wall-clock
/// deadline, a cooperative cancellation token, and work budgets. All
/// checks are cooperative — loops poll StopRequested() once per item
/// (candidate, probe, ParallelFor iteration), so "stopping" means
/// finishing the current item and shedding the rest.
///
/// Stop state is sticky: once StopRequested() observes the deadline,
/// the token, or an armed `execution.deadline` fault, every later call
/// returns true and stop_reason() names the first observed cause.
///
/// Degradation semantics (see DESIGN.md §8): deadline/cancellation trips
/// shed whole items, which only ever *removes* links (BM similarity is
/// monotone in the edge set), so a stopped run's links are a subset of
/// the full run's. Budget trips (candidate cap, matcher cost) are
/// per-item deterministic — they depend only on the item, never on
/// timing — so budget-degraded runs are bit-identical across thread
/// counts and repeats.
class ExecutionContext {
 public:
  ExecutionContext() = default;

  /// Arms a deadline `ms` milliseconds from now (<= 0 disarms).
  void SetDeadline(double ms);
  [[nodiscard]] bool has_deadline() const { return has_deadline_; }

  void SetCancellation(CancellationToken token) {
    token_ = std::move(token);
    has_token_ = true;
  }

  /// Caps the candidate pairs a stage may refine (0 = unlimited).
  void SetMaxCandidatePairs(int64_t cap) { max_candidate_pairs_ = cap; }
  int64_t max_candidate_pairs() const { return max_candidate_pairs_; }

  /// Caps the per-pair matcher cost |G1|*|G2| above which the refine
  /// step falls back to bounds-only matching (0 = unlimited).
  void SetMaxMatcherCost(int64_t cost) { max_matcher_cost_ = cost; }
  int64_t max_matcher_cost() const { return max_matcher_cost_; }

  /// Sticky poll: true once the token is cancelled, the deadline has
  /// passed, or the `execution.deadline` fault point fires. Safe to call
  /// concurrently from worker threads.
  [[nodiscard]] bool StopRequested() const;

  StopReason stop_reason() const {
    return static_cast<StopReason>(stop_reason_.load(std::memory_order_relaxed));
  }
  /// "" | "cancelled" | "deadline" | "fault-injected".
  const char* stop_reason_name() const { return StopReasonName(stop_reason()); }

  /// True when the per-pair matcher budget rejects this cost.
  [[nodiscard]] bool ExceedsMatcherBudget(int64_t cost) const {
    return max_matcher_cost_ > 0 && cost > max_matcher_cost_;
  }

  /// The candidate cap to apply to a natural list of `n` items: the
  /// configured budget, further shrunk when the `candidates.oversized`
  /// fault fires (to its magnitude, or n/2 when magnitude is 0).
  /// Returns n when nothing caps it.
  [[nodiscard]] size_t EffectiveCandidateCap(size_t n) const;

  /// Any stage that sheds or downgrades work calls this; degraded() then
  /// feeds RunReport.degraded.
  void NoteDegraded() const { degraded_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool degraded() const { return degraded_.load(std::memory_order_relaxed); }

  /// OK while running; Cancelled/DeadlineExceeded once stopped.
  [[nodiscard]] Status ToStatus() const;

 private:
  void NoteStop(StopReason reason) const;

  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_token_ = false;
  CancellationToken token_;
  int64_t max_candidate_pairs_ = 0;
  int64_t max_matcher_cost_ = 0;
  // Mutable: polling from const contexts (measures take const*) must
  // still be able to latch the sticky stop state.
  mutable std::atomic<bool> stopped_{false};
  mutable std::atomic<int> stop_reason_{static_cast<int>(StopReason::kNone)};
  mutable std::atomic<bool> degraded_{false};
};

}  // namespace grouplink

#endif  // GROUPLINK_COMMON_EXECUTION_CONTEXT_H_
