#ifndef GROUPLINK_COMMON_JSON_H_
#define GROUPLINK_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace grouplink {

/// Minimal streaming JSON writer used by the observability layer (metrics
/// snapshots, trace trees, run reports) and the benchmark harnesses, so
/// every emitted file shares one escaping/formatting implementation
/// instead of hand-rolled fprintf calls.
///
/// The writer tracks nesting and inserts commas/indentation; callers are
/// responsible for well-formedness (every BeginObject matched by
/// EndObject, Key before each object value). Misuse aborts via GL_CHECK.
///
/// Example:
///   JsonWriter json;
///   json.BeginObject();
///   json.Key("runs");
///   json.BeginArray();
///   json.Int(1);
///   json.EndArray();
///   json.EndObject();
///   std::string text = json.str();
class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 emits compact single-line JSON.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key; must be followed by exactly one value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  /// Doubles render with up to 10 significant digits; NaN/Inf (invalid
  /// JSON) render as null.
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Convenience: Key + value. The const char* overload exists because a
  /// string literal would otherwise prefer the standard pointer-to-bool
  /// conversion over the user-defined one to string_view and silently
  /// emit `true`.
  void Field(std::string_view key, std::string_view value);
  void Field(std::string_view key, const char* value) {
    Field(key, std::string_view(value));
  }
  void Field(std::string_view key, int64_t value);
  void Field(std::string_view key, uint64_t value);
  void Field(std::string_view key, double value);
  void Field(std::string_view key, bool value);

  /// The document so far. Typically called once all scopes are closed.
  const std::string& str() const { return out_; }

  /// Escapes `s` as a JSON string literal (with surrounding quotes).
  static std::string Escape(std::string_view s);

 private:
  enum class Scope { kObject, kArray };
  void BeforeValue();
  void NewlineAndIndent();

  int indent_;
  std::string out_;
  std::vector<Scope> scopes_;
  // Whether the current scope already holds at least one element.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace grouplink

#endif  // GROUPLINK_COMMON_JSON_H_
