#include "common/status.h"

namespace grouplink {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

bool Status::IsRetryable() const {
  switch (code_) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kIoError:
      return true;
    default:
      return false;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace grouplink
