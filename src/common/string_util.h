#ifndef GROUPLINK_COMMON_STRING_UTIL_H_
#define GROUPLINK_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace grouplink {

/// Returns a copy of `s` with ASCII letters lowered.
[[nodiscard]] std::string AsciiToLower(std::string_view s);

/// Returns a copy of `s` with ASCII letters uppered.
[[nodiscard]] std::string AsciiToUpper(std::string_view s);

/// Returns `s` without leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view TrimWhitespace(std::string_view s);

/// Splits `s` on `delimiter`, keeping empty pieces ("a,,b" -> {"a","","b"}).
[[nodiscard]] std::vector<std::string> Split(std::string_view s, char delimiter);

/// Splits `s` on runs of ASCII whitespace, dropping empty pieces.
[[nodiscard]] std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `pieces` with `separator`.
[[nodiscard]] std::string Join(const std::vector<std::string>& pieces, std::string_view separator);

/// True if `s` starts with / ends with the given affix.
[[nodiscard]] bool StartsWith(std::string_view s, std::string_view prefix);
[[nodiscard]] bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a whole string as a signed integer / double. Rejects trailing
/// garbage, empty input, and out-of-range values.
[[nodiscard]] Result<int64_t> ParseInt64(std::string_view s);
[[nodiscard]] Result<double> ParseDouble(std::string_view s);

/// Formats `value` with `digits` fractional digits ("3.142").
[[nodiscard]] std::string FormatDouble(double value, int digits);

/// Replaces every occurrence of `from` (non-empty) with `to`.
[[nodiscard]] std::string ReplaceAll(std::string_view s, std::string_view from, std::string_view to);

/// True when `s` is well-formed UTF-8: no bad continuation bytes,
/// overlong encodings, surrogate code points, or values above U+10FFFF.
[[nodiscard]] bool IsValidUtf8(std::string_view s);

/// 64-bit FNV-1a hash of `s`; stable across runs and platforms.
[[nodiscard]] uint64_t Fingerprint64(std::string_view s);

/// Mixes a new 64-bit value into a running hash (for composite keys).
[[nodiscard]] uint64_t HashCombine(uint64_t seed, uint64_t value);

}  // namespace grouplink

#endif  // GROUPLINK_COMMON_STRING_UTIL_H_
