#ifndef GROUPLINK_COMMON_FAULT_INJECTION_H_
#define GROUPLINK_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace grouplink {

/// Deterministic, seeded fault injection for tests and benches.
///
/// Call sites name a fault point and ask `ShouldFire(point)` at the spot
/// where the fault would occur; what "firing" means (sleep, skip, corrupt,
/// pretend-expired) is decided by the call site. Points are disarmed by
/// default and the disarmed fast path is a single relaxed atomic load, so
/// the hooks stay compiled into production binaries at negligible cost.
///
/// Determinism: a point's decision for its Nth evaluation depends only on
/// the armed FaultSpec and N (probability draws hash the seed with the
/// hit ordinal), never on wall time or thread identity. Points evaluated
/// from a deterministic call sequence therefore fire deterministically.
///
///   FaultInjector::Default().Arm(faults::kFailTask, {.after = 2});
///   ...
///   if (FaultInjector::Default().ShouldFire(faults::kFailTask)) { ... }

namespace faults {
/// Worker chunk sleeps `delay_ms` before running (latency/skew injection).
inline constexpr const char* kSlowTask = "thread_pool.slow_task";
/// Worker chunk is dropped; its iterations are marked skipped/degraded.
inline constexpr const char* kFailTask = "thread_pool.fail_task";
/// Candidate list is treated as oversized: the effective cap becomes
/// `magnitude` (or half the natural size when magnitude is 0).
inline constexpr const char* kOversizedCandidates = "candidates.oversized";
/// A CSV row is treated as corrupt and surfaces Status::ParseError.
inline constexpr const char* kCorruptRecord = "record_io.corrupt_record";
/// ExecutionContext reports its deadline as already expired.
inline constexpr const char* kDeadline = "execution.deadline";
/// A storage page write persists only a prefix of the page and the write
/// reports failure — the crash-mid-write shape the recovery protocol must
/// survive (evaluated once per page append during a persist).
inline constexpr const char* kTornWrite = "storage.torn_write";
/// A storage fsync reports failure before durability is reached; the
/// persist must abort without touching the previous store.
inline constexpr const char* kFailFsync = "storage.fail_fsync";
/// A background epoch refresh build dies before publishing anything: the
/// clone is discarded, the old epoch keeps serving, and the watchdog is
/// expected to re-arm the refresh (evaluated once per async refresh
/// attempt, before the build starts).
inline constexpr const char* kRefreshFailure = "service.refresh_failure";
/// A background epoch refresh stalls: the build sleeps `delay_ms` before
/// doing any work, which is how tests make the refresh watchdog's
/// stall detector observable on a fast machine.
inline constexpr const char* kStallRefresh = "service.stall_refresh";
/// Poison-batch arming: while armed, any async refresh over a corpus
/// containing a group whose label carries the kPoisonLabelMarker prefix
/// fails, naming that label as the culprit — the deterministic stand-in
/// for "this batch crashes the build every time" that the quarantine
/// path exists for.
inline constexpr const char* kPoisonBatch = "service.poison_batch";
/// Label prefix that marks a group arrival as poison for kPoisonBatch.
inline constexpr const char* kPoisonLabelMarker = "__poison__";
}  // namespace faults

/// When and how an armed point fires.
struct FaultSpec {
  /// Skip the first `after` evaluations (0 = eligible immediately).
  int64_t after = 0;
  /// Of the eligible evaluations, fire every `every`th (1 = all).
  int64_t every = 1;
  /// Independent per-eligible-evaluation chance, drawn from
  /// hash(seed, hit ordinal) so it is reproducible. 1.0 = always.
  double probability = 1.0;
  uint64_t seed = 0;
  /// For kSlowTask-style points: how long FireWithDelay sleeps.
  double delay_ms = 0.0;
  /// Point-specific size knob (e.g. injected candidate cap).
  int64_t magnitude = 0;
  /// Stop firing after this many fires (0 = unlimited).
  int64_t max_fires = 0;
  /// Deterministic arming mode: when > 0, the point fires on exactly the
  /// first `fail_n_times` evaluations and never again — `after`, `every`,
  /// and `probability` are ignored. This is how retry/breaker tests
  /// script exact failure sequences ("fail twice, then succeed") without
  /// reverse-engineering a seed.
  int64_t fail_n_times = 0;

  /// Shorthand for the deterministic mode above.
  static FaultSpec FailNTimes(int64_t n) {
    FaultSpec spec;
    spec.fail_n_times = n;
    return spec;
  }
};

class FaultInjector {
 public:
  /// Process-wide injector used by all built-in fault points.
  static FaultInjector& Default();

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms `point`; replaces any previous spec and resets its counters.
  void Arm(std::string_view point, const FaultSpec& spec);

  /// Parses "point" or "point:key=value,key=value" and arms it. Keys:
  /// after, every, probability, seed, delay_ms, magnitude, max_fires,
  /// fail_n_times.
  /// kSlowTask defaults to delay_ms=1 when left unspecified, so arming it
  /// bare from a --inject flag still visibly slows tasks.
  Status ArmFromSpec(std::string_view spec_text);

  void Disarm(std::string_view point);
  void DisarmAll();

  /// True when `point` is armed and this evaluation is selected by the
  /// spec. Every call on an armed point counts one hit.
  bool ShouldFire(const char* point);

  /// ShouldFire plus sleeping `delay_ms` when it fires. Returns whether
  /// the point fired.
  bool FireWithDelay(const char* point);

  /// Counters and the armed magnitude, for assertions. A disarmed point
  /// reports zero hits/fires and magnitude 0.
  int64_t hits(std::string_view point) const;
  int64_t fires(std::string_view point) const;
  int64_t magnitude(std::string_view point) const;
  bool armed(std::string_view point) const;

 private:
  struct PointState {
    FaultSpec spec;
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> fires{0};
  };

  // Fast disarmed-path gate: number of armed points.
  std::atomic<int64_t> armed_count_{0};
  // Exclusive on every path by design: the lock serializes hit numbering,
  // which is what makes fail_n_times / max_fires exact under concurrency.
  mutable Mutex mutex_;
  std::map<std::string, PointState, std::less<>> points_ GL_GUARDED_BY(mutex_);
};

/// Test helper: disarms every point on destruction so one test's armed
/// faults can never leak into the next.
class ScopedFaultClear {
 public:
  ScopedFaultClear() = default;
  ~ScopedFaultClear() { FaultInjector::Default().DisarmAll(); }
  ScopedFaultClear(const ScopedFaultClear&) = delete;
  ScopedFaultClear& operator=(const ScopedFaultClear&) = delete;
};

}  // namespace grouplink

#endif  // GROUPLINK_COMMON_FAULT_INJECTION_H_
