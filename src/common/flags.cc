#include "common/flags.h"

#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace grouplink {

void FlagParser::AddString(const std::string& name, const std::string& default_value,
                           const std::string& help) {
  Flag flag;
  flag.type = Type::kString;
  flag.help = help;
  flag.string_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddInt64(const std::string& name, int64_t default_value,
                          const std::string& help) {
  Flag flag;
  flag.type = Type::kInt64;
  flag.help = help;
  flag.int_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  Flag flag;
  flag.type = Type::kDouble;
  flag.help = help;
  flag.double_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  Flag flag;
  flag.type = Type::kBool;
  flag.help = help;
  flag.bool_value = default_value;
  flags_[name] = std::move(flag);
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    if (arg == "help") {
      help_requested_ = true;
      continue;
    }
    std::string name;
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it == flags_.end()) return Status::InvalidArgument("unknown flag --" + name);
      if (it->second.type == Type::kBool) {
        // Bare `--flag` means true, but consume an explicit bool literal
        // (`--flag false`) when one follows.
        value = "true";
        if (i + 1 < argc) {
          const std::string next = AsciiToLower(argv[i + 1]);
          if (next == "true" || next == "false" || next == "1" || next == "0" ||
              next == "yes" || next == "no") {
            value = next;
            ++i;
          }
        }
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + " requires a value");
      }
    }
    GL_RETURN_IF_ERROR(SetValue(name, value));
  }
  return Status::Ok();
}

Status FlagParser::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) return Status::InvalidArgument("unknown flag --" + name);
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kString:
      flag.string_value = value;
      return Status::Ok();
    case Type::kInt64: {
      auto parsed = ParseInt64(value);
      if (!parsed.ok()) {
        return Status::InvalidArgument("flag --" + name + ": " + parsed.status().message());
      }
      flag.int_value = *parsed;
      return Status::Ok();
    }
    case Type::kDouble: {
      auto parsed = ParseDouble(value);
      if (!parsed.ok()) {
        return Status::InvalidArgument("flag --" + name + ": " + parsed.status().message());
      }
      flag.double_value = *parsed;
      return Status::Ok();
    }
    case Type::kBool: {
      const std::string lower = AsciiToLower(value);
      if (lower == "true" || lower == "1" || lower == "yes") {
        flag.bool_value = true;
      } else if (lower == "false" || lower == "0" || lower == "no") {
        flag.bool_value = false;
      } else {
        return Status::InvalidArgument("flag --" + name + ": invalid bool '" + value + "'");
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable flag type");
}

const FlagParser::Flag& FlagParser::GetChecked(const std::string& name, Type type) const {
  auto it = flags_.find(name);
  GL_CHECK(it != flags_.end()) << "flag not registered: " << name;
  GL_CHECK(it->second.type == type) << "flag type mismatch: " << name;
  return it->second;
}

std::string FlagParser::GetString(const std::string& name) const {
  return GetChecked(name, Type::kString).string_value;
}

int64_t FlagParser::GetInt64(const std::string& name) const {
  return GetChecked(name, Type::kInt64).int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return GetChecked(name, Type::kDouble).double_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  return GetChecked(name, Type::kBool).bool_value;
}

std::string FlagParser::Usage(const std::string& program) const {
  std::ostringstream out;
  out << "Usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name;
    switch (flag.type) {
      case Type::kString:
        out << " (string, default \"" << flag.string_value << "\")";
        break;
      case Type::kInt64:
        out << " (int, default " << flag.int_value << ")";
        break;
      case Type::kDouble:
        out << " (double, default " << flag.double_value << ")";
        break;
      case Type::kBool:
        out << " (bool, default " << (flag.bool_value ? "true" : "false") << ")";
        break;
    }
    out << "\n      " << flag.help << "\n";
  }
  return out.str();
}

}  // namespace grouplink
