#include "common/union_find.h"

#include "common/logging.h"

namespace grouplink {

UnionFind::UnionFind(size_t n) : parent_(n), rank_(n, 0), num_sets_(n) {
  for (size_t i = 0; i < n; ++i) parent_[i] = i;
}

size_t UnionFind::AddElement() {
  const size_t id = parent_.size();
  parent_.push_back(id);
  rank_.push_back(0);
  ++num_sets_;
  return id;
}

size_t UnionFind::Find(size_t x) {
  GL_DCHECK(x < parent_.size());
  size_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    const size_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(size_t a, size_t b) {
  size_t ra = Find(a);
  size_t rb = Find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --num_sets_;
  return true;
}

std::vector<size_t> UnionFind::ComponentLabels() {
  std::vector<size_t> labels(parent_.size());
  constexpr size_t kUnassigned = static_cast<size_t>(-1);
  std::vector<size_t> root_label(parent_.size(), kUnassigned);
  size_t next = 0;
  for (size_t i = 0; i < parent_.size(); ++i) {
    const size_t root = Find(i);
    if (root_label[root] == kUnassigned) root_label[root] = next++;
    labels[i] = root_label[root];
  }
  return labels;
}

}  // namespace grouplink
