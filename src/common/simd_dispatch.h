#ifndef GROUPLINK_COMMON_SIMD_DISPATCH_H_
#define GROUPLINK_COMMON_SIMD_DISPATCH_H_

namespace grouplink {

/// Instruction-set tiers of the batched text kernels (text/simd_kernels.h).
/// Ordered: every tier includes the capabilities of the tiers below it, so
/// `level >= kSse42` is the idiomatic gate for a vectorized path.
///
/// The contract that makes dispatch safe to ignore everywhere else: every
/// kernel returns a bit-identical result at every tier (see DESIGN.md §10).
/// Integer kernels are exact by nature; the floating-point kernels commit
/// to one canonical accumulation order that all tiers reproduce. Link sets
/// therefore never depend on the machine the run happened to land on.
enum class SimdLevel : int {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

/// Human-readable tier name ("scalar", "sse4.2", "avx2"); recorded in
/// RunReport::kernel and the bench metrics so every BENCH_*.json says
/// which path produced it.
[[nodiscard]] const char* SimdLevelName(SimdLevel level);

/// Raw CPU capability probe (cpuid). Ignores every override below.
[[nodiscard]] SimdLevel DetectCpuSimdLevel();

/// The tier the kernels actually dispatch to. Resolution order:
///   1. SetSimdLevelForTesting override (if any);
///   2. GROUPLINK_FORCE_SCALAR=1 in the environment -> kScalar;
///   3. -DGROUPLINK_DISABLE_SIMD=ON build -> kScalar;
///   4. DetectCpuSimdLevel().
/// The environment is read once and cached: flipping the variable after
/// the first call has no effect (use the test override instead).
[[nodiscard]] SimdLevel ActiveSimdLevel();

/// Test hook: pins ActiveSimdLevel() to `level`, clamped to what the CPU
/// (and the build) actually supports — requesting kAvx2 on a non-AVX2
/// machine yields the highest safe tier, never an illegal instruction.
/// The differential suite uses this to run scalar and vectorized paths in
/// one process and assert bitwise equality.
void SetSimdLevelForTesting(SimdLevel level);

/// Removes the test override; ActiveSimdLevel() resumes rules 2-4.
void ClearSimdLevelForTesting();

/// Parses a GROUPLINK_FORCE_SCALAR value ("1", "true", "yes", "on" =>
/// true; null/anything else => false). Exposed so tests can cover the
/// parse without mutating the process environment.
[[nodiscard]] bool ForceScalarEnvValue(const char* value);

}  // namespace grouplink

#endif  // GROUPLINK_COMMON_SIMD_DISPATCH_H_
