#ifndef GROUPLINK_COMMON_ARENA_H_
#define GROUPLINK_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/logging.h"

namespace grouplink {

/// Non-owning view of a contiguous array: the currency of the flat,
/// structure-of-arrays layouts used by the batched kernels (DESIGN.md
/// §10). A Span is two words; copying one never copies elements.
template <typename T>
class Span {
 public:
  Span() = default;
  Span(T* data, size_t size) : data_(data), size_(size) {}
  /// Span<T> converts to Span<const T> implicitly, like pointers do.
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U (*)[], T (*)[]>>>
  Span(const Span<U>& other) : data_(other.data()), size_(other.size()) {}

  T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](size_t i) const {
    GL_DCHECK_LT(i, size_);
    return data_[i];
  }
  T* begin() const { return data_; }
  T* end() const { return data_ + size_; }
  Span<T> subspan(size_t offset, size_t count) const {
    GL_DCHECK_LE(offset + count, size_);
    return {data_ + offset, count};
  }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

/// Bump-pointer pool for trivially-destructible arrays: one malloc per
/// chunk instead of one per document/posting list, 64-byte alignment so
/// vector loads never straddle cache lines, zero per-array bookkeeping.
/// Nothing is freed individually — the pool's lifetime IS the layout's
/// lifetime (the VarPool idiom). Not thread-safe; allocate single-threaded
/// (or per worker), share the resulting Spans read-only.
class ArenaPool {
 public:
  static constexpr size_t kAlignment = 64;
  static constexpr size_t kDefaultChunkBytes = size_t{1} << 20;

  explicit ArenaPool(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes < kAlignment ? kAlignment : chunk_bytes) {}

  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;
  ArenaPool(ArenaPool&&) = default;
  ArenaPool& operator=(ArenaPool&&) = default;

  /// Uninitialized, kAlignment-aligned array of `count` Ts. The memory
  /// lives until the pool is destroyed or Reset.
  template <typename T>
  Span<T> AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    static_assert(alignof(T) <= kAlignment, "over-aligned type");
    if (count == 0) return {};
    return {static_cast<T*>(AllocateBytes(count * sizeof(T))), count};
  }

  /// Total bytes handed out (excluding alignment padding).
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Frees every chunk. All Spans from this pool become dangling.
  void Reset() {
    chunks_.clear();
    bytes_allocated_ = 0;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };

  void* AllocateBytes(size_t bytes) {
    Chunk* chunk = chunks_.empty() ? nullptr : &chunks_.back();
    // `used` may exceed `capacity` by up to kAlignment-1 from cursor
    // round-up (the chunk is over-allocated by kAlignment to absorb it),
    // so the room check must be in sum form, not subtraction.
    if (chunk == nullptr || chunk->used + bytes > chunk->capacity) {
      const size_t capacity = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
      // Over-allocate so the base can be rounded up to kAlignment:
      // operator new[] only guarantees alignof(max_align_t).
      Chunk fresh;
      fresh.data = std::make_unique<std::byte[]>(capacity + kAlignment);
      fresh.capacity = capacity;
      chunks_.push_back(std::move(fresh));
      chunk = &chunks_.back();
    }
    const auto base = reinterpret_cast<uintptr_t>(chunk->data.get());
    uintptr_t cursor = base + chunk->used;
    cursor = (cursor + kAlignment - 1) & ~uintptr_t{kAlignment - 1};
    chunk->used = cursor - base + bytes;
    GL_DCHECK_LE(chunk->used, chunk->capacity + kAlignment);
    bytes_allocated_ += bytes;
    return reinterpret_cast<void*>(cursor);
  }

  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t bytes_allocated_ = 0;
};

}  // namespace grouplink

#endif  // GROUPLINK_COMMON_ARENA_H_
