#ifndef GROUPLINK_COMMON_RANDOM_H_
#define GROUPLINK_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace grouplink {

/// Deterministic pseudo-random number generator (xoshiro256++ seeded via
/// splitmix64). All randomized components of the library — data generators,
/// perturbations, sampling — draw from this type so that every experiment
/// is exactly reproducible from a seed.
///
/// Not cryptographically secure. Not thread-safe; use one Rng per thread.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit value.
  [[nodiscard]] uint64_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  /// Uses rejection sampling, so the distribution is exactly uniform.
  [[nodiscard]] uint64_t Uniform(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  [[nodiscard]] double UniformDouble();

  /// Returns a uniform double in [lo, hi).
  [[nodiscard]] double UniformDouble(double lo, double hi);

  /// Returns true with probability `p` (clamped to [0, 1]).
  [[nodiscard]] bool Bernoulli(double p);

  /// Returns a sample from the standard normal distribution
  /// (Box-Muller; consumes two uniform draws per pair of outputs).
  [[nodiscard]] double Normal();

  /// Returns a sample from N(mean, stddev^2).
  [[nodiscard]] double Normal(double mean, double stddev);

  /// Returns an integer in [0, n) following a Zipf distribution with
  /// exponent `s` (probability of rank r proportional to 1/(r+1)^s).
  /// Requires n > 0 and s >= 0. Uses inversion on the precomputed CDF when
  /// repeated sampling is needed — see ZipfSampler below; this method
  /// recomputes and is O(n), intended for one-off draws in tests.
  [[nodiscard]] uint64_t ZipfOnce(uint64_t n, double s);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Returns `k` distinct indices sampled uniformly without replacement
  /// from [0, n). Requires k <= n. O(n) time and space.
  [[nodiscard]] std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Returns a reference to one element of `items` chosen uniformly.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[Uniform(items.size())];
  }

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Precomputed Zipf sampler: O(n) construction, O(log n) per sample.
class ZipfSampler {
 public:
  /// Distribution over {0, ..., n-1} with P(r) proportional to 1/(r+1)^s.
  ZipfSampler(uint64_t n, double s);

  [[nodiscard]] uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace grouplink

#endif  // GROUPLINK_COMMON_RANDOM_H_
