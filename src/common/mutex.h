#ifndef GROUPLINK_COMMON_MUTEX_H_
#define GROUPLINK_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

// Annotated mutex layer: every lock in the project goes through these
// wrappers so Clang Thread Safety Analysis (Hutchins et al., CGO 2014)
// can prove the lock discipline at compile time (DESIGN.md §14). The
// GL_* macros expand to Clang capability attributes under any compiler
// that understands them and to nothing everywhere else, so GCC builds
// are bit-identical to the unannotated tree. check_invariants.py's
// raw-mutex rule confines the underlying std primitives to this header.
//
// Conventions (enforced by the -Wthread-safety CI gate):
//   * every field guarded by a mutex carries GL_GUARDED_BY(mu_)
//   * every *Locked() helper carries GL_REQUIRES(mu_)
//   * functions that take the lock themselves carry GL_EXCLUDES(mu_)
//     when callers might plausibly hold it
//   * GL_NO_THREAD_SAFETY_ANALYSIS requires a reason string; bare
//     suppressions do not compile.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define GL_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef GL_THREAD_ANNOTATION_
#define GL_THREAD_ANNOTATION_(x)
#endif

#define GL_CAPABILITY(x) GL_THREAD_ANNOTATION_(capability(x))
#define GL_SCOPED_CAPABILITY GL_THREAD_ANNOTATION_(scoped_lockable)
#define GL_GUARDED_BY(x) GL_THREAD_ANNOTATION_(guarded_by(x))
#define GL_PT_GUARDED_BY(x) GL_THREAD_ANNOTATION_(pt_guarded_by(x))
#define GL_ACQUIRED_BEFORE(...) GL_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define GL_ACQUIRED_AFTER(...) GL_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define GL_REQUIRES(...) GL_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define GL_REQUIRES_SHARED(...) \
  GL_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define GL_ACQUIRE(...) GL_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define GL_ACQUIRE_SHARED(...) \
  GL_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define GL_RELEASE(...) GL_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define GL_RELEASE_SHARED(...) \
  GL_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define GL_TRY_ACQUIRE(...) GL_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define GL_TRY_ACQUIRE_SHARED(...) \
  GL_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))
#define GL_EXCLUDES(...) GL_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define GL_ASSERT_CAPABILITY(x) GL_THREAD_ANNOTATION_(assert_capability(x))
#define GL_ASSERT_SHARED_CAPABILITY(x) \
  GL_THREAD_ANNOTATION_(assert_shared_capability(x))
#define GL_RETURN_CAPABILITY(x) GL_THREAD_ANNOTATION_(lock_returned(x))

// Suppression with a mandatory reason: the string is discarded by the
// preprocessor but a bare GL_NO_THREAD_SAFETY_ANALYSIS() with no
// argument is a compile error, so every opt-out carries its
// justification next to the code it excuses.
#define GL_NO_THREAD_SAFETY_ANALYSIS(reason) \
  GL_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace grouplink {

class CondVar;

/// Exclusive mutex. A thin wrapper over std::mutex whose only job is to
/// carry the capability attribute; same cost, same semantics.
class GL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GL_ACQUIRE() { raw_.lock(); }
  void Unlock() GL_RELEASE() { raw_.unlock(); }
  [[nodiscard]] bool TryLock() GL_TRY_ACQUIRE(true) { return raw_.try_lock(); }

  /// Analysis-only assertion that the calling context holds the lock.
  /// No runtime effect; use where the analysis cannot see the acquire
  /// (and say why in an adjacent comment).
  void AssertHeld() const GL_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex raw_;
};

/// Reader/writer mutex for read-mostly state (e.g. the Tracer): any
/// number of ReaderLock holders, or one Lock holder.
class GL_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() GL_ACQUIRE() { raw_.lock(); }
  void Unlock() GL_RELEASE() { raw_.unlock(); }
  [[nodiscard]] bool TryLock() GL_TRY_ACQUIRE(true) { return raw_.try_lock(); }

  void ReaderLock() GL_ACQUIRE_SHARED() { raw_.lock_shared(); }
  void ReaderUnlock() GL_RELEASE_SHARED() { raw_.unlock_shared(); }
  [[nodiscard]] bool ReaderTryLock() GL_TRY_ACQUIRE_SHARED(true) {
    return raw_.try_lock_shared();
  }

  void AssertHeld() const GL_ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const GL_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex raw_;
};

/// RAII exclusive lock over Mutex. Scope-shaped by design: the analysis
/// rejects code paths where the lock could leak or release twice.
class GL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) GL_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() GL_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class GL_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) GL_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() GL_RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class GL_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) GL_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() GL_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable bound to Mutex. Wait/WaitFor require the mutex —
/// the analysis rejects a wait without the lock held — and, like the
/// std primitive, can wake spuriously: always wait in a loop over the
/// guarded predicate.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu and blocks; reacquires before returning.
  void Wait(Mutex* mu) GL_REQUIRES(mu) {
    std::unique_lock<std::mutex> reacquire(mu->raw_, std::adopt_lock);
    cv_.wait(reacquire);
    reacquire.release();  // Ownership stays with the caller's MutexLock.
  }

  /// Wait bounded by `timeout_ms` (double, matching the project-wide
  /// milliseconds convention). Returns true if notified before the
  /// deadline, false on timeout (the lock is reacquired either way).
  bool WaitFor(Mutex* mu, double timeout_ms) GL_REQUIRES(mu) {
    std::unique_lock<std::mutex> reacquire(mu->raw_, std::adopt_lock);
    const std::cv_status st = cv_.wait_for(
        reacquire, std::chrono::duration<double, std::milli>(timeout_ms));
    reacquire.release();
    return st == std::cv_status::no_timeout;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace grouplink

/// Short alias used throughout: gl::Mutex, gl::MutexLock, ...
namespace gl = grouplink;

#endif  // GROUPLINK_COMMON_MUTEX_H_
