#ifndef GROUPLINK_COMMON_EPOCH_CELL_H_
#define GROUPLINK_COMMON_EPOCH_CELL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

namespace grouplink {

/// Publication slot for immutable epoch state, the serving layer's
/// read/write split (DESIGN.md §11): one writer builds the next epoch off
/// to the side and Store()s it; any number of readers Load() the current
/// epoch concurrently, with no mutex on either side.
///
/// The contract that makes this safe is *immutability after publication*:
/// a T handed to Store() must never be mutated again — readers hold plain
/// `shared_ptr<const T>` references to it with no further synchronization.
/// Store(release) / Load(acquire) ordering guarantees a reader that
/// observes the new pointer also observes every write that built the
/// object, so a published epoch is always fully constructed from the
/// reader's point of view.
///
/// Memory reclamation is the shared_ptr refcount itself: a retired epoch
/// stays alive exactly as long as some reader still holds it, and is
/// destroyed on the last release — no epoch-based reclamation scheme or
/// hazard pointers needed, at the cost of one refcount RMW per Load.
///
/// Implementation note: the production build publishes through
/// std::atomic<std::shared_ptr> (mutex-free on both sides). Under TSan
/// the cell switches to a mutex-guarded slot instead: libstdc++'s
/// _Sp_atomic synchronizes via a lock bit embedded in the refcount word,
/// which TSan cannot model (GCC PR 101761 — false data-race reports on
/// the internal pointer swap). The mutex variant has identical semantics
/// and keeps the *real* publication ordering visible to the sanitizer,
/// so misuse (e.g. mutating a published epoch) is still caught.
template <typename T>
class EpochCell {
 public:
  EpochCell() = default;
  explicit EpochCell(std::shared_ptr<const T> initial)
      : cell_(std::move(initial)) {}

  EpochCell(const EpochCell&) = delete;
  EpochCell& operator=(const EpochCell&) = delete;

  /// The currently published epoch (null until the first Store). Safe
  /// from any thread at any time; the returned reference keeps the epoch
  /// alive however long the caller holds it.
  [[nodiscard]] std::shared_ptr<const T> Load() const {
#if defined(__SANITIZE_THREAD__)
    std::lock_guard<std::mutex> lock(mu_);
    return cell_;
#else
    return cell_.load(std::memory_order_acquire);
#endif
  }

  /// Publishes `next` as the current epoch. The previous epoch is
  /// released (and destroyed once its last reader drops it). Single
  /// writer by convention — concurrent Stores are safe but their order
  /// is whatever the atomic decides.
  void Store(std::shared_ptr<const T> next) {
#if defined(__SANITIZE_THREAD__)
    std::shared_ptr<const T> retired;  // Destroy the old epoch unlocked.
    std::lock_guard<std::mutex> lock(mu_);
    retired.swap(cell_);
    cell_ = std::move(next);
#else
    cell_.store(std::move(next), std::memory_order_release);
#endif
  }

 private:
#if defined(__SANITIZE_THREAD__)
  mutable std::mutex mu_;
  std::shared_ptr<const T> cell_;
#else
  std::atomic<std::shared_ptr<const T>> cell_;
#endif
};

}  // namespace grouplink

#endif  // GROUPLINK_COMMON_EPOCH_CELL_H_
