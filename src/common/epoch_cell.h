#ifndef GROUPLINK_COMMON_EPOCH_CELL_H_
#define GROUPLINK_COMMON_EPOCH_CELL_H_

#include <atomic>
#include <memory>
#include <utility>

#include "common/mutex.h"

// TSan detection across toolchains: GCC defines __SANITIZE_THREAD__,
// Clang reports it through __has_feature.
#if defined(__SANITIZE_THREAD__)
#define GROUPLINK_EPOCH_CELL_TSAN_ 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GROUPLINK_EPOCH_CELL_TSAN_ 1
#endif
#endif

namespace grouplink {

/// Publication slot for immutable epoch state, the serving layer's
/// read/write split (DESIGN.md §11): one writer builds the next epoch off
/// to the side and Store()s it; any number of readers Load() the current
/// epoch concurrently, with no mutex on either side.
///
/// The contract that makes this safe is *immutability after publication*:
/// a T handed to Store() must never be mutated again — readers hold plain
/// `shared_ptr<const T>` references to it with no further synchronization.
/// Store(release) / Load(acquire) ordering guarantees a reader that
/// observes the new pointer also observes every write that built the
/// object, so a published epoch is always fully constructed from the
/// reader's point of view.
///
/// Memory reclamation is the shared_ptr refcount itself: a retired epoch
/// stays alive exactly as long as some reader still holds it, and is
/// destroyed on the last release — no epoch-based reclamation scheme or
/// hazard pointers needed, at the cost of one refcount RMW per Load.
///
/// Implementation note: the production build publishes through
/// std::atomic<std::shared_ptr> (mutex-free on both sides). Under TSan
/// the cell switches to a mutex-guarded slot instead: libstdc++'s
/// _Sp_atomic synchronizes via a lock bit embedded in the refcount word,
/// which TSan cannot model (GCC PR 101761 — false data-race reports on
/// the internal pointer swap). The mutex variant has identical semantics
/// and keeps the *real* publication ordering visible to the sanitizer,
/// so misuse (e.g. mutating a published epoch) is still caught.
template <typename T>
class EpochCell {
 public:
  EpochCell() = default;
  explicit EpochCell(std::shared_ptr<const T> initial)
      : cell_(std::move(initial)) {}

  EpochCell(const EpochCell&) = delete;
  EpochCell& operator=(const EpochCell&) = delete;

  /// The currently published epoch (null until the first Store). Safe
  /// from any thread at any time; the returned reference keeps the epoch
  /// alive however long the caller holds it.
  [[nodiscard]] std::shared_ptr<const T> Load() const {
#if defined(GROUPLINK_EPOCH_CELL_TSAN_)
    MutexLock lock(&mu_);
    return cell_;
#else
    return cell_.load(std::memory_order_acquire);
#endif
  }

  /// Publishes `next` as the current epoch. The previous epoch is
  /// released (and destroyed once its last reader drops it). Single
  /// writer by convention — concurrent Stores are safe but their order
  /// is whatever the atomic decides.
  void Store(std::shared_ptr<const T> next) {
#if defined(GROUPLINK_EPOCH_CELL_TSAN_)
    std::shared_ptr<const T> retired;  // Destroy the old epoch unlocked.
    MutexLock lock(&mu_);
    retired.swap(cell_);
    cell_ = std::move(next);
#else
    cell_.store(std::move(next), std::memory_order_release);
#endif
  }

 private:
#if defined(GROUPLINK_EPOCH_CELL_TSAN_)
  // The twin is a sanitizer-build artifact, not a lock-discipline
  // opt-out: libstdc++'s _Sp_atomic hides its synchronization in a
  // refcount lock bit TSan cannot model (GCC PR 101761), so under TSan
  // the cell publishes through a real mutex with identical acquire/
  // release semantics instead. The mutex path is fully annotated —
  // no GL_NO_THREAD_SAFETY_ANALYSIS needed — and the production path
  // is a bare atomic with no capability to track. DESIGN.md §14 covers
  // when such twin structures are acceptable.
  mutable Mutex mu_;
  std::shared_ptr<const T> cell_ GL_GUARDED_BY(mu_);
#else
  std::atomic<std::shared_ptr<const T>> cell_;
#endif
};

}  // namespace grouplink

#endif  // GROUPLINK_COMMON_EPOCH_CELL_H_
