#ifndef GROUPLINK_COMMON_TRACE_H_
#define GROUPLINK_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"

namespace grouplink {

/// Lightweight per-stage wall-time tracing: RAII spans record into a span
/// tree on the process-wide Tracer, with text and JSON exporters. Spans
/// mark *stages* (prepare, join, bucket, score, one incremental arrival),
/// not per-item work — a run produces a handful of nodes, so the layer
/// stays on by default.
///
///   {
///     GL_TRACE_SPAN("candidates");
///     ...  // Nested GL_TRACE_SPANs become children.
///   }
///
/// Thread model: each thread keeps its own open-span stack, so spans
/// opened on a worker thread start their own root rather than racing to
/// attach under another thread's open span. Completed roots are appended
/// to the Tracer under a mutex (bounded: excess roots are dropped and
/// counted, so long incremental streams can't grow memory unboundedly).
/// Tracing records timings only — it never affects linkage output.

/// Global switch (default enabled). Flip at startup, not mid-span.
[[nodiscard]] bool TracingEnabled();
void SetTracingEnabled(bool enabled);

/// One completed (or still-open) span.
struct TraceNode {
  std::string name;
  /// Start offset from the process trace epoch, nanoseconds.
  int64_t start_ns = 0;
  double seconds = 0.0;
  /// Key/value annotations added via TagCurrentSpan (e.g. degraded=true,
  /// shed counts). Usually empty.
  std::vector<std::pair<std::string, std::string>> tags;
  std::vector<std::unique_ptr<TraceNode>> children;
};

/// Attaches a tag to this thread's innermost open span. No-op when
/// tracing is disabled or no span is open.
void TagCurrentSpan(std::string_view key, std::string_view value);

/// Owner of completed root spans.
class Tracer {
 public:
  static Tracer& Default();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Drops every recorded root (open spans are unaffected; they attach on
  /// close as usual). Call between runs, not mid-run.
  void Clear();

  size_t num_roots() const;
  /// Roots dropped because the kMaxRoots cap was reached since Clear().
  size_t dropped_roots() const;

  /// Indented tree, one span per line: "name  seconds".
  std::string ToText() const;
  /// {"spans": [{"name", "start_ns", "seconds", "children": [...]}, ...],
  ///  "dropped_roots": N}
  std::string ToJson(int indent = 2) const;

 private:
  friend class TraceSpan;
  static constexpr size_t kMaxRoots = 8192;

  void AddRoot(std::unique_ptr<TraceNode> root);

  // Reader/writer split: exporters and size probes take the shared side,
  // so concurrent ToText/ToJson/num_roots calls never serialize on each
  // other — only span closes (AddRoot) and Clear write.
  mutable SharedMutex mutex_;
  std::vector<std::unique_ptr<TraceNode>> roots_ GL_GUARDED_BY(mutex_);
  size_t dropped_ GL_GUARDED_BY(mutex_) = 0;
};

/// RAII span. Prefer the GL_TRACE_SPAN macro.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  // Null when tracing was disabled at construction.
  TraceNode* node_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace grouplink

#define GL_TRACE_CONCAT_INNER(a, b) a##b
#define GL_TRACE_CONCAT(a, b) GL_TRACE_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope.
#define GL_TRACE_SPAN(name) \
  ::grouplink::TraceSpan GL_TRACE_CONCAT(gl_trace_span_, __LINE__)(name)

#endif  // GROUPLINK_COMMON_TRACE_H_
