#ifndef GROUPLINK_COMMON_UNION_FIND_H_
#define GROUPLINK_COMMON_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace grouplink {

/// Disjoint-set forest with union by rank and path compression.
/// Used to turn pairwise group links into entity clusters.
class UnionFind {
 public:
  /// Creates `n` singleton sets {0}, ..., {n-1}.
  explicit UnionFind(size_t n);

  /// Appends one new singleton set and returns its element id (== the old
  /// size()). Lets incremental consumers grow the universe without
  /// rebuilding the forest.
  size_t AddElement();

  /// Returns the representative of `x`'s set (with path compression).
  [[nodiscard]] size_t Find(size_t x);

  /// Merges the sets of `a` and `b`; returns true if they were distinct.
  bool Union(size_t a, size_t b);

  /// True if `a` and `b` are in the same set.
  [[nodiscard]] bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  /// Number of elements.
  [[nodiscard]] size_t size() const { return parent_.size(); }

  /// Number of disjoint sets remaining.
  [[nodiscard]] size_t num_sets() const { return num_sets_; }

  /// Returns a label in [0, num_sets()) per element; elements share a label
  /// iff they are in the same set. Labels are assigned in order of first
  /// appearance, so the output is deterministic.
  [[nodiscard]] std::vector<size_t> ComponentLabels();

 private:
  std::vector<size_t> parent_;
  std::vector<uint8_t> rank_;
  size_t num_sets_;
};

}  // namespace grouplink

#endif  // GROUPLINK_COMMON_UNION_FIND_H_
