#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace grouplink {

std::string CsvEscape(std::string_view field, char delimiter) {
  const bool needs_quoting =
      field.find(delimiter) != std::string_view::npos ||
      field.find('"') != std::string_view::npos ||
      field.find('\n') != std::string_view::npos ||
      field.find('\r') != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvFormatRow(const std::vector<std::string>& fields, char delimiter) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += delimiter;
    out += CsvEscape(fields[i], delimiter);
  }
  return out;
}

Result<std::vector<std::string>> CsvParseLine(std::string_view line, char delimiter,
                                              const CsvParseOptions& options) {
  GL_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                      CsvParseDocument(line, delimiter, options));
  if (rows.empty()) return std::vector<std::string>{""};
  if (rows.size() != 1) {
    return Status::ParseError("line contains an embedded newline; use CsvParseDocument");
  }
  return std::move(rows[0]);
}

Result<std::vector<std::vector<std::string>>> CsvParseDocument(
    std::string_view text, char delimiter, const CsvParseOptions& options) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_has_content = false;  // Current field saw a char or a quote.
  bool pending_field = false;      // A delimiter promised one more field.
  Status limit_error;  // First limit violation; aborts the parse loop.

  const auto end_field = [&] {
    if (options.max_field_bytes > 0 && field.size() > options.max_field_bytes) {
      limit_error = Status::ParseError(
          "field in row " + std::to_string(rows.size()) + " exceeds " +
          std::to_string(options.max_field_bytes) + " bytes");
      return;
    }
    if (options.max_columns > 0 && row.size() >= options.max_columns) {
      limit_error = Status::ParseError(
          "row " + std::to_string(rows.size()) + " exceeds " +
          std::to_string(options.max_columns) + " columns");
      return;
    }
    row.push_back(std::move(field));
    field.clear();
    field_has_content = false;
    pending_field = false;
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size() && limit_error.ok(); ++i) {
    const char c = text[i];
    if (c == '\0') {
      return Status::ParseError("embedded NUL byte at offset " + std::to_string(i));
    }
    // Strictly greater: a field of exactly max_field_bytes is legal, so the
    // error can only be decided once the field has outgrown the limit (the
    // in-memory overshoot is bounded to one byte; end_field re-checks the
    // final size for fields terminated by end-of-text).
    if (options.max_field_bytes > 0 && field.size() > options.max_field_bytes) {
      return Status::ParseError(
          "field in row " + std::to_string(rows.size()) + " exceeds " +
          std::to_string(options.max_field_bytes) + " bytes");
    }
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"' && !field_has_content) {
      in_quotes = true;
      field_has_content = true;
    } else if (c == delimiter) {
      end_field();
      pending_field = true;  // The next field exists even if empty.
    } else if (c == '\n') {
      end_row();
    } else if (c == '\r') {
      // Swallow CR of CRLF; a bare CR also terminates the row.
      if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
      end_row();
    } else {
      field += c;
      field_has_content = true;
    }
  }
  if (!limit_error.ok()) return limit_error;
  if (in_quotes) return Status::ParseError("unterminated quoted CSV field");
  if (field_has_content || pending_field || !row.empty()) end_row();
  if (!limit_error.ok()) return limit_error;
  return rows;
}

Result<std::vector<std::vector<std::string>>> CsvReadFile(
    const std::string& path, char delimiter, const CsvParseOptions& options) {
  // gl-lint: allow(raw-file-io) CSV datasets are inputs, not durable state; the recovery contract does not apply
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return CsvParseDocument(buffer.str(), delimiter, options);
}

Status CsvWriteFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    char delimiter) {
  // gl-lint: allow(raw-file-io) CSV export is a report artifact, not durable state
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  for (const auto& row : rows) {
    out << CsvFormatRow(row, delimiter) << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace grouplink
