#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/execution_context.h"
#include "common/fault_injection.h"
#include "common/logging.h"

namespace grouplink {

ThreadPool::ThreadPool(size_t num_threads) {
  GL_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutting_down_ = true;
  }
  task_available_.SignalAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mutex_);
    GL_CHECK(!shutting_down_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.Signal();
}

void ThreadPool::Wait() {
  MutexLock lock(&mutex_);
  while (in_flight_ != 0) all_done_.Wait(&mutex_);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!shutting_down_ && tasks_.empty()) task_available_.Wait(&mutex_);
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(&mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.SignalAll();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Contiguous chunks, a few per worker to absorb skew.
  const size_t chunks = std::min(n, pool->num_threads() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) break;
    pool->Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool->Wait();
}

namespace {

// Runs one contiguous chunk under the context's stop/fault policy and
// returns how many iterations executed.
size_t RunChunk(size_t begin, size_t end, const std::function<void(size_t)>& fn,
                ExecutionContext* ctx) {
  FaultInjector::Default().FireWithDelay(faults::kSlowTask);
  if (FaultInjector::Default().ShouldFire(faults::kFailTask)) {
    ctx->NoteDegraded();
    return 0;
  }
  size_t executed = 0;
  for (size_t i = begin; i < end; ++i) {
    if (ctx->StopRequested()) break;
    fn(i);
    ++executed;
  }
  return executed;
}

}  // namespace

size_t ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn,
                   ExecutionContext* ctx) {
  if (ctx == nullptr) {
    ParallelFor(pool, n, fn);
    return n;
  }
  if (n == 0) return 0;
  if (pool == nullptr || pool->num_threads() <= 1) {
    return RunChunk(0, n, fn, ctx);
  }
  const size_t chunks = std::min(n, pool->num_threads() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  std::atomic<size_t> executed{0};
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) break;
    pool->Submit([begin, end, &fn, ctx, &executed] {
      executed.fetch_add(RunChunk(begin, end, fn, ctx),
                         std::memory_order_relaxed);
    });
  }
  pool->Wait();
  return executed.load(std::memory_order_relaxed);
}

size_t DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace grouplink
