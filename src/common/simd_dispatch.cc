#include "common/simd_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace grouplink {
namespace {

// -1 = no override; otherwise the pinned SimdLevel as int.
std::atomic<int> g_test_override{-1};

// The tier the environment permits: build flag and env var can only lower
// what the CPU reports, never raise it.
SimdLevel EnvironmentCappedLevel() {
#if defined(GROUPLINK_DISABLE_SIMD)
  return SimdLevel::kScalar;
#else
  if (ForceScalarEnvValue(std::getenv("GROUPLINK_FORCE_SCALAR"))) {
    return SimdLevel::kScalar;
  }
  return DetectCpuSimdLevel();
#endif
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse42:
      return "sse4.2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel DetectCpuSimdLevel() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return SimdLevel::kSse42;
#endif
  return SimdLevel::kScalar;
}

bool ForceScalarEnvValue(const char* value) {
  if (value == nullptr) return false;
  const std::string_view v(value);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

SimdLevel ActiveSimdLevel() {
  const int pinned = g_test_override.load(std::memory_order_relaxed);
  if (pinned >= 0) return static_cast<SimdLevel>(pinned);
  // Read the environment exactly once: kernels consult this per batch, and
  // a mid-run flip would break the one-run-one-tier reporting contract.
  static const SimdLevel level = EnvironmentCappedLevel();
  return level;
}

void SetSimdLevelForTesting(SimdLevel level) {
  SimdLevel cap = DetectCpuSimdLevel();
#if defined(GROUPLINK_DISABLE_SIMD)
  cap = SimdLevel::kScalar;  // The vector paths are compiled out.
#endif
  const int clamped =
      static_cast<int>(level) < static_cast<int>(cap) ? static_cast<int>(level)
                                                      : static_cast<int>(cap);
  g_test_override.store(clamped, std::memory_order_relaxed);
}

void ClearSimdLevelForTesting() {
  g_test_override.store(-1, std::memory_order_relaxed);
}

}  // namespace grouplink
