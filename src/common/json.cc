#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace grouplink {

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::NewlineAndIndent() {
  if (indent_ <= 0) return;
  out_.push_back('\n');
  out_.append(scopes_.size() * static_cast<size_t>(indent_), ' ');
}

void JsonWriter::BeforeValue() {
  if (scopes_.empty()) return;  // Top-level value.
  if (scopes_.back() == Scope::kObject) {
    // Object values are emitted by Key(); only the key itself needs the
    // comma/indent treatment, handled there.
    GL_CHECK(pending_key_) << "JSON object value without a preceding Key()";
    pending_key_ = false;
    return;
  }
  if (has_element_.back()) out_.push_back(',');
  has_element_.back() = true;
  NewlineAndIndent();
}

void JsonWriter::Key(std::string_view key) {
  GL_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject)
      << "Key() outside an object";
  GL_CHECK(!pending_key_) << "Key() after Key() without a value";
  if (has_element_.back()) out_.push_back(',');
  has_element_.back() = true;
  NewlineAndIndent();
  out_ += Escape(key);
  out_ += indent_ > 0 ? ": " : ":";
  pending_key_ = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  scopes_.push_back(Scope::kObject);
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  GL_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  GL_CHECK(!pending_key_) << "EndObject() with a dangling Key()";
  const bool had_elements = has_element_.back();
  scopes_.pop_back();
  has_element_.pop_back();
  if (had_elements) NewlineAndIndent();
  out_.push_back('}');
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  scopes_.push_back(Scope::kArray);
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  GL_CHECK(!scopes_.empty() && scopes_.back() == Scope::kArray);
  const bool had_elements = has_element_.back();
  scopes_.pop_back();
  has_element_.pop_back();
  if (had_elements) NewlineAndIndent();
  out_.push_back(']');
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += Escape(value);
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void JsonWriter::Field(std::string_view key, std::string_view value) {
  Key(key);
  String(value);
}

void JsonWriter::Field(std::string_view key, int64_t value) {
  Key(key);
  Int(value);
}

void JsonWriter::Field(std::string_view key, uint64_t value) {
  Key(key);
  UInt(value);
}

void JsonWriter::Field(std::string_view key, double value) {
  Key(key);
  Double(value);
}

void JsonWriter::Field(std::string_view key, bool value) {
  Key(key);
  Bool(value);
}

}  // namespace grouplink
