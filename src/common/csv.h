#ifndef GROUPLINK_COMMON_CSV_H_
#define GROUPLINK_COMMON_CSV_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace grouplink {

/// RFC-4180-style CSV support: fields containing the delimiter, a quote, or
/// a newline are quoted; embedded quotes are doubled. Used by dataset I/O.

/// Input hardening limits for the parser. Malformed or hostile input
/// (embedded NUL bytes, runaway unquoted fields, column bombs) returns
/// Status::ParseError instead of crashing or consuming unbounded memory.
struct CsvParseOptions {
  /// Largest single field, bytes. 0 disables the check.
  size_t max_field_bytes = size_t{1} << 20;
  /// Most columns allowed in one row. 0 disables the check.
  size_t max_columns = 4096;
};

/// Escapes one field for CSV output (quotes only when needed).
[[nodiscard]] std::string CsvEscape(std::string_view field, char delimiter = ',');

/// Renders one row (no trailing newline).
[[nodiscard]] std::string CsvFormatRow(const std::vector<std::string>& fields, char delimiter = ',');

/// Parses one logical CSV line into fields. The line must not contain an
/// unterminated quoted field (multi-line fields are handled by CsvReader).
[[nodiscard]] Result<std::vector<std::string>> CsvParseLine(std::string_view line,
                                              char delimiter = ',',
                                              const CsvParseOptions& options = {});

/// Parses a whole CSV document (supports quoted fields spanning lines).
[[nodiscard]] Result<std::vector<std::vector<std::string>>> CsvParseDocument(
    std::string_view text, char delimiter = ',',
    const CsvParseOptions& options = {});

/// Reads and parses a CSV file from disk.
[[nodiscard]] Result<std::vector<std::vector<std::string>>> CsvReadFile(
    const std::string& path, char delimiter = ',',
    const CsvParseOptions& options = {});

/// Writes rows to a CSV file, replacing any existing content.
Status CsvWriteFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    char delimiter = ',');

}  // namespace grouplink

#endif  // GROUPLINK_COMMON_CSV_H_
