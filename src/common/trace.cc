#include "common/trace.h"

#include <atomic>

#include "common/json.h"
#include "common/string_util.h"

namespace grouplink {
namespace {

std::atomic<bool> g_tracing_enabled{true};

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// Per-thread stack of open spans. The bottom entry additionally owns its
// node (in t_open_root) until the root closes and moves to the Tracer.
thread_local std::vector<TraceNode*> t_open_stack;
thread_local std::unique_ptr<TraceNode> t_open_root;

void AppendText(const TraceNode& node, size_t depth, std::string* out) {
  out->append(2 * depth, ' ');
  out->append(node.name);
  // Pad to a fixed column so the durations line up for shallow trees.
  const size_t width = 2 * depth + node.name.size();
  out->append(width < 40 ? 40 - width : 1, ' ');
  out->append(FormatDouble(node.seconds, 6));
  out->append("s");
  for (const auto& [key, value] : node.tags) {
    out->append("  ");
    out->append(key);
    out->append("=");
    out->append(value);
  }
  out->append("\n");
  for (const auto& child : node.children) {
    AppendText(*child, depth + 1, out);
  }
}

void AppendJson(const TraceNode& node, JsonWriter* json) {
  json->BeginObject();
  json->Field("name", node.name);
  json->Field("start_ns", static_cast<int64_t>(node.start_ns));
  json->Field("seconds", node.seconds);
  if (!node.tags.empty()) {
    json->Key("tags");
    json->BeginObject();
    for (const auto& [key, value] : node.tags) {
      json->Field(key, value);
    }
    json->EndObject();
  }
  json->Key("children");
  json->BeginArray();
  for (const auto& child : node.children) {
    AppendJson(*child, json);
  }
  json->EndArray();
  json->EndObject();
}

}  // namespace

bool TracingEnabled() { return g_tracing_enabled.load(std::memory_order_relaxed); }

void TagCurrentSpan(std::string_view key, std::string_view value) {
  if (!TracingEnabled() || t_open_stack.empty()) return;
  t_open_stack.back()->tags.emplace_back(std::string(key), std::string(value));
}

void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Clear() {
  WriterMutexLock lock(&mutex_);
  roots_.clear();
  dropped_ = 0;
}

size_t Tracer::num_roots() const {
  ReaderMutexLock lock(&mutex_);
  return roots_.size();
}

size_t Tracer::dropped_roots() const {
  ReaderMutexLock lock(&mutex_);
  return dropped_;
}

void Tracer::AddRoot(std::unique_ptr<TraceNode> root) {
  WriterMutexLock lock(&mutex_);
  if (roots_.size() >= kMaxRoots) {
    ++dropped_;
    return;
  }
  roots_.push_back(std::move(root));
}

std::string Tracer::ToText() const {
  ReaderMutexLock lock(&mutex_);
  std::string out;
  for (const auto& root : roots_) {
    AppendText(*root, 0, &out);
  }
  if (dropped_ > 0) {
    out += "(" + std::to_string(dropped_) + " root spans dropped)\n";
  }
  return out;
}

std::string Tracer::ToJson(int indent) const {
  ReaderMutexLock lock(&mutex_);
  JsonWriter json(indent);
  json.BeginObject();
  json.Key("spans");
  json.BeginArray();
  for (const auto& root : roots_) {
    AppendJson(*root, &json);
  }
  json.EndArray();
  json.Field("dropped_roots", static_cast<int64_t>(dropped_));
  json.EndObject();
  return json.str();
}

TraceSpan::TraceSpan(const char* name) {
  if (!TracingEnabled()) return;
  start_ = std::chrono::steady_clock::now();
  auto node = std::make_unique<TraceNode>();
  node->name = name;
  node->start_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(start_ - TraceEpoch())
          .count();
  node_ = node.get();
  if (t_open_stack.empty()) {
    t_open_root = std::move(node);
  } else {
    t_open_stack.back()->children.push_back(std::move(node));
  }
  t_open_stack.push_back(node_);
}

TraceSpan::~TraceSpan() {
  if (node_ == nullptr) return;
  node_->seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  // Spans are scoped objects, so destruction order matches reverse
  // construction order within a thread; the closing span is the top of
  // this thread's stack.
  if (!t_open_stack.empty() && t_open_stack.back() == node_) {
    t_open_stack.pop_back();
  }
  if (t_open_stack.empty() && t_open_root != nullptr && t_open_root.get() == node_) {
    Tracer::Default().AddRoot(std::move(t_open_root));
  }
}

}  // namespace grouplink
