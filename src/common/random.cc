#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace grouplink {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // xoshiro requires a non-zero state; splitmix64 expansion guarantees a
  // well-mixed state even for small seeds.
  uint64_t sm = seed;
  for (uint64_t& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  GL_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound`.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  GL_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform.
  double u1 = UniformDouble();
  while (u1 <= 0.0) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

uint64_t Rng::ZipfOnce(uint64_t n, double s) {
  ZipfSampler sampler(n, s);
  return sampler.Sample(*this);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  GL_CHECK_LE(k, n);
  std::vector<size_t> pool(n);
  for (size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: after k swaps the first k entries are the sample.
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + static_cast<size_t>(Uniform(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

ZipfSampler::ZipfSampler(uint64_t n, double s) {
  GL_CHECK_GT(n, 0u);
  GL_CHECK_GE(s, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // Guard against floating-point shortfall.
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace grouplink
