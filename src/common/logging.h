#ifndef GROUPLINK_COMMON_LOGGING_H_
#define GROUPLINK_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace grouplink {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum level below which log statements are discarded.
/// Defaults to kInfo. Thread-compatible: set once at startup.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

/// True when the library was compiled with GL_DCHECK active (!NDEBUG).
/// Tests use this to run contract death tests only in builds where the
/// contracts exist; Release builds compile them out entirely.
bool DchecksEnabled();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal messages call std::abort() after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is disabled.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace grouplink

#define GL_LOG_INTERNAL(level)                                              \
  ::grouplink::internal::LogMessage(level, __FILE__, __LINE__).stream()

/// Streams a log line at the given severity, e.g.
/// `GL_LOG(INFO) << "loaded " << n << " records";`
#define GL_LOG(severity)                                                     \
  (::grouplink::LogLevel::k##severity < ::grouplink::MinLogLevel())          \
      ? (void)0                                                              \
      : ::grouplink::internal::LogMessageVoidify() &                         \
            GL_LOG_INTERNAL(::grouplink::LogLevel::k##severity)

/// Aborts with a message when `condition` is false. Active in all builds:
/// used to enforce programmer invariants (not user-input validation, which
/// returns Status).
#define GL_CHECK(condition)                                                  \
  (condition) ? (void)0                                                      \
              : ::grouplink::internal::LogMessageVoidify() &                 \
                    GL_LOG_INTERNAL(::grouplink::LogLevel::kFatal)           \
                        << "Check failed: " #condition " "

#define GL_CHECK_OP(op, a, b) GL_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define GL_CHECK_EQ(a, b) GL_CHECK_OP(==, a, b)
#define GL_CHECK_NE(a, b) GL_CHECK_OP(!=, a, b)
#define GL_CHECK_LT(a, b) GL_CHECK_OP(<, a, b)
#define GL_CHECK_LE(a, b) GL_CHECK_OP(<=, a, b)
#define GL_CHECK_GT(a, b) GL_CHECK_OP(>, a, b)
#define GL_CHECK_GE(a, b) GL_CHECK_OP(>=, a, b)

/// Debug-only contracts: active when NDEBUG is not defined, compiled to
/// nothing (condition and stream operands unevaluated, folded away) in
/// Release builds. Use for hot-path invariants whose checks would cost
/// real time: posting-list sortedness, cost-matrix shape, bound ordering.
/// Invariants cheap enough to keep in Release stay GL_CHECK.
///
/// Expensive predicates belong in a helper function referenced from the
/// condition — `GL_DCHECK(PostingsSorted(list))` — so the Release build
/// carries no scan loop at the call site.
#ifdef NDEBUG
#define GL_DCHECK(condition) GL_CHECK(true || (condition))
#define GL_DCHECK_OP(op, a, b) GL_DCHECK((a)op(b))
#else
#define GL_DCHECK(condition) GL_CHECK(condition)
#define GL_DCHECK_OP(op, a, b) GL_CHECK_OP(op, a, b)
#endif

#define GL_DCHECK_EQ(a, b) GL_DCHECK_OP(==, a, b)
#define GL_DCHECK_NE(a, b) GL_DCHECK_OP(!=, a, b)
#define GL_DCHECK_LT(a, b) GL_DCHECK_OP(<, a, b)
#define GL_DCHECK_LE(a, b) GL_DCHECK_OP(<=, a, b)
#define GL_DCHECK_GT(a, b) GL_DCHECK_OP(>, a, b)
#define GL_DCHECK_GE(a, b) GL_DCHECK_OP(>=, a, b)

#endif  // GROUPLINK_COMMON_LOGGING_H_
