#ifndef GROUPLINK_COMMON_LOGGING_H_
#define GROUPLINK_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace grouplink {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum level below which log statements are discarded.
/// Defaults to kInfo. Thread-compatible: set once at startup.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal messages call std::abort() after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is disabled.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace grouplink

#define GL_LOG_INTERNAL(level)                                              \
  ::grouplink::internal::LogMessage(level, __FILE__, __LINE__).stream()

/// Streams a log line at the given severity, e.g.
/// `GL_LOG(INFO) << "loaded " << n << " records";`
#define GL_LOG(severity)                                                     \
  (::grouplink::LogLevel::k##severity < ::grouplink::MinLogLevel())          \
      ? (void)0                                                              \
      : ::grouplink::internal::LogMessageVoidify() &                         \
            GL_LOG_INTERNAL(::grouplink::LogLevel::k##severity)

/// Aborts with a message when `condition` is false. Active in all builds:
/// used to enforce programmer invariants (not user-input validation, which
/// returns Status).
#define GL_CHECK(condition)                                                  \
  (condition) ? (void)0                                                      \
              : ::grouplink::internal::LogMessageVoidify() &                 \
                    GL_LOG_INTERNAL(::grouplink::LogLevel::kFatal)           \
                        << "Check failed: " #condition " "

#define GL_CHECK_OP(op, a, b) GL_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define GL_CHECK_EQ(a, b) GL_CHECK_OP(==, a, b)
#define GL_CHECK_NE(a, b) GL_CHECK_OP(!=, a, b)
#define GL_CHECK_LT(a, b) GL_CHECK_OP(<, a, b)
#define GL_CHECK_LE(a, b) GL_CHECK_OP(<=, a, b)
#define GL_CHECK_GT(a, b) GL_CHECK_OP(>, a, b)
#define GL_CHECK_GE(a, b) GL_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define GL_DCHECK(condition) GL_CHECK(true || (condition))
#else
#define GL_DCHECK(condition) GL_CHECK(condition)
#endif

#endif  // GROUPLINK_COMMON_LOGGING_H_
