#ifndef GROUPLINK_COMMON_STATUS_H_
#define GROUPLINK_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace grouplink {

/// Error categories used across the library. The library does not throw
/// exceptions; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kParseError,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
};

/// Returns a short stable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path (no
/// allocation); carries a code and a human-readable message on error.
///
/// Example:
///   Status s = dataset.Validate();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status ParseError(std::string message) {
    return Status(StatusCode::kParseError, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Mirrors absl::StatusOr.
///
/// Example:
///   Result<Dataset> ds = LoadDatasetCsv(path);
///   if (!ds.ok()) return ds.status();
///   Use(ds.value());
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error, so functions can
  /// `return value;` or `return Status::...;` directly.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {
    // An OK status carries no value; normalize to an internal error so the
    // object is never silently value-less.
    if (std::get<Status>(data_).ok()) {
      data_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Requires ok(). The non-const overload allows moving the value out.
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  /// Returns the error, or OK if this holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace grouplink

/// Propagates an error Status from an expression that yields Status.
#define GL_RETURN_IF_ERROR(expr)                      \
  do {                                                \
    ::grouplink::Status gl_status__ = (expr);         \
    if (!gl_status__.ok()) return gl_status__;        \
  } while (false)

#endif  // GROUPLINK_COMMON_STATUS_H_
