#ifndef GROUPLINK_COMMON_STATUS_H_
#define GROUPLINK_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace grouplink {

/// Error categories used across the library. The library does not throw
/// exceptions; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kParseError,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
  kDataLoss,
  kUnavailable,
};

/// Returns a short stable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path (no
/// allocation); carries a code and a human-readable message on error.
///
/// Example:
///   Status s = dataset.Validate();
///   if (!s.ok()) return s;
///
/// [[nodiscard]]: silently dropping a Status hides the error path, so a
/// discarded return value is a compile error under -Werror. Intentional
/// discards must be spelled out with a cast and a reason:
///   (void)index.Refresh();  // Best-effort; failure handled by next epoch.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status ParseError(std::string message) {
    return Status(StatusCode::kParseError, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  /// Stored data failed a checksum or structural validation: the bytes on
  /// disk are not the bytes that were written. Unlike kIoError (the
  /// operation failed), the operation succeeded and returned wrong data —
  /// callers must treat the store as corrupt, never retry into it.
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  /// The operation cannot be served *right now* — an overloaded admission
  /// gate shed the request, a circuit breaker is open, a dependency is
  /// momentarily down. Unlike kFailedPrecondition the caller changed
  /// nothing wrong: retrying later (with backoff) is the expected cure.
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// True when the failure is transient and a retry (with backoff) may
  /// legitimately succeed: kUnavailable (overload/breaker/shed),
  /// kDeadlineExceeded (the deadline, not the work, was the problem), and
  /// kIoError (injected or real I/O hiccups — the write-new-then-rename
  /// persist protocol leaves the previous store intact, so retrying is
  /// safe). Everything else is terminal for retry purposes; in particular
  /// kDataLoss must NEVER be retried into — the bytes are wrong, not the
  /// timing (see DataLoss above) — and kInvalidArgument will fail the
  /// same way every time. An OK status is not retryable (nothing failed).
  [[nodiscard]] bool IsRetryable() const;

  /// Renders "OK" or "<Code>: <message>".
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Mirrors absl::StatusOr.
///
/// Example:
///   Result<Dataset> ds = LoadDatasetCsv(path);
///   if (!ds.ok()) return ds.status();
///   Use(ds.value());
///
/// [[nodiscard]] for the same reason as Status: a dropped Result hides
/// both the error and the value the caller asked for.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or an error, so functions can
  /// `return value;` or `return Status::...;` directly.
  Result(T value)  // NOLINT(runtime/explicit): implicit by design, mirrors absl::StatusOr
      : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    // An OK status carries no value; normalize to an internal error so the
    // object is never silently value-less.
    if (std::get<Status>(data_).ok()) {
      data_ = Status::Internal("Result constructed from OK status");
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }

  /// Requires ok(); aborts with the carried error message otherwise (a
  /// precondition violation, not a recoverable error — callers that may
  /// see failure must branch on ok() or use GL_ASSIGN_OR_RETURN). The
  /// non-const overload allows moving the value out.
  [[nodiscard]] const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    CheckOk();
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    CheckOk();
    return std::get<T>(std::move(data_));
  }

  /// Returns the error, or OK if this holds a value.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    GL_CHECK(ok()) << "Result::value() on error Result: "
                   << std::get<Status>(data_).ToString();
  }

  std::variant<T, Status> data_;
};

}  // namespace grouplink

/// Propagates an error Status from an expression that yields Status.
#define GL_RETURN_IF_ERROR(expr)                      \
  do {                                                \
    ::grouplink::Status gl_status__ = (expr);         \
    if (!gl_status__.ok()) return gl_status__;        \
  } while (false)

#define GL_STATUS_CONCAT_IMPL_(a, b) a##b
#define GL_STATUS_CONCAT_(a, b) GL_STATUS_CONCAT_IMPL_(a, b)

#define GL_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                              \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

/// Evaluates `rexpr` (an expression yielding Result<T>); on error returns
/// the error Status from the enclosing function, otherwise move-assigns
/// the value into `lhs`, which may be a declaration:
///
///   GL_ASSIGN_OR_RETURN(Dataset dataset, LoadDatasetCsv(path));
///   GL_ASSIGN_OR_RETURN(dataset, LoadDatasetCsv(path));  // Existing var.
///
/// Expands to multiple statements, so it cannot be used as a braceless
/// `if` body. The temporary's name embeds __LINE__ so two uses in one
/// scope do not collide.
#define GL_ASSIGN_OR_RETURN(lhs, rexpr) \
  GL_ASSIGN_OR_RETURN_IMPL_(GL_STATUS_CONCAT_(gl_result_, __LINE__), lhs, rexpr)

#endif  // GROUPLINK_COMMON_STATUS_H_
