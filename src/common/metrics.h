#ifndef GROUPLINK_COMMON_METRICS_H_
#define GROUPLINK_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace grouplink {

class JsonWriter;

/// Process-wide metrics: named counters, gauges, and histograms behind a
/// single registry, so every subsystem (joins, indexes, the linkage
/// pipelines, the incremental linker) reports into one namespace and one
/// snapshot/JSON export — instead of each bench hand-rolling its own
/// counters. See DESIGN.md "Observability" for the metric name catalog.
///
/// Cost model: counters are sharded across cache-line-padded atomic slots
/// keyed by thread, so a worker incrementing from inside the parallel
/// edge join or a ParallelFor loop touches a (usually) uncontended line
/// with one relaxed fetch_add — cheap enough to leave on in production.
/// Registry lookups take a mutex; instrumentation sites hoist them:
///
///   static Counter& edges = MetricsRegistry::Default().CounterRef(
///       "edge_join.edges");
///   edges.Increment();
///
/// Metrics never feed back into linkage decisions: output is bit-identical
/// with metrics enabled or disabled, at any thread count (tested).

/// Global kill switch (default enabled). Relaxed-atomic read on every
/// increment; flip once at startup, not mid-run.
[[nodiscard]] bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// Monotonic counter with thread-sharded storage. Increments from
/// concurrent threads land on distinct shards; Value() sums them.
/// Totals are exact once the incrementing threads have joined (quiescent
/// reads); mid-run reads are a consistent-enough approximation.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    shards_[ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const;
  void Reset();

 private:
  static constexpr size_t kNumShards = 32;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  static size_t ThisThreadShard();

  std::array<Shard, kNumShards> shards_;
};

/// Last-written-wins double value ("resident groups", "index load
/// factor"). Single atomic slot — gauges are set, not hammered.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) {
    if (!MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(double delta) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (cumulative-style buckets: counts_[i] counts
/// observations <= bounds_[i]; the last slot is the +inf overflow). Bucket
/// counts use plain atomics — histograms sit off the per-item hot path
/// (per-bucket, per-arrival observations).
class Histogram {
 public:
  /// `bounds` must be strictly ascending; empty uses a decade ladder
  /// (1e-6 .. 1e3) suitable for both seconds and small counts.
  explicit Histogram(std::vector<double> bounds = {});
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  struct Snapshot {
    std::vector<double> bounds;    // Upper bound per bucket (no +inf entry).
    std::vector<uint64_t> counts;  // bounds.size() + 1 slots (last = +inf).
    uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot TakeSnapshot() const;

  uint64_t TotalCount() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every registered metric, sorted by name (so
/// exports and test comparisons are deterministic).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;

  std::string ToJson(int indent = 2) const;
  /// Emits the snapshot object into an in-progress document (the unified
  /// experiment report embeds one under its "metrics" key).
  void WriteJson(JsonWriter* json) const;
};

/// Name -> metric registry. Metrics are created on first use and live for
/// the process lifetime (references stay valid across ResetAll).
class MetricsRegistry {
 public:
  static MetricsRegistry& Default();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. A name identifies one metric kind; re-registering a
  /// name as a different kind aborts.
  Counter& CounterRef(const std::string& name);
  Gauge& GaugeRef(const std::string& name);
  /// `bounds` only applies on first creation.
  Histogram& HistogramRef(const std::string& name, std::vector<double> bounds = {});

  /// Zeroes every metric (keeps registrations). Tests use this to measure
  /// exact per-run counts.
  void ResetAll();

  MetricsSnapshot Snapshot() const;

 private:
  // The maps are guarded; the metrics inside them are not — references
  // returned by *Ref() stay valid for the process lifetime and are
  // internally atomic, so instrumentation sites never touch mutex_.
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GL_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GL_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GL_GUARDED_BY(mutex_);
};

}  // namespace grouplink

#endif  // GROUPLINK_COMMON_METRICS_H_
