#ifndef GROUPLINK_COMMON_THREAD_POOL_H_
#define GROUPLINK_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace grouplink {

class ExecutionContext;

/// Fixed-size worker pool executing submitted tasks FIFO. Used by the
/// parallel scoring paths; determinism is preserved by writing results
/// into preallocated per-index slots (see ParallelFor).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; it runs on some worker eventually.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar task_available_;
  CondVar all_done_;
  std::queue<std::function<void()>> tasks_ GL_GUARDED_BY(mutex_);
  size_t in_flight_ GL_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ GL_GUARDED_BY(mutex_) = false;
};

/// Runs `fn(i)` for i in [0, n) across the pool, blocking until all
/// iterations complete. Iterations are distributed in contiguous chunks;
/// `fn` must be safe to call concurrently for distinct i. With a null
/// pool (or a single-thread pool) runs inline — callers can treat the
/// parallel and serial paths identically.
void ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn);

/// Resilient variant: polls `ctx->StopRequested()` before every iteration
/// and sheds the remainder once it trips, so cancellation latency is one
/// task quantum (one iteration of `fn`). Honors the thread_pool.slow_task
/// and thread_pool.fail_task fault points per chunk (a failed chunk's
/// iterations are shed and the context is marked degraded). Returns the
/// number of iterations actually executed; callers with skip-sensitive
/// state must leave un-executed slots in a well-defined default state.
/// With ctx == nullptr behaves exactly like the 3-arg overload (and
/// returns n).
size_t ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn,
                   ExecutionContext* ctx);

/// The hardware thread count, never less than 1 (hardware_concurrency
/// may report 0 on exotic platforms). Default for `--threads` flags.
[[nodiscard]] size_t DefaultThreadCount();

}  // namespace grouplink

#endif  // GROUPLINK_COMMON_THREAD_POOL_H_
