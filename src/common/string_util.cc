#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace grouplink {

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(s.substr(start));
      return pieces;
    }
    pieces.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> pieces;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) pieces.emplace_back(s.substr(start, i - start));
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  const std::string_view trimmed = TrimWhitespace(s);
  if (trimmed.empty()) return Status::ParseError("empty integer");
  const std::string buf(trimmed);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::ParseError("integer out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid integer: " + buf);
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view s) {
  const std::string_view trimmed = TrimWhitespace(s);
  if (trimmed.empty()) return Status::ParseError("empty double");
  const std::string buf(trimmed);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
    return Status::ParseError("double out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid double: " + buf);
  }
  return value;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string ReplaceAll(std::string_view s, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out += s.substr(start);
      return out;
    }
    out += s.substr(start, pos - start);
    out += to;
    start = pos + from.size();
  }
}

bool IsValidUtf8(std::string_view s) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(s.data());
  const unsigned char* const end = p + s.size();
  while (p < end) {
    const unsigned char lead = *p;
    if (lead < 0x80) {
      ++p;
      continue;
    }
    int continuation;
    uint32_t code_point;
    uint32_t min_value;  // Smallest code point this length may encode.
    if ((lead & 0xE0) == 0xC0) {
      continuation = 1;
      code_point = lead & 0x1F;
      min_value = 0x80;
    } else if ((lead & 0xF0) == 0xE0) {
      continuation = 2;
      code_point = lead & 0x0F;
      min_value = 0x800;
    } else if ((lead & 0xF8) == 0xF0) {
      continuation = 3;
      code_point = lead & 0x07;
      min_value = 0x10000;
    } else {
      return false;  // Stray continuation byte or invalid lead (0xF8+).
    }
    if (end - p <= continuation) return false;  // Truncated sequence.
    for (int i = 1; i <= continuation; ++i) {
      if ((p[i] & 0xC0) != 0x80) return false;
      code_point = (code_point << 6) | (p[i] & 0x3F);
    }
    if (code_point < min_value) return false;                    // Overlong.
    if (code_point >= 0xD800 && code_point <= 0xDFFF) return false;  // Surrogate.
    if (code_point > 0x10FFFF) return false;
    p += continuation + 1;
  }
  return true;
}

uint64_t Fingerprint64(std::string_view s) {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis.
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;  // FNV prime.
  }
  return hash;
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // Murmur-inspired mix; good avalanche for composite keys.
  value *= 0xff51afd7ed558ccdULL;
  value ^= value >> 33;
  value *= 0xc4ceb9fe1a85ec53ULL;
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace grouplink
