#include "data/perturb.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace grouplink {
namespace {

constexpr std::string_view kAlphabet = "abcdefghijklmnopqrstuvwxyz";

char RandomLetter(Rng& rng) {
  return kAlphabet[static_cast<size_t>(rng.Uniform(kAlphabet.size()))];
}

}  // namespace

std::string ApplyRandomTypo(std::string_view text, Rng& rng) {
  std::string out(text);
  if (out.empty()) return out;
  const size_t pos = static_cast<size_t>(rng.Uniform(out.size()));
  switch (rng.Uniform(4)) {
    case 0:  // Substitute.
      out[pos] = RandomLetter(rng);
      break;
    case 1:  // Insert.
      out.insert(out.begin() + static_cast<ptrdiff_t>(pos), RandomLetter(rng));
      break;
    case 2:  // Delete.
      if (out.size() > 1) out.erase(pos, 1);
      break;
    case 3:  // Transpose with the next character.
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      break;
  }
  return out;
}

std::string InjectTypos(std::string_view text, double rate, Rng& rng) {
  std::string out(text);
  if (rate <= 0.0) return out;
  // One Bernoulli per original character; edits apply sequentially.
  const size_t original_length = out.size();
  for (size_t i = 0; i < original_length; ++i) {
    if (rng.Bernoulli(rate)) out = ApplyRandomTypo(out, rng);
  }
  return out;
}

std::string PerturbText(std::string_view text, const PerturbOptions& options, Rng& rng) {
  std::vector<std::string> tokens = SplitWhitespace(text);
  if (tokens.empty()) return std::string(text);

  // Drops (keep at least one token).
  std::vector<std::string> kept;
  for (std::string& token : tokens) {
    if (!rng.Bernoulli(options.token_drop_rate)) kept.push_back(std::move(token));
  }
  if (kept.empty()) kept.push_back(tokens[static_cast<size_t>(rng.Uniform(tokens.size()))]);

  // Abbreviations.
  for (std::string& token : kept) {
    if (rng.Bernoulli(options.abbreviate_rate)) token = AbbreviateToken(token);
  }

  // One adjacent swap.
  if (kept.size() >= 2 && rng.Bernoulli(options.token_swap_rate)) {
    const size_t i = static_cast<size_t>(rng.Uniform(kept.size() - 1));
    std::swap(kept[i], kept[i + 1]);
  }

  return InjectTypos(Join(kept, " "), options.typo_rate, rng);
}

std::string AbbreviateToken(std::string_view token) {
  if (token.size() <= 1) return std::string(token);
  return std::string(1, token[0]);
}

size_t PerturbGrouping(Dataset& dataset, double reassign_fraction, Rng& rng) {
  if (dataset.num_groups() < 2) return 0;
  std::vector<int32_t> record_group = dataset.RecordToGroup();
  size_t moved = 0;
  for (int32_t r = 0; r < dataset.num_records(); ++r) {
    if (!rng.Bernoulli(reassign_fraction)) continue;
    const int32_t source = record_group[static_cast<size_t>(r)];
    Group& source_group = dataset.groups[static_cast<size_t>(source)];
    if (source_group.record_ids.size() <= 1) continue;  // Keep groups non-empty.
    int32_t target =
        static_cast<int32_t>(rng.Uniform(static_cast<uint64_t>(dataset.num_groups() - 1)));
    if (target >= source) ++target;
    auto& ids = source_group.record_ids;
    ids.erase(std::find(ids.begin(), ids.end(), r));
    dataset.groups[static_cast<size_t>(target)].record_ids.push_back(r);
    record_group[static_cast<size_t>(r)] = target;
    ++moved;
  }
  GL_CHECK(dataset.Validate().ok());
  return moved;
}

std::string MakeNameVariant(std::string_view full_name, Rng& rng) {
  std::vector<std::string> tokens = SplitWhitespace(full_name);
  if (tokens.empty()) return std::string(full_name);
  switch (rng.Uniform(4)) {
    case 0:  // Verbatim.
      return Join(tokens, " ");
    case 1: {  // Initials for all but the last token: "j d ullman".
      std::vector<std::string> out = tokens;
      for (size_t i = 0; i + 1 < out.size(); ++i) out[i] = AbbreviateToken(out[i]);
      return Join(out, " ");
    }
    case 2: {  // "last first" inversion.
      std::vector<std::string> out;
      out.push_back(tokens.back());
      for (size_t i = 0; i + 1 < tokens.size(); ++i) out.push_back(tokens[i]);
      return Join(out, " ");
    }
    default:  // One typo somewhere.
      return ApplyRandomTypo(Join(tokens, " "), rng);
  }
}

}  // namespace grouplink
