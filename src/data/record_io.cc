#include "data/record_io.h"

#include <map>
#include <vector>

#include "common/csv.h"
#include "common/fault_injection.h"
#include "common/string_util.h"

namespace grouplink {
namespace {

constexpr size_t kFixedColumns = 5;  // record_id, group_id, label, entity, text.

}  // namespace

Status SaveDatasetCsv(const Dataset& dataset, const std::string& path) {
  GL_RETURN_IF_ERROR(dataset.Validate());
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"record_id", "group_id", "group_label", "entity_id", "text"});
  for (size_t g = 0; g < dataset.groups.size(); ++g) {
    const Group& group = dataset.groups[g];
    const int32_t entity =
        dataset.group_entities.empty() ? Dataset::kUnknownEntity
                                       : dataset.group_entities[g];
    for (const int32_t r : group.record_ids) {
      const Record& record = dataset.records[static_cast<size_t>(r)];
      std::vector<std::string> row = {
          record.id, group.id, group.label,
          entity == Dataset::kUnknownEntity ? "" : std::to_string(entity),
          record.text};
      row.insert(row.end(), record.fields.begin(), record.fields.end());
      rows.push_back(std::move(row));
    }
  }
  return CsvWriteFile(path, rows);
}

Result<Dataset> LoadDatasetCsv(const std::string& path) {
  GL_ASSIGN_OR_RETURN(const std::vector<std::vector<std::string>> rows,
                      CsvReadFile(path));
  if (rows.empty()) return Status::ParseError("empty dataset file: " + path);

  Dataset dataset;
  std::map<std::string, int32_t> group_index;
  for (size_t i = 1; i < rows.size(); ++i) {
    const std::vector<std::string>& row = rows[i];
    if (row.size() == 1 && row[0].empty()) continue;  // Trailing blank line.
    if (FaultInjector::Default().ShouldFire(faults::kCorruptRecord)) {
      return Status::ParseError("row " + std::to_string(i) +
                                " is corrupt (injected fault)");
    }
    if (row.size() < kFixedColumns) {
      return Status::ParseError("row " + std::to_string(i) + " has " +
                                std::to_string(row.size()) + " columns, expected >= " +
                                std::to_string(kFixedColumns));
    }
    for (const size_t column : {size_t{2}, size_t{4}}) {  // label, text.
      if (!IsValidUtf8(row[column])) {
        return Status::ParseError("row " + std::to_string(i) + " column " +
                                  std::to_string(column) +
                                  " contains invalid UTF-8");
      }
    }
    Record record;
    record.id = row[0];
    record.text = row[4];
    record.fields.assign(row.begin() + kFixedColumns, row.end());

    const std::string& group_id = row[1];
    auto [it, inserted] =
        group_index.try_emplace(group_id, static_cast<int32_t>(dataset.groups.size()));
    if (inserted) {
      Group group;
      group.id = group_id;
      group.label = row[2];
      dataset.groups.push_back(std::move(group));
      if (row[3].empty()) {
        dataset.group_entities.push_back(Dataset::kUnknownEntity);
      } else {
        auto entity = ParseInt64(row[3]);
        if (!entity.ok()) {
          return Status::ParseError("row " + std::to_string(i) +
                                    " has a bad entity_id '" + row[3] +
                                    "': " + entity.status().message());
        }
        dataset.group_entities.push_back(static_cast<int32_t>(*entity));
      }
    }
    dataset.groups[static_cast<size_t>(it->second)].record_ids.push_back(
        static_cast<int32_t>(dataset.records.size()));
    dataset.records.push_back(std::move(record));
  }
  GL_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace grouplink
