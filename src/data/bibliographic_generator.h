#ifndef GROUPLINK_DATA_BIBLIOGRAPHIC_GENERATOR_H_
#define GROUPLINK_DATA_BIBLIOGRAPHIC_GENERATOR_H_

#include <cstdint>

#include "core/group.h"

namespace grouplink {

/// Synthetic digital-library workload, the structural stand-in for the
/// author/citation corpora the paper evaluated on.
///
/// Each *entity* is an author with a pool of citations (titles drawn from
/// a per-entity topic vocabulary plus global noise words, a venue, a year,
/// coauthors). Each *group* is one name-variant's citation list: a
/// subsample of the entity's pool, each record independently dirtied
/// (typos, dropped/abbreviated/swapped tokens). Groups of the same entity
/// therefore overlap only approximately — exactly the regime the BM
/// measure targets. Entities sharing a topic produce hard negatives.
struct BibliographicConfig {
  /// Distinct authors.
  int32_t num_entities = 300;
  /// Fraction of entities with a single group (unmatched distractors).
  double singleton_entity_fraction = 0.3;
  /// Groups per non-singleton entity, uniform in [min, max].
  int32_t min_groups_per_entity = 2;
  int32_t max_groups_per_entity = 3;
  /// Citation pool size per entity, uniform in [min, max].
  int32_t min_citations_per_entity = 8;
  int32_t max_citations_per_entity = 24;
  /// Fraction of the entity's pool each group samples (without
  /// replacement), so two groups of one entity share ~fraction² citations.
  double group_citation_fraction = 0.7;
  /// When > 0, each group's fraction is drawn uniformly from
  /// [group_citation_fraction_min, group_citation_fraction] instead of
  /// being fixed — produces size-unbalanced groups of the same entity
  /// (small early-career group inside a large one), the regime where the
  /// containment measure extension earns its keep (ablation E13).
  double group_citation_fraction_min = 0.0;
  /// Master dirtiness dial in [0, 1]: scales typo / drop / abbreviation /
  /// swap rates of record texts (0 = clean copies).
  double noise = 0.2;
  /// Topic clusters; fewer topics = more cross-entity title vocabulary
  /// collisions = harder negatives.
  int32_t num_topics = 20;
  /// Words per topic vocabulary.
  int32_t topic_words = 30;
  /// Per title word, probability of drawing from the global vocabulary
  /// instead of the entity's topic.
  double offtopic_word_prob = 0.3;
  /// Title length, uniform in [min, max] words.
  int32_t title_min_words = 5;
  int32_t title_max_words = 9;
  /// Per citation, probability of being co-authored: the identical
  /// citation is also inserted into one other (random) entity's pool.
  /// This is what defeats single-best-record baselines — two different
  /// authors legitimately sharing a record — while BM, normalized over
  /// whole groups, tolerates it.
  double shared_citation_prob = 0.15;
  /// PRNG seed; datasets are pure functions of (config, seed).
  uint64_t seed = 42;
};

/// Generates the dataset with ground-truth entity ids per group.
/// Aborts (GL_CHECK) on nonsensical configs; all defaults are valid.
Dataset GenerateBibliographic(const BibliographicConfig& config);

}  // namespace grouplink

#endif  // GROUPLINK_DATA_BIBLIOGRAPHIC_GENERATOR_H_
