#include "data/name_corpus.h"

namespace grouplink {
namespace {

const std::vector<std::string_view>* MakeFirstNames() {
  return new std::vector<std::string_view>{
      "james",    "mary",      "john",     "patricia", "robert",   "jennifer",
      "michael",  "linda",     "william",  "elizabeth", "david",   "barbara",
      "richard",  "susan",     "joseph",   "jessica",  "thomas",   "sarah",
      "charles",  "karen",     "christopher", "nancy", "daniel",   "lisa",
      "matthew",  "margaret",  "anthony",  "betty",    "donald",   "sandra",
      "mark",     "ashley",    "paul",     "dorothy",  "steven",   "kimberly",
      "andrew",   "emily",     "kenneth",  "donna",    "joshua",   "michelle",
      "george",   "carol",     "kevin",    "amanda",   "brian",    "melissa",
      "edward",   "deborah",   "ronald",   "stephanie", "timothy", "rebecca",
      "jason",    "laura",     "jeffrey",  "sharon",   "ryan",     "cynthia",
      "jacob",    "kathleen",  "gary",     "amy",      "nicholas", "shirley",
      "eric",     "angela",    "jonathan", "helen",    "stephen",  "anna",
      "larry",    "brenda",    "justin",   "pamela",   "scott",    "nicole",
      "brandon",  "ruth",      "benjamin", "katherine", "samuel",  "samantha",
      "gregory",  "christine", "frank",    "emma",     "alexander", "catherine",
      "raymond",  "debra",     "patrick",  "virginia", "jack",     "rachel",
      "dennis",   "carolyn",   "jerry",    "janet",    "tyler",    "maria",
      "aaron",    "heather",   "jose",     "diane",    "adam",     "julie",
      "nathan",   "joyce",     "henry",    "victoria", "douglas",  "kelly",
      "zachary",  "christina", "peter",    "joan",     "kyle",     "evelyn",
      "walter",   "lauren",    "ethan",    "judith",   "jeremy",   "olivia",
      "harold",   "frances",   "keith",    "martha",   "christian", "cheryl",
      "roger",    "megan",     "noah",     "andrea",   "gerald",   "hannah",
      "carl",     "jacqueline", "terry",   "wei",      "arturo",   "priya",
      "hiroshi",  "fatima",    "dmitri",   "ingrid",   "paolo",    "chen",
  };
}

const std::vector<std::string_view>* MakeLastNames() {
  return new std::vector<std::string_view>{
      "smith",     "johnson",   "williams", "brown",    "jones",     "garcia",
      "miller",    "davis",     "rodriguez", "martinez", "hernandez", "lopez",
      "gonzalez",  "wilson",    "anderson", "thomas",   "taylor",    "moore",
      "jackson",   "martin",    "lee",      "perez",    "thompson",  "white",
      "harris",    "sanchez",   "clark",    "ramirez",  "lewis",     "robinson",
      "walker",    "young",     "allen",    "king",     "wright",    "scott",
      "torres",    "nguyen",    "hill",     "flores",   "green",     "adams",
      "nelson",    "baker",     "hall",     "rivera",   "campbell",  "mitchell",
      "carter",    "roberts",   "gomez",    "phillips", "evans",     "turner",
      "diaz",      "parker",    "cruz",     "edwards",  "collins",   "reyes",
      "stewart",   "morris",    "morales",  "murphy",   "cook",      "rogers",
      "gutierrez", "ortiz",     "morgan",   "cooper",   "peterson",  "bailey",
      "reed",      "kelly",     "howard",   "ramos",    "kim",       "cox",
      "ward",      "richardson", "watson",  "brooks",   "chavez",    "wood",
      "james",     "bennett",   "gray",     "mendoza",  "ruiz",      "hughes",
      "price",     "alvarez",   "castillo", "sanders",  "patel",     "myers",
      "long",      "ross",      "foster",   "jimenez",  "powell",    "jenkins",
      "perry",     "russell",   "sullivan", "bell",     "coleman",   "butler",
      "henderson", "barnes",    "gonzales", "fisher",   "vasquez",   "simmons",
      "romero",    "jordan",    "patterson", "alexander", "hamilton", "graham",
      "reynolds",  "griffin",   "wallace",  "moreno",   "west",      "cole",
      "hayes",     "bryant",    "herrera",  "gibson",   "ellis",     "tran",
      "medina",    "aguilar",   "stevens",  "murray",   "ford",      "castro",
      "marshall",  "owens",     "harrison", "fernandez", "mcdonald", "woods",
      "washington", "kennedy",  "wells",    "vargas",   "henry",     "chen",
      "freeman",   "webb",      "tucker",   "guzman",   "burns",     "crawford",
      "olson",     "simpson",   "porter",   "hunter",   "gordon",    "mendez",
  };
}

const std::vector<std::string_view>* MakeTitleWords() {
  return new std::vector<std::string_view>{
      "adaptive",     "aggregation",  "algorithms",   "analysis",     "analytics",
      "approximate",  "architecture", "association",  "asynchronous", "automated",
      "benchmarking", "bitmap",       "blocking",     "bounds",       "buffer",
      "caching",      "cardinality",  "classification", "cleaning",   "cloud",
      "clustering",   "columnar",     "compression",  "computation",  "concurrency",
      "consensus",    "consistency",  "constraints",  "cost",         "crawling",
      "cube",         "data",         "database",     "decentralized", "declarative",
      "deduplication", "dependencies", "detection",   "discovery",    "disk",
      "distributed",  "duplicate",    "dynamic",      "efficient",    "elastic",
      "embedding",    "entity",       "estimation",   "evaluation",   "execution",
      "extraction",   "failover",     "fast",         "fault",        "federated",
      "filtering",    "framework",    "frequent",     "fusion",       "fuzzy",
      "generation",   "graph",        "hashing",      "heterogeneous", "hierarchical",
      "histogram",    "hybrid",       "incremental",  "index",        "indexing",
      "inference",    "integration",  "interactive",  "isolation",    "iterative",
      "join",         "keyword",      "knowledge",    "language",     "large",
      "latency",      "learning",     "linkage",      "locality",     "locking",
      "logging",      "machine",      "maintenance",  "management",   "matching",
      "materialized", "memory",       "metadata",     "mining",       "mobile",
      "modeling",     "monitoring",   "multidimensional", "network",  "nonblocking",
      "normalization", "online",      "optimization", "optimizer",    "ordering",
      "parallel",     "partitioning", "patterns",     "performance",  "persistent",
      "pipelined",    "placement",    "planning",     "predicate",    "prediction",
      "prefetching",  "privacy",      "probabilistic", "processing",  "profiling",
      "provenance",   "pruning",      "quality",      "queries",      "query",
      "ranking",      "recovery",     "recursive",    "reduction",    "redundancy",
      "relational",   "reliability",  "replication",  "repository",   "resolution",
      "retrieval",    "robust",       "routing",      "rules",        "sampling",
      "scalable",     "scheduling",   "schema",       "search",       "secondary",
      "secure",       "selectivity",  "semantic",     "semantics",    "sensor",
      "sequential",   "serializable", "sharing",      "similarity",   "sketches",
      "skew",         "spatial",      "speculative",  "storage",      "stream",
      "streaming",    "structured",   "summarization", "synchronization", "synopses",
      "system",       "systems",      "temporal",     "text",         "throughput",
      "tolerant",     "topology",     "tracking",     "transaction",  "transactions",
      "transformation", "tuning",     "uncertain",    "unstructured", "updates",
      "validation",   "vectorized",   "versioning",   "view",         "views",
      "virtual",      "visualization", "warehouse",   "web",          "workload",
      "xml",          "adaptive",     "anomaly",      "compaction",   "lineage",
      "sharding",     "snapshot",     "checkpoint",   "encoding",     "windowed",
  };
}

const std::vector<std::string_view>* MakeVenueNames() {
  return new std::vector<std::string_view>{
      "sigmod",  "vldb",    "icde",     "edbt",    "cidr",    "pods",
      "kdd",     "icdm",    "sdm",      "cikm",    "wsdm",    "www",
      "sigir",   "ecir",    "acl",      "emnlp",   "naacl",   "coling",
      "nips",    "icml",    "aaai",     "ijcai",   "uai",     "aistats",
      "sosp",    "osdi",    "nsdi",     "eurosys", "atc",     "fast",
      "sigcomm", "infocom", "mobicom",  "podc",    "spaa",    "stoc",
      "focs",    "soda",    "icalp",    "esa",
  };
}

const std::vector<std::string_view>* MakeStreetNames() {
  return new std::vector<std::string_view>{
      "main street",      "oak avenue",      "maple drive",     "cedar lane",
      "elm street",       "pine road",       "washington blvd", "park avenue",
      "lake drive",       "hill street",     "river road",      "sunset blvd",
      "highland avenue",  "forest lane",     "meadow drive",    "spring street",
      "church street",    "market street",   "broad street",    "center street",
      "franklin avenue",  "jefferson road",  "lincoln street",  "madison avenue",
      "monroe drive",     "adams street",    "jackson blvd",    "harrison lane",
      "cleveland avenue", "garfield street", "grant road",      "hayes drive",
      "walnut street",    "chestnut avenue", "sycamore lane",   "willow road",
      "birch street",     "aspen drive",     "poplar avenue",   "magnolia blvd",
      "dogwood lane",     "juniper street",  "laurel road",     "hawthorn drive",
      "mulberry street",  "hickory lane",    "locust avenue",   "cypress road",
      "redwood drive",    "sequoia street",  "valley view road", "ridge crest drive",
      "canyon lane",      "prairie avenue",  "orchard street",  "vineyard road",
      "harbor drive",     "bayview avenue",  "seaside lane",    "cliffside road",
  };
}

const std::vector<std::string_view>* MakeCityNames() {
  return new std::vector<std::string_view>{
      "springfield", "riverton",   "fairview",    "georgetown", "salem",
      "madison",     "franklin",   "clinton",     "arlington",  "ashland",
      "burlington",  "manchester", "milton",      "newport",    "oxford",
      "clayton",     "dayton",     "lexington",   "milford",    "winchester",
      "bristol",     "dover",      "hudson",      "kingston",   "lancaster",
      "monroe",      "auburn",     "bedford",     "brighton",   "camden",
      "chester",     "columbia",   "concord",     "danville",   "easton",
      "florence",    "glendale",   "greenville",  "hamilton",   "harrison",
      "jackson",     "jamestown",  "lebanon",     "lincoln",    "marion",
      "midland",     "norwood",    "plymouth",    "portland",   "trenton",
  };
}

}  // namespace

// Function-local static references: constructed on first use, never
// destroyed (trivial-destruction rule for static storage duration).
const std::vector<std::string_view>& FirstNames() {
  static const auto& names = *MakeFirstNames();
  return names;
}

const std::vector<std::string_view>& LastNames() {
  static const auto& names = *MakeLastNames();
  return names;
}

const std::vector<std::string_view>& TitleWords() {
  static const auto& words = *MakeTitleWords();
  return words;
}

const std::vector<std::string_view>& VenueNames() {
  static const auto& names = *MakeVenueNames();
  return names;
}

const std::vector<std::string_view>& StreetNames() {
  static const auto& names = *MakeStreetNames();
  return names;
}

const std::vector<std::string_view>& CityNames() {
  static const auto& names = *MakeCityNames();
  return names;
}

}  // namespace grouplink
