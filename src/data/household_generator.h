#ifndef GROUPLINK_DATA_HOUSEHOLD_GENERATOR_H_
#define GROUPLINK_DATA_HOUSEHOLD_GENERATOR_H_

#include <cstdint>

#include "core/group.h"

namespace grouplink {

/// Synthetic census-style workload, the second evaluation domain: a
/// household is a group of person records at one address, observed in two
/// survey snapshots a year apart. Linking decides which snapshot-A
/// household equals which snapshot-B household.
///
/// Between snapshots: members move out / in, everyone ages by one year,
/// names and addresses pick up typos and format drift — so the two
/// observations of one household overlap only approximately.
struct HouseholdConfig {
  int32_t num_households = 500;
  /// Members per household, uniform in [min, max].
  int32_t min_members = 2;
  int32_t max_members = 7;
  /// Fraction of households observed in *both* snapshots (the rest appear
  /// in exactly one and must stay unlinked).
  double both_snapshots_fraction = 0.8;
  /// Per-member probability of being absent from snapshot B.
  double move_out_prob = 0.15;
  /// Expected new members in snapshot B = move_in_rate × household size.
  double move_in_rate = 0.10;
  /// Master dirtiness dial in [0, 1] for record texts.
  double noise = 0.2;
  uint64_t seed = 7;
};

/// Generates the two-snapshot dataset; each group's entity id is its
/// household, so the true links are exactly the A/B pairs of households
/// present in both snapshots.
Dataset GenerateHouseholds(const HouseholdConfig& config);

}  // namespace grouplink

#endif  // GROUPLINK_DATA_HOUSEHOLD_GENERATOR_H_
