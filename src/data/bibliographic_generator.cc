#include "data/bibliographic_generator.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "data/name_corpus.h"
#include "data/perturb.h"

namespace grouplink {
namespace {

struct Citation {
  std::string text;
};

// One author entity: canonical name, topic, citation pool.
struct Entity {
  std::string full_name;
  int32_t topic = 0;
  std::vector<Citation> citations;
};

std::string MakeFullName(Rng& rng) {
  std::string name(rng.Choice(FirstNames()));
  if (rng.Bernoulli(0.4)) {
    // Middle initial.
    name += ' ';
    name += static_cast<char>('a' + rng.Uniform(26));
  }
  name += ' ';
  name += rng.Choice(LastNames());
  return name;
}

std::string MakeTitle(const BibliographicConfig& config,
                      const std::vector<std::vector<std::string_view>>& topics,
                      int32_t topic, const ZipfSampler& global_words, Rng& rng) {
  const int64_t length =
      rng.UniformInt(config.title_min_words, config.title_max_words);
  std::vector<std::string> words;
  words.reserve(static_cast<size_t>(length));
  const auto& topic_vocab = topics[static_cast<size_t>(topic)];
  for (int64_t w = 0; w < length; ++w) {
    if (rng.Bernoulli(config.offtopic_word_prob) || topic_vocab.empty()) {
      words.emplace_back(TitleWords()[global_words.Sample(rng)]);
    } else {
      words.emplace_back(rng.Choice(topic_vocab));
    }
  }
  return Join(words, " ");
}

Citation MakeCitation(const BibliographicConfig& config,
                      const std::vector<std::vector<std::string_view>>& topics,
                      int32_t topic, const ZipfSampler& global_words,
                      const std::vector<std::string>& coauthor_pool, Rng& rng) {
  Citation citation;
  std::string text = MakeTitle(config, topics, topic, global_words, rng);
  text += ' ';
  text += rng.Choice(VenueNames());
  text += ' ';
  text += std::to_string(rng.UniformInt(1985, 2006));
  const int64_t num_coauthors = rng.UniformInt(1, 2);
  for (int64_t c = 0; c < num_coauthors; ++c) {
    text += ' ';
    text += rng.Choice(coauthor_pool);
  }
  citation.text = std::move(text);
  return citation;
}

PerturbOptions NoiseOptions(double noise) {
  PerturbOptions options;
  options.typo_rate = 0.04 * noise;
  options.token_drop_rate = 0.30 * noise;
  options.abbreviate_rate = 0.15 * noise;
  options.token_swap_rate = 0.40 * noise;
  return options;
}

}  // namespace

Dataset GenerateBibliographic(const BibliographicConfig& config) {
  GL_CHECK_GT(config.num_entities, 0);
  GL_CHECK_GE(config.min_groups_per_entity, 1);
  GL_CHECK_LE(config.min_groups_per_entity, config.max_groups_per_entity);
  GL_CHECK_GE(config.min_citations_per_entity, 1);
  GL_CHECK_LE(config.min_citations_per_entity, config.max_citations_per_entity);
  GL_CHECK_GT(config.group_citation_fraction, 0.0);
  GL_CHECK_LE(config.group_citation_fraction, 1.0);
  GL_CHECK_GE(config.noise, 0.0);
  GL_CHECK_GT(config.num_topics, 0);
  GL_CHECK_GE(config.title_min_words, 1);
  GL_CHECK_LE(config.title_min_words, config.title_max_words);

  Rng rng(config.seed);

  // Topic vocabularies: disjoint-ish random slices of the title words.
  std::vector<std::vector<std::string_view>> topics(
      static_cast<size_t>(config.num_topics));
  for (auto& topic : topics) {
    const size_t words =
        std::min<size_t>(static_cast<size_t>(config.topic_words), TitleWords().size());
    for (const size_t index :
         rng.SampleWithoutReplacement(TitleWords().size(), words)) {
      topic.push_back(TitleWords()[index]);
    }
  }

  // Shared coauthor pool (name collisions across entities are realistic).
  std::vector<std::string> coauthor_pool;
  for (int i = 0; i < 200; ++i) coauthor_pool.push_back(MakeFullName(rng));

  const ZipfSampler global_words(TitleWords().size(), 1.0);

  // Entities with citation pools. Reuse surnames sometimes so that
  // distinct entities carry confusable names (hard negatives).
  std::vector<Entity> entities(static_cast<size_t>(config.num_entities));
  for (size_t e = 0; e < entities.size(); ++e) {
    Entity& entity = entities[e];
    if (e > 0 && rng.Bernoulli(0.15)) {
      // Same surname as an earlier entity, fresh first name.
      const std::vector<std::string> prior =
          SplitWhitespace(entities[static_cast<size_t>(rng.Uniform(e))].full_name);
      entity.full_name = std::string(rng.Choice(FirstNames())) + ' ' + prior.back();
    } else {
      entity.full_name = MakeFullName(rng);
    }
    entity.topic = static_cast<int32_t>(rng.Uniform(static_cast<uint64_t>(config.num_topics)));
    const int64_t pool = rng.UniformInt(config.min_citations_per_entity,
                                        config.max_citations_per_entity);
    entity.citations.reserve(static_cast<size_t>(pool));
    for (int64_t c = 0; c < pool; ++c) {
      entity.citations.push_back(MakeCitation(config, topics, entity.topic,
                                              global_words, coauthor_pool, rng));
    }
  }

  // Co-authored papers: copy some citations into another entity's pool,
  // so distinct entities legitimately share records.
  if (config.num_entities > 1) {
    for (size_t e = 0; e < entities.size(); ++e) {
      const size_t pool = entities[e].citations.size();
      for (size_t c = 0; c < pool; ++c) {
        if (!rng.Bernoulli(config.shared_citation_prob)) continue;
        size_t other = static_cast<size_t>(rng.Uniform(entities.size() - 1));
        if (other >= e) ++other;
        entities[other].citations.push_back(entities[e].citations[c]);
      }
    }
  }

  const PerturbOptions noise_options = NoiseOptions(config.noise);

  Dataset dataset;
  for (size_t e = 0; e < entities.size(); ++e) {
    const Entity& entity = entities[e];
    const bool singleton = rng.Bernoulli(config.singleton_entity_fraction);
    const int64_t num_groups =
        singleton ? 1
                  : rng.UniformInt(config.min_groups_per_entity,
                                   config.max_groups_per_entity);
    for (int64_t g = 0; g < num_groups; ++g) {
      Group group;
      group.id = "e" + std::to_string(e) + "g" + std::to_string(g);
      group.label = g == 0 ? entity.full_name : MakeNameVariant(entity.full_name, rng);

      const size_t pool = entity.citations.size();
      double fraction = config.group_citation_fraction;
      if (config.group_citation_fraction_min > 0.0) {
        fraction = rng.UniformDouble(config.group_citation_fraction_min,
                                     config.group_citation_fraction);
      }
      size_t take = static_cast<size_t>(fraction * static_cast<double>(pool) + 0.5);
      take = std::clamp<size_t>(take, 1, pool);
      for (const size_t index : rng.SampleWithoutReplacement(pool, take)) {
        Record record;
        record.id = group.id + "r" + std::to_string(index);
        record.text = PerturbText(entity.citations[index].text, noise_options, rng);
        group.record_ids.push_back(static_cast<int32_t>(dataset.records.size()));
        dataset.records.push_back(std::move(record));
      }
      dataset.groups.push_back(std::move(group));
      dataset.group_entities.push_back(static_cast<int32_t>(e));
    }
  }
  GL_CHECK(dataset.Validate().ok());
  return dataset;
}

}  // namespace grouplink
