#include "data/household_generator.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "data/name_corpus.h"
#include "data/perturb.h"

namespace grouplink {
namespace {

struct Member {
  std::string first_name;
  std::string surname;
  int64_t age = 0;
};

struct Household {
  std::vector<Member> members;
  std::string address;  // "<number> <street> <city>".
  bool in_both = false;
};

PerturbOptions NoiseOptions(double noise) {
  PerturbOptions options;
  options.typo_rate = 0.03 * noise;
  options.token_drop_rate = 0.10 * noise;
  options.abbreviate_rate = 0.10 * noise;
  options.token_swap_rate = 0.20 * noise;
  return options;
}

std::string MemberText(const Member& member, const std::string& address, int64_t age) {
  return member.first_name + ' ' + member.surname + ' ' + std::to_string(age) + ' ' +
         address;
}

}  // namespace

Dataset GenerateHouseholds(const HouseholdConfig& config) {
  GL_CHECK_GT(config.num_households, 0);
  GL_CHECK_GE(config.min_members, 1);
  GL_CHECK_LE(config.min_members, config.max_members);
  GL_CHECK_GE(config.noise, 0.0);

  Rng rng(config.seed);
  const PerturbOptions noise_options = NoiseOptions(config.noise);

  std::vector<Household> households(static_cast<size_t>(config.num_households));
  for (Household& household : households) {
    const std::string surname(rng.Choice(LastNames()));
    const int64_t size = rng.UniformInt(config.min_members, config.max_members);
    for (int64_t m = 0; m < size; ++m) {
      Member member;
      member.first_name = std::string(rng.Choice(FirstNames()));
      member.surname = rng.Bernoulli(0.85) ? surname : std::string(rng.Choice(LastNames()));
      member.age = m < 2 ? rng.UniformInt(25, 70) : rng.UniformInt(1, 24);
      household.members.push_back(std::move(member));
    }
    household.address = std::to_string(rng.UniformInt(1, 9999)) + ' ' +
                        std::string(rng.Choice(StreetNames())) + ' ' +
                        std::string(rng.Choice(CityNames()));
    household.in_both = rng.Bernoulli(config.both_snapshots_fraction);
  }

  Dataset dataset;
  const auto add_group = [&](size_t h, char snapshot,
                             const std::vector<std::string>& member_texts) {
    Group group;
    group.id = "h" + std::to_string(h) + snapshot;
    group.label = households[h].address;
    for (size_t m = 0; m < member_texts.size(); ++m) {
      Record record;
      record.id = group.id + "m" + std::to_string(m);
      record.text = member_texts[m];
      group.record_ids.push_back(static_cast<int32_t>(dataset.records.size()));
      dataset.records.push_back(std::move(record));
    }
    if (!group.record_ids.empty()) {
      dataset.groups.push_back(std::move(group));
      dataset.group_entities.push_back(static_cast<int32_t>(h));
    }
  };

  for (size_t h = 0; h < households.size(); ++h) {
    const Household& household = households[h];
    // Households only in B are handled below; everyone else gets an
    // A-snapshot group with clean-ish records.
    const bool only_b = !household.in_both && rng.Bernoulli(0.5);
    if (!only_b) {
      std::vector<std::string> texts;
      for (const Member& member : household.members) {
        texts.push_back(PerturbText(MemberText(member, household.address, member.age),
                                    noise_options, rng));
      }
      add_group(h, 'a', texts);
    }
    if (household.in_both || only_b) {
      // Snapshot B: one year later with churn and drift.
      std::vector<std::string> texts;
      for (const Member& member : household.members) {
        if (rng.Bernoulli(config.move_out_prob)) continue;
        texts.push_back(PerturbText(
            MemberText(member, household.address, member.age + 1), noise_options, rng));
      }
      const int64_t move_ins = static_cast<int64_t>(
          config.move_in_rate * static_cast<double>(household.members.size()) + 0.5);
      for (int64_t m = 0; m < move_ins; ++m) {
        Member newcomer;
        newcomer.first_name = std::string(rng.Choice(FirstNames()));
        newcomer.surname = household.members.front().surname;
        newcomer.age = rng.UniformInt(1, 40);
        texts.push_back(PerturbText(
            MemberText(newcomer, household.address, newcomer.age), noise_options, rng));
      }
      if (texts.empty()) {
        // Everyone moved out; keep one perturbed member so the group exists.
        const Member& member = household.members.front();
        texts.push_back(PerturbText(MemberText(member, household.address, member.age + 1),
                                    noise_options, rng));
      }
      add_group(h, 'b', texts);
    }
  }
  GL_CHECK(dataset.Validate().ok());
  return dataset;
}

}  // namespace grouplink
