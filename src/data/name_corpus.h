#ifndef GROUPLINK_DATA_NAME_CORPUS_H_
#define GROUPLINK_DATA_NAME_CORPUS_H_

#include <string_view>
#include <vector>

namespace grouplink {

/// Embedded word corpora backing the synthetic data generators. The paper
/// evaluated on proprietary digital-library and census-style corpora; these
/// lists let the generators produce data with the same shape (person names,
/// paper-title vocabulary, venues, street addresses) fully offline and
/// deterministically.

/// ~130 common given names.
const std::vector<std::string_view>& FirstNames();

/// ~160 common surnames.
const std::vector<std::string_view>& LastNames();

/// ~240 research-paper title words (systems/databases flavored).
const std::vector<std::string_view>& TitleWords();

/// ~40 publication venue names.
const std::vector<std::string_view>& VenueNames();

/// ~60 street names.
const std::vector<std::string_view>& StreetNames();

/// ~50 city names.
const std::vector<std::string_view>& CityNames();

}  // namespace grouplink

#endif  // GROUPLINK_DATA_NAME_CORPUS_H_
