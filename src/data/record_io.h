#ifndef GROUPLINK_DATA_RECORD_IO_H_
#define GROUPLINK_DATA_RECORD_IO_H_

#include <string>

#include "common/status.h"
#include "core/group.h"

namespace grouplink {

/// CSV persistence for Dataset. One row per record:
///
///   record_id,group_id,group_label,entity_id,text,field_1,...,field_k
///
/// with a header row. `entity_id` is empty for unknown ground truth.
/// Groups are reconstructed by `group_id` in order of first appearance,
/// so Save followed by Load round-trips records, grouping, and truth.
Status SaveDatasetCsv(const Dataset& dataset, const std::string& path);

/// Loads a dataset written by SaveDatasetCsv (or hand-authored in the same
/// format). Returns ParseError / InvalidArgument on malformed input.
[[nodiscard]] Result<Dataset> LoadDatasetCsv(const std::string& path);

}  // namespace grouplink

#endif  // GROUPLINK_DATA_RECORD_IO_H_
