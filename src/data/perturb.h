#ifndef GROUPLINK_DATA_PERTURB_H_
#define GROUPLINK_DATA_PERTURB_H_

#include <string>
#include <string_view>

#include "common/random.h"
#include "core/group.h"

namespace grouplink {

/// Controlled dirtiness for the synthetic generators: every knob is a
/// probability, and all randomness flows through the caller's Rng, so a
/// dataset is a pure function of (config, seed).
struct PerturbOptions {
  /// Per-character probability of a typo (substitute / insert / delete /
  /// transpose, chosen uniformly).
  double typo_rate = 0.0;
  /// Per-token probability of being dropped.
  double token_drop_rate = 0.0;
  /// Per-token probability of being abbreviated to its first letter.
  double abbreviate_rate = 0.0;
  /// Probability of swapping one adjacent token pair.
  double token_swap_rate = 0.0;
};

/// Applies a single random character edit to `text` (no-op on empty input).
[[nodiscard]] std::string ApplyRandomTypo(std::string_view text, Rng& rng);

/// Applies per-character typos at `rate`.
[[nodiscard]] std::string InjectTypos(std::string_view text, double rate, Rng& rng);

/// Rebuilds `text` token by token, applying drops / abbreviations / one
/// optional adjacent swap per PerturbOptions, then per-character typos.
/// Always keeps at least one token of a non-empty input.
[[nodiscard]] std::string PerturbText(std::string_view text, const PerturbOptions& options, Rng& rng);

/// Abbreviates "jeffrey" -> "j". Tokens of length <= 1 pass through.
[[nodiscard]] std::string AbbreviateToken(std::string_view token);

/// Produces a name variant of "first [middle] last":
/// randomly chooses between the full name, first-initial form
/// ("j ullman"), "last first" inversion, or a typo'ed full name.
[[nodiscard]] std::string MakeNameVariant(std::string_view full_name, Rng& rng);

/// Simulates upstream record-linkage mistakes: each record is moved to a
/// uniformly random *other* group with probability `reassign_fraction`
/// (moves that would empty the source group are skipped). Ground truth
/// entities are untouched — the point is measuring how group linkage
/// degrades when the given grouping is partly wrong (benchmark E15).
/// Returns the number of records actually moved; the dataset stays valid.
size_t PerturbGrouping(Dataset& dataset, double reassign_fraction, Rng& rng);

}  // namespace grouplink

#endif  // GROUPLINK_DATA_PERTURB_H_
