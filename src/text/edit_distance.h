#ifndef GROUPLINK_TEXT_EDIT_DISTANCE_H_
#define GROUPLINK_TEXT_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace grouplink {

/// Levenshtein edit distance (insertions, deletions, substitutions each
/// cost 1). O(|a|·|b|) time, O(min(|a|,|b|)) space.
[[nodiscard]] size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Levenshtein distance with early exit: returns `bound + 1` as soon as the
/// distance provably exceeds `bound`. Uses a banded computation,
/// O(bound · min(|a|,|b|)) time.
[[nodiscard]] size_t BoundedLevenshteinDistance(std::string_view a, std::string_view b, size_t bound);

/// Damerau-Levenshtein distance (additionally counts adjacent
/// transpositions as one edit; restricted/optimal-string-alignment form).
[[nodiscard]] size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b);

/// Normalized edit similarity 1 - distance / max(|a|,|b|), in [0, 1].
/// Two empty strings have similarity 1.
[[nodiscard]] double LevenshteinSimilarity(std::string_view a, std::string_view b);

}  // namespace grouplink

#endif  // GROUPLINK_TEXT_EDIT_DISTANCE_H_
