#include "text/record_similarity.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "text/alignment.h"
#include "text/edit_distance.h"
#include "text/jaccard.h"
#include "text/jaro.h"
#include "text/monge_elkan.h"

namespace grouplink {

double FieldSimilarity(FieldMeasure measure, std::string_view a, std::string_view b,
                       double numeric_scale) {
  switch (measure) {
    case FieldMeasure::kExact:
      return AsciiToLower(a) == AsciiToLower(b) ? 1.0 : 0.0;
    case FieldMeasure::kTokenJaccard:
      return TokenJaccard(a, b);
    case FieldMeasure::kQGramJaccard:
      return QGramJaccard(a, b, 3);
    case FieldMeasure::kLevenshtein:
      return LevenshteinSimilarity(AsciiToLower(a), AsciiToLower(b));
    case FieldMeasure::kJaroWinkler:
      return JaroWinklerSimilarity(AsciiToLower(a), AsciiToLower(b));
    case FieldMeasure::kMongeElkan:
      return MongeElkanJaroWinkler(a, b);
    case FieldMeasure::kAlignment:
      return AlignmentSimilarity(AsciiToLower(a), AsciiToLower(b));
    case FieldMeasure::kNumericAbs: {
      const auto va = ParseDouble(a);
      const auto vb = ParseDouble(b);
      if (!va.ok() || !vb.ok()) return a == b ? 1.0 : 0.0;
      if (numeric_scale <= 0.0) return *va == *vb ? 1.0 : 0.0;
      const double diff = std::abs(*va - *vb) / numeric_scale;
      return std::max(0.0, 1.0 - diff);
    }
  }
  return 0.0;
}

RecordSimilarity::RecordSimilarity(std::vector<FieldSpec> specs)
    : specs_(std::move(specs)) {}

Status RecordSimilarity::Validate() const {
  if (specs_.empty()) return Status::InvalidArgument("no field specs");
  for (const FieldSpec& spec : specs_) {
    if (spec.weight <= 0.0) {
      return Status::InvalidArgument("field weight must be positive");
    }
  }
  return Status::Ok();
}

double RecordSimilarity::Similarity(const std::vector<std::string>& a,
                                    const std::vector<std::string>& b) const {
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (const FieldSpec& spec : specs_) {
    const std::string_view va =
        spec.field_index < a.size() ? std::string_view(a[spec.field_index]) : "";
    const std::string_view vb =
        spec.field_index < b.size() ? std::string_view(b[spec.field_index]) : "";
    if (va.empty() && vb.empty()) continue;  // Missing on both sides: skip.
    weight_total += spec.weight;
    if (va.empty() || vb.empty()) continue;  // One-sided missing: disagreement.
    weighted_sum += spec.weight * FieldSimilarity(spec.measure, va, vb, spec.numeric_scale);
  }
  if (weight_total == 0.0) return 1.0;  // All fields missing on both sides.
  return weighted_sum / weight_total;
}

}  // namespace grouplink
