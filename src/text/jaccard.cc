#include "text/jaccard.h"

#include <algorithm>

#include "text/tokenizer.h"

namespace grouplink {

size_t SortedIntersectionSize(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t inter = SortedIntersectionSize(a, b);
  const size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t inter = SortedIntersectionSize(a, b);
  return 2.0 * static_cast<double>(inter) / static_cast<double>(a.size() + b.size());
}

double OverlapSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t inter = SortedIntersectionSize(a, b);
  return static_cast<double>(inter) / static_cast<double>(std::min(a.size(), b.size()));
}

double TokenJaccard(std::string_view a, std::string_view b) {
  return JaccardSimilarity(ToTokenSet(Tokenize(a)), ToTokenSet(Tokenize(b)));
}

double QGramJaccard(std::string_view a, std::string_view b, size_t q) {
  return JaccardSimilarity(ToTokenSet(CharacterQGrams(a, q, /*lowercase=*/true, '#')),
                           ToTokenSet(CharacterQGrams(b, q, /*lowercase=*/true, '#')));
}

}  // namespace grouplink
