#include "text/tokenizer.h"

#include <algorithm>
#include <cctype>

namespace grouplink {
namespace {

bool IsSeparator(char c, const TokenizerOptions& options) {
  const unsigned char uc = static_cast<unsigned char>(c);
  if (std::isspace(uc)) return true;
  if (options.split_on_punctuation && !std::isalnum(uc)) return true;
  return false;
}

}  // namespace

std::vector<std::string> Tokenize(std::string_view text, const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : text) {
    if (IsSeparator(c, options)) {
      if (current.size() >= options.min_token_length) tokens.push_back(current);
      current.clear();
      continue;
    }
    const char out = options.lowercase
                         ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
                         : c;
    current += out;
  }
  if (current.size() >= options.min_token_length) tokens.push_back(current);
  return tokens;
}

std::vector<std::string> CharacterQGrams(std::string_view text, size_t q, bool lowercase,
                                         char pad) {
  std::string normalized(text);
  if (lowercase) {
    std::transform(normalized.begin(), normalized.end(), normalized.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  }
  if (q == 0) return {};
  if (pad != '\0' && !normalized.empty()) {
    const std::string padding(q - 1, pad);
    normalized = padding + normalized + padding;
  }
  std::vector<std::string> grams;
  if (normalized.empty()) return grams;
  if (normalized.size() < q) {
    grams.push_back(normalized);
    return grams;
  }
  grams.reserve(normalized.size() - q + 1);
  for (size_t i = 0; i + q <= normalized.size(); ++i) {
    grams.push_back(normalized.substr(i, q));
  }
  return grams;
}

std::vector<std::string> ToTokenSet(std::vector<std::string> tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

}  // namespace grouplink
