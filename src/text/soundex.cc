#include "text/soundex.h"

#include <cctype>

namespace grouplink {
namespace {

// Soundex digit for an uppercase letter, or '0' for vowels/H/W/Y.
char SoundexDigit(char upper) {
  switch (upper) {
    case 'B':
    case 'F':
    case 'P':
    case 'V':
      return '1';
    case 'C':
    case 'G':
    case 'J':
    case 'K':
    case 'Q':
    case 'S':
    case 'X':
    case 'Z':
      return '2';
    case 'D':
    case 'T':
      return '3';
    case 'L':
      return '4';
    case 'M':
    case 'N':
      return '5';
    case 'R':
      return '6';
    default:
      return '0';
  }
}

}  // namespace

std::string Soundex(std::string_view word) {
  // Find the first letter.
  size_t start = 0;
  while (start < word.size() && !std::isalpha(static_cast<unsigned char>(word[start]))) {
    ++start;
  }
  if (start == word.size()) return "";

  const char first = static_cast<char>(std::toupper(static_cast<unsigned char>(word[start])));
  std::string code(1, first);
  char previous_digit = SoundexDigit(first);

  for (size_t i = start + 1; i < word.size() && code.size() < 4; ++i) {
    const unsigned char raw = static_cast<unsigned char>(word[i]);
    if (!std::isalpha(raw)) continue;
    const char upper = static_cast<char>(std::toupper(raw));
    // H and W are transparent: they do not break a run of equal digits.
    if (upper == 'H' || upper == 'W') continue;
    const char digit = SoundexDigit(upper);
    if (digit != '0' && digit != previous_digit) code += digit;
    previous_digit = digit;
  }
  code.resize(4, '0');
  return code;
}

}  // namespace grouplink
