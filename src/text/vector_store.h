#ifndef GROUPLINK_TEXT_VECTOR_STORE_H_
#define GROUPLINK_TEXT_VECTOR_STORE_H_

#include <cstdint>
#include <vector>

#include "common/arena.h"
#include "text/tfidf.h"

namespace grouplink {

/// Flat structure-of-arrays store of the corpus' L2-normalized TF-IDF
/// vectors: every record's token ids and weights live in two arena-backed
/// pools addressed through one offsets table — one allocation instead of
/// two per record, and a candidate batch walks contiguous memory instead
/// of chasing vector headers (DESIGN.md §10).
///
/// This is the batched counterpart of PrenormalizedCosineSimilarity:
/// Pair() and Scores() are bitwise-equal to it (and to each other) for
/// every record pair at every SIMD dispatch tier, which is what lets the
/// engine swap the per-call std::function similarity for batch scoring
/// without moving a single link.
class VectorStore {
 public:
  VectorStore() = default;

  /// Builds the flat layout from per-record sparse vectors (ids ascending
  /// within each record, as Vectorize produces). `dimension` is the
  /// vocabulary size — the dense-scatter scratch is sized by it.
  static VectorStore Build(const std::vector<SparseVector>& vectors,
                           size_t dimension);

  [[nodiscard]] size_t size() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] size_t dimension() const { return dimension_; }
  [[nodiscard]] bool Empty(int32_t r) const {
    return offsets_[static_cast<size_t>(r)] == offsets_[static_cast<size_t>(r) + 1];
  }
  [[nodiscard]] Span<const int32_t> TokenIds(int32_t r) const {
    const size_t begin = offsets_[static_cast<size_t>(r)];
    return {ids_.data() + begin, offsets_[static_cast<size_t>(r) + 1] - begin};
  }
  [[nodiscard]] Span<const double> Weights(int32_t r) const {
    const size_t begin = offsets_[static_cast<size_t>(r)];
    return {weights_.data() + begin, offsets_[static_cast<size_t>(r) + 1] - begin};
  }

  /// Canonical pairwise similarity: 0 when either record is token-less
  /// (the engine's convention), otherwise the sorted-merge dot product of
  /// the two unit vectors. Bitwise-equal to
  /// PrenormalizedCosineSimilarity(vectors[a], vectors[b]).
  [[nodiscard]] double Pair(int32_t a, int32_t b) const;

  /// Reusable dense accumulator for Scores: a dimension-sized array of
  /// +0.0 with the current probe's weights scattered in. One per worker;
  /// self-cleaning (re-scattering zeroes the previous probe's entries),
  /// so it can hop between stores and probes safely.
  class Scratch {
   public:
    Scratch() = default;

   private:
    friend class VectorStore;
    std::vector<double> dense_;
    std::vector<int32_t> touched_;
    const VectorStore* store_ = nullptr;
    int32_t probe_ = -1;
  };

  /// Batched one-probe-vs-many scoring: out[i] = Pair(probe, candidates[i]),
  /// bit for bit, at every dispatch tier. The probe is scattered once per
  /// distinct (store, probe) — callers stream candidates grouped by probe
  /// to amortize it (the sharded join does so naturally).
  void Scores(Scratch& scratch, int32_t probe, const int32_t* candidates,
              size_t n, double* out) const;

 private:
  ArenaPool arena_;
  std::vector<size_t> offsets_;  // size()+1 entries.
  Span<int32_t> ids_;
  Span<double> weights_;
  size_t dimension_ = 0;
};

}  // namespace grouplink

#endif  // GROUPLINK_TEXT_VECTOR_STORE_H_
