#ifndef GROUPLINK_TEXT_TOKENIZER_H_
#define GROUPLINK_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace grouplink {

/// Options controlling text normalization before tokenization.
struct TokenizerOptions {
  /// Lowercase ASCII letters.
  bool lowercase = true;
  /// Treat any non-alphanumeric character as a separator; otherwise only
  /// whitespace separates tokens.
  bool split_on_punctuation = true;
  /// Drop tokens shorter than this many characters.
  size_t min_token_length = 1;
};

/// Splits `text` into word tokens under `options`.
/// "Dr. J. Ullman" -> {"dr", "j", "ullman"} with defaults.
[[nodiscard]] std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& options = {});

/// Returns the multiset of character q-grams of `text` (after optional
/// lowercasing), padded with `pad` (q-1 copies) on both ends when
/// `pad != '\0'`. For text shorter than q with no padding, returns the
/// whole text as a single gram (if non-empty).
[[nodiscard]] std::vector<std::string> CharacterQGrams(std::string_view text, size_t q,
                                         bool lowercase = true, char pad = '\0');

/// Deduplicates and sorts tokens, producing a set representation suitable
/// for Jaccard / overlap computations.
[[nodiscard]] std::vector<std::string> ToTokenSet(std::vector<std::string> tokens);

}  // namespace grouplink

#endif  // GROUPLINK_TEXT_TOKENIZER_H_
