#include "text/vector_store.h"

#include "common/logging.h"
#include "common/metrics.h"
#include "text/simd_kernels.h"

namespace grouplink {

VectorStore VectorStore::Build(const std::vector<SparseVector>& vectors,
                               size_t dimension) {
  VectorStore store;
  store.dimension_ = dimension;
  store.offsets_.resize(vectors.size() + 1, 0);
  size_t total = 0;
  for (size_t r = 0; r < vectors.size(); ++r) {
    GL_DCHECK_EQ(vectors[r].ids.size(), vectors[r].weights.size());
    total += vectors[r].ids.size();
    store.offsets_[r + 1] = total;
  }
  store.ids_ = store.arena_.AllocateArray<int32_t>(total);
  store.weights_ = store.arena_.AllocateArray<double>(total);
  for (size_t r = 0; r < vectors.size(); ++r) {
    const size_t begin = store.offsets_[r];
    for (size_t k = 0; k < vectors[r].ids.size(); ++k) {
      const int32_t id = vectors[r].ids[k];
      GL_DCHECK_GE(id, 0);
      GL_DCHECK_LT(static_cast<size_t>(id), dimension);
      store.ids_[begin + k] = id;
      store.weights_[begin + k] = vectors[r].weights[k];
    }
  }
  return store;
}

double VectorStore::Pair(int32_t a, int32_t b) const {
  const Span<const int32_t> a_ids = TokenIds(a);
  const Span<const int32_t> b_ids = TokenIds(b);
  if (a_ids.empty() || b_ids.empty()) return 0.0;
  const Span<const double> a_weights = Weights(a);
  const Span<const double> b_weights = Weights(b);
  // The canonical order: ascending common token id, product a*b.
  double sum = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a_ids.size() && j < b_ids.size()) {
    if (a_ids[i] < b_ids[j]) {
      ++i;
    } else if (b_ids[j] < a_ids[i]) {
      ++j;
    } else {
      sum += a_weights[i] * b_weights[j];
      ++i;
      ++j;
    }
  }
  return sum;
}

void VectorStore::Scores(Scratch& scratch, int32_t probe,
                         const int32_t* candidates, size_t n, double* out) const {
  static Counter& m_batches =
      MetricsRegistry::Default().CounterRef("simd.cosine_batches");
  static Counter& m_pairs =
      MetricsRegistry::Default().CounterRef("simd.cosine_batch_pairs");
  m_batches.Increment();
  m_pairs.Increment(n);

  if (scratch.store_ != this || scratch.probe_ != probe) {
    // Self-cleaning re-scatter: zero exactly the entries the previous
    // probe touched, then scatter the new probe's weights. The dense
    // array is +0.0 everywhere else by construction, which the bitwise
    // equality of ScatterDot with the merge dot depends on.
    for (const int32_t id : scratch.touched_) {
      scratch.dense_[static_cast<size_t>(id)] = 0.0;
    }
    scratch.touched_.clear();
    if (scratch.dense_.size() < dimension_) scratch.dense_.resize(dimension_, 0.0);
    const Span<const int32_t> probe_ids = TokenIds(probe);
    const Span<const double> probe_weights = Weights(probe);
    scratch.touched_.reserve(probe_ids.size());
    for (size_t k = 0; k < probe_ids.size(); ++k) {
      scratch.dense_[static_cast<size_t>(probe_ids[k])] = probe_weights[k];
      scratch.touched_.push_back(probe_ids[k]);
    }
    scratch.store_ = this;
    scratch.probe_ = probe;
  }

  const bool probe_empty = Empty(probe);
  const double* dense = scratch.dense_.data();
  for (size_t i = 0; i < n; ++i) {
    const int32_t candidate = candidates[i];
    const size_t begin = offsets_[static_cast<size_t>(candidate)];
    const size_t length = offsets_[static_cast<size_t>(candidate) + 1] - begin;
    // Token-less records score 0 by convention, matching Pair.
    if (probe_empty || length == 0) {
      out[i] = 0.0;
      continue;
    }
    out[i] = ScatterDot(dense, ids_.data() + begin, weights_.data() + begin, length);
  }
}

}  // namespace grouplink
