#include "text/monge_elkan.h"

#include <algorithm>

#include "text/jaro.h"
#include "text/tokenizer.h"

namespace grouplink {

double MongeElkanDirected(const std::vector<std::string>& a,
                          const std::vector<std::string>& b,
                          const TokenSimilarityFn& inner) {
  if (a.empty()) return b.empty() ? 1.0 : 0.0;
  if (b.empty()) return 0.0;
  double total = 0.0;
  for (const std::string& token_a : a) {
    double best = 0.0;
    for (const std::string& token_b : b) {
      best = std::max(best, inner(token_a, token_b));
    }
    total += best;
  }
  return total / static_cast<double>(a.size());
}

double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b,
                            const TokenSimilarityFn& inner) {
  return 0.5 * (MongeElkanDirected(a, b, inner) + MongeElkanDirected(b, a, inner));
}

double MongeElkanJaroWinkler(std::string_view a, std::string_view b) {
  const auto inner = [](std::string_view x, std::string_view y) {
    return JaroWinklerSimilarity(x, y);
  };
  return MongeElkanSimilarity(Tokenize(a), Tokenize(b), inner);
}

}  // namespace grouplink
