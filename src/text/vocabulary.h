#ifndef GROUPLINK_TEXT_VOCABULARY_H_
#define GROUPLINK_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace grouplink {

/// Token dictionary with document frequencies, the corpus statistics
/// behind TF-IDF weighting and df-ordered prefix filtering.
///
/// Build it once over a corpus by calling AddDocument for every document's
/// *deduplicated* token set, then query ids and IDF weights.
class Vocabulary {
 public:
  static constexpr int32_t kUnknownToken = -1;

  /// Registers one document's token set; each distinct token's document
  /// frequency is incremented once (callers pass deduplicated tokens; a
  /// repeated token in one call would be counted repeatedly).
  void AddDocument(const std::vector<std::string>& token_set);

  /// Rebuilds a vocabulary from its serialized parts — token id i is
  /// `tokens[i]` with document frequency `document_frequencies[i]`. The
  /// restored object is bit-identical in every query (ids, dfs, IDF table)
  /// to the one the parts were read from; the storage tier's recovery path
  /// depends on exactly that. Duplicate tokens or negative sizes are a
  /// programmer error (GL_CHECK).
  static Vocabulary Restore(std::vector<std::string> tokens,
                            std::vector<int64_t> document_frequencies,
                            int64_t num_documents);

  /// Returns the id of `token`, or kUnknownToken.
  int32_t GetId(std::string_view token) const;

  /// Returns the id of `token`, inserting it (with df 0) if missing.
  int32_t GetOrInsertId(std::string_view token);

  /// Token text for an id. Requires a valid id.
  const std::string& TokenOf(int32_t id) const;

  /// Document frequency of a token id. Requires a valid id.
  int64_t DocumentFrequencyOf(int32_t id) const;

  /// Smoothed inverse document frequency:
  /// idf(t) = ln((1 + N) / (1 + df(t))) + 1, always > 0.
  double IdfOf(int32_t id) const;

  /// The whole IDF column as one flat array indexed by token id —
  /// entry i == IdfOf(i) bit for bit. Computed once per call; consumers
  /// on hot paths (TfIdfVectorizer) cache it instead of paying one log()
  /// per token occurrence.
  [[nodiscard]] std::vector<double> IdfTable() const;

  int64_t num_documents() const { return num_documents_; }
  size_t size() const { return tokens_.size(); }

 private:
  std::unordered_map<std::string, int32_t> token_to_id_;
  std::vector<std::string> tokens_;
  std::vector<int64_t> document_frequency_;
  int64_t num_documents_ = 0;
};

/// Builds a Vocabulary over `token_sets` in order. Token ids depend on
/// first-seen order, so every consumer that feeds the same sequence —
/// the batch engine's Prepare over a dataset's records, or the streaming
/// linker's epoch refresh over its live records — gets an identical id
/// space and hence bit-identical downstream vectors.
Vocabulary BuildVocabulary(const std::vector<std::vector<std::string>>& token_sets);

}  // namespace grouplink

#endif  // GROUPLINK_TEXT_VOCABULARY_H_
