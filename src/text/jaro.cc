#include "text/jaro.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace grouplink {

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const size_t max_len = std::max(a.size(), b.size());
  const size_t window = max_len / 2 == 0 ? 0 : max_len / 2 - 1;

  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);

  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions: matched characters out of relative order.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  transpositions /= 2;

  const double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) + m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions)) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  GL_CHECK_LE(prefix_scale, 0.25);
  GL_CHECK_GE(prefix_scale, 0.0);
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

}  // namespace grouplink
