#include "text/edit_distance.h"

#include <algorithm>
#include <vector>

#include "common/simd_dispatch.h"
#include "text/simd_kernels.h"

namespace grouplink {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string.
  if (b.empty()) return a.size();
  // Myers' bit-parallel algorithm computes the exact same distance in
  // O(n) words when the shorter string fits one machine word. Gated on
  // the dispatch level only so GROUPLINK_FORCE_SCALAR=1 exercises the
  // DP in differential tests — both paths are exact.
  if (ActiveSimdLevel() != SimdLevel::kScalar &&
      BitParallelEditDistanceApplies(a.size(), b.size())) {
    return BitParallelEditDistance(a, b);
  }
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];  // D[i-1][j-1].
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t above = row[j];  // D[i-1][j].
      const size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j - 1] + 1, above + 1, substitution});
      diagonal = above;
    }
  }
  return row[b.size()];
}

size_t BoundedLevenshteinDistance(std::string_view a, std::string_view b, size_t bound) {
  if (a.size() < b.size()) std::swap(a, b);
  if (a.size() - b.size() > bound) return bound + 1;
  if (b.empty()) return a.size();

  // Banded DP: only cells with |i - j| <= bound can hold values <= bound.
  constexpr size_t kInf = static_cast<size_t>(-1) / 2;
  std::vector<size_t> row(b.size() + 1, kInf);
  for (size_t j = 0; j <= std::min(b.size(), bound); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    const size_t j_lo = i > bound ? i - bound : 1;
    const size_t j_hi = std::min(b.size(), i + bound);
    if (j_lo > j_hi) return bound + 1;
    size_t diagonal = row[j_lo - 1];
    row[j_lo - 1] = (i <= bound && j_lo == 1) ? i : kInf;
    size_t row_min = row[j_lo - 1];
    for (size_t j = j_lo; j <= j_hi; ++j) {
      const size_t above = row[j];
      const size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      const size_t left = (j > j_lo || (i <= bound && j_lo == 1)) ? row[j - 1] : kInf;
      row[j] = std::min({left == kInf ? kInf : left + 1,
                         above == kInf ? kInf : above + 1, substitution});
      diagonal = above;
      row_min = std::min(row_min, row[j]);
    }
    if (j_hi < b.size()) row[j_hi + 1] = kInf;  // Invalidate stale cell.
    if (row_min > bound) return bound + 1;
  }
  return row[b.size()] > bound ? bound + 1 : row[b.size()];
}

size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0) return n;
  if (n == 0) return m;
  // Three rolling rows: i-2, i-1, i.
  std::vector<size_t> two_above(n + 1);
  std::vector<size_t> above(n + 1);
  std::vector<size_t> current(n + 1);
  for (size_t j = 0; j <= n; ++j) above[j] = j;
  for (size_t i = 1; i <= m; ++i) {
    current[0] = i;
    for (size_t j = 1; j <= n; ++j) {
      const size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      current[j] = std::min({current[j - 1] + 1, above[j] + 1, above[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        current[j] = std::min(current[j], two_above[j - 2] + 1);
      }
    }
    std::swap(two_above, above);
    std::swap(above, current);
  }
  return above[n];  // `above` holds the final row after the last swap.
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t distance = LevenshteinDistance(a, b);
  const size_t longest = std::max(a.size(), b.size());
  return 1.0 - static_cast<double>(distance) / static_cast<double>(longest);
}

}  // namespace grouplink
