#ifndef GROUPLINK_TEXT_TFIDF_H_
#define GROUPLINK_TEXT_TFIDF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/vocabulary.h"

namespace grouplink {

/// A sparse vector as (token id, weight) entries sorted by id.
/// Produced by TfIdfVectorizer; consumed by CosineSimilarity.
struct SparseVector {
  std::vector<int32_t> ids;
  std::vector<double> weights;

  size_t size() const { return ids.size(); }
  bool empty() const { return ids.empty(); }
};

/// Euclidean norm of `v`.
[[nodiscard]] double L2Norm(const SparseVector& v);

/// Scales `v` in place to unit norm (no-op for the zero vector).
void L2Normalize(SparseVector& v);

/// Dot product of two id-sorted sparse vectors (linear merge).
[[nodiscard]] double DotProduct(const SparseVector& a, const SparseVector& b);

/// Cosine similarity; 0 if either vector is zero, except two *empty*
/// vectors which compare equal (1), matching the set-measure conventions.
[[nodiscard]] double CosineSimilarity(const SparseVector& a, const SparseVector& b);

/// Record-similarity hot path for vectors Vectorize already L2-normalized:
/// the cosine IS the dot product, so the two per-call norm passes of
/// CosineSimilarity are skipped. Token-less records score 0 — the engine's
/// convention (no co-reference evidence), shared with the streaming
/// linker. VectorStore::Pair/Scores (text/vector_store.h) reproduce this
/// value bit for bit, which is what keeps the per-pair, edge-join, and
/// batched-SIMD paths on one link set.
[[nodiscard]] double PrenormalizedCosineSimilarity(const SparseVector& a,
                                                   const SparseVector& b);

/// Turns token lists into L2-normalized TF-IDF vectors against a
/// Vocabulary built over the corpus.
///
/// Example:
///   Vocabulary vocab;
///   for (doc : corpus) vocab.AddDocument(ToTokenSet(Tokenize(doc)));
///   TfIdfVectorizer vectorizer(&vocab);
///   SparseVector v = vectorizer.Vectorize(Tokenize(doc));
class TfIdfVectorizer {
 public:
  /// `vocabulary` must outlive the vectorizer and is not modified:
  /// out-of-vocabulary tokens are dropped.
  explicit TfIdfVectorizer(const Vocabulary* vocabulary);

  /// TF-IDF weights (raw term frequency × smoothed IDF), L2-normalized.
  /// Tokens may repeat; repeats raise the term frequency.
  SparseVector Vectorize(const std::vector<std::string>& tokens) const;

  const Vocabulary& vocabulary() const { return *vocabulary_; }

 private:
  const Vocabulary* vocabulary_;
  /// IdfTable() snapshot taken at construction: one log() per vocabulary
  /// entry once, instead of one per token occurrence per Vectorize call.
  std::vector<double> idf_table_;
};

class ThreadPool;

/// Recomputes the TF-IDF vector of every token list in `raw_tokens`
/// against `vocabulary`, in parallel across records when `pool` is
/// non-null. Entry i of the result is Vectorize(raw_tokens[i]); an empty
/// token list yields an empty vector. This is the epoch-refresh primitive
/// of the streaming linker: after corpus statistics change, the whole
/// vector store is rebuilt in one pass without re-tokenizing any text.
/// Output is bit-identical at any thread count.
[[nodiscard]] std::vector<SparseVector> RecomputeVectors(
    const Vocabulary& vocabulary,
    const std::vector<std::vector<std::string>>& raw_tokens,
    ThreadPool* pool = nullptr);

}  // namespace grouplink

#endif  // GROUPLINK_TEXT_TFIDF_H_
