#ifndef GROUPLINK_TEXT_SIMD_KERNELS_H_
#define GROUPLINK_TEXT_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace grouplink {

/// Batched, branch-light kernels behind the verify/score hot path:
/// sorted-set intersection (Jaccard overlap), scatter/gather TF-IDF
/// cosine, and bit-parallel edit distance. Each has a scalar reference
/// implementation and vectorized tiers selected by ActiveSimdLevel()
/// (common/simd_dispatch.h).
///
/// THE contract (PR 1 determinism, extended in DESIGN.md §10): every
/// kernel returns a bit-identical result at every dispatch tier. The
/// integer kernels are exact by nature; ScatterDot commits to one
/// canonical accumulation order — ascending candidate-token position —
/// that the vector tiers reproduce exactly by adding only the (provably
/// non-zero-preserving) matched products in lane order, never reassociating
/// and never fusing multiply-adds.

// ---------------------------------------------------------------------------
// Sorted-set intersection (Jaccard overlap numerator).
// ---------------------------------------------------------------------------

/// Count of elements common to two sorted, duplicate-free u32 arrays.
/// Reference implementation: linear merge.
[[nodiscard]] size_t SortedIntersectCountScalar(const uint32_t* a, size_t na,
                                                const uint32_t* b, size_t nb);

/// Dispatched count: galloping binary search when the sizes are lopsided,
/// an SSE4.2 4x4 all-pairs block compare otherwise, scalar merge as the
/// fallback. Always equals SortedIntersectCountScalar.
[[nodiscard]] size_t SortedIntersectCount(const uint32_t* a, size_t na,
                                          const uint32_t* b, size_t nb);

// ---------------------------------------------------------------------------
// Scatter/gather cosine (one probe vs many candidates).
// ---------------------------------------------------------------------------
// The probe's weights are scattered into a dense array indexed by token
// id (+0.0 everywhere else); each candidate is then scored by gathering
// dense[id] for its tokens. Because every TF-IDF weight is strictly
// positive, non-matching terms contribute +0.0, which is a bitwise no-op
// on a never-negative partial sum — so the scatter dot equals the
// classic sorted-merge DotProduct bit for bit (DESIGN.md §10 carries the
// full argument).

/// Reference: sum over k of dense[ids[k]] * weights[k], in index order.
[[nodiscard]] double ScatterDotScalar(const double* dense, const int32_t* ids,
                                      const double* weights, size_t n);

/// Dispatched scatter dot. AVX2 gathers 4 lanes and skips all-zero
/// blocks with one mask test; matched products are added in lane order,
/// which is ascending token order — bit-identical to the scalar path.
[[nodiscard]] double ScatterDot(const double* dense, const int32_t* ids,
                                const double* weights, size_t n);

// ---------------------------------------------------------------------------
// Bit-parallel edit distance.
// ---------------------------------------------------------------------------

/// True when the Myers bit-parallel path applies: the shorter string fits
/// in one 64-bit word.
[[nodiscard]] bool BitParallelEditDistanceApplies(size_t len_a, size_t len_b);

/// Myers (1999) bit-parallel Levenshtein distance. Word-parallel rather
/// than vector-ISA, but gated behind the same dispatch switch so
/// GROUPLINK_FORCE_SCALAR exercises the classic DP everywhere. Exact:
/// always equals LevenshteinDistance. Requires
/// BitParallelEditDistanceApplies(a.size(), b.size()).
[[nodiscard]] size_t BitParallelEditDistance(std::string_view a,
                                             std::string_view b);

}  // namespace grouplink

#endif  // GROUPLINK_TEXT_SIMD_KERNELS_H_
