#ifndef GROUPLINK_TEXT_MONGE_ELKAN_H_
#define GROUPLINK_TEXT_MONGE_ELKAN_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace grouplink {

/// Inner token-to-token similarity used by Monge-Elkan.
using TokenSimilarityFn = std::function<double(std::string_view, std::string_view)>;

/// Directed Monge-Elkan similarity:
///   ME(A -> B) = (1/|A|) Σ_{a ∈ A} max_{b ∈ B} inner(a, b).
/// Empty A vs empty B is 1; empty vs non-empty is 0.
[[nodiscard]] double MongeElkanDirected(const std::vector<std::string>& a,
                          const std::vector<std::string>& b,
                          const TokenSimilarityFn& inner);

/// Symmetric Monge-Elkan: mean of the two directed scores. Good at
/// matching multi-token names where token order and count differ
/// ("ullman jeffrey d" vs "j ullman").
[[nodiscard]] double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b,
                            const TokenSimilarityFn& inner);

/// Convenience: symmetric Monge-Elkan over word tokens of raw strings with
/// Jaro-Winkler as the inner measure.
[[nodiscard]] double MongeElkanJaroWinkler(std::string_view a, std::string_view b);

}  // namespace grouplink

#endif  // GROUPLINK_TEXT_MONGE_ELKAN_H_
