#ifndef GROUPLINK_TEXT_ALIGNMENT_H_
#define GROUPLINK_TEXT_ALIGNMENT_H_

#include <string_view>

namespace grouplink {

/// Scoring scheme for sequence alignment (character-level).
struct AlignmentScores {
  double match = 1.0;
  double mismatch = -1.0;
  double gap = -1.0;
};

/// Needleman-Wunsch global alignment score of two strings under `scores`.
/// O(|a|·|b|) time, O(min) space.
[[nodiscard]] double NeedlemanWunschScore(std::string_view a, std::string_view b,
                            const AlignmentScores& scores = {});

/// Smith-Waterman local alignment score (best-scoring substring pair;
/// never negative).
[[nodiscard]] double SmithWatermanScore(std::string_view a, std::string_view b,
                          const AlignmentScores& scores = {});

/// Global alignment similarity normalized to [0, 1]:
/// max(0, NW(a, b)) / max(|a|, |b|) under the default scores, so identical
/// strings score 1 and unrelated strings 0. Two empty strings score 1.
[[nodiscard]] double AlignmentSimilarity(std::string_view a, std::string_view b);

}  // namespace grouplink

#endif  // GROUPLINK_TEXT_ALIGNMENT_H_
