#ifndef GROUPLINK_TEXT_SOUNDEX_H_
#define GROUPLINK_TEXT_SOUNDEX_H_

#include <string>
#include <string_view>

namespace grouplink {

/// American Soundex code of `word`: first letter plus three digits
/// ("Robert" -> "R163"). Non-ASCII-alpha characters are ignored; an input
/// with no letters yields the empty string. Used as a phonetic blocking key
/// for person names.
[[nodiscard]] std::string Soundex(std::string_view word);

}  // namespace grouplink

#endif  // GROUPLINK_TEXT_SOUNDEX_H_
