#ifndef GROUPLINK_TEXT_RECORD_SIMILARITY_H_
#define GROUPLINK_TEXT_RECORD_SIMILARITY_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace grouplink {

/// Built-in string-pair similarity measures selectable per field.
enum class FieldMeasure {
  kExact,         // 1 if equal (case-insensitive), else 0.
  kTokenJaccard,  // Jaccard over word-token sets.
  kQGramJaccard,  // Jaccard over padded character 3-gram sets.
  kLevenshtein,   // Normalized edit similarity.
  kJaroWinkler,   // Jaro-Winkler.
  kMongeElkan,    // Symmetric Monge-Elkan with Jaro-Winkler inner measure.
  kNumericAbs,    // 1 - |a-b| / scale for numeric fields, clamped to [0,1].
  kAlignment,     // Normalized Needleman-Wunsch global alignment.
};

/// Evaluates one FieldMeasure on a pair of field values.
/// `numeric_scale` applies to kNumericAbs only (difference at which the
/// similarity reaches 0). Unparseable numeric values score 0 unless equal.
[[nodiscard]] double FieldSimilarity(FieldMeasure measure, std::string_view a, std::string_view b,
                       double numeric_scale = 1.0);

/// One field's contribution to a composite record similarity.
struct FieldSpec {
  size_t field_index = 0;
  FieldMeasure measure = FieldMeasure::kTokenJaccard;
  double weight = 1.0;
  double numeric_scale = 1.0;  // Only used by kNumericAbs.
};

/// Weighted combination of per-field similarities for schema-full records
/// (records as vectors of field strings). This is the classic Fellegi-
/// Sunter-style record comparison vector collapsed to one score.
///
/// Missing values: when both fields are empty the pair is skipped and the
/// weights renormalize over present fields; when exactly one side is empty
/// the field contributes 0 (a disagreement).
///
/// Example:
///   RecordSimilarity sim({{0, FieldMeasure::kJaroWinkler, 2.0},
///                         {1, FieldMeasure::kTokenJaccard, 1.0}});
///   double s = sim.Similarity(record_a.fields, record_b.fields);
class RecordSimilarity {
 public:
  explicit RecordSimilarity(std::vector<FieldSpec> specs);

  /// Composite similarity in [0, 1]. Field indexes beyond a record's size
  /// are treated as empty values.
  double Similarity(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) const;

  /// Validates that weights are positive and at least one spec exists.
  Status Validate() const;

  const std::vector<FieldSpec>& specs() const { return specs_; }

 private:
  std::vector<FieldSpec> specs_;
};

}  // namespace grouplink

#endif  // GROUPLINK_TEXT_RECORD_SIMILARITY_H_
