#ifndef GROUPLINK_TEXT_JARO_H_
#define GROUPLINK_TEXT_JARO_H_

#include <string_view>

namespace grouplink {

/// Jaro similarity in [0, 1]: based on the number of matching characters
/// within a sliding window and the number of transpositions among them.
/// Two empty strings have similarity 1; empty vs non-empty 0.
[[nodiscard]] double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity: boosts Jaro by up to 4 characters of common
/// prefix. `prefix_scale` is Winkler's p (default 0.1, must be <= 0.25 so
/// the result stays in [0, 1]).
[[nodiscard]] double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

}  // namespace grouplink

#endif  // GROUPLINK_TEXT_JARO_H_
