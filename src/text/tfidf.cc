#include "text/tfidf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace grouplink {

double L2Norm(const SparseVector& v) {
  double sum = 0.0;
  for (const double w : v.weights) sum += w * w;
  return std::sqrt(sum);
}

void L2Normalize(SparseVector& v) {
  const double norm = L2Norm(v);
  if (norm == 0.0) return;
  for (double& w : v.weights) w /= norm;
}

double DotProduct(const SparseVector& a, const SparseVector& b) {
  GL_DCHECK(a.ids.size() == a.weights.size());
  GL_DCHECK(b.ids.size() == b.weights.size());
  double sum = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a.ids[i] < b.ids[j]) {
      ++i;
    } else if (b.ids[j] < a.ids[i]) {
      ++j;
    } else {
      sum += a.weights[i] * b.weights[j];
      ++i;
      ++j;
    }
  }
  return sum;
}

double CosineSimilarity(const SparseVector& a, const SparseVector& b) {
  if (a.empty() && b.empty()) return 1.0;
  const double norm_a = L2Norm(a);
  const double norm_b = L2Norm(b);
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  return DotProduct(a, b) / (norm_a * norm_b);
}

double PrenormalizedCosineSimilarity(const SparseVector& a, const SparseVector& b) {
  if (a.empty() || b.empty()) return 0.0;
  return DotProduct(a, b);
}

TfIdfVectorizer::TfIdfVectorizer(const Vocabulary* vocabulary)
    : vocabulary_(vocabulary) {
  GL_CHECK(vocabulary != nullptr);
  idf_table_ = vocabulary->IdfTable();
}

SparseVector TfIdfVectorizer::Vectorize(const std::vector<std::string>& tokens) const {
  // Sort-and-run-length instead of a std::map: same sorted id order, same
  // tf counts, same weights bit for bit — without a node allocation per
  // distinct token.
  std::vector<int32_t> ids;
  ids.reserve(tokens.size());
  for (const std::string& token : tokens) {
    const int32_t id = vocabulary_->GetId(token);
    if (id == Vocabulary::kUnknownToken) continue;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  SparseVector vector;
  vector.ids.reserve(ids.size());
  vector.weights.reserve(ids.size());
  for (size_t i = 0; i < ids.size();) {
    size_t j = i;
    while (j < ids.size() && ids[j] == ids[i]) ++j;
    const double tf = static_cast<double>(j - i);
    vector.ids.push_back(ids[i]);
    vector.weights.push_back(tf * idf_table_[static_cast<size_t>(ids[i])]);
    i = j;
  }
  L2Normalize(vector);
  return vector;
}

std::vector<SparseVector> RecomputeVectors(
    const Vocabulary& vocabulary,
    const std::vector<std::vector<std::string>>& raw_tokens, ThreadPool* pool) {
  const TfIdfVectorizer vectorizer(&vocabulary);
  std::vector<SparseVector> vectors(raw_tokens.size());
  ParallelFor(pool, raw_tokens.size(), [&](size_t r) {
    if (!raw_tokens[r].empty()) vectors[r] = vectorizer.Vectorize(raw_tokens[r]);
  });
  return vectors;
}

}  // namespace grouplink
