#include "text/tfidf.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace grouplink {

double L2Norm(const SparseVector& v) {
  double sum = 0.0;
  for (const double w : v.weights) sum += w * w;
  return std::sqrt(sum);
}

void L2Normalize(SparseVector& v) {
  const double norm = L2Norm(v);
  if (norm == 0.0) return;
  for (double& w : v.weights) w /= norm;
}

double DotProduct(const SparseVector& a, const SparseVector& b) {
  GL_DCHECK(a.ids.size() == a.weights.size());
  GL_DCHECK(b.ids.size() == b.weights.size());
  double sum = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a.ids[i] < b.ids[j]) {
      ++i;
    } else if (b.ids[j] < a.ids[i]) {
      ++j;
    } else {
      sum += a.weights[i] * b.weights[j];
      ++i;
      ++j;
    }
  }
  return sum;
}

double CosineSimilarity(const SparseVector& a, const SparseVector& b) {
  if (a.empty() && b.empty()) return 1.0;
  const double norm_a = L2Norm(a);
  const double norm_b = L2Norm(b);
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  return DotProduct(a, b) / (norm_a * norm_b);
}

TfIdfVectorizer::TfIdfVectorizer(const Vocabulary* vocabulary)
    : vocabulary_(vocabulary) {
  GL_CHECK(vocabulary != nullptr);
}

SparseVector TfIdfVectorizer::Vectorize(const std::vector<std::string>& tokens) const {
  // std::map keeps ids sorted, which the sparse representation requires.
  std::map<int32_t, double> term_frequency;
  for (const std::string& token : tokens) {
    const int32_t id = vocabulary_->GetId(token);
    if (id == Vocabulary::kUnknownToken) continue;
    term_frequency[id] += 1.0;
  }
  SparseVector vector;
  vector.ids.reserve(term_frequency.size());
  vector.weights.reserve(term_frequency.size());
  for (const auto& [id, tf] : term_frequency) {
    vector.ids.push_back(id);
    vector.weights.push_back(tf * vocabulary_->IdfOf(id));
  }
  L2Normalize(vector);
  return vector;
}

std::vector<SparseVector> RecomputeVectors(
    const Vocabulary& vocabulary,
    const std::vector<std::vector<std::string>>& raw_tokens, ThreadPool* pool) {
  const TfIdfVectorizer vectorizer(&vocabulary);
  std::vector<SparseVector> vectors(raw_tokens.size());
  ParallelFor(pool, raw_tokens.size(), [&](size_t r) {
    if (!raw_tokens[r].empty()) vectors[r] = vectorizer.Vectorize(raw_tokens[r]);
  });
  return vectors;
}

}  // namespace grouplink
