#include "text/alignment.h"

#include <algorithm>
#include <vector>

namespace grouplink {

double NeedlemanWunschScore(std::string_view a, std::string_view b,
                            const AlignmentScores& scores) {
  if (a.size() < b.size()) std::swap(a, b);
  std::vector<double> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = scores.gap * static_cast<double>(j);
  for (size_t i = 1; i <= a.size(); ++i) {
    double diagonal = row[0];
    row[0] = scores.gap * static_cast<double>(i);
    for (size_t j = 1; j <= b.size(); ++j) {
      const double above = row[j];
      const double substitution =
          diagonal + (a[i - 1] == b[j - 1] ? scores.match : scores.mismatch);
      row[j] = std::max({substitution, above + scores.gap, row[j - 1] + scores.gap});
      diagonal = above;
    }
  }
  return row[b.size()];
}

double SmithWatermanScore(std::string_view a, std::string_view b,
                          const AlignmentScores& scores) {
  if (a.size() < b.size()) std::swap(a, b);
  std::vector<double> row(b.size() + 1, 0.0);
  double best = 0.0;
  for (size_t i = 1; i <= a.size(); ++i) {
    double diagonal = row[0];
    row[0] = 0.0;
    for (size_t j = 1; j <= b.size(); ++j) {
      const double above = row[j];
      const double substitution =
          diagonal + (a[i - 1] == b[j - 1] ? scores.match : scores.mismatch);
      row[j] = std::max(
          {0.0, substitution, above + scores.gap, row[j - 1] + scores.gap});
      best = std::max(best, row[j]);
      diagonal = above;
    }
  }
  return best;
}

double AlignmentSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  const double score = NeedlemanWunschScore(a, b);
  const double longest = static_cast<double>(std::max(a.size(), b.size()));
  return std::max(0.0, score) / longest;
}

}  // namespace grouplink
