#include "text/simd_kernels.h"

#include <algorithm>

#include "common/logging.h"
#include "common/simd_dispatch.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(GROUPLINK_DISABLE_SIMD)
#define GROUPLINK_SIMD_X86 1
#include <immintrin.h>
#endif

namespace grouplink {
namespace {

// Galloping intersection for lopsided inputs: walk the smaller array,
// binary-search (with doubling start) into the larger. Exact count, so it
// is freely interchangeable with every other tier.
size_t SortedIntersectCountGallop(const uint32_t* small, size_t ns,
                                  const uint32_t* large, size_t nl) {
  size_t count = 0;
  size_t lo = 0;
  for (size_t i = 0; i < ns && lo < nl; ++i) {
    const uint32_t needle = small[i];
    // Gallop: double the step until the window covers needle.
    size_t step = 1;
    size_t hi = lo;
    while (hi < nl && large[hi] < needle) {
      lo = hi;
      hi += step;
      step <<= 1;
    }
    const uint32_t* pos = std::lower_bound(large + lo, large + std::min(hi, nl), needle);
    lo = static_cast<size_t>(pos - large);
    if (lo < nl && large[lo] == needle) {
      ++count;
      ++lo;
    }
  }
  return count;
}

// A size ratio past this uses galloping instead of a linear pass.
constexpr size_t kGallopRatio = 32;

#if defined(GROUPLINK_SIMD_X86)

// 4x4 all-pairs block compare (Schlegel/Katsogiannis-style "V1"
// intersection): compare a block of A against every rotation of a block
// of B, popcount the match mask, advance the block with the smaller max.
// Sorted-unique inputs mean each common value is counted exactly once.
__attribute__((target("sse4.2"))) size_t SortedIntersectCountSse42(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb) {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i hits = _mm_cmpeq_epi32(va, vb);
    hits = _mm_or_si128(
        hits, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    hits = _mm_or_si128(
        hits, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    hits = _mm_or_si128(
        hits, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    count += static_cast<size_t>(
        __builtin_popcount(_mm_movemask_ps(_mm_castsi128_ps(hits))));
    const uint32_t a_max = a[i + 3];
    const uint32_t b_max = b[j + 3];
    if (a_max <= b_max) i += 4;
    if (b_max <= a_max) j += 4;
  }
  return count + SortedIntersectCountScalar(a + i, na - i, b + j, nb - j);
}

// Two-lane scatter dot: gather dense values for a pair of candidate
// tokens, skip the (common) all-zero case with one mask test, and add the
// matched products in lane order — ascending token order, exactly the
// scalar accumulation sequence.
__attribute__((target("sse4.2"))) double ScatterDotSse42(const double* dense,
                                                         const int32_t* ids,
                                                         const double* weights,
                                                         size_t n) {
  double sum = 0.0;
  size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const __m128d gathered =
        _mm_set_pd(dense[ids[k + 1]], dense[ids[k]]);  // lane0 = k, lane1 = k+1
    const int mask = _mm_movemask_pd(_mm_cmpneq_pd(gathered, _mm_setzero_pd()));
    if (mask == 0) continue;
    const __m128d products = _mm_mul_pd(gathered, _mm_loadu_pd(weights + k));
    alignas(16) double lanes[2];
    _mm_store_pd(lanes, products);
    if ((mask & 1) != 0) sum += lanes[0];
    if ((mask & 2) != 0) sum += lanes[1];
  }
  for (; k < n; ++k) sum += dense[ids[k]] * weights[k];
  return sum;
}

// Four-lane gather via AVX2: one vgatherdpd + one mask test skips four
// non-matching tokens per iteration.
__attribute__((target("avx2"))) double ScatterDotAvx2(const double* dense,
                                                      const int32_t* ids,
                                                      const double* weights,
                                                      size_t n) {
  double sum = 0.0;
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m128i index =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + k));
    // Masked gather with an explicit zero source: the plain gather
    // intrinsic reads GCC's _mm256_undefined_pd and trips
    // -Wmaybe-uninitialized under -Werror.
    const __m256d gathered = _mm256_mask_i32gather_pd(
        _mm256_setzero_pd(), dense, index,
        _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
    int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(gathered, _mm256_setzero_pd(), _CMP_NEQ_OQ));
    if (mask == 0) continue;
    const __m256d products =
        _mm256_mul_pd(gathered, _mm256_loadu_pd(weights + k));
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, products);
    // Lowest set lane first: ascending token order = canonical order.
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      sum += lanes[lane];
      mask &= mask - 1;
    }
  }
  for (; k < n; ++k) sum += dense[ids[k]] * weights[k];
  return sum;
}

#endif  // GROUPLINK_SIMD_X86

}  // namespace

size_t SortedIntersectCountScalar(const uint32_t* a, size_t na, const uint32_t* b,
                                  size_t nb) {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

size_t SortedIntersectCount(const uint32_t* a, size_t na, const uint32_t* b,
                            size_t nb) {
  if (na == 0 || nb == 0) return 0;
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na * kGallopRatio < nb) return SortedIntersectCountGallop(a, na, b, nb);
#if defined(GROUPLINK_SIMD_X86)
  if (ActiveSimdLevel() >= SimdLevel::kSse42) {
    return SortedIntersectCountSse42(a, na, b, nb);
  }
#endif
  return SortedIntersectCountScalar(a, na, b, nb);
}

double ScatterDotScalar(const double* dense, const int32_t* ids,
                        const double* weights, size_t n) {
  double sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    sum += dense[ids[k]] * weights[k];
  }
  return sum;
}

double ScatterDot(const double* dense, const int32_t* ids, const double* weights,
                  size_t n) {
#if defined(GROUPLINK_SIMD_X86)
  const SimdLevel level = ActiveSimdLevel();
  if (level >= SimdLevel::kAvx2) return ScatterDotAvx2(dense, ids, weights, n);
  if (level >= SimdLevel::kSse42) return ScatterDotSse42(dense, ids, weights, n);
#endif
  return ScatterDotScalar(dense, ids, weights, n);
}

bool BitParallelEditDistanceApplies(size_t len_a, size_t len_b) {
  return std::min(len_a, len_b) <= 64;
}

size_t BitParallelEditDistance(std::string_view a, std::string_view b) {
  // Levenshtein is symmetric; take the shorter string as the pattern so
  // its characteristic vectors fit one word.
  const std::string_view pattern = a.size() <= b.size() ? a : b;
  const std::string_view text = a.size() <= b.size() ? b : a;
  const size_t m = pattern.size();
  GL_DCHECK_LE(m, 64u) << "pattern must fit one machine word";
  if (m == 0) return text.size();

  uint64_t match[256] = {0};
  for (size_t i = 0; i < m; ++i) {
    match[static_cast<unsigned char>(pattern[i])] |= uint64_t{1} << i;
  }

  uint64_t positive = ~uint64_t{0};  // PV: positions where the DP row grows.
  uint64_t negative = 0;             // MV: positions where it shrinks.
  size_t score = m;
  const uint64_t high_bit = uint64_t{1} << (m - 1);
  for (const char c : text) {
    const uint64_t eq = match[static_cast<unsigned char>(c)];
    const uint64_t xv = eq | negative;
    const uint64_t xh = (((eq & positive) + positive) ^ positive) | eq;
    uint64_t ph = negative | ~(xh | positive);
    uint64_t mh = positive & xh;
    if ((ph & high_bit) != 0) ++score;
    if ((mh & high_bit) != 0) --score;
    ph = (ph << 1) | 1;
    mh <<= 1;
    positive = mh | ~(xv | ph);
    negative = ph & xv;
  }
  return score;
}

}  // namespace grouplink
