#include "text/vocabulary.h"

#include <cmath>
#include <utility>

#include "common/logging.h"

namespace grouplink {

void Vocabulary::AddDocument(const std::vector<std::string>& token_set) {
  ++num_documents_;
  for (const std::string& token : token_set) {
    const int32_t id = GetOrInsertId(token);
    ++document_frequency_[id];
  }
}

Vocabulary Vocabulary::Restore(std::vector<std::string> tokens,
                               std::vector<int64_t> document_frequencies,
                               int64_t num_documents) {
  GL_CHECK_EQ(tokens.size(), document_frequencies.size());
  GL_CHECK_GE(num_documents, 0);
  Vocabulary vocabulary;
  vocabulary.tokens_ = std::move(tokens);
  vocabulary.document_frequency_ = std::move(document_frequencies);
  vocabulary.num_documents_ = num_documents;
  vocabulary.token_to_id_.reserve(vocabulary.tokens_.size());
  for (size_t id = 0; id < vocabulary.tokens_.size(); ++id) {
    const auto [it, inserted] = vocabulary.token_to_id_.try_emplace(
        vocabulary.tokens_[id], static_cast<int32_t>(id));
    GL_CHECK(inserted) << "duplicate token in Vocabulary::Restore: " << it->first;
    GL_CHECK_GE(vocabulary.document_frequency_[id], 0);
  }
  return vocabulary;
}

int32_t Vocabulary::GetId(std::string_view token) const {
  const auto it = token_to_id_.find(std::string(token));
  return it == token_to_id_.end() ? kUnknownToken : it->second;
}

int32_t Vocabulary::GetOrInsertId(std::string_view token) {
  const auto [it, inserted] =
      token_to_id_.try_emplace(std::string(token), static_cast<int32_t>(tokens_.size()));
  if (inserted) {
    tokens_.push_back(it->first);
    document_frequency_.push_back(0);
  }
  return it->second;
}

const std::string& Vocabulary::TokenOf(int32_t id) const {
  GL_CHECK_GE(id, 0);
  GL_CHECK_LT(static_cast<size_t>(id), tokens_.size());
  return tokens_[static_cast<size_t>(id)];
}

int64_t Vocabulary::DocumentFrequencyOf(int32_t id) const {
  GL_CHECK_GE(id, 0);
  GL_CHECK_LT(static_cast<size_t>(id), document_frequency_.size());
  return document_frequency_[static_cast<size_t>(id)];
}

double Vocabulary::IdfOf(int32_t id) const {
  const double df = static_cast<double>(DocumentFrequencyOf(id));
  const double n = static_cast<double>(num_documents_);
  return std::log((1.0 + n) / (1.0 + df)) + 1.0;
}

std::vector<double> Vocabulary::IdfTable() const {
  std::vector<double> table(tokens_.size());
  for (size_t id = 0; id < table.size(); ++id) {
    table[id] = IdfOf(static_cast<int32_t>(id));
  }
  return table;
}

Vocabulary BuildVocabulary(const std::vector<std::vector<std::string>>& token_sets) {
  Vocabulary vocabulary;
  for (const std::vector<std::string>& token_set : token_sets) {
    vocabulary.AddDocument(token_set);
  }
  return vocabulary;
}

}  // namespace grouplink
