#ifndef GROUPLINK_TEXT_JACCARD_H_
#define GROUPLINK_TEXT_JACCARD_H_

#include <string>
#include <string_view>
#include <vector>

namespace grouplink {

/// Set-overlap similarity measures over *sorted, deduplicated* token sets
/// (see ToTokenSet). All return values in [0, 1]; two empty sets are
/// defined to have similarity 1 (identical), an empty vs non-empty set 0.

/// |A ∩ B| computed by a linear merge; both inputs must be sorted sets.
[[nodiscard]] size_t SortedIntersectionSize(const std::vector<std::string>& a,
                              const std::vector<std::string>& b);

/// Jaccard coefficient |A∩B| / |A∪B|.
[[nodiscard]] double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Dice coefficient 2|A∩B| / (|A|+|B|).
[[nodiscard]] double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

/// Overlap coefficient |A∩B| / min(|A|,|B|).
[[nodiscard]] double OverlapSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Convenience: Jaccard over word tokens of two raw strings.
[[nodiscard]] double TokenJaccard(std::string_view a, std::string_view b);

/// Convenience: Jaccard over padded character q-gram sets of two strings.
[[nodiscard]] double QGramJaccard(std::string_view a, std::string_view b, size_t q = 3);

}  // namespace grouplink

#endif  // GROUPLINK_TEXT_JACCARD_H_
