#ifndef GROUPLINK_EVAL_TABLE_H_
#define GROUPLINK_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace grouplink {

/// Column-aligned plain-text table used by the benchmark harnesses to
/// print paper-style result tables.
///
/// Example output:
///   measure     | precision | recall | F1
///   ------------+-----------+--------+------
///   BM          | 0.981     | 0.954  | 0.967
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; missing trailing cells render empty, extra cells are
  /// a programmer error (GL_CHECK).
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header separator, ending in a newline.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace grouplink

#endif  // GROUPLINK_EVAL_TABLE_H_
