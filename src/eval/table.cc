#include "eval/table.h"

#include <algorithm>

#include "common/logging.h"

namespace grouplink {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  GL_CHECK(!headers_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  GL_CHECK_LE(cells.size(), headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += " | ";
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
    }
    out += '\n';
  };

  std::string out;
  render_row(headers_, out);
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out += "-+-";
    out.append(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) render_row(row, out);
  return out;
}

}  // namespace grouplink
