#ifndef GROUPLINK_EVAL_SWEEP_H_
#define GROUPLINK_EVAL_SWEEP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/scored_pair.h"
#include "eval/metrics.h"

namespace grouplink {

/// Metrics of one threshold setting in a sweep.
struct SweepPoint {
  double threshold = 0.0;
  PairMetrics metrics;
};

/// Evaluates precision/recall/F1 at every threshold in `thresholds`
/// against ground-truth pairs, from a single scored candidate set — the
/// score-once / sweep-many pattern behind the threshold figures: scoring
/// is the expensive part (one matching per pair), thresholding is free.
///
/// A pair is predicted-positive at threshold t iff score >= t. Pairs
/// absent from `scored` are implicitly scored 0.
[[nodiscard]] std::vector<SweepPoint> ThresholdSweep(
    const std::vector<ScoredPair>& scored,
    const std::vector<std::pair<int32_t, int32_t>>& truth,
    const std::vector<double>& thresholds);

/// The threshold in `thresholds` maximizing F1 (ties: lowest threshold).
[[nodiscard]] double BestF1Threshold(const std::vector<ScoredPair>& scored,
                       const std::vector<std::pair<int32_t, int32_t>>& truth,
                       const std::vector<double>& thresholds);

}  // namespace grouplink

#endif  // GROUPLINK_EVAL_SWEEP_H_
