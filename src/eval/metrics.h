#ifndef GROUPLINK_EVAL_METRICS_H_
#define GROUPLINK_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace grouplink {

/// Pairwise linkage quality: predicted vs ground-truth unordered pairs.
struct PairMetrics {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  double precision = 0.0;  // 1.0 when nothing was predicted.
  double recall = 0.0;     // 1.0 when nothing was true.
  double f1 = 0.0;
};

/// Compares pair sets. Pairs are normalized to (min, max) and deduplicated
/// internally, so order and orientation do not matter.
PairMetrics EvaluatePairs(std::vector<std::pair<int32_t, int32_t>> predicted,
                          std::vector<std::pair<int32_t, int32_t>> truth);

/// Pairwise metrics induced by two clusterings of the same n items:
/// a pair is predicted-positive if the items share a predicted label and
/// true-positive if they share a true label. True labels equal to -1 mean
/// "unique entity" (never co-referring with anything).
PairMetrics EvaluateClusterPairs(const std::vector<size_t>& predicted_labels,
                                 const std::vector<int32_t>& true_labels);

/// B-cubed clustering metrics (Bagga & Baldwin): per-item precision =
/// fraction of the item's predicted cluster sharing its true label,
/// per-item recall = fraction of the item's true cluster sharing its
/// predicted label; averaged over items. -1 true labels are unique.
struct BCubedMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

BCubedMetrics EvaluateBCubed(const std::vector<size_t>& predicted_labels,
                             const std::vector<int32_t>& true_labels);

/// Adjusted Rand Index between a predicted and a true clustering of the
/// same n items: the Rand index corrected for chance, in [-0.5, 1] with 1
/// for identical clusterings and ~0 for random agreement. -1 true labels
/// are unique singletons (as in EvaluateBCubed). Returns 1 for n < 2 or
/// when both clusterings are trivially degenerate in the same way.
[[nodiscard]] double AdjustedRandIndex(const std::vector<size_t>& predicted_labels,
                         const std::vector<int32_t>& true_labels);

/// Harmonic mean helper (0 when both inputs are 0).
[[nodiscard]] double F1Score(double precision, double recall);

}  // namespace grouplink

#endif  // GROUPLINK_EVAL_METRICS_H_
