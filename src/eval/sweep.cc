#include "eval/sweep.h"

#include <algorithm>

namespace grouplink {

std::vector<SweepPoint> ThresholdSweep(
    const std::vector<ScoredPair>& scored,
    const std::vector<std::pair<int32_t, int32_t>>& truth,
    const std::vector<double>& thresholds) {
  std::vector<SweepPoint> points;
  points.reserve(thresholds.size());
  for (const double threshold : thresholds) {
    std::vector<std::pair<int32_t, int32_t>> predicted;
    for (const ScoredPair& pair : scored) {
      if (pair.score >= threshold) predicted.emplace_back(pair.g1, pair.g2);
    }
    SweepPoint point;
    point.threshold = threshold;
    point.metrics = EvaluatePairs(std::move(predicted), truth);
    points.push_back(std::move(point));
  }
  return points;
}

double BestF1Threshold(const std::vector<ScoredPair>& scored,
                       const std::vector<std::pair<int32_t, int32_t>>& truth,
                       const std::vector<double>& thresholds) {
  const auto points = ThresholdSweep(scored, truth, thresholds);
  double best_threshold = thresholds.empty() ? 0.0 : thresholds.front();
  double best_f1 = -1.0;
  for (const SweepPoint& point : points) {
    if (point.metrics.f1 > best_f1) {
      best_f1 = point.metrics.f1;
      best_threshold = point.threshold;
    }
  }
  return best_threshold;
}

}  // namespace grouplink
