#include "eval/metrics.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace grouplink {
namespace {

void NormalizePairs(std::vector<std::pair<int32_t, int32_t>>& pairs) {
  for (auto& [a, b] : pairs) {
    if (a > b) std::swap(a, b);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
}

PairMetrics FromCounts(size_t tp, size_t fp, size_t fn) {
  PairMetrics metrics;
  metrics.true_positives = tp;
  metrics.false_positives = fp;
  metrics.false_negatives = fn;
  metrics.precision =
      tp + fp == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
  metrics.recall =
      tp + fn == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(tp + fn);
  metrics.f1 = F1Score(metrics.precision, metrics.recall);
  return metrics;
}

}  // namespace

double F1Score(double precision, double recall) {
  const double sum = precision + recall;
  return sum == 0.0 ? 0.0 : 2.0 * precision * recall / sum;
}

PairMetrics EvaluatePairs(std::vector<std::pair<int32_t, int32_t>> predicted,
                          std::vector<std::pair<int32_t, int32_t>> truth) {
  NormalizePairs(predicted);
  NormalizePairs(truth);
  size_t tp = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < predicted.size() && j < truth.size()) {
    if (predicted[i] < truth[j]) {
      ++i;
    } else if (truth[j] < predicted[i]) {
      ++j;
    } else {
      ++tp;
      ++i;
      ++j;
    }
  }
  return FromCounts(tp, predicted.size() - tp, truth.size() - tp);
}

PairMetrics EvaluateClusterPairs(const std::vector<size_t>& predicted_labels,
                                 const std::vector<int32_t>& true_labels) {
  GL_CHECK_EQ(predicted_labels.size(), true_labels.size());
  const size_t n = predicted_labels.size();
  size_t tp = 0;
  size_t fp = 0;
  size_t fn = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const bool predicted_same = predicted_labels[i] == predicted_labels[j];
      const bool true_same =
          true_labels[i] >= 0 && true_labels[i] == true_labels[j];
      if (predicted_same && true_same) {
        ++tp;
      } else if (predicted_same) {
        ++fp;
      } else if (true_same) {
        ++fn;
      }
    }
  }
  return FromCounts(tp, fp, fn);
}

BCubedMetrics EvaluateBCubed(const std::vector<size_t>& predicted_labels,
                             const std::vector<int32_t>& true_labels) {
  GL_CHECK_EQ(predicted_labels.size(), true_labels.size());
  const size_t n = predicted_labels.size();
  BCubedMetrics metrics;
  if (n == 0) return metrics;

  // Give each -1 true label a unique negative key so it forms a singleton.
  std::vector<int64_t> truth(n);
  int64_t next_unique = -2;
  for (size_t i = 0; i < n; ++i) {
    truth[i] = true_labels[i] >= 0 ? true_labels[i] : next_unique--;
  }

  std::map<std::pair<size_t, int64_t>, size_t> joint;  // (pred, true) sizes.
  std::map<size_t, size_t> predicted_size;
  std::map<int64_t, size_t> true_size;
  for (size_t i = 0; i < n; ++i) {
    ++joint[{predicted_labels[i], truth[i]}];
    ++predicted_size[predicted_labels[i]];
    ++true_size[truth[i]];
  }

  double precision_sum = 0.0;
  double recall_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double overlap =
        static_cast<double>(joint[{predicted_labels[i], truth[i]}]);
    precision_sum += overlap / static_cast<double>(predicted_size[predicted_labels[i]]);
    recall_sum += overlap / static_cast<double>(true_size[truth[i]]);
  }
  metrics.precision = precision_sum / static_cast<double>(n);
  metrics.recall = recall_sum / static_cast<double>(n);
  metrics.f1 = F1Score(metrics.precision, metrics.recall);
  return metrics;
}

double AdjustedRandIndex(const std::vector<size_t>& predicted_labels,
                         const std::vector<int32_t>& true_labels) {
  GL_CHECK_EQ(predicted_labels.size(), true_labels.size());
  const size_t n = predicted_labels.size();
  if (n < 2) return 1.0;

  std::vector<int64_t> truth(n);
  int64_t next_unique = -2;
  for (size_t i = 0; i < n; ++i) {
    truth[i] = true_labels[i] >= 0 ? true_labels[i] : next_unique--;
  }

  std::map<std::pair<size_t, int64_t>, int64_t> joint;
  std::map<size_t, int64_t> predicted_size;
  std::map<int64_t, int64_t> true_size;
  for (size_t i = 0; i < n; ++i) {
    ++joint[{predicted_labels[i], truth[i]}];
    ++predicted_size[predicted_labels[i]];
    ++true_size[truth[i]];
  }

  const auto choose2 = [](int64_t count) {
    return static_cast<double>(count) * static_cast<double>(count - 1) / 2.0;
  };
  double sum_joint = 0.0;
  for (const auto& [key, count] : joint) sum_joint += choose2(count);
  double sum_predicted = 0.0;
  for (const auto& [key, count] : predicted_size) sum_predicted += choose2(count);
  double sum_true = 0.0;
  for (const auto& [key, count] : true_size) sum_true += choose2(count);

  const double total_pairs = choose2(static_cast<int64_t>(n));
  const double expected = sum_predicted * sum_true / total_pairs;
  const double maximum = 0.5 * (sum_predicted + sum_true);
  if (maximum == expected) {
    // Both clusterings are all-singletons or one giant cluster in a way
    // that leaves no room for chance correction; identical => perfect.
    return sum_joint == maximum ? 1.0 : 0.0;
  }
  return (sum_joint - expected) / (maximum - expected);
}

}  // namespace grouplink
