#ifndef GROUPLINK_CORE_INCREMENTAL_H_
#define GROUPLINK_CORE_INCREMENTAL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/group.h"
#include "core/group_measures.h"
#include "core/linkage_engine.h"
#include "index/inverted_index.h"
#include "text/tfidf.h"
#include "text/vocabulary.h"

namespace grouplink {

/// Streaming group linkage: after seeding with an initial corpus, new
/// groups arrive one at a time and are linked against everything seen so
/// far — without rescoring any existing pair. The arrival path is the
/// filter-and-refine pipeline in miniature: an inverted index over record
/// tokens proposes candidate groups, the UB/LB bounds decide most of
/// them, the Hungarian matching refines the rest.
///
/// Approximations vs a batch rerun (both documented and tested):
///   * TF-IDF statistics are *frozen* at Initialize — new records are
///     vectorized against the seed vocabulary and out-of-vocabulary
///     tokens are dropped. Keeps all previously computed scores valid.
///   * Candidates for a new group are groups sharing at least one seed
///     token with it (inverted-index lookup), so a pair with edges only
///     through unseen tokens can be missed.
///
/// Example:
///   IncrementalLinker linker(config);
///   GL_CHECK(linker.Initialize(seed_dataset).ok());
///   auto added = linker.AddGroup("j ullman", citation_texts);
///   for (int32_t g : added.linked_to) { ... }
class IncrementalLinker {
 public:
  explicit IncrementalLinker(const LinkageConfig& config);

  /// Seeds the linker: validates the dataset, freezes TF-IDF statistics,
  /// builds the record index, and links the seed groups with a full
  /// batch run (same semantics as LinkageEngine).
  Status Initialize(const Dataset& dataset);

  /// Outcome of one AddGroup call.
  struct AddResult {
    /// Index assigned to the new group.
    int32_t group_index = 0;
    /// Existing groups the new group linked to (ascending).
    std::vector<int32_t> linked_to;
    /// Candidate groups that were scored (diagnostics).
    size_t candidates = 0;
  };

  /// Adds one group (its label and record texts) and links it against
  /// every group seen so far. Empty `record_texts` is invalid (GL_CHECK).
  AddResult AddGroup(const std::string& label,
                     const std::vector<std::string>& record_texts);

  /// All links accumulated so far, (i < j) pairs over group indexes.
  const std::vector<std::pair<int32_t, int32_t>>& linked_pairs() const {
    return linked_pairs_;
  }

  /// Entity label per group — the transitive closure of linked_pairs(),
  /// recomputed on demand.
  std::vector<size_t> ClusterLabels() const;

  int32_t num_groups() const { return static_cast<int32_t>(group_records_.size()); }

 private:
  double RecordSimilarity(int32_t a, int32_t b) const;
  /// Ingests one record text; returns its record id.
  int32_t AddRecord(const std::string& text);

  LinkageConfig config_;
  bool initialized_ = false;

  Vocabulary vocabulary_;  // Frozen after Initialize.
  std::vector<SparseVector> record_vectors_;
  std::vector<std::vector<int32_t>> record_token_ids_;
  std::vector<int32_t> record_group_;
  std::vector<std::vector<int32_t>> group_records_;
  std::vector<std::string> group_labels_;
  InvertedIndex token_index_;  // Record id postings per token id.
  std::vector<std::pair<int32_t, int32_t>> linked_pairs_;
};

}  // namespace grouplink

#endif  // GROUPLINK_CORE_INCREMENTAL_H_
