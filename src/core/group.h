#ifndef GROUPLINK_CORE_GROUP_H_
#define GROUPLINK_CORE_GROUP_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace grouplink {

/// One record: the unit that record-level similarity compares. `text` is
/// the primary comparable representation (e.g. the full citation string);
/// `fields` optionally carries a structured view (title, venue, year, ...)
/// for field-weighted similarity.
struct Record {
  std::string id;
  std::string text;
  std::vector<std::string> fields;
};

/// One group: a set of records believed to describe a single entity in one
/// source (e.g. all citations filed under the author name variant
/// "J. D. Ullman"). Group linkage decides which groups co-refer.
struct Group {
  std::string id;
  /// Display label, e.g. the author name variant or household address.
  std::string label;
  /// Indexes into Dataset::records.
  std::vector<int32_t> record_ids;
};

/// A group linkage instance: records, their grouping, and (optionally)
/// ground-truth entity ids per group for evaluation.
struct Dataset {
  std::vector<Record> records;
  std::vector<Group> groups;
  /// Ground-truth entity id per group, or kUnknownEntity. Two groups
  /// co-refer iff their entity ids are equal (and known).
  std::vector<int32_t> group_entities;

  static constexpr int32_t kUnknownEntity = -1;

  int32_t num_records() const { return static_cast<int32_t>(records.size()); }
  int32_t num_groups() const { return static_cast<int32_t>(groups.size()); }

  /// Group size in records.
  int32_t GroupSize(int32_t group) const {
    return static_cast<int32_t>(groups[static_cast<size_t>(group)].record_ids.size());
  }

  /// Inverse mapping record index -> group index. Requires a valid
  /// partition (every record in exactly one group); call Validate() first
  /// on untrusted data.
  std::vector<int32_t> RecordToGroup() const;

  /// Checks structural invariants: record ids in range, every record in
  /// exactly one group, non-empty groups, entity vector empty or sized to
  /// the groups.
  Status Validate() const;

  /// All unordered co-referring group pairs (i < j) per the ground truth.
  /// Groups with unknown entities never appear.
  std::vector<std::pair<int32_t, int32_t>> TruePairs() const;
};

/// Builds a Dataset from parallel vectors: `record_group[r]` is the group
/// index of record r in [0, num_groups). Group labels default to the group
/// id string. Validates the result.
[[nodiscard]] Result<Dataset> MakeDataset(std::vector<Record> records,
                            std::vector<int32_t> record_group, int32_t num_groups,
                            std::vector<int32_t> group_entities = {});

}  // namespace grouplink

#endif  // GROUPLINK_CORE_GROUP_H_
