#ifndef GROUPLINK_CORE_SERVICE_H_
#define GROUPLINK_CORE_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/incremental.h"
#include "core/snapshot.h"

namespace grouplink {

/// Configuration of a LinkageService: the (normalized) engine config and
/// refresh policy of the writer, the refresh execution mode, and the
/// default per-query admission-control limits.
///
/// Validation is unified: Validate() checks the engine config, the
/// streaming policy, and the service's own fields through one entry
/// point, so LinkageService::Create rejects any bad configuration with a
/// single error path whose message names the offending struct
/// ("LinkageConfig: ...", "StreamingConfig: ...", "ServiceConfig: ...").
struct ServiceConfig {
  /// Engine configuration of the writer (normalized by the linker to the
  /// streaming-reproducible shape; see IncrementalLinker).
  LinkageConfig engine;
  /// Epoch refresh policy, owned by the *service*: in async mode the
  /// triggers start a background refresh instead of the linker's inline
  /// stop-the-world one.
  StreamingConfig streaming;
  /// True (default): policy- and RefreshAsync-triggered refreshes build
  /// the next epoch on a clone off to the side and swap it in — arrivals
  /// and queries never wait for a refresh. False: refreshes run inline in
  /// the mutating call (the pre-serving stop-the-world behavior, kept as
  /// the bench baseline).
  bool async_refresh = true;
  /// Defaults applied to every LinkQuery whose QueryOptions leave the
  /// corresponding knob at 0 (0 here too = unlimited).
  double default_query_deadline_ms = 0.0;
  int64_t default_query_max_candidates = 0;
  int64_t default_query_max_matcher_cost = 0;

  /// Persistence (the storage tier, src/storage/). Empty = off. When
  /// set, PersistNow() writes the published epoch here, Restore() warm
  /// restarts from it, and persist_on_refresh automates the writes.
  std::string persist_path;
  /// Persist every newly published epoch (seed, inline, and async
  /// refreshes). The write runs outside the writer lock — ingest and
  /// queries never wait on disk — and failures are absorbed into
  /// last_persist_status() + a warning log, never into serving.
  bool persist_on_refresh = false;
  /// Page size of persisted stores (see storage::StorageOptions).
  uint32_t persist_page_bytes = 4096;

  [[nodiscard]] Status Validate() const;
};

/// Linkage-as-a-service: one writer (an IncrementalLinker) plus the
/// currently published CorpusSnapshot, behind a thread-safe API.
///
///   * Read path: LinkQuery / snapshot() load the published epoch from an
///     EpochCell (one atomic acquire-load; no mutex) and run entirely on
///     immutable state — any number of threads, never blocked by writes
///     or refreshes.
///   * Write path: AddGroup(s) / RemoveGroup / MergeGroups mutate the
///     writer under an internal lock. Mutations become *queryable* at the
///     next published epoch (refresh), not immediately — the snapshot is
///     a frozen refresh point, which is exactly what makes query-at-epoch
///     == batch-run-at-epoch provable.
///   * Refresh path (async mode): when the streaming policy trips, the
///     service clones the writer at the current cut, refreshes the clone
///     on a background thread, publishes the refreshed state as the next
///     epoch, then replays the mutations that arrived during the build
///     and swaps the clone in as the new writer. The final writer state
///     is identical to a stop-the-world refresh at the same cut followed
///     by the same mutations (tested); no caller ever waits for the
///     refresh itself.
///
/// Observability: service.* counters (queries, query_links,
/// epochs_published, refreshes_async/sync, replayed_ops), the
/// service.query_seconds latency histogram, and snapshot.live /
/// snapshot.retired for epoch reclamation, all in the default registry.
///
/// Example:
///   GL_ASSIGN_OR_RETURN(LinkageService service,
///                       LinkageService::Create(seed, config));
///   CorpusSnapshot::QueryResult hit = service.LinkQuery(
///       {"j ullman", citation_texts});
class LinkageService {
 public:
  using QueryOptions = CorpusSnapshot::QueryOptions;
  using QueryResult = CorpusSnapshot::QueryResult;
  using AddResult = IncrementalLinker::AddResult;

  /// Single-phase init: validates `config` (unified path), builds the
  /// writer over the seed corpus (one full refresh), and publishes the
  /// seed epoch — the returned service answers queries immediately.
  [[nodiscard]] static Result<LinkageService> Create(const Dataset& seed,
                                                     const ServiceConfig& config);

  /// Warm restart: recovers the epoch persisted at `config.persist_path`
  /// (SnapshotStore::Load — every page checksum-verified, consistency-
  /// checked), publishes it, and rebuilds the writer from it
  /// (IncrementalLinker::FromSnapshot), so the restarted service answers
  /// queries immediately and links subsequent arrivals bit-identically
  /// to a service that had never stopped. `config.engine` is superseded
  /// by the persisted engine config — the store knows what it was built
  /// with. Errors: InvalidArgument (no persist_path), NotFound (no
  /// store), DataLoss, IoError.
  [[nodiscard]] static Result<LinkageService> Restore(const ServiceConfig& config);

  ~LinkageService();
  LinkageService(LinkageService&&) noexcept;
  LinkageService& operator=(LinkageService&&) noexcept;
  LinkageService(const LinkageService&) = delete;
  LinkageService& operator=(const LinkageService&) = delete;

  /// The currently published epoch. Lock-free; the returned snapshot
  /// stays valid (and immutable) however long the caller holds it, across
  /// any number of later refreshes.
  [[nodiscard]] std::shared_ptr<const CorpusSnapshot> snapshot() const;

  /// Links `group` against the published epoch. Thread-safe, never
  /// blocks on writers. Zero-valued `options` knobs fall back to the
  /// configured per-query defaults.
  [[nodiscard]] QueryResult LinkQuery(const GroupArrival& group,
                                      const QueryOptions& options) const;
  [[nodiscard]] QueryResult LinkQuery(const GroupArrival& group) const {
    return LinkQuery(group, QueryOptions());
  }

  /// Writer mutations (serialized internally; results are scored against
  /// the writer's current epoch statistics, same semantics as the
  /// underlying IncrementalLinker). May trigger a policy refresh: inline
  /// when async_refresh is false, in the background otherwise.
  AddResult AddGroup(const std::string& label,
                     const std::vector<std::string>& record_texts);
  std::vector<AddResult> AddGroups(const std::vector<GroupArrival>& batch);
  void RemoveGroup(int32_t group);
  AddResult MergeGroups(int32_t into, int32_t from);

  /// Stop-the-world refresh: drains any in-flight background refresh,
  /// refreshes the writer inline, and publishes the new epoch before
  /// returning. After this call the published snapshot covers every
  /// mutation issued so far.
  void Refresh();

  /// Starts a background refresh at the current writer cut (async mode's
  /// policy trigger calls this). Returns false (and does nothing) when a
  /// refresh is already in flight. The new epoch is published — and the
  /// writer swapped — when the background build completes.
  bool RefreshAsync();

  /// Blocks until no background refresh is in flight (including chained
  /// policy refreshes started by the replay of backlogged mutations).
  void WaitForRefresh();

  [[nodiscard]] bool refresh_in_flight() const;

  /// Outcome of the most recent *async* refresh attempt: Ok after a
  /// successful build (or when none ran yet), Unavailable after an
  /// injected build failure (service.refresh_failure /
  /// service.poison_batch). A failed build publishes nothing and discards
  /// its clone — the previous epoch keeps serving and the writer state is
  /// untouched, so retrying the refresh is always legal (which is why the
  /// failure is classified retryable; the watchdog in
  /// src/service/resilience re-arms it).
  [[nodiscard]] Status last_refresh_status() const;

  /// Async refresh failures since the last successful refresh (any mode).
  /// The quarantine ladder in SupervisedService keys off this.
  [[nodiscard]] int64_t consecutive_refresh_failures() const;

  /// The poison group label the last failed refresh died on (empty when
  /// the failure was generic or there was no failure). This is the
  /// culprit attribution a real build supervisor would extract from the
  /// crash context of the batch it was absorbing.
  [[nodiscard]] std::string last_refresh_culprit() const;

  /// Milliseconds since the current epoch was published (epoch age — the
  /// staleness half of the health surface).
  [[nodiscard]] double published_age_ms() const;

  /// Milliseconds the in-flight background refresh has been running, or 0
  /// when none is — what the watchdog's stall detector samples.
  [[nodiscard]] double refresh_inflight_ms() const;

  /// Writer mutations absorbed since the last completed refresh (refresh
  /// lag in groups, the other staleness half of the health surface).
  [[nodiscard]] int32_t groups_since_refresh() const;

  /// Persists the currently published epoch to config().persist_path
  /// under the write-new-then-rename protocol (blocks for the write;
  /// never holds the writer lock). InvalidArgument when no persist_path
  /// is configured.
  [[nodiscard]] Status PersistNow();

  /// Outcome of the most recent persist — manual or persist_on_refresh —
  /// or Ok when none has run. How background persist failures surface.
  [[nodiscard]] Status last_persist_status() const;

  /// Epoch of the currently published snapshot.
  [[nodiscard]] int64_t published_epoch() const;

  /// Writer-side state, read under the writer lock (test/diagnostic use;
  /// the serving read path never needs these).
  [[nodiscard]] int64_t writer_epoch() const;
  [[nodiscard]] int32_t num_groups() const;
  [[nodiscard]] std::vector<std::pair<int32_t, int32_t>> linked_pairs() const;

  const ServiceConfig& config() const;

 private:
  struct Impl;
  explicit LinkageService(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace grouplink

#endif  // GROUPLINK_CORE_SERVICE_H_
