#include "core/linkage_engine.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/simd_dispatch.h"
#include "common/timer.h"
#include "common/trace.h"
#include "common/union_find.h"
#include "text/tokenizer.h"

namespace grouplink {

const char* CandidateMethodName(CandidateMethod method) {
  switch (method) {
    case CandidateMethod::kAllPairs:
      return "all-pairs";
    case CandidateMethod::kRecordJoin:
      return "record-join";
    case CandidateMethod::kBlocking:
      return "blocking";
    case CandidateMethod::kLabelBlocking:
      return "label-blocking";
    case CandidateMethod::kSortedNeighborhood:
      return "sorted-neighborhood";
    case CandidateMethod::kMinHash:
      return "minhash";
  }
  return "unknown";
}

const char* RecordRepresentationName(RecordRepresentation representation) {
  switch (representation) {
    case RecordRepresentation::kWordTokens:
      return "word-tokens";
    case RecordRepresentation::kCharacterQGrams:
      return "char-3grams";
  }
  return "unknown";
}

Status LinkageConfig::Validate() const {
  // Explicit finiteness checks first: a NaN compares false against every
  // range bound, so without these it would sail through the checks below.
  if (!std::isfinite(theta)) {
    return Status::InvalidArgument("theta must be a finite number");
  }
  if (!std::isfinite(group_threshold)) {
    return Status::InvalidArgument("group_threshold must be a finite number");
  }
  if (!std::isfinite(binary_cutoff)) {
    return Status::InvalidArgument("binary_cutoff must be a finite number");
  }
  if (!std::isfinite(candidate_jaccard)) {
    return Status::InvalidArgument("candidate_jaccard must be a finite number");
  }
  if (!std::isfinite(join_jaccard)) {
    return Status::InvalidArgument("join_jaccard must be a finite number");
  }
  if (theta <= 0.0 || theta > 1.0) {
    return Status::InvalidArgument("theta must be in (0, 1]");
  }
  if (group_threshold <= 0.0 || group_threshold > 1.0) {
    return Status::InvalidArgument("group_threshold must be in (0, 1]");
  }
  if (binary_cutoff <= 0.0 || binary_cutoff > 1.0) {
    return Status::InvalidArgument("binary_cutoff must be in (0, 1]");
  }
  if (candidate_jaccard < 0.0 || candidate_jaccard > 1.0) {
    return Status::InvalidArgument("candidate_jaccard must be in [0, 1]");
  }
  if (join_jaccard < 0.0 || join_jaccard > 1.0) {
    return Status::InvalidArgument("join_jaccard must be in [0, 1]");
  }
  if (!std::isfinite(deadline_ms) || deadline_ms < 0.0) {
    return Status::InvalidArgument("deadline_ms must be finite and >= 0");
  }
  if (max_candidate_pairs < 0) {
    return Status::InvalidArgument("max_candidate_pairs must be >= 0");
  }
  if (max_matcher_cost < 0) {
    return Status::InvalidArgument("max_matcher_cost must be >= 0");
  }
  if (neighborhood_window <= 0) {
    return Status::InvalidArgument("neighborhood_window must be positive");
  }
  if (minhash_bands <= 0) {
    return Status::InvalidArgument("minhash_bands must be positive");
  }
  if (minhash_rows <= 0) {
    return Status::InvalidArgument("minhash_rows must be positive");
  }
  if (num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (use_edge_join && join_jaccard > theta) {
    // Token Jaccard rarely exceeds the TF-IDF cosine used for edges, so a
    // join threshold above θ guarantees silently dropped true edges.
    return Status::InvalidArgument(
        "join_jaccard must not exceed theta when use_edge_join is set");
  }
  return Status::Ok();
}

LinkageEngine::LinkageEngine(const Dataset* dataset, const LinkageConfig& config)
    : dataset_(dataset), config_(config) {
  GL_CHECK(dataset != nullptr);
}

Result<LinkageEngine> LinkageEngine::Create(const Dataset* dataset,
                                            const LinkageConfig& config) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("LinkageEngine::Create: dataset is null");
  }
  LinkageEngine engine(dataset, config);
  GL_RETURN_IF_ERROR(engine.Prepare());
  return engine;
}

Status LinkageEngine::Prepare() {
  if (prepared_) return Status::Ok();  // Create() already ran the pipeline.
  GL_TRACE_SPAN("linkage.prepare");
  WallTimer prepare_timer;
  GL_RETURN_IF_ERROR(dataset_->Validate());
  GL_RETURN_IF_ERROR(config_.Validate());

  const auto tokenize = [this](const std::string& text) {
    if (config_.representation == RecordRepresentation::kCharacterQGrams) {
      return CharacterQGrams(text, 3, /*lowercase=*/true, '#');
    }
    return Tokenize(text);
  };

  // Tokenization is independent per record; keep the raw token lists so
  // the vectorize pass below doesn't re-tokenize.
  const size_t n = dataset_->records.size();
  std::vector<std::vector<std::string>> raw_tokens(n);
  std::vector<std::vector<std::string>> token_sets(n);
  ParallelFor(pool(), n, [&](size_t r) {
    raw_tokens[r] = tokenize(dataset_->records[r].text);
    token_sets[r] = ToTokenSet(raw_tokens[r]);
  });
  // Vocabulary ids depend on first-seen order, so the build stays a
  // serial pass in record order — the id space (and hence every
  // downstream join and vector) is identical to the single-thread run.
  // BuildVocabulary is shared with the streaming linker's epoch refresh,
  // which must reproduce this id space exactly.
  vocabulary_ = BuildVocabulary(token_sets);
  record_token_ids_.resize(n);
  record_vectors_.resize(n);
  const TfIdfVectorizer vectorizer(&vocabulary_);
  ParallelFor(pool(), n, [&](size_t r) {
    std::vector<int32_t>& ids = record_token_ids_[r];
    ids.reserve(token_sets[r].size());
    for (const std::string& token : token_sets[r]) {
      ids.push_back(vocabulary_.GetId(token));
    }
    std::sort(ids.begin(), ids.end());
    // Raw (non-set) tokens would weight repeats; the record text token
    // multiset is what TF-IDF should see.
    record_vectors_[r] = vectorizer.Vectorize(raw_tokens[r]);
  });
  // Flat SoA mirror of the vectors for the batched scoring kernels.
  vector_store_ = VectorStore::Build(record_vectors_, vocabulary_.size());
  record_group_ = dataset_->RecordToGroup();
  prepared_ = true;
  prepare_seconds_ = prepare_timer.ElapsedSeconds();
  return Status::Ok();
}

ThreadPool* LinkageEngine::pool() {
  if (pool_ == nullptr && config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(config_.num_threads));
  }
  return pool_.get();
}

double LinkageEngine::DefaultRecordSimilarity(int32_t a, int32_t b) const {
  GL_CHECK(prepared_);
  // Token-less records carry no evidence of co-reference and score 0 (the
  // mathematical "empty == empty -> 1" convention would link every group
  // containing a blank record); for everything else Vectorize already
  // L2-normalized, so the cosine is the plain dot product — the same value
  // VectorStore::Pair/Scores computes in the batched kernels, bit for bit.
  return PrenormalizedCosineSimilarity(record_vectors_[static_cast<size_t>(a)],
                                       record_vectors_[static_cast<size_t>(b)]);
}

std::vector<std::pair<int32_t, int32_t>> LinkageEngine::GenerateCandidates(
    GroupCandidateStats* stats) {
  switch (config_.candidates) {
    case CandidateMethod::kAllPairs: {
      auto pairs = AllGroupPairs(dataset_->num_groups());
      stats->group_pairs = pairs.size();
      return pairs;
    }
    case CandidateMethod::kRecordJoin:
      return GroupCandidatesFromRecordJoin(
          record_token_ids_, record_group_, static_cast<int32_t>(vocabulary_.size()),
          dataset_->num_groups(), config_.candidate_jaccard, stats);
    case CandidateMethod::kMinHash:
      return GroupCandidatesFromMinHash(
          record_token_ids_, record_group_,
          static_cast<size_t>(std::max(config_.minhash_bands, 1)),
          static_cast<size_t>(std::max(config_.minhash_rows, 1)), stats);
    case CandidateMethod::kSortedNeighborhood: {
      std::vector<std::string> labels;
      labels.reserve(dataset_->groups.size());
      for (const Group& group : dataset_->groups) labels.push_back(group.label);
      auto pairs = SortedNeighborhoodPairs(
          labels, static_cast<size_t>(std::max(config_.neighborhood_window, 0)));
      stats->group_pairs = pairs.size();
      return pairs;
    }
    case CandidateMethod::kLabelBlocking: {
      std::vector<std::string> labels;
      labels.reserve(dataset_->groups.size());
      for (const Group& group : dataset_->groups) labels.push_back(group.label);
      return GroupCandidatesFromLabelBlocking(config_.blocking, labels, stats);
    }
    case CandidateMethod::kBlocking: {
      std::vector<std::string> texts;
      texts.reserve(dataset_->records.size());
      for (const Record& record : dataset_->records) texts.push_back(record.text);
      return GroupCandidatesFromBlocking(config_.blocking, texts, record_group_,
                                         dataset_->num_groups(), stats);
    }
  }
  return {};
}

std::vector<ScoredPair> LinkageEngine::ScoreCandidates(GroupMeasureKind measure) {
  GL_CHECK(prepared_) << "call Prepare() before ScoreCandidates()";
  GroupCandidateStats candidate_stats;
  const auto candidates = GenerateCandidates(&candidate_stats);
  const double edge_threshold = measure == GroupMeasureKind::kBinaryJaccard
                                    ? config_.binary_cutoff
                                    : config_.theta;
  std::vector<ScoredPair> scored;
  scored.reserve(candidates.size());
  VectorStore::Scratch scratch;
  for (const auto& [g1, g2] : candidates) {
    const BipartiteGraph graph = BuildSimilarityGraphBatched(
        *dataset_, g1, g2, vector_store_, scratch, edge_threshold);
    if (graph.edges().empty()) continue;
    scored.push_back({g1, g2,
                      EvaluateGroupMeasure(measure, graph, dataset_->GroupSize(g1),
                                           dataset_->GroupSize(g2))});
  }
  return scored;
}

LinkageResult LinkageEngine::Run() {
  // The default similarity scores through the batched kernel path; the
  // std::function is only kept for code paths that still score per pair.
  return RunInternal(
      [this](int32_t a, int32_t b) { return DefaultRecordSimilarity(a, b); },
      &vector_store_);
}

LinkageResult LinkageEngine::Run(const RecordSimFn& sim) {
  return RunInternal(sim, /*store=*/nullptr);
}

void LinkageEngine::FillRunFacts(RunReport& report) const {
  const bool edge_join =
      config_.use_edge_join && config_.measure == GroupMeasureKind::kBm;
  report.strategy = edge_join ? "edge-join" : "per-pair";
  // The edge join replaces candidate generation wholesale, so the
  // configured candidate method never runs under that strategy.
  report.candidate_method =
      edge_join ? "edge-join" : CandidateMethodName(config_.candidates);
  report.measure = GroupMeasureKindName(config_.measure);
  report.kernel = SimdLevelName(ActiveSimdLevel());
  report.threads = config_.num_threads;
  report.records = static_cast<int64_t>(dataset_->records.size());
  report.groups = static_cast<int64_t>(dataset_->num_groups());
  StageStats& prepare = report.AddStage("prepare", prepare_seconds_);
  prepare.AddCounter("records", static_cast<int64_t>(dataset_->records.size()));
  prepare.AddCounter("groups", static_cast<int64_t>(dataset_->num_groups()));
  prepare.AddCounter("vocabulary", static_cast<int64_t>(vocabulary_.size()));
}

namespace {

// Stamps the context's final resilience state into the report (and the
// open "linkage.run" trace span + registry) after the stages finished.
void FinishResilienceFacts(const ExecutionContext& ctx, RunReport* report) {
  report->degraded = ctx.degraded();
  report->stop_reason = ctx.stop_reason_name();
  if (report->degraded) {
    TagCurrentSpan("degraded", "true");
    if (!report->stop_reason.empty()) {
      TagCurrentSpan("stop_reason", report->stop_reason);
    }
    static Counter& degraded_runs =
        MetricsRegistry::Default().CounterRef("engine.degraded_runs");
    degraded_runs.Increment();
  }
}

}  // namespace

LinkageResult LinkageEngine::RunInternal(const RecordSimFn& sim,
                                         const VectorStore* store) {
  GL_CHECK(prepared_) << "call Prepare() before Run()";
  GL_TRACE_SPAN("linkage.run");
  static Counter& runs = MetricsRegistry::Default().CounterRef("engine.runs");
  runs.Increment();

  // Every run carries a context; with the default config (no deadline,
  // no budgets, token never cancelled, no faults armed) every check in
  // the hot paths reduces to one relaxed atomic load.
  ExecutionContext ctx;
  if (config_.deadline_ms > 0.0) ctx.SetDeadline(config_.deadline_ms);
  ctx.SetCancellation(config_.cancellation);
  ctx.SetMaxCandidatePairs(config_.max_candidate_pairs);
  ctx.SetMaxMatcherCost(config_.max_matcher_cost);

  LinkageResult result;
  RunReport& report = result.mutable_report();
  FillRunFacts(report);

  if (config_.use_edge_join && config_.measure == GroupMeasureKind::kBm) {
    // Global edge join replaces both candidate generation and per-pair
    // graph construction.
    EdgeJoinConfig ej_config;
    ej_config.theta = config_.theta;
    ej_config.group_threshold = config_.group_threshold;
    ej_config.join_jaccard = config_.join_jaccard;
    ej_config.use_upper_bound_filter = config_.use_upper_bound_filter;
    ej_config.use_lower_bound_accept = config_.use_lower_bound_accept;
    ej_config.num_threads = config_.num_threads;
    EdgeJoinStats ej_stats;
    result.linked_pairs = EdgeJoinLink(
        *dataset_, record_token_ids_, static_cast<int32_t>(vocabulary_.size()),
        record_group_, sim, ej_config, &ej_stats, pool(), &ctx, store);
    AppendEdgeJoinStages(ej_stats, &report);
    FinishClustering(result);
    FinishResilienceFacts(ctx, &report);
    return result;
  }

  WallTimer timer;
  GroupCandidateStats cand_stats;
  std::vector<std::pair<int32_t, int32_t>> candidates;
  {
    GL_TRACE_SPAN("linkage.candidates");
    candidates = GenerateCandidates(&cand_stats);
  }
  report.stages.push_back(
      CandidatesStageFromStats(cand_stats, timer.ElapsedSeconds()));

  timer.Reset();
  FilterRefineConfig fr_config;
  fr_config.theta = config_.theta;
  fr_config.group_threshold = config_.group_threshold;
  fr_config.use_upper_bound_filter =
      config_.use_filter_refine && config_.use_upper_bound_filter;
  fr_config.use_lower_bound_accept =
      config_.use_filter_refine && config_.use_lower_bound_accept;

  FilterRefineStats fr_stats;
  {
    GL_TRACE_SPAN("linkage.score");
    if (config_.measure == GroupMeasureKind::kBm) {
      result.linked_pairs = FilterRefineLink(*dataset_, sim, candidates, fr_config,
                                             &fr_stats, pool(), &ctx, store);
    } else {
      // Baseline measures: direct evaluation per candidate. The binary
      // Jaccard baseline builds its graph at the (stricter) equality cutoff.
      const double edge_threshold =
          config_.measure == GroupMeasureKind::kBinaryJaccard
              ? config_.binary_cutoff
              : config_.theta;
      fr_stats.candidates = candidates.size();
      // Baseline measures have no UB ranking, so the candidate cap sheds
      // the list tail — still deterministic (depends only on the list).
      const size_t cap = ctx.EffectiveCandidateCap(candidates.size());
      fr_stats.shed_candidates = candidates.size() - cap;
      VectorStore::Scratch scratch;
      for (size_t i = 0; i < cap; ++i) {
        if (ctx.StopRequested()) {
          fr_stats.skipped = cap - i;
          break;
        }
        const auto [g1, g2] = candidates[i];
        const BipartiteGraph graph =
            store != nullptr
                ? BuildSimilarityGraphBatched(*dataset_, g1, g2, *store, scratch,
                                              edge_threshold)
                : BuildSimilarityGraph(*dataset_, g1, g2, sim, edge_threshold);
        if (graph.edges().empty()) {
          ++fr_stats.empty_graphs;
          continue;
        }
        const double score = EvaluateGroupMeasure(config_.measure, graph,
                                                  dataset_->GroupSize(g1),
                                                  dataset_->GroupSize(g2));
        if (score >= config_.group_threshold) {
          result.linked_pairs.emplace_back(g1, g2);
          ++fr_stats.linked;
        }
      }
      if (fr_stats.shed_candidates > 0 || fr_stats.skipped > 0) {
        ctx.NoteDegraded();
      }
    }
  }
  report.stages.push_back(ScoreStageFromStats(fr_stats, timer.ElapsedSeconds()));
  FinishClustering(result);
  FinishResilienceFacts(ctx, &report);
  return result;
}

void LinkageEngine::FinishClustering(LinkageResult& result) const {
  GL_TRACE_SPAN("linkage.cluster");
  WallTimer timer;
  UnionFind clusters(static_cast<size_t>(dataset_->num_groups()));
  for (const auto& [g1, g2] : result.linked_pairs) {
    clusters.Union(static_cast<size_t>(g1), static_cast<size_t>(g2));
  }
  result.group_cluster = clusters.ComponentLabels();
  result.num_clusters = clusters.num_sets();

  RunReport& report = result.mutable_report();
  report.links = static_cast<int64_t>(result.linked_pairs.size());
  report.clusters = static_cast<int64_t>(result.num_clusters);
  StageStats& cluster = report.AddStage("cluster", timer.ElapsedSeconds());
  cluster.AddCounter("links", report.links);
  cluster.AddCounter("clusters", report.clusters);
}

Result<LinkageResult> RunGroupLinkage(const Dataset& dataset,
                                      const LinkageConfig& config) {
  GL_ASSIGN_OR_RETURN(LinkageEngine engine,
                      LinkageEngine::Create(&dataset, config));
  return engine.Run();
}

}  // namespace grouplink
