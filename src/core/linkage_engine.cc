#include "core/linkage_engine.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/timer.h"
#include "common/union_find.h"
#include "text/tokenizer.h"

namespace grouplink {

const char* CandidateMethodName(CandidateMethod method) {
  switch (method) {
    case CandidateMethod::kAllPairs:
      return "all-pairs";
    case CandidateMethod::kRecordJoin:
      return "record-join";
    case CandidateMethod::kBlocking:
      return "blocking";
    case CandidateMethod::kLabelBlocking:
      return "label-blocking";
    case CandidateMethod::kSortedNeighborhood:
      return "sorted-neighborhood";
    case CandidateMethod::kMinHash:
      return "minhash";
  }
  return "unknown";
}

const char* RecordRepresentationName(RecordRepresentation representation) {
  switch (representation) {
    case RecordRepresentation::kWordTokens:
      return "word-tokens";
    case RecordRepresentation::kCharacterQGrams:
      return "char-3grams";
  }
  return "unknown";
}

LinkageEngine::LinkageEngine(const Dataset* dataset, const LinkageConfig& config)
    : dataset_(dataset), config_(config) {
  GL_CHECK(dataset != nullptr);
}

Status LinkageEngine::Prepare() {
  GL_RETURN_IF_ERROR(dataset_->Validate());
  if (config_.theta <= 0.0 || config_.theta > 1.0) {
    return Status::InvalidArgument("theta must be in (0, 1]");
  }
  if (config_.group_threshold <= 0.0 || config_.group_threshold > 1.0) {
    return Status::InvalidArgument("group_threshold must be in (0, 1]");
  }

  const auto tokenize = [this](const std::string& text) {
    if (config_.representation == RecordRepresentation::kCharacterQGrams) {
      return CharacterQGrams(text, 3, /*lowercase=*/true, '#');
    }
    return Tokenize(text);
  };

  // Tokenization is independent per record; keep the raw token lists so
  // the vectorize pass below doesn't re-tokenize.
  const size_t n = dataset_->records.size();
  std::vector<std::vector<std::string>> raw_tokens(n);
  std::vector<std::vector<std::string>> token_sets(n);
  ParallelFor(pool(), n, [&](size_t r) {
    raw_tokens[r] = tokenize(dataset_->records[r].text);
    token_sets[r] = ToTokenSet(raw_tokens[r]);
  });
  // Vocabulary ids depend on first-seen order, so the build stays a
  // serial pass in record order — the id space (and hence every
  // downstream join and vector) is identical to the single-thread run.
  for (size_t r = 0; r < n; ++r) {
    vocabulary_.AddDocument(token_sets[r]);
  }
  record_token_ids_.resize(n);
  record_vectors_.resize(n);
  const TfIdfVectorizer vectorizer(&vocabulary_);
  ParallelFor(pool(), n, [&](size_t r) {
    std::vector<int32_t>& ids = record_token_ids_[r];
    ids.reserve(token_sets[r].size());
    for (const std::string& token : token_sets[r]) {
      ids.push_back(vocabulary_.GetId(token));
    }
    std::sort(ids.begin(), ids.end());
    // Raw (non-set) tokens would weight repeats; the record text token
    // multiset is what TF-IDF should see.
    record_vectors_[r] = vectorizer.Vectorize(raw_tokens[r]);
  });
  record_group_ = dataset_->RecordToGroup();
  prepared_ = true;
  return Status::Ok();
}

ThreadPool* LinkageEngine::pool() {
  if (pool_ == nullptr && config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(config_.num_threads));
  }
  return pool_.get();
}

double LinkageEngine::DefaultRecordSimilarity(int32_t a, int32_t b) const {
  GL_CHECK(prepared_);
  const SparseVector& va = record_vectors_[static_cast<size_t>(a)];
  const SparseVector& vb = record_vectors_[static_cast<size_t>(b)];
  // Two token-less records carry no evidence of co-reference; the
  // mathematical "empty == empty -> 1" convention would link every group
  // containing a blank record, so the engine scores them 0 instead.
  if (va.empty() || vb.empty()) return 0.0;
  return CosineSimilarity(va, vb);
}

std::vector<std::pair<int32_t, int32_t>> LinkageEngine::GenerateCandidates(
    LinkageResult& result) {
  switch (config_.candidates) {
    case CandidateMethod::kAllPairs: {
      auto pairs = AllGroupPairs(dataset_->num_groups());
      result.candidate_stats.group_pairs = pairs.size();
      return pairs;
    }
    case CandidateMethod::kRecordJoin:
      return GroupCandidatesFromRecordJoin(
          record_token_ids_, record_group_, static_cast<int32_t>(vocabulary_.size()),
          dataset_->num_groups(), config_.candidate_jaccard, &result.candidate_stats);
    case CandidateMethod::kMinHash:
      return GroupCandidatesFromMinHash(
          record_token_ids_, record_group_,
          static_cast<size_t>(std::max(config_.minhash_bands, 1)),
          static_cast<size_t>(std::max(config_.minhash_rows, 1)),
          &result.candidate_stats);
    case CandidateMethod::kSortedNeighborhood: {
      std::vector<std::string> labels;
      labels.reserve(dataset_->groups.size());
      for (const Group& group : dataset_->groups) labels.push_back(group.label);
      auto pairs = SortedNeighborhoodPairs(
          labels, static_cast<size_t>(std::max(config_.neighborhood_window, 0)));
      result.candidate_stats.group_pairs = pairs.size();
      return pairs;
    }
    case CandidateMethod::kLabelBlocking: {
      std::vector<std::string> labels;
      labels.reserve(dataset_->groups.size());
      for (const Group& group : dataset_->groups) labels.push_back(group.label);
      return GroupCandidatesFromLabelBlocking(config_.blocking, labels,
                                              &result.candidate_stats);
    }
    case CandidateMethod::kBlocking: {
      std::vector<std::string> texts;
      texts.reserve(dataset_->records.size());
      for (const Record& record : dataset_->records) texts.push_back(record.text);
      return GroupCandidatesFromBlocking(config_.blocking, texts, record_group_,
                                         dataset_->num_groups(),
                                         &result.candidate_stats);
    }
  }
  return {};
}

std::vector<ScoredPair> LinkageEngine::ScoreCandidates(GroupMeasureKind measure) {
  GL_CHECK(prepared_) << "call Prepare() before ScoreCandidates()";
  LinkageResult scratch;
  const auto candidates = GenerateCandidates(scratch);
  const double edge_threshold = measure == GroupMeasureKind::kBinaryJaccard
                                    ? config_.binary_cutoff
                                    : config_.theta;
  std::vector<ScoredPair> scored;
  scored.reserve(candidates.size());
  for (const auto& [g1, g2] : candidates) {
    const BipartiteGraph graph = BuildSimilarityGraph(
        *dataset_, g1, g2,
        [this](int32_t a, int32_t b) { return DefaultRecordSimilarity(a, b); },
        edge_threshold);
    if (graph.edges().empty()) continue;
    scored.push_back({g1, g2,
                      EvaluateGroupMeasure(measure, graph, dataset_->GroupSize(g1),
                                           dataset_->GroupSize(g2))});
  }
  return scored;
}

LinkageResult LinkageEngine::Run() {
  return Run([this](int32_t a, int32_t b) { return DefaultRecordSimilarity(a, b); });
}

LinkageResult LinkageEngine::Run(const RecordSimFn& sim) {
  GL_CHECK(prepared_) << "call Prepare() before Run()";
  LinkageResult result;

  if (config_.use_edge_join && config_.measure == GroupMeasureKind::kBm) {
    // Global edge join replaces both candidate generation and per-pair
    // graph construction.
    WallTimer join_timer;
    EdgeJoinConfig ej_config;
    ej_config.theta = config_.theta;
    ej_config.group_threshold = config_.group_threshold;
    ej_config.join_jaccard = config_.join_jaccard;
    ej_config.use_upper_bound_filter = config_.use_upper_bound_filter;
    ej_config.use_lower_bound_accept = config_.use_lower_bound_accept;
    ej_config.num_threads = config_.num_threads;
    result.linked_pairs = EdgeJoinLink(
        *dataset_, record_token_ids_, static_cast<int32_t>(vocabulary_.size()),
        record_group_, sim, ej_config, &result.edge_join_stats, pool());
    result.seconds_scoring = join_timer.ElapsedSeconds();
    FinishClustering(result);
    return result;
  }

  WallTimer timer;
  const auto candidates = GenerateCandidates(result);
  result.seconds_candidates = timer.ElapsedSeconds();

  timer.Reset();
  FilterRefineConfig fr_config;
  fr_config.theta = config_.theta;
  fr_config.group_threshold = config_.group_threshold;
  fr_config.use_upper_bound_filter =
      config_.use_filter_refine && config_.use_upper_bound_filter;
  fr_config.use_lower_bound_accept =
      config_.use_filter_refine && config_.use_lower_bound_accept;

  if (config_.measure == GroupMeasureKind::kBm) {
    result.linked_pairs = FilterRefineLink(*dataset_, sim, candidates, fr_config,
                                           &result.score_stats, pool());
  } else {
    // Baseline measures: direct evaluation per candidate. The binary
    // Jaccard baseline builds its graph at the (stricter) equality cutoff.
    const double edge_threshold = config_.measure == GroupMeasureKind::kBinaryJaccard
                                      ? config_.binary_cutoff
                                      : config_.theta;
    result.score_stats.candidates = candidates.size();
    for (const auto& [g1, g2] : candidates) {
      const BipartiteGraph graph =
          BuildSimilarityGraph(*dataset_, g1, g2, sim, edge_threshold);
      if (graph.edges().empty()) {
        ++result.score_stats.empty_graphs;
        continue;
      }
      const double score = EvaluateGroupMeasure(config_.measure, graph,
                                                dataset_->GroupSize(g1),
                                                dataset_->GroupSize(g2));
      if (score >= config_.group_threshold) {
        result.linked_pairs.emplace_back(g1, g2);
        ++result.score_stats.linked;
      }
    }
  }
  result.seconds_scoring = timer.ElapsedSeconds();
  FinishClustering(result);
  return result;
}

void LinkageEngine::FinishClustering(LinkageResult& result) const {
  UnionFind clusters(static_cast<size_t>(dataset_->num_groups()));
  for (const auto& [g1, g2] : result.linked_pairs) {
    clusters.Union(static_cast<size_t>(g1), static_cast<size_t>(g2));
  }
  result.group_cluster = clusters.ComponentLabels();
  result.num_clusters = clusters.num_sets();
}

Result<LinkageResult> RunGroupLinkage(const Dataset& dataset,
                                      const LinkageConfig& config) {
  LinkageEngine engine(&dataset, config);
  WallTimer timer;
  GL_RETURN_IF_ERROR(engine.Prepare());
  LinkageResult result = engine.Run();
  result.seconds_prepare = timer.ElapsedSeconds() - result.seconds_candidates -
                           result.seconds_scoring;
  return result;
}

}  // namespace grouplink
