#include "core/filter_refine.h"

#include "common/metrics.h"
#include "common/timer.h"

namespace grouplink {
namespace {

// Outcome category of one candidate pair.
enum class Decision : uint8_t {
  kEmptyGraph,
  kPrunedByUpperBound,
  kAcceptedByLowerBound,
  kRefinedLink,
  kRefinedNoLink,
};

// Scores one candidate pair; phase timers are optional (serial path only).
Decision DecidePair(const Dataset& dataset, const RecordSimFn& sim, int32_t g1,
                    int32_t g2, const FilterRefineConfig& config,
                    FilterRefineStats* timing) {
  const int32_t size_left = dataset.GroupSize(g1);
  const int32_t size_right = dataset.GroupSize(g2);

  WallTimer timer;
  const BipartiteGraph graph = BuildSimilarityGraph(dataset, g1, g2, sim, config.theta);
  if (timing != nullptr) timing->seconds_graphs += timer.ElapsedSeconds();

  if (graph.edges().empty()) return Decision::kEmptyGraph;

  timer.Reset();
  if (config.use_upper_bound_filter &&
      UpperBoundMeasure(graph, size_left, size_right) < config.group_threshold) {
    if (timing != nullptr) timing->seconds_bounds += timer.ElapsedSeconds();
    return Decision::kPrunedByUpperBound;
  }
  if (config.use_lower_bound_accept &&
      GreedyLowerBound(graph, size_left, size_right) >= config.group_threshold) {
    if (timing != nullptr) timing->seconds_bounds += timer.ElapsedSeconds();
    return Decision::kAcceptedByLowerBound;
  }
  if (timing != nullptr) timing->seconds_bounds += timer.ElapsedSeconds();

  timer.Reset();
  const bool link =
      BmMeasure(graph, size_left, size_right).value >= config.group_threshold;
  if (timing != nullptr) timing->seconds_refine += timer.ElapsedSeconds();
  return link ? Decision::kRefinedLink : Decision::kRefinedNoLink;
}

}  // namespace

std::vector<std::pair<int32_t, int32_t>> FilterRefineLink(
    const Dataset& dataset, const RecordSimFn& sim,
    const std::vector<std::pair<int32_t, int32_t>>& candidates,
    const FilterRefineConfig& config, FilterRefineStats* stats, ThreadPool* pool) {
  FilterRefineStats local_stats;
  FilterRefineStats& s = stats != nullptr ? *stats : local_stats;
  s = FilterRefineStats();
  s.candidates = candidates.size();

  std::vector<Decision> decisions(candidates.size());
  const bool parallel = pool != nullptr && pool->num_threads() > 1;
  ParallelFor(parallel ? pool : nullptr, candidates.size(), [&](size_t i) {
    decisions[i] = DecidePair(dataset, sim, candidates[i].first, candidates[i].second,
                              config, parallel ? nullptr : &s);
  });

  std::vector<std::pair<int32_t, int32_t>> linked;
  for (size_t i = 0; i < candidates.size(); ++i) {
    bool link = false;
    switch (decisions[i]) {
      case Decision::kEmptyGraph:
        ++s.empty_graphs;
        break;
      case Decision::kPrunedByUpperBound:
        ++s.pruned_by_upper_bound;
        break;
      case Decision::kAcceptedByLowerBound:
        ++s.accepted_by_lower_bound;
        link = true;
        break;
      case Decision::kRefinedLink:
        ++s.refined;
        link = true;
        break;
      case Decision::kRefinedNoLink:
        ++s.refined;
        break;
    }
    if (link) {
      linked.push_back(candidates[i]);
      ++s.linked;
    }
  }

  // Registry mirror of the per-run stats (aggregated once per call, so the
  // cost is independent of candidate count and thread count).
  auto& registry = MetricsRegistry::Default();
  static Counter& m_candidates = registry.CounterRef("filter_refine.candidates");
  static Counter& m_empty = registry.CounterRef("filter_refine.empty_graphs");
  static Counter& m_ub = registry.CounterRef("filter_refine.ub_pruned");
  static Counter& m_lb = registry.CounterRef("filter_refine.lb_accepted");
  static Counter& m_refined = registry.CounterRef("filter_refine.refined");
  static Counter& m_linked = registry.CounterRef("filter_refine.linked");
  m_candidates.Increment(s.candidates);
  m_empty.Increment(s.empty_graphs);
  m_ub.Increment(s.pruned_by_upper_bound);
  m_lb.Increment(s.accepted_by_lower_bound);
  m_refined.Increment(s.refined);
  m_linked.Increment(s.linked);
  return linked;
}

std::vector<std::pair<int32_t, int32_t>> BruteForceBmLink(
    const Dataset& dataset, const RecordSimFn& sim,
    const std::vector<std::pair<int32_t, int32_t>>& candidates,
    const FilterRefineConfig& config, FilterRefineStats* stats) {
  FilterRefineConfig no_bounds = config;
  no_bounds.use_upper_bound_filter = false;
  no_bounds.use_lower_bound_accept = false;
  return FilterRefineLink(dataset, sim, candidates, no_bounds, stats);
}

}  // namespace grouplink
