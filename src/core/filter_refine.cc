#include "core/filter_refine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "text/simd_kernels.h"

namespace grouplink {
namespace {

// Sorted-unique union of the vector-store token ids of one group's
// records, as unsigned ids for the set-intersection kernel (ids are dense
// and non-negative). Zero intersection between two groups' unions means no
// record pair shares a weighted token, so every default-sim record
// similarity is 0 and the θ-thresholded graph is provably empty.
std::vector<uint32_t> GroupTokenUnion(const Group& group, const VectorStore& store) {
  std::vector<uint32_t> tokens;
  for (const int32_t record : group.record_ids) {
    for (const int32_t id : store.TokenIds(record)) {
      tokens.push_back(static_cast<uint32_t>(id));
    }
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

// Filter-and-refine is only sound if the upper bound really bounds the
// refined measure (a pair pruned by UB must never have linked). Epsilon
// absorbs the different summation orders of the two computations.
constexpr double kBoundSlack = 1e-9;

// Outcome category of one candidate pair. kSkipped is the preallocated
// default, so a pair a stop request prevented from running stays in a
// well-defined state.
enum class Decision : uint8_t {
  kSkipped = 0,
  kShedByCap,
  kEmptyGraph,
  kPrunedByUpperBound,
  kAcceptedByLowerBound,
  kRefinedLink,
  kRefinedNoLink,
  kDegradedLink,
  kDegradedNoLink,
};

// Batched-scoring context of one FilterRefineLink call: the engine's
// vector store plus the per-group token unions for the zero-overlap
// precheck. Null `store` means the generic `sim`-driven path.
struct BatchContext {
  const VectorStore* store = nullptr;
  std::vector<std::vector<uint32_t>> group_tokens;
};

// Builds the pair's similarity graph — batched through the store when one
// is available, per-pair `sim` calls otherwise. Bit-identical results.
BipartiteGraph BuildGraph(const Dataset& dataset, const RecordSimFn& sim,
                          int32_t g1, int32_t g2, double theta,
                          const BatchContext& batch) {
  if (batch.store != nullptr) {
    // One scratch per worker thread, reused across pairs (self-cleaning).
    thread_local VectorStore::Scratch scratch;
    return BuildSimilarityGraphBatched(dataset, g1, g2, *batch.store, scratch, theta);
  }
  return BuildSimilarityGraph(dataset, g1, g2, sim, theta);
}

// Scores one candidate pair; phase timers are optional (serial path only).
Decision DecidePair(const Dataset& dataset, const RecordSimFn& sim, int32_t g1,
                    int32_t g2, const FilterRefineConfig& config,
                    FilterRefineStats* timing, const ExecutionContext* ctx,
                    const BatchContext& batch) {
  const int32_t size_left = dataset.GroupSize(g1);
  const int32_t size_right = dataset.GroupSize(g2);

  WallTimer timer;
  // Zero-overlap precheck (store path): groups sharing no weighted token
  // cannot produce a single edge, so the pair classifies as an empty
  // graph without touching a record pair — the exact outcome the full
  // graph build would reach.
  if (batch.store != nullptr) {
    const std::vector<uint32_t>& ta = batch.group_tokens[static_cast<size_t>(g1)];
    const std::vector<uint32_t>& tb = batch.group_tokens[static_cast<size_t>(g2)];
    if (SortedIntersectCount(ta.data(), ta.size(), tb.data(), tb.size()) == 0) {
      if (timing != nullptr) timing->seconds_graphs += timer.ElapsedSeconds();
      return Decision::kEmptyGraph;
    }
  }
  const BipartiteGraph graph =
      BuildGraph(dataset, sim, g1, g2, config.theta, batch);
  if (timing != nullptr) timing->seconds_graphs += timer.ElapsedSeconds();

  if (graph.edges().empty()) return Decision::kEmptyGraph;

  timer.Reset();
  if (config.use_upper_bound_filter &&
      UpperBoundMeasure(graph, size_left, size_right) < config.group_threshold) {
    if (timing != nullptr) timing->seconds_bounds += timer.ElapsedSeconds();
    return Decision::kPrunedByUpperBound;
  }
  if (config.use_lower_bound_accept &&
      GreedyLowerBound(graph, size_left, size_right) >= config.group_threshold) {
    if (timing != nullptr) timing->seconds_bounds += timer.ElapsedSeconds();
    return Decision::kAcceptedByLowerBound;
  }
  if (timing != nullptr) timing->seconds_bounds += timer.ElapsedSeconds();

  timer.Reset();
  // Matcher budget: on oversized pairs decide from the sound greedy lower
  // bound instead of running Hungarian. LB <= BM, so a degraded accept is
  // always a true link and a degraded reject can only under-link —
  // subset-safe, and deterministic (the cost depends only on the pair).
  const int64_t matcher_cost =
      static_cast<int64_t>(size_left) * static_cast<int64_t>(size_right);
  if (ctx != nullptr && ctx->ExceedsMatcherBudget(matcher_cost)) {
    const bool link =
        GreedyLowerBound(graph, size_left, size_right) >= config.group_threshold;
    if (timing != nullptr) timing->seconds_refine += timer.ElapsedSeconds();
    return link ? Decision::kDegradedLink : Decision::kDegradedNoLink;
  }
  const double refined = BmMeasure(graph, size_left, size_right, ctx).value;
  // Even a stop-degraded partial matching weighs at most the optimum, so
  // the upper bound must dominate the refined value unconditionally.
  GL_DCHECK_LE(refined,
               UpperBoundMeasure(graph, size_left, size_right) + kBoundSlack)
      << "upper bound does not dominate refined BM for pair (" << g1 << ", "
      << g2 << ")";
  const bool link = refined >= config.group_threshold;
  if (timing != nullptr) timing->seconds_refine += timer.ElapsedSeconds();
  return link ? Decision::kRefinedLink : Decision::kRefinedNoLink;
}

// Deterministic candidate cap: keeps the `cap` pairs with the highest
// upper-bound score (ties to the lower index), sheds the rest. Returns
// the kept flags. The UB pass itself is not stop-checked so the kept set
// depends only on the candidates, never on timing or thread count.
std::vector<char> CapCandidatesByUpperBound(
    const Dataset& dataset, const RecordSimFn& sim,
    const std::vector<std::pair<int32_t, int32_t>>& candidates, double theta,
    size_t cap, ThreadPool* pool, const BatchContext& batch) {
  std::vector<double> ub(candidates.size(), 0.0);
  ParallelFor(pool, candidates.size(), [&](size_t i) {
    const auto [g1, g2] = candidates[i];
    const BipartiteGraph graph = BuildGraph(dataset, sim, g1, g2, theta, batch);
    if (!graph.edges().empty()) {
      ub[i] = UpperBoundMeasure(graph, dataset.GroupSize(g1), dataset.GroupSize(g2));
    }
  });
  std::vector<size_t> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::nth_element(order.begin(), order.begin() + static_cast<ptrdiff_t>(cap),
                   order.end(), [&](size_t a, size_t b) {
                     if (ub[a] != ub[b]) return ub[a] > ub[b];
                     return a < b;
                   });
  std::vector<char> keep(candidates.size(), 0);
  for (size_t k = 0; k < cap; ++k) keep[order[k]] = 1;
  return keep;
}

}  // namespace

std::vector<std::pair<int32_t, int32_t>> FilterRefineLink(
    const Dataset& dataset, const RecordSimFn& sim,
    const std::vector<std::pair<int32_t, int32_t>>& candidates,
    const FilterRefineConfig& config, FilterRefineStats* stats, ThreadPool* pool,
    ExecutionContext* ctx, const VectorStore* store) {
  FilterRefineStats local_stats;
  FilterRefineStats& s = stats != nullptr ? *stats : local_stats;
  s = FilterRefineStats();
  s.candidates = candidates.size();

  const bool parallel = pool != nullptr && pool->num_threads() > 1;
  std::vector<Decision> decisions(candidates.size(), Decision::kSkipped);

  // Batched-scoring setup: per-group token unions for the zero-overlap
  // precheck (independent per group, so the build parallelizes).
  BatchContext batch;
  batch.store = store;
  if (store != nullptr) {
    batch.group_tokens.resize(dataset.groups.size());
    ParallelFor(parallel ? pool : nullptr, dataset.groups.size(), [&](size_t g) {
      batch.group_tokens[g] = GroupTokenUnion(dataset.groups[g], *store);
    });
  }

  // Candidate budget (and the candidates.oversized fault): keep the best
  // pairs by UB score, shed the rest before any exact scoring.
  std::vector<char> keep;
  const size_t cap =
      ctx != nullptr ? ctx->EffectiveCandidateCap(candidates.size()) : candidates.size();
  if (cap < candidates.size()) {
    keep = CapCandidatesByUpperBound(dataset, sim, candidates, config.theta, cap,
                                     parallel ? pool : nullptr, batch);
    for (size_t i = 0; i < keep.size(); ++i) {
      if (!keep[i]) decisions[i] = Decision::kShedByCap;
    }
    ctx->NoteDegraded();
  }

  ParallelFor(
      parallel ? pool : nullptr, candidates.size(),
      [&](size_t i) {
        if (!keep.empty() && !keep[i]) return;  // Stays kShedByCap.
        decisions[i] = DecidePair(dataset, sim, candidates[i].first,
                                  candidates[i].second, config,
                                  parallel ? nullptr : &s, ctx, batch);
      },
      ctx);

  std::vector<std::pair<int32_t, int32_t>> linked;
  for (size_t i = 0; i < candidates.size(); ++i) {
    bool link = false;
    switch (decisions[i]) {
      case Decision::kSkipped:
        ++s.skipped;
        break;
      case Decision::kShedByCap:
        ++s.shed_candidates;
        break;
      case Decision::kEmptyGraph:
        ++s.empty_graphs;
        break;
      case Decision::kPrunedByUpperBound:
        ++s.pruned_by_upper_bound;
        break;
      case Decision::kAcceptedByLowerBound:
        ++s.accepted_by_lower_bound;
        link = true;
        break;
      case Decision::kRefinedLink:
        ++s.refined;
        link = true;
        break;
      case Decision::kRefinedNoLink:
        ++s.refined;
        break;
      case Decision::kDegradedLink:
        ++s.degraded_refines;
        link = true;
        break;
      case Decision::kDegradedNoLink:
        ++s.degraded_refines;
        break;
    }
    if (link) {
      linked.push_back(candidates[i]);
      ++s.linked;
    }
  }
  if (ctx != nullptr && (s.skipped > 0 || s.degraded_refines > 0)) {
    ctx->NoteDegraded();
  }

  // Registry mirror of the per-run stats (aggregated once per call, so the
  // cost is independent of candidate count and thread count).
  auto& registry = MetricsRegistry::Default();
  static Counter& m_candidates = registry.CounterRef("filter_refine.candidates");
  static Counter& m_empty = registry.CounterRef("filter_refine.empty_graphs");
  static Counter& m_ub = registry.CounterRef("filter_refine.ub_pruned");
  static Counter& m_lb = registry.CounterRef("filter_refine.lb_accepted");
  static Counter& m_refined = registry.CounterRef("filter_refine.refined");
  static Counter& m_linked = registry.CounterRef("filter_refine.linked");
  static Counter& m_shed = registry.CounterRef("filter_refine.shed_candidates");
  static Counter& m_degraded = registry.CounterRef("filter_refine.degraded_refines");
  static Counter& m_skipped = registry.CounterRef("filter_refine.skipped");
  m_candidates.Increment(s.candidates);
  m_empty.Increment(s.empty_graphs);
  m_ub.Increment(s.pruned_by_upper_bound);
  m_lb.Increment(s.accepted_by_lower_bound);
  m_refined.Increment(s.refined);
  m_linked.Increment(s.linked);
  m_shed.Increment(s.shed_candidates);
  m_degraded.Increment(s.degraded_refines);
  m_skipped.Increment(s.skipped);
  return linked;
}

bool DecideGraphLinked(const BipartiteGraph& graph, int32_t size_left,
                       int32_t size_right, const FilterRefineConfig& config,
                       const ExecutionContext* ctx) {
  // Keep this ladder in lockstep with DecidePair above: the streaming and
  // serving paths decide single pairs through here, and the equivalence
  // tests hold their links bit-equal to the batch pipeline's.
  if (graph.edges().empty()) return false;
  if (config.use_upper_bound_filter &&
      UpperBoundMeasure(graph, size_left, size_right) < config.group_threshold) {
    return false;
  }
  if (config.use_lower_bound_accept &&
      GreedyLowerBound(graph, size_left, size_right) >= config.group_threshold) {
    return true;
  }
  const int64_t matcher_cost =
      static_cast<int64_t>(size_left) * static_cast<int64_t>(size_right);
  if (ctx != nullptr && ctx->ExceedsMatcherBudget(matcher_cost)) {
    ctx->NoteDegraded();
    return GreedyLowerBound(graph, size_left, size_right) >= config.group_threshold;
  }
  return BmMeasure(graph, size_left, size_right, ctx).value >=
         config.group_threshold;
}

std::vector<std::pair<int32_t, int32_t>> BruteForceBmLink(
    const Dataset& dataset, const RecordSimFn& sim,
    const std::vector<std::pair<int32_t, int32_t>>& candidates,
    const FilterRefineConfig& config, FilterRefineStats* stats) {
  FilterRefineConfig no_bounds = config;
  no_bounds.use_upper_bound_filter = false;
  no_bounds.use_lower_bound_accept = false;
  return FilterRefineLink(dataset, sim, candidates, no_bounds, stats);
}

}  // namespace grouplink
