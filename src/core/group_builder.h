#ifndef GROUPLINK_CORE_GROUP_BUILDER_H_
#define GROUPLINK_CORE_GROUP_BUILDER_H_

#include <functional>
#include <string>
#include <vector>

#include "core/group.h"
#include "index/blocking.h"

namespace grouplink {

/// The upstream step the paper assumes has already happened: turning a
/// flat pile of records into groups. In a digital library, every citation
/// record carries an author-name string; records sharing a name (variant)
/// form one group, and group linkage then decides which *name variants*
/// co-refer. These builders produce that grouping.

/// Extracts the grouping key of a record (e.g. its author-name field).
using GroupKeyFn = std::function<std::string(const Record&)>;

/// Groups records by *exact* normalized key (lowercased, whitespace
/// collapsed). Group id and label are the normalized key; groups appear
/// in order of first key occurrence. Records with an empty key each get
/// their own singleton group. The result always validates.
Dataset BuildGroupsByKey(std::vector<Record> records, const GroupKeyFn& key_fn);

/// Fuzzy variant: records whose keys are merely *similar* also share a
/// group. Candidate key pairs come from blocking over the keys; pairs
/// with q-gram Jaccard >= `similarity_threshold` are merged with
/// union-find (transitive closure). Use when the grouping attribute
/// itself is dirty — e.g. "jefrey ullman" should file with
/// "jeffrey ullman" before group linkage ever runs.
struct FuzzyKeyConfig {
  /// Q-gram (3-gram) Jaccard threshold for merging two keys.
  double similarity_threshold = 0.75;
  /// Candidate key pairs: blocking scheme over key strings.
  BlockingScheme blocking = BlockingScheme::kTokenPrefix;
};

Dataset BuildGroupsByFuzzyKey(std::vector<Record> records, const GroupKeyFn& key_fn,
                              const FuzzyKeyConfig& config = {});

}  // namespace grouplink

#endif  // GROUPLINK_CORE_GROUP_BUILDER_H_
